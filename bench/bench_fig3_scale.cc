// Figure 3(c),(g),(h): query latency vs corpus size, similarity threshold,
// and length threshold t.

#include <cstdio>

#include "bench_util.h"
#include "index/index_builder.h"

int main() {
  using namespace ndss;
  const uint32_t base_texts = bench::Scaled(2000);

  bench::PrintHeader(
      "Figure 3(c): query latency vs corpus size",
      "paper: latency grows linearly with the corpus; IO dominates at "
      "scale");
  std::printf("%10s %12s %12s %12s %12s\n", "texts", "tokens", "latency ms",
              "io ms", "cpu ms");
  for (uint32_t factor : {1u, 2u, 4u, 8u}) {
    SyntheticCorpus sc =
        bench::MakeBenchCorpus(base_texts * factor / 2, 32000, factor);
    IndexBuildOptions build;
    build.k = 16;
    build.t = 25;
    const std::string dir = bench::ScratchDir("fig3_scale");
    if (!BuildIndexInMemory(sc.corpus, dir, build).ok()) return 1;
    auto searcher = Searcher::Open(dir);
    if (!searcher.ok()) return 1;
    const auto queries =
        bench::MakeQueries(sc.corpus, 100, 64, 0.05, 32000, 11);
    SearchOptions options;
    options.theta = 0.8;
    options.long_list_threshold = searcher->ListCountPercentile(0.10);
    const auto run = bench::RunQueries(*searcher, queries, options);
    std::printf("%10zu %12llu %12.3f %12.3f %12.3f\n", sc.corpus.num_texts(),
                static_cast<unsigned long long>(sc.corpus.total_tokens()),
                run.mean_latency * 1e3, run.mean_io_seconds * 1e3,
                run.mean_cpu_seconds * 1e3);
  }

  bench::PrintHeader(
      "Figure 3(g)-(h): query latency vs theta and length threshold t",
      "paper: latency rises as theta drops; latency is inversely "
      "proportional to t");
  SyntheticCorpus sc = bench::MakeBenchCorpus(base_texts * 2, 32000, 1);
  const auto queries =
      bench::MakeQueries(sc.corpus, 100, 128, 0.05, 32000, 13);
  std::printf("%6s %7s %12s %12s %12s %10s\n", "t", "theta", "latency ms",
              "io ms", "cpu ms", "#matches");
  for (uint32_t t : {25u, 50u, 100u}) {
    IndexBuildOptions build;
    build.k = 16;
    build.t = t;
    const std::string dir =
        bench::ScratchDir("fig3_t" + std::to_string(t));
    if (!BuildIndexInMemory(sc.corpus, dir, build).ok()) return 1;
    auto searcher = Searcher::Open(dir);
    if (!searcher.ok()) return 1;
    const uint64_t long_threshold = searcher->ListCountPercentile(0.10);
    for (double theta : {0.9, 0.8, 0.7}) {
      SearchOptions options;
      options.theta = theta;
      options.long_list_threshold = long_threshold;
      const auto run = bench::RunQueries(*searcher, queries, options);
      std::printf("%6u %7.2f %12.3f %12.3f %12.3f %10.2f\n", t, theta,
                  run.mean_latency * 1e3, run.mean_io_seconds * 1e3,
                  run.mean_cpu_seconds * 1e3, run.mean_spans);
    }
  }
  return 0;
}
