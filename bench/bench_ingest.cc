// Streaming-ingestion benchmark: sustained WAL-backed append throughput by
// batch size (each batch is one group commit + fsync), the spill pause a
// writer sees when its commit trips the memtable budget and seals a shard
// inline, and query latency while the background tiers are being compacted.
//
// Before any numbers are reported, the streamed index is verified
// bit-identical (spans and rectangles) against a batch build over the same
// documents — both before and after compaction. A mismatch exits 1, which
// is what the nightly CI step keys on.
//
// Usage: bench_ingest [--json] [--quick] [--out=PATH]
//   --json   also write the machine-readable report (default
//            BENCH_ingest.json; see README "Benchmark reports")
//   --quick  smaller corpus / fewer queries (CI-sized)
//   --out=   report path for --json

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "index/index_builder.h"
#include "ingest/ingester.h"
#include "query/searcher.h"
#include "shard/sharded_searcher.h"

namespace ndss {
namespace {

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const size_t index = std::min(
      values.size() - 1, static_cast<size_t>(p * values.size() / 100.0));
  return values[index];
}

bool SameMatches(const SearchResult& a, const SearchResult& b) {
  if (a.rectangles.size() != b.rectangles.size() ||
      a.spans.size() != b.spans.size()) {
    return false;
  }
  for (size_t i = 0; i < a.rectangles.size(); ++i) {
    if (a.rectangles[i].text != b.rectangles[i].text ||
        !(a.rectangles[i].rect == b.rectangles[i].rect)) {
      return false;
    }
  }
  for (size_t i = 0; i < a.spans.size(); ++i) {
    if (a.spans[i].text != b.spans[i].text ||
        a.spans[i].begin != b.spans[i].begin ||
        a.spans[i].end != b.spans[i].end ||
        a.spans[i].collisions != b.spans[i].collisions) {
      return false;
    }
  }
  return true;
}

/// Verifies the streamed index answers every query exactly like the batch
/// reference; exits 1 on the first divergence.
void GateEquivalence(ShardedSearcher& streamed, Searcher& reference,
                     const std::vector<std::vector<Token>>& queries,
                     const SearchOptions& options, const char* stage) {
  for (size_t q = 0; q < queries.size(); ++q) {
    auto expected = reference.Search(queries[q], options);
    auto actual = streamed.Search(queries[q], options);
    if (!expected.ok() || !actual.ok() ||
        !SameMatches(*expected, *actual)) {
      std::fprintf(stderr,
                   "FATAL: streamed index diverges from the batch build on "
                   "query %zu (%s)\n",
                   q, stage);
      std::exit(1);
    }
  }
}

struct IngestRun {
  uint64_t batch_docs = 0;
  double docs_per_sec = 0;
  double tokens_per_sec = 0;
  double append_p50_us = 0;
  double append_p99_us = 0;
  double spill_pause_p50_us = 0;
  double spill_pause_p99_us = 0;
  uint64_t spills = 0;
};

struct CompactionRun {
  double idle_p50_us = 0;
  double idle_p99_us = 0;
  double during_p50_us = 0;
  double during_p99_us = 0;
  uint64_t compactions = 0;
  uint64_t shards_before = 0;
  uint64_t shards_after = 0;
};

int Run(int argc, char** argv) {
  bool json = false;
  bool quick = false;
  std::string out_path = "BENCH_ingest.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--json] [--quick] [--out=PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  const uint32_t num_texts = bench::Scaled(quick ? 400 : 2000);
  const uint32_t vocab = 2000;
  const uint32_t num_queries = quick ? 40 : 150;
  const std::string dir = bench::ScratchDir("ingest");

  bench::PrintHeader(
      "Streaming ingestion: WAL group commit, spill pause, compaction",
      "every append is durable (fsync per batch) and immediately "
      "searchable; the streamed index is verified bit-identical to a batch "
      "build before and after compaction (divergence exits 1)");
  std::printf("corpus: %u texts, vocab %u, %u queries\n\n", num_texts, vocab,
              num_queries);

  SyntheticCorpus sc = bench::MakeBenchCorpus(num_texts, vocab, 4321);
  const auto queries =
      bench::MakeQueries(sc.corpus, num_queries, 48, 0.1, vocab, 7);
  SearchOptions options;
  options.theta = 0.6;

  IndexBuildOptions build;
  build.k = 8;
  build.t = 20;

  uint64_t total_tokens = 0;
  for (uint32_t i = 0; i < num_texts; ++i) {
    total_tokens += sc.corpus.text(i).size();
  }

  auto reference = Searcher::InMemory(sc.corpus, build);
  if (!reference.ok()) {
    std::fprintf(stderr, "reference build failed: %s\n",
                 reference.status().ToString().c_str());
    return 1;
  }

  // ---- sustained append throughput by batch size ----
  // The memtable spills roughly 8 times per run, so the batch latencies
  // include the inline spill pauses a real writer would see.
  std::printf("%-10s %12s %14s %12s %12s %14s %7s\n", "batch", "docs/s",
              "tokens/s", "app p50 us", "app p99 us", "spill p99 us",
              "spills");
  std::vector<IngestRun> runs;
  for (const uint32_t batch_docs : {1u, 16u, 64u}) {
    const std::string set_dir =
        dir + "/set_b" + std::to_string(batch_docs);
    if (!Ingester::CreateSet(set_dir, build).ok()) return 1;
    auto searcher = ShardedSearcher::Open(set_dir);
    if (!searcher.ok()) return 1;
    IngestOptions ingest_options;
    ingest_options.build = build;
    ingest_options.enable_compaction = false;
    ingest_options.memtable_max_docs = num_texts / 8;
    auto ingester = Ingester::Open(&*searcher, ingest_options);
    if (!ingester.ok()) {
      std::fprintf(stderr, "ingester open failed: %s\n",
                   ingester.status().ToString().c_str());
      return 1;
    }

    IngestRun run;
    run.batch_docs = batch_docs;
    std::vector<double> append_us;
    std::vector<double> spill_us;
    Stopwatch total;
    for (uint32_t i = 0; i < num_texts; i += batch_docs) {
      std::vector<std::vector<Token>> batch;
      for (uint32_t j = i; j < i + batch_docs && j < num_texts; ++j) {
        const auto text = sc.corpus.text(j);
        batch.emplace_back(text.begin(), text.end());
      }
      const uint64_t spills_before = (*ingester)->stats().spills;
      Stopwatch watch;
      if (!(*ingester)->AppendBatch(std::move(batch)).ok()) {
        std::fprintf(stderr, "append failed\n");
        return 1;
      }
      const double micros = watch.ElapsedMicros();
      append_us.push_back(micros);
      // A batch whose commit tripped the budget paid for the spill inline:
      // its latency IS the spill pause.
      if ((*ingester)->stats().spills > spills_before) {
        spill_us.push_back(micros);
      }
    }
    const double seconds = total.ElapsedSeconds();
    run.docs_per_sec = seconds > 0 ? num_texts / seconds : 0;
    run.tokens_per_sec =
        seconds > 0 ? static_cast<double>(total_tokens) / seconds : 0;
    run.append_p50_us = Percentile(append_us, 50);
    run.append_p99_us = Percentile(append_us, 99);
    run.spill_pause_p50_us = Percentile(spill_us, 50);
    run.spill_pause_p99_us = Percentile(spill_us, 99);
    run.spills = (*ingester)->stats().spills;

    GateEquivalence(*searcher, *reference, queries, options, "post-ingest");
    if (!(*ingester)->Close().ok()) return 1;
    runs.push_back(run);
    std::printf("%-10llu %12.0f %14.0f %12.1f %12.1f %14.1f %7llu\n",
                static_cast<unsigned long long>(run.batch_docs),
                run.docs_per_sec, run.tokens_per_sec, run.append_p50_us,
                run.append_p99_us, run.spill_pause_p99_us,
                static_cast<unsigned long long>(run.spills));
  }

  // ---- query latency while the tiers compact ----
  // The last run left ~8 sealed shards plus a memtable tail; fold them with
  // the compactor while a query loop measures interference.
  CompactionRun compaction;
  {
    const std::string set_dir = dir + "/set_b64";
    auto searcher = ShardedSearcher::Open(set_dir);
    if (!searcher.ok()) return 1;
    IngestOptions ingest_options;
    ingest_options.build = build;
    ingest_options.enable_compaction = false;  // driven manually below
    auto ingester = Ingester::Open(&*searcher, ingest_options);
    if (!ingester.ok()) return 1;
    compaction.shards_before = searcher->shards().size();

    auto time_queries = [&](std::vector<double>* micros_out) {
      for (const auto& query : queries) {
        Stopwatch watch;
        auto result = searcher->Search(query, options);
        if (!result.ok()) {
          std::fprintf(stderr, "query failed: %s\n",
                       result.status().ToString().c_str());
          std::exit(1);
        }
        micros_out->push_back(watch.ElapsedMicros());
      }
    };

    std::vector<double> idle_us;
    time_queries(&idle_us);
    time_queries(&idle_us);
    compaction.idle_p50_us = Percentile(idle_us, 50);
    compaction.idle_p99_us = Percentile(idle_us, 99);

    std::atomic<bool> compacting{true};
    std::thread compactor([&] {
      bool did = true;
      while (did) {
        if (!(*ingester)->CompactOnce(&did).ok()) break;
      }
      compacting.store(false, std::memory_order_release);
    });
    std::vector<double> during_us;
    while (compacting.load(std::memory_order_acquire)) {
      time_queries(&during_us);
    }
    compactor.join();
    compaction.during_p50_us = Percentile(during_us, 50);
    compaction.during_p99_us = Percentile(during_us, 99);
    compaction.compactions = (*ingester)->stats().compactions;
    compaction.shards_after = searcher->shards().size();

    GateEquivalence(*searcher, *reference, queries, options,
                    "post-compaction");
    if (!(*ingester)->Close().ok()) return 1;
  }
  std::printf(
      "\nquery latency: idle p50/p99 %.1f/%.1f us, during compaction "
      "p50/p99 %.1f/%.1f us (%llu compactions, %llu -> %llu shards)\n",
      compaction.idle_p50_us, compaction.idle_p99_us,
      compaction.during_p50_us, compaction.during_p99_us,
      static_cast<unsigned long long>(compaction.compactions),
      static_cast<unsigned long long>(compaction.shards_before),
      static_cast<unsigned long long>(compaction.shards_after));
  std::printf("equivalence: streamed == batch build before and after "
              "compaction\n");

  if (json) {
    bench::JsonWriter writer;
    writer.BeginObject();
    writer.Field("bench", std::string("ingest"));
    writer.Field("quick", quick);
    writer.Field("scale", bench::ScaleFactor());
    writer.Field("num_texts", static_cast<uint64_t>(num_texts));
    writer.Field("total_tokens", total_tokens);
    writer.Field("num_queries", static_cast<uint64_t>(num_queries));
    writer.Field("equivalence_verified", true);
    writer.BeginArray("runs");
    for (const IngestRun& r : runs) {
      writer.BeginObject();
      writer.Field("batch_docs", r.batch_docs);
      writer.Field("docs_per_sec", r.docs_per_sec);
      writer.Field("tokens_per_sec", r.tokens_per_sec);
      writer.Field("append_p50_us", r.append_p50_us);
      writer.Field("append_p99_us", r.append_p99_us);
      writer.Field("spill_pause_p50_us", r.spill_pause_p50_us);
      writer.Field("spill_pause_p99_us", r.spill_pause_p99_us);
      writer.Field("spills", r.spills);
      writer.EndObject();
    }
    writer.EndArray();
    writer.BeginObject("compaction");
    writer.Field("query_idle_p50_us", compaction.idle_p50_us);
    writer.Field("query_idle_p99_us", compaction.idle_p99_us);
    writer.Field("query_during_p50_us", compaction.during_p50_us);
    writer.Field("query_during_p99_us", compaction.during_p99_us);
    writer.Field("compactions", compaction.compactions);
    writer.Field("shards_before", compaction.shards_before);
    writer.Field("shards_after", compaction.shards_after);
    writer.EndObject();
    writer.EndObject();
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fwrite(writer.str().data(), 1, writer.str().size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace ndss

int main(int argc, char** argv) { return ndss::Run(argc, argv); }
