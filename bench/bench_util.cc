#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "common/stopwatch.h"

namespace ndss {
namespace bench {

double ScaleFactor() {
  static const double scale = [] {
    const char* env = std::getenv("NDSS_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    const double value = std::atof(env);
    return value > 0 ? value : 1.0;
  }();
  return scale;
}

uint32_t Scaled(uint32_t base) {
  const double scaled = base * ScaleFactor();
  return scaled < 1 ? 1u : static_cast<uint32_t>(scaled);
}

std::string ScratchDir(const std::string& name) {
  const std::string dir = "/tmp/ndss_bench/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

SyntheticCorpus MakeBenchCorpus(uint32_t num_texts, uint32_t vocab_size,
                                uint64_t seed) {
  SyntheticCorpusOptions options;
  options.num_texts = num_texts;
  options.min_text_length = 100;
  options.max_text_length = 1000;
  options.vocab_size = vocab_size;
  options.zipf_exponent = 1.0;
  options.plant_rate = 0.2;
  options.min_plant_length = 50;
  options.max_plant_length = 200;
  options.plant_noise = 0.05;
  options.seed = seed;
  return GenerateSyntheticCorpus(options);
}

std::vector<std::vector<Token>> MakeQueries(const Corpus& corpus,
                                            uint32_t count, uint32_t length,
                                            double noise, uint32_t vocab_size,
                                            uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Token>> queries;
  queries.reserve(count);
  while (queries.size() < count) {
    const TextId id = static_cast<TextId>(rng.Uniform(corpus.num_texts()));
    const auto text = corpus.text(id);
    if (text.size() < length) continue;
    const uint32_t begin =
        static_cast<uint32_t>(rng.Uniform(text.size() - length + 1));
    queries.push_back(
        PerturbSequence(text, begin, length, noise, vocab_size, rng));
  }
  return queries;
}

QueryRunResult RunQueries(Searcher& searcher,
                          const std::vector<std::vector<Token>>& queries,
                          const SearchOptions& options) {
  QueryRunResult result;
  if (queries.empty()) return result;
  for (const auto& query : queries) {
    Stopwatch watch;
    auto search = searcher.Search(query, options);
    const double elapsed = watch.ElapsedSeconds();
    if (!search.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   search.status().ToString().c_str());
      std::exit(1);
    }
    result.mean_latency += elapsed;
    result.mean_io_seconds += search->stats.io_seconds;
    result.mean_cpu_seconds += search->stats.cpu_seconds;
    result.mean_io_bytes += static_cast<double>(search->stats.io_bytes);
    result.mean_spans += static_cast<double>(search->spans.size());
  }
  const double n = static_cast<double>(queries.size());
  result.mean_latency /= n;
  result.mean_io_seconds /= n;
  result.mean_cpu_seconds /= n;
  result.mean_io_bytes /= n;
  result.mean_spans /= n;
  return result;
}

void JsonWriter::Prefix(const std::string& key) {
  if (!has_sibling_.empty()) {
    if (has_sibling_.back()) out_ += ",";
    out_ += "\n";
    out_.append(2 * has_sibling_.size(), ' ');
    has_sibling_.back() = true;
  }
  if (!key.empty()) {
    Escaped(key);
    out_ += ": ";
  }
}

void JsonWriter::Escaped(const std::string& value) {
  out_ += '"';
  for (char c : value) {
    if (c == '"' || c == '\\') {
      out_ += '\\';
      out_ += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out_ += buf;
    } else {
      out_ += c;
    }
  }
  out_ += '"';
}

void JsonWriter::BeginObject(const std::string& key) {
  Prefix(key);
  out_ += "{";
  has_sibling_.push_back(false);
}

void JsonWriter::EndObject() {
  const bool had_fields = has_sibling_.back();
  has_sibling_.pop_back();
  if (had_fields) {
    out_ += "\n";
    out_.append(2 * has_sibling_.size(), ' ');
  }
  out_ += "}";
  if (has_sibling_.empty()) out_ += "\n";
}

void JsonWriter::BeginArray(const std::string& key) {
  Prefix(key);
  out_ += "[";
  has_sibling_.push_back(false);
}

void JsonWriter::EndArray() {
  const bool had_fields = has_sibling_.back();
  has_sibling_.pop_back();
  if (had_fields) {
    out_ += "\n";
    out_.append(2 * has_sibling_.size(), ' ');
  }
  out_ += "]";
  if (has_sibling_.empty()) out_ += "\n";
}

void JsonWriter::Field(const std::string& key, const std::string& value) {
  Prefix(key);
  Escaped(value);
}

void JsonWriter::Field(const std::string& key, double value) {
  Prefix(key);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out_ += buf;
}

void JsonWriter::Field(const std::string& key, uint64_t value) {
  Prefix(key);
  out_ += std::to_string(value);
}

void JsonWriter::Field(const std::string& key, bool value) {
  Prefix(key);
  out_ += value ? "true" : "false";
}

void PrintHeader(const std::string& experiment, const std::string& note) {
  std::printf("\n================================================="
              "=============================\n");
  std::printf("%s\n", experiment.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
  std::printf("scale factor: %.2f (set NDSS_BENCH_SCALE to change)\n",
              ScaleFactor());
  std::printf("---------------------------------------------------"
              "---------------------------\n");
}

}  // namespace bench
}  // namespace ndss
