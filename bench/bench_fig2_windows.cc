// Figure 2(a)-(d): number of compact windows generated vs length threshold
// t, number of hash functions k, BPE vocabulary size, and corpus size.
// Also validates Theorem 1's expectation 2(n+1)/(t+1) - 1 per text.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "hash/hash_family.h"
#include "tokenizer/bpe_tokenizer.h"
#include "tokenizer/bpe_trainer.h"
#include "window/window_generator.h"

namespace ndss {
namespace {

uint64_t CountWindows(const Corpus& corpus, uint32_t k, uint32_t t,
                      uint64_t seed = 0x5eed5eed5eed5eedULL) {
  const HashFamily family(k, seed);
  WindowGenerator generator;
  std::vector<CompactWindow> windows;
  uint64_t total = 0;
  for (uint32_t func = 0; func < k; ++func) {
    for (size_t i = 0; i < corpus.num_texts(); ++i) {
      windows.clear();
      generator.Generate(family, func, corpus.text(i), t, &windows);
      total += windows.size();
    }
  }
  return total;
}

double TheoryWindows(const Corpus& corpus, uint32_t k, uint32_t t) {
  double expected = 0;
  for (size_t i = 0; i < corpus.num_texts(); ++i) {
    expected += ExpectedWindowCount(corpus.text_length(i), t);
  }
  return expected * k;
}

}  // namespace
}  // namespace ndss

int main() {
  using namespace ndss;
  const uint32_t base_texts = bench::Scaled(2000);

  bench::PrintHeader(
      "Figure 2(a)-(b): #compact windows vs length threshold t and k",
      "paper: count is inversely proportional to t, linear in k");
  SyntheticCorpus sc = bench::MakeBenchCorpus(base_texts, 32000, 1);
  std::printf("corpus: %zu texts, %llu tokens\n", sc.corpus.num_texts(),
              static_cast<unsigned long long>(sc.corpus.total_tokens()));
  std::printf("%6s %4s %15s %15s %8s\n", "t", "k", "windows", "theory",
              "ratio");
  for (uint32_t t : {25u, 50u, 100u, 200u}) {
    for (uint32_t k : {1u, 4u, 16u}) {
      const uint64_t count = CountWindows(sc.corpus, k, t);
      const double theory = TheoryWindows(sc.corpus, k, t);
      std::printf("%6u %4u %15llu %15.0f %8.3f\n", t, k,
                  static_cast<unsigned long long>(count), theory,
                  count / theory);
    }
  }

  bench::PrintHeader(
      "Figure 2(c): #compact windows vs BPE vocabulary size",
      "paper: larger vocabulary -> slightly fewer tokens -> fewer windows");
  const std::string raw = GenerateSyntheticEnglish(
      bench::Scaled(20000), 42);
  std::printf("raw text: %zu bytes\n", raw.size());
  std::printf("%8s %12s %15s\n", "vocab", "tokens", "windows(t=25,k=1)");
  for (uint32_t vocab : {512u, 1024u, 2048u, 4096u}) {
    BpeTrainerOptions trainer_options;
    trainer_options.vocab_size = vocab;
    BpeTrainer trainer(trainer_options);
    // Train on a prefix to keep training cheap; encode the whole text.
    trainer.AddText(std::string_view(raw).substr(
        0, std::min<size_t>(raw.size(), 400000)));
    auto model = trainer.Train();
    if (!model.ok()) {
      std::fprintf(stderr, "BPE training failed\n");
      return 1;
    }
    BpeTokenizer tokenizer(*model);
    Corpus corpus;
    // Split the raw text into 64 pseudo-documents.
    const size_t chunk = raw.size() / 64;
    for (size_t off = 0; off + chunk <= raw.size(); off += chunk) {
      corpus.AddText(tokenizer.Encode(
          std::string_view(raw).substr(off, chunk)));
    }
    const uint64_t count = CountWindows(corpus, 1, 25);
    std::printf("%8u %12llu %15llu\n", vocab,
                static_cast<unsigned long long>(corpus.total_tokens()),
                static_cast<unsigned long long>(count));
  }

  bench::PrintHeader("Figure 2(d): #compact windows vs corpus size",
                     "paper: count grows linearly with the corpus");
  std::printf("%10s %12s %15s %15s\n", "texts", "tokens", "windows(t=100)",
              "theory");
  for (uint32_t factor : {1u, 2u, 4u, 8u}) {
    SyntheticCorpus scaled =
        bench::MakeBenchCorpus(base_texts * factor / 4, 64000, 2);
    const uint64_t count = CountWindows(scaled.corpus, 1, 100);
    std::printf("%10zu %12llu %15llu %15.0f\n", scaled.corpus.num_texts(),
                static_cast<unsigned long long>(scaled.corpus.total_tokens()),
                static_cast<unsigned long long>(count),
                TheoryWindows(scaled.corpus, 1, 100));
  }
  return 0;
}
