// Extension experiment: memorization vs training-data duplication. Prior
// work (cited in the paper's introduction) observed that the chance a
// model emits a training sequence grows super-linearly with how often the
// sequence appears in the training corpus. Reproduction: canary sequences
// are planted at controlled duplication counts, an n-gram model is trained
// on the corpus, text is generated, and each canary is searched for in the
// *generated* text with an ephemeral in-memory index.

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "lm/memorizing_generator.h"
#include "query/searcher.h"

int main() {
  using namespace ndss;
  SyntheticCorpusOptions base;
  base.num_texts = bench::Scaled(2000);
  base.min_text_length = 150;
  base.max_text_length = 400;
  base.vocab_size = 4000;  // small vocab so the LM can actually learn
  base.seed = 33;
  const std::vector<uint32_t> factors = {1, 4, 16, 64};
  const uint32_t kCanariesPerFactor = 20;
  const uint32_t kCanaryLength = 48;
  DuplicationCorpus dc = GenerateDuplicationCorpus(
      base, factors, kCanariesPerFactor, kCanaryLength);

  bench::PrintHeader(
      "Memorization vs duplication count (canary experiment)",
      "canaries planted 1..64x; the n-gram model is likelier to regenerate "
      "frequent spans; hit = canary has a near-duplicate in the generated "
      "text (theta = 0.8)");
  std::printf("training corpus: %zu texts, %llu tokens; %zu canaries of %u "
              "tokens\n",
              dc.corpus.num_texts(),
              static_cast<unsigned long long>(dc.corpus.total_tokens()),
              dc.canaries.size(), kCanaryLength);

  // Train the model on the corpus (canaries included) and generate.
  NGramModel model(4);  // higher order = more verbatim regurgitation
  model.Train(dc.corpus);
  Rng rng(7);
  SamplingOptions sampling;
  sampling.top_k = 10;  // low-entropy sampling memorizes more
  Corpus generated;
  const uint32_t kGeneratedTexts = bench::Scaled(300);
  for (uint32_t i = 0; i < kGeneratedTexts; ++i) {
    generated.AddText(model.Generate(512, sampling, rng));
  }
  std::printf("generated %zu texts of 512 tokens\n", generated.num_texts());

  // Index the generated text and query each canary against it.
  IndexBuildOptions build;
  build.k = 32;
  build.t = 25;
  auto searcher = Searcher::InMemory(generated, build);
  if (!searcher.ok()) {
    std::fprintf(stderr, "in-memory index failed: %s\n",
                 searcher.status().ToString().c_str());
    return 1;
  }
  SearchOptions search;
  search.theta = 0.8;
  search.use_prefix_filter = false;

  std::map<uint32_t, std::pair<uint32_t, uint32_t>> by_factor;  // hits/total
  for (const Canary& canary : dc.canaries) {
    auto result = searcher->Search(canary.tokens, search);
    if (!result.ok()) return 1;
    auto& [hits, total] = by_factor[canary.duplication];
    ++total;
    if (!result->spans.empty()) ++hits;
  }
  std::printf("\n%12s %10s %12s\n", "duplication", "canaries",
              "emitted near-dup");
  for (const auto& [factor, counts] : by_factor) {
    std::printf("%12u %10u %11.1f%%\n", factor, counts.second,
                100.0 * counts.first / counts.second);
  }
  std::printf(
      "\nThe emission rate should grow sharply (super-linearly) with the\n"
      "duplication count, matching the behaviour the paper cites.\n");
  return 0;
}
