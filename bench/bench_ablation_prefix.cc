// Ablation: effect of prefix filtering (on/off) and the zone-map step size
// on query cost. Prefix filtering avoids scanning the longest inverted
// lists; the zone map makes the second-pass point lookups cheap.

#include <cstdio>

#include "bench_util.h"
#include "index/index_builder.h"

int main() {
  using namespace ndss;
  const uint32_t base_texts = bench::Scaled(4000);
  SyntheticCorpus sc = bench::MakeBenchCorpus(base_texts, 32000, 1);
  const auto queries =
      bench::MakeQueries(sc.corpus, 100, 64, 0.05, 32000, 23);

  bench::PrintHeader(
      "Ablation: prefix filtering on/off (k = 16, t = 25, theta = 0.8)",
      "prefix filtering trades full scans of frequent-token lists for "
      "zone-map probes of candidate texts");
  {
    IndexBuildOptions build;
    build.k = 16;
    build.t = 25;
    const std::string dir = bench::ScratchDir("ablation_prefix");
    if (!BuildIndexInMemory(sc.corpus, dir, build).ok()) return 1;
    auto searcher = Searcher::Open(dir);
    if (!searcher.ok()) return 1;

    std::printf("%-22s %12s %12s %12s %10s %10s\n", "config", "latency ms",
                "io ms", "cpu ms", "io KB", "#matches");
    SearchOptions off;
    off.theta = 0.8;
    off.use_prefix_filter = false;
    const auto off_run = bench::RunQueries(*searcher, queries, off);
    std::printf("%-22s %12.3f %12.3f %12.3f %10.1f %10.2f\n",
                "prefix filter off", off_run.mean_latency * 1e3,
                off_run.mean_io_seconds * 1e3, off_run.mean_cpu_seconds * 1e3,
                off_run.mean_io_bytes / 1e3, off_run.mean_spans);
    for (double fraction : {0.05, 0.10, 0.20}) {
      SearchOptions on;
      on.theta = 0.8;
      on.use_prefix_filter = true;
      on.long_list_threshold = searcher->ListCountPercentile(fraction);
      const auto run = bench::RunQueries(*searcher, queries, on);
      std::printf("prefix filter %3.0f%%    %12.3f %12.3f %12.3f %10.1f "
                  "%10.2f\n",
                  fraction * 100, run.mean_latency * 1e3,
                  run.mean_io_seconds * 1e3, run.mean_cpu_seconds * 1e3,
                  run.mean_io_bytes / 1e3, run.mean_spans);
    }
    // Cost-model selection of the deferred lists (per-query adaptive).
    SearchOptions adaptive;
    adaptive.theta = 0.8;
    adaptive.use_prefix_filter = true;
    adaptive.use_cost_model = true;
    const auto run = bench::RunQueries(*searcher, queries, adaptive);
    std::printf("%-22s %12.3f %12.3f %12.3f %10.1f %10.2f\n", "cost model",
                run.mean_latency * 1e3, run.mean_io_seconds * 1e3,
                run.mean_cpu_seconds * 1e3, run.mean_io_bytes / 1e3,
                run.mean_spans);
  }

  bench::PrintHeader(
      "Ablation: zone-map step size s (prefix filter at 10%)",
      "smaller steps = finer zone maps = less scanning per probe but a "
      "bigger zone section");
  std::printf("%8s %12s %12s %12s %10s\n", "step", "index MB", "latency ms",
              "io ms", "io KB");
  for (uint32_t step : {16u, 64u, 256u, 1024u}) {
    IndexBuildOptions build;
    build.k = 16;
    build.t = 25;
    build.zone_step = step;
    const std::string dir =
        bench::ScratchDir("ablation_zone" + std::to_string(step));
    auto stats = BuildIndexInMemory(sc.corpus, dir, build);
    if (!stats.ok()) return 1;
    auto searcher = Searcher::Open(dir);
    if (!searcher.ok()) return 1;
    SearchOptions options;
    options.theta = 0.8;
    options.long_list_threshold = searcher->ListCountPercentile(0.10);
    const auto run = bench::RunQueries(*searcher, queries, options);
    std::printf("%8u %12.2f %12.3f %12.3f %10.1f\n", step,
                stats->index_bytes / 1e6, run.mean_latency * 1e3,
                run.mean_io_seconds * 1e3, run.mean_io_bytes / 1e3);
  }
  return 0;
}
