// Extension experiment: exact vs fuzzy memorization. The paper's central
// motivation is that exact-substring tools (suffix-array style, Lee et al.
// 2022) undercount memorization because models emit *near*-verbatim spans.
// Here both detectors run on the same generated texts: the suffix-array
// verbatim check vs near-duplicate search at several thetas.

#include <cstdio>

#include "baseline/suffix_array.h"
#include "bench_util.h"
#include "eval/memorization_eval.h"
#include "index/index_builder.h"
#include "lm/memorizing_generator.h"

int main() {
  using namespace ndss;
  const uint32_t base_texts = bench::Scaled(1500);
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = base_texts;
  corpus_options.min_text_length = 200;
  corpus_options.max_text_length = 600;
  corpus_options.vocab_size = 16000;
  corpus_options.plant_rate = 0.0;
  corpus_options.seed = 5;
  SyntheticCorpus sc = GenerateSyntheticCorpus(corpus_options);

  IndexBuildOptions build;
  build.k = 32;
  build.t = 25;
  const std::string dir = bench::ScratchDir("exact_vs_fuzzy");
  if (!BuildIndexInMemory(sc.corpus, dir, build).ok()) return 1;
  auto searcher = Searcher::Open(dir);
  if (!searcher.ok()) return 1;
  SuffixArrayIndex suffix_array = SuffixArrayIndex::Build(sc.corpus);

  NGramModel model(3);
  model.Train(sc.corpus);

  bench::PrintHeader(
      "Exact vs fuzzy memorization per copy fidelity (x = 32, k = 32)",
      "exact = verbatim window in corpus (suffix array); fuzzy = "
      "near-duplicate at theta; near-verbatim copies are invisible to the "
      "exact detector");
  std::printf("%10s %10s | %10s %12s %12s %12s\n", "fidelity", "copies",
              "exact", "theta=1.0", "theta=0.9", "theta=0.8");
  const uint32_t x = 32;
  for (double fidelity : {1.0, 0.98, 0.95, 0.90}) {
    MemorizationProfile profile;
    profile.copy_start_prob = 0.01;
    profile.fidelity = fidelity;
    MemorizingGenerator generator(model, sc.corpus, profile, 314);
    const GeneratedTexts generated =
        generator.Generate(20, 512, SamplingOptions{});

    // Exact detector: fraction of windows occurring verbatim.
    uint64_t windows = 0, exact_hits = 0;
    for (const auto& text : generated.texts) {
      for (size_t begin = 0; begin + x <= text.size(); begin += x) {
        ++windows;
        if (suffix_array.Contains(
                std::span<const Token>(text.data() + begin, x))) {
          ++exact_hits;
        }
      }
    }
    std::printf("%10.2f %10zu | %9.1f%%", fidelity, generated.copies.size(),
                100.0 * exact_hits / windows);

    for (double theta : {1.0, 0.9, 0.8}) {
      MemorizationEvalOptions eval;
      eval.window_width = x;
      eval.search.theta = theta;
      auto report = EvaluateMemorization(*searcher, generated.texts, eval);
      if (!report.ok()) return 1;
      std::printf("   %9.1f%%", 100.0 * report->ratio);
    }
    std::printf("\n");
  }
  std::printf(
      "\nAt fidelity 1.0 exact and theta=1.0 agree; as copies degrade the\n"
      "exact detector collapses while near-duplicate search keeps finding\n"
      "the memorized spans — the paper's core argument.\n");
  return 0;
}
