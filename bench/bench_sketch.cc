// Sketching-subsystem benchmark and equivalence gate.
//
// Gates (run before any timing; a failure exits 1, which the nightly CI
// step keys on):
//   1. the kIndependent SketchScheme answers bit-identically to the legacy
//      HashFamily sketch path;
//   2. a kIndependent index whose meta is rewritten in the pre-scheme v2
//      format reopens and answers bit-identically (old indexes stay valid);
//   3. per scheme, the out-of-core build produces byte-identical inverted
//      files to the in-memory build, and the disk searcher answers
//      bit-identically to the in-memory searcher.
//
// Timings: per-scheme hash-row fill and query-sketch throughput — the level
// where C-MinHash's one-permutation trick shows directly (k passes of
// SplitMix64 vs one pass plus k rotate/xor scans) — then full Fig 2 build
// wall time (window generation and sorting dominate, so the honest
// end-to-end delta is small), query latency, and Jaccard-estimation
// bias/MSE against the exact distinct Jaccard.
//
// Usage: bench_sketch [--json] [--quick] [--out=PATH]
//   --json   also write the machine-readable report (default
//            BENCH_sketch.json; see README "Benchmark reports")
//   --quick  smaller inputs / fewer iterations (CI-sized)
//   --out=   report path for --json

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/coding.h"
#include "common/crc32c.h"
#include "common/file_io.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "hash/hash_family.h"
#include "index/inverted_index_reader.h"
#include "index/posting.h"
#include "sketch/sketch_scheme.h"

namespace ndss {
namespace {

volatile uint64_t g_sink = 0;  // defeats dead-code elimination

constexpr SketchSchemeId kSchemes[] = {SketchSchemeId::kIndependent,
                                       SketchSchemeId::kCMinHash};

[[noreturn]] void FailGate(const std::string& gate, const std::string& why) {
  std::fprintf(stderr, "FATAL: equivalence gate '%s' failed: %s\n",
               gate.c_str(), why.c_str());
  std::exit(1);
}

struct Percentiles {
  double p50_us = 0;
  double p95_us = 0;
};

Percentiles ComputePercentiles(std::vector<double> micros) {
  Percentiles p;
  if (micros.empty()) return p;
  std::sort(micros.begin(), micros.end());
  p.p50_us = micros[micros.size() / 2];
  p.p95_us = micros[std::min(micros.size() - 1, micros.size() * 95 / 100)];
  return p;
}

template <typename Fn>
Percentiles TimeIterations(int iters, Fn&& fn) {
  std::vector<double> micros;
  micros.reserve(iters);
  for (int i = 0; i < iters; ++i) {
    Stopwatch watch;
    g_sink = g_sink + fn();
    micros.push_back(watch.ElapsedMicros());
  }
  return ComputePercentiles(micros);
}

/// Field-sensitive serialization of a search answer, so two searchers can
/// be compared for exact (bit-identical) agreement.
std::string Fingerprint(const SearchResult& result) {
  std::ostringstream out;
  for (const TextMatchRectangle& r : result.rectangles) {
    out << "R" << r.text << ":" << r.rect.x_begin << "," << r.rect.x_end
        << "," << r.rect.y_begin << "," << r.rect.y_end << ","
        << r.rect.collisions << ";";
  }
  for (const MatchSpan& s : result.spans) {
    out << "S" << s.text << ":" << s.begin << "," << s.end << ","
        << s.collisions << "," << s.estimated_similarity << ";";
  }
  return out.str();
}

std::vector<std::string> Fingerprints(
    Searcher& searcher, const std::vector<std::vector<Token>>& queries) {
  SearchOptions options;
  options.theta = 0.7;
  std::vector<std::string> prints;
  for (const auto& query : queries) {
    auto result = searcher.Search(query, options);
    if (!result.ok()) {
      FailGate("search", result.status().ToString());
    }
    prints.push_back(Fingerprint(*result));
  }
  return prints;
}

// ---- gate 1: kIndependent scheme == legacy HashFamily --------------------

void GateSchemeMatchesHashFamily() {
  constexpr uint32_t kK = 16;
  constexpr uint64_t kSeed = 0x5eed5eed5eed5eedULL;
  const HashFamily family(kK, kSeed);
  const SketchScheme scheme(SketchSchemeId::kIndependent, kK, kSeed);
  Rng rng(41);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = 8 + rng.Uniform(200);
    std::vector<Token> tokens(n);
    for (auto& token : tokens) {
      token = static_cast<Token>(rng.Uniform(32000));
    }
    const MinHashSketch legacy = ComputeSketch(family, tokens.data(), n);
    const MinHashSketch ours = ComputeSketch(scheme, tokens.data(), n);
    if (legacy.argmin_tokens != ours.argmin_tokens ||
        legacy.min_hashes != ours.min_hashes) {
      FailGate("kindependent_bit_identity",
               "SketchScheme sketch differs from HashFamily sketch");
    }
  }
}

// ---- gate 2: v2 meta compatibility ---------------------------------------

/// Re-encodes `meta` in the pre-scheme v2 format (no sketch field, v2
/// magic), byte-faithful to what a pre-v3 build wrote.
std::string EncodeV2Meta(const IndexMeta& meta) {
  std::string data;
  PutFixed64(&data, 0x324154454d58444eULL);  // "NDXMETA2"
  PutFixed32(&data, meta.k);
  PutFixed64(&data, meta.seed);
  PutFixed32(&data, meta.t);
  PutFixed64(&data, meta.num_texts);
  PutFixed64(&data, meta.total_tokens);
  PutFixed32(&data, meta.zone_step);
  PutFixed32(&data, meta.zone_threshold);
  PutFixed32(&data, crc32c::Mask(crc32c::Value(data.data(), data.size())));
  return data;
}

void GateV2MetaCompat(const Corpus& corpus,
                      const std::vector<std::vector<Token>>& queries) {
  const std::string dir = bench::ScratchDir("bench_sketch_v2");
  IndexBuildOptions options;
  options.k = 8;
  options.t = 25;
  auto stats = BuildIndexInMemory(corpus, dir, options);
  if (!stats.ok()) FailGate("v2_meta_compat", stats.status().ToString());

  auto v3 = Searcher::Open(dir);
  if (!v3.ok()) FailGate("v2_meta_compat", v3.status().ToString());
  const auto v3_prints = Fingerprints(*v3, queries);

  auto meta = IndexMeta::Load(dir);
  if (!meta.ok()) FailGate("v2_meta_compat", meta.status().ToString());
  auto write =
      WriteStringToFileAtomic(dir + "/index.meta", EncodeV2Meta(*meta));
  if (!write.ok()) FailGate("v2_meta_compat", write.ToString());

  auto v2 = Searcher::Open(dir);
  if (!v2.ok()) FailGate("v2_meta_compat", v2.status().ToString());
  if (v2->meta().sketch != SketchSchemeId::kIndependent) {
    FailGate("v2_meta_compat", "v2 meta did not load as kIndependent");
  }
  if (Fingerprints(*v2, queries) != v3_prints) {
    FailGate("v2_meta_compat",
             "answers changed after rewriting the meta in v2 format");
  }
}

// ---- gate 3: per-scheme build equivalence --------------------------------

/// Reads every window of every list of the index at `dir` into one sorted,
/// comparable set (text ids offset by func so all k functions coexist).
std::vector<KeyedWindow> DumpIndex(const std::string& dir, uint32_t k) {
  std::vector<KeyedWindow> all;
  for (uint32_t func = 0; func < k; ++func) {
    auto reader =
        InvertedIndexReader::Open(IndexMeta::InvertedIndexPath(dir, func));
    if (!reader.ok()) FailGate("build_equivalence", reader.status().ToString());
    for (const ListMeta& meta : reader->directory()) {
      std::vector<PostedWindow> windows;
      auto read = reader->ReadList(meta, &windows);
      if (!read.ok()) FailGate("build_equivalence", read.ToString());
      for (const PostedWindow& w : windows) {
        all.push_back(
            KeyedWindow{meta.key, w.text + func * 1000000u, w.l, w.c, w.r});
      }
    }
  }
  std::sort(all.begin(), all.end(), KeyedWindowLess);
  return all;
}

void GateBuildEquivalence(const Corpus& corpus,
                          const std::vector<std::vector<Token>>& queries) {
  const std::string dir = bench::ScratchDir("bench_sketch_equiv");
  const std::string corpus_path = dir + "/corpus.crp";
  auto write = WriteCorpusFile(corpus_path, corpus);
  if (!write.ok()) FailGate("build_equivalence", write.ToString());

  for (const SketchSchemeId scheme : kSchemes) {
    const std::string name = SketchSchemeName(scheme);
    IndexBuildOptions options;
    options.k = 8;
    options.t = 25;
    options.sketch = scheme;

    const std::string mem_dir = dir + "/mem_" + name;
    auto mem = BuildIndexInMemory(corpus, mem_dir, options);
    if (!mem.ok()) FailGate("build_equivalence", mem.status().ToString());

    IndexBuildOptions external = options;
    external.batch_tokens = 64 * 1024;  // force multiple batches
    external.num_partitions = 4;
    const std::string ext_dir = dir + "/ext_" + name;
    auto ext = BuildIndexExternal(corpus_path, ext_dir, external);
    if (!ext.ok()) FailGate("build_equivalence", ext.status().ToString());

    if (DumpIndex(mem_dir, options.k) != DumpIndex(ext_dir, options.k)) {
      FailGate("build_equivalence",
               name + ": external build windows differ from the in-memory "
                      "build");
    }

    auto disk = Searcher::Open(mem_dir);
    if (!disk.ok()) FailGate("build_equivalence", disk.status().ToString());
    auto memory = Searcher::InMemory(corpus, options);
    if (!memory.ok()) {
      FailGate("build_equivalence", memory.status().ToString());
    }
    if (Fingerprints(*disk, queries) != Fingerprints(*memory, queries)) {
      FailGate("build_equivalence",
               name + ": disk and in-memory searchers disagree");
    }
  }
}

// ---- hash-row / sketch throughput ----------------------------------------

struct ThroughputReport {
  std::string name;
  uint64_t items = 0;  ///< hash evaluations per iteration
  int iters = 0;
  Percentiles time;
  double mhashes_per_s() const {
    return time.p50_us > 0 ? static_cast<double>(items) / time.p50_us : 0;
  }
};

void PrintThroughput(const ThroughputReport& r) {
  std::printf("%-26s %12llu %6d %12.1f %12.1f %10.1f\n", r.name.c_str(),
              static_cast<unsigned long long>(r.items), r.iters,
              r.time.p50_us, r.time.p95_us, r.mhashes_per_s());
}

/// Times filling all k hash rows for `tokens` — the exact work the window
/// generator consumes per function. kIndependent pays k SplitMix64 passes;
/// kCMinHash pays one base pass plus k rotate/xor scans.
ThroughputReport BenchRowFill(SketchSchemeId id,
                              const std::vector<Token>& tokens, bool quick) {
  constexpr uint32_t kK = 16;
  const int iters = quick ? 8 : 20;
  const SketchScheme scheme(id, kK, 0x5eed);
  std::vector<uint64_t> row(tokens.size());
  std::vector<uint64_t> base(tokens.size());

  ThroughputReport report;
  report.name = std::string("row_fill/") + SketchSchemeName(id);
  report.items = static_cast<uint64_t>(tokens.size()) * kK;
  report.iters = iters;
  report.time = TimeIterations(iters, [&] {
    if (id == SketchSchemeId::kCMinHash) {
      scheme.FillBaseRow(tokens.data(), tokens.size(), base.data());
      for (uint32_t f = 0; f < kK; ++f) {
        scheme.FillHashRowFromBase(f, base.data(), tokens.size(),
                                   row.data());
      }
    } else {
      for (uint32_t f = 0; f < kK; ++f) {
        scheme.FillHashRow(f, tokens.data(), tokens.size(), row.data());
      }
    }
    return row.empty() ? uint64_t{0} : row.back();
  });
  return report;
}

/// Times the query-side ComputeSketch over a batch of short sequences.
ThroughputReport BenchComputeSketch(SketchSchemeId id, bool quick) {
  constexpr uint32_t kK = 16;
  constexpr size_t kLen = 64;
  const size_t count = quick ? 2000 : 10000;
  const int iters = quick ? 8 : 20;
  const SketchScheme scheme(id, kK, 0x5eed);

  Rng rng(17);
  std::vector<std::vector<Token>> sequences(count);
  for (auto& sequence : sequences) {
    sequence.resize(kLen);
    for (auto& token : sequence) {
      token = static_cast<Token>(rng.Uniform(32000));
    }
  }

  ThroughputReport report;
  report.name = std::string("compute_sketch/") + SketchSchemeName(id);
  report.items = static_cast<uint64_t>(count) * kLen * kK;
  report.iters = iters;
  std::vector<uint64_t> scratch;
  report.time = TimeIterations(iters, [&] {
    uint64_t sum = 0;
    for (const auto& sequence : sequences) {
      const MinHashSketch sketch =
          ComputeSketch(scheme, sequence.data(), sequence.size(), &scratch);
      sum += sketch.min_hashes[0];
    }
    return sum;
  });
  return report;
}

// ---- full build / query --------------------------------------------------

struct BuildReport {
  std::string scheme;
  uint64_t windows = 0;
  double generate_seconds = 0;
  double sort_seconds = 0;
  double total_seconds = 0;
};

BuildReport BenchBuild(SketchSchemeId id, const Corpus& corpus) {
  IndexBuildOptions options;
  options.k = 16;
  options.t = 25;
  options.sketch = id;
  const std::string dir =
      bench::ScratchDir(std::string("bench_sketch_build_") +
                        SketchSchemeName(id));
  auto stats = BuildIndexInMemory(corpus, dir, options);
  if (!stats.ok()) FailGate("build", stats.status().ToString());
  BuildReport report;
  report.scheme = SketchSchemeName(id);
  report.windows = stats->num_windows;
  report.generate_seconds = stats->generate_seconds;
  report.sort_seconds = stats->sort_seconds;
  report.total_seconds = stats->total_seconds;
  return report;
}

struct QueryReport {
  std::string scheme;
  double mean_latency_us = 0;
  double mean_spans = 0;
};

QueryReport BenchQuery(SketchSchemeId id, const Corpus& corpus,
                       const std::vector<std::vector<Token>>& queries) {
  IndexBuildOptions options;
  options.k = 16;
  options.t = 25;
  options.sketch = id;
  auto searcher = Searcher::InMemory(corpus, options);
  if (!searcher.ok()) FailGate("query", searcher.status().ToString());
  SearchOptions search;
  search.theta = 0.8;
  const bench::QueryRunResult run =
      bench::RunQueries(*searcher, queries, search);
  QueryReport report;
  report.scheme = SketchSchemeName(id);
  report.mean_latency_us = run.mean_latency * 1e6;
  report.mean_spans = run.mean_spans;
  return report;
}

// ---- estimation accuracy -------------------------------------------------

struct AccuracyReport {
  std::string scheme;
  uint32_t k = 0;
  uint64_t pairs = 0;
  double bias = 0;
  double mse = 0;
};

/// Bias and MSE of the sketch Jaccard estimate against the exact distinct
/// Jaccard over random correlated pairs (shared perturbed prefix, like the
/// paper's near-duplicate queries).
std::vector<AccuracyReport> BenchAccuracy(uint32_t k, bool quick) {
  const int pairs = quick ? 300 : 2000;
  const SketchScheme indep(SketchSchemeId::kIndependent, k, 0xfeed);
  const SketchScheme cmin(SketchSchemeId::kCMinHash, k, 0xfeed);

  Rng rng(2024);
  double err_indep = 0, err_cmin = 0, se_indep = 0, se_cmin = 0;
  std::vector<uint64_t> scratch;
  for (int p = 0; p < pairs; ++p) {
    const uint32_t vocab = 30 + static_cast<uint32_t>(rng.Uniform(300));
    const size_t na = 30 + rng.Uniform(100);
    const size_t nb = 30 + rng.Uniform(100);
    std::vector<Token> a(na), b(nb);
    for (size_t i = 0; i < na; ++i) {
      a[i] = static_cast<Token>(rng.Uniform(vocab));
    }
    const size_t shared = rng.Uniform(std::min(na, nb));
    for (size_t i = 0; i < nb; ++i) {
      b[i] = i < shared ? a[i] : static_cast<Token>(rng.Uniform(vocab));
    }
    const double truth = ExactDistinctJaccard(a.data(), na, b.data(), nb);
    const double est_indep =
        EstimateJaccard(ComputeSketch(indep, a.data(), na, &scratch),
                        ComputeSketch(indep, b.data(), nb, &scratch));
    const double est_cmin =
        EstimateJaccard(ComputeSketch(cmin, a.data(), na, &scratch),
                        ComputeSketch(cmin, b.data(), nb, &scratch));
    err_indep += est_indep - truth;
    err_cmin += est_cmin - truth;
    se_indep += (est_indep - truth) * (est_indep - truth);
    se_cmin += (est_cmin - truth) * (est_cmin - truth);
  }
  std::vector<AccuracyReport> reports(2);
  reports[0] = {"kindependent", k, static_cast<uint64_t>(pairs),
                err_indep / pairs, se_indep / pairs};
  reports[1] = {"cminhash", k, static_cast<uint64_t>(pairs),
                err_cmin / pairs, se_cmin / pairs};
  return reports;
}

int Run(int argc, char** argv) {
  bool json = false;
  bool quick = false;
  std::string out_path = "BENCH_sketch.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--json] [--quick] [--out=PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  bench::PrintHeader(
      "Sketching schemes: k-independent MinHash vs circulant C-MinHash",
      "equivalence gates run first (legacy bit-identity, v2 meta compat, "
      "external-vs-in-memory builds); a mismatch aborts with exit 1");

  // Small corpus + queries shared by the gates.
  SyntheticCorpus gate_corpus = bench::MakeBenchCorpus(150, 8000, 31);
  const auto gate_queries =
      bench::MakeQueries(gate_corpus.corpus, 12, 48, 0.05, 8000, 32);
  GateSchemeMatchesHashFamily();
  GateV2MetaCompat(gate_corpus.corpus, gate_queries);
  GateBuildEquivalence(gate_corpus.corpus, gate_queries);
  std::printf("all equivalence gates passed\n\n");

  // Throughput kernels at k = 16 (the default).
  const size_t row_tokens = quick ? 200000 : 1000000;
  Rng rng(13);
  std::vector<Token> tokens(row_tokens);
  for (auto& token : tokens) {
    token = static_cast<Token>(rng.Uniform(32000));
  }
  std::printf("%-26s %12s %6s %12s %12s %10s\n", "kernel", "hashes",
              "iters", "p50 us", "p95 us", "Mhash/s");
  std::vector<ThroughputReport> kernels;
  for (const SketchSchemeId id : kSchemes) {
    kernels.push_back(BenchRowFill(id, tokens, quick));
    PrintThroughput(kernels.back());
  }
  for (const SketchSchemeId id : kSchemes) {
    kernels.push_back(BenchComputeSketch(id, quick));
    PrintThroughput(kernels.back());
  }
  // Pairs are pushed kIndependent first, kCMinHash second.
  const auto speedup = [&](size_t indep, size_t cmin) {
    return kernels[cmin].time.p50_us > 0
               ? kernels[indep].time.p50_us / kernels[cmin].time.p50_us
               : 0;
  };
  const double row_fill_speedup = speedup(0, 1);
  const double sketch_speedup = speedup(2, 3);
  std::printf("\nhash-row fill speedup (cminhash vs kindependent): %.2fx\n",
              row_fill_speedup);
  std::printf("query-sketch speedup: %.2fx\n\n", sketch_speedup);

  // Full Fig 2 build + query latency per scheme.
  SyntheticCorpus sc =
      bench::MakeBenchCorpus(bench::Scaled(quick ? 500 : 2000), 32000, 1);
  const auto queries =
      bench::MakeQueries(sc.corpus, quick ? 30 : 100, 64, 0.05, 32000, 9);
  std::printf("%-14s %12s %10s %10s %10s\n", "build", "windows", "gen s",
              "sort s", "total s");
  std::vector<BuildReport> builds;
  for (const SketchSchemeId id : kSchemes) {
    builds.push_back(BenchBuild(id, sc.corpus));
    std::printf("%-14s %12llu %10.3f %10.3f %10.3f\n",
                builds.back().scheme.c_str(),
                static_cast<unsigned long long>(builds.back().windows),
                builds.back().generate_seconds, builds.back().sort_seconds,
                builds.back().total_seconds);
  }
  std::printf("\n%-14s %14s %12s\n", "query", "mean lat us", "mean spans");
  std::vector<QueryReport> query_reports;
  for (const SketchSchemeId id : kSchemes) {
    query_reports.push_back(BenchQuery(id, sc.corpus, queries));
    std::printf("%-14s %14.1f %12.2f\n", query_reports.back().scheme.c_str(),
                query_reports.back().mean_latency_us,
                query_reports.back().mean_spans);
  }

  // Estimation accuracy at the default and a high k.
  std::printf("\n%-14s %4s %8s %12s %12s\n", "accuracy", "k", "pairs",
              "bias", "mse");
  std::vector<AccuracyReport> accuracy;
  for (const uint32_t k : {16u, 64u}) {
    for (const AccuracyReport& r : BenchAccuracy(k, quick)) {
      accuracy.push_back(r);
      std::printf("%-14s %4u %8llu %12.5f %12.6f\n", r.scheme.c_str(), r.k,
                  static_cast<unsigned long long>(r.pairs), r.bias, r.mse);
    }
  }

  if (json) {
    bench::JsonWriter writer;
    writer.BeginObject();
    writer.Field("bench", std::string("sketch"));
    writer.Field("quick", quick);
    writer.Field("scale", bench::ScaleFactor());
    writer.Field("gates_passed", true);
    writer.Field("row_fill_speedup", row_fill_speedup);
    writer.Field("sketch_speedup", sketch_speedup);
    writer.BeginArray("kernels");
    for (const ThroughputReport& r : kernels) {
      writer.BeginObject();
      writer.Field("name", r.name);
      writer.Field("hashes", r.items);
      writer.Field("iters", static_cast<uint64_t>(r.iters));
      writer.Field("p50_us", r.time.p50_us);
      writer.Field("p95_us", r.time.p95_us);
      writer.Field("mhash_per_s", r.mhashes_per_s());
      writer.EndObject();
    }
    writer.EndArray();
    writer.BeginArray("build");
    for (const BuildReport& r : builds) {
      writer.BeginObject();
      writer.Field("scheme", r.scheme);
      writer.Field("windows", r.windows);
      writer.Field("generate_seconds", r.generate_seconds);
      writer.Field("sort_seconds", r.sort_seconds);
      writer.Field("total_seconds", r.total_seconds);
      writer.EndObject();
    }
    writer.EndArray();
    writer.BeginArray("query");
    for (const QueryReport& r : query_reports) {
      writer.BeginObject();
      writer.Field("scheme", r.scheme);
      writer.Field("mean_latency_us", r.mean_latency_us);
      writer.Field("mean_spans", r.mean_spans);
      writer.EndObject();
    }
    writer.EndArray();
    writer.BeginArray("accuracy");
    for (const AccuracyReport& r : accuracy) {
      writer.BeginObject();
      writer.Field("scheme", r.scheme);
      writer.Field("k", static_cast<uint64_t>(r.k));
      writer.Field("pairs", r.pairs);
      writer.Field("bias", r.bias);
      writer.Field("mse", r.mse);
      writer.EndObject();
    }
    writer.EndArray();
    writer.EndObject();
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fwrite(writer.str().data(), 1, writer.str().size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace ndss

int main(int argc, char** argv) { return ndss::Run(argc, argv); }
