// Figure 4: language-model memorization evaluation.
//   (a),(c): % of generated query sequences with near-duplicates in the
//            training corpus vs theta, for four simulated model capacities.
//   (b),(d): the same vs sliding-window width x in {32, 64, 128}.
//
// The four simulated models mirror the paper's (GPT-2 small/medium,
// GPT-Neo-1.3B/2.7B); see DESIGN.md §4 for the substitution rationale.

#include <cstdio>

#include "bench_util.h"
#include "eval/memorization_eval.h"
#include "index/index_builder.h"
#include "lm/memorizing_generator.h"

int main() {
  using namespace ndss;
  const uint32_t base_texts = bench::Scaled(2000);
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = base_texts;
  corpus_options.min_text_length = 200;
  corpus_options.max_text_length = 600;
  corpus_options.vocab_size = 16000;
  corpus_options.plant_rate = 0.0;
  corpus_options.seed = 4;
  SyntheticCorpus sc = GenerateSyntheticCorpus(corpus_options);

  IndexBuildOptions build;  // paper settings: x = 32, t = 25, k = 32
  build.k = 32;
  build.t = 25;
  const std::string dir = bench::ScratchDir("fig4");
  if (!BuildIndexInMemory(sc.corpus, dir, build).ok()) return 1;
  auto searcher = Searcher::Open(dir);
  if (!searcher.ok()) return 1;

  NGramModel model(3);
  model.Train(sc.corpus);
  SamplingOptions sampling;  // top-50, unprompted, as in the paper
  const uint32_t num_texts = 20;
  const uint32_t text_length = 512;

  bench::PrintHeader(
      "Figure 4(a),(c): memorization ratio vs theta per model size",
      "paper: ratio rises as theta drops; neo-2.7b > neo-1.3b; gpt2-small "
      "slightly above gpt2-medium (the paper's anomaly)");
  std::printf("%-18s", "model");
  for (double theta : {1.0, 0.9, 0.8, 0.7}) std::printf("  theta=%.1f", theta);
  std::printf("\n");
  for (const SimulatedModel& sim : DefaultSimulatedModels()) {
    MemorizingGenerator generator(model, sc.corpus, sim.profile, 777);
    const GeneratedTexts generated =
        generator.Generate(num_texts, text_length, sampling);
    std::printf("%-18s", sim.name.c_str());
    for (double theta : {1.0, 0.9, 0.8, 0.7}) {
      MemorizationEvalOptions eval;
      eval.window_width = 32;
      eval.search.theta = theta;
      auto report = EvaluateMemorization(*searcher, generated.texts, eval);
      if (!report.ok()) return 1;
      std::printf("  %8.1f%%", 100.0 * report->ratio);
    }
    std::printf("\n");
  }

  bench::PrintHeader(
      "Figure 4(b),(d): memorization ratio vs sliding-window width x",
      "paper: narrower windows -> higher ratio (short sequences match more "
      "easily)");
  std::printf("%-18s %10s %10s %10s   (theta = 0.8)\n", "model", "x=32",
              "x=64", "x=128");
  for (const SimulatedModel& sim : DefaultSimulatedModels()) {
    MemorizingGenerator generator(model, sc.corpus, sim.profile, 888);
    const GeneratedTexts generated =
        generator.Generate(num_texts, text_length, sampling);
    std::printf("%-18s", sim.name.c_str());
    for (uint32_t x : {32u, 64u, 128u}) {
      MemorizationEvalOptions eval;
      eval.window_width = x;
      eval.search.theta = 0.8;
      auto report = EvaluateMemorization(*searcher, generated.texts, eval);
      if (!report.ok()) return 1;
      std::printf(" %9.1f%%", 100.0 * report->ratio);
    }
    std::printf("\n");
  }
  return 0;
}
