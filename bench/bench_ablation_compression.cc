// Ablation: raw vs delta+varint-compressed posting lists — index size,
// build time, and query latency tradeoff.

#include <cstdio>

#include "bench_util.h"
#include "index/index_builder.h"

int main() {
  using namespace ndss;
  const uint32_t base_texts = bench::Scaled(4000);
  SyntheticCorpus sc = bench::MakeBenchCorpus(base_texts, 32000, 1);
  const auto queries =
      bench::MakeQueries(sc.corpus, 100, 64, 0.05, 32000, 29);

  bench::PrintHeader(
      "Ablation: posting-list compression (k = 16, t = 25, theta = 0.8)",
      "delta+varint with restart points at zone entries vs raw 16-byte "
      "records");
  std::printf("%-12s %12s %12s %12s %12s %10s\n", "format", "index MB",
              "build s", "latency ms", "io ms", "io KB");
  for (auto format : {index_format::kFormatRaw,
                      index_format::kFormatCompressed}) {
    IndexBuildOptions build;
    build.k = 16;
    build.t = 25;
    build.posting_format = format;
    const std::string dir = bench::ScratchDir(
        format == index_format::kFormatRaw ? "comp_raw" : "comp_varint");
    auto stats = BuildIndexInMemory(sc.corpus, dir, build);
    if (!stats.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    auto searcher = Searcher::Open(dir);
    if (!searcher.ok()) return 1;
    SearchOptions options;
    options.theta = 0.8;
    options.long_list_threshold = searcher->ListCountPercentile(0.10);
    const auto run = bench::RunQueries(*searcher, queries, options);
    std::printf("%-12s %12.2f %12.3f %12.3f %12.3f %10.1f\n",
                format == index_format::kFormatRaw ? "raw" : "compressed",
                stats->index_bytes / 1e6, stats->total_seconds,
                run.mean_latency * 1e3, run.mean_io_seconds * 1e3,
                run.mean_io_bytes / 1e3);
  }
  return 0;
}
