// Microbenchmark: token hashing and sketch computation throughput.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "hash/hash_family.h"

namespace ndss {
namespace {

std::vector<Token> RandomTokens(size_t n) {
  Rng rng(11);
  std::vector<Token> tokens(n);
  for (auto& token : tokens) token = static_cast<Token>(rng.Uniform(64000));
  return tokens;
}

void BM_TokenHash(benchmark::State& state) {
  HashFamily family(1, 3);
  const auto tokens = RandomTokens(4096);
  for (auto _ : state) {
    uint64_t acc = 0;
    for (Token token : tokens) acc ^= family.Hash(0, token);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * tokens.size());
}
BENCHMARK(BM_TokenHash);

void BM_ComputeSketch(benchmark::State& state) {
  HashFamily family(state.range(0), 3);
  const auto tokens = RandomTokens(64);  // a typical query window
  for (auto _ : state) {
    MinHashSketch sketch = ComputeSketch(family, tokens.data(), tokens.size());
    benchmark::DoNotOptimize(sketch.argmin_tokens.data());
  }
  state.SetItemsProcessed(state.iterations() * tokens.size() *
                          state.range(0));
}
BENCHMARK(BM_ComputeSketch)->Arg(16)->Arg(32)->Arg(64);

void BM_ExactJaccard(benchmark::State& state) {
  const auto a = RandomTokens(state.range(0));
  const auto b = RandomTokens(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ExactDistinctJaccard(a.data(), a.size(), b.data(), b.size()));
  }
}
BENCHMARK(BM_ExactJaccard)->Arg(64)->Arg(512);

}  // namespace
}  // namespace ndss
