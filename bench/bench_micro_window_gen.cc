// Microbenchmark: compact-window generation throughput per method and
// text length.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "hash/hash_family.h"
#include "window/window_generator.h"

namespace ndss {
namespace {

std::vector<Token> RandomText(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Token> text(n);
  for (auto& token : text) token = static_cast<Token>(rng.Uniform(32000));
  return text;
}

void BM_WindowGenStack(benchmark::State& state) {
  const std::vector<Token> text = RandomText(state.range(0), 1);
  HashFamily family(1, 7);
  WindowGenerator generator(WindowGenMethod::kMonotonicStack);
  std::vector<CompactWindow> windows;
  for (auto _ : state) {
    windows.clear();
    generator.Generate(family, 0, text, 25, &windows);
    benchmark::DoNotOptimize(windows.data());
  }
  state.SetItemsProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_WindowGenStack)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_WindowGenRmq(benchmark::State& state) {
  const std::vector<Token> text = RandomText(10000, 1);
  HashFamily family(1, 7);
  WindowGenerator generator(WindowGenMethod::kRmqDivideConquer,
                            static_cast<RmqKind>(state.range(0)));
  std::vector<CompactWindow> windows;
  for (auto _ : state) {
    windows.clear();
    generator.Generate(family, 0, text, 25, &windows);
    benchmark::DoNotOptimize(windows.data());
  }
  state.SetItemsProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_WindowGenRmq)
    ->Arg(static_cast<int>(RmqKind::kSegmentTree))
    ->Arg(static_cast<int>(RmqKind::kSparseTable))
    ->Arg(static_cast<int>(RmqKind::kFischerHeun));

void BM_WindowGenByThreshold(benchmark::State& state) {
  const std::vector<Token> text = RandomText(50000, 2);
  HashFamily family(1, 9);
  WindowGenerator generator;
  std::vector<CompactWindow> windows;
  for (auto _ : state) {
    windows.clear();
    generator.Generate(family, 0, text, state.range(0), &windows);
    benchmark::DoNotOptimize(windows.data());
  }
  state.SetItemsProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_WindowGenByThreshold)->Arg(25)->Arg(100)->Arg(400);

}  // namespace
}  // namespace ndss
