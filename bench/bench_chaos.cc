// Self-healing under injected I/O faults: degraded serving and recovery.
//
// Serves a 4-shard set through a self-healing ShardedSearcher with a
// FaultInjectionEnv underneath, and measures the three numbers an operator
// cares about when a shard goes bad:
//
//   1. what degraded serving costs — p50/p95 latency and the fraction of
//      answers missing the faulty shard while a fault storm is active;
//   2. how fast the breaker reacts — queries until the shard is quarantined
//      (after which queries stop paying for its failing reads at all);
//   3. how fast full service returns — wall-clock from Heal() until the
//      HealthMonitor's probe reopens the shard and answers are again
//      bit-identical to the never-faulted merged baseline (verified, not
//      assumed; a post-recovery mismatch exits 1).
//
// Usage: bench_chaos [--json] [--quick] [--out=PATH]
//   --json   also write the machine-readable report (default
//            BENCH_chaos.json; see README "Benchmark reports")
//   --quick  smaller corpus / fewer queries (CI-sized)
//   --out=   report path for --json

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/env.h"
#include "common/fault_injection_env.h"
#include "common/stopwatch.h"
#include "index/index_builder.h"
#include "index/index_merger.h"
#include "query/searcher.h"
#include "shard/sharded_searcher.h"

namespace ndss {
namespace {

struct Percentiles {
  double p50_us = 0;
  double p95_us = 0;
};

Percentiles ComputePercentiles(std::vector<double> micros) {
  Percentiles p;
  if (micros.empty()) return p;
  std::sort(micros.begin(), micros.end());
  p.p50_us = micros[micros.size() / 2];
  p.p95_us = micros[std::min(micros.size() - 1, micros.size() * 95 / 100)];
  return p;
}

bool SameMatches(const SearchResult& a, const SearchResult& b) {
  if (a.rectangles.size() != b.rectangles.size() ||
      a.spans.size() != b.spans.size()) {
    return false;
  }
  for (size_t i = 0; i < a.rectangles.size(); ++i) {
    if (a.rectangles[i].text != b.rectangles[i].text ||
        !(a.rectangles[i].rect == b.rectangles[i].rect)) {
      return false;
    }
  }
  for (size_t i = 0; i < a.spans.size(); ++i) {
    if (a.spans[i].text != b.spans[i].text ||
        a.spans[i].begin != b.spans[i].begin ||
        a.spans[i].end != b.spans[i].end ||
        a.spans[i].collisions != b.spans[i].collisions) {
      return false;
    }
  }
  return true;
}

struct PhaseReport {
  std::string name;
  double fail_probability = 0;
  size_t queries = 0;
  size_t degraded = 0;  ///< answers missing at least one shard
  Percentiles latency;
};

struct StormReport {
  double fail_probability = 0;
  PhaseReport storm;
  uint64_t drops = 0;  ///< exclusions charged to the shard
  uint64_t quarantines = 0;
  uint64_t reopens = 0;
  double recovery_ms = 0;  ///< Heal() -> healthy + bit-exact answers
};

template <typename SearchFn>
PhaseReport RunPhase(const std::string& name,
                     const std::vector<std::vector<Token>>& queries,
                     SearchFn&& search) {
  PhaseReport report;
  report.name = name;
  std::vector<double> micros;
  micros.reserve(queries.size());
  for (const auto& query : queries) {
    Stopwatch watch;
    Result<SearchResult> result = search(query);
    micros.push_back(watch.ElapsedMicros());
    ++report.queries;
    if (result.ok() && result->stats.degraded_shards > 0) ++report.degraded;
  }
  report.latency = ComputePercentiles(std::move(micros));
  return report;
}

void PrintPhase(const PhaseReport& r) {
  std::printf("%-16s %8.2f %8zu %9zu %12.1f %12.1f\n", r.name.c_str(),
              r.fail_probability, r.queries, r.degraded, r.latency.p50_us,
              r.latency.p95_us);
}

int Run(int argc, char** argv) {
  bool json = false;
  bool quick = false;
  std::string out_path = "BENCH_chaos.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--json] [--quick] [--out=PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  const uint32_t num_texts = bench::Scaled(quick ? 400 : 2000);
  const uint32_t vocab = 2000;
  const uint32_t num_queries = quick ? 80 : 300;
  const uint32_t num_shards = 4;
  const std::string dir = bench::ScratchDir("chaos");

  bench::PrintHeader(
      "Self-healing under injected I/O faults",
      "one shard's reads fail with probability p; after each storm the set "
      "must heal back to bit-identical answers or the bench exits 1");
  std::printf("corpus: %u texts over %u shards, %u queries per phase\n\n",
              num_texts, num_shards, num_queries);

  SyntheticCorpus sc = bench::MakeBenchCorpus(num_texts, vocab, 4242);
  const auto queries =
      bench::MakeQueries(sc.corpus, num_queries, 40, 0.1, vocab, 77);
  SearchOptions options;
  options.theta = 0.6;

  IndexBuildOptions build;
  build.k = 8;
  build.t = 20;
  std::vector<std::string> shard_dirs;
  for (uint32_t s = 0; s < num_shards; ++s) {
    Corpus shard;
    const uint32_t begin = s * num_texts / num_shards;
    const uint32_t end = (s + 1) * num_texts / num_shards;
    for (uint32_t i = begin; i < end; ++i) shard.AddText(sc.corpus.text(i));
    const std::string shard_dir = dir + "/s" + std::to_string(s);
    auto built = BuildIndexInMemory(shard, shard_dir, build);
    if (!built.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    shard_dirs.push_back(shard_dir);
  }
  auto merged = MergeIndexes(shard_dirs, dir + "/merged", IndexMergeOptions{});
  if (!merged.ok()) {
    std::fprintf(stderr, "merge failed: %s\n",
                 merged.status().ToString().c_str());
    return 1;
  }
  ShardManifest manifest;
  manifest.shard_dirs = shard_dirs;
  if (!manifest.Save(dir + "/set").ok()) return 1;

  // The baseline opens its files through the real env before fault
  // injection is installed; the sharded searcher opens after, so every one
  // of its preads routes through the fault env.
  auto baseline = Searcher::Open(dir + "/merged");
  if (!baseline.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 baseline.status().ToString().c_str());
    return 1;
  }
  auto fault = std::make_unique<FaultInjectionEnv>(Env::Posix());
  SetDefaultEnv(fault.get());

  ShardedSearcherOptions serve;
  serve.enable_self_healing = true;
  serve.health.consecutive_failures_to_quarantine = 2;
  serve.health.initial_probe_delay_micros = 1000;
  serve.health.max_probe_delay_micros = 100'000;
  serve.health.monitor_poll_micros = 1000;

  int exit_code = 0;
  std::vector<PhaseReport> phases;
  std::vector<StormReport> storms;
  {
    auto sharded = ShardedSearcher::Open(dir + "/set", serve);
    if (!sharded.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   sharded.status().ToString().c_str());
      SetDefaultEnv(nullptr);
      return 1;
    }
    const auto search = [&](const std::vector<Token>& q) {
      return sharded->Search(q, options);
    };
    const auto counters = [&] { return sharded->shards()[1].health; };

    std::printf("%-16s %8s %8s %9s %12s %12s\n", "phase", "p", "queries",
                "degraded", "p50 us", "p95 us");
    phases.push_back(RunPhase("healthy", queries, search));
    PrintPhase(phases.back());

    for (const double p : {0.05, 0.5}) {
      ShardHealthSnapshot before = counters();
      fault->SetFaultPathFilter(shard_dirs[1]);
      fault->SetFailProbability(p, /*seed=*/0x9E3779B9 ^ uint64_t(p * 1000));

      StormReport storm;
      storm.fail_probability = p;
      storm.storm = RunPhase("storm", queries, search);
      storm.storm.fail_probability = p;
      PrintPhase(storm.storm);

      // Storm over: clear faults and time the heal-and-verify loop.
      fault->Heal();
      Stopwatch recovery;
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(30);
      bool healed = false;
      while (std::chrono::steady_clock::now() < deadline) {
        bool all_healthy = true;
        for (const ShardInfo& info : sharded->shards()) {
          all_healthy = all_healthy &&
                        info.health.state == ShardHealth::kHealthy &&
                        !info.dropped;
        }
        if (all_healthy) {
          healed = true;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      if (healed) {
        for (size_t q = 0; q < queries.size(); ++q) {
          auto expected = baseline->Search(queries[q], options);
          auto actual = sharded->Search(queries[q], options);
          if (!expected.ok() || !actual.ok() ||
              actual->stats.degraded_shards != 0 ||
              !SameMatches(*expected, *actual)) {
            std::fprintf(stderr,
                         "FATAL: post-recovery answer for query %zu is not "
                         "bit-identical to the merged baseline (p=%.2f)\n",
                         q, p);
            exit_code = 1;
            break;
          }
        }
      } else {
        std::fprintf(stderr,
                     "FATAL: shard set did not heal within 30s of the "
                     "p=%.2f storm clearing\n",
                     p);
        exit_code = 1;
      }
      storm.recovery_ms = recovery.ElapsedMillis();

      ShardHealthSnapshot after = counters();
      storm.drops = after.drops - before.drops;
      storm.quarantines = after.quarantines - before.quarantines;
      storm.reopens = after.reopens - before.reopens;
      std::printf(
          "  p=%.2f: drops=%llu quarantines=%llu reopens=%llu "
          "recovery=%.1f ms\n",
          p, static_cast<unsigned long long>(storm.drops),
          static_cast<unsigned long long>(storm.quarantines),
          static_cast<unsigned long long>(storm.reopens), storm.recovery_ms);
      storms.push_back(storm);

      phases.push_back(RunPhase("recovered", queries, search));
      PrintPhase(phases.back());
      if (exit_code != 0) break;
    }
  }
  SetDefaultEnv(nullptr);

  if (json) {
    bench::JsonWriter writer;
    writer.BeginObject();
    writer.Field("bench", std::string("chaos"));
    writer.Field("quick", quick);
    writer.Field("scale", bench::ScaleFactor());
    writer.Field("num_texts", static_cast<uint64_t>(num_texts));
    writer.Field("num_shards", static_cast<uint64_t>(num_shards));
    writer.Field("num_queries", static_cast<uint64_t>(num_queries));
    writer.Field("recovered_bit_identical", exit_code == 0);
    writer.BeginArray("phases");
    for (const PhaseReport& r : phases) {
      writer.BeginObject();
      writer.Field("phase", r.name);
      writer.Field("fail_probability", r.fail_probability);
      writer.Field("queries", static_cast<uint64_t>(r.queries));
      writer.Field("degraded", static_cast<uint64_t>(r.degraded));
      writer.Field("p50_us", r.latency.p50_us);
      writer.Field("p95_us", r.latency.p95_us);
      writer.EndObject();
    }
    writer.EndArray();
    writer.BeginArray("storms");
    for (const StormReport& s : storms) {
      writer.BeginObject();
      writer.Field("fail_probability", s.fail_probability);
      writer.Field("degraded", static_cast<uint64_t>(s.storm.degraded));
      writer.Field("storm_p50_us", s.storm.latency.p50_us);
      writer.Field("storm_p95_us", s.storm.latency.p95_us);
      writer.Field("drops", s.drops);
      writer.Field("quarantines", s.quarantines);
      writer.Field("reopens", s.reopens);
      writer.Field("recovery_ms", s.recovery_ms);
      writer.EndObject();
    }
    writer.EndArray();
    writer.EndObject();
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fwrite(writer.str().data(), 1, writer.str().size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return exit_code;
}

}  // namespace
}  // namespace ndss

int main(int argc, char** argv) { return ndss::Run(argc, argv); }
