// Recall/accuracy extension experiment: the paper proves the search is
// sound and complete for Definition 2 (min-hash collisions); here we
// measure end-to-end recall of *planted* near-duplicates (known ground
// truth) as a function of theta and the perturbation rate — the guarantee
// users actually care about — plus agreement with the brute-force scan.

#include <cstdio>

#include "baseline/brute_force.h"
#include "bench_util.h"
#include "index/index_builder.h"

int main() {
  using namespace ndss;
  const uint32_t base_texts = bench::Scaled(800);

  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = base_texts;
  corpus_options.vocab_size = 16000;
  corpus_options.plant_rate = 0.0;  // queries are planted manually below
  corpus_options.seed = 6;
  SyntheticCorpus sc = GenerateSyntheticCorpus(corpus_options);

  IndexBuildOptions build;
  build.k = 32;
  build.t = 25;
  const std::string dir = bench::ScratchDir("recall");
  if (!BuildIndexInMemory(sc.corpus, dir, build).ok()) return 1;
  auto searcher = Searcher::Open(dir);
  if (!searcher.ok()) return 1;

  bench::PrintHeader(
      "Recall of planted near-duplicates vs theta and noise (k = 32)",
      "each query is a corpus span with a fraction of tokens re-randomized; "
      "recall = share of queries whose source span is found");
  std::printf("%7s %7s %10s %12s %14s\n", "noise", "theta", "recall",
              "mean spans", "mean est.sim");
  Rng rng(99);
  for (double noise : {0.0, 0.05, 0.10, 0.20}) {
    const uint32_t kQueries = 100;
    struct PlantedQuery {
      TextId source;
      uint32_t begin;
      uint32_t length;
      std::vector<Token> tokens;
    };
    std::vector<PlantedQuery> queries;
    while (queries.size() < kQueries) {
      const TextId id =
          static_cast<TextId>(rng.Uniform(sc.corpus.num_texts()));
      const auto text = sc.corpus.text(id);
      const uint32_t length = 64;
      if (text.size() < length) continue;
      const uint32_t begin =
          static_cast<uint32_t>(rng.Uniform(text.size() - length + 1));
      queries.push_back({id, begin, length,
                         PerturbSequence(text, begin, length, noise,
                                         corpus_options.vocab_size, rng)});
    }
    for (double theta : {0.9, 0.8, 0.7}) {
      SearchOptions options;
      options.theta = theta;
      uint32_t recalled = 0;
      double total_spans = 0, total_sim = 0;
      uint64_t sim_count = 0;
      for (const PlantedQuery& pq : queries) {
        auto result = searcher->Search(pq.tokens, options);
        if (!result.ok()) return 1;
        total_spans += static_cast<double>(result->spans.size());
        for (const MatchSpan& span : result->spans) {
          total_sim += span.estimated_similarity;
          ++sim_count;
          // The source span counts as recalled if a reported span of the
          // source text overlaps it.
          if (span.text == pq.source && span.begin <= pq.begin + pq.length &&
              pq.begin <= span.end) {
            ++recalled;
            break;
          }
        }
      }
      std::printf("%7.2f %7.2f %9.1f%% %12.2f %14.3f\n", noise, theta,
                  100.0 * recalled / kQueries, total_spans / kQueries,
                  sim_count == 0 ? 0.0 : total_sim / sim_count);
    }
  }

  bench::PrintHeader(
      "Agreement with brute-force Definition 2 scan (Theorem 2 check)",
      "the index search must find exactly the same sequence set as the "
      "brute-force min-hash scan");
  {
    // Small sub-corpus so the brute force is feasible.
    Corpus small;
    for (size_t i = 0; i < 40 && i < sc.corpus.num_texts(); ++i) {
      small.AddText(sc.corpus.text(i));
    }
    IndexBuildOptions small_build;
    small_build.k = 16;
    small_build.t = 25;
    const std::string small_dir = bench::ScratchDir("recall_small");
    if (!BuildIndexInMemory(small, small_dir, small_build).ok()) return 1;
    auto small_searcher = Searcher::Open(small_dir);
    if (!small_searcher.ok()) return 1;
    HashFamily family(small_build.k, small_build.seed);
    Rng qrng(7);
    const auto queries = bench::MakeQueries(small, 10, 48, 0.1, 16000, 3);
    uint32_t agreements = 0;
    for (const auto& query : queries) {
      SearchOptions options;
      options.theta = 0.7;
      options.merge_matches = false;
      auto result = small_searcher->Search(query, options);
      if (!result.ok()) return 1;
      const auto baseline =
          BruteForceApproxSearch(small, family, query, 0.7, small_build.t);
      // Count distinct sequences from rectangles.
      uint64_t rect_sequences = 0;
      for (const TextMatchRectangle& tr : result->rectangles) {
        for (uint32_t i = tr.rect.x_begin; i <= tr.rect.x_end; ++i) {
          for (uint32_t j = std::max(tr.rect.y_begin,
                                     i + small_build.t - 1);
               j <= tr.rect.y_end; ++j) {
            ++rect_sequences;
          }
        }
      }
      if (rect_sequences == baseline.size()) ++agreements;
    }
    std::printf("queries with exact sequence-set agreement: %u / %zu\n",
                agreements, queries.size());
  }
  return 0;
}
