// Sharded scatter-gather vs merged-index baseline.
//
// Partitions one corpus into 1/2/4/8 shards, serves each partition through
// a ShardedSearcher, and compares per-query latency and QPS against a
// single Searcher over MergeIndexes of the same shards. Before any timing,
// every shard count's answers are verified bit-identical (spans and
// rectangles) against the merged baseline on the bench query set — a
// mismatch exits 1, which is what the nightly CI step keys on.
//
// Usage: bench_sharded_query [--json] [--quick] [--out=PATH]
//   --json   also write the machine-readable report (default
//            BENCH_sharded_query.json; see README "Benchmark reports")
//   --quick  smaller corpus / fewer queries (CI-sized)
//   --out=   report path for --json

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "index/index_builder.h"
#include "index/index_merger.h"
#include "query/searcher.h"
#include "shard/sharded_searcher.h"

namespace ndss {
namespace {

struct Percentiles {
  double p50_us = 0;
  double p95_us = 0;
};

Percentiles ComputePercentiles(std::vector<double> micros) {
  Percentiles p;
  if (micros.empty()) return p;
  std::sort(micros.begin(), micros.end());
  p.p50_us = micros[micros.size() / 2];
  p.p95_us = micros[std::min(micros.size() - 1, micros.size() * 95 / 100)];
  return p;
}

struct RunReport {
  std::string name;
  uint64_t shards = 0;
  Percentiles latency;
  double qps = 0;
  double mean_spans = 0;
};

[[noreturn]] void FailEquivalence(uint64_t shards, size_t query) {
  std::fprintf(stderr,
               "FATAL: %llu-shard scatter-gather disagrees with the merged "
               "baseline on query %zu\n",
               static_cast<unsigned long long>(shards), query);
  std::exit(1);
}

bool SameMatches(const SearchResult& a, const SearchResult& b) {
  if (a.rectangles.size() != b.rectangles.size() ||
      a.spans.size() != b.spans.size()) {
    return false;
  }
  for (size_t i = 0; i < a.rectangles.size(); ++i) {
    if (a.rectangles[i].text != b.rectangles[i].text ||
        !(a.rectangles[i].rect == b.rectangles[i].rect)) {
      return false;
    }
  }
  for (size_t i = 0; i < a.spans.size(); ++i) {
    if (a.spans[i].text != b.spans[i].text ||
        a.spans[i].begin != b.spans[i].begin ||
        a.spans[i].end != b.spans[i].end ||
        a.spans[i].collisions != b.spans[i].collisions) {
      return false;
    }
  }
  return true;
}

template <typename SearchFn>
RunReport TimeQueries(const std::string& name, uint64_t shards,
                      const std::vector<std::vector<Token>>& queries,
                      SearchFn&& search) {
  RunReport report;
  report.name = name;
  report.shards = shards;
  std::vector<double> micros;
  micros.reserve(queries.size());
  Stopwatch total;
  for (const auto& query : queries) {
    Stopwatch watch;
    Result<SearchResult> result = search(query);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    micros.push_back(watch.ElapsedMicros());
    report.mean_spans += static_cast<double>(result->spans.size());
  }
  const double total_seconds = total.ElapsedSeconds();
  report.qps = total_seconds > 0 ? queries.size() / total_seconds : 0;
  report.latency = ComputePercentiles(std::move(micros));
  report.mean_spans /= static_cast<double>(queries.size());
  return report;
}

void PrintRun(const RunReport& r) {
  std::printf("%-18s %7llu %12.1f %12.1f %10.1f %12.2f\n", r.name.c_str(),
              static_cast<unsigned long long>(r.shards), r.latency.p50_us,
              r.latency.p95_us, r.qps, r.mean_spans);
}

int Run(int argc, char** argv) {
  bool json = false;
  bool quick = false;
  std::string out_path = "BENCH_sharded_query.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--json] [--quick] [--out=PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  const uint32_t num_texts = bench::Scaled(quick ? 400 : 3000);
  const uint32_t vocab = 2000;
  const uint32_t num_queries = quick ? 60 : 300;
  const std::string dir = bench::ScratchDir("sharded_query");

  bench::PrintHeader(
      "Sharded scatter-gather vs merged baseline",
      "each shard count is verified bit-identical against the merged index "
      "on the full query set before timing; a mismatch aborts with exit 1");
  std::printf("corpus: %u texts, vocab %u, %u queries\n\n", num_texts, vocab,
              num_queries);

  SyntheticCorpus sc = bench::MakeBenchCorpus(num_texts, vocab, 1234);
  const auto queries =
      bench::MakeQueries(sc.corpus, num_queries, 40, 0.1, vocab, 99);
  SearchOptions options;
  options.theta = 0.6;

  IndexBuildOptions build;
  build.k = 8;
  build.t = 20;

  std::printf("%-18s %7s %12s %12s %10s %12s\n", "serving", "shards",
              "p50 us", "p95 us", "QPS", "spans/query");

  std::vector<RunReport> runs;
  for (const uint32_t num_shards : {1u, 2u, 4u, 8u}) {
    // Partition the corpus into `num_shards` contiguous shards and build
    // each one.
    const std::string base = dir + "/n" + std::to_string(num_shards);
    std::vector<std::string> shard_dirs;
    for (uint32_t s = 0; s < num_shards; ++s) {
      Corpus shard;
      const uint32_t begin = s * num_texts / num_shards;
      const uint32_t end = (s + 1) * num_texts / num_shards;
      for (uint32_t i = begin; i < end; ++i) shard.AddText(sc.corpus.text(i));
      const std::string shard_dir = base + "/s" + std::to_string(s);
      auto built = BuildIndexInMemory(shard, shard_dir, build);
      if (!built.ok()) {
        std::fprintf(stderr, "build failed: %s\n",
                     built.status().ToString().c_str());
        return 1;
      }
      shard_dirs.push_back(shard_dir);
    }
    auto merged =
        MergeIndexes(shard_dirs, base + "/merged", IndexMergeOptions{});
    if (!merged.ok()) {
      std::fprintf(stderr, "merge failed: %s\n",
                   merged.status().ToString().c_str());
      return 1;
    }

    ShardManifest manifest;
    manifest.shard_dirs = shard_dirs;
    if (!manifest.Save(base + "/set").ok()) return 1;
    auto sharded = ShardedSearcher::Open(base + "/set");
    auto baseline = Searcher::Open(base + "/merged");
    if (!sharded.ok() || !baseline.ok()) {
      std::fprintf(stderr, "open failed\n");
      return 1;
    }

    // Equivalence gate before any timing.
    for (size_t q = 0; q < queries.size(); ++q) {
      auto expected = baseline->Search(queries[q], options);
      auto actual = sharded->Search(queries[q], options);
      if (!expected.ok() || !actual.ok() ||
          !SameMatches(*expected, *actual)) {
        FailEquivalence(num_shards, q);
      }
    }

    runs.push_back(TimeQueries("merged", num_shards, queries,
                               [&](const std::vector<Token>& q) {
                                 return baseline->Search(q, options);
                               }));
    PrintRun(runs.back());
    runs.push_back(TimeQueries("scatter-gather", num_shards, queries,
                               [&](const std::vector<Token>& q) {
                                 return sharded->Search(q, options);
                               }));
    PrintRun(runs.back());
  }

  if (json) {
    bench::JsonWriter writer;
    writer.BeginObject();
    writer.Field("bench", std::string("sharded_query"));
    writer.Field("quick", quick);
    writer.Field("scale", bench::ScaleFactor());
    writer.Field("num_texts", static_cast<uint64_t>(num_texts));
    writer.Field("num_queries", static_cast<uint64_t>(num_queries));
    writer.Field("equivalence_verified", true);
    writer.BeginArray("runs");
    for (const RunReport& r : runs) {
      writer.BeginObject();
      writer.Field("serving", r.name);
      writer.Field("shards", r.shards);
      writer.Field("p50_us", r.latency.p50_us);
      writer.Field("p95_us", r.latency.p95_us);
      writer.Field("qps", r.qps);
      writer.Field("mean_spans", r.mean_spans);
      writer.EndObject();
    }
    writer.EndArray();
    writer.EndObject();
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fwrite(writer.str().data(), 1, writer.str().size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace ndss

int main(int argc, char** argv) { return ndss::Run(argc, argv); }
