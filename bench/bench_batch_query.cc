// Extension: batch query throughput. The Section 5 evaluation issues one
// query per sliding window — thousands of queries against the same index.
// SearchBatch shares a pass-1 list cache across the batch, so Zipf-skewed
// hot lists are read once instead of once per query.
//
// The second section measures governed batches: per-query deadlines trade
// completeness for tail latency (p99 is bounded by the deadline plus one
// checkpoint interval), and an aggregate batch deadline sheds the queue
// tail instead of blocking on it.

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "index/index_builder.h"

namespace {

/// Linear-interpolated percentile of an unsorted sample (q in [0, 1]).
double Percentile(std::vector<double> sample, double q) {
  if (sample.empty()) return 0;
  std::sort(sample.begin(), sample.end());
  const double pos = q * (sample.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sample.size() - 1);
  return sample[lo] + (pos - lo) * (sample[hi] - sample[lo]);
}

}  // namespace

int main() {
  using namespace ndss;
  const uint32_t base_texts = bench::Scaled(4000);
  SyntheticCorpus sc = bench::MakeBenchCorpus(base_texts, 32000, 1);
  IndexBuildOptions build;
  build.k = 16;
  build.t = 25;
  const std::string dir = bench::ScratchDir("batch_query");
  if (!BuildIndexInMemory(sc.corpus, dir, build).ok()) return 1;
  auto searcher = Searcher::Open(dir);
  if (!searcher.ok()) return 1;

  const auto queries =
      bench::MakeQueries(sc.corpus, 500, 64, 0.05, 32000, 37);
  SearchOptions options;
  options.theta = 0.8;
  options.long_list_threshold = searcher->ListCountPercentile(0.10);

  bench::PrintHeader(
      "Batch query processing (500 queries, k = 16, theta = 0.8)",
      "SearchBatch shares a pass-1 list cache across queries");
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u%s\n", hw,
              hw <= 1 ? "  (parallel modes can only measure overhead here)"
                      : "");

  // One-by-one.
  Stopwatch watch;
  uint64_t single_spans = 0;
  for (const auto& query : queries) {
    auto result = searcher->Search(query, options);
    if (!result.ok()) return 1;
    single_spans += result->spans.size();
  }
  const double single_seconds = watch.ElapsedSeconds();

  // Batched, sequential and parallel.
  std::printf("%-14s %12s %14s %12s %12s\n", "mode", "seconds",
              "queries/sec", "spans", "cache hits");
  std::printf("%-14s %12.3f %14.1f %12llu %12s\n", "one-by-one",
              single_seconds, queries.size() / single_seconds,
              static_cast<unsigned long long>(single_spans), "-");
  double sequential_seconds = 0;
  bool spans_agree = true;
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    watch.Restart();
    auto batch = searcher->SearchBatch(queries, options,
                                       /*cache_budget_bytes=*/256ull << 20,
                                       threads);
    if (!batch.ok()) return 1;
    const double batch_seconds = watch.ElapsedSeconds();
    if (threads == 1) sequential_seconds = batch_seconds;
    uint64_t batch_spans = 0, cache_hits = 0, batch_io = 0;
    for (const SearchResult& result : *batch) {
      batch_spans += result.spans.size();
      cache_hits += result.stats.cache_hits;
      batch_io += result.stats.io_bytes;
    }
    spans_agree = spans_agree && batch_spans == single_spans;
    char mode[32];
    std::snprintf(mode, sizeof(mode), "batch x%zu", threads);
    std::printf("%-14s %12.3f %14.1f %12llu %12llu  (io %.1f MB, "
                "%.2fx vs 1-by-1, %.2fx vs batch x1)\n",
                mode, batch_seconds, queries.size() / batch_seconds,
                static_cast<unsigned long long>(batch_spans),
                static_cast<unsigned long long>(cache_hits), batch_io / 1e6,
                single_seconds / batch_seconds,
                sequential_seconds / batch_seconds);
  }
  std::printf("identical span totals across all modes: %s\n",
              spans_agree ? "yes" : "NO (BUG)");

  // Governed batches: sweep per-query deadlines, then cap the whole batch.
  bench::PrintHeader(
      "Governed batch (4 threads): deadline vs tail latency and shed rate",
      "latency percentiles over completed queries (shed ones excluded)");
  std::printf("%-22s %10s %10s %10s %8s %8s %8s %9s\n", "limits", "p50 ms",
              "p95 ms", "p99 ms", "ok", "dl_exc", "shed", "shed rate");
  struct Setting {
    const char* name;
    int64_t query_micros;
    int64_t batch_micros;
  };
  const Setting settings[] = {
      {"none", 0, 0},
      {"query 10ms", 10'000, 0},
      {"query 1ms", 1'000, 0},
      {"query 0.2ms", 200, 0},
      {"batch 20ms", 0, 20'000},
  };
  bool governed_ok = true;
  for (const Setting& setting : settings) {
    BatchLimits limits;
    limits.query_timeout_micros = setting.query_micros;
    limits.batch_timeout_micros = setting.batch_micros;
    auto governed = searcher->SearchBatch(queries, options, limits,
                                          /*cache_budget_bytes=*/256ull << 20,
                                          /*num_threads=*/4);
    if (!governed.ok()) return 1;
    std::vector<double> latencies_ms;
    for (size_t i = 0; i < governed->results.size(); ++i) {
      // A shed query never ran; its zero wall time would skew the tail.
      if (governed->statuses[i].IsCancelled()) continue;
      latencies_ms.push_back(governed->results[i].stats.wall_seconds * 1e3);
    }
    const BatchStats& stats = governed->stats;
    governed_ok = governed_ok &&
                  stats.queries_ok + stats.queries_deadline_exceeded +
                          stats.queries_shed +
                          stats.queries_resource_exhausted +
                          stats.queries_failed ==
                      queries.size();
    std::printf("%-22s %10.3f %10.3f %10.3f %8llu %8llu %8llu %8.1f%%\n",
                setting.name, Percentile(latencies_ms, 0.50),
                Percentile(latencies_ms, 0.95),
                Percentile(latencies_ms, 0.99),
                static_cast<unsigned long long>(stats.queries_ok),
                static_cast<unsigned long long>(
                    stats.queries_deadline_exceeded),
                static_cast<unsigned long long>(stats.queries_shed),
                100.0 * stats.queries_shed / queries.size());
  }
  std::printf("governance counters partition every batch: %s\n",
              governed_ok ? "yes" : "NO (BUG)");
  return spans_agree && governed_ok ? 0 : 1;
}
