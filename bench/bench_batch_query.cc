// Extension: batch query throughput. The Section 5 evaluation issues one
// query per sliding window — thousands of queries against the same index.
// SearchBatch shares a pass-1 list cache across the batch, so Zipf-skewed
// hot lists are read once instead of once per query.

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "index/index_builder.h"

int main() {
  using namespace ndss;
  const uint32_t base_texts = bench::Scaled(4000);
  SyntheticCorpus sc = bench::MakeBenchCorpus(base_texts, 32000, 1);
  IndexBuildOptions build;
  build.k = 16;
  build.t = 25;
  const std::string dir = bench::ScratchDir("batch_query");
  if (!BuildIndexInMemory(sc.corpus, dir, build).ok()) return 1;
  auto searcher = Searcher::Open(dir);
  if (!searcher.ok()) return 1;

  const auto queries =
      bench::MakeQueries(sc.corpus, 500, 64, 0.05, 32000, 37);
  SearchOptions options;
  options.theta = 0.8;
  options.long_list_threshold = searcher->ListCountPercentile(0.10);

  bench::PrintHeader(
      "Batch query processing (500 queries, k = 16, theta = 0.8)",
      "SearchBatch shares a pass-1 list cache across queries");

  // One-by-one.
  Stopwatch watch;
  uint64_t single_spans = 0;
  for (const auto& query : queries) {
    auto result = searcher->Search(query, options);
    if (!result.ok()) return 1;
    single_spans += result->spans.size();
  }
  const double single_seconds = watch.ElapsedSeconds();

  // Batched.
  watch.Restart();
  auto batch = searcher->SearchBatch(queries, options);
  if (!batch.ok()) return 1;
  const double batch_seconds = watch.ElapsedSeconds();
  uint64_t batch_spans = 0, cache_hits = 0, batch_io = 0;
  for (const SearchResult& result : *batch) {
    batch_spans += result.spans.size();
    cache_hits += result.stats.cache_hits;
    batch_io += result.stats.io_bytes;
  }

  std::printf("%-14s %12s %14s %12s %12s\n", "mode", "seconds",
              "queries/sec", "spans", "cache hits");
  std::printf("%-14s %12.3f %14.1f %12llu %12s\n", "one-by-one",
              single_seconds, queries.size() / single_seconds,
              static_cast<unsigned long long>(single_spans), "-");
  std::printf("%-14s %12.3f %14.1f %12llu %12llu\n", "batched",
              batch_seconds, queries.size() / batch_seconds,
              static_cast<unsigned long long>(batch_spans),
              static_cast<unsigned long long>(cache_hits));
  std::printf("batched IO: %.1f MB; speedup %.2fx; identical span totals: "
              "%s\n",
              batch_io / 1e6, single_seconds / batch_seconds,
              single_spans == batch_spans ? "yes" : "NO (BUG)");
  return single_spans == batch_spans ? 0 : 1;
}
