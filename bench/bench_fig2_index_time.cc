// Figure 2(i)-(l): index construction time (compact-window generation CPU
// vs disk IO) vs t, k, and corpus size, for both the in-memory build
// (Algorithm 1) and the out-of-core hash-aggregation build.

#include <cstdio>

#include "bench_util.h"
#include "index/index_builder.h"
#include "text/corpus_file.h"

int main() {
  using namespace ndss;
  const uint32_t base_texts = bench::Scaled(2000);
  SyntheticCorpus sc = bench::MakeBenchCorpus(base_texts, 32000, 1);

  bench::PrintHeader(
      "Figure 2(i)-(j): index build time vs t and k (in-memory build)",
      "paper: time inversely proportional to t, linear in k; bars split "
      "into generation (CPU) and IO");
  std::printf("corpus: %zu texts, %llu tokens\n", sc.corpus.num_texts(),
              static_cast<unsigned long long>(sc.corpus.total_tokens()));
  std::printf("%6s %4s %10s %10s %10s %10s\n", "t", "k", "gen s", "sort s",
              "io s", "total s");
  for (uint32_t t : {25u, 50u, 100u}) {
    for (uint32_t k : {1u, 4u, 16u}) {
      IndexBuildOptions options;
      options.k = k;
      options.t = t;
      const std::string dir = bench::ScratchDir("fig2_time");
      auto stats = BuildIndexInMemory(sc.corpus, dir, options);
      if (!stats.ok()) {
        std::fprintf(stderr, "build failed: %s\n",
                     stats.status().ToString().c_str());
        return 1;
      }
      std::printf("%6u %4u %10.3f %10.3f %10.3f %10.3f\n", t, k,
                  stats->generate_seconds, stats->sort_seconds,
                  stats->io_seconds, stats->total_seconds);
    }
  }

  bench::PrintHeader(
      "Figure 2(k): index build time vs corpus size (in-memory build)",
      "paper: time linear in corpus size");
  std::printf("%10s %12s %10s %10s %10s\n", "texts", "tokens", "gen s",
              "io s", "total s");
  for (uint32_t factor : {1u, 2u, 4u}) {
    SyntheticCorpus scaled =
        bench::MakeBenchCorpus(base_texts * factor / 2, 32000, 5);
    IndexBuildOptions options;
    options.k = 4;
    options.t = 50;
    const std::string dir = bench::ScratchDir("fig2_time_scale");
    auto stats = BuildIndexInMemory(scaled.corpus, dir, options);
    if (!stats.ok()) return 1;
    std::printf("%10zu %12llu %10.3f %10.3f %10.3f\n",
                scaled.corpus.num_texts(),
                static_cast<unsigned long long>(
                    scaled.corpus.total_tokens()),
                stats->generate_seconds, stats->io_seconds,
                stats->total_seconds);
  }

  bench::PrintHeader(
      "Figure 2(l): out-of-core hash-aggregation build (Section 3.4)",
      "streamed batches + spill partitions; same index as in-memory");
  {
    const std::string dir = bench::ScratchDir("fig2_external");
    const std::string corpus_path = dir + "/corpus.crp";
    if (!WriteCorpusFile(corpus_path, sc.corpus).ok()) return 1;
    IndexBuildOptions options;
    options.k = 4;
    options.t = 50;
    options.batch_tokens = 1 << 18;  // force many batches
    options.num_partitions = 8;
    auto stats = BuildIndexExternal(corpus_path, dir + "/idx", options);
    if (!stats.ok()) {
      std::fprintf(stderr, "external build failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    std::printf("windows %llu  spill %.1f MB  gen %.3f s  sort %.3f s  "
                "io %.3f s  total %.3f s\n",
                static_cast<unsigned long long>(stats->num_windows),
                stats->spill_bytes / 1e6, stats->generate_seconds,
                stats->sort_seconds, stats->io_seconds,
                stats->total_seconds);
  }
  return 0;
}
