// Ablation: compact-window generation cost by method — the paper's RMQ
// divide-and-conquer with three RMQ structures (segment tree = ALIGN's
// O(n log n); sparse table; Fischer–Heun O(n)/O(1)) versus the equivalent
// single-pass monotonic stack.

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "hash/hash_family.h"
#include "window/window_generator.h"

int main() {
  using namespace ndss;
  const uint32_t base_texts = bench::Scaled(2000);
  SyntheticCorpus sc = bench::MakeBenchCorpus(base_texts, 32000, 1);
  const HashFamily family(1, 42);

  bench::PrintHeader(
      "Ablation: window-generation method (t = 25, k = 1)",
      "same window set from every method; throughput differs");
  std::printf("corpus: %zu texts, %llu tokens\n", sc.corpus.num_texts(),
              static_cast<unsigned long long>(sc.corpus.total_tokens()));

  struct Config {
    WindowGenMethod method;
    RmqKind rmq;
    const char* name;
  };
  const Config configs[] = {
      {WindowGenMethod::kMonotonicStack, RmqKind::kFischerHeun,
       "monotonic_stack"},
      {WindowGenMethod::kRmqDivideConquer, RmqKind::kSegmentTree,
       "rmq_segment_tree (ALIGN)"},
      {WindowGenMethod::kRmqDivideConquer, RmqKind::kSparseTable,
       "rmq_sparse_table"},
      {WindowGenMethod::kRmqDivideConquer, RmqKind::kFischerHeun,
       "rmq_fischer_heun"},
  };

  std::printf("%-26s %12s %12s %14s\n", "method", "windows", "seconds",
              "Mtokens/s");
  for (const Config& config : configs) {
    WindowGenerator generator(config.method, config.rmq);
    std::vector<CompactWindow> windows;
    uint64_t count = 0;
    Stopwatch watch;
    for (size_t i = 0; i < sc.corpus.num_texts(); ++i) {
      windows.clear();
      generator.Generate(family, 0, sc.corpus.text(i), 25, &windows);
      count += windows.size();
    }
    const double seconds = watch.ElapsedSeconds();
    std::printf("%-26s %12llu %12.3f %14.2f\n", config.name,
                static_cast<unsigned long long>(count), seconds,
                sc.corpus.total_tokens() / seconds / 1e6);
  }
  return 0;
}
