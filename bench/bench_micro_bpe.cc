// Microbenchmark: BPE encode/decode throughput with a trained model.

#include <benchmark/benchmark.h>

#include "corpusgen/synthetic.h"
#include "tokenizer/bpe_tokenizer.h"
#include "tokenizer/bpe_trainer.h"

namespace ndss {
namespace {

const BpeModel& TrainedModel() {
  static const BpeModel* model = [] {
    BpeTrainerOptions options;
    options.vocab_size = 2000;
    BpeTrainer trainer(options);
    trainer.AddText(GenerateSyntheticEnglish(5000, 1));
    auto result = trainer.Train();
    return new BpeModel(std::move(result).value());
  }();
  return *model;
}

void BM_BpeEncode(benchmark::State& state) {
  const std::string text = GenerateSyntheticEnglish(state.range(0), 2);
  BpeTokenizer tokenizer(TrainedModel());
  for (auto _ : state) {
    auto tokens = tokenizer.Encode(text);
    benchmark::DoNotOptimize(tokens.data());
  }
  state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_BpeEncode)->Arg(100)->Arg(1000);

void BM_BpeDecode(benchmark::State& state) {
  const std::string text = GenerateSyntheticEnglish(1000, 3);
  BpeTokenizer tokenizer(TrainedModel());
  const auto tokens = tokenizer.Encode(text);
  for (auto _ : state) {
    auto decoded = tokenizer.Decode(tokens);
    benchmark::DoNotOptimize(decoded.data());
  }
  state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_BpeDecode);

void BM_BpeTrain(benchmark::State& state) {
  const std::string text = GenerateSyntheticEnglish(1000, 4);
  for (auto _ : state) {
    BpeTrainerOptions options;
    options.vocab_size = 512;
    BpeTrainer trainer(options);
    trainer.AddText(text);
    auto model = trainer.Train();
    benchmark::DoNotOptimize(model.ok());
  }
  state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_BpeTrain);

}  // namespace
}  // namespace ndss
