#ifndef NDSS_BENCH_BENCH_UTIL_H_
#define NDSS_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "corpusgen/synthetic.h"
#include "ndss/ndss.h"

namespace ndss {
namespace bench {

/// Scale multiplier for corpus sizes, read once from NDSS_BENCH_SCALE
/// (default 1.0). Set to e.g. 4 to run the experiment grid on 4x larger
/// corpora.
double ScaleFactor();

/// Scales `base` by ScaleFactor(), with a floor of 1.
uint32_t Scaled(uint32_t base);

/// Creates and returns a scratch directory under /tmp for one bench,
/// wiping any previous contents.
std::string ScratchDir(const std::string& name);

/// The standard benchmark corpus: Zipfian tokens (s = 1.0) with planted
/// near-duplicates, deterministic for a given (num_texts, vocab, seed).
SyntheticCorpus MakeBenchCorpus(uint32_t num_texts, uint32_t vocab_size,
                                uint64_t seed);

/// Makes `count` query sequences of `length` tokens: perturbed spans of
/// corpus texts (real near-duplicate queries, like the paper's
/// GPT-generated queries that have matches in the corpus).
std::vector<std::vector<Token>> MakeQueries(const Corpus& corpus,
                                            uint32_t count, uint32_t length,
                                            double noise, uint32_t vocab_size,
                                            uint64_t seed);

/// Runs every query against the searcher; returns (mean latency seconds,
/// mean io seconds, mean cpu seconds, mean #spans found).
struct QueryRunResult {
  double mean_latency = 0;
  double mean_io_seconds = 0;
  double mean_cpu_seconds = 0;
  double mean_io_bytes = 0;
  double mean_spans = 0;
};
QueryRunResult RunQueries(Searcher& searcher,
                          const std::vector<std::vector<Token>>& queries,
                          const SearchOptions& options);

/// Prints a section header for one paper figure/table.
void PrintHeader(const std::string& experiment, const std::string& note);

/// Minimal ordered JSON emitter for checked-in BENCH_*.json reports (see
/// README "Benchmark reports"): objects/arrays nest via Begin/End pairs,
/// fields keep insertion order, doubles print with enough digits to
/// round-trip typical latencies. No dependencies, no escaping beyond
/// quotes/backslashes/control characters (keys and values are
/// bench-controlled strings).
class JsonWriter {
 public:
  /// Key-less variants are for array elements and the root value.
  void BeginObject(const std::string& key = "");
  void EndObject();
  void BeginArray(const std::string& key = "");
  void EndArray();
  void Field(const std::string& key, const std::string& value);
  void Field(const std::string& key, double value);
  void Field(const std::string& key, uint64_t value);
  void Field(const std::string& key, bool value);

  /// The finished document (every Begin closed), newline-terminated.
  const std::string& str() const { return out_; }

 private:
  void Prefix(const std::string& key);
  void Escaped(const std::string& value);

  std::string out_;
  std::vector<bool> has_sibling_;  ///< per nesting level: need a comma?
};

}  // namespace bench
}  // namespace ndss

#endif  // NDSS_BENCH_BENCH_UTIL_H_
