// Figure 3(a),(b),(e),(f): query latency (IO + CPU split) and number of
// near-duplicates found, varying the number of hash functions k and the
// similarity threshold theta. Queries are perturbed spans of corpus texts
// (the paper uses GPT-generated texts, which likewise have near-duplicates
// in the corpus); results are averaged over 100 queries as in the paper.

#include <cstdio>

#include "bench_util.h"
#include "index/index_builder.h"

int main() {
  using namespace ndss;
  const uint32_t base_texts = bench::Scaled(4000);
  SyntheticCorpus sc = bench::MakeBenchCorpus(base_texts, 32000, 1);
  const auto queries =
      bench::MakeQueries(sc.corpus, 100, 64, 0.05, 32000, 9);

  bench::PrintHeader(
      "Figure 3(a)-(b),(e)-(f): query latency and #results vs k and theta",
      "paper: latency rises sharply as theta drops (IO-dominated); no clear "
      "k trend; more near-duplicates at lower theta");
  std::printf("corpus: %zu texts, %llu tokens; 100 queries of 64 tokens\n",
              sc.corpus.num_texts(),
              static_cast<unsigned long long>(sc.corpus.total_tokens()));
  std::printf("%4s %7s %12s %12s %12s %10s %10s\n", "k", "theta",
              "latency ms", "io ms", "cpu ms", "io KB", "#matches");
  for (uint32_t k : {16u, 32u, 64u}) {
    IndexBuildOptions build;
    build.k = k;
    build.t = 25;
    const std::string dir = bench::ScratchDir("fig3_query_k" +
                                              std::to_string(k));
    auto stats = BuildIndexInMemory(sc.corpus, dir, build);
    if (!stats.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    auto searcher = Searcher::Open(dir);
    if (!searcher.ok()) return 1;
    const uint64_t long_threshold = searcher->ListCountPercentile(0.10);
    for (double theta : {1.0, 0.9, 0.8, 0.7}) {
      SearchOptions options;
      options.theta = theta;
      options.long_list_threshold = long_threshold;
      const auto run = bench::RunQueries(*searcher, queries, options);
      std::printf("%4u %7.2f %12.3f %12.3f %12.3f %10.1f %10.2f\n", k, theta,
                  run.mean_latency * 1e3, run.mean_io_seconds * 1e3,
                  run.mean_cpu_seconds * 1e3, run.mean_io_bytes / 1e3,
                  run.mean_spans);
    }
  }
  std::printf(
      "\nNote: at theta = 1.0 only exact min-hash agreement on all k "
      "functions qualifies,\nso few or no matches are found for perturbed "
      "queries (the paper found none).\n");
  return 0;
}
