// Query hot-path kernel benchmark and equivalence gate.
//
// Measures each rewritten kernel against its reference oracle
// (src/query/reference/): the IntervalScan sweep on Zipfian-skewed
// intervals, CollisionCount, block varint decode of compressed posting
// runs, the (text, l) window sort, the (text, begin) span-key sort, and
// end-to-end query QPS over an in-memory index. Before any timing, every
// kernel's output is verified against the oracle on the bench input —
// a mismatch exits 1, which is what the nightly CI step keys on.
//
// Usage: bench_hot_path [--json] [--quick] [--out=PATH]
//   --json   also write the machine-readable report (default
//            BENCH_query_hot_path.json; see README "Benchmark reports")
//   --quick  smaller inputs / fewer iterations (CI-sized)
//   --out=   report path for --json

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/coding.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "corpusgen/zipf.h"
#include "index/varint_block.h"
#include "query/collision_count.h"
#include "query/interval_scan.h"
#include "query/radix_sort.h"
#include "query/reference/reference_kernels.h"

namespace ndss {
namespace {

volatile uint64_t g_sink = 0;  // defeats dead-code elimination

struct Percentiles {
  double p50_us = 0;
  double p95_us = 0;
};

Percentiles ComputePercentiles(std::vector<double> micros) {
  Percentiles p;
  if (micros.empty()) return p;
  std::sort(micros.begin(), micros.end());
  p.p50_us = micros[micros.size() / 2];
  p.p95_us = micros[std::min(micros.size() - 1, micros.size() * 95 / 100)];
  return p;
}

template <typename Fn>
Percentiles TimeIterations(int iters, Fn&& fn) {
  std::vector<double> micros;
  micros.reserve(iters);
  for (int i = 0; i < iters; ++i) {
    Stopwatch watch;
    g_sink = g_sink + fn();
    micros.push_back(watch.ElapsedMicros());
  }
  return ComputePercentiles(micros);
}

struct KernelReport {
  std::string name;
  uint64_t items = 0;
  int iters = 0;
  Percentiles fast;
  Percentiles ref;
  double speedup() const {
    return fast.p50_us > 0 ? ref.p50_us / fast.p50_us : 0;
  }
};

void PrintKernel(const KernelReport& r) {
  std::printf("%-16s %10llu %6d %12.1f %12.1f %12.1f %12.1f %9.2fx\n",
              r.name.c_str(), static_cast<unsigned long long>(r.items),
              r.iters, r.fast.p50_us, r.fast.p95_us, r.ref.p50_us,
              r.ref.p95_us, r.speedup());
}

[[noreturn]] void FailEquivalence(const std::string& kernel) {
  std::fprintf(stderr,
               "FATAL: kernel '%s' disagrees with its reference oracle\n",
               kernel.c_str());
  std::exit(1);
}

// ---- interval sweep ------------------------------------------------------

std::vector<Interval> MakeZipfianIntervals(size_t m, uint32_t range,
                                           uint64_t seed) {
  // Begins drawn Zipf(s = 1.05) over `range` coordinates: a few popular
  // coordinates accumulate deep interval pileups, the regime where the old
  // O(|active|) removal and per-group member copies went quadratic.
  Rng rng(seed);
  ZipfSampler zipf(range, 1.05);
  std::vector<Interval> intervals;
  intervals.reserve(m);
  for (uint32_t i = 0; i < m; ++i) {
    const uint32_t begin = static_cast<uint32_t>(zipf.Sample(rng));
    const uint32_t length = 16 + static_cast<uint32_t>(rng.Uniform(112));
    intervals.push_back({begin, begin + length, i});
  }
  return intervals;
}

bool SameGroups(const std::vector<IntervalGroup>& a,
                const std::vector<IntervalGroup>& b) {
  if (a.size() != b.size()) return false;
  for (size_t g = 0; g < a.size(); ++g) {
    if (a[g].overlap_begin != b[g].overlap_begin ||
        a[g].overlap_end != b[g].overlap_end) {
      return false;
    }
    std::vector<uint32_t> ma = a[g].members, mb = b[g].members;
    std::sort(ma.begin(), ma.end());
    std::sort(mb.begin(), mb.end());
    if (ma != mb) return false;
  }
  return true;
}

KernelReport BenchIntervalSweep(bool quick) {
  const size_t m = quick ? 4000 : 20000;
  const uint32_t alpha = 4;
  const int iters = quick ? 8 : 20;
  const std::vector<Interval> intervals = MakeZipfianIntervals(m, 2048, 11);

  std::vector<IntervalGroup> fast_groups, ref_groups;
  if (!IntervalScan(intervals, alpha, &fast_groups).ok() ||
      !reference::IntervalScan(intervals, alpha, &ref_groups).ok() ||
      !SameGroups(fast_groups, ref_groups)) {
    FailEquivalence("interval_sweep");
  }

  KernelReport report{"interval_sweep", m, iters, {}, {}};
  SweepGroups sweep;
  report.fast = TimeIterations(iters, [&] {
    if (!IntervalSweep(intervals, alpha, &sweep).ok()) return uint64_t{0};
    return static_cast<uint64_t>(sweep.groups.size() + sweep.adds.size());
  });
  std::vector<IntervalGroup> groups;
  report.ref = TimeIterations(iters, [&] {
    groups.clear();
    if (!reference::IntervalScan(intervals, alpha, &groups).ok()) {
      return uint64_t{0};
    }
    return static_cast<uint64_t>(groups.size());
  });
  return report;
}

// ---- collision count -----------------------------------------------------

KernelReport BenchCollisionCount(bool quick) {
  const size_t m = quick ? 300 : 800;
  const uint32_t alpha = 4;
  const int iters = quick ? 6 : 12;
  Rng rng(23);
  ZipfSampler zipf(512, 1.05);
  std::vector<PostedWindow> windows;
  windows.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    const uint32_t c = 64 + static_cast<uint32_t>(zipf.Sample(rng));
    const uint32_t l = c - std::min<uint32_t>(c, 1 + rng.Uniform(24));
    const uint32_t r = c + 1 + static_cast<uint32_t>(rng.Uniform(24));
    windows.push_back(PostedWindow{0, l, c, r});
  }

  std::vector<MatchRectangle> fast_rects, ref_rects;
  if (!CollisionCount(windows, alpha, &fast_rects).ok() ||
      !reference::CollisionCount(windows, alpha, &ref_rects).ok() ||
      fast_rects != ref_rects) {
    FailEquivalence("collision_count");
  }

  KernelReport report{"collision_count", m, iters, {}, {}};
  std::vector<MatchRectangle> rects;
  report.fast = TimeIterations(iters, [&] {
    rects.clear();
    if (!CollisionCount(windows, alpha, &rects).ok()) return uint64_t{0};
    return static_cast<uint64_t>(rects.size());
  });
  report.ref = TimeIterations(iters, [&] {
    rects.clear();
    if (!reference::CollisionCount(windows, alpha, &rects).ok()) {
      return uint64_t{0};
    }
    return static_cast<uint64_t>(rects.size());
  });
  return report;
}

// ---- block varint decode -------------------------------------------------

struct EncodedList {
  std::string bytes;
  uint64_t count = 0;
  uint32_t run = 64;  ///< the writer's default zone step
};

EncodedList MakeEncodedList(uint64_t count, uint64_t seed) {
  // Writer-faithful stream: runs of `run` windows, each run restarting with
  // an absolute text id, then (text delta, l, c - l, r - c) per window.
  // Value magnitudes mirror real postings: small text deltas, multi-byte l.
  Rng rng(seed);
  EncodedList list;
  list.count = count;
  uint32_t text = 0;
  uint32_t prev_text = 0;
  for (uint64_t i = 0; i < count; ++i) {
    if (rng.Uniform(4) == 0) text += static_cast<uint32_t>(rng.Uniform(40));
    const uint32_t l = static_cast<uint32_t>(rng.Uniform(1u << 20));
    const uint32_t c_delta = static_cast<uint32_t>(rng.Uniform(64));
    const uint32_t r_delta = static_cast<uint32_t>(rng.Uniform(64));
    if (i % list.run == 0) {
      PutVarint32(&list.bytes, text);
    } else {
      PutVarint32(&list.bytes, text - prev_text);
    }
    prev_text = text;
    PutVarint32(&list.bytes, l);
    PutVarint32(&list.bytes, c_delta);
    PutVarint32(&list.bytes, r_delta);
  }
  return list;
}

template <typename DecodeFn>
uint64_t DecodeWholeList(const EncodedList& list, PostedWindow* out,
                         DecodeFn&& decode) {
  const char* p = list.bytes.data();
  const char* limit = p + list.bytes.size();
  uint64_t i = 0;
  while (i < list.count) {
    const uint64_t run = std::min<uint64_t>(list.run, list.count - i);
    uint64_t decoded = 0;
    p = decode(p, limit, run, out + i, &decoded);
    if (p == nullptr || decoded != run) return 0;
    i += run;
  }
  return i;
}

/// decode_block measures the calibrated dispatch (what queries run);
/// decode_scalar and decode_simd pin each implementation so the nightly
/// report shows both sides of the runtime choice on that machine. Every
/// variant is verified bit-identical against the reference first.
void BenchDecode(bool quick, std::vector<KernelReport>* kernels) {
  const uint64_t count = quick ? 150000 : 1000000;
  const int iters = quick ? 8 : 15;
  const EncodedList list = MakeEncodedList(count, 7);

  std::vector<PostedWindow> ref_out(count), out(count);
  if (DecodeWholeList(list, ref_out.data(), reference::DecodeWindowRun) !=
      count) {
    FailEquivalence("decode_block");
  }
  const Percentiles ref = TimeIterations(iters, [&] {
    return DecodeWholeList(list, out.data(), reference::DecodeWindowRun);
  });

  struct Variant {
    const char* name;
    WindowDecodeFn fn;
  };
  std::vector<Variant> variants = {{"decode_block", &DecodeWindowRun},
                                   {"decode_scalar", &DecodeWindowRunScalar}};
#if defined(NDSS_VARINT_SIMD)
  if (SimdWindowDecodeSupported()) {
    variants.push_back({"decode_simd", &DecodeWindowRunSimd});
  }
  if (WordWindowDecodeSupported()) {
    variants.push_back({"decode_word", &DecodeWindowRunWord});
  }
#endif
  for (const Variant& v : variants) {
    if (DecodeWholeList(list, out.data(), v.fn) != count || out != ref_out) {
      FailEquivalence(v.name);
    }
    KernelReport report{v.name, count, iters, {}, ref};
    report.fast = TimeIterations(
        iters, [&] { return DecodeWholeList(list, out.data(), v.fn); });
    kernels->push_back(report);
    PrintKernel(kernels->back());
  }
}

// ---- sorts ---------------------------------------------------------------

KernelReport BenchWindowSort(bool quick) {
  const size_t n = quick ? 150000 : 1000000;
  const int iters = quick ? 6 : 10;
  Rng rng(3);
  ZipfSampler zipf(50000, 1.0);
  std::vector<PostedWindow> input;
  input.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t l = static_cast<uint32_t>(rng.Uniform(1u << 20));
    input.push_back(PostedWindow{static_cast<uint32_t>(zipf.Sample(rng)), l,
                                 l + 16, l + 32});
  }
  const auto key = [](const PostedWindow& w) {
    return (static_cast<uint64_t>(w.text) << 32) | w.l;
  };

  std::vector<PostedWindow> fast_sorted = input, ref_sorted = input;
  RadixSortByKey(&fast_sorted, key);
  reference::SortWindows(&ref_sorted);
  if (fast_sorted != ref_sorted) FailEquivalence("window_sort");

  KernelReport report{"window_sort", n, iters, {}, {}};
  std::vector<PostedWindow> work, scratch;
  report.fast = TimeIterations(iters, [&] {
    work = input;
    RadixSortByKey(&work, key, &scratch);
    return static_cast<uint64_t>(work.back().text);
  });
  report.ref = TimeIterations(iters, [&] {
    work = input;
    reference::SortWindows(&work);
    return static_cast<uint64_t>(work.back().text);
  });
  return report;
}

KernelReport BenchSpanSort(bool quick) {
  const size_t n = quick ? 150000 : 1000000;
  const int iters = quick ? 6 : 10;
  Rng rng(4);
  ZipfSampler zipf(50000, 1.0);
  std::vector<std::pair<uint64_t, uint32_t>> input;
  input.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t key = (static_cast<uint64_t>(zipf.Sample(rng)) << 32) |
                         rng.Uniform(1u << 20);
    input.push_back({key, static_cast<uint32_t>(i)});
  }
  const auto key_fn = [](const std::pair<uint64_t, uint32_t>& p) {
    return p.first;
  };

  std::vector<std::pair<uint64_t, uint32_t>> fast_sorted = input,
                                             ref_sorted = input;
  RadixSortByKey(&fast_sorted, key_fn);
  reference::SortByKey(&ref_sorted);
  if (fast_sorted != ref_sorted) FailEquivalence("span_sort");

  KernelReport report{"span_sort", n, iters, {}, {}};
  std::vector<std::pair<uint64_t, uint32_t>> work, scratch;
  report.fast = TimeIterations(iters, [&] {
    work = input;
    RadixSortByKey(&work, key_fn, &scratch);
    return static_cast<uint64_t>(work.back().second);
  });
  report.ref = TimeIterations(iters, [&] {
    work = input;
    reference::SortByKey(&work);
    return static_cast<uint64_t>(work.back().second);
  });
  return report;
}

// ---- end-to-end ----------------------------------------------------------

struct EndToEnd {
  uint64_t queries = 0;
  double qps = 0;
  Percentiles latency;
  double mean_spans = 0;
};

EndToEnd BenchEndToEnd(bool quick) {
  const uint32_t num_texts = quick ? 300 : 1500;
  const uint32_t num_queries = quick ? 20 : 60;
  SyntheticCorpus sc = bench::MakeBenchCorpus(num_texts, 8000, 21);
  const auto queries = bench::MakeQueries(sc.corpus, num_queries, 64, 0.05,
                                          8000, 22);
  IndexBuildOptions build;
  build.k = 16;
  build.t = 25;
  auto searcher = Searcher::InMemory(sc.corpus, build);
  if (!searcher.ok()) {
    std::fprintf(stderr, "in-memory build failed: %s\n",
                 searcher.status().ToString().c_str());
    std::exit(1);
  }
  SearchOptions options;
  options.theta = 0.8;
  options.long_list_threshold = searcher->ListCountPercentile(0.10);

  EndToEnd e2e;
  e2e.queries = num_queries;
  std::vector<double> micros;
  micros.reserve(queries.size());
  Stopwatch total;
  for (const auto& query : queries) {
    Stopwatch watch;
    auto result = searcher->Search(query, options);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    micros.push_back(watch.ElapsedMicros());
    e2e.mean_spans += static_cast<double>(result->spans.size());
  }
  const double total_seconds = total.ElapsedSeconds();
  e2e.qps = total_seconds > 0 ? queries.size() / total_seconds : 0;
  e2e.latency = ComputePercentiles(std::move(micros));
  e2e.mean_spans /= static_cast<double>(queries.size());
  return e2e;
}

int Run(int argc, char** argv) {
  bool json = false;
  bool quick = false;
  std::string out_path = "BENCH_query_hot_path.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json] [--quick] [--out=PATH]\n", argv[0]);
      return 2;
    }
  }

  bench::PrintHeader(
      "Query hot-path kernels vs reference oracles",
      "every kernel is verified bit-identical against src/query/reference/ "
      "before timing; a mismatch aborts with exit 1");
  std::printf("%-16s %10s %6s %12s %12s %12s %12s %10s\n", "kernel", "items",
              "iters", "fast p50us", "fast p95us", "ref p50us", "ref p95us",
              "speedup");

  std::vector<KernelReport> kernels;
  kernels.push_back(BenchIntervalSweep(quick));
  PrintKernel(kernels.back());
  kernels.push_back(BenchCollisionCount(quick));
  PrintKernel(kernels.back());
  BenchDecode(quick, &kernels);
  kernels.push_back(BenchWindowSort(quick));
  PrintKernel(kernels.back());
  kernels.push_back(BenchSpanSort(quick));
  PrintKernel(kernels.back());

  std::printf("\ndecode dispatch chose: %s\n", WindowDecodePathName());

  const EndToEnd e2e = BenchEndToEnd(quick);
  std::printf("end-to-end: %llu queries, %.1f QPS, p50 %.0f us, "
              "p95 %.0f us, %.2f spans/query\n",
              static_cast<unsigned long long>(e2e.queries), e2e.qps,
              e2e.latency.p50_us, e2e.latency.p95_us, e2e.mean_spans);

  if (json) {
    bench::JsonWriter writer;
    writer.BeginObject();
    writer.Field("bench", std::string("query_hot_path"));
    writer.Field("quick", quick);
    writer.Field("scale", bench::ScaleFactor());
    writer.Field("decode_path", std::string(WindowDecodePathName()));
    writer.BeginArray("kernels");
    for (const KernelReport& r : kernels) {
      writer.BeginObject();
      writer.Field("name", r.name);
      writer.Field("items", r.items);
      writer.Field("iters", static_cast<uint64_t>(r.iters));
      writer.Field("fast_p50_us", r.fast.p50_us);
      writer.Field("fast_p95_us", r.fast.p95_us);
      writer.Field("ref_p50_us", r.ref.p50_us);
      writer.Field("ref_p95_us", r.ref.p95_us);
      writer.Field("speedup_p50", r.speedup());
      writer.EndObject();
    }
    writer.EndArray();
    writer.BeginObject("end_to_end");
    writer.Field("queries", e2e.queries);
    writer.Field("qps", e2e.qps);
    writer.Field("p50_us", e2e.latency.p50_us);
    writer.Field("p95_us", e2e.latency.p95_us);
    writer.Field("mean_spans", e2e.mean_spans);
    writer.EndObject();
    writer.EndObject();
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fwrite(writer.str().data(), 1, writer.str().size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace ndss

int main(int argc, char** argv) { return ndss::Run(argc, argv); }
