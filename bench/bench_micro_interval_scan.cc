// Microbenchmark: IntervalScan and CollisionCount on synthetic window
// groups of varying size (the per-text query-processing kernel).

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "query/collision_count.h"
#include "query/interval_scan.h"

namespace ndss {
namespace {

std::vector<Interval> RandomIntervals(size_t m, uint64_t seed) {
  Rng rng(seed);
  std::vector<Interval> intervals;
  intervals.reserve(m);
  for (uint32_t id = 0; id < m; ++id) {
    const uint32_t begin = static_cast<uint32_t>(rng.Uniform(500));
    intervals.push_back(
        {begin, begin + static_cast<uint32_t>(rng.Uniform(100)), id});
  }
  return intervals;
}

std::vector<PostedWindow> RandomGroup(size_t m, uint64_t seed) {
  Rng rng(seed);
  std::vector<PostedWindow> windows;
  windows.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    const uint32_t c = 100 + static_cast<uint32_t>(rng.Uniform(300));
    windows.push_back(PostedWindow{
        0, c - static_cast<uint32_t>(rng.Uniform(100)), c,
        c + static_cast<uint32_t>(rng.Uniform(100))});
  }
  return windows;
}

void BM_IntervalScan(benchmark::State& state) {
  const auto intervals = RandomIntervals(state.range(0), 3);
  std::vector<IntervalGroup> groups;
  for (auto _ : state) {
    groups.clear();
    IntervalScan(intervals, 2, &groups);
    benchmark::DoNotOptimize(groups.data());
  }
  state.SetItemsProcessed(state.iterations() * intervals.size());
}
BENCHMARK(BM_IntervalScan)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_CollisionCount(benchmark::State& state) {
  const auto windows = RandomGroup(state.range(0), 5);
  std::vector<MatchRectangle> rects;
  for (auto _ : state) {
    rects.clear();
    CollisionCount(windows, windows.size() / 4 + 1, &rects);
    benchmark::DoNotOptimize(rects.data());
  }
  state.SetItemsProcessed(state.iterations() * windows.size());
}
BENCHMARK(BM_CollisionCount)->Arg(8)->Arg(32)->Arg(128);

}  // namespace
}  // namespace ndss
