// Figure 3(d): query latency split (IO vs CPU) under various prefix
// lengths — classifying the top 5%..20% most frequent min-hash keys' lists
// as "long" (not scanned; probed via zone maps). The paper observes total
// latency roughly flat while IO grows and CPU shrinks with prefix length.

#include <cstdio>

#include "bench_util.h"
#include "index/index_builder.h"

int main() {
  using namespace ndss;
  const uint32_t base_texts = bench::Scaled(4000);
  SyntheticCorpus sc = bench::MakeBenchCorpus(base_texts, 32000, 1);
  IndexBuildOptions build;
  build.k = 16;
  build.t = 25;
  const std::string dir = bench::ScratchDir("fig3_prefix");
  if (!BuildIndexInMemory(sc.corpus, dir, build).ok()) return 1;
  auto searcher = Searcher::Open(dir);
  if (!searcher.ok()) return 1;
  const auto queries =
      bench::MakeQueries(sc.corpus, 100, 64, 0.05, 32000, 17);

  bench::PrintHeader(
      "Figure 3(d): latency split vs prefix length (share of lists "
      "classified short)",
      "prefix fraction = share of lists (by frequency rank) treated as "
      "LONG and only probed via zone maps");
  std::printf("%10s %14s %12s %12s %12s %10s\n", "prefix", "long thresh",
              "latency ms", "io ms", "cpu ms", "io KB");
  for (double fraction : {0.05, 0.10, 0.15, 0.20}) {
    SearchOptions options;
    options.theta = 0.8;
    options.use_prefix_filter = true;
    options.long_list_threshold = searcher->ListCountPercentile(fraction);
    const auto run = bench::RunQueries(*searcher, queries, options);
    std::printf("%9.0f%% %14llu %12.3f %12.3f %12.3f %10.1f\n",
                fraction * 100,
                static_cast<unsigned long long>(options.long_list_threshold),
                run.mean_latency * 1e3, run.mean_io_seconds * 1e3,
                run.mean_cpu_seconds * 1e3, run.mean_io_bytes / 1e3);
  }

  // Reference point: no prefix filtering at all.
  SearchOptions no_filter;
  no_filter.theta = 0.8;
  no_filter.use_prefix_filter = false;
  const auto run = bench::RunQueries(*searcher, queries, no_filter);
  std::printf("%10s %14s %12.3f %12.3f %12.3f %10.1f\n", "off", "-",
              run.mean_latency * 1e3, run.mean_io_seconds * 1e3,
              run.mean_cpu_seconds * 1e3, run.mean_io_bytes / 1e3);
  return 0;
}
