// Table 1: examples of generated texts (query sequences) and the
// near-duplicate sequences found for them in the training corpus. This
// bench runs the whole textual pipeline — BPE tokenizer, index, n-gram
// generator with memorization — and prints decoded (text, match) pairs
// like the paper's table.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "index/index_builder.h"
#include "lm/memorizing_generator.h"
#include "tokenizer/bpe_tokenizer.h"
#include "tokenizer/bpe_trainer.h"

int main() {
  using namespace ndss;
  bench::PrintHeader(
      "Table 1: example generated sequences and their near-duplicates",
      "decoded BPE text; '...' marks truncation to fit the console");

  // Raw documents and BPE model.
  std::vector<std::string> documents;
  const uint32_t num_docs = bench::Scaled(300);
  for (uint32_t d = 0; d < num_docs; ++d) {
    documents.push_back(GenerateSyntheticEnglish(60, 5000 + d));
  }
  BpeTrainerOptions trainer_options;
  trainer_options.vocab_size = 2000;
  BpeTrainer trainer(trainer_options);
  for (const std::string& doc : documents) trainer.AddText(doc);
  auto model = trainer.Train();
  if (!model.ok()) return 1;
  BpeTokenizer tokenizer(*model);

  Corpus corpus;
  for (const std::string& doc : documents) {
    corpus.AddText(tokenizer.Encode(doc));
  }

  IndexBuildOptions build;
  build.k = 32;
  build.t = 25;
  const std::string dir = bench::ScratchDir("table1");
  if (!BuildIndexInMemory(corpus, dir, build).ok()) return 1;
  auto searcher = Searcher::Open(dir);
  if (!searcher.ok()) return 1;

  // Generator that memorizes training spans near-verbatim.
  NGramModel lm(3);
  lm.Train(corpus);
  MemorizationProfile profile;
  profile.copy_start_prob = 0.01;
  profile.fidelity = 0.95;
  MemorizingGenerator generator(lm, corpus, profile, 2023);
  const GeneratedTexts generated =
      generator.Generate(10, 512, SamplingOptions{});

  // Slide 64-token windows; print the first few hits with their matches.
  SearchOptions search;
  search.theta = 0.8;
  int printed = 0;
  const uint32_t x = 64;
  for (const auto& text : generated.texts) {
    for (size_t begin = 0; begin + x <= text.size() && printed < 4;
         begin += x) {
      const std::span<const Token> window(text.data() + begin, x);
      auto result = searcher->Search(window, search);
      if (!result.ok()) return 1;
      if (result->spans.empty()) continue;
      ++printed;
      std::string query_text = tokenizer.Decode(window);
      if (query_text.size() > 160) query_text.resize(160);
      std::printf("\n--- example %d "
                  "------------------------------------------------\n",
                  printed);
      std::printf("generated : %s...\n", query_text.c_str());
      const MatchSpan& span = result->spans.front();
      const auto matched = corpus.text_by_id(span.text);
      std::string match_text = tokenizer.Decode(
          std::span<const Token>(matched.data() + span.begin,
                                 span.end - span.begin + 1));
      if (match_text.size() > 160) match_text.resize(160);
      std::printf("corpus    : %s...\n", match_text.c_str());
      std::printf("            (document %u, tokens [%u..%u], est. Jaccard "
                  "%.2f; %zu matching spans total)\n",
                  span.text, span.begin, span.end,
                  span.estimated_similarity, result->spans.size());
    }
    if (printed >= 4) break;
  }
  if (printed == 0) {
    std::printf("no generated window had a near-duplicate at theta = %.2f\n",
                search.theta);
  }
  return 0;
}
