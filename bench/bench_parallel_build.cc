// Parallel index construction (Section 3.4): per-thread private buffers of
// compact windows merged before the sort. On a single-core container the
// speedup is bounded by 1, but the experiment verifies overhead stays low
// and the output is identical.

#include <cstdio>

#include "bench_util.h"
#include "index/index_builder.h"

int main() {
  using namespace ndss;
  const uint32_t base_texts = bench::Scaled(2000);
  SyntheticCorpus sc = bench::MakeBenchCorpus(base_texts, 32000, 1);

  bench::PrintHeader(
      "Parallel build scaling (k = 8, t = 25)",
      "per-thread window buffers merged before sorting; identical index "
      "bytes regardless of thread count");
  std::printf("corpus: %zu texts, %llu tokens\n", sc.corpus.num_texts(),
              static_cast<unsigned long long>(sc.corpus.total_tokens()));
  std::printf("%8s %12s %12s %12s %12s\n", "threads", "gen s", "sort s",
              "io s", "total s");

  uint64_t reference_windows = 0;
  for (size_t threads : {1u, 2u, 4u}) {
    IndexBuildOptions options;
    options.k = 8;
    options.t = 25;
    options.num_threads = threads;
    const std::string dir =
        bench::ScratchDir("parallel" + std::to_string(threads));
    auto stats = BuildIndexInMemory(sc.corpus, dir, options);
    if (!stats.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    if (reference_windows == 0) reference_windows = stats->num_windows;
    if (stats->num_windows != reference_windows) {
      std::fprintf(stderr, "window count diverged across thread counts!\n");
      return 1;
    }
    std::printf("%8zu %12.3f %12.3f %12.3f %12.3f\n", threads,
                stats->generate_seconds, stats->sort_seconds,
                stats->io_seconds, stats->total_seconds);
  }
  std::printf("(identical window counts across thread counts: %llu)\n",
              static_cast<unsigned long long>(reference_windows));
  return 0;
}
