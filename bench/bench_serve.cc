// Serving-layer overhead and behaviour under governance, end to end over
// real sockets.
//
// Stands up the full serving stack in one process — ShardedSearcher (self-
// healing) -> SearchService -> HttpServer on an ephemeral 127.0.0.1 port —
// and measures:
//
//   1. equivalence gate (before any timing): every query's HTTP answer
//      must serialize bit-identically to the direct ShardedSearcher
//      answer through the same JSON path, or the bench exits 1. The
//      network front-end must not change answers.
//   2. closed-loop latency sweep: p50/p95/p99 and throughput at client
//      concurrency 1/2/4 (1/2 under --quick), i.e. what the HTTP + JSON +
//      admission layers cost over the raw library call.
//   3. governed behaviour: a tiny-deadline mix must produce 504s with
//      partial stats, and an inflight limit of 1 under concurrent load
//      must shed with 429s. Either failing to trigger exits 1 — the
//      governance path is load-bearing, not best-effort.
//   4. zipfian hot set: one skewed query schedule replayed before and
//      after EnableListCache. Answers must stay bit-identical across the
//      passes and the cross-query cache's hit ratio (read off /v1/status)
//      must exceed 0.5, or the bench exits 1.
//
// Usage: bench_serve [--json] [--quick] [--out=PATH]
//   --json   also write the machine-readable report (default
//            BENCH_serve.json; see README "Benchmark reports")
//   --quick  smaller corpus / fewer requests (CI-sized)
//   --out=   report path for --json

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "corpusgen/zipf.h"
#include "index/index_builder.h"
#include "net/http.h"
#include "net/json.h"
#include "net/serve.h"
#include "shard/shard_manifest.h"
#include "shard/sharded_searcher.h"

namespace ndss {
namespace {

using SteadyClock = std::chrono::steady_clock;

struct Percentiles {
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
};

Percentiles ComputePercentiles(std::vector<double> ms) {
  Percentiles p;
  if (ms.empty()) return p;
  std::sort(ms.begin(), ms.end());
  p.p50_ms = ms[ms.size() / 2];
  p.p95_ms = ms[std::min(ms.size() - 1, ms.size() * 95 / 100)];
  p.p99_ms = ms[std::min(ms.size() - 1, ms.size() * 99 / 100)];
  return p;
}

/// Canonical serialization of an answer's content (spans + rectangles,
/// not stats); both sides of the gate go through net::SearchResultToJson.
std::string AnswerKey(const net::JsonValue& object) {
  const net::JsonValue* spans = object.Find("spans");
  const net::JsonValue* rectangles = object.Find("rectangles");
  return (spans != nullptr ? spans->Dump() : "") + "|" +
         (rectangles != nullptr ? rectangles->Dump() : "");
}

std::string RequestBody(const std::vector<Token>& query, double theta,
                        double deadline_ms = 0, double sleep_ms = 0) {
  net::JsonValue tokens = net::JsonValue::Array();
  for (Token token : query) {
    tokens.Append(net::JsonValue::Number(static_cast<uint64_t>(token)));
  }
  net::JsonValue body = net::JsonValue::Object();
  body.Set("tokens", std::move(tokens));
  body.Set("theta", net::JsonValue::Number(theta));
  if (deadline_ms > 0) {
    body.Set("deadline_ms", net::JsonValue::Number(deadline_ms));
  }
  if (sleep_ms > 0) {
    body.Set("debug_sleep_ms", net::JsonValue::Number(sleep_ms));
  }
  return body.Dump();
}

struct SweepPoint {
  size_t concurrency = 0;
  size_t requests = 0;
  double qps = 0;
  Percentiles latency;
};

int Run(int argc, char** argv) {
  bool json = false;
  bool quick = false;
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--json] [--quick] [--out=PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  const uint32_t num_texts = bench::Scaled(quick ? 300 : 1500);
  const uint32_t vocab = 2000;
  const uint32_t num_queries = quick ? 40 : 150;
  const uint32_t num_shards = 3;
  const size_t requests_per_point = quick ? 120 : 600;
  const std::string dir = bench::ScratchDir("serve");

  bench::PrintHeader(
      "Serving front-end: HTTP overhead and governed behaviour",
      "every HTTP answer must be bit-identical to the direct searcher "
      "answer, tiny deadlines must 504, an inflight limit of 1 must 429 "
      "— any of those failing exits 1");
  std::printf("corpus: %u texts over %u shards, %u pooled queries\n\n",
              num_texts, num_shards, num_queries);

  SyntheticCorpus sc = bench::MakeBenchCorpus(num_texts, vocab, 1337);
  const auto queries =
      bench::MakeQueries(sc.corpus, num_queries, 40, 0.1, vocab, 99);
  SearchOptions options;
  options.theta = 0.6;

  IndexBuildOptions build;
  build.k = 8;
  build.t = 20;
  std::vector<std::string> shard_dirs;
  for (uint32_t s = 0; s < num_shards; ++s) {
    Corpus shard;
    const uint32_t begin = s * num_texts / num_shards;
    const uint32_t end = (s + 1) * num_texts / num_shards;
    for (uint32_t i = begin; i < end; ++i) shard.AddText(sc.corpus.text(i));
    const std::string shard_dir = dir + "/s" + std::to_string(s);
    auto built = BuildIndexInMemory(shard, shard_dir, build);
    if (!built.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    shard_dirs.push_back(shard_dir);
  }
  ShardManifest manifest;
  manifest.shard_dirs = shard_dirs;
  if (!manifest.Save(dir + "/set").ok()) return 1;

  ShardedSearcherOptions searcher_options;
  searcher_options.enable_self_healing = true;
  auto searcher = ShardedSearcher::Open(dir + "/set", searcher_options);
  if (!searcher.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 searcher.status().ToString().c_str());
    return 1;
  }

  net::ServeOptions serve_options;
  serve_options.search = options;
  net::SearchService service(&*searcher, serve_options);
  net::HttpServer server;
  net::HttpServerOptions server_options;
  server_options.num_threads = 8;
  if (!server
           .Start(server_options,
                  [&service](const net::HttpRequest& request) {
                    return service.Handle(request);
                  })
           .ok()) {
    std::fprintf(stderr, "server start failed\n");
    return 1;
  }

  // --- 1. Equivalence gate: HTTP answers vs the library, bit for bit. ---
  std::vector<std::string> bodies;
  std::vector<std::string> expected;
  for (const auto& query : queries) {
    bodies.push_back(RequestBody(query, options.theta));
    auto direct = searcher->Search(query, options);
    if (!direct.ok()) {
      std::fprintf(stderr, "direct search failed: %s\n",
                   direct.status().ToString().c_str());
      return 1;
    }
    net::JsonValue object = net::JsonValue::Object();
    net::SearchResultToJson(*direct, &object);
    expected.push_back(AnswerKey(object));
  }
  size_t mismatches = 0;
  {
    net::HttpClient client;
    if (!client.Connect("127.0.0.1", server.port()).ok()) {
      std::fprintf(stderr, "connect failed\n");
      return 1;
    }
    for (size_t i = 0; i < queries.size(); ++i) {
      auto response = client.Post("/v1/search", bodies[i]);
      if (!response.ok() || response->status != 200) {
        std::fprintf(stderr, "query %zu failed over HTTP\n", i);
        return 1;
      }
      auto parsed = net::ParseJson(response->body);
      if (!parsed.ok() || AnswerKey(*parsed) != expected[i]) ++mismatches;
    }
  }
  std::printf("equivalence gate: %zu queries, %zu mismatches\n",
              queries.size(), mismatches);
  if (mismatches > 0) {
    std::fprintf(stderr,
                 "FAIL: HTTP answers differ from the direct searcher\n");
    return 1;
  }

  // --- 2. Closed-loop latency sweep. ---
  std::vector<size_t> concurrencies = quick ? std::vector<size_t>{1, 2}
                                            : std::vector<size_t>{1, 2, 4};
  std::vector<SweepPoint> sweep;
  std::printf("\n%-12s %9s %9s %10s %10s %10s\n", "concurrency", "requests",
              "qps", "p50 ms", "p95 ms", "p99 ms");
  for (size_t concurrency : concurrencies) {
    std::atomic<size_t> next{0};
    std::vector<std::vector<double>> worker_ms(concurrency);
    const SteadyClock::time_point begin = SteadyClock::now();
    std::vector<std::thread> workers;
    for (size_t w = 0; w < concurrency; ++w) {
      workers.emplace_back([&, w] {
        net::HttpClient client;
        if (!client.Connect("127.0.0.1", server.port()).ok()) return;
        while (true) {
          const size_t i = next.fetch_add(1);
          if (i >= requests_per_point) break;
          const SteadyClock::time_point issue = SteadyClock::now();
          auto response =
              client.Post("/v1/search", bodies[i % bodies.size()]);
          if (!response.ok()) break;
          worker_ms[w].push_back(
              std::chrono::duration<double, std::milli>(SteadyClock::now() -
                                                        issue)
                  .count());
        }
      });
    }
    for (auto& worker : workers) worker.join();
    const double elapsed =
        std::chrono::duration<double>(SteadyClock::now() - begin).count();
    std::vector<double> all_ms;
    for (auto& ms : worker_ms) {
      all_ms.insert(all_ms.end(), ms.begin(), ms.end());
    }
    SweepPoint point;
    point.concurrency = concurrency;
    point.requests = all_ms.size();
    point.qps = elapsed > 0 ? static_cast<double>(all_ms.size()) / elapsed : 0;
    point.latency = ComputePercentiles(std::move(all_ms));
    std::printf("%-12zu %9zu %9.1f %10.3f %10.3f %10.3f\n",
                point.concurrency, point.requests, point.qps,
                point.latency.p50_ms, point.latency.p95_ms,
                point.latency.p99_ms);
    if (point.requests < requests_per_point) {
      std::fprintf(stderr, "FAIL: %zu of %zu requests completed\n",
                   point.requests, requests_per_point);
      return 1;
    }
    sweep.push_back(point);
  }

  // --- 3a. Governed: a tiny deadline must 504 (with partial stats). ---
  const size_t governed_requests = quick ? 40 : 150;
  size_t deadline_hits = 0, deadline_with_stats = 0;
  {
    net::HttpClient client;
    if (!client.Connect("127.0.0.1", server.port()).ok()) return 1;
    for (size_t i = 0; i < governed_requests; ++i) {
      auto response = client.Post(
          "/v1/search", RequestBody(queries[i % queries.size()],
                                    options.theta, /*deadline_ms=*/1e-3));
      if (!response.ok()) break;
      if (response->status == 504) {
        ++deadline_hits;
        auto parsed = net::ParseJson(response->body);
        if (parsed.ok() && parsed->Find("stats") != nullptr) {
          ++deadline_with_stats;
        }
      }
    }
  }
  std::printf("\ntiny deadline: %zu of %zu requests 504 "
              "(%zu carried partial stats)\n",
              deadline_hits, governed_requests, deadline_with_stats);
  if (deadline_hits == 0 || deadline_with_stats != deadline_hits) {
    std::fprintf(stderr, "FAIL: deadline governance did not engage\n");
    return 1;
  }

  // --- 3b. Governed: inflight limit 1 must shed with 429. ---
  // A second service over the same searcher, with the only slot held by a
  // debug-sleeping request; every concurrent request must be rejected at
  // admission, deterministically.
  net::ServeOptions strict_options;
  strict_options.search = options;
  strict_options.max_inflight = 1;
  strict_options.allow_debug_sleep = true;
  net::SearchService strict_service(&*searcher, strict_options);
  net::HttpServer strict_server;
  if (!strict_server
           .Start(server_options,
                  [&strict_service](const net::HttpRequest& request) {
                    return strict_service.Handle(request);
                  })
           .ok()) {
    return 1;
  }
  size_t shed = 0;
  const size_t shed_attempts = quick ? 20 : 60;
  {
    std::thread sleeper([&] {
      net::HttpClient client;
      if (!client.Connect("127.0.0.1", strict_server.port()).ok()) return;
      (void)client.Post("/v1/search",
                        RequestBody(queries[0], options.theta, 0,
                                    /*sleep_ms=*/quick ? 1500 : 3000));
    });
    net::HttpClient client;
    if (!client.Connect("127.0.0.1", strict_server.port()).ok()) return 1;
    // Wait for the sleeper to hold the slot (visible via /v1/status).
    for (int i = 0; i < 200; ++i) {
      auto status = client.Get("/v1/status");
      if (status.ok()) {
        auto parsed = net::ParseJson(status->body);
        const net::JsonValue* inflight =
            parsed.ok() ? parsed->Find("inflight") : nullptr;
        if (inflight != nullptr && inflight->number() >= 1) break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    for (size_t i = 0; i < shed_attempts; ++i) {
      auto response = client.Post(
          "/v1/search",
          RequestBody(queries[i % queries.size()], options.theta));
      if (response.ok() && response->status == 429) ++shed;
    }
    sleeper.join();
  }
  const double shed_rate =
      static_cast<double>(shed) / static_cast<double>(shed_attempts);
  std::printf("admission (max_inflight=1): %zu of %zu requests shed "
              "(%.0f%%)\n",
              shed, shed_attempts, 100 * shed_rate);
  strict_server.Stop();
  if (shed == 0) {
    std::fprintf(stderr, "FAIL: admission control did not shed\n");
    return 1;
  }

  // --- 4. Zipfian hot set: the cross-query list cache, end to end. ---
  // Memorization probes in production re-hit a small hot set of sequences,
  // so the posting lists they touch repeat heavily. Replay one Zipfian-
  // sampled schedule twice over the live server — once before the cross-
  // query cache is enabled, once after — and require (a) every answer to
  // be bit-identical across the passes and (b) the cache to actually
  // carry the skew (hit ratio > 0.5, read back off /v1/status, the same
  // counters operators see). Either failing exits 1.
  const size_t zipf_requests = quick ? 200 : 800;
  ZipfSampler zipf(queries.size(), /*s=*/1.1);
  Rng zipf_rng(271828);
  std::vector<size_t> schedule(zipf_requests);
  for (size_t& slot : schedule) {
    slot = static_cast<size_t>(zipf.Sample(zipf_rng));
  }
  const auto run_schedule = [&](std::vector<std::string>* answers,
                                double* qps) {
    net::HttpClient client;
    if (!client.Connect("127.0.0.1", server.port()).ok()) return false;
    const SteadyClock::time_point begin = SteadyClock::now();
    for (size_t i : schedule) {
      auto response = client.Post("/v1/search", bodies[i]);
      if (!response.ok() || response->status != 200) return false;
      auto parsed = net::ParseJson(response->body);
      if (!parsed.ok()) return false;
      answers->push_back(AnswerKey(*parsed));
    }
    const double elapsed =
        std::chrono::duration<double>(SteadyClock::now() - begin).count();
    *qps = elapsed > 0 ? static_cast<double>(schedule.size()) / elapsed : 0;
    return true;
  };
  std::vector<std::string> uncached_answers;
  std::vector<std::string> cached_answers;
  double uncached_qps = 0;
  double cached_qps = 0;
  if (!run_schedule(&uncached_answers, &uncached_qps)) {
    std::fprintf(stderr, "FAIL: uncached zipfian pass did not complete\n");
    return 1;
  }
  const Status cache_enabled =
      searcher->EnableListCache(64ull << 20, service.server_budget());
  if (!cache_enabled.ok()) {
    std::fprintf(stderr, "FAIL: EnableListCache: %s\n",
                 cache_enabled.ToString().c_str());
    return 1;
  }
  if (!run_schedule(&cached_answers, &cached_qps)) {
    std::fprintf(stderr, "FAIL: cached zipfian pass did not complete\n");
    return 1;
  }
  size_t cache_mismatches = 0;
  for (size_t i = 0; i < schedule.size(); ++i) {
    if (cached_answers[i] != uncached_answers[i]) ++cache_mismatches;
  }
  uint64_t cache_hits = 0, cache_misses = 0, cache_bytes = 0, cache_entries = 0;
  double hit_ratio = 0;
  {
    net::HttpClient client;
    if (!client.Connect("127.0.0.1", server.port()).ok()) return 1;
    auto status = client.Get("/v1/status");
    if (!status.ok()) return 1;
    auto parsed = net::ParseJson(status->body);
    const net::JsonValue* cache_json =
        parsed.ok() ? parsed->Find("list_cache") : nullptr;
    if (cache_json == nullptr) {
      std::fprintf(stderr, "FAIL: /v1/status carries no list_cache\n");
      return 1;
    }
    const auto number = [cache_json](const char* key) -> uint64_t {
      const net::JsonValue* value = cache_json->Find(key);
      return value != nullptr ? static_cast<uint64_t>(value->number()) : 0;
    };
    cache_hits = number("hits");
    cache_misses = number("misses");
    cache_bytes = number("bytes_used");
    cache_entries = number("entries");
    const net::JsonValue* ratio = cache_json->Find("hit_ratio");
    hit_ratio = ratio != nullptr ? ratio->number() : 0;
  }
  std::printf("\nzipfian hot set (s=%.1f, %zu requests over %zu queries):\n",
              zipf.s(), zipf_requests, queries.size());
  std::printf("  uncached %8.1f qps   cached %8.1f qps   mismatches %zu\n",
              uncached_qps, cached_qps, cache_mismatches);
  std::printf("  cache: %llu hits / %llu misses (ratio %.3f), "
              "%llu entries, %llu bytes\n",
              static_cast<unsigned long long>(cache_hits),
              static_cast<unsigned long long>(cache_misses), hit_ratio,
              static_cast<unsigned long long>(cache_entries),
              static_cast<unsigned long long>(cache_bytes));
  server.Stop();
  if (cache_mismatches > 0) {
    std::fprintf(stderr,
                 "FAIL: cached answers differ from uncached answers\n");
    return 1;
  }
  if (hit_ratio <= 0.5) {
    std::fprintf(stderr,
                 "FAIL: zipfian hit ratio %.3f <= 0.5 — the cache is not "
                 "carrying the hot set\n",
                 hit_ratio);
    return 1;
  }

  if (json) {
    bench::JsonWriter w;
    w.BeginObject();
    w.Field("bench", std::string("serve"));
    w.Field("quick", quick);
    w.BeginObject("equivalence");
    w.Field("queries", static_cast<uint64_t>(queries.size()));
    w.Field("mismatches", static_cast<uint64_t>(mismatches));
    w.EndObject();
    w.BeginArray("closed_loop");
    for (const SweepPoint& point : sweep) {
      w.BeginObject();
      w.Field("concurrency", static_cast<uint64_t>(point.concurrency));
      w.Field("requests", static_cast<uint64_t>(point.requests));
      w.Field("qps", point.qps);
      w.Field("p50_ms", point.latency.p50_ms);
      w.Field("p95_ms", point.latency.p95_ms);
      w.Field("p99_ms", point.latency.p99_ms);
      w.EndObject();
    }
    w.EndArray();
    w.BeginObject("governed");
    w.Field("tiny_deadline_requests", static_cast<uint64_t>(
                                          governed_requests));
    w.Field("tiny_deadline_504", static_cast<uint64_t>(deadline_hits));
    w.Field("shed_attempts", static_cast<uint64_t>(shed_attempts));
    w.Field("shed_429", static_cast<uint64_t>(shed));
    w.Field("shed_rate", shed_rate);
    w.EndObject();
    w.BeginObject("zipfian");
    w.Field("requests", static_cast<uint64_t>(zipf_requests));
    w.Field("query_pool", static_cast<uint64_t>(queries.size()));
    w.Field("zipf_s", zipf.s());
    w.Field("qps_uncached", uncached_qps);
    w.Field("qps_cached", cached_qps);
    w.Field("mismatches", static_cast<uint64_t>(cache_mismatches));
    w.Field("cache_hits", cache_hits);
    w.Field("cache_misses", cache_misses);
    w.Field("hit_ratio", hit_ratio);
    w.Field("cache_entries", cache_entries);
    w.Field("cache_bytes", cache_bytes);
    w.EndObject();
    w.EndObject();
    std::ofstream out(out_path);
    out << w.str();
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace ndss

int main(int argc, char** argv) { return ndss::Run(argc, argv); }
