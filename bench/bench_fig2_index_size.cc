// Figure 2(e)-(h): inverted-index size vs length threshold t, number of
// hash functions k, and corpus size — plus the index-to-corpus size ratio
// the paper bounds by 16/t per function (4 integers per window,
// 2N/t windows).

#include <cstdio>

#include "bench_util.h"
#include "index/index_builder.h"

int main() {
  using namespace ndss;
  const uint32_t base_texts = bench::Scaled(2000);
  SyntheticCorpus sc = bench::MakeBenchCorpus(base_texts, 32000, 1);
  const double corpus_bytes =
      static_cast<double>(sc.corpus.total_tokens()) * sizeof(Token);

  bench::PrintHeader(
      "Figure 2(e)-(f): index size vs t and k",
      "paper: size inversely proportional to t, linear in k; per-function "
      "ratio <= 16/t of the corpus");
  std::printf("corpus: %zu texts, %.1f MB tokenized\n", sc.corpus.num_texts(),
              corpus_bytes / 1e6);
  std::printf("%6s %4s %12s %12s %18s\n", "t", "k", "windows", "index MB",
              "per-func ratio");
  for (uint32_t t : {25u, 50u, 100u}) {
    for (uint32_t k : {1u, 4u, 16u}) {
      IndexBuildOptions options;
      options.k = k;
      options.t = t;
      const std::string dir = bench::ScratchDir("fig2_size");
      auto stats = BuildIndexInMemory(sc.corpus, dir, options);
      if (!stats.ok()) {
        std::fprintf(stderr, "build failed: %s\n",
                     stats.status().ToString().c_str());
        return 1;
      }
      const double per_func_ratio =
          stats->index_bytes / corpus_bytes / k;
      std::printf("%6u %4u %12llu %12.2f %12.4f (<= %.4f)\n", t, k,
                  static_cast<unsigned long long>(stats->num_windows),
                  stats->index_bytes / 1e6, per_func_ratio, 16.0 / t);
    }
  }

  bench::PrintHeader("Figure 2(g)-(h): index size vs corpus size",
                     "paper: index size grows linearly with the corpus");
  std::printf("%10s %12s %12s %12s\n", "texts", "corpus MB", "windows",
              "index MB");
  for (uint32_t factor : {1u, 2u, 4u}) {
    SyntheticCorpus scaled =
        bench::MakeBenchCorpus(base_texts * factor / 2, 32000, 3);
    IndexBuildOptions options;
    options.k = 4;
    options.t = 50;
    const std::string dir = bench::ScratchDir("fig2_size_scale");
    auto stats = BuildIndexInMemory(scaled.corpus, dir, options);
    if (!stats.ok()) return 1;
    std::printf("%10zu %12.1f %12llu %12.2f\n", scaled.corpus.num_texts(),
                scaled.corpus.total_tokens() * 4.0 / 1e6,
                static_cast<unsigned long long>(stats->num_windows),
                stats->index_bytes / 1e6);
  }
  return 0;
}
