// ndss_fsck: integrity checker for an index directory. Verifies meta and
// every inverted-index file: magics, directory ordering, per-list window
// counts, (text, l) sort order within lists, zone-map consistency, and the
// total window count against the footer.
//
//   ndss_fsck --index=/data/idx [--deep]

#include <cstdio>

#include "index/index_meta.h"
#include "index/inverted_index_reader.h"
#include "tool_flags.h"

namespace {

/// Checks one inverted-index file; returns the number of problems found.
int CheckFile(const std::string& path, bool deep, uint64_t* total_windows) {
  int problems = 0;
  auto reader = ndss::InvertedIndexReader::Open(path);
  if (!reader.ok()) {
    std::printf("  %s: OPEN FAILED: %s\n", path.c_str(),
                reader.status().ToString().c_str());
    return 1;
  }
  uint64_t windows_in_directory = 0;
  ndss::Token previous_key = 0;
  bool first = true;
  for (const ndss::ListMeta& meta : reader->directory()) {
    if (!first && meta.key <= previous_key) {
      std::printf("  %s: directory keys not strictly increasing at %u\n",
                  path.c_str(), meta.key);
      ++problems;
    }
    previous_key = meta.key;
    first = false;
    windows_in_directory += meta.count;
    if (!deep) continue;

    std::vector<ndss::PostedWindow> windows;
    ndss::Status status = reader->ReadList(meta, &windows);
    if (!status.ok()) {
      std::printf("  %s: list %u unreadable: %s\n", path.c_str(), meta.key,
                  status.ToString().c_str());
      ++problems;
      continue;
    }
    if (windows.size() != meta.count) {
      std::printf("  %s: list %u count mismatch (%zu vs %llu)\n",
                  path.c_str(), meta.key, windows.size(),
                  static_cast<unsigned long long>(meta.count));
      ++problems;
    }
    for (size_t i = 0; i < windows.size(); ++i) {
      const ndss::PostedWindow& w = windows[i];
      if (!(w.l <= w.c && w.c <= w.r)) {
        std::printf("  %s: list %u window %zu malformed (l=%u c=%u r=%u)\n",
                    path.c_str(), meta.key, i, w.l, w.c, w.r);
        ++problems;
        break;
      }
      if (i > 0 && (w.text < windows[i - 1].text ||
                    (w.text == windows[i - 1].text &&
                     w.l < windows[i - 1].l))) {
        std::printf("  %s: list %u not sorted by (text, l) at %zu\n",
                    path.c_str(), meta.key, i);
        ++problems;
        break;
      }
    }
    // Zone-map spot check: the probe path must reproduce the scan for the
    // first and last text in the list.
    if (meta.zone_count > 0 && !windows.empty()) {
      for (ndss::TextId text : {windows.front().text, windows.back().text}) {
        std::vector<ndss::PostedWindow> probed, expected;
        if (!reader->ReadWindowsForText(meta, text, &probed).ok()) {
          std::printf("  %s: list %u zone probe failed for text %u\n",
                      path.c_str(), meta.key, text);
          ++problems;
          continue;
        }
        for (const ndss::PostedWindow& w : windows) {
          if (w.text == text) expected.push_back(w);
        }
        if (probed != expected) {
          std::printf("  %s: list %u zone probe mismatch for text %u\n",
                      path.c_str(), meta.key, text);
          ++problems;
        }
      }
    }
  }
  if (windows_in_directory != reader->num_windows()) {
    std::printf("  %s: footer window count %llu != directory sum %llu\n",
                path.c_str(),
                static_cast<unsigned long long>(reader->num_windows()),
                static_cast<unsigned long long>(windows_in_directory));
    ++problems;
  }
  *total_windows += reader->num_windows();
  std::printf("  %s: %zu lists, %llu windows%s\n", path.c_str(),
              reader->num_lists(),
              static_cast<unsigned long long>(reader->num_windows()),
              problems == 0 ? ", OK" : "");
  return problems;
}

}  // namespace

int main(int argc, char** argv) {
  ndss::tools::Flags flags(argc, argv);
  const std::string index_dir = flags.GetString("index", "");
  if (index_dir.empty()) {
    ndss::tools::Die("usage: ndss_fsck --index=DIR [--deep]");
  }
  const bool deep = flags.GetBool("deep", false);

  auto meta = ndss::IndexMeta::Load(index_dir);
  if (!meta.ok()) ndss::tools::Die(meta.status().ToString());
  std::printf("meta: k=%u t=%u seed=%llx texts=%llu tokens=%llu\n", meta->k,
              meta->t, static_cast<unsigned long long>(meta->seed),
              static_cast<unsigned long long>(meta->num_texts),
              static_cast<unsigned long long>(meta->total_tokens));

  int problems = 0;
  uint64_t total_windows = 0;
  for (uint32_t func = 0; func < meta->k; ++func) {
    problems += CheckFile(ndss::IndexMeta::InvertedIndexPath(index_dir, func),
                          deep, &total_windows);
  }
  std::printf("%u files, %llu windows total: %s\n", meta->k,
              static_cast<unsigned long long>(total_windows),
              problems == 0 ? "no problems found" : "PROBLEMS FOUND");
  return problems == 0 ? 0 : 1;
}
