// ndss_fsck: integrity checker for an index directory. Verifies the commit
// marker, meta checksum, and every inverted-index file: magics, the footer
// checksum (header ++ directory), directory ordering, per-list window
// counts, (text, l) sort order within lists, per-list and zone-map CRC32C
// (exercised by --deep reads and zone probes), and the total window count
// against the footer. Optionally verifies a corpus file's per-text and
// footer checksums.
//
//   ndss_fsck --index=/data/idx [--deep] [--corpus=/data/corpus.ndc]
//             [--json]
//   ndss_fsck --wal=/data/set/WAL [--json]
//
// --wal checks an ingestion write-ahead log instead of (or in addition to)
// an index: every frame's CRC32C and seqno monotonicity, and reports a torn
// tail (bytes past the last valid frame) — the exact prefix WAL recovery
// would keep. A torn tail is reported as a problem but is survivable: the
// next Ingester::Open truncates it.
//
// Exit code is the number of problems found, capped at 100 (0 = clean), so
// scripts can both branch on failure and read a small problem count.

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "common/env.h"
#include "index/index_meta.h"
#include "index/inverted_index_reader.h"
#include "ingest/wal.h"
#include "text/corpus_file.h"
#include "tool_flags.h"

namespace {

/// Accumulates problems; prints them immediately in text mode, or holds
/// them for one JSON document in --json mode.
class Report {
 public:
  explicit Report(bool json) : json_(json) {}

  void Problem(const std::string& file, const std::string& message) {
    problems_.push_back({file, message});
    if (!json_) std::printf("  %s: %s\n", file.c_str(), message.c_str());
  }

  void Info(const char* format, ...) __attribute__((format(printf, 2, 3))) {
    if (json_) return;
    va_list args;
    va_start(args, format);
    std::vprintf(format, args);
    va_end(args);
  }

  int Finish(const std::string& index_dir) const {
    if (json_) {
      std::printf("{\"index\":\"%s\",\"ok\":%s,\"num_problems\":%zu,"
                  "\"problems\":[",
                  JsonEscape(index_dir).c_str(),
                  problems_.empty() ? "true" : "false", problems_.size());
      for (size_t i = 0; i < problems_.size(); ++i) {
        std::printf("%s{\"file\":\"%s\",\"message\":\"%s\"}",
                    i == 0 ? "" : ",",
                    JsonEscape(problems_[i].file).c_str(),
                    JsonEscape(problems_[i].message).c_str());
      }
      std::printf("]}\n");
    } else {
      std::printf("%zu problem(s) found%s\n", problems_.size(),
                  problems_.empty() ? ": index is clean" : "");
    }
    const size_t capped = problems_.size() > 100 ? 100 : problems_.size();
    return static_cast<int>(capped);
  }

  size_t num_problems() const { return problems_.size(); }

 private:
  struct Entry {
    std::string file;
    std::string message;
  };

  static std::string JsonEscape(const std::string& in) {
    std::string out;
    out.reserve(in.size());
    for (char c : in) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  }

  bool json_;
  std::vector<Entry> problems_;
};

/// Checks one inverted-index file. Opening alone verifies the metadata
/// checksum; --deep additionally reads every list (verifying list CRCs) and
/// spot-checks zone probes (verifying zone CRCs).
void CheckFile(const std::string& path, bool deep, uint64_t* total_windows,
               Report* report) {
  auto reader = ndss::InvertedIndexReader::Open(path);
  if (!reader.ok()) {
    report->Problem(path, "open failed: " + reader.status().ToString());
    return;
  }
  uint64_t windows_in_directory = 0;
  ndss::Token previous_key = 0;
  bool first = true;
  for (const ndss::ListMeta& meta : reader->directory()) {
    if (!first && meta.key <= previous_key) {
      report->Problem(path, "directory keys not strictly increasing at " +
                                std::to_string(meta.key));
    }
    previous_key = meta.key;
    first = false;
    windows_in_directory += meta.count;
    if (!deep) continue;

    std::vector<ndss::PostedWindow> windows;
    ndss::Status status = reader->ReadList(meta, &windows);
    if (!status.ok()) {
      report->Problem(path, "list " + std::to_string(meta.key) +
                                " unreadable: " + status.ToString());
      continue;
    }
    if (windows.size() != meta.count) {
      report->Problem(path, "list " + std::to_string(meta.key) +
                                " count mismatch (" +
                                std::to_string(windows.size()) + " vs " +
                                std::to_string(meta.count) + ")");
    }
    for (size_t i = 0; i < windows.size(); ++i) {
      const ndss::PostedWindow& w = windows[i];
      if (!(w.l <= w.c && w.c <= w.r)) {
        report->Problem(path, "list " + std::to_string(meta.key) +
                                  " window " + std::to_string(i) +
                                  " malformed");
        break;
      }
      if (i > 0 && (w.text < windows[i - 1].text ||
                    (w.text == windows[i - 1].text &&
                     w.l < windows[i - 1].l))) {
        report->Problem(path, "list " + std::to_string(meta.key) +
                                  " not sorted by (text, l) at " +
                                  std::to_string(i));
        break;
      }
    }
    // Zone-map spot check: the probe path must reproduce the scan for the
    // first and last text in the list (and verifies the zone CRC).
    if (meta.zone_count > 0 && !windows.empty()) {
      for (ndss::TextId text : {windows.front().text, windows.back().text}) {
        std::vector<ndss::PostedWindow> probed, expected;
        ndss::Status probe = reader->ReadWindowsForText(meta, text, &probed);
        if (!probe.ok()) {
          report->Problem(path, "list " + std::to_string(meta.key) +
                                    " zone probe failed for text " +
                                    std::to_string(text) + ": " +
                                    probe.ToString());
          continue;
        }
        for (const ndss::PostedWindow& w : windows) {
          if (w.text == text) expected.push_back(w);
        }
        if (probed != expected) {
          report->Problem(path, "list " + std::to_string(meta.key) +
                                    " zone probe mismatch for text " +
                                    std::to_string(text));
        }
      }
    }
  }
  if (windows_in_directory != reader->num_windows()) {
    report->Problem(path,
                    "footer window count " +
                        std::to_string(reader->num_windows()) +
                        " != directory sum " +
                        std::to_string(windows_in_directory));
  }
  *total_windows += reader->num_windows();
  report->Info("  %s: %zu lists, %llu windows\n", path.c_str(),
               reader->num_lists(),
               static_cast<unsigned long long>(reader->num_windows()));
}

/// Streams every text of a corpus file, which verifies the footer checksum
/// (at open) and each per-text CRC.
void CheckCorpus(const std::string& path, Report* report) {
  auto corpus = ndss::CorpusFileReader::Open(path);
  if (!corpus.ok()) {
    report->Problem(path, "open failed: " + corpus.status().ToString());
    return;
  }
  uint64_t texts = 0;
  uint64_t tokens = 0;
  for (;;) {
    auto batch = corpus->ReadBatch(16ull << 20);
    if (!batch.ok()) {
      report->Problem(path, "read failed at text " + std::to_string(texts) +
                                ": " + batch.status().ToString());
      return;
    }
    if (batch->empty()) break;
    texts += batch->num_texts();
    tokens += batch->total_tokens();
  }
  if (texts != corpus->num_texts() || tokens != corpus->total_tokens()) {
    report->Problem(path, "footer counts disagree with body (" +
                              std::to_string(texts) + " texts, " +
                              std::to_string(tokens) + " tokens read)");
  }
  report->Info("  %s: %llu texts, %llu tokens\n", path.c_str(),
               static_cast<unsigned long long>(texts),
               static_cast<unsigned long long>(tokens));
}

/// Scans a WAL: frame CRCs and seqno monotonicity are enforced by ScanWal
/// itself (an offending frame ends the valid prefix); fsck reports what the
/// scan kept and flags any torn tail.
void CheckWal(const std::string& path, Report* report) {
  if (!ndss::GetDefaultEnv()->FileExists(path)) {
    report->Problem(path, "WAL file does not exist");
    return;
  }
  auto scan = ndss::ScanWal(path);
  if (!scan.ok()) {
    report->Problem(path, "scan failed: " + scan.status().ToString());
    return;
  }
  if (scan->torn_bytes > 0) {
    report->Problem(path, "torn tail: " + std::to_string(scan->torn_bytes) +
                              " byte(s) past the last valid frame (" +
                              scan->torn_reason + "); recovery truncates at " +
                              std::to_string(scan->valid_bytes));
  }
  uint64_t tokens = 0;
  for (const ndss::WalFrame& frame : scan->frames) tokens += frame.tokens.size();
  report->Info("  %s: %zu frame(s), seqnos [%llu, %llu], %llu tokens, "
               "%llu/%llu valid bytes\n",
               path.c_str(), scan->frames.size(),
               static_cast<unsigned long long>(scan->min_seqno),
               static_cast<unsigned long long>(scan->max_seqno),
               static_cast<unsigned long long>(tokens),
               static_cast<unsigned long long>(scan->valid_bytes),
               static_cast<unsigned long long>(scan->file_bytes));
}

}  // namespace

int main(int argc, char** argv) {
  ndss::tools::Flags flags(argc, argv);
  const std::string index_dir = flags.GetString("index", "");
  const std::string wal_path = flags.GetString("wal", "");
  if (index_dir.empty() && wal_path.empty()) {
    ndss::tools::Die(
        "usage: ndss_fsck --index=DIR [--deep] [--corpus=FILE] [--json]\n"
        "       ndss_fsck --wal=FILE [--json]");
  }
  if (index_dir.empty()) {
    Report report(flags.GetBool("json", false));
    CheckWal(wal_path, &report);
    return report.Finish(wal_path);
  }
  const bool deep = flags.GetBool("deep", false);
  const bool json = flags.GetBool("json", false);
  const std::string corpus_path = flags.GetString("corpus", "");

  Report report(json);

  ndss::Status marker = ndss::CheckIndexCommitMarker(index_dir);
  if (!marker.ok()) {
    report.Problem(ndss::IndexCommitMarkerPath(index_dir),
                   marker.ToString());
  }

  auto meta = ndss::IndexMeta::Load(index_dir);
  if (!meta.ok()) {
    report.Problem(index_dir + "/index.meta", meta.status().ToString());
    return report.Finish(index_dir);
  }
  report.Info("meta: k=%u t=%u sketch=%s seed=%llx texts=%llu tokens=%llu\n",
              meta->k, meta->t, ndss::SketchSchemeName(meta->sketch),
              static_cast<unsigned long long>(meta->seed),
              static_cast<unsigned long long>(meta->num_texts),
              static_cast<unsigned long long>(meta->total_tokens));

  uint64_t total_windows = 0;
  for (uint32_t func = 0; func < meta->k; ++func) {
    CheckFile(ndss::IndexMeta::InvertedIndexPath(index_dir, func), deep,
              &total_windows, &report);
  }
  report.Info("%u files, %llu windows total\n", meta->k,
              static_cast<unsigned long long>(total_windows));

  if (!corpus_path.empty()) CheckCorpus(corpus_path, &report);
  if (!wal_path.empty()) CheckWal(wal_path, &report);

  return report.Finish(index_dir);
}
