// ndss_serve: the network serving front-end. Serves a shard set's
// Search/SearchBatch (and read-only admin ops) over HTTP/1.1 with the full
// governance stack mapped onto requests:
//
//   ndss_serve --set=DIR [--port=0] [--threads=8] [--max-inflight=64]
//              [--server-memory-mb=0] [--list-cache-mb=0]
//              [--default-deadline-ms=0]
//              [--theta=0.8] [--no-prefix-filter] [--long-list-threshold=N]
//              [--batch-threads=1] [--no-self-healing] [--port-file=PATH]
//              [--serve-seconds=0] [--allow-debug-sleep] [--quiet]
//              [--ingest] [--memtable-mb=8] [--no-compaction]
//
// Routes (see src/net/serve.h for the request/response schema):
//   POST /v1/search        one governed query
//   POST /v1/search_batch  a governed batch (shared list cache, shedding)
//   POST /v1/ingest        append documents (requires --ingest)
//   GET  /v1/status        topology + admission + counters snapshot
//   GET  /v1/shards        per-shard self-healing health
//   GET  /v1/healthz       liveness/readiness probe (always admitted)
//
// --ingest opens the set's WAL-backed streaming write path: the port binds
// first (so /v1/healthz answers, reporting ready=false), then WAL recovery
// replays unsealed documents into the serving memtable, then /v1/ingest
// starts acknowledging writes. --memtable-mb sets the spill budget;
// --no-compaction disables the background folding of small sealed shards.
//
// --list-cache-mb enables the cross-query posting-list cache: hot pass-1
// lists stay decoded in memory across requests (bounded LRU, charged to
// the --server-memory-mb budget, invalidated when topology changes or a
// delta publish retires their source). Answers are bit-identical with the
// cache on or off; /v1/status reports its hit/miss/eviction counters.
//
// A request's deadline_ms (or X-Ndss-Deadline-Ms header) becomes its
// QueryContext deadline; memory_mb parents into --server-memory-mb;
// admission control rejects above --max-inflight. Outcomes map
// DeadlineExceeded/Cancelled/ResourceExhausted -> 504/499/429 with the
// partial SearchStats in the body. Serving runs against a self-healing
// ShardedSearcher, so a faulty shard degrades answers (degraded_shards in
// every response's stats) instead of failing them, and heals back.
//
// --port=0 picks an ephemeral port; --port-file writes the resolved port
// for scripts. --serve-seconds bounds the run (0 = until SIGINT/SIGTERM).

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <thread>

#include "ingest/ingester.h"
#include "net/http.h"
#include "net/serve.h"
#include "shard/sharded_searcher.h"
#include "tool_flags.h"

namespace {

std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  ndss::tools::Flags flags(argc, argv);
  const std::string set_dir = flags.GetString("set", "");
  if (set_dir.empty()) {
    ndss::tools::Die(
        "usage: ndss_serve --set=DIR [--port=0] [--threads=8] "
        "[--max-inflight=64] [--server-memory-mb=0] [--list-cache-mb=0] "
        "[--default-deadline-ms=0] [--theta=0.8] [--no-prefix-filter] "
        "[--long-list-threshold=4096] [--batch-threads=1] "
        "[--no-self-healing] [--port-file=PATH] [--serve-seconds=0] "
        "[--allow-debug-sleep] [--quiet] "
        "[--ingest] [--memtable-mb=8] [--no-compaction]");
  }
  const bool quiet = flags.GetBool("quiet", false);

  ndss::ShardedSearcherOptions searcher_options;
  searcher_options.enable_self_healing = !flags.GetBool("no-self-healing",
                                                        false);
  auto searcher = ndss::ShardedSearcher::Open(set_dir, searcher_options);
  if (!searcher.ok()) ndss::tools::Die(searcher.status().ToString());

  ndss::net::ServeOptions serve_options;
  serve_options.max_inflight =
      static_cast<size_t>(flags.GetInt("max-inflight", 64));
  serve_options.server_memory_bytes = static_cast<uint64_t>(
      flags.GetDouble("server-memory-mb", 0) * (1 << 20));
  serve_options.default_deadline_ms =
      flags.GetInt("default-deadline-ms", 0);
  serve_options.search.theta = flags.GetDouble("theta", 0.8);
  serve_options.search.use_prefix_filter =
      !flags.GetBool("no-prefix-filter", false);
  serve_options.search.long_list_threshold = static_cast<uint64_t>(
      flags.GetInt("long-list-threshold", 4096));
  serve_options.batch_threads =
      static_cast<size_t>(std::max<int64_t>(1, flags.GetInt("batch-threads",
                                                            1)));
  serve_options.allow_debug_sleep = flags.GetBool("allow-debug-sleep", false);
  ndss::net::SearchService service(&*searcher, serve_options);

  // Enable the cross-query list cache before the port binds (no request
  // ever races the enable) and parent it into the server-wide budget, so
  // cached lists and inflight query memory share one cap.
  const uint64_t list_cache_bytes =
      static_cast<uint64_t>(flags.GetDouble("list-cache-mb", 0) * (1 << 20));
  if (list_cache_bytes > 0) {
    const ndss::Status enabled =
        searcher->EnableListCache(list_cache_bytes, service.server_budget());
    if (!enabled.ok()) ndss::tools::Die(enabled.ToString());
  }

  ndss::net::HttpServerOptions server_options;
  server_options.port = static_cast<uint16_t>(flags.GetInt("port", 0));
  server_options.num_threads =
      static_cast<size_t>(std::max<int64_t>(1, flags.GetInt("threads", 8)));
  ndss::net::HttpServer server;
  const ndss::Status started =
      server.Start(server_options, [&service](const ndss::net::HttpRequest&
                                                  request) {
        return service.Handle(request);
      });
  if (!started.ok()) ndss::tools::Die(started.ToString());

  const ndss::IndexMeta meta = searcher->meta();
  if (!quiet) {
    std::printf("ndss_serve: listening on 127.0.0.1:%u (epoch %llu, "
                "%zu shards, k=%u t=%u, %llu texts, max_inflight=%zu)\n",
                server.port(),
                static_cast<unsigned long long>(searcher->epoch()),
                searcher->shards().size(), meta.k, meta.t,
                static_cast<unsigned long long>(meta.num_texts),
                serve_options.max_inflight);
    std::fflush(stdout);
  }
  const std::string port_file = flags.GetString("port-file", "");
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << server.port() << "\n";
    if (!out.good()) ndss::tools::Die("cannot write " + port_file);
  }

  // The write path opens after the port is bound so /v1/healthz can answer
  // ready=false during a potentially long WAL replay.
  std::unique_ptr<ndss::Ingester> ingester;
  if (flags.GetBool("ingest", false)) {
    service.set_wal_replaying(true);
    ndss::IngestOptions ingest_options;
    ingest_options.build.k = meta.k;
    ingest_options.build.seed = meta.seed;
    ingest_options.build.t = meta.t;
    ingest_options.memtable_budget_bytes = static_cast<uint64_t>(
        flags.GetDouble("memtable-mb", 8) * (1 << 20));
    ingest_options.enable_compaction = !flags.GetBool("no-compaction", false);
    auto opened = ndss::Ingester::Open(&*searcher, ingest_options);
    if (!opened.ok()) ndss::tools::Die(opened.status().ToString());
    ingester = std::move(opened).value();
    service.set_ingester(ingester.get());
    service.set_wal_replaying(false);
    if (!quiet) {
      const ndss::IngestStats is = ingester->stats();
      std::printf("ndss_serve: ingestion open (replayed %llu docs, "
                  "applied_seqno=%llu, memtable %llu docs)\n",
                  static_cast<unsigned long long>(is.docs_replayed),
                  static_cast<unsigned long long>(is.applied_seqno),
                  static_cast<unsigned long long>(is.delta_docs));
      std::fflush(stdout);
    }
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  const int64_t serve_seconds = flags.GetInt("serve-seconds", 0);
  const auto start = std::chrono::steady_clock::now();
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (serve_seconds > 0 &&
        std::chrono::steady_clock::now() - start >=
            std::chrono::seconds(serve_seconds)) {
      break;
    }
  }
  server.Stop();
  if (ingester != nullptr) {
    // Commit anything staged and close the WAL; the memtable is replayed
    // from the WAL at the next --ingest start.
    service.set_ingester(nullptr);
    const ndss::Status closed = ingester->Close();
    if (!closed.ok() && !quiet) {
      std::printf("ndss_serve: ingester close: %s\n",
                  closed.ToString().c_str());
    }
  }

  const ndss::net::ServeCounters counters = service.counters();
  if (!quiet) {
    std::printf("ndss_serve: exiting (requests=%llu ok=%llu admission=%llu "
                "deadline=%llu cancelled=%llu resource=%llu invalid=%llu "
                "failed=%llu ingests=%llu docs_ingested=%llu)\n",
                static_cast<unsigned long long>(counters.requests),
                static_cast<unsigned long long>(counters.searches_ok),
                static_cast<unsigned long long>(counters.rejected_admission),
                static_cast<unsigned long long>(counters.deadline_exceeded),
                static_cast<unsigned long long>(counters.cancelled),
                static_cast<unsigned long long>(counters.resource_exhausted),
                static_cast<unsigned long long>(counters.invalid),
                static_cast<unsigned long long>(counters.failed),
                static_cast<unsigned long long>(counters.ingests_ok),
                static_cast<unsigned long long>(counters.docs_ingested));
  }
  return 0;
}
