// ndss_merge: merges shard indexes (built over disjoint corpus partitions
// with identical k/seed/t) into one index, offsetting text ids.
//
//   ndss_merge --out=/data/idx /data/shard0 /data/shard1 ... [--compress]

#include <cstdio>

#include "index/index_merger.h"
#include "tool_flags.h"

int main(int argc, char** argv) {
  ndss::tools::Flags flags(argc, argv);
  const std::string out = flags.GetString("out", "");
  if (out.empty() || flags.positional().empty()) {
    ndss::tools::Die(
        "usage: ndss_merge --out=DIR SHARD_DIR... [--compress] "
        "[--zone-step=S]");
  }
  ndss::IndexMergeOptions options;
  options.zone_step = static_cast<uint32_t>(flags.GetInt("zone-step", 64));
  if (flags.GetBool("compress", false)) {
    options.posting_format = ndss::index_format::kFormatCompressed;
  }
  auto stats = ndss::MergeIndexes(flags.positional(), out, options);
  if (!stats.ok()) ndss::tools::Die(stats.status().ToString());
  std::printf("merged %zu shards into %s: %llu windows, %.2f MB, %.3f s\n",
              flags.positional().size(), out.c_str(),
              static_cast<unsigned long long>(stats->num_windows),
              stats->index_bytes / 1e6, stats->total_seconds);
  return 0;
}
