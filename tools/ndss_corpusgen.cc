// ndss_corpusgen: generates a synthetic tokenized corpus file for
// experiments.
//
//   ndss_corpusgen --out=/data/corpus.crp --texts=100000 --vocab=32000 \
//                  --plant-rate=0.2 --seed=42

#include <cstdio>

#include "corpusgen/synthetic.h"
#include "text/corpus_file.h"
#include "tool_flags.h"

int main(int argc, char** argv) {
  ndss::tools::Flags flags(argc, argv);
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    ndss::tools::Die(
        "usage: ndss_corpusgen --out=FILE [--texts=N] [--vocab=V] "
        "[--min-len=L] [--max-len=L] [--zipf=S] [--plant-rate=P] "
        "[--plant-noise=P] [--seed=S]");
  }
  ndss::SyntheticCorpusOptions options;
  options.num_texts = static_cast<uint32_t>(flags.GetInt("texts", 10000));
  options.vocab_size = static_cast<uint32_t>(flags.GetInt("vocab", 32000));
  options.min_text_length =
      static_cast<uint32_t>(flags.GetInt("min-len", 100));
  options.max_text_length =
      static_cast<uint32_t>(flags.GetInt("max-len", 1000));
  options.zipf_exponent = flags.GetDouble("zipf", 1.0);
  options.plant_rate = flags.GetDouble("plant-rate", 0.2);
  options.plant_noise = flags.GetDouble("plant-noise", 0.05);
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  ndss::SyntheticCorpus sc = ndss::GenerateSyntheticCorpus(options);
  ndss::Status status = ndss::WriteCorpusFile(out, sc.corpus);
  if (!status.ok()) ndss::tools::Die(status.ToString());
  std::printf("wrote %s: %zu texts, %llu tokens, %zu planted near-dups\n",
              out.c_str(), sc.corpus.num_texts(),
              static_cast<unsigned long long>(sc.corpus.total_tokens()),
              sc.plants.size());
  return 0;
}
