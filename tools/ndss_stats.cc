// ndss_stats: prints posting-list statistics of a built index — the list
// length distribution that drives prefix filtering (Zipf's law makes a few
// lists enormous, Section 3.5) — and optionally a compact-window width
// histogram (--widths, reads every list of hash function 0).
//
//   ndss_stats --index=/data/idx [--widths] [--json]
//
// --json emits the summary (build parameters, list/window totals, the
// percentile distribution) as a single machine-readable object, like
// ndss_fsck --json; --widths is ignored in that mode. In --json mode
// failures are reported as {"ok": false, "error": ...} with exit 1 instead
// of a bare stderr line, so monitoring that shells out to this tool can
// keep a single JSON parser on the happy and sad paths alike.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "index/index_meta.h"
#include "index/inverted_index_reader.h"
#include "tool_flags.h"

namespace {

std::string JsonEscape(const std::string& in) {
  std::string out;
  for (char c : in) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out.append(buf);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Reports `message` in whichever shape the caller asked for and exits 1.
[[noreturn]] void Fail(bool json, const std::string& message) {
  if (!json) ndss::tools::Die(message);
  std::printf("{\"ok\": false, \"error\": \"%s\"}\n",
              JsonEscape(message).c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  ndss::tools::Flags flags(argc, argv);
  const bool json = flags.GetBool("json", false);
  const std::string index_dir = flags.GetString("index", "");
  if (index_dir.empty()) {
    Fail(json, "usage: ndss_stats --index=DIR");
  }
  auto meta = ndss::IndexMeta::Load(index_dir);
  if (!meta.ok()) Fail(json, meta.status().ToString());

  std::vector<uint64_t> counts;
  uint64_t total_windows = 0;
  uint64_t total_bytes = 0;
  uint64_t zone_lists = 0;
  for (uint32_t func = 0; func < meta->k; ++func) {
    const std::string path =
        ndss::IndexMeta::InvertedIndexPath(index_dir, func);
    auto reader = ndss::InvertedIndexReader::Open(path);
    if (!reader.ok()) Fail(json, reader.status().ToString());
    for (const ndss::ListMeta& list : reader->directory()) {
      counts.push_back(list.count);
      total_bytes += list.list_bytes;
      if (list.zone_count > 0) ++zone_lists;
    }
    total_windows += reader->num_windows();
  }
  std::sort(counts.begin(), counts.end(), std::greater<uint64_t>());

  if (json) {
    const std::string escaped_dir = JsonEscape(index_dir);
    std::printf("{\n  \"ok\": true,\n"
                "  \"index\": \"%s\",\n  \"k\": %u,\n  \"seed\": %llu,\n"
                "  \"t\": %u,\n  \"sketch\": \"%s\",\n"
                "  \"num_texts\": %llu,\n"
                "  \"total_tokens\": %llu,\n  \"lists\": %zu,\n"
                "  \"windows\": %llu,\n  \"list_bytes\": %llu,\n"
                "  \"zone_lists\": %llu,\n",
                escaped_dir.c_str(), meta->k,
                static_cast<unsigned long long>(meta->seed), meta->t,
                ndss::SketchSchemeName(meta->sketch),
                static_cast<unsigned long long>(meta->num_texts),
                static_cast<unsigned long long>(meta->total_tokens),
                counts.size(),
                static_cast<unsigned long long>(total_windows),
                static_cast<unsigned long long>(total_bytes),
                static_cast<unsigned long long>(zone_lists));
    std::printf("  \"list_length_percentiles\": {");
    const double json_n = static_cast<double>(counts.size());
    const double pcts[] = {0.0, 0.001, 0.01, 0.05, 0.10, 0.25, 0.50, 0.90};
    for (size_t i = 0; i < 8; ++i) {
      const uint64_t value =
          counts.empty()
              ? 0
              : counts[std::min<size_t>(counts.size() - 1,
                                        static_cast<size_t>(pcts[i] * json_n))];
      std::printf("%s\"%.1f\": %llu", i == 0 ? "" : ", ", pcts[i] * 100,
                  static_cast<unsigned long long>(value));
    }
    std::printf("}\n}\n");
    return 0;
  }

  if (counts.empty()) {
    std::printf("index is empty\n");
    return 0;
  }

  std::printf("k=%u t=%u sketch=%s  lists=%zu  windows=%llu  "
              "list bytes=%.2f MB  zone-mapped lists=%llu\n",
              meta->k, meta->t, ndss::SketchSchemeName(meta->sketch),
              counts.size(),
              static_cast<unsigned long long>(total_windows),
              total_bytes / 1e6,
              static_cast<unsigned long long>(zone_lists));
  std::printf("corpus: %llu texts, %llu tokens  (index/corpus byte ratio "
              "%.3f)\n",
              static_cast<unsigned long long>(meta->num_texts),
              static_cast<unsigned long long>(meta->total_tokens),
              total_bytes / (4.0 * meta->total_tokens));

  std::printf("\nlist length distribution (Zipf skew):\n");
  std::printf("  %-12s %12s\n", "percentile", "windows");
  const double n = static_cast<double>(counts.size());
  for (double pct : {0.0, 0.001, 0.01, 0.05, 0.10, 0.25, 0.50, 0.90}) {
    const size_t idx = std::min<size_t>(counts.size() - 1,
                                        static_cast<size_t>(pct * n));
    std::printf("  top %-7.1f%% %12llu\n", pct * 100,
                static_cast<unsigned long long>(counts[idx]));
  }
  // Share of windows in the top-x% longest lists.
  uint64_t cumulative = 0;
  size_t next_report = 0;
  const double marks[] = {0.01, 0.05, 0.10, 0.20};
  std::printf("\nwindow mass in the longest lists:\n");
  for (size_t i = 0; i < counts.size() && next_report < 4; ++i) {
    cumulative += counts[i];
    while (next_report < 4 &&
           i + 1 >= static_cast<size_t>(marks[next_report] * n)) {
      std::printf("  top %4.0f%% of lists hold %5.1f%% of windows\n",
                  marks[next_report] * 100,
                  100.0 * cumulative / total_windows);
      ++next_report;
    }
  }

  if (flags.GetBool("widths", false)) {
    // Compact-window width histogram over hash function 0 (widths start at
    // t; the expected width distribution is heavy-tailed because windows
    // are Cartesian-tree subtree ranges).
    auto reader = ndss::InvertedIndexReader::Open(
        ndss::IndexMeta::InvertedIndexPath(index_dir, 0));
    if (!reader.ok()) ndss::tools::Die(reader.status().ToString());
    std::vector<uint64_t> histogram;  // log2 buckets of width/t
    uint64_t windows = 0;
    double width_sum = 0;
    std::vector<ndss::PostedWindow> list;
    for (const ndss::ListMeta& list_meta : reader->directory()) {
      list.clear();
      if (!reader->ReadList(list_meta, &list).ok()) continue;
      for (const ndss::PostedWindow& w : list) {
        const uint64_t width = w.r - w.l + 1;
        width_sum += static_cast<double>(width);
        ++windows;
        size_t bucket = 0;
        for (uint64_t x = width / std::max<uint32_t>(1u, meta->t); x > 1;
             x >>= 1) {
          ++bucket;
        }
        if (histogram.size() <= bucket) histogram.resize(bucket + 1);
        ++histogram[bucket];
      }
    }
    std::printf("\nwindow width histogram (function 0, %llu windows, mean "
                "width %.1f):\n",
                static_cast<unsigned long long>(windows),
                windows == 0 ? 0.0 : width_sum / windows);
    for (size_t bucket = 0; bucket < histogram.size(); ++bucket) {
      std::printf("  width in [%llu*t, %llu*t): %5.1f%%\n",
                  1ull << bucket, 2ull << bucket,
                  100.0 * histogram[bucket] / windows);
    }
  }
  return 0;
}
