// ndss_ingest: the streaming write-path CLI.
//
// Bootstrap an empty streamable shard set:
//   ndss_ingest --create --set=DIR [--k=32] [--t=25] [--seed=S]
//
// Append a corpus file through the WAL-backed pipeline (durable per batch,
// spilling sealed shards as the memtable budget trips):
//   ndss_ingest --set=DIR --corpus=FILE [--batch-docs=64] [--memtable-mb=8]
//               [--no-compaction] [--flush] [--quiet]
//
// --flush seals the remaining memtable into a shard before exit; without it
// the tail stays in the WAL and is replayed by the next opener. Every
// acknowledged batch is durable: killing this tool at any point loses at
// most the batch in flight.

#include <cstdio>

#include "ingest/ingester.h"
#include "shard/sharded_searcher.h"
#include "text/corpus_file.h"
#include "tool_flags.h"

int main(int argc, char** argv) {
  ndss::tools::Flags flags(argc, argv);
  const std::string set_dir = flags.GetString("set", "");
  if (set_dir.empty()) {
    ndss::tools::Die(
        "usage: ndss_ingest --create --set=DIR [--k=32] [--t=25] [--seed=S] "
        "[--sketch=kindependent|cminhash]\n"
        "       ndss_ingest --set=DIR --corpus=FILE [--batch-docs=64] "
        "[--memtable-mb=8] [--no-compaction] [--flush] [--quiet]");
  }
  const bool quiet = flags.GetBool("quiet", false);

  if (flags.GetBool("create", false)) {
    ndss::IndexBuildOptions build;
    build.k = static_cast<uint32_t>(flags.GetInt("k", 32));
    build.t = static_cast<uint32_t>(flags.GetInt("t", 25));
    build.seed = static_cast<uint64_t>(
        flags.GetInt("seed", 0x5eed5eed5eed5eedLL));
    ndss::Result<ndss::SketchSchemeId> sketch = ndss::ParseSketchSchemeName(
        flags.GetString("sketch", "kindependent"));
    if (!sketch.ok()) ndss::tools::Die(sketch.status().ToString());
    build.sketch = *sketch;
    const ndss::Status created = ndss::Ingester::CreateSet(set_dir, build);
    if (!created.ok()) ndss::tools::Die(created.ToString());
    if (!quiet) {
      std::printf(
          "ndss_ingest: created streamable set %s (k=%u t=%u sketch=%s)\n",
          set_dir.c_str(), build.k, build.t,
          ndss::SketchSchemeName(build.sketch));
    }
    return 0;
  }

  const std::string corpus_path = flags.GetString("corpus", "");
  if (corpus_path.empty()) {
    ndss::tools::Die("ndss_ingest: need --create or --corpus=FILE");
  }
  auto corpus = ndss::ReadCorpusFile(corpus_path);
  if (!corpus.ok()) ndss::tools::Die(corpus.status().ToString());

  auto searcher = ndss::ShardedSearcher::Open(set_dir);
  if (!searcher.ok()) ndss::tools::Die(searcher.status().ToString());
  const ndss::IndexMeta meta = searcher->meta();

  ndss::IngestOptions options;
  options.build.k = meta.k;
  options.build.seed = meta.seed;
  options.build.t = meta.t;
  options.build.sketch = meta.sketch;
  options.memtable_budget_bytes =
      static_cast<uint64_t>(flags.GetDouble("memtable-mb", 8) * (1 << 20));
  options.enable_compaction = !flags.GetBool("no-compaction", false);
  auto opened = ndss::Ingester::Open(&*searcher, options);
  if (!opened.ok()) ndss::tools::Die(opened.status().ToString());
  ndss::Ingester& ingester = **opened;

  const size_t batch_docs = static_cast<size_t>(
      std::max<int64_t>(1, flags.GetInt("batch-docs", 64)));
  std::vector<std::vector<ndss::Token>> batch;
  uint64_t appended = 0;
  for (size_t i = 0; i < corpus->num_texts(); ++i) {
    std::span<const ndss::Token> text = corpus->text(i);
    batch.emplace_back(text.begin(), text.end());
    if (batch.size() == batch_docs || i + 1 == corpus->num_texts()) {
      const ndss::Status s = ingester.AppendBatch(batch);
      if (!s.ok()) ndss::tools::Die(s.ToString());
      appended += batch.size();
      batch.clear();
    }
  }
  if (flags.GetBool("flush", false)) {
    const ndss::Status flushed = ingester.Flush();
    if (!flushed.ok()) ndss::tools::Die(flushed.ToString());
  }
  const ndss::Status closed = ingester.Close();
  if (!closed.ok()) ndss::tools::Die(closed.ToString());

  const ndss::IngestStats stats = ingester.stats();
  if (!quiet) {
    std::printf(
        "ndss_ingest: appended %llu docs (last_seqno=%llu, spills=%llu, "
        "compactions=%llu, memtable %llu docs, epoch %llu, %zu shards)\n",
        static_cast<unsigned long long>(appended),
        static_cast<unsigned long long>(stats.last_seqno),
        static_cast<unsigned long long>(stats.spills),
        static_cast<unsigned long long>(stats.compactions),
        static_cast<unsigned long long>(stats.delta_docs),
        static_cast<unsigned long long>(searcher->epoch()),
        searcher->shards().size());
  }
  return 0;
}
