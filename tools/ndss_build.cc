// ndss_build: builds the k inverted-index files for a corpus file.
//
//   ndss_build --corpus=/data/corpus.crp --index=/data/idx \
//              --k=32 --t=25 [--external] [--compress] [--threads=N]

#include <cstdio>

#include "index/index_builder.h"
#include "text/corpus_file.h"
#include "tool_flags.h"

int main(int argc, char** argv) {
  ndss::tools::Flags flags(argc, argv);
  const std::string corpus_path = flags.GetString("corpus", "");
  const std::string index_dir = flags.GetString("index", "");
  if (corpus_path.empty() || index_dir.empty()) {
    ndss::tools::Die(
        "usage: ndss_build --corpus=FILE --index=DIR [--k=K] [--t=T] "
        "[--external] [--compress] [--threads=N] [--zone-step=S] "
        "[--batch-tokens=N] [--partitions=P] [--seed=S] "
        "[--sketch=kindependent|cminhash]");
  }
  ndss::IndexBuildOptions options;
  options.k = static_cast<uint32_t>(flags.GetInt("k", 32));
  {
    ndss::Result<ndss::SketchSchemeId> sketch = ndss::ParseSketchSchemeName(
        flags.GetString("sketch", "kindependent"));
    if (!sketch.ok()) ndss::tools::Die(sketch.status().ToString());
    options.sketch = *sketch;
  }
  options.t = static_cast<uint32_t>(flags.GetInt("t", 25));
  options.seed = static_cast<uint64_t>(
      flags.GetInt("seed", 0x5eed5eed5eed5eedLL));
  options.zone_step = static_cast<uint32_t>(flags.GetInt("zone-step", 64));
  options.num_threads = static_cast<size_t>(flags.GetInt("threads", 1));
  options.batch_tokens =
      static_cast<uint64_t>(flags.GetInt("batch-tokens", 16 << 20));
  options.num_partitions =
      static_cast<uint32_t>(flags.GetInt("partitions", 16));
  if (flags.GetBool("compress", false)) {
    options.posting_format = ndss::index_format::kFormatCompressed;
  }

  ndss::Result<ndss::IndexBuildStats> stats = [&] {
    if (flags.GetBool("external", false)) {
      return ndss::BuildIndexExternal(corpus_path, index_dir, options);
    }
    auto corpus = ndss::ReadCorpusFile(corpus_path);
    if (!corpus.ok()) {
      return ndss::Result<ndss::IndexBuildStats>(corpus.status());
    }
    return ndss::BuildIndexInMemory(*corpus, index_dir, options);
  }();
  if (!stats.ok()) ndss::tools::Die(stats.status().ToString());

  std::printf("index built in %s\n", index_dir.c_str());
  std::printf("  sketch     : %s\n", ndss::SketchSchemeName(options.sketch));
  std::printf("  windows    : %llu\n",
              static_cast<unsigned long long>(stats->num_windows));
  std::printf("  index size : %.2f MB\n", stats->index_bytes / 1e6);
  std::printf("  spill      : %.2f MB\n", stats->spill_bytes / 1e6);
  std::printf("  generation : %.3f s\n", stats->generate_seconds);
  std::printf("  sort       : %.3f s\n", stats->sort_seconds);
  std::printf("  io         : %.3f s\n", stats->io_seconds);
  std::printf("  total      : %.3f s\n", stats->total_seconds);
  return 0;
}
