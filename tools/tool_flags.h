#ifndef NDSS_TOOLS_TOOL_FLAGS_H_
#define NDSS_TOOLS_TOOL_FLAGS_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace ndss {
namespace tools {

/// Minimal command-line flag parser for the ndss_* tools. Flags are
/// `--name=value` or `--name value`; everything else is a positional
/// argument.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        const size_t eq = arg.find('=');
        if (eq != std::string::npos) {
          values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) !=
                                       0) {
          values_[arg.substr(2)] = argv[++i];
        } else {
          values_[arg.substr(2)] = "true";
        }
      } else {
        positional_.push_back(std::move(arg));
      }
    }
  }

  std::string GetString(const std::string& name,
                        const std::string& default_value) const {
    auto it = values_.find(name);
    return it == values_.end() ? default_value : it->second;
  }

  int64_t GetInt(const std::string& name, int64_t default_value) const {
    auto it = values_.find(name);
    return it == values_.end() ? default_value
                               : std::strtoll(it->second.c_str(), nullptr, 10);
  }

  double GetDouble(const std::string& name, double default_value) const {
    auto it = values_.find(name);
    return it == values_.end() ? default_value
                               : std::strtod(it->second.c_str(), nullptr);
  }

  bool GetBool(const std::string& name, bool default_value) const {
    auto it = values_.find(name);
    if (it == values_.end()) return default_value;
    return it->second == "true" || it->second == "1";
  }

  bool Has(const std::string& name) const { return values_.count(name) != 0; }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

/// Prints `message` to stderr and exits with status 1.
[[noreturn]] inline void Die(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  std::exit(1);
}

}  // namespace tools
}  // namespace ndss

#endif  // NDSS_TOOLS_TOOL_FLAGS_H_
