#ifndef NDSS_TOOLS_TOOL_FLAGS_H_
#define NDSS_TOOLS_TOOL_FLAGS_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/parse.h"

namespace ndss {
namespace tools {

/// Prints `message` to stderr and exits with status 1.
[[noreturn]] inline void Die(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  std::exit(1);
}

/// Minimal command-line flag parser for the ndss_* tools. Flags are
/// `--name=value` or `--name value`; everything else is a positional
/// argument. A bare `--name` (no value, next argument is another flag or
/// missing) records the boolean literal "true".
///
/// The typed getters validate strictly (common/parse.h) and Die() on a
/// malformed value: `--deadline-ms=abc` used to strtoll to 0 — an
/// *infinite* deadline instead of an error — and `--theta=0.8x` silently
/// truncated. A bare `--name` followed by another flag reads as boolean
/// true, so asking for it as an int/double also dies loudly instead of
/// parsing "true" as 0.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        const size_t eq = arg.find('=');
        if (eq != std::string::npos) {
          values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) !=
                                       0) {
          values_[arg.substr(2)] = argv[++i];
        } else {
          values_[arg.substr(2)] = "true";
        }
      } else {
        positional_.push_back(std::move(arg));
      }
    }
  }

  std::string GetString(const std::string& name,
                        const std::string& default_value) const {
    auto it = values_.find(name);
    return it == values_.end() ? default_value : it->second;
  }

  int64_t GetInt(const std::string& name, int64_t default_value) const {
    auto it = values_.find(name);
    if (it == values_.end()) return default_value;
    int64_t value = 0;
    if (!ParseInt64(it->second, &value)) {
      Die("--" + name + ": malformed integer '" + it->second + "'");
    }
    return value;
  }

  double GetDouble(const std::string& name, double default_value) const {
    auto it = values_.find(name);
    if (it == values_.end()) return default_value;
    double value = 0;
    if (!ParseDouble(it->second, &value)) {
      Die("--" + name + ": malformed number '" + it->second + "'");
    }
    return value;
  }

  bool GetBool(const std::string& name, bool default_value) const {
    auto it = values_.find(name);
    if (it == values_.end()) return default_value;
    bool value = false;
    if (!ParseBool(it->second, &value)) {
      Die("--" + name + ": expected true/false/1/0, got '" + it->second +
          "'");
    }
    return value;
  }

  bool Has(const std::string& name) const { return values_.count(name) != 0; }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace tools
}  // namespace ndss

#endif  // NDSS_TOOLS_TOOL_FLAGS_H_
