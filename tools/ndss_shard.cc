// ndss_shard: manages the MANIFEST of a shard set served by
// ShardedSearcher. All subcommands are offline manifest operations — they
// validate against the shard indexes on disk and commit crash-safely (tmp +
// fsync + rename), but never touch a live server; a serving process applies
// the same changes online via AttachShard / DetachShard.
//
//   ndss_shard create --set=DIR SHARD_DIR...
//   ndss_shard attach --set=DIR SHARD_DIR
//   ndss_shard detach --set=DIR SHARD_DIR
//   ndss_shard status --set=DIR [--json] [--probe] [--deep]
//
// status reports the health each shard would have in a serving process:
// --probe runs the same cheap recovery probe the self-healing HealthMonitor
// uses (open a full Searcher, validating the commit marker and every index
// header), and --deep escalates to the monitor's deep probe (additionally
// reads and CRC-checks every posting list). Without either flag only the
// shard meta is validated.

#include <cstdio>
#include <string>
#include <vector>

#include "index/index_merger.h"
#include "query/searcher.h"
#include "shard/shard_health.h"
#include "shard/shard_manifest.h"
#include "tool_flags.h"

namespace {

using ndss::IndexMeta;
using ndss::LoadShardMeta;
using ndss::ProbeShard;
using ndss::ResolveShardDir;
using ndss::Result;
using ndss::Searcher;
using ndss::SearcherOptions;
using ndss::ShardHealth;
using ndss::ShardHealthName;
using ndss::ShardManifest;
using ndss::Status;
using ndss::ValidateShardMetas;
using ndss::tools::Die;
using ndss::tools::Flags;

[[noreturn]] void Usage() {
  Die(
      "usage: ndss_shard CMD --set=DIR [args]\n"
      "  create --set=DIR SHARD_DIR...   write a fresh manifest (epoch 0)\n"
      "  attach --set=DIR SHARD_DIR      add a shard (epoch + 1)\n"
      "  detach --set=DIR SHARD_DIR      remove a shard (epoch + 1)\n"
      "  status --set=DIR [--json] [--probe] [--deep]\n"
      "                                  describe the set; --probe runs the\n"
      "                                  HealthMonitor's cheap recovery probe\n"
      "                                  per shard, --deep its deep probe");
}

/// Loads and cross-validates every shard meta of `manifest`; dies on the
/// first invalid shard.
void ValidateMetas(const std::string& set_dir, const ShardManifest& manifest) {
  std::vector<IndexMeta> metas;
  for (const std::string& entry : manifest.shard_dirs) {
    Result<IndexMeta> meta = LoadShardMeta(ResolveShardDir(set_dir, entry));
    if (!meta.ok()) Die(entry + ": " + meta.status().ToString());
    metas.push_back(std::move(*meta));
  }
  const Status status = ValidateShardMetas(metas, manifest.shard_dirs);
  if (!status.ok()) Die(status.ToString());
}

void Commit(const std::string& set_dir, const ShardManifest& manifest,
            const char* verb, const std::string& detail) {
  const Status status = manifest.Save(set_dir);
  if (!status.ok()) Die(status.ToString());
  std::printf("%s %s: epoch %llu, %zu shard%s\n", verb, detail.c_str(),
              static_cast<unsigned long long>(manifest.epoch),
              manifest.shard_dirs.size(),
              manifest.shard_dirs.size() == 1 ? "" : "s");
}

int Create(const std::string& set_dir, const std::vector<std::string>& dirs) {
  ShardManifest manifest;
  manifest.epoch = 0;
  manifest.shard_dirs = dirs;
  ValidateMetas(set_dir, manifest);
  Commit(set_dir, manifest, "created", set_dir);
  return 0;
}

int Attach(const std::string& set_dir, const std::string& shard_dir) {
  Result<ShardManifest> manifest = ShardManifest::Load(set_dir);
  if (!manifest.ok()) Die(manifest.status().ToString());
  manifest->shard_dirs.push_back(shard_dir);
  ++manifest->epoch;
  // Save re-runs the duplicate check; ValidateMetas re-runs (k, seed, t).
  ValidateMetas(set_dir, *manifest);
  Commit(set_dir, *manifest, "attached", shard_dir);
  return 0;
}

int Detach(const std::string& set_dir, const std::string& shard_dir) {
  Result<ShardManifest> manifest = ShardManifest::Load(set_dir);
  if (!manifest.ok()) Die(manifest.status().ToString());
  const std::string resolved = ResolveShardDir(set_dir, shard_dir);
  std::vector<std::string> kept;
  for (const std::string& entry : manifest->shard_dirs) {
    if (entry == shard_dir || ResolveShardDir(set_dir, entry) == resolved) {
      continue;
    }
    kept.push_back(entry);
  }
  if (kept.size() == manifest->shard_dirs.size()) {
    Die("shard " + shard_dir + " is not in the set");
  }
  if (kept.empty()) {
    Die("cannot detach the last shard (a shard set must keep at least one)");
  }
  manifest->shard_dirs = std::move(kept);
  ++manifest->epoch;
  Commit(set_dir, *manifest, "detached", shard_dir);
  return 0;
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  for (char c : in) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out.append(buf);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

int PrintStatus(const std::string& set_dir, bool json, bool probe,
                bool deep) {
  Result<ShardManifest> manifest = ShardManifest::Load(set_dir);
  if (!manifest.ok()) Die(manifest.status().ToString());

  struct Row {
    std::string dir;
    uint64_t text_offset = 0;
    IndexMeta meta;
    Status status;
    // The state a self-healing ShardedSearcher would assign the shard if it
    // observed what the chosen check observed: a shard whose meta or probe
    // fails would be quarantined; one that passes serves healthy.
    ShardHealth health = ShardHealth::kHealthy;
  };
  std::vector<Row> rows;
  uint64_t num_texts = 0;
  uint64_t total_tokens = 0;
  size_t broken = 0;
  for (const std::string& entry : manifest->shard_dirs) {
    Row row;
    row.dir = ResolveShardDir(set_dir, entry);
    row.text_offset = num_texts;
    Result<IndexMeta> meta = LoadShardMeta(row.dir);
    if (meta.ok()) {
      row.meta = std::move(*meta);
      num_texts += row.meta.num_texts;
      total_tokens += row.meta.total_tokens;
      if (probe) {
        Result<Searcher> opened = ProbeShard(row.dir, SearcherOptions(), deep);
        if (!opened.ok()) {
          row.status = opened.status();
          row.health = ShardHealth::kQuarantined;
          ++broken;
        }
      }
    } else {
      row.status = meta.status();
      row.health = ShardHealth::kQuarantined;
      ++broken;
    }
    rows.push_back(std::move(row));
  }
  const char* probe_mode = deep ? "deep" : probe ? "cheap" : "none";

  if (json) {
    std::printf("{\n  \"set_dir\": \"%s\",\n  \"epoch\": %llu,\n"
                "  \"probe\": \"%s\",\n"
                "  \"num_shards\": %zu,\n  \"broken_shards\": %zu,\n"
                "  \"num_texts\": %llu,\n  \"total_tokens\": %llu,\n"
                "  \"shards\": [\n",
                JsonEscape(set_dir).c_str(),
                static_cast<unsigned long long>(manifest->epoch), probe_mode,
                rows.size(), broken,
                static_cast<unsigned long long>(num_texts),
                static_cast<unsigned long long>(total_tokens));
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      if (row.status.ok()) {
        std::printf("    {\"dir\": \"%s\", \"ok\": true, \"health\": \"%s\", "
                    "\"text_offset\": %llu, \"num_texts\": %llu, "
                    "\"k\": %u, \"seed\": %llu, \"t\": %u}%s\n",
                    JsonEscape(row.dir).c_str(), ShardHealthName(row.health),
                    static_cast<unsigned long long>(row.text_offset),
                    static_cast<unsigned long long>(row.meta.num_texts),
                    row.meta.k,
                    static_cast<unsigned long long>(row.meta.seed), row.meta.t,
                    i + 1 < rows.size() ? "," : "");
      } else {
        std::printf("    {\"dir\": \"%s\", \"ok\": false, \"health\": "
                    "\"%s\", \"last_error\": \"%s\"}%s\n",
                    JsonEscape(row.dir).c_str(), ShardHealthName(row.health),
                    JsonEscape(row.status.ToString()).c_str(),
                    i + 1 < rows.size() ? "," : "");
      }
    }
    std::printf("  ]\n}\n");
  } else {
    std::printf("shard set %s: epoch %llu, %zu shards (%zu broken), "
                "%llu texts, %llu tokens%s%s\n",
                set_dir.c_str(),
                static_cast<unsigned long long>(manifest->epoch), rows.size(),
                broken, static_cast<unsigned long long>(num_texts),
                static_cast<unsigned long long>(total_tokens),
                probe ? ", probe=" : "", probe ? probe_mode : "");
    for (const Row& row : rows) {
      if (row.status.ok()) {
        std::printf("  %-40s %-11s offset=%-10llu texts=%-10llu k=%u t=%u\n",
                    row.dir.c_str(), ShardHealthName(row.health),
                    static_cast<unsigned long long>(row.text_offset),
                    static_cast<unsigned long long>(row.meta.num_texts),
                    row.meta.k, row.meta.t);
      } else {
        std::printf("  %-40s %-11s %s\n", row.dir.c_str(),
                    ShardHealthName(row.health),
                    row.status.ToString().c_str());
      }
    }
  }
  // Like ndss_fsck: a non-zero exit for a set that cannot fully serve.
  return broken == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.positional().empty()) Usage();
  const std::string cmd = flags.positional().front();
  const std::string set_dir = flags.GetString("set", "");
  if (set_dir.empty()) Usage();
  const std::vector<std::string> args(flags.positional().begin() + 1,
                                      flags.positional().end());
  if (cmd == "create") {
    if (args.empty()) Usage();
    return Create(set_dir, args);
  }
  if (cmd == "attach") {
    if (args.size() != 1) Usage();
    return Attach(set_dir, args.front());
  }
  if (cmd == "detach") {
    if (args.size() != 1) Usage();
    return Detach(set_dir, args.front());
  }
  if (cmd == "status") {
    if (!args.empty()) Usage();
    const bool deep = flags.GetBool("deep", false);
    const bool probe = flags.GetBool("probe", false) || deep;
    return PrintStatus(set_dir, flags.GetBool("json", false), probe, deep);
  }
  Usage();
}
