// ndss_query: runs near-duplicate searches against a built index.
//
// The query is either an explicit token list, a span of a corpus text, or
// a random perturbed span (for quick smoke tests):
//
//   ndss_query --index=/data/idx --theta=0.8 --tokens=17,4,99,23,...
//   ndss_query --index=/data/idx --corpus=/data/corpus.crp \
//              --text=12 --begin=100 --len=64 [--noise=0.05]
//   ndss_query --index=/data/idx --corpus=/data/corpus.crp --random=10
//
// --random mode runs the whole set through SearchBatch (shared list cache);
// --threads=N fans the batch out across N worker threads.

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/random.h"
#include "common/stopwatch.h"
#include "query/searcher.h"
#include "text/corpus_file.h"
#include "tool_flags.h"

namespace {

std::vector<ndss::Token> ParseTokens(const std::string& list) {
  std::vector<ndss::Token> tokens;
  std::stringstream stream(list);
  std::string item;
  while (std::getline(stream, item, ',')) {
    tokens.push_back(
        static_cast<ndss::Token>(std::strtoul(item.c_str(), nullptr, 10)));
  }
  return tokens;
}

void RunOne(ndss::Searcher& searcher, const std::vector<ndss::Token>& query,
            const ndss::SearchOptions& options, bool verbose) {
  ndss::Stopwatch watch;
  auto result = searcher.Search(query, options);
  if (!result.ok()) ndss::tools::Die(result.status().ToString());
  std::printf("query (%zu tokens): %zu matching spans in %.3f ms "
              "(io %.0f KB)\n",
              query.size(), result->spans.size(), watch.ElapsedMillis(),
              result->stats.io_bytes / 1e3);
  if (verbose) {
    for (const ndss::MatchSpan& span : result->spans) {
      std::printf("  text %-8u tokens [%u..%u]  est. Jaccard %.3f\n",
                  span.text, span.begin, span.end,
                  span.estimated_similarity);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  ndss::tools::Flags flags(argc, argv);
  const std::string index_dir = flags.GetString("index", "");
  if (index_dir.empty()) {
    ndss::tools::Die(
        "usage: ndss_query --index=DIR (--tokens=a,b,c | --corpus=FILE "
        "(--text=ID --begin=B --len=L [--noise=P] | --random=N)) "
        "[--theta=T] [--threads=N] [--no-prefix-filter] [--cost-model] "
        "[--quiet]");
  }
  auto searcher = ndss::Searcher::Open(index_dir);
  if (!searcher.ok()) ndss::tools::Die(searcher.status().ToString());
  std::printf("index: k=%u t=%u texts=%llu tokens=%llu\n",
              searcher->meta().k, searcher->meta().t,
              static_cast<unsigned long long>(searcher->meta().num_texts),
              static_cast<unsigned long long>(
                  searcher->meta().total_tokens));

  ndss::SearchOptions options;
  options.theta = flags.GetDouble("theta", 0.8);
  options.use_prefix_filter = !flags.GetBool("no-prefix-filter", false);
  options.use_cost_model = flags.GetBool("cost-model", false);
  if (!options.use_cost_model) {
    options.long_list_threshold = searcher->ListCountPercentile(
        flags.GetDouble("prefix-fraction", 0.10));
  }
  const bool verbose = !flags.GetBool("quiet", false);

  if (flags.Has("tokens")) {
    RunOne(*searcher, ParseTokens(flags.GetString("tokens", "")), options,
           verbose);
    return 0;
  }

  const std::string corpus_path = flags.GetString("corpus", "");
  if (corpus_path.empty()) {
    ndss::tools::Die("need --tokens or --corpus");
  }
  auto corpus = ndss::CorpusFileReader::Open(corpus_path);
  if (!corpus.ok()) ndss::tools::Die(corpus.status().ToString());

  if (flags.Has("random")) {
    const int count = static_cast<int>(flags.GetInt("random", 10));
    const uint32_t len = static_cast<uint32_t>(flags.GetInt("len", 64));
    const double noise = flags.GetDouble("noise", 0.05);
    const size_t threads =
        static_cast<size_t>(std::max<int64_t>(1, flags.GetInt("threads", 1)));
    ndss::Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));
    std::vector<std::vector<ndss::Token>> queries;
    for (int i = 0; i < count; ++i) {
      const ndss::TextId id =
          static_cast<ndss::TextId>(rng.Uniform(corpus->num_texts()));
      auto text = corpus->ReadText(id);
      if (!text.ok()) ndss::tools::Die(text.status().ToString());
      if (text->size() < len) {
        --i;  // resample; assumes some text is long enough
        continue;
      }
      const uint32_t begin =
          static_cast<uint32_t>(rng.Uniform(text->size() - len + 1));
      std::vector<ndss::Token> query(text->begin() + begin,
                                     text->begin() + begin + len);
      for (auto& token : query) {
        if (rng.NextBool(noise)) {
          token = static_cast<ndss::Token>(rng.Uniform(1 << 20));
        }
      }
      queries.push_back(std::move(query));
    }
    ndss::Stopwatch watch;
    auto batch = searcher->SearchBatch(queries, options,
                                       /*cache_budget_bytes=*/256ull << 20,
                                       threads);
    if (!batch.ok()) ndss::tools::Die(batch.status().ToString());
    const double elapsed = watch.ElapsedMillis();
    uint64_t spans = 0, io_bytes = 0, cache_hits = 0;
    for (const ndss::SearchResult& result : *batch) {
      spans += result.spans.size();
      io_bytes += result.stats.io_bytes;
      cache_hits += result.stats.cache_hits;
      if (verbose) {
        std::printf("query (%zu tokens): %zu matching spans (io %.0f KB)\n",
                    queries[&result - batch->data()].size(),
                    result.spans.size(), result.stats.io_bytes / 1e3);
      }
    }
    std::printf("batch: %zu queries, %llu spans, %.3f ms total "
                "(%zu threads, io %.0f KB, %llu cache hits)\n",
                queries.size(), static_cast<unsigned long long>(spans),
                elapsed, threads, io_bytes / 1e3,
                static_cast<unsigned long long>(cache_hits));
    return 0;
  }

  const ndss::TextId id = static_cast<ndss::TextId>(flags.GetInt("text", 0));
  const uint32_t begin = static_cast<uint32_t>(flags.GetInt("begin", 0));
  const uint32_t len = static_cast<uint32_t>(flags.GetInt("len", 64));
  auto text = corpus->ReadText(id);
  if (!text.ok()) ndss::tools::Die(text.status().ToString());
  if (begin + len > text->size()) ndss::tools::Die("span out of range");
  std::vector<ndss::Token> query(text->begin() + begin,
                                 text->begin() + begin + len);
  const double noise = flags.GetDouble("noise", 0.0);
  if (noise > 0) {
    ndss::Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));
    for (auto& token : query) {
      if (rng.NextBool(noise)) {
        token = static_cast<ndss::Token>(rng.Uniform(1 << 20));
      }
    }
  }
  RunOne(*searcher, query, options, verbose);
  return 0;
}
