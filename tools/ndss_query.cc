// ndss_query: runs near-duplicate searches against a built index.
//
// The query is either an explicit token list, a span of a corpus text, or
// a random perturbed span (for quick smoke tests):
//
//   ndss_query --index=/data/idx --theta=0.8 --tokens=17,4,99,23,...
//   ndss_query --index=/data/idx --corpus=/data/corpus.crp \
//              --text=12 --begin=100 --len=64 [--noise=0.05]
//   ndss_query --index=/data/idx --corpus=/data/corpus.crp --random=10
//
// --random mode runs the whole set through SearchBatch (shared list cache);
// --threads=N fans the batch out across N worker threads.
//
// Resource governance: --deadline-ms bounds each query's wall-clock,
// --query-memory-mb bounds its working memory, --batch-deadline-ms bounds
// the whole --random batch (with --shed-policy=reject-new|cancel-running).
// Governed failures exit with distinct codes so scripts can tell an
// overloaded query from a broken index: 4 = deadline exceeded,
// 5 = memory budget exhausted, 6 = shed by batch admission control
// (1 remains the generic error exit).

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/query_context.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "query/searcher.h"
#include "text/corpus_file.h"
#include "tool_flags.h"

namespace {

constexpr int kExitDeadline = 4;
constexpr int kExitMemory = 5;
constexpr int kExitShed = 6;

std::vector<ndss::Token> ParseTokens(const std::string& list) {
  std::vector<ndss::Token> tokens;
  std::stringstream stream(list);
  std::string item;
  while (std::getline(stream, item, ',')) {
    uint32_t value = 0;
    if (!ndss::ParseUint32(item, &value)) {
      // A malformed entry used to strtoul to 0 and silently query token 0.
      ndss::tools::Die("--tokens: malformed token '" + item +
                       "' (expected a comma-separated uint32 list)");
    }
    tokens.push_back(static_cast<ndss::Token>(value));
  }
  return tokens;
}

/// Exit code for one governed query outcome (0 = keep going).
int ExitCodeFor(const ndss::Status& status) {
  if (status.IsDeadlineExceeded()) return kExitDeadline;
  if (status.IsResourceExhausted()) return kExitMemory;
  if (status.IsCancelled()) return kExitShed;
  return status.ok() ? 0 : 1;
}

/// Per-query governance from flags; `budget` must outlive the context.
ndss::QueryContext MakeContext(const ndss::tools::Flags& flags,
                               ndss::MemoryBudget* budget) {
  ndss::QueryContext ctx;
  const double deadline_ms = flags.GetDouble("deadline-ms", 0);
  if (deadline_ms > 0) {
    ctx.set_deadline(ndss::QueryContext::Clock::now() +
                     std::chrono::microseconds(
                         static_cast<int64_t>(deadline_ms * 1000)));
  }
  if (budget->max_bytes() > 0) ctx.set_memory_budget(budget);
  return ctx;
}

int RunOne(ndss::Searcher& searcher, const std::vector<ndss::Token>& query,
           const ndss::SearchOptions& options,
           const ndss::tools::Flags& flags, bool verbose) {
  ndss::MemoryBudget budget(static_cast<uint64_t>(
      flags.GetDouble("query-memory-mb", 0) * (1 << 20)));
  const ndss::QueryContext ctx = MakeContext(flags, &budget);
  ndss::Stopwatch watch;
  ndss::SearchResult result;
  const ndss::Status status = searcher.Search(query, options, &ctx, &result);
  if (!status.ok()) {
    const int code = ExitCodeFor(status);
    if (code == 1) ndss::tools::Die(status.ToString());
    // Governed exit: report the partial stats the query accumulated.
    std::fprintf(stderr,
                 "query stopped: %s (after %.3f ms, io %.0f KB, "
                 "%llu windows scanned, peak memory %.0f KB)\n",
                 status.ToString().c_str(), watch.ElapsedMillis(),
                 result.stats.io_bytes / 1e3,
                 static_cast<unsigned long long>(
                     result.stats.windows_scanned),
                 result.stats.peak_memory_bytes / 1e3);
    return code;
  }
  std::printf("query (%zu tokens): %zu matching spans in %.3f ms "
              "(io %.0f KB)\n",
              query.size(), result.spans.size(), watch.ElapsedMillis(),
              result.stats.io_bytes / 1e3);
  if (verbose) {
    for (const ndss::MatchSpan& span : result.spans) {
      std::printf("  text %-8u tokens [%u..%u]  est. Jaccard %.3f\n",
                  span.text, span.begin, span.end,
                  span.estimated_similarity);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ndss::tools::Flags flags(argc, argv);
  const std::string index_dir = flags.GetString("index", "");
  if (index_dir.empty()) {
    ndss::tools::Die(
        "usage: ndss_query --index=DIR (--tokens=a,b,c | --corpus=FILE "
        "(--text=ID --begin=B --len=L [--noise=P] | --random=N)) "
        "[--theta=T] [--threads=N] [--no-prefix-filter] [--cost-model] "
        "[--deadline-ms=D] [--query-memory-mb=M] [--batch-deadline-ms=D] "
        "[--shed-policy=reject-new|cancel-running] [--quiet]");
  }
  auto searcher = ndss::Searcher::Open(index_dir);
  if (!searcher.ok()) ndss::tools::Die(searcher.status().ToString());
  std::printf("index: k=%u t=%u sketch=%s texts=%llu tokens=%llu\n",
              searcher->meta().k, searcher->meta().t,
              ndss::SketchSchemeName(searcher->meta().sketch),
              static_cast<unsigned long long>(searcher->meta().num_texts),
              static_cast<unsigned long long>(
                  searcher->meta().total_tokens));

  ndss::SearchOptions options;
  options.theta = flags.GetDouble("theta", 0.8);
  options.use_prefix_filter = !flags.GetBool("no-prefix-filter", false);
  options.use_cost_model = flags.GetBool("cost-model", false);
  if (!options.use_cost_model) {
    options.long_list_threshold = searcher->ListCountPercentile(
        flags.GetDouble("prefix-fraction", 0.10));
  }
  const bool verbose = !flags.GetBool("quiet", false);

  if (flags.Has("tokens")) {
    return RunOne(*searcher, ParseTokens(flags.GetString("tokens", "")),
                  options, flags, verbose);
  }

  const std::string corpus_path = flags.GetString("corpus", "");
  if (corpus_path.empty()) {
    ndss::tools::Die("need --tokens or --corpus");
  }
  auto corpus = ndss::CorpusFileReader::Open(corpus_path);
  if (!corpus.ok()) ndss::tools::Die(corpus.status().ToString());

  if (flags.Has("random")) {
    const int count = static_cast<int>(flags.GetInt("random", 10));
    const uint32_t len = static_cast<uint32_t>(flags.GetInt("len", 64));
    const double noise = flags.GetDouble("noise", 0.05);
    const size_t threads =
        static_cast<size_t>(std::max<int64_t>(1, flags.GetInt("threads", 1)));
    ndss::Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));
    std::vector<std::vector<ndss::Token>> queries;
    for (int i = 0; i < count; ++i) {
      const ndss::TextId id =
          static_cast<ndss::TextId>(rng.Uniform(corpus->num_texts()));
      auto text = corpus->ReadText(id);
      if (!text.ok()) ndss::tools::Die(text.status().ToString());
      if (text->size() < len) {
        --i;  // resample; assumes some text is long enough
        continue;
      }
      const uint32_t begin =
          static_cast<uint32_t>(rng.Uniform(text->size() - len + 1));
      std::vector<ndss::Token> query(text->begin() + begin,
                                     text->begin() + begin + len);
      for (auto& token : query) {
        if (rng.NextBool(noise)) {
          token = static_cast<ndss::Token>(rng.Uniform(1 << 20));
        }
      }
      queries.push_back(std::move(query));
    }
    ndss::BatchLimits limits;
    limits.batch_timeout_micros = static_cast<int64_t>(
        flags.GetDouble("batch-deadline-ms", 0) * 1000);
    limits.query_timeout_micros = static_cast<int64_t>(
        flags.GetDouble("deadline-ms", 0) * 1000);
    limits.max_query_bytes = static_cast<uint64_t>(
        flags.GetDouble("query-memory-mb", 0) * (1 << 20));
    const std::string shed = flags.GetString("shed-policy", "cancel-running");
    if (shed == "reject-new") {
      limits.shed_policy = ndss::ShedPolicy::kRejectNew;
    } else if (shed != "cancel-running") {
      ndss::tools::Die("--shed-policy must be reject-new or cancel-running");
    }
    ndss::Stopwatch watch;
    auto batch = searcher->SearchBatch(queries, options, limits,
                                       /*cache_budget_bytes=*/256ull << 20,
                                       threads);
    if (!batch.ok()) ndss::tools::Die(batch.status().ToString());
    const double elapsed = watch.ElapsedMillis();
    uint64_t spans = 0, io_bytes = 0, cache_hits = 0;
    for (size_t i = 0; i < batch->results.size(); ++i) {
      const ndss::SearchResult& result = batch->results[i];
      spans += result.spans.size();
      io_bytes += result.stats.io_bytes;
      cache_hits += result.stats.cache_hits;
      if (verbose) {
        if (batch->statuses[i].ok()) {
          std::printf("query (%zu tokens): %zu matching spans (io %.0f KB)\n",
                      queries[i].size(), result.spans.size(),
                      result.stats.io_bytes / 1e3);
        } else {
          std::printf("query (%zu tokens): %s\n", queries[i].size(),
                      batch->statuses[i].ToString().c_str());
        }
      }
    }
    const ndss::BatchStats& stats = batch->stats;
    std::printf("batch: %zu queries, %llu spans, %.3f ms total "
                "(%zu threads, io %.0f KB, %llu cache hits)\n",
                queries.size(), static_cast<unsigned long long>(spans),
                elapsed, threads, io_bytes / 1e3,
                static_cast<unsigned long long>(cache_hits));
    std::printf("governance: ok=%llu deadline_exceeded=%llu shed=%llu "
                "resource_exhausted=%llu failed=%llu peak_query=%.0f KB\n",
                static_cast<unsigned long long>(stats.queries_ok),
                static_cast<unsigned long long>(
                    stats.queries_deadline_exceeded),
                static_cast<unsigned long long>(stats.queries_shed),
                static_cast<unsigned long long>(
                    stats.queries_resource_exhausted),
                static_cast<unsigned long long>(stats.queries_failed),
                stats.peak_query_bytes / 1e3);
    // Exit-code priority: a real failure trumps governed outcomes.
    if (stats.queries_failed > 0) return 1;
    if (stats.queries_resource_exhausted > 0) return kExitMemory;
    if (stats.queries_deadline_exceeded > 0) return kExitDeadline;
    if (stats.queries_shed > 0) return kExitShed;
    return 0;
  }

  const ndss::TextId id = static_cast<ndss::TextId>(flags.GetInt("text", 0));
  const uint32_t begin = static_cast<uint32_t>(flags.GetInt("begin", 0));
  const uint32_t len = static_cast<uint32_t>(flags.GetInt("len", 64));
  auto text = corpus->ReadText(id);
  if (!text.ok()) ndss::tools::Die(text.status().ToString());
  if (begin + len > text->size()) ndss::tools::Die("span out of range");
  std::vector<ndss::Token> query(text->begin() + begin,
                                 text->begin() + begin + len);
  const double noise = flags.GetDouble("noise", 0.0);
  if (noise > 0) {
    ndss::Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));
    for (auto& token : query) {
      if (rng.NextBool(noise)) {
        token = static_cast<ndss::Token>(rng.Uniform(1 << 20));
      }
    }
  }
  return RunOne(*searcher, query, options, flags, verbose);
}
