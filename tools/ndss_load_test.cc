// ndss_load_test: drives open- or closed-loop HTTP traffic against a live
// ndss_serve and reports latency percentiles, shed rate, and the error
// breakdown:
//
//   ndss_load_test --port=8080 [--host=127.0.0.1]
//                  [--corpus=FILE] [--queries=64] [--len=64] [--noise=0.05]
//                  [--vocab=32000] [--seed=1] [--theta=0.8]
//                  [--mode=closed|open] [--concurrency=4] [--qps=100]
//                  [--duration-s=5 | --requests=N]
//                  [--deadline-ms=0] [--deadline-fraction=1]
//                  [--verify-set=DIR] [--json] [--out=FILE]
//
// Closed loop: each of --concurrency workers keeps exactly one request in
// flight (throughput-limited by the server). Open loop: the i-th request is
// scheduled at start + i/qps regardless of completions, and latency is
// measured from the scheduled send time, so queueing delay under overload
// is charged to the server (the coordinated-omission-free convention).
//
// Queries are perturbed spans of --corpus texts (near-duplicate queries
// with real matches) or uniform random tokens when no corpus is given.
// --deadline-fraction sends --deadline-ms on that fraction of requests,
// mixing governed and ungoverned traffic; 429/504/499 responses count as
// shed/deadline/cancelled, not errors.
//
// --verify-set opens the same shard set directly and precomputes every
// pooled query's exact answer; each 200 response (when not degraded) must
// serialize bit-identically through the same JSON path, or the run exits
// nonzero. This is the equivalence gate: the network front-end must not
// change answers.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/random.h"
#include "corpusgen/synthetic.h"
#include "net/http.h"
#include "net/json.h"
#include "net/serve.h"
#include "shard/sharded_searcher.h"
#include "text/corpus_file.h"
#include "tool_flags.h"

namespace {

using Clock = std::chrono::steady_clock;

struct Sample {
  double latency_ms = 0;
  int status = 0;        ///< HTTP status; 0 = transport error
  bool verified = false;
  bool mismatch = false;
};

struct WorkerLog {
  std::vector<Sample> samples;
  uint64_t reconnects = 0;
};

double Percentile(std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0;
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(index, sorted_ms.size() - 1)];
}

/// The canonical serialization of an answer's content (spans + rectangles,
/// not stats — stats carry wall-clock times that legitimately differ).
/// Both sides of the equivalence gate go through net::SearchResultToJson,
/// so equality here is bit-identity of the answer.
std::string AnswerKey(const ndss::net::JsonValue& response_object) {
  const ndss::net::JsonValue* spans = response_object.Find("spans");
  const ndss::net::JsonValue* rectangles = response_object.Find("rectangles");
  std::string key = spans != nullptr ? spans->Dump() : "";
  key += "|";
  key += rectangles != nullptr ? rectangles->Dump() : "";
  return key;
}

std::string AnswerKey(const ndss::SearchResult& result) {
  ndss::net::JsonValue object = ndss::net::JsonValue::Object();
  ndss::net::SearchResultToJson(result, &object);
  return AnswerKey(object);
}

uint64_t DegradedShards(const ndss::net::JsonValue& response_object) {
  const ndss::net::JsonValue* stats = response_object.Find("stats");
  if (stats == nullptr) return 0;
  const ndss::net::JsonValue* degraded = stats->Find("degraded_shards");
  return degraded != nullptr && degraded->is_number()
             ? static_cast<uint64_t>(degraded->number())
             : 0;
}

}  // namespace

int main(int argc, char** argv) {
  ndss::tools::Flags flags(argc, argv);
  const int64_t port = flags.GetInt("port", 0);
  if (port <= 0 || port > 65535) {
    ndss::tools::Die(
        "usage: ndss_load_test --port=PORT [--host=127.0.0.1] "
        "[--corpus=FILE] [--queries=64] [--len=64] [--noise=0.05] "
        "[--vocab=32000] [--seed=1] [--theta=0.8] [--mode=closed|open] "
        "[--concurrency=4] [--qps=100] [--duration-s=5 | --requests=N] "
        "[--deadline-ms=0] [--deadline-fraction=1] [--verify-set=DIR] "
        "[--json] [--out=FILE]");
  }
  const std::string host = flags.GetString("host", "127.0.0.1");
  const std::string mode = flags.GetString("mode", "closed");
  if (mode != "closed" && mode != "open") {
    ndss::tools::Die("--mode must be closed or open");
  }
  const size_t concurrency = static_cast<size_t>(
      std::max<int64_t>(1, flags.GetInt("concurrency", 4)));
  const double qps = flags.GetDouble("qps", 100);
  if (mode == "open" && qps <= 0) ndss::tools::Die("--qps must be > 0");
  const double duration_s = flags.GetDouble("duration-s", 5);
  const int64_t max_requests = flags.GetInt("requests", 0);
  const double deadline_ms = flags.GetDouble("deadline-ms", 0);
  const double deadline_fraction = flags.GetDouble("deadline-fraction", 1);
  const double theta = flags.GetDouble("theta", 0.8);
  const uint32_t num_queries = static_cast<uint32_t>(
      std::max<int64_t>(1, flags.GetInt("queries", 64)));
  const uint32_t query_len =
      static_cast<uint32_t>(std::max<int64_t>(1, flags.GetInt("len", 64)));
  const double noise = flags.GetDouble("noise", 0.05);
  const uint32_t vocab =
      static_cast<uint32_t>(std::max<int64_t>(2, flags.GetInt("vocab",
                                                              32000)));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const bool json_output = flags.GetBool("json", false);

  // Build the query pool: perturbed corpus spans when a corpus is given
  // (queries with real near-duplicate matches), uniform random otherwise.
  ndss::Rng rng(seed);
  std::vector<std::vector<ndss::Token>> queries;
  const std::string corpus_path = flags.GetString("corpus", "");
  if (!corpus_path.empty()) {
    auto reader = ndss::CorpusFileReader::Open(corpus_path);
    if (!reader.ok()) ndss::tools::Die(reader.status().ToString());
    auto corpus = reader->ReadAll();
    if (!corpus.ok()) ndss::tools::Die(corpus.status().ToString());
    for (uint32_t i = 0; i < num_queries; ++i) {
      const size_t text_index = rng.Uniform(corpus->num_texts());
      const std::span<const ndss::Token> text = corpus->text(text_index);
      const uint32_t len = std::min<uint32_t>(
          query_len, static_cast<uint32_t>(text.size()));
      const uint32_t begin = static_cast<uint32_t>(
          rng.Uniform(text.size() - len + 1));
      queries.push_back(
          ndss::PerturbSequence(text, begin, len, noise, vocab, rng));
    }
  } else {
    for (uint32_t i = 0; i < num_queries; ++i) {
      std::vector<ndss::Token> query(query_len);
      for (ndss::Token& token : query) {
        token = static_cast<ndss::Token>(rng.Uniform(vocab));
      }
      queries.push_back(std::move(query));
    }
  }

  // Pre-serialize each query's request body, with and without a deadline.
  std::vector<std::string> bodies_plain;
  std::vector<std::string> bodies_deadline;
  for (const std::vector<ndss::Token>& query : queries) {
    ndss::net::JsonValue tokens = ndss::net::JsonValue::Array();
    for (ndss::Token token : query) {
      tokens.Append(ndss::net::JsonValue::Number(
          static_cast<uint64_t>(token)));
    }
    ndss::net::JsonValue body = ndss::net::JsonValue::Object();
    body.Set("tokens", std::move(tokens));
    body.Set("theta", ndss::net::JsonValue::Number(theta));
    bodies_plain.push_back(body.Dump());
    body.Set("deadline_ms", ndss::net::JsonValue::Number(deadline_ms));
    bodies_deadline.push_back(body.Dump());
  }

  // The equivalence gate: precompute every pooled query's exact answer
  // through the library directly, serialized via the same JSON path.
  std::vector<std::string> expected_keys;
  const std::string verify_set = flags.GetString("verify-set", "");
  if (!verify_set.empty()) {
    ndss::ShardedSearcherOptions searcher_options;
    auto searcher = ndss::ShardedSearcher::Open(verify_set, searcher_options);
    if (!searcher.ok()) ndss::tools::Die(searcher.status().ToString());
    ndss::SearchOptions search_options;
    search_options.theta = theta;
    for (const std::vector<ndss::Token>& query : queries) {
      auto result = searcher->Search(query, search_options);
      if (!result.ok()) ndss::tools::Die(result.status().ToString());
      expected_keys.push_back(AnswerKey(*result));
    }
  }

  std::atomic<int64_t> next_request{0};
  std::atomic<bool> stop{false};
  std::vector<WorkerLog> logs(concurrency);
  const Clock::time_point start = Clock::now();
  const Clock::time_point end_time =
      start + std::chrono::microseconds(
                  static_cast<int64_t>(duration_s * 1e6));

  auto worker = [&](size_t worker_index) {
    WorkerLog& log = logs[worker_index];
    ndss::net::HttpClient client;
    if (!client.Connect(host, static_cast<uint16_t>(port)).ok()) {
      stop.store(true);
      return;
    }
    // Deterministic per-request deadline mix, shared by all workers: the
    // request's global index decides, not worker scheduling.
    ndss::Rng mix_rng(seed ^ 0x10adbeef);

    while (!stop.load(std::memory_order_relaxed)) {
      const int64_t i = next_request.fetch_add(1, std::memory_order_relaxed);
      if (max_requests > 0 && i >= max_requests) break;

      Clock::time_point issue = Clock::now();
      if (mode == "open") {
        // The i-th request is due at start + i/qps; latency is measured
        // from that scheduled time even if we send late (queueing under
        // overload is the server's problem, not hidden by the client).
        const Clock::time_point scheduled =
            start + std::chrono::microseconds(
                        static_cast<int64_t>(static_cast<double>(i) * 1e6 /
                                             qps));
        std::this_thread::sleep_until(scheduled);
        issue = scheduled;
      }
      if (max_requests <= 0 && Clock::now() >= end_time) break;

      const size_t query_index = static_cast<size_t>(i) % queries.size();
      const bool governed =
          deadline_ms > 0 &&
          (deadline_fraction >= 1 ||
           ndss::SplitMix64(seed ^ static_cast<uint64_t>(i)) %
                   1000000 <
               static_cast<uint64_t>(deadline_fraction * 1000000));
      const std::string& body = governed ? bodies_deadline[query_index]
                                         : bodies_plain[query_index];

      auto response = client.Post("/v1/search", body);
      Sample sample;
      sample.latency_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - issue)
              .count();
      if (!response.ok()) {
        sample.status = 0;
        ++log.reconnects;
        client.Close();
        if (!client.Connect(host, static_cast<uint16_t>(port)).ok()) {
          log.samples.push_back(sample);
          break;
        }
      } else {
        sample.status = response->status;
        if (response->status == 200 && !expected_keys.empty()) {
          auto parsed = ndss::net::ParseJson(response->body);
          if (parsed.ok() && DegradedShards(*parsed) == 0) {
            sample.verified = true;
            sample.mismatch =
                AnswerKey(*parsed) != expected_keys[query_index];
          }
        }
      }
      log.samples.push_back(sample);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(concurrency);
  for (size_t i = 0; i < concurrency; ++i) threads.emplace_back(worker, i);
  for (std::thread& thread : threads) thread.join();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  // Merge.
  std::vector<double> latencies_ms;
  std::map<int, uint64_t> by_status;
  uint64_t total = 0, ok = 0, shed = 0, deadline = 0, cancelled = 0;
  uint64_t transport = 0, verified = 0, mismatches = 0, reconnects = 0;
  for (const WorkerLog& log : logs) {
    reconnects += log.reconnects;
    for (const Sample& sample : log.samples) {
      ++total;
      ++by_status[sample.status];
      if (sample.status != 0) latencies_ms.push_back(sample.latency_ms);
      if (sample.status == 200) ++ok;
      if (sample.status == 429) ++shed;
      if (sample.status == 504) ++deadline;
      if (sample.status == 499) ++cancelled;
      if (sample.status == 0) ++transport;
      if (sample.verified) ++verified;
      if (sample.mismatch) ++mismatches;
    }
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  const double p50 = Percentile(latencies_ms, 0.50);
  const double p95 = Percentile(latencies_ms, 0.95);
  const double p99 = Percentile(latencies_ms, 0.99);
  const double achieved_qps =
      elapsed_s > 0 ? static_cast<double>(total) / elapsed_s : 0;
  const double shed_rate =
      total > 0 ? static_cast<double>(shed) / static_cast<double>(total) : 0;

  ndss::net::JsonValue report = ndss::net::JsonValue::Object();
  report.Set("mode", ndss::net::JsonValue::String(mode));
  report.Set("concurrency", ndss::net::JsonValue::Number(
                                static_cast<uint64_t>(concurrency)));
  if (mode == "open") {
    report.Set("target_qps", ndss::net::JsonValue::Number(qps));
  }
  report.Set("requests", ndss::net::JsonValue::Number(total));
  report.Set("elapsed_s", ndss::net::JsonValue::Number(elapsed_s));
  report.Set("achieved_qps", ndss::net::JsonValue::Number(achieved_qps));
  report.Set("p50_ms", ndss::net::JsonValue::Number(p50));
  report.Set("p95_ms", ndss::net::JsonValue::Number(p95));
  report.Set("p99_ms", ndss::net::JsonValue::Number(p99));
  report.Set("ok", ndss::net::JsonValue::Number(ok));
  report.Set("shed", ndss::net::JsonValue::Number(shed));
  report.Set("shed_rate", ndss::net::JsonValue::Number(shed_rate));
  report.Set("deadline_exceeded", ndss::net::JsonValue::Number(deadline));
  report.Set("cancelled", ndss::net::JsonValue::Number(cancelled));
  report.Set("transport_errors", ndss::net::JsonValue::Number(transport));
  report.Set("reconnects", ndss::net::JsonValue::Number(reconnects));
  ndss::net::JsonValue statuses = ndss::net::JsonValue::Object();
  for (const auto& [status, count] : by_status) {
    statuses.Set(std::to_string(status), ndss::net::JsonValue::Number(count));
  }
  report.Set("by_status", std::move(statuses));
  if (!expected_keys.empty()) {
    ndss::net::JsonValue verify = ndss::net::JsonValue::Object();
    verify.Set("compared", ndss::net::JsonValue::Number(verified));
    verify.Set("mismatches", ndss::net::JsonValue::Number(mismatches));
    report.Set("verify", std::move(verify));
  }

  if (json_output) {
    std::printf("%s\n", report.Dump().c_str());
  } else {
    std::printf("ndss_load_test: %s loop, %zu workers%s\n", mode.c_str(),
                concurrency,
                mode == "open"
                    ? (", target " + std::to_string(qps) + " qps").c_str()
                    : "");
    std::printf("  requests      %llu in %.2fs (%.1f qps achieved)\n",
                static_cast<unsigned long long>(total), elapsed_s,
                achieved_qps);
    std::printf("  latency ms    p50 %.3f  p95 %.3f  p99 %.3f\n", p50, p95,
                p99);
    std::printf("  outcomes      ok %llu  shed %llu (%.1f%%)  deadline %llu"
                "  cancelled %llu  transport %llu\n",
                static_cast<unsigned long long>(ok),
                static_cast<unsigned long long>(shed), 100 * shed_rate,
                static_cast<unsigned long long>(deadline),
                static_cast<unsigned long long>(cancelled),
                static_cast<unsigned long long>(transport));
    for (const auto& [status, count] : by_status) {
      std::printf("  status %-6d %llu\n", status,
                  static_cast<unsigned long long>(count));
    }
    if (!expected_keys.empty()) {
      std::printf("  verify        %llu compared, %llu mismatches\n",
                  static_cast<unsigned long long>(verified),
                  static_cast<unsigned long long>(mismatches));
    }
  }
  const std::string out_path = flags.GetString("out", "");
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << report.Dump() << "\n";
    if (!out.good()) ndss::tools::Die("cannot write " + out_path);
  }

  if (mismatches > 0) {
    std::fprintf(stderr,
                 "ndss_load_test: FAIL: %llu responses differed from the "
                 "direct ShardedSearcher answer\n",
                 static_cast<unsigned long long>(mismatches));
    return 1;
  }
  if (total == 0 || transport == total) {
    std::fprintf(stderr, "ndss_load_test: no responses received\n");
    return 1;
  }
  return 0;
}
