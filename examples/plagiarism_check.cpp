// Plagiarism / provenance check over raw text documents.
//
// Exercises the full text pipeline: train a BPE tokenizer on a document
// collection, tokenize and index it, then slide windows over a suspicious
// document and report which parts appear (near-verbatim) in the collection
// — the ALLIGN-style application from the paper's related work, built on
// the NDSS index.
//
//   ./plagiarism_check [index_dir]

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "corpusgen/synthetic.h"
#include "ndss/ndss.h"
#include "tokenizer/bpe_tokenizer.h"
#include "tokenizer/bpe_trainer.h"

int main(int argc, char** argv) {
  const std::string dir =
      argc > 1 ? argv[1] : std::string("/tmp/ndss_plagiarism");
  std::filesystem::remove_all(dir);

  // A collection of raw "documents" (synthetic English-like text).
  std::vector<std::string> documents;
  for (uint32_t d = 0; d < 200; ++d) {
    documents.push_back(ndss::GenerateSyntheticEnglish(80, 1000 + d));
  }

  // Train a BPE tokenizer on the collection.
  ndss::BpeTrainerOptions trainer_options;
  trainer_options.vocab_size = 2000;
  ndss::BpeTrainer trainer(trainer_options);
  for (const std::string& doc : documents) trainer.AddText(doc);
  auto model = trainer.Train();
  if (!model.ok()) {
    std::fprintf(stderr, "BPE training failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  std::printf("BPE: %u token vocabulary (%zu merges)\n", model->vocab_size(),
              model->num_merges());

  // Tokenize and index the collection.
  ndss::BpeTokenizer tokenizer(*model);
  ndss::Corpus corpus;
  for (const std::string& doc : documents) {
    corpus.AddText(tokenizer.Encode(doc));
  }
  ndss::IndexBuildOptions build;
  build.k = 16;
  build.t = 20;
  auto build_stats = ndss::NearDuplicateIndex::Build(corpus, dir, build);
  if (!build_stats.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 build_stats.status().ToString().c_str());
    return 1;
  }
  std::printf("indexed %zu documents (%llu tokens, %llu windows)\n",
              corpus.num_texts(),
              static_cast<unsigned long long>(corpus.total_tokens()),
              static_cast<unsigned long long>(build_stats->num_windows));

  // A suspicious document: fresh text with two passages lifted from the
  // collection (one verbatim, one lightly edited).
  std::string suspicious = ndss::GenerateSyntheticEnglish(20, 9999);
  const std::string lifted_verbatim = documents[17].substr(200, 400);
  std::string lifted_edited = documents[42].substr(100, 400);
  // "Edit" the second passage: ruin a few words.
  for (size_t p = 20; p + 6 < lifted_edited.size(); p += 60) {
    lifted_edited.replace(p, 6, "edited");
  }
  suspicious += lifted_verbatim;
  suspicious += ndss::GenerateSyntheticEnglish(20, 8888);
  suspicious += lifted_edited;

  // Slide windows over the suspicious document and search.
  auto index = ndss::NearDuplicateIndex::Open(dir);
  if (!index.ok()) return 1;
  const std::vector<ndss::Token> tokens = tokenizer.Encode(suspicious);
  ndss::SearchOptions search;
  search.theta = 0.7;

  std::printf("\nsuspicious document: %zu tokens; scanning 64-token "
              "windows (theta = %.2f)\n",
              tokens.size(), search.theta);
  std::vector<bool> sources_hit(documents.size(), false);
  size_t flagged_windows = 0;
  const uint32_t x = 64;
  for (size_t begin = 0; begin + x <= tokens.size(); begin += x) {
    auto result = index->Search(
        std::span<const ndss::Token>(tokens.data() + begin, x), search);
    if (!result.ok()) return 1;
    if (result->spans.empty()) continue;
    ++flagged_windows;
    for (const ndss::MatchSpan& span : result->spans) {
      if (!sources_hit[span.text]) {
        sources_hit[span.text] = true;
        std::printf("  window @%zu matches document %u [%u..%u] "
                    "(est. Jaccard %.2f)\n",
                    begin, span.text, span.begin, span.end,
                    span.estimated_similarity);
      }
    }
  }
  std::printf("\nflagged %zu windows; plagiarized sources identified:",
              flagged_windows);
  for (size_t d = 0; d < documents.size(); ++d) {
    if (sources_hit[d]) std::printf(" %zu", d);
  }
  std::printf("\nexpected sources: 17 (verbatim) and 42 (edited)\n");
  return (sources_hit[17] && sources_hit[42]) ? 0 : 1;
}
