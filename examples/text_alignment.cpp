// Document-vs-document text alignment (the ALIGN problem from the paper's
// related work): find all near-duplicate region pairs between two raw text
// documents, end to end — BPE tokenization, an ephemeral in-memory index,
// sliding-window near-duplicate search, and region merging.
//
//   ./text_alignment

#include <cstdio>
#include <string>

#include "align/text_aligner.h"
#include "corpusgen/synthetic.h"
#include "tokenizer/bpe_tokenizer.h"
#include "tokenizer/bpe_trainer.h"

int main() {
  // Two documents sharing two passages: one verbatim, one lightly edited.
  std::string doc_a = ndss::GenerateSyntheticEnglish(60, 100);
  std::string doc_b = ndss::GenerateSyntheticEnglish(60, 200);
  const std::string shared1 = ndss::GenerateSyntheticEnglish(15, 300);
  std::string shared2 = ndss::GenerateSyntheticEnglish(15, 400);
  doc_a += shared1;
  doc_a += ndss::GenerateSyntheticEnglish(30, 101);
  doc_a += shared2;
  doc_b += shared1;
  doc_b += ndss::GenerateSyntheticEnglish(30, 201);
  for (size_t p = 10; p + 5 < shared2.size(); p += 80) {
    shared2.replace(p, 5, "edits");  // light edits
  }
  doc_b += shared2;

  // Shared tokenizer trained on both documents.
  ndss::BpeTrainerOptions trainer_options;
  trainer_options.vocab_size = 1500;
  ndss::BpeTrainer trainer(trainer_options);
  trainer.AddText(doc_a);
  trainer.AddText(doc_b);
  auto model = trainer.Train();
  if (!model.ok()) {
    std::fprintf(stderr, "BPE training failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  ndss::BpeTokenizer tokenizer(*model);
  const std::vector<ndss::Token> tokens_a = tokenizer.Encode(doc_a);
  const std::vector<ndss::Token> tokens_b = tokenizer.Encode(doc_b);
  std::printf("document A: %zu tokens, document B: %zu tokens\n",
              tokens_a.size(), tokens_b.size());

  ndss::AlignmentOptions options;
  options.window = 48;
  options.stride = 24;
  options.theta = 0.7;
  options.t = 25;
  auto pairs = ndss::AlignTexts(tokens_a, tokens_b, options);
  if (!pairs.ok()) {
    std::fprintf(stderr, "alignment failed: %s\n",
                 pairs.status().ToString().c_str());
    return 1;
  }

  std::printf("\n%zu aligned region pairs (theta = %.2f):\n", pairs->size(),
              options.theta);
  for (const ndss::AlignedSpanPair& pair : *pairs) {
    std::printf("  A[%u..%u]  ~  B[%u..%u]   est. Jaccard %.2f\n",
                pair.a_begin, pair.a_end, pair.b_begin, pair.b_end,
                pair.estimated_similarity);
    // Show the first few words of the aligned A region.
    std::string snippet = tokenizer.Decode(std::span<const ndss::Token>(
        tokens_a.data() + pair.a_begin,
        std::min<size_t>(12, pair.a_end - pair.a_begin + 1)));
    std::printf("    \"%s...\"\n", snippet.c_str());
  }
  return pairs->size() >= 2 ? 0 : 1;  // both shared passages must align
}
