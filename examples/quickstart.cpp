// Quickstart: build an index over a tiny corpus, run one near-duplicate
// search, and print the matches.
//
//   ./quickstart [index_dir]

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "corpusgen/synthetic.h"
#include "ndss/ndss.h"

int main(int argc, char** argv) {
  const std::string dir =
      argc > 1 ? argv[1] : std::string("/tmp/ndss_quickstart");
  std::filesystem::remove_all(dir);

  // 1. Make a small synthetic corpus: 1000 texts, 20% of which contain a
  //    near-duplicate span copied from an earlier text.
  ndss::SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 1000;
  corpus_options.vocab_size = 10000;
  corpus_options.plant_rate = 0.2;
  corpus_options.plant_noise = 0.05;
  ndss::SyntheticCorpus sc = ndss::GenerateSyntheticCorpus(corpus_options);
  std::printf("corpus: %zu texts, %llu tokens, %zu planted near-dups\n",
              sc.corpus.num_texts(),
              static_cast<unsigned long long>(sc.corpus.total_tokens()),
              sc.plants.size());

  // 2. Build the index: k = 16 min-hash functions, sequences >= t = 25.
  ndss::IndexBuildOptions build;
  build.k = 16;
  build.t = 25;
  auto build_stats = ndss::NearDuplicateIndex::Build(sc.corpus, dir, build);
  if (!build_stats.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 build_stats.status().ToString().c_str());
    return 1;
  }
  std::printf("index: %llu compact windows, %.2f MB on disk, %.3f s\n",
              static_cast<unsigned long long>(build_stats->num_windows),
              build_stats->index_bytes / 1e6, build_stats->total_seconds);

  // 3. Query: a perturbed copy of a planted span — a true near-duplicate.
  auto index = ndss::NearDuplicateIndex::Open(dir);
  if (!index.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  const ndss::PlantedSpan& plant = sc.plants.front();
  ndss::Rng rng(7);
  const std::vector<ndss::Token> query = ndss::PerturbSequence(
      sc.corpus.text(plant.source_text), plant.source_begin, plant.length,
      /*noise=*/0.05, corpus_options.vocab_size, rng);

  ndss::SearchOptions search;
  search.theta = 0.8;
  auto result = index->Search(query, search);
  if (!result.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("\nquery: %zu tokens (perturbed copy of text %u [%u..%u])\n",
              query.size(), plant.source_text, plant.source_begin,
              plant.source_begin + plant.length - 1);
  std::printf("found %zu near-duplicate spans (theta = %.2f):\n",
              result->spans.size(), search.theta);
  for (const ndss::MatchSpan& span : result->spans) {
    std::printf("  text %-5u tokens [%u..%u]  est. Jaccard %.2f\n",
                span.text, span.begin, span.end, span.estimated_similarity);
  }
  std::printf("stats: %.2f KB read, %u short lists, %u long lists\n",
              result->stats.io_bytes / 1e3, result->stats.short_lists,
              result->stats.long_lists);

  // The planted source and target must both be among the results.
  bool found_source = false, found_target = false;
  for (const ndss::MatchSpan& span : result->spans) {
    if (span.text == plant.source_text) found_source = true;
    if (span.text == plant.target_text) found_target = true;
  }
  std::printf("\nplanted source found: %s, planted copy found: %s\n",
              found_source ? "yes" : "no", found_target ? "yes" : "no");
  return (found_source && found_target) ? 0 : 1;
}
