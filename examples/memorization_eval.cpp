// End-to-end LLM memorization evaluation (Section 5 of the paper):
//
//   1. Build a training corpus and index it.
//   2. Train a language model on the corpus (backoff n-gram; stand-in for
//      GPT-2/GPT-Neo) and wrap it in a memorizing generator for each of the
//      four simulated model capacities.
//   3. Generate texts unprompted with top-50 sampling, slide fixed-width
//      windows over them, and search each window in the training corpus.
//   4. Report, per model and threshold, the fraction of generated windows
//      that have near-duplicates in the training data.
//
//   ./memorization_eval [index_dir]

#include <cstdio>
#include <filesystem>
#include <string>

#include "corpusgen/synthetic.h"
#include "eval/memorization_eval.h"
#include "index/index_builder.h"
#include "lm/memorizing_generator.h"
#include "ndss/ndss.h"

int main(int argc, char** argv) {
  const std::string dir =
      argc > 1 ? argv[1] : std::string("/tmp/ndss_memorization_eval");
  std::filesystem::remove_all(dir);

  // Training corpus.
  ndss::SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 2000;
  corpus_options.min_text_length = 200;
  corpus_options.max_text_length = 600;
  corpus_options.vocab_size = 8000;
  corpus_options.plant_rate = 0.0;
  ndss::SyntheticCorpus sc = ndss::GenerateSyntheticCorpus(corpus_options);
  std::printf("training corpus: %zu texts, %llu tokens\n",
              sc.corpus.num_texts(),
              static_cast<unsigned long long>(sc.corpus.total_tokens()));

  // Index it (paper settings: x = 32, t = 25, k = 32).
  ndss::IndexBuildOptions build;
  build.k = 32;
  build.t = 25;
  auto build_stats = ndss::NearDuplicateIndex::Build(sc.corpus, dir, build);
  if (!build_stats.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 build_stats.status().ToString().c_str());
    return 1;
  }

  auto searcher = ndss::Searcher::Open(dir);
  if (!searcher.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 searcher.status().ToString().c_str());
    return 1;
  }

  // Language model trained on the corpus.
  ndss::NGramModel model(3);
  model.Train(sc.corpus);
  ndss::SamplingOptions sampling;  // top-50, as in the paper

  std::printf("\n%-18s %8s | theta=1.0  theta=0.9  theta=0.8\n", "model",
              "copies");
  for (const ndss::SimulatedModel& sim : ndss::DefaultSimulatedModels()) {
    ndss::MemorizingGenerator generator(model, sc.corpus, sim.profile, 1234);
    ndss::GeneratedTexts generated = generator.Generate(
        /*num_texts=*/20, /*text_length=*/512, sampling);

    std::printf("%-18s %8zu |", sim.name.c_str(), generated.copies.size());
    for (double theta : {1.0, 0.9, 0.8}) {
      ndss::MemorizationEvalOptions eval;
      eval.window_width = 32;
      eval.search.theta = theta;
      auto report =
          ndss::EvaluateMemorization(*searcher, generated.texts, eval);
      if (!report.ok()) {
        std::fprintf(stderr, "eval failed: %s\n",
                     report.status().ToString().c_str());
        return 1;
      }
      std::printf("   %5.1f%%  ", 100.0 * report->ratio);
    }
    std::printf("\n");
  }
  std::printf(
      "\nHigher-capacity simulated models memorize more, and lower theta\n"
      "surfaces more fuzzy memorization — the Figure 4 trends.\n");
  return 0;
}
