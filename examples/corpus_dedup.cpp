// Training-data near-deduplication, the use case motivating the paper's
// introduction (Lee et al. 2022 showed deduplicating training corpora
// reduces memorization): index a corpus, then query each text's windows
// against the index to surface cross-text near-duplicate spans.
//
//   ./corpus_dedup [index_dir]

#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <utility>

#include "corpusgen/synthetic.h"
#include "ndss/ndss.h"

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : std::string("/tmp/ndss_dedup");
  std::filesystem::remove_all(dir);

  // Corpus with a known fraction of planted near-duplicates.
  ndss::SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 800;
  corpus_options.vocab_size = 8000;
  corpus_options.plant_rate = 0.15;
  corpus_options.min_plant_length = 60;
  corpus_options.max_plant_length = 150;
  corpus_options.plant_noise = 0.03;
  ndss::SyntheticCorpus sc = ndss::GenerateSyntheticCorpus(corpus_options);

  ndss::IndexBuildOptions build;
  build.k = 16;
  build.t = 50;  // only long shared spans are interesting for dedup
  auto stats = ndss::NearDuplicateIndex::Build(sc.corpus, dir, build);
  if (!stats.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  std::printf("indexed %zu texts, %llu windows\n", sc.corpus.num_texts(),
              static_cast<unsigned long long>(stats->num_windows));

  // Query each text's prefix windows; collect cross-text duplicate pairs.
  auto index = ndss::NearDuplicateIndex::Open(dir);
  if (!index.ok()) return 1;
  ndss::SearchOptions search;
  search.theta = 0.85;

  std::set<std::pair<ndss::TextId, ndss::TextId>> duplicate_pairs;
  const uint32_t x = 64;
  for (ndss::TextId id = 0; id < sc.corpus.num_texts(); ++id) {
    const auto text = sc.corpus.text(id);
    for (size_t begin = 0; begin + x <= text.size(); begin += x) {
      auto result = index->Search(
          std::span<const ndss::Token>(text.data() + begin, x), search);
      if (!result.ok()) return 1;
      for (const ndss::MatchSpan& span : result->spans) {
        if (span.text == id) continue;  // self-match
        duplicate_pairs.insert(
            {std::min(id, span.text), std::max(id, span.text)});
      }
    }
  }

  // Compare with the planted ground truth.
  std::set<std::pair<ndss::TextId, ndss::TextId>> planted;
  for (const ndss::PlantedSpan& plant : sc.plants) {
    if (plant.length >= x) {
      planted.insert({std::min(plant.source_text, plant.target_text),
                      std::max(plant.source_text, plant.target_text)});
    }
  }
  size_t recovered = 0;
  for (const auto& pair : planted) {
    if (duplicate_pairs.count(pair) != 0) ++recovered;
  }
  std::printf("near-duplicate text pairs found: %zu\n",
              duplicate_pairs.size());
  std::printf("planted pairs with spans >= %u tokens: %zu, recovered: %zu "
              "(%.0f%%)\n",
              x, planted.size(), recovered,
              planted.empty() ? 100.0 : 100.0 * recovered / planted.size());
  for (auto it = duplicate_pairs.begin();
       it != duplicate_pairs.end() && std::distance(duplicate_pairs.begin(),
                                                    it) < 10;
       ++it) {
    std::printf("  texts %u and %u share a near-duplicate span\n", it->first,
                it->second);
  }
  return recovered * 10 >= planted.size() * 8 ? 0 : 1;  // >= 80% recall
}
