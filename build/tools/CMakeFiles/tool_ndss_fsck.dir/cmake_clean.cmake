file(REMOVE_RECURSE
  "CMakeFiles/tool_ndss_fsck.dir/ndss_fsck.cc.o"
  "CMakeFiles/tool_ndss_fsck.dir/ndss_fsck.cc.o.d"
  "ndss_fsck"
  "ndss_fsck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_ndss_fsck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
