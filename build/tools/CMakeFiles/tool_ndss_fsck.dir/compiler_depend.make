# Empty compiler generated dependencies file for tool_ndss_fsck.
# This may be replaced when dependencies are built.
