file(REMOVE_RECURSE
  "CMakeFiles/tool_ndss_build.dir/ndss_build.cc.o"
  "CMakeFiles/tool_ndss_build.dir/ndss_build.cc.o.d"
  "ndss_build"
  "ndss_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_ndss_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
