# Empty dependencies file for tool_ndss_build.
# This may be replaced when dependencies are built.
