file(REMOVE_RECURSE
  "CMakeFiles/tool_ndss_merge.dir/ndss_merge.cc.o"
  "CMakeFiles/tool_ndss_merge.dir/ndss_merge.cc.o.d"
  "ndss_merge"
  "ndss_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_ndss_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
