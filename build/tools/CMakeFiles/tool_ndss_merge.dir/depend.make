# Empty dependencies file for tool_ndss_merge.
# This may be replaced when dependencies are built.
