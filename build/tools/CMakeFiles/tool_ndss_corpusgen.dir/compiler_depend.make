# Empty compiler generated dependencies file for tool_ndss_corpusgen.
# This may be replaced when dependencies are built.
