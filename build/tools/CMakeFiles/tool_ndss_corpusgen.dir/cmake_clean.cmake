file(REMOVE_RECURSE
  "CMakeFiles/tool_ndss_corpusgen.dir/ndss_corpusgen.cc.o"
  "CMakeFiles/tool_ndss_corpusgen.dir/ndss_corpusgen.cc.o.d"
  "ndss_corpusgen"
  "ndss_corpusgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_ndss_corpusgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
