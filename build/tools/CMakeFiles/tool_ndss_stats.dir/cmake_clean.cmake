file(REMOVE_RECURSE
  "CMakeFiles/tool_ndss_stats.dir/ndss_stats.cc.o"
  "CMakeFiles/tool_ndss_stats.dir/ndss_stats.cc.o.d"
  "ndss_stats"
  "ndss_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_ndss_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
