# Empty compiler generated dependencies file for tool_ndss_stats.
# This may be replaced when dependencies are built.
