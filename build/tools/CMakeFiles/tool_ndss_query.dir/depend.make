# Empty dependencies file for tool_ndss_query.
# This may be replaced when dependencies are built.
