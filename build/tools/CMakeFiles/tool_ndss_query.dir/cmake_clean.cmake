file(REMOVE_RECURSE
  "CMakeFiles/tool_ndss_query.dir/ndss_query.cc.o"
  "CMakeFiles/tool_ndss_query.dir/ndss_query.cc.o.d"
  "ndss_query"
  "ndss_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_ndss_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
