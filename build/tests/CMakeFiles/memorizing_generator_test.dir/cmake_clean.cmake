file(REMOVE_RECURSE
  "CMakeFiles/memorizing_generator_test.dir/memorizing_generator_test.cc.o"
  "CMakeFiles/memorizing_generator_test.dir/memorizing_generator_test.cc.o.d"
  "memorizing_generator_test"
  "memorizing_generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memorizing_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
