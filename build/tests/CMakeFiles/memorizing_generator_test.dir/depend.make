# Empty dependencies file for memorizing_generator_test.
# This may be replaced when dependencies are built.
