file(REMOVE_RECURSE
  "CMakeFiles/hash_family_test.dir/hash_family_test.cc.o"
  "CMakeFiles/hash_family_test.dir/hash_family_test.cc.o.d"
  "hash_family_test"
  "hash_family_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_family_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
