file(REMOVE_RECURSE
  "CMakeFiles/index_merger_test.dir/index_merger_test.cc.o"
  "CMakeFiles/index_merger_test.dir/index_merger_test.cc.o.d"
  "index_merger_test"
  "index_merger_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_merger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
