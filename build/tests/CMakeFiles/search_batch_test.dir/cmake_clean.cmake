file(REMOVE_RECURSE
  "CMakeFiles/search_batch_test.dir/search_batch_test.cc.o"
  "CMakeFiles/search_batch_test.dir/search_batch_test.cc.o.d"
  "search_batch_test"
  "search_batch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_batch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
