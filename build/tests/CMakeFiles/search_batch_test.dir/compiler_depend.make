# Empty compiler generated dependencies file for search_batch_test.
# This may be replaced when dependencies are built.
