# Empty dependencies file for collision_count_test.
# This may be replaced when dependencies are built.
