file(REMOVE_RECURSE
  "CMakeFiles/collision_count_test.dir/collision_count_test.cc.o"
  "CMakeFiles/collision_count_test.dir/collision_count_test.cc.o.d"
  "collision_count_test"
  "collision_count_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collision_count_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
