# Empty compiler generated dependencies file for corpus_file_test.
# This may be replaced when dependencies are built.
