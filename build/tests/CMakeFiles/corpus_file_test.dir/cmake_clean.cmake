file(REMOVE_RECURSE
  "CMakeFiles/corpus_file_test.dir/corpus_file_test.cc.o"
  "CMakeFiles/corpus_file_test.dir/corpus_file_test.cc.o.d"
  "corpus_file_test"
  "corpus_file_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
