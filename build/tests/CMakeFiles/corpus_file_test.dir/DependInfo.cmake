
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/corpus_file_test.cc" "tests/CMakeFiles/corpus_file_test.dir/corpus_file_test.cc.o" "gcc" "tests/CMakeFiles/corpus_file_test.dir/corpus_file_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ndss/CMakeFiles/ndss_api.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/ndss_align.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ndss_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/corpusgen/CMakeFiles/ndss_corpusgen.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/ndss_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/lm/CMakeFiles/ndss_lm.dir/DependInfo.cmake"
  "/root/repo/build/src/tokenizer/CMakeFiles/ndss_tokenizer.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/ndss_query.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/ndss_index.dir/DependInfo.cmake"
  "/root/repo/build/src/window/CMakeFiles/ndss_window.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/ndss_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/rmq/CMakeFiles/ndss_rmq.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ndss_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ndss_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
