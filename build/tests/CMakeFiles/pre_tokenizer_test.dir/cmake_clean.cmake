file(REMOVE_RECURSE
  "CMakeFiles/pre_tokenizer_test.dir/pre_tokenizer_test.cc.o"
  "CMakeFiles/pre_tokenizer_test.dir/pre_tokenizer_test.cc.o.d"
  "pre_tokenizer_test"
  "pre_tokenizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pre_tokenizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
