# Empty dependencies file for pre_tokenizer_test.
# This may be replaced when dependencies are built.
