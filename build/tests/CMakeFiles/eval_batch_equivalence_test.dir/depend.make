# Empty dependencies file for eval_batch_equivalence_test.
# This may be replaced when dependencies are built.
