file(REMOVE_RECURSE
  "CMakeFiles/eval_batch_equivalence_test.dir/eval_batch_equivalence_test.cc.o"
  "CMakeFiles/eval_batch_equivalence_test.dir/eval_batch_equivalence_test.cc.o.d"
  "eval_batch_equivalence_test"
  "eval_batch_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_batch_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
