# Empty dependencies file for search_correctness_test.
# This may be replaced when dependencies are built.
