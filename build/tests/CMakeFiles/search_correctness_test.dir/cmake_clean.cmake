file(REMOVE_RECURSE
  "CMakeFiles/search_correctness_test.dir/search_correctness_test.cc.o"
  "CMakeFiles/search_correctness_test.dir/search_correctness_test.cc.o.d"
  "search_correctness_test"
  "search_correctness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_correctness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
