# Empty dependencies file for text_aligner_test.
# This may be replaced when dependencies are built.
