file(REMOVE_RECURSE
  "CMakeFiles/text_aligner_test.dir/text_aligner_test.cc.o"
  "CMakeFiles/text_aligner_test.dir/text_aligner_test.cc.o.d"
  "text_aligner_test"
  "text_aligner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_aligner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
