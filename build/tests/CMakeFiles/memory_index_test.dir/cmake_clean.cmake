file(REMOVE_RECURSE
  "CMakeFiles/memory_index_test.dir/memory_index_test.cc.o"
  "CMakeFiles/memory_index_test.dir/memory_index_test.cc.o.d"
  "memory_index_test"
  "memory_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
