# Empty dependencies file for memory_index_test.
# This may be replaced when dependencies are built.
