file(REMOVE_RECURSE
  "CMakeFiles/interval_scan_test.dir/interval_scan_test.cc.o"
  "CMakeFiles/interval_scan_test.dir/interval_scan_test.cc.o.d"
  "interval_scan_test"
  "interval_scan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interval_scan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
