# Empty compiler generated dependencies file for interval_scan_test.
# This may be replaced when dependencies are built.
