# Empty compiler generated dependencies file for index_compression_test.
# This may be replaced when dependencies are built.
