file(REMOVE_RECURSE
  "CMakeFiles/index_compression_test.dir/index_compression_test.cc.o"
  "CMakeFiles/index_compression_test.dir/index_compression_test.cc.o.d"
  "index_compression_test"
  "index_compression_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_compression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
