file(REMOVE_RECURSE
  "CMakeFiles/window_generator_test.dir/window_generator_test.cc.o"
  "CMakeFiles/window_generator_test.dir/window_generator_test.cc.o.d"
  "window_generator_test"
  "window_generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
