# Empty dependencies file for window_generator_test.
# This may be replaced when dependencies are built.
