# Empty compiler generated dependencies file for memorization_eval_test.
# This may be replaced when dependencies are built.
