# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for memorization_eval_test.
