file(REMOVE_RECURSE
  "CMakeFiles/memorization_eval_test.dir/memorization_eval_test.cc.o"
  "CMakeFiles/memorization_eval_test.dir/memorization_eval_test.cc.o.d"
  "memorization_eval_test"
  "memorization_eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memorization_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
