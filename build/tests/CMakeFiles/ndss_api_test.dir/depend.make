# Empty dependencies file for ndss_api_test.
# This may be replaced when dependencies are built.
