file(REMOVE_RECURSE
  "CMakeFiles/ndss_api_test.dir/ndss_api_test.cc.o"
  "CMakeFiles/ndss_api_test.dir/ndss_api_test.cc.o.d"
  "ndss_api_test"
  "ndss_api_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndss_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
