file(REMOVE_RECURSE
  "CMakeFiles/ndss_tokenizer.dir/bpe_model.cc.o"
  "CMakeFiles/ndss_tokenizer.dir/bpe_model.cc.o.d"
  "CMakeFiles/ndss_tokenizer.dir/bpe_tokenizer.cc.o"
  "CMakeFiles/ndss_tokenizer.dir/bpe_tokenizer.cc.o.d"
  "CMakeFiles/ndss_tokenizer.dir/bpe_trainer.cc.o"
  "CMakeFiles/ndss_tokenizer.dir/bpe_trainer.cc.o.d"
  "CMakeFiles/ndss_tokenizer.dir/pre_tokenizer.cc.o"
  "CMakeFiles/ndss_tokenizer.dir/pre_tokenizer.cc.o.d"
  "libndss_tokenizer.a"
  "libndss_tokenizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndss_tokenizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
