
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tokenizer/bpe_model.cc" "src/tokenizer/CMakeFiles/ndss_tokenizer.dir/bpe_model.cc.o" "gcc" "src/tokenizer/CMakeFiles/ndss_tokenizer.dir/bpe_model.cc.o.d"
  "/root/repo/src/tokenizer/bpe_tokenizer.cc" "src/tokenizer/CMakeFiles/ndss_tokenizer.dir/bpe_tokenizer.cc.o" "gcc" "src/tokenizer/CMakeFiles/ndss_tokenizer.dir/bpe_tokenizer.cc.o.d"
  "/root/repo/src/tokenizer/bpe_trainer.cc" "src/tokenizer/CMakeFiles/ndss_tokenizer.dir/bpe_trainer.cc.o" "gcc" "src/tokenizer/CMakeFiles/ndss_tokenizer.dir/bpe_trainer.cc.o.d"
  "/root/repo/src/tokenizer/pre_tokenizer.cc" "src/tokenizer/CMakeFiles/ndss_tokenizer.dir/pre_tokenizer.cc.o" "gcc" "src/tokenizer/CMakeFiles/ndss_tokenizer.dir/pre_tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ndss_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ndss_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
