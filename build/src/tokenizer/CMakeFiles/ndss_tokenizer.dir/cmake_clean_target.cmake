file(REMOVE_RECURSE
  "libndss_tokenizer.a"
)
