# Empty compiler generated dependencies file for ndss_tokenizer.
# This may be replaced when dependencies are built.
