file(REMOVE_RECURSE
  "libndss_baseline.a"
)
