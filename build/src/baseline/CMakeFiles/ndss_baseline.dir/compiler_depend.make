# Empty compiler generated dependencies file for ndss_baseline.
# This may be replaced when dependencies are built.
