file(REMOVE_RECURSE
  "CMakeFiles/ndss_baseline.dir/brute_force.cc.o"
  "CMakeFiles/ndss_baseline.dir/brute_force.cc.o.d"
  "CMakeFiles/ndss_baseline.dir/suffix_array.cc.o"
  "CMakeFiles/ndss_baseline.dir/suffix_array.cc.o.d"
  "libndss_baseline.a"
  "libndss_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndss_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
