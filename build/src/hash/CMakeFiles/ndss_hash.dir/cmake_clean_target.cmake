file(REMOVE_RECURSE
  "libndss_hash.a"
)
