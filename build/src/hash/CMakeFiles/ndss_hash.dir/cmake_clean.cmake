file(REMOVE_RECURSE
  "CMakeFiles/ndss_hash.dir/hash_family.cc.o"
  "CMakeFiles/ndss_hash.dir/hash_family.cc.o.d"
  "libndss_hash.a"
  "libndss_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndss_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
