# Empty compiler generated dependencies file for ndss_hash.
# This may be replaced when dependencies are built.
