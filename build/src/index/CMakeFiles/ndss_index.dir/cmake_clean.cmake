file(REMOVE_RECURSE
  "CMakeFiles/ndss_index.dir/index_builder.cc.o"
  "CMakeFiles/ndss_index.dir/index_builder.cc.o.d"
  "CMakeFiles/ndss_index.dir/index_merger.cc.o"
  "CMakeFiles/ndss_index.dir/index_merger.cc.o.d"
  "CMakeFiles/ndss_index.dir/index_meta.cc.o"
  "CMakeFiles/ndss_index.dir/index_meta.cc.o.d"
  "CMakeFiles/ndss_index.dir/inverted_index_reader.cc.o"
  "CMakeFiles/ndss_index.dir/inverted_index_reader.cc.o.d"
  "CMakeFiles/ndss_index.dir/inverted_index_writer.cc.o"
  "CMakeFiles/ndss_index.dir/inverted_index_writer.cc.o.d"
  "CMakeFiles/ndss_index.dir/memory_index.cc.o"
  "CMakeFiles/ndss_index.dir/memory_index.cc.o.d"
  "libndss_index.a"
  "libndss_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndss_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
