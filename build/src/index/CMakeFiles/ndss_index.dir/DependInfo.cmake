
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/index_builder.cc" "src/index/CMakeFiles/ndss_index.dir/index_builder.cc.o" "gcc" "src/index/CMakeFiles/ndss_index.dir/index_builder.cc.o.d"
  "/root/repo/src/index/index_merger.cc" "src/index/CMakeFiles/ndss_index.dir/index_merger.cc.o" "gcc" "src/index/CMakeFiles/ndss_index.dir/index_merger.cc.o.d"
  "/root/repo/src/index/index_meta.cc" "src/index/CMakeFiles/ndss_index.dir/index_meta.cc.o" "gcc" "src/index/CMakeFiles/ndss_index.dir/index_meta.cc.o.d"
  "/root/repo/src/index/inverted_index_reader.cc" "src/index/CMakeFiles/ndss_index.dir/inverted_index_reader.cc.o" "gcc" "src/index/CMakeFiles/ndss_index.dir/inverted_index_reader.cc.o.d"
  "/root/repo/src/index/inverted_index_writer.cc" "src/index/CMakeFiles/ndss_index.dir/inverted_index_writer.cc.o" "gcc" "src/index/CMakeFiles/ndss_index.dir/inverted_index_writer.cc.o.d"
  "/root/repo/src/index/memory_index.cc" "src/index/CMakeFiles/ndss_index.dir/memory_index.cc.o" "gcc" "src/index/CMakeFiles/ndss_index.dir/memory_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ndss_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/ndss_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/rmq/CMakeFiles/ndss_rmq.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ndss_text.dir/DependInfo.cmake"
  "/root/repo/build/src/window/CMakeFiles/ndss_window.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
