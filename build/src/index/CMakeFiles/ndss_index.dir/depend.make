# Empty dependencies file for ndss_index.
# This may be replaced when dependencies are built.
