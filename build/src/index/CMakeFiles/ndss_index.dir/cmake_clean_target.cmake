file(REMOVE_RECURSE
  "libndss_index.a"
)
