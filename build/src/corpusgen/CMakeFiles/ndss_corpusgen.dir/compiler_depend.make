# Empty compiler generated dependencies file for ndss_corpusgen.
# This may be replaced when dependencies are built.
