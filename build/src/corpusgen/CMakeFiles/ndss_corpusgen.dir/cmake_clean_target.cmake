file(REMOVE_RECURSE
  "libndss_corpusgen.a"
)
