file(REMOVE_RECURSE
  "CMakeFiles/ndss_corpusgen.dir/synthetic.cc.o"
  "CMakeFiles/ndss_corpusgen.dir/synthetic.cc.o.d"
  "CMakeFiles/ndss_corpusgen.dir/zipf.cc.o"
  "CMakeFiles/ndss_corpusgen.dir/zipf.cc.o.d"
  "libndss_corpusgen.a"
  "libndss_corpusgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndss_corpusgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
