file(REMOVE_RECURSE
  "CMakeFiles/ndss_api.dir/ndss.cc.o"
  "CMakeFiles/ndss_api.dir/ndss.cc.o.d"
  "libndss_api.a"
  "libndss_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndss_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
