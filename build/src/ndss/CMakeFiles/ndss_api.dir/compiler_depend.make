# Empty compiler generated dependencies file for ndss_api.
# This may be replaced when dependencies are built.
