file(REMOVE_RECURSE
  "libndss_api.a"
)
