file(REMOVE_RECURSE
  "CMakeFiles/ndss_common.dir/file_io.cc.o"
  "CMakeFiles/ndss_common.dir/file_io.cc.o.d"
  "CMakeFiles/ndss_common.dir/logging.cc.o"
  "CMakeFiles/ndss_common.dir/logging.cc.o.d"
  "CMakeFiles/ndss_common.dir/status.cc.o"
  "CMakeFiles/ndss_common.dir/status.cc.o.d"
  "CMakeFiles/ndss_common.dir/thread_pool.cc.o"
  "CMakeFiles/ndss_common.dir/thread_pool.cc.o.d"
  "libndss_common.a"
  "libndss_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndss_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
