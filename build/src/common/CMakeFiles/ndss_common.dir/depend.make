# Empty dependencies file for ndss_common.
# This may be replaced when dependencies are built.
