file(REMOVE_RECURSE
  "libndss_common.a"
)
