# Empty compiler generated dependencies file for ndss_lm.
# This may be replaced when dependencies are built.
