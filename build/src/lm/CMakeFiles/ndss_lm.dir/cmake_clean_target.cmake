file(REMOVE_RECURSE
  "libndss_lm.a"
)
