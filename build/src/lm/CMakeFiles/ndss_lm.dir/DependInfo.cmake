
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lm/memorizing_generator.cc" "src/lm/CMakeFiles/ndss_lm.dir/memorizing_generator.cc.o" "gcc" "src/lm/CMakeFiles/ndss_lm.dir/memorizing_generator.cc.o.d"
  "/root/repo/src/lm/ngram_model.cc" "src/lm/CMakeFiles/ndss_lm.dir/ngram_model.cc.o" "gcc" "src/lm/CMakeFiles/ndss_lm.dir/ngram_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ndss_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ndss_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
