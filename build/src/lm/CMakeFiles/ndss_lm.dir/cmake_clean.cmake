file(REMOVE_RECURSE
  "CMakeFiles/ndss_lm.dir/memorizing_generator.cc.o"
  "CMakeFiles/ndss_lm.dir/memorizing_generator.cc.o.d"
  "CMakeFiles/ndss_lm.dir/ngram_model.cc.o"
  "CMakeFiles/ndss_lm.dir/ngram_model.cc.o.d"
  "libndss_lm.a"
  "libndss_lm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndss_lm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
