file(REMOVE_RECURSE
  "CMakeFiles/ndss_text.dir/corpus_file.cc.o"
  "CMakeFiles/ndss_text.dir/corpus_file.cc.o.d"
  "libndss_text.a"
  "libndss_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndss_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
