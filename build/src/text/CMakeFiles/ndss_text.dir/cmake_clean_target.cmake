file(REMOVE_RECURSE
  "libndss_text.a"
)
