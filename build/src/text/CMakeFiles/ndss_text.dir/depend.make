# Empty dependencies file for ndss_text.
# This may be replaced when dependencies are built.
