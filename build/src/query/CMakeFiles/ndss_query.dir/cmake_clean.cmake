file(REMOVE_RECURSE
  "CMakeFiles/ndss_query.dir/collision_count.cc.o"
  "CMakeFiles/ndss_query.dir/collision_count.cc.o.d"
  "CMakeFiles/ndss_query.dir/cost_model.cc.o"
  "CMakeFiles/ndss_query.dir/cost_model.cc.o.d"
  "CMakeFiles/ndss_query.dir/interval_scan.cc.o"
  "CMakeFiles/ndss_query.dir/interval_scan.cc.o.d"
  "CMakeFiles/ndss_query.dir/searcher.cc.o"
  "CMakeFiles/ndss_query.dir/searcher.cc.o.d"
  "CMakeFiles/ndss_query.dir/verify.cc.o"
  "CMakeFiles/ndss_query.dir/verify.cc.o.d"
  "libndss_query.a"
  "libndss_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndss_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
