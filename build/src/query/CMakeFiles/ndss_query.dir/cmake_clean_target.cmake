file(REMOVE_RECURSE
  "libndss_query.a"
)
