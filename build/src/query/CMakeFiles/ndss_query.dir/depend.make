# Empty dependencies file for ndss_query.
# This may be replaced when dependencies are built.
