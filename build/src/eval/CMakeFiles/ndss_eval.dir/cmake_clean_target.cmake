file(REMOVE_RECURSE
  "libndss_eval.a"
)
