file(REMOVE_RECURSE
  "CMakeFiles/ndss_eval.dir/memorization_eval.cc.o"
  "CMakeFiles/ndss_eval.dir/memorization_eval.cc.o.d"
  "libndss_eval.a"
  "libndss_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndss_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
