# Empty dependencies file for ndss_eval.
# This may be replaced when dependencies are built.
