file(REMOVE_RECURSE
  "libndss_rmq.a"
)
