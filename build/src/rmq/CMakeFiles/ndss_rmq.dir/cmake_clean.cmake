file(REMOVE_RECURSE
  "CMakeFiles/ndss_rmq.dir/rmq.cc.o"
  "CMakeFiles/ndss_rmq.dir/rmq.cc.o.d"
  "libndss_rmq.a"
  "libndss_rmq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndss_rmq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
