# Empty dependencies file for ndss_rmq.
# This may be replaced when dependencies are built.
