file(REMOVE_RECURSE
  "CMakeFiles/ndss_align.dir/text_aligner.cc.o"
  "CMakeFiles/ndss_align.dir/text_aligner.cc.o.d"
  "libndss_align.a"
  "libndss_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndss_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
