# Empty dependencies file for ndss_align.
# This may be replaced when dependencies are built.
