file(REMOVE_RECURSE
  "libndss_align.a"
)
