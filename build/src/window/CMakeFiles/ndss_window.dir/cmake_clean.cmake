file(REMOVE_RECURSE
  "CMakeFiles/ndss_window.dir/window_generator.cc.o"
  "CMakeFiles/ndss_window.dir/window_generator.cc.o.d"
  "libndss_window.a"
  "libndss_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndss_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
