file(REMOVE_RECURSE
  "libndss_window.a"
)
