# Empty dependencies file for ndss_window.
# This may be replaced when dependencies are built.
