file(REMOVE_RECURSE
  "CMakeFiles/corpus_dedup.dir/corpus_dedup.cpp.o"
  "CMakeFiles/corpus_dedup.dir/corpus_dedup.cpp.o.d"
  "corpus_dedup"
  "corpus_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
