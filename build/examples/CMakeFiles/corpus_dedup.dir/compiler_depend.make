# Empty compiler generated dependencies file for corpus_dedup.
# This may be replaced when dependencies are built.
