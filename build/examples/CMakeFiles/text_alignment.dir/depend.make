# Empty dependencies file for text_alignment.
# This may be replaced when dependencies are built.
