file(REMOVE_RECURSE
  "CMakeFiles/text_alignment.dir/text_alignment.cpp.o"
  "CMakeFiles/text_alignment.dir/text_alignment.cpp.o.d"
  "text_alignment"
  "text_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
