# Empty compiler generated dependencies file for memorization_eval.
# This may be replaced when dependencies are built.
