file(REMOVE_RECURSE
  "CMakeFiles/memorization_eval.dir/memorization_eval.cpp.o"
  "CMakeFiles/memorization_eval.dir/memorization_eval.cpp.o.d"
  "memorization_eval"
  "memorization_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memorization_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
