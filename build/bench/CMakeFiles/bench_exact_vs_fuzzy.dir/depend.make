# Empty dependencies file for bench_exact_vs_fuzzy.
# This may be replaced when dependencies are built.
