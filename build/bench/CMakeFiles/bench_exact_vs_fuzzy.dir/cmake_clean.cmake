file(REMOVE_RECURSE
  "CMakeFiles/bench_exact_vs_fuzzy.dir/bench_exact_vs_fuzzy.cc.o"
  "CMakeFiles/bench_exact_vs_fuzzy.dir/bench_exact_vs_fuzzy.cc.o.d"
  "bench_exact_vs_fuzzy"
  "bench_exact_vs_fuzzy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exact_vs_fuzzy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
