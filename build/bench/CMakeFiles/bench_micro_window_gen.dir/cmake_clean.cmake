file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_window_gen.dir/bench_micro_window_gen.cc.o"
  "CMakeFiles/bench_micro_window_gen.dir/bench_micro_window_gen.cc.o.d"
  "bench_micro_window_gen"
  "bench_micro_window_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_window_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
