# Empty dependencies file for bench_micro_window_gen.
# This may be replaced when dependencies are built.
