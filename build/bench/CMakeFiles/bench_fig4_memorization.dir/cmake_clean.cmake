file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_memorization.dir/bench_fig4_memorization.cc.o"
  "CMakeFiles/bench_fig4_memorization.dir/bench_fig4_memorization.cc.o.d"
  "bench_fig4_memorization"
  "bench_fig4_memorization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_memorization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
