# Empty compiler generated dependencies file for bench_micro_interval_scan.
# This may be replaced when dependencies are built.
