file(REMOVE_RECURSE
  "CMakeFiles/bench_batch_query.dir/bench_batch_query.cc.o"
  "CMakeFiles/bench_batch_query.dir/bench_batch_query.cc.o.d"
  "bench_batch_query"
  "bench_batch_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_batch_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
