# Empty dependencies file for bench_batch_query.
# This may be replaced when dependencies are built.
