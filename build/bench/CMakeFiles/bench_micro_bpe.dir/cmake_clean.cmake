file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_bpe.dir/bench_micro_bpe.cc.o"
  "CMakeFiles/bench_micro_bpe.dir/bench_micro_bpe.cc.o.d"
  "bench_micro_bpe"
  "bench_micro_bpe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_bpe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
