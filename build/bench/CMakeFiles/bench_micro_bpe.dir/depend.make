# Empty dependencies file for bench_micro_bpe.
# This may be replaced when dependencies are built.
