file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_windows.dir/bench_fig2_windows.cc.o"
  "CMakeFiles/bench_fig2_windows.dir/bench_fig2_windows.cc.o.d"
  "bench_fig2_windows"
  "bench_fig2_windows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_windows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
