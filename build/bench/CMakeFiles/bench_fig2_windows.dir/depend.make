# Empty dependencies file for bench_fig2_windows.
# This may be replaced when dependencies are built.
