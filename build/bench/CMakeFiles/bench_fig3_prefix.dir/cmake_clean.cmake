file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_prefix.dir/bench_fig3_prefix.cc.o"
  "CMakeFiles/bench_fig3_prefix.dir/bench_fig3_prefix.cc.o.d"
  "bench_fig3_prefix"
  "bench_fig3_prefix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_prefix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
