# Empty compiler generated dependencies file for bench_ablation_rmq.
# This may be replaced when dependencies are built.
