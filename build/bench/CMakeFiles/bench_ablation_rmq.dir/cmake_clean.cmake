file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rmq.dir/bench_ablation_rmq.cc.o"
  "CMakeFiles/bench_ablation_rmq.dir/bench_ablation_rmq.cc.o.d"
  "bench_ablation_rmq"
  "bench_ablation_rmq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rmq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
