// Tests for the delta+varint compressed posting-list format (format v2),
// including varint codecs, roundtrips, zone probes, builder integration,
// and searcher equivalence with the raw format.

#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

#include "common/coding.h"
#include "common/random.h"
#include "corpusgen/synthetic.h"
#include "index/index_builder.h"
#include "index/inverted_index_reader.h"
#include "index/inverted_index_writer.h"
#include "query/searcher.h"

namespace ndss {
namespace {

TEST(VarintTest, RoundTrip32) {
  std::string buffer;
  const uint32_t values[] = {0, 1, 127, 128, 300, 16383, 16384,
                             0xffffffffu};
  for (uint32_t value : values) PutVarint32(&buffer, value);
  const char* p = buffer.data();
  const char* limit = buffer.data() + buffer.size();
  for (uint32_t value : values) {
    uint32_t decoded = 0;
    p = GetVarint32(p, limit, &decoded);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(decoded, value);
  }
  EXPECT_EQ(p, limit);
}

TEST(VarintTest, RoundTrip64) {
  std::string buffer;
  const uint64_t values[] = {0, 1, 0x7f, 0x80, 1ull << 32, ~0ull};
  for (uint64_t value : values) PutVarint64(&buffer, value);
  const char* p = buffer.data();
  const char* limit = buffer.data() + buffer.size();
  for (uint64_t value : values) {
    uint64_t decoded = 0;
    p = GetVarint64(p, limit, &decoded);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(decoded, value);
  }
}

TEST(VarintTest, TruncatedInputReturnsNull) {
  std::string buffer;
  PutVarint32(&buffer, 1000000);
  uint32_t decoded;
  EXPECT_EQ(GetVarint32(buffer.data(), buffer.data() + 1, &decoded), nullptr);
  EXPECT_EQ(GetVarint32(buffer.data(), buffer.data(), &decoded), nullptr);
}

TEST(VarintTest, SmallValuesAreOneByte) {
  std::string buffer;
  PutVarint32(&buffer, 42);
  EXPECT_EQ(buffer.size(), 1u);
  PutVarint32(&buffer, 128);
  EXPECT_EQ(buffer.size(), 3u);
}

class CompressedIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ndss_compidx_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".ndx";
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string path_;
};

TEST_F(CompressedIndexTest, RoundTripSingleList) {
  auto writer = InvertedIndexWriter::Create(path_, 0, 8, 4,
                                            index_format::kFormatCompressed);
  ASSERT_TRUE(writer.ok());
  std::vector<PostedWindow> windows;
  Rng rng(3);
  uint32_t text = 0;
  for (int i = 0; i < 100; ++i) {
    text += static_cast<uint32_t>(rng.Uniform(3));
    const uint32_t l = static_cast<uint32_t>(rng.Uniform(1000));
    const uint32_t c = l + static_cast<uint32_t>(rng.Uniform(50));
    windows.push_back(PostedWindow{text, l, c,
                                   c + static_cast<uint32_t>(rng.Uniform(50))});
  }
  ASSERT_TRUE(writer->BeginList(7).ok());
  ASSERT_TRUE(writer->AddWindows(windows.data(), windows.size()).ok());
  ASSERT_TRUE(writer->Finish().ok());

  auto reader = InvertedIndexReader::Open(path_);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->format(), index_format::kFormatCompressed);
  const ListMeta* meta = reader->FindList(7);
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->count, windows.size());
  EXPECT_LT(meta->list_bytes, windows.size() * sizeof(PostedWindow))
      << "compression should beat the raw encoding on small deltas";
  std::vector<PostedWindow> loaded;
  ASSERT_TRUE(reader->ReadList(*meta, &loaded).ok());
  EXPECT_EQ(loaded, windows);
}

TEST_F(CompressedIndexTest, ZoneProbeMatchesFullScan) {
  auto writer = InvertedIndexWriter::Create(path_, 0, 8, 16,
                                            index_format::kFormatCompressed);
  ASSERT_TRUE(writer.ok());
  std::vector<PostedWindow> all;
  Rng rng(9);
  for (TextId text = 0; text < 300; ++text) {
    const size_t copies = 1 + rng.Uniform(3);
    for (size_t i = 0; i < copies; ++i) {
      const uint32_t l = static_cast<uint32_t>(rng.Uniform(100));
      all.push_back(PostedWindow{text, l, l + 2, l + 10});
    }
  }
  ASSERT_TRUE(writer->BeginList(5).ok());
  ASSERT_TRUE(writer->AddWindows(all.data(), all.size()).ok());
  ASSERT_TRUE(writer->Finish().ok());

  auto reader = InvertedIndexReader::Open(path_);
  ASSERT_TRUE(reader.ok());
  const ListMeta* meta = reader->FindList(5);
  ASSERT_NE(meta, nullptr);
  ASSERT_GT(meta->zone_count, 1u);
  for (TextId text : {0u, 1u, 149u, 150u, 299u, 999u}) {
    std::vector<PostedWindow> expected;
    for (const PostedWindow& w : all) {
      if (w.text == text) expected.push_back(w);
    }
    std::vector<PostedWindow> got;
    ASSERT_TRUE(reader->ReadWindowsForText(*meta, text, &got).ok());
    EXPECT_EQ(got, expected) << "text " << text;
  }
}

TEST_F(CompressedIndexTest, TruncatedListDetected) {
  auto writer = InvertedIndexWriter::Create(path_, 0, 64, 1000000,
                                            index_format::kFormatCompressed);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->BeginList(1).ok());
  for (TextId t = 0; t < 50; ++t) {
    PostedWindow w{t, 0, 1, 2};
    ASSERT_TRUE(writer->AddWindow(w).ok());
  }
  ASSERT_TRUE(writer->Finish().ok());
  auto reader = InvertedIndexReader::Open(path_);
  ASSERT_TRUE(reader.ok());
  // Forge a directory entry claiming more windows than encoded.
  ListMeta forged = *reader->FindList(1);
  forged.count += 10;
  std::vector<PostedWindow> out;
  EXPECT_TRUE(reader->ReadList(forged, &out).IsCorruption());
}

class CompressedBuildTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ndss_compbuild_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(CompressedBuildTest, CompressedIndexIsSmallerAndEquivalent) {
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 150;
  corpus_options.vocab_size = 500;
  corpus_options.plant_rate = 0.4;
  corpus_options.seed = 66;
  SyntheticCorpus sc = GenerateSyntheticCorpus(corpus_options);

  IndexBuildOptions raw_build;
  raw_build.k = 6;
  raw_build.t = 20;
  raw_build.zone_step = 16;
  raw_build.zone_threshold = 64;
  IndexBuildOptions comp_build = raw_build;
  comp_build.posting_format = index_format::kFormatCompressed;

  auto raw_stats = BuildIndexInMemory(sc.corpus, dir_ + "/raw", raw_build);
  auto comp_stats = BuildIndexInMemory(sc.corpus, dir_ + "/comp", comp_build);
  ASSERT_TRUE(raw_stats.ok() && comp_stats.ok());
  EXPECT_EQ(raw_stats->num_windows, comp_stats->num_windows);
  EXPECT_LT(comp_stats->index_bytes, raw_stats->index_bytes);

  auto raw_searcher = Searcher::Open(dir_ + "/raw");
  auto comp_searcher = Searcher::Open(dir_ + "/comp");
  ASSERT_TRUE(raw_searcher.ok() && comp_searcher.ok());

  Rng rng(4);
  for (int q = 0; q < 10; ++q) {
    const TextId source = static_cast<TextId>(rng.Uniform(150));
    const auto text = sc.corpus.text(source);
    const uint32_t length =
        std::min<uint32_t>(48, static_cast<uint32_t>(text.size()));
    const uint32_t begin =
        static_cast<uint32_t>(rng.Uniform(text.size() - length + 1));
    const std::vector<Token> query =
        PerturbSequence(text, begin, length, 0.1, 500, rng);
    for (double theta : {0.6, 0.9}) {
      SearchOptions options;
      options.theta = theta;
      options.long_list_threshold = 64;
      auto raw_result = raw_searcher->Search(query, options);
      auto comp_result = comp_searcher->Search(query, options);
      ASSERT_TRUE(raw_result.ok() && comp_result.ok());
      ASSERT_EQ(raw_result->rectangles.size(),
                comp_result->rectangles.size());
      for (size_t i = 0; i < raw_result->rectangles.size(); ++i) {
        EXPECT_EQ(raw_result->rectangles[i].text,
                  comp_result->rectangles[i].text);
        EXPECT_EQ(raw_result->rectangles[i].rect.collisions,
                  comp_result->rectangles[i].rect.collisions);
      }
    }
  }
}

TEST_F(CompressedBuildTest, ExternalBuildSupportsCompression) {
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 80;
  corpus_options.vocab_size = 400;
  corpus_options.seed = 67;
  SyntheticCorpus sc = GenerateSyntheticCorpus(corpus_options);
  ASSERT_TRUE(CreateDirectories(dir_).ok());
  const std::string corpus_path = dir_ + "/corpus.crp";
  ASSERT_TRUE(WriteCorpusFile(corpus_path, sc.corpus).ok());

  IndexBuildOptions options;
  options.k = 4;
  options.t = 20;
  options.posting_format = index_format::kFormatCompressed;
  options.batch_tokens = 2000;
  auto stats = BuildIndexExternal(corpus_path, dir_ + "/idx", options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  auto mem_stats = BuildIndexInMemory(sc.corpus, dir_ + "/mem", options);
  ASSERT_TRUE(mem_stats.ok());
  EXPECT_EQ(stats->num_windows, mem_stats->num_windows);

  // Both open and agree on a query.
  auto a = Searcher::Open(dir_ + "/idx");
  auto b = Searcher::Open(dir_ + "/mem");
  ASSERT_TRUE(a.ok() && b.ok());
  const auto text = sc.corpus.text(0);
  const std::vector<Token> query(text.begin(), text.begin() + 30);
  SearchOptions search;
  search.theta = 0.7;
  auto ra = a->Search(query, search);
  auto rb = b->Search(query, search);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra->rectangles.size(), rb->rectangles.size());
}

}  // namespace
}  // namespace ndss
