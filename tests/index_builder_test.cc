#include "index/index_builder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <vector>

#include "corpusgen/synthetic.h"
#include "hash/hash_family.h"
#include "index/inverted_index_reader.h"
#include "text/corpus_file.h"
#include "window/window_generator.h"

namespace ndss {
namespace {

class IndexBuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ndss_build_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static Corpus SmallCorpus(uint32_t num_texts = 100, uint64_t seed = 5) {
    SyntheticCorpusOptions options;
    options.num_texts = num_texts;
    options.min_text_length = 60;
    options.max_text_length = 200;
    options.vocab_size = 300;
    options.plant_rate = 0.3;
    options.min_plant_length = 30;
    options.max_plant_length = 60;
    options.seed = seed;
    return GenerateSyntheticCorpus(options).corpus;
  }

  static IndexBuildOptions SmallBuild() {
    IndexBuildOptions options;
    options.k = 4;
    options.t = 20;
    options.zone_step = 16;
    options.zone_threshold = 64;
    return options;
  }

  /// Reads every window of every list of the index at `dir` as KeyedWindows.
  static std::vector<KeyedWindow> DumpIndex(const std::string& dir,
                                            uint32_t k) {
    std::vector<KeyedWindow> all;
    for (uint32_t func = 0; func < k; ++func) {
      auto reader =
          InvertedIndexReader::Open(IndexMeta::InvertedIndexPath(dir, func));
      EXPECT_TRUE(reader.ok()) << reader.status().ToString();
      for (const ListMeta& meta : reader->directory()) {
        std::vector<PostedWindow> windows;
        EXPECT_TRUE(reader->ReadList(meta, &windows).ok());
        for (const PostedWindow& w : windows) {
          // Tag func into the l... keep func implicit: fold func into key's
          // upper bits is not possible (Token 32-bit); use separate vectors
          // per func by offsetting text id instead.
          all.push_back(KeyedWindow{meta.key, w.text + func * 1000000u, w.l,
                                    w.c, w.r});
        }
      }
    }
    std::sort(all.begin(), all.end(), KeyedWindowLess);
    return all;
  }

  std::string dir_;
};

TEST_F(IndexBuilderTest, BuildWritesMetaAndFiles) {
  Corpus corpus = SmallCorpus();
  auto stats = BuildIndexInMemory(corpus, dir_, SmallBuild());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->num_windows, 0u);
  EXPECT_GT(stats->index_bytes, 0u);

  auto meta = IndexMeta::Load(dir_);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->k, 4u);
  EXPECT_EQ(meta->t, 20u);
  EXPECT_EQ(meta->num_texts, corpus.num_texts());
  EXPECT_EQ(meta->total_tokens, corpus.total_tokens());
  for (uint32_t func = 0; func < 4; ++func) {
    EXPECT_TRUE(FileExists(IndexMeta::InvertedIndexPath(dir_, func)));
  }
}

TEST_F(IndexBuilderTest, IndexContainsExactlyTheGeneratedWindows) {
  Corpus corpus = SmallCorpus(40);
  IndexBuildOptions options = SmallBuild();
  auto stats = BuildIndexInMemory(corpus, dir_, options);
  ASSERT_TRUE(stats.ok());

  // Regenerate windows directly and compare against the index contents.
  HashFamily family(options.k, options.seed);
  WindowGenerator generator;
  std::vector<KeyedWindow> expected;
  for (uint32_t func = 0; func < options.k; ++func) {
    for (size_t i = 0; i < corpus.num_texts(); ++i) {
      std::vector<CompactWindow> windows;
      generator.Generate(family, func, corpus.text(i), options.t, &windows);
      for (const CompactWindow& w : windows) {
        expected.push_back(KeyedWindow{corpus.text(i)[w.c],
                                       static_cast<TextId>(i) +
                                           func * 1000000u,
                                       w.l, w.c, w.r});
      }
    }
  }
  std::sort(expected.begin(), expected.end(), KeyedWindowLess);
  EXPECT_EQ(DumpIndex(dir_, options.k), expected);
  EXPECT_EQ(stats->num_windows, expected.size());
}

TEST_F(IndexBuilderTest, ParallelBuildMatchesSerial) {
  Corpus corpus = SmallCorpus(60);
  IndexBuildOptions serial = SmallBuild();
  IndexBuildOptions parallel = SmallBuild();
  parallel.num_threads = 4;
  const std::string serial_dir = dir_ + "/serial";
  const std::string parallel_dir = dir_ + "/parallel";
  ASSERT_TRUE(BuildIndexInMemory(corpus, serial_dir, serial).ok());
  ASSERT_TRUE(BuildIndexInMemory(corpus, parallel_dir, parallel).ok());
  EXPECT_EQ(DumpIndex(serial_dir, serial.k), DumpIndex(parallel_dir, serial.k));
}

TEST_F(IndexBuilderTest, ExternalBuildMatchesInMemory) {
  Corpus corpus = SmallCorpus(80);
  const std::string corpus_path = dir_ + "/corpus.crp";
  ASSERT_TRUE(CreateDirectories(dir_).ok());
  ASSERT_TRUE(WriteCorpusFile(corpus_path, corpus).ok());

  IndexBuildOptions options = SmallBuild();
  const std::string mem_dir = dir_ + "/mem";
  ASSERT_TRUE(BuildIndexInMemory(corpus, mem_dir, options).ok());

  IndexBuildOptions external = options;
  external.batch_tokens = 2000;   // force many batches
  external.num_partitions = 4;
  const std::string ext_dir = dir_ + "/ext";
  auto stats = BuildIndexExternal(corpus_path, ext_dir, external);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->spill_bytes, 0u);

  EXPECT_EQ(DumpIndex(mem_dir, options.k), DumpIndex(ext_dir, options.k));
}

TEST_F(IndexBuilderTest, ExternalBuildWithRecursivePartitioning) {
  Corpus corpus = SmallCorpus(80);
  const std::string corpus_path = dir_ + "/corpus.crp";
  ASSERT_TRUE(CreateDirectories(dir_).ok());
  ASSERT_TRUE(WriteCorpusFile(corpus_path, corpus).ok());

  IndexBuildOptions options = SmallBuild();
  const std::string mem_dir = dir_ + "/mem";
  ASSERT_TRUE(BuildIndexInMemory(corpus, mem_dir, options).ok());

  IndexBuildOptions external = options;
  external.batch_tokens = 2000;
  external.num_partitions = 2;
  external.memory_budget_bytes = 4096;  // force recursive re-partitioning
  const std::string ext_dir = dir_ + "/ext";
  auto stats = BuildIndexExternal(corpus_path, ext_dir, external);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(DumpIndex(mem_dir, options.k), DumpIndex(ext_dir, options.k));
  // No spill files may remain.
  size_t spills = 0;
  for (const auto& entry : std::filesystem::directory_iterator(ext_dir)) {
    if (entry.path().filename().string().rfind("spill.", 0) == 0) ++spills;
  }
  EXPECT_EQ(spills, 0u);
}

TEST_F(IndexBuilderTest, WindowCountTracksTheorem) {
  // Total windows across a corpus ≈ sum over texts of 2(n+1)/(t+1) - 1.
  Corpus corpus = SmallCorpus(150);
  IndexBuildOptions options = SmallBuild();
  options.k = 8;
  auto stats = BuildIndexInMemory(corpus, dir_, options);
  ASSERT_TRUE(stats.ok());
  double expected = 0;
  for (size_t i = 0; i < corpus.num_texts(); ++i) {
    expected += ExpectedWindowCount(corpus.text_length(i), options.t);
  }
  expected *= options.k;
  EXPECT_NEAR(static_cast<double>(stats->num_windows), expected,
              0.25 * expected);
}

TEST_F(IndexBuilderTest, InvalidOptionsRejected) {
  Corpus corpus = SmallCorpus(5);
  IndexBuildOptions options = SmallBuild();
  options.k = 0;
  EXPECT_FALSE(BuildIndexInMemory(corpus, dir_, options).ok());
  options = SmallBuild();
  options.t = 0;
  EXPECT_FALSE(BuildIndexInMemory(corpus, dir_, options).ok());
}

TEST_F(IndexBuilderTest, IndexSizeInverseInT) {
  Corpus corpus = SmallCorpus(100);
  IndexBuildOptions options = SmallBuild();
  options.t = 20;
  auto small_t = BuildIndexInMemory(corpus, dir_ + "/t20", options);
  options.t = 40;
  auto large_t = BuildIndexInMemory(corpus, dir_ + "/t40", options);
  ASSERT_TRUE(small_t.ok() && large_t.ok());
  EXPECT_GT(small_t->num_windows, large_t->num_windows);
  EXPECT_GT(small_t->index_bytes, large_t->index_bytes);
}

}  // namespace
}  // namespace ndss
