#include "corpusgen/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ndss {
namespace {

TEST(ZipfTest, ProbabilitiesSumToOne) {
  ZipfSampler zipf(100, 1.0);
  double total = 0;
  for (uint64_t r = 0; r < 100; ++r) total += zipf.Probability(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(zipf.Probability(100), 0.0);
}

TEST(ZipfTest, RankZeroIsMostProbable) {
  ZipfSampler zipf(1000, 1.0);
  EXPECT_GT(zipf.Probability(0), zipf.Probability(1));
  EXPECT_GT(zipf.Probability(1), zipf.Probability(10));
  // Zipf law: P(rank 0) ≈ 2 * P(rank 1) ≈ 3 * P(rank 2).
  EXPECT_NEAR(zipf.Probability(0) / zipf.Probability(1), 2.0, 1e-9);
  EXPECT_NEAR(zipf.Probability(0) / zipf.Probability(2), 3.0, 1e-9);
}

TEST(ZipfTest, ExponentZeroIsUniform) {
  ZipfSampler zipf(10, 0.0);
  for (uint64_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(zipf.Probability(r), 0.1, 1e-9);
  }
}

TEST(ZipfTest, SingleItemAlwaysSampled) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

TEST(ZipfTest, EmpiricalFrequenciesMatchProbabilities) {
  ZipfSampler zipf(50, 1.0);
  Rng rng(12345);
  std::vector<int> counts(50, 0);
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) ++counts[zipf.Sample(rng)];
  for (uint64_t r : {0ull, 1ull, 5ull, 20ull}) {
    const double expected = zipf.Probability(r) * trials;
    EXPECT_NEAR(counts[r], expected, 5 * std::sqrt(expected) + 10)
        << "rank " << r;
  }
}

TEST(ZipfTest, SamplesAlwaysInRange) {
  ZipfSampler zipf(7, 1.5);
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Sample(rng), 7u);
}

}  // namespace
}  // namespace ndss
