// CRC32C (Castagnoli) against the published reference vectors (RFC 3720
// appendix B.4 / the values every other implementation agrees on), plus the
// incremental-Extend and Mask/Unmask properties the index format relies on.

#include "common/crc32c.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace ndss {
namespace {

TEST(Crc32cTest, StandardVectors) {
  // "123456789"
  EXPECT_EQ(0xE3069283u, crc32c::Value("123456789", 9));

  char buf[32];
  std::memset(buf, 0, sizeof(buf));
  EXPECT_EQ(0x8A9136AAu, crc32c::Value(buf, sizeof(buf)));

  std::memset(buf, 0xff, sizeof(buf));
  EXPECT_EQ(0x62A8AB43u, crc32c::Value(buf, sizeof(buf)));

  for (int i = 0; i < 32; ++i) buf[i] = static_cast<char>(i);
  EXPECT_EQ(0x46DD794Eu, crc32c::Value(buf, sizeof(buf)));

  for (int i = 0; i < 32; ++i) buf[i] = static_cast<char>(31 - i);
  EXPECT_EQ(0x113FDB5Cu, crc32c::Value(buf, sizeof(buf)));
}

TEST(Crc32cTest, EmptyInput) {
  EXPECT_EQ(0u, crc32c::Value("", 0));
  EXPECT_EQ(crc32c::Value("abc", 3), crc32c::Extend(crc32c::Value("abc", 3),
                                                    nullptr, 0));
}

TEST(Crc32cTest, ExtendEqualsWhole) {
  const std::string data =
      "The quick brown fox jumps over the lazy dog, repeatedly, to cross "
      "every slice-by-8 alignment boundary at least once. 0123456789.";
  const uint32_t whole = crc32c::Value(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = crc32c::Value(data.data(), split);
    crc = crc32c::Extend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(whole, crc) << "split at " << split;
  }
}

TEST(Crc32cTest, DistinguishesInputs) {
  EXPECT_NE(crc32c::Value("a", 1), crc32c::Value("b", 1));
  EXPECT_NE(crc32c::Value("ab", 2), crc32c::Value("ba", 2));
}

TEST(Crc32cTest, MaskRoundTripsAndDiffers) {
  for (uint32_t crc : {0u, 1u, 0xdeadbeefu, 0xffffffffu,
                       crc32c::Value("123456789", 9)}) {
    const uint32_t masked = crc32c::Mask(crc);
    EXPECT_NE(crc, masked);
    EXPECT_EQ(crc, crc32c::Unmask(masked));
  }
}

}  // namespace
}  // namespace ndss
