// Crash safety of the streaming-ingestion pipeline.
//
// The crash-point sweep arms a simulated power loss at EVERY env operation
// of a fixed ingest schedule (WAL appends and fsyncs, spill builds, manifest
// commits, WAL truncations, compactions) and asserts the recovery contract
// after each: the set reopens servable, no acknowledged document is lost,
// and the recovered index answers bit-identically to a batch build over the
// recovered document prefix.
//
// The chaos test runs ingestion, background compaction, and queries
// concurrently under seeded fault storms with repeated kill/recover cycles.
// Knobs follow chaos_test: NDSS_INGEST_CHAOS_MS stretches the run for
// nightly soaks; a failing schedule is dumped to $NDSS_CHAOS_ARTIFACT.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/fault_injection_env.h"
#include "corpusgen/synthetic.h"
#include "ingest/ingester.h"
#include "ingest/wal.h"
#include "query/searcher.h"
#include "shard/sharded_searcher.h"
#include "text/corpus.h"

namespace ndss {
namespace {

/// Order- and field-sensitive FNV-1a fingerprint of a result's matches.
uint64_t Fingerprint(const SearchResult& result) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(result.rectangles.size());
  for (const TextMatchRectangle& r : result.rectangles) {
    mix(r.text);
    mix(r.rect.x_begin);
    mix(r.rect.x_end);
    mix(r.rect.y_begin);
    mix(r.rect.y_end);
    mix(r.rect.collisions);
  }
  mix(result.spans.size());
  for (const MatchSpan& s : result.spans) {
    mix(s.text);
    mix(s.begin);
    mix(s.end);
    mix(s.collisions);
  }
  return h;
}

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

class IngestCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ndss_ingest_crash_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);

    SyntheticCorpusOptions options;
    options.num_texts = 600;
    options.min_text_length = 30;
    options.max_text_length = 60;
    options.vocab_size = 150;
    options.plant_rate = 0.3;
    options.seed = 77;
    sc_ = GenerateSyntheticCorpus(options);

    build_.k = 4;
    build_.t = 8;
  }

  void TearDown() override {
    SetDefaultEnv(nullptr);
    std::filesystem::remove_all(dir_);
  }

  std::vector<Token> Doc(size_t i) const {
    const auto tokens = sc_.corpus.text(i);
    return std::vector<Token>(tokens.begin(), tokens.end());
  }

  /// Fingerprints of the fixed query set against `search`.
  template <typename SearchFn>
  std::vector<uint64_t> QueryFingerprints(SearchFn&& search) {
    SearchOptions options;
    options.theta = 0.5;
    std::vector<uint64_t> fingerprints;
    for (size_t i = 0; i < 5; ++i) {
      const auto tokens = sc_.corpus.text(i * 3);
      const std::vector<Token> query(tokens.begin(), tokens.begin() + 20);
      auto result = search(query, options);
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      fingerprints.push_back(result.ok() ? Fingerprint(*result) : 0);
    }
    return fingerprints;
  }

  /// The batch-built reference over the first `count` documents.
  std::vector<uint64_t> ReferenceFingerprints(size_t count) {
    Corpus reference;
    for (size_t i = 0; i < count; ++i) reference.AddText(sc_.corpus.text(i));
    auto searcher = Searcher::InMemory(reference, build_);
    EXPECT_TRUE(searcher.ok()) << searcher.status().ToString();
    return QueryFingerprints(
        [&](std::span<const Token> q, const SearchOptions& o) {
          return searcher->Search(q, o);
        });
  }

  /// Reopens the set after a (simulated) crash and asserts the recovery
  /// contract: servable, >= `acked` documents, bit-identical to the batch
  /// reference over the recovered prefix. Returns the recovered doc count.
  uint64_t VerifyRecovered(const std::string& set_dir, uint64_t acked,
                           const std::string& context) {
    auto searcher = ShardedSearcher::Open(set_dir);
    EXPECT_TRUE(searcher.ok())
        << context << ": reopen failed: " << searcher.status().ToString();
    if (!searcher.ok()) return 0;
    IngestOptions options;
    options.build = build_;
    options.enable_compaction = false;
    auto ingester = Ingester::Open(&*searcher, options);
    EXPECT_TRUE(ingester.ok())
        << context << ": ingester reopen failed: "
        << ingester.status().ToString();
    if (!ingester.ok()) return 0;

    const uint64_t recovered = searcher->meta().num_texts;
    EXPECT_GE(recovered, acked)
        << context << ": acknowledged documents were lost";
    EXPECT_LE(recovered, sc_.corpus.num_texts()) << context;
    const auto got = QueryFingerprints(
        [&](std::span<const Token> q, const SearchOptions& o) {
          return searcher->Search(q, o);
        });
    EXPECT_EQ(got, ReferenceFingerprints(recovered))
        << context << ": recovered index diverges from the batch build over "
        << recovered << " documents";
    EXPECT_TRUE((*ingester)->Close().ok()) << context;
    return recovered;
  }

  std::string dir_;
  SyntheticCorpus sc_;
  IndexBuildOptions build_;
};

// Arms a crash at env operation `crash_op`, runs the schedule until the
// crash bites (or the schedule completes), then verifies recovery. Sweeps
// crash_op upward until a run completes faultless — by construction every
// write site of the pipeline gets hit.
TEST_F(IngestCrashTest, CrashPointSweepRecoversEverywhere) {
  constexpr size_t kDocs = 12;
  constexpr int64_t kMaxCrashOp = 100000;  // runaway guard
  bool completed = false;

  for (int64_t crash_op = 0; !completed; ++crash_op) {
    ASSERT_LT(crash_op, kMaxCrashOp) << "schedule never completed";
    const std::string set_dir =
        dir_ + "/sweep_" + std::to_string(crash_op);
    SCOPED_TRACE("crash_op=" + std::to_string(crash_op));

    auto fault = std::make_unique<FaultInjectionEnv>(Env::Posix());
    SetDefaultEnv(fault.get());
    ASSERT_TRUE(Ingester::CreateSet(set_dir, build_).ok());

    // The schedule under test starts here; everything above ran unfaulted.
    fault->ResetOpCount();
    fault->ArmCrashAtOp(crash_op);

    uint64_t acked = 0;
    bool clean = true;
    {
      auto searcher = ShardedSearcher::Open(set_dir);
      clean = searcher.ok();
      if (clean) {
        IngestOptions options;
        options.build = build_;
        options.enable_compaction = false;
        options.memtable_max_docs = 4;
        options.compaction_fanin = 2;
        auto ingester = Ingester::Open(&*searcher, options);
        clean = ingester.ok();
        if (clean) {
          // Append in batches of 3 (spills fire mid-schedule), then seal
          // the tail and compact to a fixed point.
          for (size_t i = 0; i < kDocs && clean; i += 3) {
            std::vector<std::vector<Token>> batch;
            for (size_t j = i; j < i + 3 && j < kDocs; ++j) {
              batch.push_back(Doc(j));
            }
            const size_t batch_size = batch.size();
            clean = (*ingester)->AppendBatch(std::move(batch)).ok();
            if (clean) acked += batch_size;
          }
          if (clean) clean = (*ingester)->Flush().ok();
          bool compacted = clean;
          while (clean && compacted) {
            clean = (*ingester)->CompactOnce(&compacted).ok();
          }
          (*ingester)->Close();  // failure expected when the crash hit
        }
      }
    }

    // Power loss: unsynced bytes vanish, then the machine comes back.
    ASSERT_TRUE(fault->DropUnsyncedData().ok());
    fault->Heal();
    VerifyRecovered(set_dir, acked, "crash_op=" + std::to_string(crash_op));

    SetDefaultEnv(nullptr);
    fault.reset();
    std::filesystem::remove_all(set_dir);
    completed = clean;
  }
}

// Ingestion + background compaction + queries under seeded fault storms,
// with kill/recover cycles. After every recovery the index must contain all
// acked documents and answer bit-identically to the batch reference.
TEST_F(IngestCrashTest, ChaosIngestCompactServeKill) {
  const int total_ms = EnvInt("NDSS_INGEST_CHAOS_MS", 1500);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(total_ms);
  const std::string set_dir = dir_ + "/set";

  auto fault = std::make_unique<FaultInjectionEnv>(Env::Posix());
  SetDefaultEnv(fault.get());
  ASSERT_TRUE(Ingester::CreateSet(set_dir, build_).ok());

  uint64_t acked = 0;     // documents durably acknowledged so far
  uint64_t recovered = 0; // documents in the index after the last recovery
  std::ostringstream schedule;
  int cycle = 0;

  while (std::chrono::steady_clock::now() < deadline &&
         acked + 16 < sc_.corpus.num_texts()) {
    SCOPED_TRACE("cycle=" + std::to_string(cycle));
    schedule << "cycle " << cycle << ": start acked=" << acked << "\n";

    auto searcher = ShardedSearcher::Open(set_dir);
    ASSERT_TRUE(searcher.ok()) << searcher.status().ToString();
    IngestOptions options;
    options.build = build_;
    options.memtable_max_docs = 6;
    options.compaction_fanin = 3;
    options.compaction_poll_micros = 2000;
    options.compaction_retry.initial_backoff_micros = 100;
    options.compaction_quarantine_micros = 2000;
    auto ingester = Ingester::Open(&*searcher, options);
    ASSERT_TRUE(ingester.ok()) << ingester.status().ToString();
    ASSERT_EQ(searcher->meta().num_texts, recovered)
        << "replay after recovery lost or duplicated documents";

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> cycle_acked{0};

    // Writer: sequential appends; the first failure ends the cycle (the
    // ingester is poisoned — exactly the process-death model).
    std::thread writer([&] {
      size_t next = acked;
      while (!stop.load(std::memory_order_relaxed) &&
             next + 2 <= sc_.corpus.num_texts()) {
        std::vector<std::vector<Token>> batch = {Doc(next), Doc(next + 1)};
        if (!(*ingester)->AppendBatch(std::move(batch)).ok()) break;
        next += 2;
        cycle_acked.fetch_add(2, std::memory_order_relaxed);
      }
    });

    // Readers: results during a storm may be errors or degraded; the only
    // requirement here is no crash. Exactness is asserted at recovery.
    std::thread reader([&] {
      SearchOptions search_options;
      search_options.theta = 0.5;
      size_t q = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto tokens = sc_.corpus.text(q++ % 16);
        const std::vector<Token> query(tokens.begin(), tokens.begin() + 20);
        (void)searcher->Search(query, search_options);
      }
    });

    // Fault schedule: let clean load run, then a seeded storm on the set
    // directory until the writer dies or a timed lull.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    const double p = 0.02 + 0.01 * (cycle % 4);
    schedule << "  storm p=" << p << " seed=" << (1000 + cycle) << "\n";
    fault->SetFaultPathFilter(set_dir);
    fault->SetFailProbability(p, 1000 + cycle);
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    stop.store(true, std::memory_order_relaxed);
    writer.join();
    reader.join();
    (*ingester)->Close();  // may fail under the storm; that is the point
    ingester->reset();
    searcher = Status::IOError("killed");

    // Power loss + restart.
    ASSERT_TRUE(fault->DropUnsyncedData().ok());
    fault->Heal();
    acked += cycle_acked.load(std::memory_order_relaxed);
    schedule << "  killed; acked=" << acked << "\n";
    recovered = VerifyRecovered(set_dir, acked,
                                "chaos cycle " + std::to_string(cycle));
    // Replay may legally resurrect a batch that was durable but unacked
    // (synced before the storm hit the ack path); never fewer than acked.
    acked = recovered < acked ? acked : recovered;
    ++cycle;

    if (::testing::Test::HasFailure()) break;
  }

  schedule << "end: cycles=" << cycle << " acked=" << acked << "\n";
  if (::testing::Test::HasFailure()) {
    const char* artifact = std::getenv("NDSS_CHAOS_ARTIFACT");
    if (artifact != nullptr) {
      std::ofstream out(artifact, std::ios::app);
      out << "=== ingest chaos failing schedule ===\n" << schedule.str();
    }
    std::printf("%s", schedule.str().c_str());
  }
  EXPECT_GT(cycle, 0);
}

}  // namespace
}  // namespace ndss
