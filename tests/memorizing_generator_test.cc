#include "lm/memorizing_generator.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "corpusgen/synthetic.h"

namespace ndss {
namespace {

SyntheticCorpus TrainingCorpus() {
  SyntheticCorpusOptions options;
  options.num_texts = 100;
  options.min_text_length = 100;
  options.max_text_length = 300;
  options.vocab_size = 1000;
  options.plant_rate = 0.0;
  options.seed = 55;
  return GenerateSyntheticCorpus(options);
}

TEST(MemorizingGeneratorTest, ProducesRequestedShape) {
  SyntheticCorpus sc = TrainingCorpus();
  NGramModel model(3);
  model.Train(sc.corpus);
  MemorizationProfile profile;
  MemorizingGenerator generator(model, sc.corpus, profile, 1);
  GeneratedTexts generated = generator.Generate(5, 512, SamplingOptions{});
  ASSERT_EQ(generated.texts.size(), 5u);
  for (const auto& text : generated.texts) EXPECT_EQ(text.size(), 512u);
}

TEST(MemorizingGeneratorTest, CopiedSpansMatchGroundTruth) {
  SyntheticCorpus sc = TrainingCorpus();
  NGramModel model(3);
  model.Train(sc.corpus);
  MemorizationProfile profile;
  profile.copy_start_prob = 0.02;
  profile.fidelity = 1.0;  // exact copies
  MemorizingGenerator generator(model, sc.corpus, profile, 2);
  GeneratedTexts generated = generator.Generate(10, 512, SamplingOptions{});
  ASSERT_FALSE(generated.copies.empty());
  for (const CopiedSpan& copy : generated.copies) {
    const auto& text = generated.texts[copy.text_index];
    const auto source = sc.corpus.text(copy.source_text);
    ASSERT_LE(copy.target_begin + copy.length, text.size());
    ASSERT_LE(copy.source_begin + copy.length, source.size());
    EXPECT_TRUE(std::equal(text.begin() + copy.target_begin,
                           text.begin() + copy.target_begin + copy.length,
                           source.begin() + copy.source_begin));
    EXPECT_EQ(copy.corrupted, 0u);
  }
}

TEST(MemorizingGeneratorTest, FidelityControlsCorruption) {
  SyntheticCorpus sc = TrainingCorpus();
  NGramModel model(3);
  model.Train(sc.corpus);
  MemorizationProfile profile;
  profile.copy_start_prob = 0.05;
  profile.fidelity = 0.8;
  MemorizingGenerator generator(model, sc.corpus, profile, 3);
  GeneratedTexts generated = generator.Generate(10, 512, SamplingOptions{});
  ASSERT_FALSE(generated.copies.empty());
  uint64_t corrupted = 0, total = 0;
  for (const CopiedSpan& copy : generated.copies) {
    corrupted += copy.corrupted;
    total += copy.length;
  }
  EXPECT_NEAR(static_cast<double>(corrupted) / total, 0.2, 0.08);
}

TEST(MemorizingGeneratorTest, HigherCopyRateMeansMoreCopies) {
  SyntheticCorpus sc = TrainingCorpus();
  NGramModel model(3);
  model.Train(sc.corpus);
  MemorizationProfile low;
  low.copy_start_prob = 0.002;
  MemorizationProfile high;
  high.copy_start_prob = 0.02;
  MemorizingGenerator low_gen(model, sc.corpus, low, 4);
  MemorizingGenerator high_gen(model, sc.corpus, high, 4);
  const auto low_out = low_gen.Generate(20, 512, SamplingOptions{});
  const auto high_out = high_gen.Generate(20, 512, SamplingOptions{});
  EXPECT_GT(high_out.copies.size(), low_out.copies.size());
}

TEST(MemorizingGeneratorTest, ZeroCopyRateProducesNoCopies) {
  SyntheticCorpus sc = TrainingCorpus();
  NGramModel model(2);
  model.Train(sc.corpus);
  MemorizationProfile profile;
  profile.copy_start_prob = 0.0;
  MemorizingGenerator generator(model, sc.corpus, profile, 5);
  const auto out = generator.Generate(3, 256, SamplingOptions{});
  EXPECT_TRUE(out.copies.empty());
}

TEST(MemorizingGeneratorTest, DefaultModelsAreOrderedByCapacity) {
  const auto models = DefaultSimulatedModels();
  ASSERT_EQ(models.size(), 4u);
  // Named after the paper's four models.
  EXPECT_EQ(models[0].name, "gpt2-small-sim");
  EXPECT_EQ(models[3].name, "gpt-neo-2.7b-sim");
  // The paper's ordering: neo-2.7b > neo-1.3b, and small > medium.
  EXPECT_GT(models[3].profile.copy_start_prob,
            models[2].profile.copy_start_prob);
  EXPECT_GT(models[0].profile.copy_start_prob,
            models[1].profile.copy_start_prob);
}

}  // namespace
}  // namespace ndss
