#include "query/cost_model.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "corpusgen/synthetic.h"
#include "index/index_builder.h"
#include "query/searcher.h"

namespace ndss {
namespace {

TEST(CostModelTest, BetaOneDefersNothing) {
  std::vector<uint64_t> counts = {1000000, 1000, 10};
  auto deferred = SelectDeferredLists(counts, 1, 16.0, CostModelParams{});
  for (bool d : deferred) EXPECT_FALSE(d);
}

TEST(CostModelTest, DefersAtMostBetaMinusOne) {
  std::vector<uint64_t> counts(8, 100000000);  // all enormous
  auto deferred = SelectDeferredLists(counts, 3, 16.0, CostModelParams{});
  int num_deferred = 0;
  for (bool d : deferred) num_deferred += d ? 1 : 0;
  EXPECT_LE(num_deferred, 2);
}

TEST(CostModelTest, DefersLongestListsFirst) {
  std::vector<uint64_t> counts = {10, 50000000, 20, 40000000, 30};
  auto deferred = SelectDeferredLists(counts, 3, 16.0, CostModelParams{});
  EXPECT_TRUE(deferred[1]);
  EXPECT_TRUE(deferred[3]);
  EXPECT_FALSE(deferred[0]);
  EXPECT_FALSE(deferred[2]);
  EXPECT_FALSE(deferred[4]);
}

TEST(CostModelTest, TinyListsAreNotDeferred) {
  // Scanning a 10-window list is far cheaper than probing candidates.
  std::vector<uint64_t> counts = {10, 12, 9, 11};
  auto deferred = SelectDeferredLists(counts, 4, 16.0, CostModelParams{});
  for (bool d : deferred) EXPECT_FALSE(d);
}

TEST(CostModelTest, EmptyListsNeverDeferred) {
  std::vector<uint64_t> counts = {0, 0, 50000000, 0};
  auto deferred = SelectDeferredLists(counts, 4, 16.0, CostModelParams{});
  EXPECT_FALSE(deferred[0]);
  EXPECT_FALSE(deferred[1]);
  EXPECT_FALSE(deferred[3]);
}

TEST(CostModelTest, ExpensiveProbesDisableDeferral) {
  std::vector<uint64_t> counts = {100000, 90000, 100, 100};
  CostModelParams expensive;
  expensive.probe_seconds = 1.0;  // probes cost a second each
  auto deferred = SelectDeferredLists(counts, 4, 16.0, expensive);
  for (bool d : deferred) EXPECT_FALSE(d);
}

class CostModelSearchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ndss_costmodel_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(CostModelSearchTest, CostModelSearchMatchesFixedThreshold) {
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 100;
  corpus_options.vocab_size = 150;
  corpus_options.zipf_exponent = 1.2;
  corpus_options.plant_rate = 0.4;
  corpus_options.seed = 17;
  SyntheticCorpus sc = GenerateSyntheticCorpus(corpus_options);

  IndexBuildOptions build;
  build.k = 8;
  build.t = 20;
  ASSERT_TRUE(BuildIndexInMemory(sc.corpus, dir_, build).ok());
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());

  Rng rng(3);
  for (int q = 0; q < 6; ++q) {
    const TextId source = static_cast<TextId>(rng.Uniform(100));
    const auto text = sc.corpus.text(source);
    const uint32_t length =
        std::min<uint32_t>(40, static_cast<uint32_t>(text.size()));
    const uint32_t begin =
        static_cast<uint32_t>(rng.Uniform(text.size() - length + 1));
    const std::vector<Token> query =
        PerturbSequence(text, begin, length, 0.1, 150, rng);

    SearchOptions cost_model;
    cost_model.theta = 0.7;
    cost_model.use_cost_model = true;
    SearchOptions fixed;
    fixed.theta = 0.7;
    fixed.use_prefix_filter = false;

    auto a = searcher->Search(query, cost_model);
    auto b = searcher->Search(query, fixed);
    ASSERT_TRUE(a.ok() && b.ok());
    // Same result rectangles regardless of deferral strategy.
    ASSERT_EQ(a->rectangles.size(), b->rectangles.size()) << "query " << q;
    for (size_t i = 0; i < a->rectangles.size(); ++i) {
      EXPECT_EQ(a->rectangles[i].text, b->rectangles[i].text);
      EXPECT_EQ(a->rectangles[i].rect.collisions,
                b->rectangles[i].rect.collisions);
    }
  }
}

}  // namespace
}  // namespace ndss
