#include "baseline/brute_force.h"

#include <gtest/gtest.h>

#include <vector>

namespace ndss {
namespace {

Corpus MakeCorpus(std::initializer_list<std::vector<Token>> texts) {
  Corpus corpus;
  for (const auto& text : texts) corpus.AddText(text);
  return corpus;
}

TEST(BruteForceExactTest, FindsIdenticalSpan) {
  Corpus corpus = MakeCorpus({{1, 2, 3, 4, 5, 6, 7, 8},
                              {9, 10, 11, 12}});
  std::vector<Token> query = {3, 4, 5, 6};
  auto matches = BruteForceExactSearch(corpus, query, 1.0, 4);
  bool found = false;
  for (const auto& m : matches) {
    if (m.text == 0 && m.begin == 2 && m.end == 5) {
      found = true;
      EXPECT_DOUBLE_EQ(m.similarity, 1.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(BruteForceExactTest, RespectsLengthThreshold) {
  Corpus corpus = MakeCorpus({{1, 2, 3, 4, 5}});
  std::vector<Token> query = {1, 2, 3};
  for (const auto& m : BruteForceExactSearch(corpus, query, 0.5, 4)) {
    EXPECT_GE(m.end - m.begin + 1, 4u);
  }
}

TEST(BruteForceExactTest, SimilarityValuesAreExact) {
  // Query {1,2,3,4}; text span {1,2,3,9}: intersection 3, union 5 → 0.6.
  Corpus corpus = MakeCorpus({{1, 2, 3, 9}});
  std::vector<Token> query = {1, 2, 3, 4};
  auto matches = BruteForceExactSearch(corpus, query, 0.55, 4);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_DOUBLE_EQ(matches[0].similarity, 0.6);
  EXPECT_TRUE(BruteForceExactSearch(corpus, query, 0.65, 4).empty());
}

TEST(BruteForceApproxTest, ExactCopyCollidesEverywhere) {
  Corpus corpus = MakeCorpus({{5, 6, 7, 8, 9, 10}});
  HashFamily family(16, 3);
  std::vector<Token> query = {5, 6, 7, 8, 9, 10};
  auto matches = BruteForceApproxSearch(corpus, family, query, 1.0, 6);
  ASSERT_FALSE(matches.empty());
  bool full = false;
  for (const auto& m : matches) {
    if (m.begin == 0 && m.end == 5) {
      full = true;
      EXPECT_EQ(m.collisions, 16u);
    }
  }
  EXPECT_TRUE(full);
}

TEST(BruteForceApproxTest, DisjointTokensNeverMatch) {
  Corpus corpus = MakeCorpus({{1, 2, 3, 4, 5, 6}});
  HashFamily family(8, 3);
  std::vector<Token> query = {100, 200, 300, 400};
  EXPECT_TRUE(
      BruteForceApproxSearch(corpus, family, query, 0.5, 3).empty());
}

TEST(ContainsVerbatimTest, FindsSubsequence) {
  Corpus corpus = MakeCorpus({{1, 2, 3, 4, 5}, {6, 7, 8}});
  EXPECT_TRUE(ContainsVerbatim(corpus, std::vector<Token>{2, 3, 4}));
  EXPECT_TRUE(ContainsVerbatim(corpus, std::vector<Token>{6, 7, 8}));
  EXPECT_TRUE(ContainsVerbatim(corpus, std::vector<Token>{5}));
  EXPECT_FALSE(ContainsVerbatim(corpus, std::vector<Token>{3, 2}));
  EXPECT_FALSE(ContainsVerbatim(corpus, std::vector<Token>{5, 6}))
      << "runs must not cross text boundaries";
  EXPECT_FALSE(
      ContainsVerbatim(corpus, std::vector<Token>{1, 2, 3, 4, 5, 6}));
}

TEST(ContainsVerbatimTest, WholeTextAndEdges) {
  Corpus corpus = MakeCorpus({{9, 8, 7}});
  EXPECT_TRUE(ContainsVerbatim(corpus, std::vector<Token>{9, 8, 7}));
  EXPECT_TRUE(ContainsVerbatim(corpus, std::vector<Token>{9}));
  EXPECT_TRUE(ContainsVerbatim(corpus, std::vector<Token>{7}));
  EXPECT_FALSE(ContainsVerbatim(corpus, std::vector<Token>{9, 8, 7, 6}));
  EXPECT_TRUE(ContainsVerbatim(corpus, std::vector<Token>{}));
}

TEST(SpanJaccardTest, ComputesOnCorpusSpan) {
  Corpus corpus = MakeCorpus({{1, 2, 3, 4, 5, 6}});
  std::vector<Token> query = {2, 3, 4};
  EXPECT_DOUBLE_EQ(SpanJaccard(corpus, 0, 1, 3, query), 1.0);
  EXPECT_DOUBLE_EQ(SpanJaccard(corpus, 0, 0, 2, query), 0.5);  // {1,2,3}
}

}  // namespace
}  // namespace ndss
