#include "tokenizer/pre_tokenizer.h"

#include <gtest/gtest.h>

#include <numeric>
#include <string>

namespace ndss {
namespace {

std::string Rejoin(const std::vector<std::string_view>& chunks) {
  std::string result;
  for (auto chunk : chunks) result += std::string(chunk);
  return result;
}

TEST(PreTokenizerTest, SimpleWords) {
  auto chunks = PreTokenize("hello world");
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[0], "hello");
  EXPECT_EQ(chunks[1], " world");
}

TEST(PreTokenizerTest, LeadingSpaceGluesToWord) {
  auto chunks = PreTokenize(" lead");
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], " lead");
}

TEST(PreTokenizerTest, MultipleSpacesSplit) {
  auto chunks = PreTokenize("a  b");
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0], "a");
  EXPECT_EQ(chunks[1], " ");
  EXPECT_EQ(chunks[2], " b");
}

TEST(PreTokenizerTest, NewlinesArePreserved) {
  auto chunks = PreTokenize("one\n\ntwo");
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0], "one");
  EXPECT_EQ(chunks[1], "\n\n");
  EXPECT_EQ(chunks[2], "two");
}

TEST(PreTokenizerTest, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(PreTokenize("").empty());
  auto chunks = PreTokenize("   ");
  EXPECT_EQ(Rejoin(chunks), "   ");
}

// The invariant everything else depends on: the split is lossless.
TEST(PreTokenizerTest, LosslessOnTrickyInputs) {
  const std::string cases[] = {
      "hello world",
      " leading",
      "trailing ",
      "a  b   c",
      "tabs\tand\nnewlines \n mix",
      "  double lead",
      "word",
      " ",
      "\n",
      "a \n b",
      "punct, marks! and? digits 123",
  };
  for (const std::string& input : cases) {
    EXPECT_EQ(Rejoin(PreTokenize(input)), input) << "input: '" << input << "'";
  }
}

TEST(PreTokenizerTest, ChunksNeverEmpty) {
  for (auto chunk : PreTokenize("  a  bb\n\n c   ")) {
    EXPECT_FALSE(chunk.empty());
  }
}

}  // namespace
}  // namespace ndss
