#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace ndss {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, TasksCanBeSubmittedAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.WaitIdle();
  EXPECT_TRUE(ran.load());
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(1000, 4, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelForTest, ZeroItemsIsNoop) {
  bool called = false;
  ParallelFor(0, 4, [&called](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SingleThreadPreservesOrder) {
  std::vector<size_t> order;
  ParallelFor(10, 1, [&order](size_t i) { order.push_back(i); });
  std::vector<size_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ParallelForTest, MoreThreadsThanItems) {
  std::vector<std::atomic<int>> hits(3);
  ParallelFor(3, 16, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

}  // namespace
}  // namespace ndss
