// Self-healing serving: the ShardHealthTracker state machine (breakers,
// probe escalation), and the end-to-end contract — a shard failing
// transiently is quarantined, the HealthMonitor reopens it once the fault
// clears, and answers return to bit-identical with degraded_shards == 0.

#include "shard/shard_health.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/coding.h"
#include "common/fault_injection_env.h"
#include "common/file_io.h"
#include "corpusgen/synthetic.h"
#include "index/index_builder.h"
#include "index/index_format.h"
#include "index/index_merger.h"
#include "query/searcher.h"
#include "shard/sharded_searcher.h"

namespace ndss {
namespace {

Status TransientError() { return Status::IOError("injected"); }
Status CorruptionError() { return Status::Corruption("bad crc"); }

TEST(ShardHealthTrackerTest, CorruptionQuarantinesImmediately) {
  ShardHealthTracker tracker;
  EXPECT_EQ(tracker.state(), ShardHealth::kHealthy);
  EXPECT_TRUE(tracker.RecordFailure(CorruptionError(), 1000));
  EXPECT_EQ(tracker.state(), ShardHealth::kQuarantined);
  EXPECT_TRUE(tracker.excluded());
  // Idempotent while quarantined.
  EXPECT_FALSE(tracker.RecordFailure(CorruptionError(), 2000));
  const ShardHealthSnapshot snap = tracker.Snapshot();
  EXPECT_EQ(snap.quarantines, 1u);
  EXPECT_EQ(snap.corruption_failures, 2u);
  EXPECT_FALSE(snap.last_error.empty());
}

TEST(ShardHealthTrackerTest, ConsecutiveBreakerTripsAfterThreshold) {
  ShardHealthOptions options;
  options.consecutive_failures_to_quarantine = 3;
  ShardHealthTracker tracker(options);
  EXPECT_FALSE(tracker.RecordFailure(TransientError(), 1));
  EXPECT_EQ(tracker.state(), ShardHealth::kSuspect);
  EXPECT_FALSE(tracker.excluded());  // suspect shards keep serving
  EXPECT_FALSE(tracker.RecordFailure(TransientError(), 2));
  EXPECT_TRUE(tracker.RecordFailure(TransientError(), 3));
  EXPECT_EQ(tracker.state(), ShardHealth::kQuarantined);
  EXPECT_EQ(tracker.Snapshot().transient_failures, 3u);
}

TEST(ShardHealthTrackerTest, SuccessResetsConsecutiveBreaker) {
  ShardHealthOptions options;
  options.consecutive_failures_to_quarantine = 3;
  // Keep the rate breaker out of this test's way.
  options.error_rate_min_samples = 100;
  ShardHealthTracker tracker(options);
  for (int round = 0; round < 5; ++round) {
    EXPECT_FALSE(tracker.RecordFailure(TransientError(), round));
    EXPECT_FALSE(tracker.RecordFailure(TransientError(), round));
    tracker.RecordSuccess();
    EXPECT_EQ(tracker.state(), ShardHealth::kHealthy);
  }
}

TEST(ShardHealthTrackerTest, ErrorRateBreakerCatchesFlakyPattern) {
  ShardHealthOptions options;
  options.consecutive_failures_to_quarantine = 3;  // never reached below
  options.error_rate_threshold = 0.5;
  options.error_rate_window = 16;
  options.error_rate_min_samples = 8;
  ShardHealthTracker tracker(options);
  // fail, fail, ok, repeated: consecutive never exceeds 2, but the window
  // fills with 2/3 failures and trips the rate breaker at min samples.
  bool quarantined = false;
  for (int i = 0; i < 4 && !quarantined; ++i) {
    quarantined = tracker.RecordFailure(TransientError(), i);
    if (!quarantined) quarantined = tracker.RecordFailure(TransientError(), i);
    if (!quarantined) tracker.RecordSuccess();
  }
  EXPECT_TRUE(quarantined);
  EXPECT_EQ(tracker.state(), ShardHealth::kQuarantined);
}

TEST(ShardHealthTrackerTest, GovernanceStatusesAreNotRecorded) {
  ShardHealthOptions options;
  options.consecutive_failures_to_quarantine = 1;
  ShardHealthTracker tracker(options);
  EXPECT_FALSE(tracker.RecordFailure(Status::DeadlineExceeded("slow"), 1));
  EXPECT_FALSE(tracker.RecordFailure(Status::Cancelled("shed"), 2));
  EXPECT_FALSE(tracker.RecordFailure(Status::ResourceExhausted("budget"), 3));
  EXPECT_EQ(tracker.state(), ShardHealth::kHealthy);
  const ShardHealthSnapshot snap = tracker.Snapshot();
  EXPECT_EQ(snap.transient_failures, 0u);
  EXPECT_EQ(snap.corruption_failures, 0u);
  EXPECT_TRUE(snap.last_error.empty());
}

TEST(ShardHealthTrackerTest, ProbeLifecycleAndBackoff) {
  ShardHealthOptions options;
  options.initial_probe_delay_micros = 100;
  options.probe_backoff_multiplier = 2.0;
  options.max_probe_delay_micros = 350;
  options.deep_check_after_probes = 2;
  ShardHealthTracker tracker(options);
  ASSERT_TRUE(tracker.RecordFailure(CorruptionError(), 1000));

  EXPECT_FALSE(tracker.ProbeDue(1099));
  EXPECT_TRUE(tracker.ProbeDue(1100));
  EXPECT_FALSE(tracker.DeepCheckDue());
  tracker.BeginProbe(false);
  EXPECT_EQ(tracker.state(), ShardHealth::kProbing);
  EXPECT_FALSE(tracker.ProbeDue(2000));  // not while probing

  // A stale query success while probing must not short-circuit the probe.
  tracker.RecordSuccess();
  EXPECT_EQ(tracker.state(), ShardHealth::kProbing);

  // First failure: backoff 100 -> 200.
  tracker.ProbeFailed(TransientError(), 2000);
  EXPECT_EQ(tracker.state(), ShardHealth::kQuarantined);
  EXPECT_FALSE(tracker.ProbeDue(2199));
  EXPECT_TRUE(tracker.ProbeDue(2200));

  // Second (still cheap) probe fails: backoff 200 -> 400 caps at 350, and
  // two failed probes make the deep check due for the third.
  EXPECT_FALSE(tracker.DeepCheckDue());
  tracker.BeginProbe(false);
  tracker.ProbeFailed(TransientError(), 3000);
  EXPECT_FALSE(tracker.ProbeDue(3349));
  EXPECT_TRUE(tracker.ProbeDue(3350));
  EXPECT_TRUE(tracker.DeepCheckDue());

  tracker.BeginProbe(true);
  tracker.ProbeSucceeded();
  EXPECT_EQ(tracker.state(), ShardHealth::kHealthy);
  const ShardHealthSnapshot snap = tracker.Snapshot();
  EXPECT_EQ(snap.reopens, 1u);
  EXPECT_EQ(snap.probes, 3u);
  EXPECT_EQ(snap.probe_failures, 2u);
  EXPECT_TRUE(snap.last_error.empty());  // a healed shard carries no stigma
}

TEST(ShardHealthTrackerTest, FlappingShardEscalatesToDeepCheck) {
  ShardHealthOptions options;
  options.deep_check_after_probes = 2;
  ShardHealthTracker tracker(options);
  // Two quarantine -> cheap-reopen -> fail-again cycles: each cheap pass
  // leaves the flap counter standing, so the third quarantine demands deep.
  for (int cycle = 0; cycle < 2; ++cycle) {
    ASSERT_TRUE(tracker.RecordFailure(CorruptionError(), cycle * 1000));
    tracker.BeginProbe(false);
    tracker.ProbeSucceeded();
    EXPECT_EQ(tracker.state(), ShardHealth::kHealthy);
  }
  ASSERT_TRUE(tracker.RecordFailure(CorruptionError(), 9000));
  EXPECT_TRUE(tracker.DeepCheckDue());
  // A passing deep probe clears the flap escalation.
  tracker.BeginProbe(true);
  tracker.ProbeSucceeded();
  ASSERT_TRUE(tracker.RecordFailure(CorruptionError(), 10000));
  EXPECT_FALSE(tracker.DeepCheckDue());
}

TEST(ShardHealthTrackerTest, ExplicitQuarantineBypassesBreakers) {
  ShardHealthTracker tracker;  // consecutive threshold 3
  EXPECT_TRUE(tracker.Quarantine(TransientError(), 500));
  EXPECT_EQ(tracker.state(), ShardHealth::kQuarantined);
  EXPECT_FALSE(tracker.Quarantine(TransientError(), 600));  // idempotent
  EXPECT_EQ(tracker.Snapshot().quarantines, 1u);
}

// ---------------------------------------------------------------------------
// End-to-end: ShardedSearcher + FaultInjectionEnv + HealthMonitor.

class ShardHealthE2ETest : public ::testing::Test {
 protected:
  static constexpr uint32_t kNumTexts = 120;
  static constexpr uint32_t kShardTexts = 40;  // 3 shards

  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ndss_health_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    ASSERT_TRUE(CreateDirectories(dir_).ok());

    SyntheticCorpusOptions corpus_options;
    corpus_options.num_texts = kNumTexts;
    corpus_options.vocab_size = 400;
    corpus_options.plant_rate = 0.35;
    corpus_options.seed = 92;
    sc_ = GenerateSyntheticCorpus(corpus_options);

    build_.k = 5;
    build_.t = 20;
    for (uint32_t s = 0; s < 3; ++s) {
      Corpus shard;
      for (uint32_t i = s * kShardTexts; i < (s + 1) * kShardTexts; ++i) {
        shard.AddText(sc_.corpus.text(i));
      }
      ASSERT_TRUE(BuildIndexInMemory(shard, ShardDir(s), build_).ok());
    }
    ShardManifest manifest;
    manifest.shard_dirs = {ShardDir(0), ShardDir(1), ShardDir(2)};
    ASSERT_TRUE(manifest.Save(SetDir()).ok());

    // Everything from here on (searcher opens, query reads, probes) runs
    // through the fault env; the indexes above were built clean.
    fault_ = std::make_unique<FaultInjectionEnv>(Env::Posix());
    SetDefaultEnv(fault_.get());
  }

  void TearDown() override {
    SetDefaultEnv(nullptr);
    fault_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::string ShardDir(uint32_t s) const {
    return dir_ + "/s" + std::to_string(s);
  }
  std::string SetDir() const { return dir_ + "/set"; }

  /// Self-healing options tuned for test time: quarantine after 2 failed
  /// queries, probe within a few ms, escalate to deep quickly.
  static ShardedSearcherOptions FastHealingOptions() {
    ShardedSearcherOptions options;
    options.enable_self_healing = true;
    options.health.consecutive_failures_to_quarantine = 2;
    options.health.error_rate_min_samples = 1000;  // consecutive only
    options.health.initial_probe_delay_micros = 1'000;
    options.health.probe_backoff_multiplier = 2.0;
    options.health.max_probe_delay_micros = 50'000;
    options.health.deep_check_after_probes = 2;
    options.health.monitor_poll_micros = 1'000;
    return options;
  }

  /// A Searcher over MergeIndexes(dirs) — the never-faulted baseline every
  /// recovered answer must bit-match.
  Searcher MergedBaselineOf(const std::vector<std::string>& dirs) {
    const std::string out =
        dir_ + "/merged" + std::to_string(merged_counter_++);
    auto stats = MergeIndexes(dirs, out, IndexMergeOptions{});
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    auto searcher = Searcher::Open(out);
    EXPECT_TRUE(searcher.ok()) << searcher.status().ToString();
    return std::move(*searcher);
  }
  Searcher MergedBaseline() {
    return MergedBaselineOf({ShardDir(0), ShardDir(1), ShardDir(2)});
  }

  std::vector<std::vector<Token>> MakeQueries(size_t count) const {
    Rng rng(6);
    std::vector<std::vector<Token>> queries;
    for (size_t q = 0; q < count; ++q) {
      const TextId source = static_cast<TextId>(rng.Uniform(kNumTexts));
      const auto text = sc_.corpus.text(source);
      const uint32_t length =
          std::min<uint32_t>(35, static_cast<uint32_t>(text.size()));
      queries.push_back(PerturbSequence(text, 0, length, 0.1, 400, rng));
    }
    return queries;
  }

  static void ExpectSameMatches(const SearchResult& expected,
                                const SearchResult& actual,
                                const std::string& label) {
    ASSERT_EQ(expected.rectangles.size(), actual.rectangles.size()) << label;
    for (size_t i = 0; i < expected.rectangles.size(); ++i) {
      EXPECT_EQ(expected.rectangles[i].text, actual.rectangles[i].text)
          << label;
      EXPECT_TRUE(expected.rectangles[i].rect == actual.rectangles[i].rect)
          << label;
    }
    ASSERT_EQ(expected.spans.size(), actual.spans.size()) << label;
    for (size_t i = 0; i < expected.spans.size(); ++i) {
      EXPECT_EQ(expected.spans[i].text, actual.spans[i].text) << label;
      EXPECT_EQ(expected.spans[i].begin, actual.spans[i].begin) << label;
      EXPECT_EQ(expected.spans[i].end, actual.spans[i].end) << label;
    }
  }

  static SearchResult EraseTextRange(SearchResult result, TextId begin,
                                     TextId end) {
    std::erase_if(result.rectangles, [&](const TextMatchRectangle& r) {
      return r.text >= begin && r.text < end;
    });
    std::erase_if(result.spans, [&](const MatchSpan& s) {
      return s.text >= begin && s.text < end;
    });
    return result;
  }

  /// Polls `pred` (e.g. "shard healed") until it holds or `timeout` runs
  /// out; returns whether it held.
  static bool WaitFor(const std::function<bool()>& pred,
                      std::chrono::milliseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return pred();
  }

  /// XORs the posting region of every inverted-index file of `shard_dir`
  /// (headers and footers stay valid, so cheap probes pass while reads and
  /// deep probes fail their CRC).
  void CorruptShardLists(const std::string& shard_dir) {
    for (uint32_t func = 0; func < build_.k; ++func) {
      const std::string path = IndexMeta::InvertedIndexPath(shard_dir, func);
      auto data = ReadFileToString(path);
      ASSERT_TRUE(data.ok());
      const uint64_t directory_offset = DecodeFixed64(
          data->data() + data->size() - index_format::kFooterSize + 16);
      for (uint64_t i = index_format::kHeaderSize; i < directory_offset; ++i) {
        (*data)[i] ^= 0x5a;
      }
      ASSERT_TRUE(WriteStringToFile(path, *data).ok());
    }
  }

  std::string dir_;
  SyntheticCorpus sc_;
  IndexBuildOptions build_;
  std::unique_ptr<FaultInjectionEnv> fault_;
  int merged_counter_ = 0;
};

// The ISSUE's acceptance scenario: a transiently failing shard is
// quarantined, served around (degraded answers stay exact over the
// surviving id ranges), auto-reopened once the fault clears, and the set
// returns to bit-identical answers with degraded_shards == 0.
TEST_F(ShardHealthE2ETest, TransientFaultQuarantinesThenAutoReopens) {
  auto sharded = ShardedSearcher::Open(SetDir(), FastHealingOptions());
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  Searcher merged = MergedBaseline();

  SearchOptions options;
  options.theta = 0.6;
  const auto queries = MakeQueries(12);

  // Healthy phase: bit-identical to the merged baseline.
  for (const auto& query : queries) {
    auto expected = merged.Search(query, options);
    auto actual = sharded->Search(query, options);
    ASSERT_TRUE(expected.ok() && actual.ok());
    ExpectSameMatches(*expected, *actual, "healthy");
    EXPECT_EQ(actual->stats.degraded_shards, 0u);
  }

  // Storm on shard 1 only: every read of its files fails.
  fault_->SetFaultPathFilter(ShardDir(1));
  fault_->SetFailProbability(1.0);

  // Serve through the storm until the breaker trips (2 failing queries).
  bool quarantined = false;
  for (int i = 0; i < 200 && !quarantined; ++i) {
    for (const auto& query : queries) {
      auto actual = sharded->Search(query, options);
      ASSERT_TRUE(actual.ok()) << actual.status().ToString();
      auto expected = merged.Search(query, options);
      ASSERT_TRUE(expected.ok());
      if (actual->stats.degraded_shards > 0) {
        // Shard 1 excluded: answers are exact over shards 0 and 2.
        ExpectSameMatches(EraseTextRange(*expected, kShardTexts,
                                         2 * kShardTexts),
                          *actual, "degraded");
      } else {
        ExpectSameMatches(*expected, *actual, "pre-trip");
      }
    }
    quarantined =
        sharded->shards()[1].health.state == ShardHealth::kQuarantined;
  }
  ASSERT_TRUE(quarantined);
  {
    const ShardInfo info = sharded->shards()[1];
    EXPECT_TRUE(info.dropped);
    EXPECT_GE(info.health.quarantines, 1u);
    EXPECT_GE(info.health.drops, 1u);
    EXPECT_FALSE(info.health.last_error.empty());
  }
  const uint64_t epoch_during_fault = sharded->epoch();

  // Fault clears; the monitor probes and reopens the shard on its own.
  fault_->Heal();
  ASSERT_TRUE(WaitFor(
      [&] {
        return sharded->shards()[1].health.state == ShardHealth::kHealthy;
      },
      std::chrono::seconds(10)));

  // Reopen is not a topology change: same epoch, nothing written to the
  // manifest.
  EXPECT_EQ(sharded->epoch(), epoch_during_fault);
  {
    const ShardInfo info = sharded->shards()[1];
    EXPECT_FALSE(info.dropped);
    EXPECT_GE(info.health.reopens, 1u);
  }

  // Recovered phase: bit-identical again, degraded_shards back to 0.
  for (const auto& query : queries) {
    auto expected = merged.Search(query, options);
    auto actual = sharded->Search(query, options);
    ASSERT_TRUE(expected.ok() && actual.ok());
    ExpectSameMatches(*expected, *actual, "recovered");
    EXPECT_EQ(actual->stats.degraded_shards, 0u);
  }
}

// A shard whose posting lists are corrupt on disk passes cheap probes
// (headers are intact) and flaps reopen -> fail -> quarantine; the flap
// escalation forces a deep probe, which pins it down until the files are
// actually repaired — after which it heals and answers are exact again.
TEST_F(ShardHealthE2ETest, PersistentCorruptionEscalatesToDeepProbe) {
  // Back up shard 1 so the "repair" below is a byte-exact restore.
  const std::string backup = dir_ + "/s1_backup";
  std::filesystem::copy(ShardDir(1), backup);
  CorruptShardLists(ShardDir(1));

  auto sharded = ShardedSearcher::Open(SetDir(), FastHealingOptions());
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  // Shard 1's on-disk files are corrupt, so the baseline merges the backup.
  Searcher merged = MergedBaselineOf({ShardDir(0), backup, ShardDir(2)});

  SearchOptions options;
  options.theta = 0.6;
  const auto queries = MakeQueries(8);

  // Serve until a deep probe has failed. Throughout, answers must stay
  // exact no matter where the flap cycle is: either shard 1's sub-query
  // read nothing corrupt (full answer) or it failed and was excluded
  // (answer exact over the survivors).
  const bool deep_probe_failed = WaitFor(
      [&] {
        for (const auto& query : queries) {
          auto actual = sharded->Search(query, options);
          if (!actual.ok()) continue;  // all-dropped window
          auto expected = merged.Search(query, options);
          EXPECT_TRUE(expected.ok());
          if (actual->stats.degraded_shards > 0) {
            ExpectSameMatches(
                EraseTextRange(*expected, kShardTexts, 2 * kShardTexts),
                *actual, "corrupt phase");
          } else {
            ExpectSameMatches(*expected, *actual, "corrupt phase full");
          }
        }
        return sharded->shards()[1].health.probe_failures >= 1;
      },
      std::chrono::seconds(10));
  ASSERT_TRUE(deep_probe_failed);
  EXPECT_GE(sharded->shards()[1].health.quarantines, 1u);

  // Repair the shard on disk; the next deep probe passes and it rejoins.
  std::filesystem::remove_all(ShardDir(1));
  std::filesystem::copy(backup, ShardDir(1));
  ASSERT_TRUE(WaitFor(
      [&] {
        return sharded->shards()[1].health.state == ShardHealth::kHealthy;
      },
      std::chrono::seconds(10)));

  for (const auto& query : queries) {
    auto expected = merged.Search(query, options);
    auto actual = sharded->Search(query, options);
    ASSERT_TRUE(expected.ok() && actual.ok());
    ExpectSameMatches(*expected, *actual, "repaired");
    EXPECT_EQ(actual->stats.degraded_shards, 0u);
  }
}

// TSan coverage: the monitor's probe/reopen path racing query threads,
// shards() snapshots, and attach/detach topology churn under a low-grade
// fault storm. Correctness here is "no data race, no crash, and exact
// answers once the dust settles".
TEST_F(ShardHealthE2ETest, MonitorRacesQueriesAndTopologyChanges) {
  // A fourth shard (empty id-range contribution comes after s0..s2, so
  // attach/detach does not disturb their global ids).
  Corpus extra;
  for (uint32_t i = 0; i < kShardTexts; ++i) {
    extra.AddText(sc_.corpus.text(i % kNumTexts));
  }
  ASSERT_TRUE(BuildIndexInMemory(extra, ShardDir(3), build_).ok());

  auto sharded = ShardedSearcher::Open(SetDir(), FastHealingOptions());
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  // Low-grade storm on shard 1: enough failures to keep quarantines and
  // reopens cycling while the test runs.
  fault_->SetFaultPathFilter(ShardDir(1));
  fault_->SetFailProbability(0.05, /*seed=*/0xAB5);

  SearchOptions options;
  options.theta = 0.6;
  const auto queries = MakeQueries(6);
  std::atomic<bool> stop{false};

  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&, t] {
      size_t q = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        // Statuses are free to be IOError during the storm; the invariant
        // under test is memory-safety and tracker consistency.
        (void)sharded->Search(queries[q % queries.size()], options);
        ++q;
      }
    });
  }
  workers.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)sharded->AttachShard(ShardDir(3));
      (void)sharded->DetachShard(ShardDir(3));
    }
  });
  workers.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const ShardInfo& info : sharded->shards()) {
        (void)info.health.state;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (std::thread& worker : workers) worker.join();

  // Settle: clear faults, pin the topology back to the base three shards,
  // and wait for full health.
  fault_->Heal();
  (void)sharded->DetachShard(ShardDir(3));
  ASSERT_TRUE(WaitFor(
      [&] {
        const auto shards = sharded->shards();
        if (shards.size() != 3) return false;
        for (const ShardInfo& info : shards) {
          if (info.health.state != ShardHealth::kHealthy) return false;
        }
        return true;
      },
      std::chrono::seconds(10)));

  Searcher merged = MergedBaseline();
  for (const auto& query : queries) {
    auto expected = merged.Search(query, options);
    auto actual = sharded->Search(query, options);
    ASSERT_TRUE(expected.ok() && actual.ok());
    ExpectSameMatches(*expected, *actual, "settled");
    EXPECT_EQ(actual->stats.degraded_shards, 0u);
  }
}

}  // namespace
}  // namespace ndss
