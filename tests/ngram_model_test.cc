#include "lm/ngram_model.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ndss {
namespace {

Corpus RepeatedPatternCorpus() {
  // "1 2 3 1 2 3 ..." — after context (1, 2) the next token is always 3.
  Corpus corpus;
  std::vector<Token> text;
  for (int i = 0; i < 100; ++i) {
    text.push_back(1);
    text.push_back(2);
    text.push_back(3);
  }
  corpus.AddText(text);
  return corpus;
}

TEST(NGramModelTest, LearnsDeterministicPattern) {
  NGramModel model(3);
  model.Train(RepeatedPatternCorpus());
  Rng rng(1);
  SamplingOptions sampling;
  std::vector<Token> context = {1, 2};
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(model.SampleNext(context, sampling, rng), 3u);
  }
  context = {3, 1};
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(model.SampleNext(context, sampling, rng), 2u);
  }
}

TEST(NGramModelTest, GreedyPicksMostFrequent) {
  NGramModel model(2);
  Corpus corpus;
  // After 5: mostly 6, sometimes 7.
  std::vector<Token> text;
  for (int i = 0; i < 9; ++i) {
    text.push_back(5);
    text.push_back(6);
  }
  text.push_back(5);
  text.push_back(7);
  corpus.AddText(text);
  model.Train(corpus);
  SamplingOptions sampling;
  sampling.greedy = true;
  Rng rng(4);
  std::vector<Token> context = {5};
  EXPECT_EQ(model.SampleNext(context, sampling, rng), 6u);
}

TEST(NGramModelTest, BacksOffForUnseenContext) {
  NGramModel model(3);
  model.Train(RepeatedPatternCorpus());
  Rng rng(2);
  SamplingOptions sampling;
  // Context (9, 9) was never seen; must back off and still produce a token
  // from the training vocabulary.
  std::vector<Token> context = {9, 9};
  const Token token = model.SampleNext(context, sampling, rng);
  EXPECT_TRUE(token == 1 || token == 2 || token == 3);
}

TEST(NGramModelTest, GenerateProducesRequestedLength) {
  NGramModel model(3);
  model.Train(RepeatedPatternCorpus());
  Rng rng(3);
  SamplingOptions sampling;
  const std::vector<Token> text = model.Generate(57, sampling, rng);
  EXPECT_EQ(text.size(), 57u);
  for (Token token : text) {
    EXPECT_TRUE(token == 1 || token == 2 || token == 3);
  }
}

TEST(NGramModelTest, TopKRestrictsChoices) {
  NGramModel model(1);  // pure unigram
  Corpus corpus;
  std::vector<Token> text;
  // Token 0 is most frequent, then 1, 2, ..., 9.
  for (Token t = 0; t < 10; ++t) {
    for (Token rep = 0; rep < 100 - 10 * t; ++rep) text.push_back(t);
  }
  corpus.AddText(text);
  model.Train(corpus);
  SamplingOptions sampling;
  sampling.top_k = 2;
  Rng rng(8);
  std::set<Token> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(model.SampleNext({}, sampling, rng));
  }
  EXPECT_LE(seen.size(), 2u);
  EXPECT_TRUE(seen.count(0) == 1);
}

TEST(NGramModelTest, TopPRestrictsToHead) {
  NGramModel model(1);
  Corpus corpus;
  std::vector<Token> text;
  for (int i = 0; i < 90; ++i) text.push_back(0);
  for (int i = 0; i < 10; ++i) text.push_back(1);
  corpus.AddText(text);
  model.Train(corpus);
  SamplingOptions sampling;
  sampling.top_k = 0;
  sampling.top_p = 0.5;  // head = token 0 alone (90%)
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(model.SampleNext({}, sampling, rng), 0u);
  }
}

TEST(NGramModelTest, DeterministicGivenSeed) {
  NGramModel model(3);
  model.Train(RepeatedPatternCorpus());
  SamplingOptions sampling;
  Rng rng1(11), rng2(11);
  EXPECT_EQ(model.Generate(40, sampling, rng1),
            model.Generate(40, sampling, rng2));
}

TEST(NGramModelTest, TopCandidatesSortedWithProbabilities) {
  NGramModel model(1);
  Corpus corpus;
  std::vector<Token> text;
  for (int i = 0; i < 60; ++i) text.push_back(0);
  for (int i = 0; i < 30; ++i) text.push_back(1);
  for (int i = 0; i < 10; ++i) text.push_back(2);
  corpus.AddText(text);
  model.Train(corpus);
  auto candidates = model.TopCandidates({}, 2);
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].first, 0u);
  EXPECT_NEAR(candidates[0].second, 0.6, 1e-9);
  EXPECT_EQ(candidates[1].first, 1u);
  EXPECT_NEAR(candidates[1].second, 0.3, 1e-9);
}

TEST(NGramModelTest, BeamSearchFollowsDeterministicPattern) {
  NGramModel model(3);
  model.Train(RepeatedPatternCorpus());
  const std::vector<Token> text = model.GenerateBeam(12, 4);
  ASSERT_EQ(text.size(), 12u);
  // The corpus is "1 2 3" repeated; the most probable 12-token sequence
  // cycles through the pattern once started.
  for (size_t i = 2; i + 1 < text.size(); ++i) {
    if (text[i] == 1) EXPECT_EQ(text[i + 1], 2u);
    if (text[i] == 2) EXPECT_EQ(text[i + 1], 3u);
    if (text[i] == 3) EXPECT_EQ(text[i + 1], 1u);
  }
}

TEST(NGramModelTest, BeamSearchIsDeterministic) {
  NGramModel model(2);
  Corpus corpus = RepeatedPatternCorpus();
  model.Train(corpus);
  EXPECT_EQ(model.GenerateBeam(20, 3), model.GenerateBeam(20, 3));
}

TEST(NGramModelTest, BeamBeatsOrTiesGreedyLogProb) {
  // Construct a distribution where greedy is suboptimal: after token 9 the
  // locally best next token leads into a low-probability dead end.
  NGramModel model(2);
  Corpus corpus;
  std::vector<Token> text;
  // 9 -> 8 (6 times) then 8 -> {many different tokens, all rare}.
  for (Token t = 0; t < 6; ++t) {
    text.push_back(9);
    text.push_back(8);
    text.push_back(100 + t);
  }
  // 9 -> 7 (5 times), 7 -> 7 always (high-probability continuation).
  for (int i = 0; i < 5; ++i) {
    text.push_back(9);
    text.push_back(7);
    text.push_back(7);
    text.push_back(7);
  }
  corpus.AddText(text);
  model.Train(corpus);
  // Greedy from context {9} picks 8 then a rare token; beam(4) should find
  // the 7-chain. Verify beam's first step is 7 for a 3-token continuation.
  const std::vector<Token> beam = model.GenerateBeam(4, 4);
  (void)beam;  // full-sequence start is unigram-driven; check via context:
  auto candidates = model.TopCandidates(std::vector<Token>{9}, 2);
  ASSERT_GE(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].first, 8u) << "greedy choice after 9 is 8";
}

TEST(NGramModelTest, TracksTrainedTokenCount) {
  NGramModel model(2);
  Corpus corpus = RepeatedPatternCorpus();
  model.Train(corpus);
  EXPECT_EQ(model.total_tokens_trained(), corpus.total_tokens());
}

}  // namespace
}  // namespace ndss
