// Fault-injection coverage of the crash-safe build protocol (DESIGN.md §7).
//
// The central test sweeps a simulated power loss across every file operation
// of a full index build: for each crash point the build runs against a
// FaultInjectionEnv armed to die at that operation, un-synced data is
// dropped (what the file system may do on power loss), and the directory is
// reopened. The invariant under test is all-or-nothing: reopening either
// fails with a clean Status (the CURRENT commit marker is missing) or serves
// answers byte-identical to an uninterrupted build. There is no third
// outcome — no torn index that opens and answers wrong.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/fault_injection_env.h"
#include "common/file_io.h"
#include "common/retry.h"
#include "common/status.h"
#include "corpusgen/synthetic.h"
#include "index/index_builder.h"
#include "index/index_meta.h"
#include "index/inverted_index_reader.h"
#include "query/searcher.h"
#include "text/corpus_file.h"

namespace ndss {
namespace {

class EnvFaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ndss_env_fault_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);

    SyntheticCorpusOptions options;
    options.num_texts = 24;
    options.min_text_length = 80;
    options.max_text_length = 200;
    options.vocab_size = 150;
    options.seed = 7;
    sc_ = GenerateSyntheticCorpus(options);

    build_.k = 3;
    build_.t = 15;

    fault_ = std::make_unique<FaultInjectionEnv>(Env::Posix());
    SetDefaultEnv(fault_.get());
  }

  void TearDown() override {
    SetDefaultEnv(nullptr);
    std::filesystem::remove_all(dir_);
  }

  std::vector<std::vector<Token>> Queries() const {
    std::vector<std::vector<Token>> queries;
    for (TextId text = 0; text < 5; ++text) {
      const auto tokens = sc_.corpus.text(text);
      queries.emplace_back(tokens.begin(), tokens.begin() + 40);
    }
    return queries;
  }

  /// Runs the fixed query set and flattens the result spans into strings, so
  /// two searchers can be compared for exact agreement.
  static Result<std::vector<std::string>> RunQueries(
      Searcher& searcher, const std::vector<std::vector<Token>>& queries) {
    SearchOptions options;
    options.theta = 0.5;
    std::vector<std::string> fingerprints;
    for (const auto& query : queries) {
      NDSS_ASSIGN_OR_RETURN(SearchResult result,
                            searcher.Search(query, options));
      std::string fp;
      for (const MatchSpan& span : result.spans) {
        fp += std::to_string(span.text) + ":" + std::to_string(span.begin) +
              "-" + std::to_string(span.end) + "/" +
              std::to_string(span.collisions) + ";";
      }
      fingerprints.push_back(std::move(fp));
    }
    return fingerprints;
  }

  /// One crash-sweep iteration: arm a crash at `crash_op`, run `build`, drop
  /// un-synced data, heal, and check the all-or-nothing invariant against
  /// `baseline`.
  void CheckCrashPoint(int64_t crash_op,
                       const std::function<Status(const std::string&)>& build,
                       const std::vector<std::string>& baseline) {
    SCOPED_TRACE("crash at op " + std::to_string(crash_op));
    const std::string sweep_dir = dir_ + "/sweep";
    std::filesystem::remove_all(sweep_dir);
    fault_->ResetOpCount();
    fault_->ArmCrashAtOp(crash_op);
    const Status status = build(sweep_dir);
    (void)status;  // usually fails; a swallowed late fault may not
    ASSERT_TRUE(fault_->DropUnsyncedData().ok());
    fault_->Heal();

    auto searcher = Searcher::Open(sweep_dir);
    if (!searcher.ok()) {
      ++failed_opens_;
      return;  // clean refusal is one of the two allowed outcomes
    }
    auto answers = RunQueries(*searcher, Queries());
    ASSERT_TRUE(answers.ok()) << answers.status().ToString();
    EXPECT_EQ(baseline, *answers);
  }

  std::string dir_;
  SyntheticCorpus sc_;
  IndexBuildOptions build_;
  std::unique_ptr<FaultInjectionEnv> fault_;
  int failed_opens_ = 0;
};

TEST_F(EnvFaultInjectionTest, CrashSweepInMemoryBuild) {
  // Uninterrupted counted run: measures the op budget and produces the
  // ground-truth answers.
  const std::string clean_dir = dir_ + "/clean";
  fault_->ResetOpCount();
  ASSERT_TRUE(BuildIndexInMemory(sc_.corpus, clean_dir, build_).ok());
  const int64_t total_ops = fault_->op_count();
  ASSERT_GT(total_ops, 20) << "suspiciously few ops; is the env wired in?";

  auto clean = Searcher::Open(clean_dir);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  auto baseline = RunQueries(*clean, Queries());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_FALSE(baseline->empty());

  const auto build = [&](const std::string& out) {
    return BuildIndexInMemory(sc_.corpus, out, build_).status();
  };
  for (int64_t op = 0; op < total_ops; ++op) {
    CheckCrashPoint(op, build, *baseline);
    if (HasFatalFailure()) return;
  }
  // Early crash points must leave nothing openable.
  EXPECT_GT(failed_opens_, 0);
}

TEST_F(EnvFaultInjectionTest, CrashSweepExternalBuild) {
  // Force the spill path: tiny memory budget and batches.
  build_.memory_budget_bytes = 1 << 16;
  build_.num_partitions = 4;
  build_.batch_tokens = 1 << 12;

  const std::string corpus_path = dir_ + "/corpus.ndc";
  ASSERT_TRUE(WriteCorpusFile(corpus_path, sc_.corpus).ok());

  const std::string clean_dir = dir_ + "/clean";
  fault_->ResetOpCount();
  ASSERT_TRUE(BuildIndexExternal(corpus_path, clean_dir, build_).ok());
  const int64_t total_ops = fault_->op_count();
  ASSERT_GT(total_ops, 20);

  auto clean = Searcher::Open(clean_dir);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  auto baseline = RunQueries(*clean, Queries());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  // The external build does hundreds of spill operations; a strided sweep
  // (always including the first and last 16 ops, which cover directory
  // setup and the meta/marker commit) keeps the test fast.
  const int64_t stride = std::max<int64_t>(1, total_ops / 96);
  const auto build = [&](const std::string& out) {
    return BuildIndexExternal(corpus_path, out, build_).status();
  };
  for (int64_t op = 0; op < total_ops; ++op) {
    if (op >= 16 && op < total_ops - 16 && op % stride != 0) continue;
    CheckCrashPoint(op, build, *baseline);
    if (HasFatalFailure()) return;
  }
  EXPECT_GT(failed_opens_, 0);
}

TEST_F(EnvFaultInjectionTest, CrashedEnvFailsEverythingUntilHealed) {
  fault_->ArmCrashAtOp(0);
  EXPECT_FALSE(WriteStringToFile(dir_ + "/x", "data").ok());
  EXPECT_FALSE(WriteStringToFile(dir_ + "/x", "data").ok());
  EXPECT_TRUE(fault_->crashed());
  // Existence probes stay usable (Searcher::Open consults the commit marker
  // through FileExists before any counted operation).
  EXPECT_FALSE(FileExists(dir_ + "/x"));
  fault_->Heal();
  EXPECT_TRUE(WriteStringToFile(dir_ + "/x", "data").ok());
}

TEST_F(EnvFaultInjectionTest, DropUnsyncedDataKeepsOnlySyncedPrefix) {
  const std::string path = dir_ + "/partial";
  {
    auto file = fault_->NewWritableFile(path, false);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("durable", 7).ok());
    ASSERT_TRUE((*file)->Sync().ok());
    ASSERT_TRUE((*file)->Append("-volatile", 9).ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  auto before = ReadFileToString(path);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ("durable-volatile", *before);

  ASSERT_TRUE(fault_->DropUnsyncedData().ok());
  auto after = ReadFileToString(path);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ("durable", *after);
}

TEST_F(EnvFaultInjectionTest, TruncateFileIsCountedAndClampsDurability) {
  const std::string path = dir_ + "/truncated";
  {
    auto file = fault_->NewWritableFile(path, false);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("0123456789", 10).ok());
    ASSERT_TRUE((*file)->Sync().ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  // TruncateFile routes through the fault machinery like any other op.
  fault_->FailAtOp(fault_->op_count());
  EXPECT_FALSE(fault_->TruncateFile(path, 4).ok());
  ASSERT_TRUE(fault_->TruncateFile(path, 4).ok());
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ("0123", *content);

  // The tracked durable size follows the truncation: a crash afterwards
  // must not resurrect the truncated-away synced bytes.
  ASSERT_TRUE(fault_->DropUnsyncedData().ok());
  content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ("0123", *content);
}

TEST_F(EnvFaultInjectionTest, FailFsyncFailsSyncWithoutAdvancingDurability) {
  const std::string path = dir_ + "/fsyncgate";
  auto file = fault_->NewWritableFile(path, false);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("acked", 5).ok());
  ASSERT_TRUE((*file)->Sync().ok());

  fault_->SetFailFsync(true);
  ASSERT_TRUE((*file)->Append("-lost", 5).ok());
  const Status synced = (*file)->Sync();
  EXPECT_TRUE(synced.IsIOError()) << synced.ToString();

  // The failed fsync did NOT advance the durable watermark: after a crash
  // only the previously synced prefix survives. (This models the kernel
  // dropping dirty pages on fsync failure — fsyncgate.)
  ASSERT_TRUE((*file)->Close().ok());
  file->reset();
  fault_->SetFailFsync(false);
  ASSERT_TRUE(fault_->DropUnsyncedData().ok());
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ("acked", *content);
}

TEST_F(EnvFaultInjectionTest, RenamePreservesSyncedState) {
  const std::string tmp = dir_ + "/f.tmp";
  {
    auto file = fault_->NewWritableFile(tmp, false);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("payload", 7).ok());
    ASSERT_TRUE((*file)->Sync().ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  ASSERT_TRUE(fault_->RenameFile(tmp, dir_ + "/f").ok());
  ASSERT_TRUE(fault_->DropUnsyncedData().ok());
  auto content = ReadFileToString(dir_ + "/f");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ("payload", *content);
}

// ---- probabilistic storms, path filters, fault budgets (chaos knobs) ----

/// One counted write sequence (open + append + close) against `path`.
Status TouchFile(Env* env, const std::string& path) {
  auto file = env->NewWritableFile(path, /*append=*/false);
  if (!file.ok()) return file.status();
  NDSS_RETURN_NOT_OK((*file)->Append("x", 1));
  return (*file)->Close();
}

TEST_F(EnvFaultInjectionTest, ProbabilisticFaultsAreSeededDeterministic) {
  auto run = [&](uint64_t seed) {
    fault_->Heal();
    fault_->SetFailProbability(0.5, seed);
    std::string pattern;
    for (int i = 0; i < 32; ++i) {
      pattern += TouchFile(fault_.get(),
                           dir_ + "/p" + std::to_string(i))
                     .ok()
                     ? 'o'
                     : 'x';
    }
    return pattern;
  };
  const std::string first = run(0x57081);
  EXPECT_EQ(first, run(0x57081)) << "same seed must replay the same storm";
  EXPECT_NE(first, run(0x1234)) << "different seed, different storm";
  EXPECT_NE(first.find('x'), std::string::npos) << "storm injected nothing";
  EXPECT_NE(first.find('o'), std::string::npos) << "storm failed everything";
}

TEST_F(EnvFaultInjectionTest, PathFilterRestrictsFaultsToOneShard) {
  ASSERT_TRUE(fault_->CreateDirectories(dir_ + "/a").ok());
  ASSERT_TRUE(fault_->CreateDirectories(dir_ + "/b").ok());
  fault_->SetFaultPathFilter(dir_ + "/a/");
  fault_->SetFailProbability(1.0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(
        TouchFile(fault_.get(), dir_ + "/a/f" + std::to_string(i)).ok());
    EXPECT_TRUE(
        TouchFile(fault_.get(), dir_ + "/b/f" + std::to_string(i)).ok());
  }
}

TEST_F(EnvFaultInjectionTest, FaultBudgetBoundsABurstThenDisarms) {
  fault_->SetFailProbability(1.0);
  fault_->SetFaultBudget(3);
  // Every op fails until exactly 3 faults have fired; afterwards the env
  // behaves normally without an explicit Heal.
  int failures = 0;
  for (int i = 0; i < 10 && failures < 3; ++i) {
    if (!TouchFile(fault_.get(), dir_ + "/burst").ok()) ++failures;
  }
  EXPECT_EQ(failures, 3);
  EXPECT_EQ(fault_->faults_injected(), 3);
  EXPECT_TRUE(TouchFile(fault_.get(), dir_ + "/after").ok());
  EXPECT_EQ(fault_->faults_injected(), 3);
}

TEST_F(EnvFaultInjectionTest, HealClearsChaosKnobs) {
  fault_->SetFailProbability(1.0);
  fault_->SetFaultPathFilter(dir_);
  fault_->SetFaultBudget(100);
  EXPECT_FALSE(TouchFile(fault_.get(), dir_ + "/pre").ok());
  fault_->Heal();
  EXPECT_TRUE(TouchFile(fault_.get(), dir_ + "/post").ok());
}

TEST_F(EnvFaultInjectionTest, RetryRecoversFromTransientFault) {
  fault_->SetFailOnce(true);
  fault_->FailAtOp(fault_->op_count());  // the very next operation fails once
  int attempts = 0;
  const Status status = RunWithRetry(RetryPolicy{}, [&] {
    ++attempts;
    return WriteStringToFile(dir_ + "/retry", "payload");
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(2, attempts);
  EXPECT_EQ(1, fault_->faults_injected());
  auto content = ReadFileToString(dir_ + "/retry");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ("payload", *content);
}

TEST_F(EnvFaultInjectionTest, RetryGivesUpAfterMaxAttempts) {
  int attempts = 0;
  const Status status = RunWithRetry(RetryPolicy{}, [&] {
    ++attempts;
    return Status::IOError("persistent");
  });
  EXPECT_TRUE(status.IsIOError());
  EXPECT_EQ(3, attempts);
}

TEST_F(EnvFaultInjectionTest, RetryDoesNotRetryCorruption) {
  int attempts = 0;
  const Status status = RunWithRetry(RetryPolicy{}, [&] {
    ++attempts;
    return Status::Corruption("deterministic");
  });
  EXPECT_TRUE(status.IsCorruption());
  EXPECT_EQ(1, attempts);
}

TEST_F(EnvFaultInjectionTest, ShortAppendsFailBuildAndLeaveNothingOpenable) {
  fault_->SetShortAppends(true);
  const std::string idx = dir_ + "/idx";
  EXPECT_FALSE(BuildIndexInMemory(sc_.corpus, idx, build_).ok());
  fault_->Heal();
  // The torn build never reached the commit marker.
  EXPECT_FALSE(Searcher::Open(idx).ok());
}

TEST_F(EnvFaultInjectionTest, CorruptedIndexAppendIsDetectedByChecksums) {
  // The first flushed buffer holds an entire inverted-index file (they are
  // far below the 1 MiB writer buffer); its middle byte lands in the
  // posting/zone/directory region, all of which is checksum-covered.
  const std::string idx = dir_ + "/idx";
  fault_->CorruptNextAppend();
  const auto build = BuildIndexInMemory(sc_.corpus, idx, build_);
  bool detected = !build.ok();
  if (!detected) {
    auto meta = IndexMeta::Load(idx);
    ASSERT_TRUE(meta.ok());
    for (uint32_t func = 0; func < meta->k && !detected; ++func) {
      auto reader =
          InvertedIndexReader::Open(IndexMeta::InvertedIndexPath(idx, func));
      if (!reader.ok()) {
        detected = true;
        break;
      }
      std::vector<PostedWindow> windows;
      for (const ListMeta& list : reader->directory()) {
        windows.clear();
        if (!reader->ReadList(list, &windows).ok()) {
          detected = true;
          break;
        }
      }
    }
  }
  EXPECT_TRUE(detected) << "a flipped bit survived every checksum";
}

TEST_F(EnvFaultInjectionTest, CorruptedAppendNeverYieldsSilentZoneProbes) {
  // Zone probes read only a slice of a list, so they cannot always verify
  // the full-list CRC. The contract after the probe hardening: a probe over
  // a corrupted file either (a) returns Corruption itself, (b) returns the
  // same windows as a clean index, or (c) differs — but then the full-list
  // read of that list MUST flag Corruption, so an fsck-style scan always
  // catches what a probe might miss. No fourth outcome.
  build_.zone_step = 4;
  build_.zone_threshold = 16;  // plenty of zoned lists at vocab 150

  const std::string clean_idx = dir_ + "/clean";
  ASSERT_TRUE(BuildIndexInMemory(sc_.corpus, clean_idx, build_).ok());

  const std::string idx = dir_ + "/idx";
  fault_->CorruptNextAppend();
  const auto build = BuildIndexInMemory(sc_.corpus, idx, build_);
  if (!build.ok()) return;  // flagged before publishing — fine

  auto meta = IndexMeta::Load(idx);
  ASSERT_TRUE(meta.ok());
  bool detected = false;
  size_t zoned_lists = 0;
  for (uint32_t func = 0; func < meta->k; ++func) {
    auto clean =
        InvertedIndexReader::Open(IndexMeta::InvertedIndexPath(clean_idx, func));
    ASSERT_TRUE(clean.ok()) << clean.status().ToString();
    auto dirty =
        InvertedIndexReader::Open(IndexMeta::InvertedIndexPath(idx, func));
    if (!dirty.ok()) {
      detected = true;
      continue;
    }
    for (const ListMeta& clean_list : clean->directory()) {
      const ListMeta* dirty_list = dirty->FindList(clean_list.key);
      if (dirty_list == nullptr || dirty_list->count != clean_list.count) {
        detected = true;  // directory drift is only reachable via corruption
        continue;
      }
      std::vector<PostedWindow> full;
      const bool full_read_corrupt =
          !dirty->ReadList(*dirty_list, &full).ok();
      detected = detected || full_read_corrupt;
      if (dirty_list->zone_count == 0) continue;
      ++zoned_lists;
      for (TextId text = 0; text < meta->num_texts; ++text) {
        std::vector<PostedWindow> expected, got;
        ASSERT_TRUE(
            clean->ReadWindowsForText(clean_list, text, &expected).ok());
        const Status probe =
            dirty->ReadWindowsForText(*dirty_list, text, &got);
        if (!probe.ok()) {
          EXPECT_TRUE(probe.IsCorruption()) << probe.ToString();
          detected = true;
          continue;
        }
        const bool same =
            got.size() == expected.size() &&
            std::equal(got.begin(), got.end(), expected.begin(),
                       [](const PostedWindow& a, const PostedWindow& b) {
                         return a.text == b.text && a.l == b.l &&
                                a.c == b.c && a.r == b.r;
                       });
        if (!same) {
          detected = true;
          EXPECT_TRUE(full_read_corrupt)
              << "silent probe divergence invisible to a full-list read "
                 "(func " << func << ", key " << clean_list.key
              << ", text " << text << ")";
        }
      }
    }
  }
  ASSERT_GT(zoned_lists, 0u) << "fixture produced no zoned lists";
  EXPECT_TRUE(detected) << "a flipped bit survived every checksum and probe";
}

// ---- positional-read routing (regression: query-path preads must consume
// ---- fault-injection ops like every other file operation) ----

TEST_F(EnvFaultInjectionTest, ReadAtCountsOpsAndHonorsFaults) {
  const std::string path = dir_ + "/blob";
  ASSERT_TRUE(WriteStringToFile(path, std::string(4096, 'x')).ok());
  auto reader = FileReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  char buf[64];
  const int64_t before = fault_->op_count();
  ASSERT_TRUE(reader->ReadAt(1000, buf, sizeof(buf)).ok());
  EXPECT_GT(fault_->op_count(), before)
      << "positional reads bypass the fault-injection env";

  fault_->SetFailOnce(true);
  fault_->FailAtOp(fault_->op_count());  // the very next pread fails once
  EXPECT_TRUE(reader->ReadAt(0, buf, sizeof(buf)).IsIOError());
  EXPECT_EQ(1, fault_->faults_injected());
  EXPECT_TRUE(reader->ReadAt(0, buf, sizeof(buf)).ok());  // disarmed
}

TEST_F(EnvFaultInjectionTest, ShortPositionalReadsSurfaceAsIOError) {
  const std::string path = dir_ + "/blob";
  ASSERT_TRUE(WriteStringToFile(path, std::string(4096, 'x')).ok());
  auto reader = FileReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  char buf[64];
  fault_->SetShortReads(true);
  const Status status = reader->ReadAt(0, buf, sizeof(buf));
  EXPECT_TRUE(status.IsIOError()) << status.ToString();
  EXPECT_NE(status.ToString().find("short read"), std::string::npos)
      << status.ToString();
  fault_->Heal();
  EXPECT_TRUE(reader->ReadAt(0, buf, sizeof(buf)).ok());
}

TEST_F(EnvFaultInjectionTest, QueryPreadsRouteThroughEnv) {
  const std::string idx = dir_ + "/idx";
  ASSERT_TRUE(BuildIndexInMemory(sc_.corpus, idx, build_).ok());

  auto searcher = Searcher::Open(idx);
  ASSERT_TRUE(searcher.ok()) << searcher.status().ToString();
  const auto queries = Queries();
  const int64_t before = fault_->op_count();
  auto baseline = RunQueries(*searcher, queries);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  EXPECT_GT(fault_->op_count(), before)
      << "query-path preads bypass the fault-injection env";

  // A fault armed on the next operation must surface through the query.
  fault_->SetFailOnce(true);
  fault_->FailAtOp(fault_->op_count());
  auto failed = RunQueries(*searcher, queries);
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsIOError()) << failed.status().ToString();
  EXPECT_EQ(1, fault_->faults_injected());

  // With the fault disarmed the same searcher answers again — and a read
  // retry policy rides out the transient fault without failing the query.
  auto healed = RunQueries(*searcher, queries);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_EQ(*baseline, *healed);

  fault_->SetFailOnce(true);
  fault_->FailAtOp(fault_->op_count());
  SearchOptions retrying;
  retrying.theta = 0.5;
  retrying.read_retry.max_attempts = 3;
  retrying.read_retry.initial_backoff_micros = 1;
  auto result = searcher->Search(queries[0], retrying);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(2, fault_->faults_injected());
}

TEST_F(EnvFaultInjectionTest, CorruptedCorpusAppendIsDetectedByChecksums) {
  const std::string path = dir_ + "/corpus.ndc";
  auto writer = CorpusFileWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->AppendCorpus(sc_.corpus).ok());
  // Everything is still in the writer buffer; the corrupted append is the
  // whole file image, so the flipped bit lands mid-records.
  fault_->CorruptNextAppend();
  ASSERT_TRUE(writer->Finish().ok());

  auto reader = CorpusFileReader::Open(path);
  bool detected = !reader.ok();
  if (!detected) {
    auto all = reader->ReadAll();
    detected = !all.ok();
  }
  EXPECT_TRUE(detected) << "a flipped bit survived every corpus checksum";
}

}  // namespace
}  // namespace ndss
