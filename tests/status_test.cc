#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace ndss {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_EQ(Status::Internal("boom").message(), "boom");
  EXPECT_FALSE(Status::Internal("boom").ok());
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::IOError("disk on fire").ToString(),
            "IOError: disk on fire");
  EXPECT_EQ(Status::Corruption("bad magic").ToString(),
            "Corruption: bad magic");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(StatusTest, CodeToStringCoversAllCodes) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "ResourceExhausted");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "Unimplemented");
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Propagates(int x) {
  NDSS_RETURN_NOT_OK(FailsWhenNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Propagates(1).ok());
  EXPECT_TRUE(Propagates(-1).IsInvalidArgument());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(9));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 9);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterEven(int x) {
  NDSS_ASSIGN_OR_RETURN(int half, HalveEven(x));
  return HalveEven(half);
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = QuarterEven(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  EXPECT_FALSE(QuarterEven(6).ok());  // 6/2=3 is odd at second step
  EXPECT_FALSE(QuarterEven(3).ok());
}

}  // namespace
}  // namespace ndss
