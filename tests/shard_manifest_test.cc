#include "shard/shard_manifest.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/file_io.h"
#include "index/index_merger.h"

namespace ndss {
namespace {

class ShardManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ndss_manifest_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    ASSERT_TRUE(CreateDirectories(dir_).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Flips one byte of the manifest at `offset`.
  void FlipByte(uint64_t offset) {
    const std::string path = ShardManifest::Path(dir_);
    auto data = ReadFileToString(path);
    ASSERT_TRUE(data.ok());
    ASSERT_LT(offset, data->size());
    (*data)[offset] ^= 0x5a;
    ASSERT_TRUE(WriteStringToFile(path, *data).ok());
  }

  std::string dir_;
};

TEST_F(ShardManifestTest, RoundTrip) {
  ShardManifest manifest;
  manifest.epoch = 42;
  manifest.shard_dirs = {"shards/s0", "/abs/s1", "shards/s2"};
  ASSERT_TRUE(manifest.Save(dir_).ok());

  auto loaded = ShardManifest::Load(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->epoch, 42u);
  EXPECT_EQ(loaded->shard_dirs, manifest.shard_dirs);
}

TEST_F(ShardManifestTest, SaveIsAtomicReplace) {
  ShardManifest manifest;
  manifest.epoch = 1;
  manifest.shard_dirs = {"a"};
  ASSERT_TRUE(manifest.Save(dir_).ok());
  manifest.epoch = 2;
  manifest.shard_dirs = {"a", "b"};
  ASSERT_TRUE(manifest.Save(dir_).ok());

  auto loaded = ShardManifest::Load(dir_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->epoch, 2u);
  EXPECT_EQ(loaded->shard_dirs.size(), 2u);
}

TEST_F(ShardManifestTest, RejectsEmptyAndDuplicateShardLists) {
  ShardManifest manifest;
  auto empty = manifest.Save(dir_);
  EXPECT_TRUE(empty.IsInvalidArgument()) << empty.ToString();

  manifest.shard_dirs = {"s0", "s1", "s0"};
  auto duplicate = manifest.Save(dir_);
  EXPECT_TRUE(duplicate.IsInvalidArgument()) << duplicate.ToString();

  // Paths that normalize to the same directory are duplicates too.
  manifest.shard_dirs = {"s0", "./s0"};
  EXPECT_TRUE(manifest.Save(dir_).IsInvalidArgument());
}

TEST_F(ShardManifestTest, MissingManifestIsNotFoundOrIOError) {
  auto loaded = ShardManifest::Load(dir_ + "/nonexistent");
  EXPECT_FALSE(loaded.ok());
  EXPECT_FALSE(loaded.status().IsCorruption());
}

TEST_F(ShardManifestTest, CorruptionDetectedAtEveryByte) {
  ShardManifest manifest;
  manifest.epoch = 7;
  manifest.shard_dirs = {"s0", "s1"};
  ASSERT_TRUE(manifest.Save(dir_).ok());
  auto size = FileSize(ShardManifest::Path(dir_));
  ASSERT_TRUE(size.ok());

  for (uint64_t offset = 0; offset < *size; ++offset) {
    FlipByte(offset);
    auto loaded = ShardManifest::Load(dir_);
    EXPECT_FALSE(loaded.ok()) << "flip at byte " << offset << " undetected";
    FlipByte(offset);  // restore
  }
  EXPECT_TRUE(ShardManifest::Load(dir_).ok());
}

TEST_F(ShardManifestTest, TruncationDetectedAtEveryLength) {
  ShardManifest manifest;
  manifest.epoch = 3;
  manifest.shard_dirs = {"s0"};
  ASSERT_TRUE(manifest.Save(dir_).ok());
  const std::string path = ShardManifest::Path(dir_);
  auto data = ReadFileToString(path);
  ASSERT_TRUE(data.ok());

  for (size_t keep = 0; keep < data->size(); ++keep) {
    ASSERT_TRUE(WriteStringToFile(path, data->substr(0, keep)).ok());
    auto loaded = ShardManifest::Load(dir_);
    EXPECT_FALSE(loaded.ok()) << "truncation to " << keep << " undetected";
  }
}

TEST_F(ShardManifestTest, AppliedSeqnoRoundTrip) {
  ShardManifest manifest;
  manifest.epoch = 7;
  manifest.applied_seqno = 123456789012345ull;
  manifest.shard_dirs = {"genesis", "delta-1"};
  ASSERT_TRUE(manifest.Save(dir_).ok());

  auto loaded = ShardManifest::Load(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->applied_seqno, 123456789012345ull);
  EXPECT_EQ(loaded->epoch, 7u);
  EXPECT_EQ(loaded->shard_dirs, manifest.shard_dirs);
}

TEST_F(ShardManifestTest, LegacyV1ManifestLoadsWithZeroAppliedSeqno) {
  // Hand-encode the pre-ingestion format: magic, epoch, num_shards,
  // length-prefixed dirs, masked CRC — no applied_seqno field.
  constexpr uint64_t kManifestMagicV1 = 0x32494e414d53444eULL;
  std::string data;
  PutFixed64(&data, kManifestMagicV1);
  PutFixed64(&data, 9);  // epoch
  PutFixed32(&data, 2);  // num_shards
  for (const std::string& dir : {std::string("s0"), std::string("s1")}) {
    PutFixed32(&data, static_cast<uint32_t>(dir.size()));
    data.append(dir);
  }
  PutFixed32(&data, crc32c::Mask(crc32c::Value(data.data(), data.size())));
  ASSERT_TRUE(WriteStringToFile(ShardManifest::Path(dir_), data).ok());

  auto loaded = ShardManifest::Load(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->epoch, 9u);
  EXPECT_EQ(loaded->applied_seqno, 0u);
  EXPECT_EQ(loaded->shard_dirs,
            (std::vector<std::string>{"s0", "s1"}));

  // Save always writes the current format: the round-trip upgrades it.
  ASSERT_TRUE(loaded->Save(dir_).ok());
  auto upgraded = ShardManifest::Load(dir_);
  ASSERT_TRUE(upgraded.ok());
  EXPECT_EQ(upgraded->epoch, 9u);
  EXPECT_EQ(upgraded->applied_seqno, 0u);
}

TEST_F(ShardManifestTest, ResolveShardDir) {
  EXPECT_EQ(ResolveShardDir("/set", "shards/s0"), "/set/shards/s0");
  EXPECT_EQ(ResolveShardDir("/set", "/abs/s1"), "/abs/s1");
}

TEST_F(ShardManifestTest, ValidateShardDirsUnit) {
  EXPECT_TRUE(ValidateShardDirs({}).IsInvalidArgument());
  EXPECT_TRUE(ValidateShardDirs({"a", "b"}).ok());
  EXPECT_TRUE(ValidateShardDirs({"a", "a"}).IsInvalidArgument());
  // Lexical normalization: trailing slash and ./ spellings collide.
  EXPECT_TRUE(ValidateShardDirs({"a/", "a"}).IsInvalidArgument());
  EXPECT_TRUE(ValidateShardDirs({"x/./a", "x/a"}).IsInvalidArgument());
}

}  // namespace
}  // namespace ndss
