#include "index/memory_index.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "corpusgen/synthetic.h"
#include "index/index_builder.h"
#include "query/searcher.h"

namespace ndss {
namespace {

SyntheticCorpus SmallCorpus() {
  SyntheticCorpusOptions options;
  options.num_texts = 60;
  options.min_text_length = 50;
  options.max_text_length = 120;
  options.vocab_size = 300;
  options.plant_rate = 0.4;
  options.seed = 41;
  return GenerateSyntheticCorpus(options);
}

TEST(InMemoryIndexTest, WindowCountMatchesDiskBuild) {
  SyntheticCorpus sc = SmallCorpus();
  HashFamily family(4, 0x5eed5eed5eed5eedULL);
  uint64_t total = 0;
  for (uint32_t func = 0; func < 4; ++func) {
    InMemoryInvertedIndex index(sc.corpus, family, func, 20);
    total += index.num_windows();
  }
  const std::string dir = ::testing::TempDir() + "/ndss_memidx_cmp";
  std::filesystem::remove_all(dir);
  IndexBuildOptions build;
  build.k = 4;
  build.t = 20;
  auto stats = BuildIndexInMemory(sc.corpus, dir, build);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(total, stats->num_windows);
  std::filesystem::remove_all(dir);
}

TEST(InMemoryIndexTest, PointLookupMatchesFullList) {
  SyntheticCorpus sc = SmallCorpus();
  HashFamily family(1, 7);
  InMemoryInvertedIndex index(sc.corpus, family, 0, 10);
  ASSERT_FALSE(index.directory().empty());
  for (const ListMeta& meta : index.directory()) {
    std::vector<PostedWindow> full;
    ASSERT_TRUE(index.ReadList(meta, &full).ok());
    ASSERT_EQ(full.size(), meta.count);
    // Probe a few texts present and one absent.
    std::vector<PostedWindow> probed;
    ASSERT_TRUE(index.ReadWindowsForText(meta, full.front().text,
                                         &probed).ok());
    ASSERT_FALSE(probed.empty());
    for (const PostedWindow& w : probed) {
      EXPECT_EQ(w.text, full.front().text);
    }
    probed.clear();
    ASSERT_TRUE(index.ReadWindowsForText(meta, 999999, &probed).ok());
    EXPECT_TRUE(probed.empty());
    break;  // one list is representative; the loop guards emptiness
  }
}

TEST(InMemoryIndexTest, SearcherInMemoryMatchesDiskSearcher) {
  SyntheticCorpus sc = SmallCorpus();
  IndexBuildOptions build;
  build.k = 6;
  build.t = 15;
  const std::string dir = ::testing::TempDir() + "/ndss_memidx_search";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(BuildIndexInMemory(sc.corpus, dir, build).ok());
  auto disk = Searcher::Open(dir);
  auto memory = Searcher::InMemory(sc.corpus, build);
  ASSERT_TRUE(disk.ok() && memory.ok());

  Rng rng(3);
  for (int q = 0; q < 8; ++q) {
    const TextId source = static_cast<TextId>(rng.Uniform(60));
    const auto text = sc.corpus.text(source);
    const uint32_t length =
        std::min<uint32_t>(30, static_cast<uint32_t>(text.size()));
    const std::vector<Token> query =
        PerturbSequence(text, 0, length, 0.1, 300, rng);
    for (double theta : {0.5, 0.8, 1.0}) {
      SearchOptions options;
      options.theta = theta;
      options.use_prefix_filter = false;
      auto a = disk->Search(query, options);
      auto b = memory->Search(query, options);
      ASSERT_TRUE(a.ok() && b.ok());
      ASSERT_EQ(a->rectangles.size(), b->rectangles.size())
          << "q=" << q << " theta=" << theta;
      for (size_t i = 0; i < a->rectangles.size(); ++i) {
        EXPECT_EQ(a->rectangles[i].text, b->rectangles[i].text);
        EXPECT_EQ(a->rectangles[i].rect.collisions,
                  b->rectangles[i].rect.collisions);
        EXPECT_EQ(a->rectangles[i].rect.x_begin,
                  b->rectangles[i].rect.x_begin);
        EXPECT_EQ(a->rectangles[i].rect.y_end, b->rectangles[i].rect.y_end);
      }
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(InMemoryIndexTest, PrefixFilterPathWorksInMemory) {
  SyntheticCorpus sc = SmallCorpus();
  IndexBuildOptions build;
  build.k = 8;
  build.t = 15;
  auto searcher = Searcher::InMemory(sc.corpus, build);
  ASSERT_TRUE(searcher.ok());
  const auto text = sc.corpus.text(0);
  const std::vector<Token> query(text.begin(), text.begin() + 30);
  SearchOptions with_filter;
  with_filter.theta = 0.6;
  with_filter.use_prefix_filter = true;
  with_filter.long_list_threshold = 8;  // force the two-pass path
  SearchOptions without_filter = with_filter;
  without_filter.use_prefix_filter = false;
  auto a = searcher->Search(query, with_filter);
  auto b = searcher->Search(query, without_filter);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->rectangles.size(), b->rectangles.size());
}

TEST(InMemoryIndexTest, InvalidOptionsRejected) {
  Corpus corpus;
  IndexBuildOptions build;
  build.k = 0;
  EXPECT_FALSE(Searcher::InMemory(corpus, build).ok());
  build.k = 4;
  build.t = 0;
  EXPECT_FALSE(Searcher::InMemory(corpus, build).ok());
}

}  // namespace
}  // namespace ndss
