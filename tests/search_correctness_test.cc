// End-to-end validation of Theorem 2: the index-based search (Algorithm 3)
// is sound and complete with respect to Definition 2, verified against a
// brute-force scan that evaluates the definition directly.

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <tuple>
#include <vector>

#include "baseline/brute_force.h"
#include "corpusgen/synthetic.h"
#include "hash/hash_family.h"
#include "index/index_builder.h"
#include "query/searcher.h"

namespace ndss {
namespace {

using SequenceKey = std::tuple<TextId, uint32_t, uint32_t>;

std::set<SequenceKey> ExpandRectangles(
    const std::vector<TextMatchRectangle>& rectangles, uint32_t t) {
  std::set<SequenceKey> sequences;
  for (const TextMatchRectangle& tr : rectangles) {
    for (uint32_t i = tr.rect.x_begin; i <= tr.rect.x_end; ++i) {
      for (uint32_t j = tr.rect.y_begin; j <= tr.rect.y_end; ++j) {
        if (j >= i && j - i + 1 >= t) {
          sequences.insert({tr.text, i, j});
        }
      }
    }
  }
  return sequences;
}

std::set<SequenceKey> BaselineSequences(
    const std::vector<BaselineMatch>& matches) {
  std::set<SequenceKey> sequences;
  for (const BaselineMatch& m : matches) {
    sequences.insert({m.text, m.begin, m.end});
  }
  return sequences;
}

class SearchCorrectnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ndss_correct_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(SearchCorrectnessTest, MatchesBruteForceAcrossThetas) {
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 60;
  corpus_options.min_text_length = 40;
  corpus_options.max_text_length = 120;
  corpus_options.vocab_size = 200;  // small vocab → plenty of collisions
  corpus_options.plant_rate = 0.4;
  corpus_options.min_plant_length = 25;
  corpus_options.max_plant_length = 50;
  corpus_options.plant_noise = 0.1;
  corpus_options.seed = 31;
  SyntheticCorpus sc = GenerateSyntheticCorpus(corpus_options);

  IndexBuildOptions build;
  build.k = 6;
  build.t = 15;
  build.zone_step = 8;
  build.zone_threshold = 32;
  ASSERT_TRUE(BuildIndexInMemory(sc.corpus, dir_, build).ok());
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok()) << searcher.status().ToString();
  HashFamily family(build.k, build.seed);

  Rng rng(7);
  for (int q = 0; q < 6; ++q) {
    // Queries are perturbed spans of corpus texts, so near-duplicates exist.
    const TextId source = static_cast<TextId>(rng.Uniform(60));
    const auto text = sc.corpus.text(source);
    const uint32_t length =
        20 + static_cast<uint32_t>(rng.Uniform(std::min<size_t>(
                 40, text.size() - 20)));
    const uint32_t begin =
        static_cast<uint32_t>(rng.Uniform(text.size() - length + 1));
    const std::vector<Token> query = PerturbSequence(
        text, begin, length, 0.15, corpus_options.vocab_size, rng);

    for (double theta : {0.5, 0.7, 0.9, 1.0}) {
      SearchOptions options;
      options.theta = theta;
      options.use_prefix_filter = false;
      auto result = searcher->Search(query, options);
      ASSERT_TRUE(result.ok()) << result.status().ToString();

      const std::set<SequenceKey> got =
          ExpandRectangles(result->rectangles, build.t);
      const std::set<SequenceKey> expected = BaselineSequences(
          BruteForceApproxSearch(sc.corpus, family, query, theta, build.t));
      ASSERT_EQ(got, expected)
          << "query " << q << " theta " << theta << ": got " << got.size()
          << " sequences, brute force found " << expected.size();
    }
  }
}

TEST_F(SearchCorrectnessTest, PrefixFilterDoesNotChangeResults) {
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 80;
  corpus_options.min_text_length = 50;
  corpus_options.max_text_length = 150;
  corpus_options.vocab_size = 150;  // skewed, frequent tokens → long lists
  corpus_options.zipf_exponent = 1.2;
  corpus_options.plant_rate = 0.4;
  corpus_options.seed = 77;
  SyntheticCorpus sc = GenerateSyntheticCorpus(corpus_options);

  IndexBuildOptions build;
  build.k = 8;
  build.t = 20;
  build.zone_step = 8;
  build.zone_threshold = 16;
  ASSERT_TRUE(BuildIndexInMemory(sc.corpus, dir_, build).ok());
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());

  Rng rng(5);
  for (int q = 0; q < 8; ++q) {
    const TextId source = static_cast<TextId>(rng.Uniform(80));
    const auto text = sc.corpus.text(source);
    const uint32_t length = std::min<uint32_t>(
        40, static_cast<uint32_t>(text.size()));
    const uint32_t begin =
        static_cast<uint32_t>(rng.Uniform(text.size() - length + 1));
    const std::vector<Token> query =
        PerturbSequence(text, begin, length, 0.1, 150, rng);

    for (double theta : {0.6, 0.8}) {
      SearchOptions with_filter;
      with_filter.theta = theta;
      with_filter.use_prefix_filter = true;
      with_filter.long_list_threshold = 64;  // aggressively long
      SearchOptions without_filter = with_filter;
      without_filter.use_prefix_filter = false;

      auto filtered = searcher->Search(query, with_filter);
      auto unfiltered = searcher->Search(query, without_filter);
      ASSERT_TRUE(filtered.ok() && unfiltered.ok());
      EXPECT_EQ(ExpandRectangles(filtered->rectangles, build.t),
                ExpandRectangles(unfiltered->rectangles, build.t))
          << "query " << q << " theta " << theta;
    }
  }
}

TEST_F(SearchCorrectnessTest, ReportedCollisionCountsAreExact) {
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 30;
  corpus_options.min_text_length = 40;
  corpus_options.max_text_length = 80;
  corpus_options.vocab_size = 100;
  corpus_options.plant_rate = 0.5;
  corpus_options.seed = 13;
  SyntheticCorpus sc = GenerateSyntheticCorpus(corpus_options);

  IndexBuildOptions build;
  build.k = 5;
  build.t = 12;
  ASSERT_TRUE(BuildIndexInMemory(sc.corpus, dir_, build).ok());
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());
  HashFamily family(build.k, build.seed);

  const auto text0 = sc.corpus.text(0);
  const std::vector<Token> query(text0.begin(),
                                 text0.begin() + std::min<size_t>(
                                     30, text0.size()));
  SearchOptions options;
  options.theta = 0.4;
  options.use_prefix_filter = false;
  auto result = searcher->Search(query, options);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->rectangles.empty());

  const MinHashSketch query_sketch =
      ComputeSketch(family, query.data(), query.size());
  for (const TextMatchRectangle& tr : result->rectangles) {
    // Verify the corner sequence's collision count directly. Only corners
    // of length >= t carry the guarantee: shorter sequences may have extra
    // min-hash collisions through windows narrower than t, which are never
    // generated (Definition 2 excludes those sequences anyway).
    const auto text = sc.corpus.text_by_id(tr.text);
    const uint32_t i = tr.rect.x_begin;
    const uint32_t j = tr.rect.y_end;
    if (j - i + 1 < build.t) continue;
    const MinHashSketch seq_sketch =
        ComputeSketch(family, text.data() + i, j - i + 1);
    uint32_t collisions = 0;
    for (uint32_t f = 0; f < build.k; ++f) {
      if (seq_sketch.min_hashes[f] == query_sketch.min_hashes[f]) {
        ++collisions;
      }
    }
    EXPECT_EQ(collisions, tr.rect.collisions)
        << "text " << tr.text << " seq [" << i << "," << j << "]";
  }
}

}  // namespace
}  // namespace ndss
