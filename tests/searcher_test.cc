#include "query/searcher.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <vector>

#include "corpusgen/synthetic.h"
#include "index/index_builder.h"
#include "index/index_meta.h"
#include "index/inverted_index_reader.h"

namespace ndss {
namespace {

class SearcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ndss_searcher_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Builds a deterministic corpus with text 3 containing an exact copy of
  /// text 0's tokens [10, 49].
  void BuildFixture(uint32_t k = 8, uint32_t t = 20) {
    SyntheticCorpusOptions options;
    options.num_texts = 50;
    options.min_text_length = 80;
    options.max_text_length = 160;
    options.vocab_size = 5000;
    options.plant_rate = 0.0;
    options.seed = 99;
    sc_ = GenerateSyntheticCorpus(options);

    // Overwrite text 3 with an exact copy of part of text 0 in the middle.
    Corpus patched;
    for (size_t i = 0; i < sc_.corpus.num_texts(); ++i) {
      if (i == 3) {
        std::vector<Token> text(sc_.corpus.text(3).begin(),
                                sc_.corpus.text(3).end());
        const auto source = sc_.corpus.text(0);
        for (uint32_t p = 0; p < 40; ++p) text[20 + p] = source[10 + p];
        patched.AddText(text);
      } else {
        patched.AddText(sc_.corpus.text(i));
      }
    }
    sc_.corpus = std::move(patched);

    IndexBuildOptions build;
    build.k = k;
    build.t = t;
    ASSERT_TRUE(BuildIndexInMemory(sc_.corpus, dir_, build).ok());
  }

  std::string dir_;
  SyntheticCorpus sc_;
};

TEST_F(SearcherTest, OpenMissingIndexFails) {
  EXPECT_FALSE(Searcher::Open(dir_ + "/nonexistent").ok());
}

TEST_F(SearcherTest, MetaRoundTrips) {
  BuildFixture(8, 20);
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());
  EXPECT_EQ(searcher->meta().k, 8u);
  EXPECT_EQ(searcher->meta().t, 20u);
  EXPECT_EQ(searcher->meta().num_texts, 50u);
}

TEST_F(SearcherTest, FindsExactCopyAtThetaOne) {
  BuildFixture();
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());
  // Query = the 40 copied tokens.
  const auto source = sc_.corpus.text(0);
  const std::vector<Token> query(source.begin() + 10, source.begin() + 50);

  SearchOptions options;
  options.theta = 1.0;
  auto result = searcher->Search(query, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  bool found_text0 = false, found_text3 = false;
  for (const MatchSpan& span : result->spans) {
    if (span.text == 0 && span.begin <= 10 && span.end >= 49) {
      found_text0 = true;
    }
    if (span.text == 3 && span.begin <= 20 && span.end >= 59) {
      found_text3 = true;
    }
    EXPECT_DOUBLE_EQ(span.estimated_similarity, 1.0);
  }
  EXPECT_TRUE(found_text0) << "source span must be found";
  EXPECT_TRUE(found_text3) << "planted copy must be found";
}

TEST_F(SearcherTest, UnrelatedQueryFindsNothingAtHighTheta) {
  BuildFixture();
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());
  // Tokens far outside the corpus vocabulary.
  std::vector<Token> query;
  for (Token t = 1000000; t < 1000040; ++t) query.push_back(t);
  SearchOptions options;
  options.theta = 0.5;
  auto result = searcher->Search(query, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rectangles.empty());
  EXPECT_TRUE(result->spans.empty());
  EXPECT_EQ(result->stats.empty_lists, searcher->meta().k);
}

TEST_F(SearcherTest, LowerThetaFindsAtLeastAsMuch) {
  BuildFixture();
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());
  const auto source = sc_.corpus.text(0);
  const std::vector<Token> query(source.begin() + 10, source.begin() + 50);
  size_t previous = 0;
  for (double theta : {1.0, 0.8, 0.6, 0.4}) {
    SearchOptions options;
    options.theta = theta;
    auto result = searcher->Search(query, options);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->rectangles.size(), previous) << "theta " << theta;
    previous = result->rectangles.size();
  }
}

TEST_F(SearcherTest, InvalidInputsRejected) {
  BuildFixture();
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());
  SearchOptions options;
  EXPECT_TRUE(searcher->Search({}, options).status().IsInvalidArgument());
  std::vector<Token> query = {1, 2, 3};
  options.theta = 0.0;
  EXPECT_TRUE(
      searcher->Search(query, options).status().IsInvalidArgument());
  options.theta = 1.5;
  EXPECT_TRUE(
      searcher->Search(query, options).status().IsInvalidArgument());
}

TEST_F(SearcherTest, MergedSpansAreDisjointAndOrdered) {
  BuildFixture();
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());
  const auto source = sc_.corpus.text(0);
  const std::vector<Token> query(source.begin(), source.begin() + 60);
  SearchOptions options;
  options.theta = 0.4;
  auto result = searcher->Search(query, options);
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->spans.size(); ++i) {
    const MatchSpan& prev = result->spans[i - 1];
    const MatchSpan& cur = result->spans[i];
    if (prev.text == cur.text) {
      EXPECT_GT(cur.begin, prev.end + 1)
          << "spans must be disjoint and non-adjacent after merging";
    } else {
      EXPECT_LT(prev.text, cur.text);
    }
  }
  for (const MatchSpan& span : result->spans) {
    EXPECT_GE(span.end - span.begin + 1, searcher->meta().t);
    EXPECT_GE(span.collisions, 1u);
    EXPECT_LE(span.estimated_similarity, 1.0);
  }
}

TEST_F(SearcherTest, StatsArePopulated) {
  BuildFixture();
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());
  const auto source = sc_.corpus.text(0);
  const std::vector<Token> query(source.begin() + 10, source.begin() + 50);
  SearchOptions options;
  options.theta = 0.8;
  auto result = searcher->Search(query, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.io_bytes, 0u);
  EXPECT_EQ(result->stats.short_lists + result->stats.long_lists +
                result->stats.empty_lists,
            searcher->meta().k);
  EXPECT_GT(result->stats.windows_scanned, 0u);
}

TEST_F(SearcherTest, ListCountPercentileMonotone) {
  BuildFixture();
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());
  const uint64_t p5 = searcher->ListCountPercentile(0.05);
  const uint64_t p20 = searcher->ListCountPercentile(0.20);
  EXPECT_GE(p5, p20) << "classifying more lists long lowers the threshold";
}

TEST_F(SearcherTest, ListCountPercentileWeightsByWindows) {
  BuildFixture();
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());

  // Gather every list's window count straight from the index files.
  std::vector<uint64_t> counts;
  uint64_t total_windows = 0;
  for (uint32_t f = 0; f < searcher->meta().k; ++f) {
    auto reader =
        InvertedIndexReader::Open(IndexMeta::InvertedIndexPath(dir_, f));
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    for (const ListMeta& meta : reader->directory()) {
      counts.push_back(meta.count);
      total_windows += meta.count;
    }
  }
  ASSERT_GT(total_windows, 0u);
  // The Zipfian fixture must actually have skew, or the test is vacuous.
  ASSERT_GT(*std::max_element(counts.begin(), counts.end()), 1u);

  // Brute force: the percentile is the smallest threshold T (either 0 or
  // one of the observed counts) such that the windows living in lists
  // strictly longer than T are at most fraction * total. The old
  // implementation ranked by list count alone, which under Zipfian skew
  // puts far more than `fraction` of the windows in the long class.
  std::vector<uint64_t> candidates = counts;
  candidates.push_back(0);
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  for (double fraction : {0.0, 0.05, 0.2, 0.5, 1.0}) {
    uint64_t expected = 0;
    for (uint64_t t : candidates) {
      uint64_t above = 0;
      for (uint64_t c : counts) {
        if (c > t) above += c;
      }
      if (static_cast<double>(above) <=
          fraction * static_cast<double>(total_windows)) {
        expected = t;
        break;
      }
    }
    EXPECT_EQ(searcher->ListCountPercentile(fraction), expected)
        << "fraction " << fraction;
  }
}

TEST_F(SearcherTest, MergeCanBeDisabled) {
  BuildFixture();
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());
  const auto source = sc_.corpus.text(0);
  const std::vector<Token> query(source.begin() + 10, source.begin() + 50);
  SearchOptions options;
  options.theta = 0.9;
  options.merge_matches = false;
  auto result = searcher->Search(query, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->rectangles.empty());
  EXPECT_TRUE(result->spans.empty());
}

TEST(MergeRectanglesTest, MergesOverlapsKeepsBestCollisions) {
  std::vector<TextMatchRectangle> rects = {
      {1, {0, 2, 10, 15, 3}},
      {1, {3, 5, 12, 20, 5}},   // overlaps [0,15] via span [3,20]
      {1, {40, 41, 50, 60, 2}},  // separate span
      {2, {0, 0, 30, 30, 4}},
  };
  auto spans = MergeRectangles(rects, 5, 8);
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].text, 1u);
  EXPECT_EQ(spans[0].begin, 0u);
  EXPECT_EQ(spans[0].end, 20u);
  EXPECT_EQ(spans[0].collisions, 5u);
  EXPECT_EQ(spans[1].text, 1u);
  EXPECT_EQ(spans[1].begin, 40u);
  EXPECT_EQ(spans[1].end, 60u);
  EXPECT_EQ(spans[2].text, 2u);
}

TEST(MergeRectanglesTest, DropsTooShortRectangles) {
  std::vector<TextMatchRectangle> rects = {
      {1, {0, 0, 2, 3, 2}},  // longest sequence is 4 tokens
  };
  EXPECT_TRUE(MergeRectangles(rects, 5, 8).empty());
  EXPECT_EQ(MergeRectangles(rects, 4, 8).size(), 1u);
}

}  // namespace
}  // namespace ndss
