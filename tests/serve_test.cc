// End-to-end tests of the ndss_serve stack over real sockets: HttpServer +
// SearchService on an ephemeral port against a small sharded index.
//
// The load-bearing claims:
//   - answers over HTTP are bit-identical to the direct ShardedSearcher
//     (serialized through the same JSON path on both sides);
//   - governance maps onto the wire: a tiny deadline is a 504 carrying the
//     partial stats, the inflight limit is a deterministic 429, a faulty
//     shard degrades answers (200 + degraded_shards) and its health shows
//     in /v1/shards, then heals back to exact;
//   - malformed requests are loud 400s, never silently-zero fields;
//   - concurrent clients race safely with online attach/detach (the TSan
//     suite runs this file).

#include "net/serve.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/fault_injection_env.h"
#include "common/file_io.h"
#include "corpusgen/synthetic.h"
#include "index/index_builder.h"
#include "ingest/ingester.h"
#include "net/http.h"
#include "net/json.h"
#include "query/searcher.h"
#include "shard/shard_manifest.h"
#include "shard/sharded_searcher.h"

namespace ndss {
namespace {

using net::HttpClient;
using net::HttpRequest;
using net::HttpResponse;
using net::HttpServer;
using net::HttpServerOptions;
using net::JsonValue;
using net::ParseJson;
using net::SearchService;
using net::ServeOptions;

/// Canonical serialization of an answer's content (spans + rectangles, not
/// stats — stats carry wall-clock times). Both the server and this helper
/// go through net::SearchResultToJson, so equality is bit-identity.
std::string AnswerKey(const JsonValue& object) {
  const JsonValue* spans = object.Find("spans");
  const JsonValue* rectangles = object.Find("rectangles");
  return (spans != nullptr ? spans->Dump() : "") + "|" +
         (rectangles != nullptr ? rectangles->Dump() : "");
}

std::string AnswerKey(const SearchResult& result) {
  JsonValue object = JsonValue::Object();
  net::SearchResultToJson(result, &object);
  return AnswerKey(object);
}

std::string SearchBody(const std::vector<Token>& query, double theta,
                       double deadline_ms = 0, double sleep_ms = 0) {
  JsonValue tokens = JsonValue::Array();
  for (Token token : query) {
    tokens.Append(JsonValue::Number(static_cast<uint64_t>(token)));
  }
  JsonValue body = JsonValue::Object();
  body.Set("tokens", std::move(tokens));
  body.Set("theta", JsonValue::Number(theta));
  if (deadline_ms > 0) {
    body.Set("deadline_ms", JsonValue::Number(deadline_ms));
  }
  if (sleep_ms > 0) {
    body.Set("debug_sleep_ms", JsonValue::Number(sleep_ms));
  }
  return body.Dump();
}

/// Number field of a (nested) response object, or -1.
double NumberField(const JsonValue& object, const std::string& key) {
  const JsonValue* field = object.Find(key);
  return field != nullptr && field->is_number() ? field->number() : -1;
}

class ServeTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kNumTexts = 160;
  static constexpr uint32_t kShardTexts = 40;  // 3 serving + 1 spare shard

  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ndss_serve_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    ASSERT_TRUE(CreateDirectories(dir_).ok());

    SyntheticCorpusOptions corpus_options;
    corpus_options.num_texts = kNumTexts;
    corpus_options.vocab_size = 400;
    corpus_options.plant_rate = 0.35;
    corpus_options.seed = 91;
    sc_ = GenerateSyntheticCorpus(corpus_options);

    build_.k = 5;
    build_.t = 20;
    for (uint32_t s = 0; s < 4; ++s) {
      Corpus shard;
      for (uint32_t i = s * kShardTexts; i < (s + 1) * kShardTexts; ++i) {
        shard.AddText(sc_.corpus.text(i));
      }
      ASSERT_TRUE(BuildIndexInMemory(shard, ShardDir(s), build_).ok());
    }
    ShardManifest manifest;
    manifest.shard_dirs = {ShardDir(0), ShardDir(1), ShardDir(2)};
    ASSERT_TRUE(manifest.Save(SetDir()).ok());
  }

  void TearDown() override {
    server_.reset();
    service_.reset();
    ingester_.reset();
    searcher_.reset();
    SetDefaultEnv(nullptr);
    std::filesystem::remove_all(dir_);
  }

  std::string ShardDir(uint32_t s) const {
    return dir_ + "/s" + std::to_string(s);
  }
  std::string SetDir() const { return dir_ + "/set"; }

  /// Opens the sharded searcher and starts the server over it.
  void StartServer(ServeOptions serve_options,
                   ShardedSearcherOptions searcher_options = {}) {
    searcher_options.enable_self_healing = true;
    auto searcher = ShardedSearcher::Open(SetDir(), searcher_options);
    ASSERT_TRUE(searcher.ok()) << searcher.status().ToString();
    searcher_ =
        std::make_unique<ShardedSearcher>(std::move(*searcher));
    serve_options.search.theta = kTheta;
    service_ = std::make_unique<SearchService>(searcher_.get(),
                                               serve_options);
    server_ = std::make_unique<HttpServer>();
    HttpServerOptions server_options;
    server_options.num_threads = 4;
    ASSERT_TRUE(server_
                    ->Start(server_options,
                            [this](const HttpRequest& request) {
                              return service_->Handle(request);
                            })
                    .ok());
  }

  /// Creates a fresh streamable (WAL-backed) set and starts the server over
  /// it with the write path open, mirroring `ndss_serve --ingest`.
  void StartIngestServer(ServeOptions serve_options = {}) {
    const std::string set_dir = dir_ + "/iset";
    ASSERT_TRUE(Ingester::CreateSet(set_dir, build_).ok());
    auto searcher = ShardedSearcher::Open(set_dir);
    ASSERT_TRUE(searcher.ok()) << searcher.status().ToString();
    searcher_ = std::make_unique<ShardedSearcher>(std::move(*searcher));
    serve_options.search.theta = kTheta;
    service_ = std::make_unique<SearchService>(searcher_.get(),
                                               serve_options);
    server_ = std::make_unique<HttpServer>();
    HttpServerOptions server_options;
    server_options.num_threads = 4;
    ASSERT_TRUE(server_
                    ->Start(server_options,
                            [this](const HttpRequest& request) {
                              return service_->Handle(request);
                            })
                    .ok());
    IngestOptions ingest_options;
    ingest_options.build = build_;
    ingest_options.enable_compaction = false;
    auto ingester = Ingester::Open(searcher_.get(), ingest_options);
    ASSERT_TRUE(ingester.ok()) << ingester.status().ToString();
    ingester_ = std::move(*ingester);
    service_->set_ingester(ingester_.get());
  }

  /// One-shot POST on a fresh connection.
  HttpResponse Post(const std::string& target, const std::string& body) {
    HttpClient client;
    EXPECT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    auto response = client.Post(target, body);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return response.ok() ? *response : HttpResponse{};
  }

  HttpResponse Get(const std::string& target) {
    HttpClient client;
    EXPECT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    auto response = client.Get(target);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return response.ok() ? *response : HttpResponse{};
  }

  std::vector<std::vector<Token>> MakeQueries(size_t count) const {
    Rng rng(5);
    std::vector<std::vector<Token>> queries;
    for (size_t q = 0; q < count; ++q) {
      const TextId source = static_cast<TextId>(
          rng.Uniform(3 * kShardTexts));  // texts of the serving shards
      const auto text = sc_.corpus.text(source);
      const uint32_t length =
          std::min<uint32_t>(35, static_cast<uint32_t>(text.size()));
      queries.push_back(PerturbSequence(text, 0, length, 0.1, 400, rng));
    }
    return queries;
  }

  static constexpr double kTheta = 0.6;

  std::string dir_;
  SyntheticCorpus sc_;
  IndexBuildOptions build_;
  std::unique_ptr<ShardedSearcher> searcher_;
  std::unique_ptr<Ingester> ingester_;
  std::unique_ptr<SearchService> service_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(ServeTest, SearchMatchesDirectSearcherBitForBit) {
  StartServer(ServeOptions{});
  SearchOptions options;
  options.theta = kTheta;
  for (const auto& query : MakeQueries(12)) {
    auto direct = searcher_->Search(query, options);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();

    HttpResponse response = Post("/v1/search", SearchBody(query, kTheta));
    ASSERT_EQ(response.status, 200) << response.body;
    auto parsed = ParseJson(response.body);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->Find("code")->string_value(), "OK");
    EXPECT_EQ(AnswerKey(*parsed), AnswerKey(*direct));
  }
}

TEST_F(ServeTest, SearchBatchMatchesDirectSearcher) {
  StartServer(ServeOptions{});
  const auto queries = MakeQueries(8);
  SearchOptions options;
  options.theta = kTheta;

  JsonValue queries_json = JsonValue::Array();
  for (const auto& query : queries) {
    JsonValue tokens = JsonValue::Array();
    for (Token token : query) {
      tokens.Append(JsonValue::Number(static_cast<uint64_t>(token)));
    }
    queries_json.Append(std::move(tokens));
  }
  JsonValue body = JsonValue::Object();
  body.Set("queries", std::move(queries_json));
  body.Set("theta", JsonValue::Number(kTheta));

  HttpResponse response = Post("/v1/search_batch", body.Dump());
  ASSERT_EQ(response.status, 200) << response.body;
  auto parsed = ParseJson(response.body);
  ASSERT_TRUE(parsed.ok());
  const JsonValue* results = parsed->Find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->array().size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto direct = searcher_->Search(queries[i], options);
    ASSERT_TRUE(direct.ok());
    const JsonValue& entry = results->array()[i];
    EXPECT_EQ(entry.Find("code")->string_value(), "OK") << "query " << i;
    EXPECT_EQ(AnswerKey(entry), AnswerKey(*direct)) << "query " << i;
  }
  const JsonValue* batch_stats = parsed->Find("batch_stats");
  ASSERT_NE(batch_stats, nullptr);
  EXPECT_EQ(NumberField(*batch_stats, "queries_ok"),
            static_cast<double>(queries.size()));
}

TEST_F(ServeTest, AdmissionControlShedsWith429) {
  ServeOptions options;
  options.max_inflight = 1;
  options.allow_debug_sleep = true;
  StartServer(options);
  const auto queries = MakeQueries(1);

  // Occupy the only slot with a sleeping request...
  std::thread sleeper([&] {
    HttpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    auto response = client.Post(
        "/v1/search", SearchBody(queries[0], kTheta, 0, /*sleep_ms=*/2000));
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->status, 200);
  });
  // ...wait until the server counts it in-flight (admin ops are exempt
  // from admission, so /v1/status works at the limit)...
  bool occupied = false;
  for (int i = 0; i < 400 && !occupied; ++i) {
    auto parsed = ParseJson(Get("/v1/status").body);
    ASSERT_TRUE(parsed.ok());
    occupied = NumberField(*parsed, "inflight") >= 1;
    if (!occupied) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(occupied);

  // ...then every further search must be rejected, deterministically.
  HttpResponse response = Post("/v1/search", SearchBody(queries[0], kTheta));
  EXPECT_EQ(response.status, 429) << response.body;
  auto parsed = ParseJson(response.body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("code")->string_value(), "ResourceExhausted");
  EXPECT_NE(parsed->Find("error")->string_value().find("admission"),
            std::string::npos);
  sleeper.join();

  auto status = ParseJson(Get("/v1/status").body);
  ASSERT_TRUE(status.ok());
  const JsonValue* counters = status->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GE(NumberField(*counters, "rejected_admission"), 1);
}

TEST_F(ServeTest, TinyDeadlineIs504WithPartialStats) {
  StartServer(ServeOptions{});
  const auto queries = MakeQueries(1);
  HttpResponse response = Post(
      "/v1/search", SearchBody(queries[0], kTheta, /*deadline_ms=*/1e-3));
  ASSERT_EQ(response.status, 504) << response.body;
  auto parsed = ParseJson(response.body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("code")->string_value(), "DeadlineExceeded");
  // The partial-stats contract carries over the wire.
  const JsonValue* stats = parsed->Find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_GE(NumberField(*stats, "wall_seconds"), 0);

  // The header wins over the body field.
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  HttpRequest request;
  request.method = "POST";
  request.target = "/v1/search";
  request.headers["x-ndss-deadline-ms"] = "0.001";
  request.body = SearchBody(queries[0], kTheta);  // no deadline in body
  auto via_header = client.Roundtrip(request);
  ASSERT_TRUE(via_header.ok());
  EXPECT_EQ(via_header->status, 504);
}

TEST_F(ServeTest, MalformedRequestsAreLoud400s) {
  StartServer(ServeOptions{});
  const auto queries = MakeQueries(1);

  EXPECT_EQ(Post("/v1/search", "{not json").status, 400);
  EXPECT_EQ(Post("/v1/search", "[1,2,3]").status, 400);
  EXPECT_EQ(Post("/v1/search", "{}").status, 400);  // missing tokens
  EXPECT_EQ(Post("/v1/search", R"({"tokens":[1,"abc",3]})").status, 400);
  EXPECT_EQ(Post("/v1/search", R"({"tokens":[1.5]})").status, 400);
  EXPECT_EQ(Post("/v1/search", R"({"tokens":[4294967296]})").status, 400);
  EXPECT_EQ(Post("/v1/search", R"({"tokens":[-1]})").status, 400);
  EXPECT_EQ(
      Post("/v1/search", R"({"tokens":[1],"deadline_ms":"soon"})").status,
      400);
  EXPECT_EQ(Post("/v1/search", R"({"tokens":[1],"deadline_ms":-5})").status,
            400);
  EXPECT_EQ(Post("/v1/search_batch", R"({"queries":[[1],"x"]})").status,
            400);
  EXPECT_EQ(
      Post("/v1/search_batch",
           R"({"queries":[[1]],"shed_policy":"sometimes"})")
          .status,
      400);

  // A malformed deadline header must be a 400, never an infinite deadline
  // (the wire-level twin of the --deadline-ms=abc CLI bug).
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  HttpRequest request;
  request.method = "POST";
  request.target = "/v1/search";
  request.headers["x-ndss-deadline-ms"] = "abc";
  request.body = SearchBody(queries[0], kTheta);
  auto response = client.Roundtrip(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 400);

  EXPECT_EQ(Get("/v1/nope").status, 404);
  EXPECT_EQ(Get("/v1/search").status, 405);

  auto status = ParseJson(Get("/v1/status").body);
  ASSERT_TRUE(status.ok());
  const JsonValue* counters = status->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GE(NumberField(*counters, "invalid"), 13);
  EXPECT_EQ(NumberField(*counters, "searches_ok"), 0);
}

TEST_F(ServeTest, StatusAndShardsReportTopology) {
  StartServer(ServeOptions{});
  auto status = ParseJson(Get("/v1/status").body);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(NumberField(*status, "num_shards"), 3);
  EXPECT_EQ(NumberField(*status, "serving_shards"), 3);
  EXPECT_EQ(NumberField(*status, "num_texts"), 3.0 * kShardTexts);
  EXPECT_EQ(NumberField(*status, "inflight"), 0);

  auto shards = ParseJson(Get("/v1/shards").body);
  ASSERT_TRUE(shards.ok());
  const JsonValue* list = shards->Find("shards");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->array().size(), 3u);
  for (size_t s = 0; s < 3; ++s) {
    const JsonValue& entry = list->array()[s];
    EXPECT_EQ(entry.Find("health")->string_value(), "healthy");
    EXPECT_EQ(NumberField(entry, "text_offset"),
              static_cast<double>(s * kShardTexts));
    EXPECT_EQ(NumberField(entry, "num_texts"), kShardTexts);
  }
}

TEST_F(ServeTest, FaultyShardDegradesAnswersAndHealsBack) {
  // The searcher must open through the fault env so every pread of shard 1
  // can be failed; the server then keeps answering with the survivors.
  auto fault = std::make_unique<FaultInjectionEnv>(Env::Posix());
  SetDefaultEnv(fault.get());

  ShardedSearcherOptions searcher_options;
  searcher_options.health.consecutive_failures_to_quarantine = 2;
  searcher_options.health.initial_probe_delay_micros = 1000;
  searcher_options.health.max_probe_delay_micros = 100'000;
  searcher_options.health.monitor_poll_micros = 1000;
  StartServer(ServeOptions{}, searcher_options);
  const auto queries = MakeQueries(6);

  fault->SetFaultPathFilter(ShardDir(1));
  fault->SetFailProbability(1.0);

  // Degraded serving: still 200, with the exclusion reported honestly.
  bool degraded = false;
  for (int i = 0; i < 50 && !degraded; ++i) {
    HttpResponse response =
        Post("/v1/search", SearchBody(queries[i % queries.size()], kTheta));
    ASSERT_EQ(response.status, 200) << response.body;
    auto parsed = ParseJson(response.body);
    ASSERT_TRUE(parsed.ok());
    degraded = NumberField(*parsed->Find("stats"), "degraded_shards") >= 1;
  }
  EXPECT_TRUE(degraded);

  // The shard's state shows in the admin plane.
  bool unhealthy = false;
  for (int i = 0; i < 200 && !unhealthy; ++i) {
    auto shards = ParseJson(Get("/v1/shards").body);
    ASSERT_TRUE(shards.ok());
    const JsonValue& entry = shards->Find("shards")->array()[1];
    unhealthy = entry.Find("health")->string_value() != "healthy";
    if (!unhealthy) {
      (void)Post("/v1/search",
                 SearchBody(queries[i % queries.size()], kTheta));
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_TRUE(unhealthy);

  // Fault clears -> the health monitor reopens the shard and answers are
  // exact again.
  fault->Heal();
  bool recovered = false;
  for (int i = 0; i < 1000 && !recovered; ++i) {
    HttpResponse response =
        Post("/v1/search", SearchBody(queries[i % queries.size()], kTheta));
    if (response.status == 200) {
      auto parsed = ParseJson(response.body);
      ASSERT_TRUE(parsed.ok());
      recovered =
          NumberField(*parsed->Find("stats"), "degraded_shards") == 0;
    }
    if (!recovered) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(recovered);

  // Server down before the env goes away.
  server_.reset();
  service_.reset();
  searcher_.reset();
  SetDefaultEnv(nullptr);
}

TEST_F(ServeTest, ConcurrentClientsRaceAttachDetachSafely) {
  StartServer(ServeOptions{});
  const auto queries = MakeQueries(4);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> responses{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      HttpClient client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) return;
      size_t i = static_cast<size_t>(c);
      while (!stop.load(std::memory_order_relaxed)) {
        auto response = client.Post(
            "/v1/search", SearchBody(queries[i++ % queries.size()], kTheta));
        if (!response.ok()) break;
        // Topology changes under us, so answers legitimately differ run
        // to run — but every response must be a well-formed 200.
        EXPECT_EQ(response->status, 200);
        auto parsed = ParseJson(response->body);
        EXPECT_TRUE(parsed.ok());
        responses.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Attach/detach the spare shard while clients hammer the server; also
  // poll the admin plane, which reads the same topology.
  for (int cycle = 0; cycle < 4; ++cycle) {
    ASSERT_TRUE(searcher_->AttachShard(ShardDir(3)).ok());
    auto shards = ParseJson(Get("/v1/shards").body);
    ASSERT_TRUE(shards.ok());
    EXPECT_EQ(shards->Find("shards")->array().size(), 4u);
    ASSERT_TRUE(searcher_->DetachShard(ShardDir(3)).ok());
  }
  // Let the clients observe the final topology a little longer.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true);
  for (auto& client : clients) client.join();
  EXPECT_GT(responses.load(), 0u);

  auto status = ParseJson(Get("/v1/status").body);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(NumberField(*status, "num_shards"), 3);
  EXPECT_EQ(NumberField(*status, "epoch"), 8);  // 4 attach/detach cycles
}

// ---- streaming ingestion over HTTP ----

TEST_F(ServeTest, HealthzReportsReadinessTransitions) {
  StartServer(ServeOptions{});

  HttpResponse ready = Get("/v1/healthz");
  EXPECT_EQ(ready.status, 200);
  auto parsed = ParseJson(ready.body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("live")->bool_value(), true);
  EXPECT_EQ(parsed->Find("ready")->bool_value(), true);
  EXPECT_EQ(parsed->Find("wal_replaying")->bool_value(), false);
  EXPECT_EQ(NumberField(*parsed, "unhealthy_shards"), 0);

  // During WAL replay the server is live but not ready: an LB must not
  // route traffic to it, but an orchestrator must not kill it either.
  service_->set_wal_replaying(true);
  HttpResponse replaying = Get("/v1/healthz");
  EXPECT_EQ(replaying.status, 503);
  parsed = ParseJson(replaying.body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("live")->bool_value(), true);
  EXPECT_EQ(parsed->Find("ready")->bool_value(), false);
  EXPECT_EQ(parsed->Find("wal_replaying")->bool_value(), true);

  service_->set_wal_replaying(false);
  EXPECT_EQ(Get("/v1/healthz").status, 200);
}

TEST_F(ServeTest, IngestThenSearchFindsTheDocumentOverHttp) {
  StartIngestServer();

  // Healthz is ready with the write path open.
  EXPECT_EQ(Get("/v1/healthz").status, 200);

  // Ingest four documents over the wire.
  JsonValue documents = JsonValue::Array();
  for (size_t i = 0; i < 4; ++i) {
    JsonValue tokens = JsonValue::Array();
    for (Token token : sc_.corpus.text(i)) {
      tokens.Append(JsonValue::Number(static_cast<uint64_t>(token)));
    }
    documents.Append(std::move(tokens));
  }
  JsonValue body = JsonValue::Object();
  body.Set("documents", std::move(documents));
  HttpResponse ingested = Post("/v1/ingest", body.Dump());
  EXPECT_EQ(ingested.status, 200) << ingested.body;
  auto parsed = ParseJson(ingested.body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(NumberField(*parsed, "docs"), 4);
  EXPECT_EQ(NumberField(*parsed, "last_seqno"), 4);
  EXPECT_EQ(NumberField(*parsed, "delta_docs"), 4);

  // The acked documents are immediately searchable through the same server.
  const auto text = sc_.corpus.text(2);
  const std::vector<Token> query(text.begin(), text.begin() + 35);
  HttpResponse found = Post("/v1/search", SearchBody(query, kTheta));
  EXPECT_EQ(found.status, 200) << found.body;
  auto answer = ParseJson(found.body);
  ASSERT_TRUE(answer.ok());
  const JsonValue* spans = answer->Find("spans");
  ASSERT_NE(spans, nullptr);
  EXPECT_FALSE(spans->array().empty())
      << "ingested document not found by search";

  // The write path shows up in the counters.
  auto status = ParseJson(Get("/v1/status").body);
  ASSERT_TRUE(status.ok());
  const JsonValue* counters = status->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(NumberField(*counters, "ingests_ok"), 1);
  EXPECT_EQ(NumberField(*counters, "docs_ingested"), 4);

  // Malformed ingest bodies are loud 400s.
  EXPECT_EQ(Post("/v1/ingest", "{}").status, 400);
  EXPECT_EQ(Post("/v1/ingest", "{\"documents\":[]}").status, 400);
  EXPECT_EQ(Post("/v1/ingest", "{\"documents\":[[]]}").status, 400);
}

TEST_F(ServeTest, IngestWithoutWritePathIsRejected) {
  StartServer(ServeOptions{});  // no ingester attached
  HttpResponse rejected =
      Post("/v1/ingest", "{\"documents\":[[1,2,3]]}");
  EXPECT_EQ(rejected.status, 400);
  auto parsed = ParseJson(rejected.body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("code")->string_value(), "InvalidArgument");
}

}  // namespace
}  // namespace ndss
