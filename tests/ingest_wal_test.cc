// WAL framing, recovery, and fsync-failure (fsyncgate) semantics.
//
// The torn-tail sweeps are the heart: a WAL cut at EVERY byte length, and
// with EVERY byte corrupted, must scan to exactly the longest valid frame
// prefix — never an error, never a frame past the damage. The fsyncgate
// regression proves a failed fsync surfaces as a loud error on the write
// path (no silent ack) and permanently poisons the writer: the fsync is
// attempted exactly once, never retried.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/fault_injection_env.h"
#include "common/file_io.h"
#include "ingest/wal.h"
#include "text/types.h"

namespace ndss {
namespace {

class IngestWalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ndss_wal_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    path_ = dir_ + "/WAL";
  }

  void TearDown() override {
    SetDefaultEnv(nullptr);
    std::filesystem::remove_all(dir_);
  }

  /// Writes `frames` through a WalWriter with one final sync.
  void WriteFrames(const std::vector<WalFrame>& frames) {
    auto writer = WalWriter::Open(path_);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (const WalFrame& frame : frames) {
      ASSERT_TRUE(writer->Append(frame.seqno, frame.tokens).ok());
    }
    ASSERT_TRUE(writer->Sync().ok());
    ASSERT_TRUE(writer->Close().ok());
  }

  /// The raw bytes of the WAL file.
  std::string ReadRaw() {
    std::ifstream in(path_, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }

  void WriteRaw(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  static std::vector<WalFrame> SampleFrames() {
    return {{1, {10, 20, 30}},
            {2, {7}},
            {5, {100, 200, 300, 400, 500}},
            {6, {42, 43}}};
  }

  std::string dir_;
  std::string path_;
};

TEST_F(IngestWalTest, RoundTrip) {
  const std::vector<WalFrame> frames = SampleFrames();
  WriteFrames(frames);

  auto scan = ScanWal(path_);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  ASSERT_EQ(scan->frames.size(), frames.size());
  for (size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(scan->frames[i].seqno, frames[i].seqno);
    EXPECT_EQ(scan->frames[i].tokens, frames[i].tokens);
  }
  EXPECT_EQ(scan->torn_bytes, 0u);
  EXPECT_TRUE(scan->torn_reason.empty());
  EXPECT_EQ(scan->min_seqno, 1u);
  EXPECT_EQ(scan->max_seqno, 6u);
  EXPECT_EQ(scan->valid_bytes, scan->file_bytes);

  uint64_t expected_bytes = 0;
  for (const WalFrame& frame : frames) {
    expected_bytes += WalFrameBytes(frame.tokens.size());
  }
  EXPECT_EQ(scan->file_bytes, expected_bytes);
}

TEST_F(IngestWalTest, MissingFileIsEmptyLog) {
  auto scan = ScanWal(dir_ + "/does_not_exist");
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->frames.empty());
  EXPECT_EQ(scan->file_bytes, 0u);

  auto recovered = RecoverWal(dir_ + "/does_not_exist");
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered->frames.empty());
}

TEST_F(IngestWalTest, TruncationSweepKeepsLongestFramePrefix) {
  const std::vector<WalFrame> frames = SampleFrames();
  WriteFrames(frames);
  const std::string raw = ReadRaw();

  // Frame boundaries, so each cut length maps to an expected frame count.
  std::vector<uint64_t> boundaries = {0};
  for (const WalFrame& frame : frames) {
    boundaries.push_back(boundaries.back() +
                         WalFrameBytes(frame.tokens.size()));
  }

  for (size_t cut = 0; cut <= raw.size(); ++cut) {
    WriteRaw(raw.substr(0, cut));
    auto scan = ScanWal(path_);
    ASSERT_TRUE(scan.ok()) << "cut=" << cut << ": "
                           << scan.status().ToString();
    size_t expected_frames = 0;
    while (expected_frames + 1 < boundaries.size() &&
           boundaries[expected_frames + 1] <= cut) {
      ++expected_frames;
    }
    EXPECT_EQ(scan->frames.size(), expected_frames) << "cut=" << cut;
    EXPECT_EQ(scan->valid_bytes, boundaries[expected_frames])
        << "cut=" << cut;
    EXPECT_EQ(scan->torn_bytes, cut - boundaries[expected_frames])
        << "cut=" << cut;

    // Recovery truncates the torn tail; the rescan must be clean.
    auto recovered = RecoverWal(path_);
    ASSERT_TRUE(recovered.ok()) << "cut=" << cut;
    auto rescan = ScanWal(path_);
    ASSERT_TRUE(rescan.ok()) << "cut=" << cut;
    EXPECT_EQ(rescan->frames.size(), expected_frames) << "cut=" << cut;
    EXPECT_EQ(rescan->torn_bytes, 0u) << "cut=" << cut;
    EXPECT_EQ(rescan->file_bytes, boundaries[expected_frames])
        << "cut=" << cut;
  }
}

TEST_F(IngestWalTest, CorruptionSweepNeverYieldsFramePastDamage) {
  const std::vector<WalFrame> frames = SampleFrames();
  WriteFrames(frames);
  const std::string raw = ReadRaw();

  std::vector<uint64_t> boundaries = {0};
  for (const WalFrame& frame : frames) {
    boundaries.push_back(boundaries.back() +
                         WalFrameBytes(frame.tokens.size()));
  }

  for (size_t pos = 0; pos < raw.size(); ++pos) {
    std::string corrupted = raw;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x40);
    WriteRaw(corrupted);
    auto scan = ScanWal(path_);
    ASSERT_TRUE(scan.ok()) << "pos=" << pos;
    // The frame containing the flipped byte must not survive; the frames
    // before it must all survive (their bytes are untouched).
    size_t damaged_frame = 0;
    while (boundaries[damaged_frame + 1] <= pos) ++damaged_frame;
    EXPECT_LE(scan->frames.size(), damaged_frame) << "pos=" << pos;
    // A flipped length field can make the scanner misparse everything after
    // it, but the untouched frames BEFORE the damage must parse — unless
    // the damage is in frame 0.
    if (scan->frames.size() < damaged_frame) {
      // Allowed only if the corruption reached backwards — impossible: the
      // scan is strictly sequential, so anything short of damaged_frame
      // means the scanner stopped early. That would lose acknowledged data.
      ADD_FAILURE() << "pos=" << pos << ": scan kept " << scan->frames.size()
                    << " frames, expected " << damaged_frame;
    }
    for (size_t i = 0; i < scan->frames.size(); ++i) {
      EXPECT_EQ(scan->frames[i].seqno, frames[i].seqno) << "pos=" << pos;
      EXPECT_EQ(scan->frames[i].tokens, frames[i].tokens) << "pos=" << pos;
    }
  }
}

TEST_F(IngestWalTest, NonMonotoneSeqnoEndsValidPrefix) {
  // Hand-build a log whose third frame repeats a seqno.
  std::string raw;
  EncodeWalFrame(1, std::vector<Token>{1, 2}, &raw);
  EncodeWalFrame(2, std::vector<Token>{3}, &raw);
  EncodeWalFrame(2, std::vector<Token>{4}, &raw);
  WriteRaw(raw);

  auto scan = ScanWal(path_);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->frames.size(), 2u);
  EXPECT_GT(scan->torn_bytes, 0u);
  EXPECT_EQ(scan->torn_reason, "frame seqno not increasing");
}

TEST_F(IngestWalTest, AppendAfterRecoveryContinuesCleanly) {
  WriteFrames(SampleFrames());
  // Tear the tail mid-frame, recover, then append a new frame.
  const std::string raw = ReadRaw();
  WriteRaw(raw.substr(0, raw.size() - 3));
  ASSERT_TRUE(RecoverWal(path_).ok());

  auto writer = WalWriter::Open(path_);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(9, std::vector<Token>{77, 88}).ok());
  ASSERT_TRUE(writer->Sync().ok());
  ASSERT_TRUE(writer->Close().ok());

  auto scan = ScanWal(path_);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->frames.size(), 4u);  // 3 surviving + 1 appended
  EXPECT_EQ(scan->frames.back().seqno, 9u);
  EXPECT_EQ(scan->torn_bytes, 0u);
}

// ---- fsyncgate ----

TEST_F(IngestWalTest, FailedFsyncSurfacesAsErrorNotSilentAck) {
  FaultInjectionEnv fault(Env::Posix());
  SetDefaultEnv(&fault);

  auto writer = WalWriter::Open(path_);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(1, std::vector<Token>{1, 2, 3}).ok());
  ASSERT_TRUE(writer->Sync().ok());

  fault.SetFailFsync(true);
  ASSERT_TRUE(writer->Append(2, std::vector<Token>{4, 5, 6}).ok());
  const Status failed = writer->Sync();
  ASSERT_FALSE(failed.ok()) << "failed fsync must not ack";
  EXPECT_TRUE(failed.IsIOError());
  EXPECT_TRUE(writer->poisoned());

  // The poison is sticky and fail-fast: no further fsync attempt reaches
  // the file system (fsyncgate — a retried fsync can falsely succeed).
  const int64_t ops_before = fault.op_count();
  const Status again = writer->Sync();
  EXPECT_EQ(again, failed);
  EXPECT_EQ(fault.op_count(), ops_before);
  const Status append = writer->Append(3, std::vector<Token>{7});
  EXPECT_EQ(append, failed);
  EXPECT_EQ(fault.op_count(), ops_before);

  // Clearing the fault does NOT resurrect the writer; only a reopen (which
  // trusts the on-disk scan) can. The unacked frame is gone after a crash.
  fault.Heal();
  EXPECT_FALSE(writer->Sync().ok());
  writer = Status::IOError("drop writer");
  ASSERT_TRUE(fault.DropUnsyncedData().ok());

  auto scan = ScanWal(path_);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->frames.size(), 1u);  // only the acked frame survived
  EXPECT_EQ(scan->frames[0].seqno, 1u);
}

TEST_F(IngestWalTest, PoisonedAfterFailedAppend) {
  FaultInjectionEnv fault(Env::Posix());
  SetDefaultEnv(&fault);

  auto writer = WalWriter::Open(path_);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(1, std::vector<Token>{1}).ok());

  fault.FailAtOp(fault.op_count());  // the next operation fails
  const Status failed = writer->Append(2, std::vector<Token>{2});
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(writer->poisoned());
  // A failed append may have left a torn frame; later appends must not
  // write past it even after the fault clears.
  EXPECT_FALSE(writer->Append(3, std::vector<Token>{3}).ok());
}

}  // namespace
}  // namespace ndss
