#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "corpusgen/synthetic.h"
#include "tokenizer/bpe_model.h"
#include "tokenizer/bpe_tokenizer.h"
#include "tokenizer/bpe_trainer.h"

namespace ndss {
namespace {

TEST(BpeModelTest, ByteLevelHas256Tokens) {
  BpeModel model = BpeModel::ByteLevel();
  EXPECT_EQ(model.vocab_size(), 256u);
  EXPECT_EQ(model.num_merges(), 0u);
  EXPECT_EQ(model.TokenString('a'), "a");
}

TEST(BpeModelTest, FromMergesBuildsVocabStrings) {
  // Merge 'a'+'b' -> 256, then 256+'c' -> 257.
  auto model = BpeModel::FromMerges({{'a', 'b'}, {256, 'c'}});
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->vocab_size(), 258u);
  EXPECT_EQ(model->TokenString(256), "ab");
  EXPECT_EQ(model->TokenString(257), "abc");
  EXPECT_EQ(model->MergeRank('a', 'b'), 0u);
  EXPECT_EQ(model->MergeRank(256, 'c'), 1u);
  EXPECT_EQ(model->MergeRank('x', 'y'), BpeModel::kNoMerge);
}

TEST(BpeModelTest, ForwardReferenceRejected) {
  EXPECT_FALSE(BpeModel::FromMerges({{300, 'a'}}).ok());
}

TEST(BpeModelTest, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/bpe_model_test.bpe";
  auto model = BpeModel::FromMerges({{'a', 'b'}, {256, 'c'}, {'d', 'e'}});
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->Save(path).ok());
  auto loaded = BpeModel::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->vocab_size(), model->vocab_size());
  EXPECT_EQ(loaded->merges(), model->merges());
  std::filesystem::remove(path);
}

TEST(BpeTokenizerTest, ByteLevelEncodesBytes) {
  BpeModel model = BpeModel::ByteLevel();
  BpeTokenizer tokenizer(model);
  std::vector<Token> tokens = tokenizer.Encode("hi");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], static_cast<Token>('h'));
  EXPECT_EQ(tokens[1], static_cast<Token>('i'));
}

TEST(BpeTokenizerTest, MergesApplyInOrder) {
  auto model = BpeModel::FromMerges({{'a', 'b'}, {256, 'c'}});
  ASSERT_TRUE(model.ok());
  BpeTokenizer tokenizer(*model);
  std::vector<Token> tokens = tokenizer.Encode("abc");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], 257u);
  EXPECT_EQ(tokenizer.Decode(tokens), "abc");
}

TEST(BpeTokenizerTest, TrainedModelRoundTripsText) {
  const std::string text = GenerateSyntheticEnglish(500, 11);
  BpeTrainerOptions options;
  options.vocab_size = 600;
  BpeTrainer trainer(options);
  trainer.AddText(text);
  auto model = trainer.Train();
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_GT(model->num_merges(), 50u);
  EXPECT_LE(model->vocab_size(), 600u);

  BpeTokenizer tokenizer(*model);
  const std::string sample = text.substr(0, 2000);
  std::vector<Token> tokens = tokenizer.Encode(sample);
  EXPECT_EQ(tokenizer.Decode(tokens), sample);
  // Compression: trained BPE should use fewer tokens than bytes.
  EXPECT_LT(tokens.size(), sample.size());
}

TEST(BpeTokenizerTest, LargerVocabCompressesBetter) {
  const std::string text = GenerateSyntheticEnglish(800, 13);
  std::vector<size_t> token_counts;
  for (uint32_t vocab : {300u, 600u, 1200u}) {
    BpeTrainerOptions options;
    options.vocab_size = vocab;
    BpeTrainer trainer(options);
    trainer.AddText(text);
    auto model = trainer.Train();
    ASSERT_TRUE(model.ok());
    BpeTokenizer tokenizer(*model);
    token_counts.push_back(tokenizer.Encode(text).size());
  }
  EXPECT_LE(token_counts[1], token_counts[0]);
  EXPECT_LE(token_counts[2], token_counts[1]);
}

TEST(BpeTokenizerTest, EncodeDecodeRoundTripsArbitraryBytes) {
  auto model = BpeModel::FromMerges({{'t', 'h'}, {256, 'e'}});
  ASSERT_TRUE(model.ok());
  BpeTokenizer tokenizer(*model);
  const std::string cases[] = {
      "the theme thereof",
      "  spaces   galore  ",
      "bytes\x01\x02\xff\x80mixed",
      "",
      "\n\n\n",
  };
  for (const std::string& input : cases) {
    EXPECT_EQ(tokenizer.Decode(tokenizer.Encode(input)), input);
  }
}

TEST(BpeTokenizerTest, EncoderMatchesTrainerSegmentation) {
  // Words seen during training must re-tokenize to single tokens when their
  // full merge chain exists.
  BpeTrainerOptions options;
  options.vocab_size = 300;
  options.min_pair_frequency = 1;
  BpeTrainer trainer(options);
  for (int i = 0; i < 50; ++i) trainer.AddText("cat cat cat");
  auto model = trainer.Train();
  ASSERT_TRUE(model.ok());
  BpeTokenizer tokenizer(*model);
  std::vector<Token> tokens = tokenizer.Encode("cat");
  EXPECT_EQ(tokens.size(), 1u) << "'cat' should be one merged token";
}

TEST(BpeTrainerTest, VocabBelow256Rejected) {
  BpeTrainerOptions options;
  options.vocab_size = 100;
  BpeTrainer trainer(options);
  trainer.AddText("abc");
  EXPECT_FALSE(trainer.Train().ok());
}

TEST(BpeTrainerTest, MinFrequencyStopsMerging) {
  BpeTrainerOptions options;
  options.vocab_size = 10000;
  options.min_pair_frequency = 100;  // nothing is that frequent here
  BpeTrainer trainer(options);
  trainer.AddText("a few rare words only once");
  auto model = trainer.Train();
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->num_merges(), 0u);
}

TEST(BpeTrainerTest, DeterministicAcrossRuns) {
  const std::string text = GenerateSyntheticEnglish(200, 17);
  auto train = [&text]() {
    BpeTrainerOptions options;
    options.vocab_size = 400;
    BpeTrainer trainer(options);
    trainer.AddText(text);
    return trainer.Train();
  };
  auto m1 = train();
  auto m2 = train();
  ASSERT_TRUE(m1.ok() && m2.ok());
  EXPECT_EQ(m1->merges(), m2->merges());
}

}  // namespace
}  // namespace ndss
