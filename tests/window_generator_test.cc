#include "window/window_generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/random.h"

namespace ndss {
namespace {

std::vector<Token> RandomText(size_t n, uint32_t vocab, uint64_t seed) {
  Rng rng(seed);
  std::vector<Token> text(n);
  for (auto& token : text) token = static_cast<Token>(rng.Uniform(vocab));
  return text;
}

// Every generator configuration under test.
struct GenConfig {
  WindowGenMethod method;
  RmqKind rmq;
  const char* name;
};

const GenConfig kConfigs[] = {
    {WindowGenMethod::kMonotonicStack, RmqKind::kFischerHeun, "stack"},
    {WindowGenMethod::kRmqDivideConquer, RmqKind::kSegmentTree,
     "rmq_segment_tree"},
    {WindowGenMethod::kRmqDivideConquer, RmqKind::kSparseTable,
     "rmq_sparse_table"},
    {WindowGenMethod::kRmqDivideConquer, RmqKind::kFischerHeun,
     "rmq_fischer_heun"},
};

class WindowGeneratorTest : public ::testing::TestWithParam<GenConfig> {};

TEST_P(WindowGeneratorTest, MatchesReferenceImplementation) {
  const GenConfig config = GetParam();
  HashFamily family(4, 99);
  WindowGenerator generator(config.method, config.rmq);
  for (uint64_t seed = 0; seed < 8; ++seed) {
    for (uint32_t vocab : {3u, 10u, 1000u}) {  // small vocab → many ties
      const std::vector<Token> text = RandomText(200, vocab, seed * 13 + 1);
      for (uint32_t t : {1u, 2u, 5u, 25u, 199u, 200u, 500u}) {
        for (uint32_t func = 0; func < 4; ++func) {
          std::vector<CompactWindow> expected, actual;
          GenerateCompactWindowsReference(family, func, text, t, &expected);
          generator.Generate(family, func, text, t, &actual);
          SortWindows(&expected);
          SortWindows(&actual);
          ASSERT_EQ(actual, expected)
              << config.name << " seed=" << seed << " vocab=" << vocab
              << " t=" << t << " func=" << func;
        }
      }
    }
  }
}

TEST_P(WindowGeneratorTest, EveryLongSequenceInExactlyOneWindow) {
  // Theorem 1 part 2: each sequence with >= t tokens lies in one and only
  // one generated window.
  const GenConfig config = GetParam();
  HashFamily family(1, 5);
  WindowGenerator generator(config.method, config.rmq);
  const uint32_t t = 4;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    const std::vector<Token> text = RandomText(60, 8, seed + 40);
    std::vector<CompactWindow> windows;
    generator.Generate(family, 0, text, t, &windows);
    for (uint32_t i = 0; i < text.size(); ++i) {
      for (uint32_t j = i + t - 1; j < text.size(); ++j) {
        int containing = 0;
        for (const CompactWindow& w : windows) {
          if (w.l <= i && i <= w.c && w.c <= j && j <= w.r) ++containing;
        }
        ASSERT_EQ(containing, 1)
            << config.name << " sequence [" << i << "," << j << "]";
      }
    }
  }
}

TEST_P(WindowGeneratorTest, CenterHoldsMinimumHash) {
  const GenConfig config = GetParam();
  HashFamily family(1, 21);
  WindowGenerator generator(config.method, config.rmq);
  const std::vector<Token> text = RandomText(500, 50, 3);
  std::vector<CompactWindow> windows;
  generator.Generate(family, 0, text, 10, &windows);
  ASSERT_FALSE(windows.empty());
  for (const CompactWindow& w : windows) {
    const uint64_t center_hash = family.Hash(0, text[w.c]);
    for (uint32_t p = w.l; p <= w.r; ++p) {
      ASSERT_LE(center_hash, family.Hash(0, text[p]))
          << "window (" << w.l << "," << w.c << "," << w.r << ")";
    }
  }
}

TEST_P(WindowGeneratorTest, AllWindowsAreValidWidth) {
  const GenConfig config = GetParam();
  HashFamily family(2, 8);
  WindowGenerator generator(config.method, config.rmq);
  const std::vector<Token> text = RandomText(300, 1000, 9);
  for (uint32_t t : {5u, 50u}) {
    std::vector<CompactWindow> windows;
    generator.Generate(family, 0, text, t, &windows);
    for (const CompactWindow& w : windows) {
      EXPECT_GE(w.width(), t);
      EXPECT_LE(w.l, w.c);
      EXPECT_LE(w.c, w.r);
      EXPECT_LT(w.r, text.size());
    }
  }
}

TEST_P(WindowGeneratorTest, TextShorterThanThresholdYieldsNothing) {
  const GenConfig config = GetParam();
  HashFamily family(1, 8);
  WindowGenerator generator(config.method, config.rmq);
  const std::vector<Token> text = RandomText(10, 100, 1);
  std::vector<CompactWindow> windows;
  generator.Generate(family, 0, text, 11, &windows);
  EXPECT_TRUE(windows.empty());
  generator.Generate(family, 0, text, 10, &windows);
  EXPECT_EQ(windows.size(), 1u);  // exactly the root window
  EXPECT_EQ(windows[0].l, 0u);
  EXPECT_EQ(windows[0].r, 9u);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, WindowGeneratorTest,
                         ::testing::ValuesIn(kConfigs),
                         [](const auto& info) { return info.param.name; });

TEST(WindowTheoryTest, PaperFigure1Example) {
  // A 17-token text with distinct tokens and t = 5 yields exactly
  // 2*18/6 - 1 = 5 valid windows (Example 1).
  EXPECT_DOUBLE_EQ(ExpectedWindowCount(17, 5), 5.0);
  EXPECT_DOUBLE_EQ(ExpectedWindowCount(10, 11), 0.0);
  EXPECT_DOUBLE_EQ(ExpectedWindowCount(5, 5), 1.0);
}

// Theorem 1: E[#windows] = 2(n+1)/(t+1) - 1 over random hash draws. Checked
// empirically with distinct tokens over many independent hash functions.
TEST(WindowTheoryTest, ExpectedCountMatchesTheorem) {
  const size_t n = 300;
  std::vector<Token> text(n);
  for (size_t i = 0; i < n; ++i) text[i] = static_cast<Token>(i);  // distinct
  const uint32_t kTrials = 400;
  HashFamily family(kTrials, 2023);
  WindowGenerator generator;
  for (uint32_t t : {5u, 25u, 50u}) {
    uint64_t total = 0;
    for (uint32_t func = 0; func < kTrials; ++func) {
      std::vector<CompactWindow> windows;
      generator.Generate(family, func, text, t, &windows);
      total += windows.size();
    }
    const double mean = static_cast<double>(total) / kTrials;
    const double expected = ExpectedWindowCount(n, t);
    EXPECT_NEAR(mean, expected, 0.15 * expected)
        << "t=" << t << " mean=" << mean << " expected=" << expected;
  }
}

TEST(WindowTheoryTest, CountScalesInverselyWithThreshold) {
  const std::vector<Token> text = RandomText(5000, 100000, 77);
  HashFamily family(1, 4);
  WindowGenerator generator;
  std::vector<size_t> counts;
  for (uint32_t t : {25u, 50u, 100u}) {
    std::vector<CompactWindow> windows;
    generator.Generate(family, 0, text, t, &windows);
    counts.push_back(windows.size());
  }
  // Halving t roughly doubles the window count (Figure 2 trend).
  EXPECT_NEAR(static_cast<double>(counts[0]) / counts[1], 2.0, 0.5);
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[2], 2.0, 0.5);
}

TEST(WindowGeneratorEdgeTest, SingleTokenText) {
  HashFamily family(1, 1);
  WindowGenerator generator;
  std::vector<Token> text = {7};
  std::vector<CompactWindow> windows;
  generator.Generate(family, 0, text, 1, &windows);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0], (CompactWindow{0, 0, 0}));
}

TEST(WindowGeneratorEdgeTest, AllIdenticalTokens) {
  HashFamily family(1, 1);
  std::vector<Token> text(20, 5);
  for (const GenConfig& config : kConfigs) {
    WindowGenerator generator(config.method, config.rmq);
    std::vector<CompactWindow> windows, expected;
    generator.Generate(family, 0, text, 3, &windows);
    GenerateCompactWindowsReference(family, 0, text, 3, &expected);
    SortWindows(&windows);
    SortWindows(&expected);
    EXPECT_EQ(windows, expected) << config.name;
  }
}

}  // namespace
}  // namespace ndss
