// Query-side resource governance: deadlines, cooperative cancellation,
// memory budgets, and batch overload shedding (DESIGN.md §7c).
//
// The contract under test: a governed query either completes normally
// (bit-identical to an ungoverned run) or stops at a checkpoint with
// DeadlineExceeded / Cancelled / ResourceExhausted while its partial
// SearchStats survive; a governed batch sheds or cancels rather than
// blocking past its deadline, and its outcome counters partition the batch.
// The stress test at the bottom combines 4 worker threads with injected IO
// faults, degraded mode, and tight deadlines (run it under TSan too).

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/coding.h"
#include "common/env.h"
#include "common/fault_injection_env.h"
#include "common/file_io.h"
#include "common/query_context.h"
#include "common/retry.h"
#include "common/status.h"
#include "corpusgen/synthetic.h"
#include "index/index_builder.h"
#include "index/index_format.h"
#include "index/index_meta.h"
#include "query/collision_count.h"
#include "query/interval_scan.h"
#include "query/searcher.h"

namespace ndss {
namespace {

// ---- MemoryBudget ----

TEST(MemoryBudgetTest, UnlimitedBudgetOnlyAccounts) {
  MemoryBudget budget(0);
  EXPECT_TRUE(budget.Charge(1ull << 40).ok());
  EXPECT_EQ(1ull << 40, budget.used());
  EXPECT_EQ(1ull << 40, budget.peak());
  budget.Release(1ull << 40);
  EXPECT_EQ(0u, budget.used());
  EXPECT_EQ(1ull << 40, budget.peak());  // high-water mark survives
}

TEST(MemoryBudgetTest, CapIsEnforcedWithoutNetChange) {
  MemoryBudget budget(1000);
  EXPECT_TRUE(budget.Charge(600).ok());
  const Status status = budget.Charge(500);
  EXPECT_TRUE(status.IsResourceExhausted()) << status.ToString();
  EXPECT_EQ(600u, budget.used());  // failed charge left no residue
  EXPECT_TRUE(budget.Charge(400).ok());
  EXPECT_EQ(1000u, budget.used());
}

TEST(MemoryBudgetTest, ParentChainChargesAndRollsBack) {
  MemoryBudget inflight(1000);
  MemoryBudget arena_a(0, &inflight);
  MemoryBudget arena_b(0, &inflight);
  EXPECT_TRUE(arena_a.Charge(700).ok());
  EXPECT_EQ(700u, inflight.used());
  // arena_b has no cap of its own, but the shared parent is nearly full.
  const Status status = arena_b.Charge(400);
  EXPECT_TRUE(status.IsResourceExhausted()) << status.ToString();
  EXPECT_EQ(0u, arena_b.used());  // rolled back locally
  EXPECT_EQ(700u, inflight.used());
  arena_a.Release(700);
  EXPECT_EQ(0u, inflight.used());
  EXPECT_EQ(700u, inflight.peak());
}

// ---- QueryContext ----

TEST(QueryContextTest, DefaultContextGovernsNothing) {
  QueryContext ctx;
  EXPECT_TRUE(ctx.Check().ok());
  EXPECT_TRUE(ctx.ChargeMemory(1ull << 40).ok());
  EXPECT_TRUE(CheckQueryContext(nullptr).ok());
  EXPECT_FALSE(ctx.has_deadline());
}

TEST(QueryContextTest, ExpiredDeadlineFailsCheck) {
  const QueryContext ctx = QueryContext::WithTimeout(-1);
  const Status status = ctx.Check();
  EXPECT_TRUE(status.IsDeadlineExceeded()) << status.ToString();
  EXPECT_LT(ctx.remaining_micros(), 0);
}

TEST(QueryContextTest, CancellationWinsOverDeadline) {
  std::atomic<bool> cancel{true};
  QueryContext ctx = QueryContext::WithTimeout(-1);  // also expired
  ctx.set_cancel_flag(&cancel);
  EXPECT_TRUE(ctx.Check().IsCancelled());
  cancel.store(false);
  EXPECT_TRUE(ctx.Check().IsDeadlineExceeded());
}

TEST(QueryContextTest, ScopedChargeReleasesOnExit) {
  MemoryBudget budget(1000);
  QueryContext ctx;
  ctx.set_memory_budget(&budget);
  {
    ScopedMemoryCharge scratch(&ctx);
    EXPECT_TRUE(scratch.Charge(300).ok());
    EXPECT_TRUE(scratch.Charge(300).ok());
    EXPECT_TRUE(scratch.Charge(500).IsResourceExhausted());
    EXPECT_EQ(600u, scratch.charged());  // the failed charge is not recorded
    EXPECT_EQ(600u, budget.used());
  }
  EXPECT_EQ(0u, budget.used());
  EXPECT_EQ(600u, budget.peak());
}

// ---- deadline-aware RunWithRetry (satellite: retry governance) ----

TEST(RetryGovernanceTest, MaxTotalMicrosCapsCumulativeBackoff) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff_micros = 1000;
  policy.backoff_multiplier = 2.0;
  policy.max_total_micros = 2500;
  int attempts = 0;
  const Status status = RunWithRetry(policy, [&] {
    ++attempts;
    return Status::IOError("flaky");
  });
  EXPECT_TRUE(status.IsIOError());
  // Sleeps 1000 then 1500 (clamped), hits the 2500 cap, stops: 3 attempts,
  // not 10.
  EXPECT_EQ(3, attempts);
}

TEST(RetryGovernanceTest, ExpiredContextShortCircuitsBeforeFirstAttempt) {
  const QueryContext ctx = QueryContext::WithTimeout(-1);
  int attempts = 0;
  const Status status = RunWithRetry(
      RetryPolicy{},
      [&] {
        ++attempts;
        return Status::IOError("never reached");
      },
      /*env=*/nullptr, &ctx);
  EXPECT_TRUE(status.IsDeadlineExceeded()) << status.ToString();
  EXPECT_EQ(0, attempts);
}

TEST(RetryGovernanceTest, DeadlineClampsBackoffAndStopsRetrying) {
  // 50 ms of deadline against a 10 s backoff: the sleep is clamped to the
  // remaining time and the next gate fires. The deadline that stopped the
  // retrying is returned (the op had attempts left), not the transient
  // error.
  const QueryContext ctx = QueryContext::WithTimeout(50'000);
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_micros = 10'000'000;
  int attempts = 0;
  const auto start = QueryContext::Clock::now();
  const Status status = RunWithRetry(
      policy,
      [&] {
        ++attempts;
        return Status::IOError("flaky");
      },
      /*env=*/nullptr, &ctx);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      QueryContext::Clock::now() - start);
  EXPECT_TRUE(status.IsDeadlineExceeded()) << status.ToString();
  EXPECT_EQ(1, attempts);
  EXPECT_LT(elapsed.count(), 5000) << "backoff ignored the deadline";
}

TEST(RetryGovernanceTest, CancelledContextIsNotRetryable) {
  EXPECT_FALSE(IsRetryableStatus(Status::DeadlineExceeded("d")));
  EXPECT_FALSE(IsRetryableStatus(Status::Cancelled("c")));
  EXPECT_FALSE(IsRetryableStatus(Status::ResourceExhausted("r")));
  EXPECT_TRUE(IsRetryableStatus(Status::IOError("io")));
}

// ---- decorrelated retry jitter (satellite: jittered retries) ----

/// Env whose only job is to record the backoff sleeps RunWithRetry asks
/// for, instead of actually sleeping.
class SleepRecordingEnv : public FaultInjectionEnv {
 public:
  SleepRecordingEnv() : FaultInjectionEnv(Env::Posix()) {}
  void SleepMicros(uint64_t micros) override { sleeps.push_back(micros); }
  std::vector<uint64_t> sleeps;
};

std::vector<uint64_t> JitteredSleeps(uint64_t seed) {
  SleepRecordingEnv env;
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff_micros = 1000;
  policy.backoff_multiplier = 3.0;
  policy.decorrelated_jitter = true;
  policy.jitter_seed = seed;
  const Status status =
      RunWithRetry(policy, [] { return Status::IOError("flaky"); }, &env);
  EXPECT_TRUE(status.IsIOError());
  EXPECT_EQ(env.sleeps.size(), 7u);  // every attempt but the last sleeps
  return env.sleeps;
}

TEST(RetryJitterTest, DecorrelatedJitterStaysInBounds) {
  // AWS decorrelated jitter: each sleep is drawn from
  // [initial, prev_sleep * multiplier].
  const std::vector<uint64_t> sleeps = JitteredSleeps(0x1DEA);
  uint64_t prev = 1000;
  for (const uint64_t sleep : sleeps) {
    EXPECT_GE(sleep, 1000u);
    EXPECT_LE(sleep, static_cast<uint64_t>(3.0 * static_cast<double>(prev)));
    prev = sleep;
  }
}

TEST(RetryJitterTest, SeededScheduleIsDeterministic) {
  EXPECT_EQ(JitteredSleeps(0x1DEA), JitteredSleeps(0x1DEA));
  // Different seeds decorrelate (7 draws from growing ranges colliding
  // entirely is as good as impossible).
  EXPECT_NE(JitteredSleeps(0x1DEA), JitteredSleeps(0xF00D));
}

TEST(RetryJitterTest, ZeroSeedDecorrelatesConcurrentCalls) {
  // Seed 0 derives a fresh per-call seed, so two back-to-back runs must not
  // share a backoff schedule — that lockstep is what jitter exists to kill.
  EXPECT_NE(JitteredSleeps(0), JitteredSleeps(0));
}

TEST(RetryJitterTest, JitterRespectsTotalBackoffCap) {
  SleepRecordingEnv env;
  RetryPolicy policy;
  policy.max_attempts = 50;
  policy.initial_backoff_micros = 1000;
  policy.decorrelated_jitter = true;
  policy.jitter_seed = 0x5EED;
  policy.max_total_micros = 10'000;
  int attempts = 0;
  const Status status = RunWithRetry(
      policy,
      [&] {
        ++attempts;
        return Status::IOError("flaky");
      },
      &env);
  EXPECT_TRUE(status.IsIOError());
  EXPECT_LT(attempts, 50);
  uint64_t total = 0;
  for (const uint64_t sleep : env.sleeps) total += sleep;
  EXPECT_LE(total, 10'000u);
}

// ---- governed IntervalScan / CollisionCount ----

TEST(GovernedScanTest, IntervalScanStopsOnExpiredContext) {
  std::vector<Interval> intervals;
  for (uint32_t i = 0; i < 100; ++i) {
    intervals.push_back(Interval{i, i + 10, i});
  }
  std::vector<IntervalGroup> groups;
  EXPECT_TRUE(IntervalScan(intervals, 2, &groups).ok());
  EXPECT_FALSE(groups.empty());

  const QueryContext expired = QueryContext::WithTimeout(-1);
  groups.clear();
  const Status status = IntervalScan(intervals, 2, &groups, &expired);
  EXPECT_TRUE(status.IsDeadlineExceeded()) << status.ToString();
}

TEST(GovernedScanTest, CollisionCountStopsOnExpiredContext) {
  std::vector<PostedWindow> windows;
  for (uint32_t i = 0; i < 50; ++i) {
    windows.push_back(PostedWindow{0, i, i + 5, i + 10});
  }
  std::vector<MatchRectangle> rects;
  EXPECT_TRUE(CollisionCount(windows, 2, &rects).ok());

  const QueryContext expired = QueryContext::WithTimeout(-1);
  rects.clear();
  const Status status = CollisionCount(windows, 2, &rects, &expired);
  EXPECT_TRUE(status.IsDeadlineExceeded()) << status.ToString();
}

TEST(GovernedScanTest, CollisionCountChargesScanScratch) {
  std::vector<PostedWindow> windows;
  for (uint32_t i = 0; i < 50; ++i) {
    windows.push_back(PostedWindow{0, i, i + 5, i + 10});
  }
  // Room for the interval arrays (50 windows x 3 intervals x 12 bytes) but
  // not for the groups the sweeps emit.
  MemoryBudget budget(2000);
  QueryContext ctx;
  ctx.set_memory_budget(&budget);
  std::vector<MatchRectangle> rects;
  const Status status = CollisionCount(windows, 2, &rects, &ctx);
  EXPECT_TRUE(status.IsResourceExhausted()) << status.ToString();
  EXPECT_EQ(0u, budget.used()) << "scan scratch leaked accounted bytes";
  EXPECT_GT(budget.peak(), 0u);
}

// ---- governed Searcher ----

class GovernanceSearchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ndss_governance_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);

    // Zipf-skewed vocabulary: hot tokens concentrate windows into few long
    // lists, the workload governance exists for.
    SyntheticCorpusOptions corpus_options;
    corpus_options.num_texts = 120;
    corpus_options.vocab_size = 300;
    corpus_options.zipf_exponent = 1.2;
    corpus_options.plant_rate = 0.4;
    corpus_options.seed = 17;
    sc_ = GenerateSyntheticCorpus(corpus_options);

    build_.k = 8;
    build_.t = 15;
    ASSERT_TRUE(BuildIndexInMemory(sc_.corpus, dir_, build_).ok());

    options_.theta = 0.6;

    Rng rng(11);
    for (int q = 0; q < 24; ++q) {
      const TextId id = static_cast<TextId>(rng.Uniform(120));
      const auto text = sc_.corpus.text(id);
      const uint32_t length =
          std::min<uint32_t>(40, static_cast<uint32_t>(text.size()));
      queries_.push_back(PerturbSequence(text, 0, length, 0.05, 300, rng));
    }
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  static std::string Fingerprint(const SearchResult& result) {
    std::string fp;
    for (const MatchSpan& span : result.spans) {
      fp += std::to_string(span.text) + ":" + std::to_string(span.begin) +
            "-" + std::to_string(span.end) + "/" +
            std::to_string(span.collisions) + ";";
    }
    return fp;
  }

  /// XORs the posting/zone region of an inverted-index file so it still
  /// opens but every list read fails its CRC.
  static void CorruptAllLists(const std::string& path) {
    auto data = ReadFileToString(path);
    ASSERT_TRUE(data.ok());
    const uint64_t directory_offset = DecodeFixed64(
        data->data() + data->size() - index_format::kFooterSize + 16);
    ASSERT_LE(directory_offset, data->size());
    for (uint64_t i = index_format::kHeaderSize; i < directory_offset; ++i) {
      (*data)[i] ^= 0x5a;
    }
    ASSERT_TRUE(WriteStringToFile(path, *data).ok());
  }

  std::string dir_;
  SyntheticCorpus sc_;
  IndexBuildOptions build_;
  SearchOptions options_;
  std::vector<std::vector<Token>> queries_;
};

TEST_F(GovernanceSearchTest, PermissiveContextIsBitIdenticalToUngoverned) {
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok()) << searcher.status().ToString();
  MemoryBudget budget(1ull << 30);
  QueryContext ctx = QueryContext::WithTimeout(60'000'000);
  ctx.set_memory_budget(&budget);
  for (const auto& query : queries_) {
    auto ungoverned = searcher->Search(query, options_);
    ASSERT_TRUE(ungoverned.ok());
    SearchResult governed;
    ASSERT_TRUE(searcher->Search(query, options_, &ctx, &governed).ok());
    EXPECT_EQ(Fingerprint(*ungoverned), Fingerprint(governed));
    EXPECT_EQ(ungoverned->stats.io_bytes, governed.stats.io_bytes);
    EXPECT_GT(governed.stats.wall_seconds, 0.0);
  }
  EXPECT_EQ(0u, budget.used()) << "queries leaked accounted bytes";
  EXPECT_GT(budget.peak(), 0u) << "nothing was ever charged";
}

TEST_F(GovernanceSearchTest, ExpiredDeadlineStopsPromptlyWithPartialStats) {
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());
  const QueryContext ctx = QueryContext::WithTimeout(-1);
  SearchResult result;
  const Status status =
      searcher->Search(queries_[0], options_, &ctx, &result);
  EXPECT_TRUE(status.IsDeadlineExceeded()) << status.ToString();
  // List classification happens before the first checkpoint, so the partial
  // stats identify how far the query got.
  EXPECT_EQ(build_.k, result.stats.short_lists + result.stats.long_lists +
                          result.stats.empty_lists);
  EXPECT_GT(result.stats.wall_seconds, 0.0);
}

TEST_F(GovernanceSearchTest, CancellationFlagStopsTheQuery) {
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());
  std::atomic<bool> cancel{true};
  QueryContext ctx;
  ctx.set_cancel_flag(&cancel);
  SearchResult result;
  const Status status =
      searcher->Search(queries_[0], options_, &ctx, &result);
  EXPECT_TRUE(status.IsCancelled()) << status.ToString();

  cancel.store(false);
  ASSERT_TRUE(searcher->Search(queries_[0], options_, &ctx, &result).ok());
}

TEST_F(GovernanceSearchTest, TinyMemoryBudgetFailsWithResourceExhausted) {
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());
  MemoryBudget budget(256);  // a handful of windows
  QueryContext ctx;
  ctx.set_memory_budget(&budget);
  SearchResult result;
  const Status status =
      searcher->Search(queries_[0], options_, &ctx, &result);
  EXPECT_TRUE(status.IsResourceExhausted()) << status.ToString();
  EXPECT_EQ(0u, budget.used()) << "failed query leaked accounted bytes";

  // A generous budget admits the same query and reports its footprint.
  MemoryBudget ample(1ull << 30);
  QueryContext ample_ctx;
  ample_ctx.set_memory_budget(&ample);
  ASSERT_TRUE(
      searcher->Search(queries_[0], options_, &ample_ctx, &result).ok());
  EXPECT_GT(result.stats.peak_memory_bytes, 256u);
}

TEST_F(GovernanceSearchTest, GovernedBatchWithNoLimitsMatchesUngoverned) {
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());
  auto ungoverned = searcher->SearchBatch(queries_, options_);
  ASSERT_TRUE(ungoverned.ok());
  auto governed = searcher->SearchBatch(queries_, options_, BatchLimits{});
  ASSERT_TRUE(governed.ok());
  ASSERT_EQ(queries_.size(), governed->results.size());
  for (size_t q = 0; q < queries_.size(); ++q) {
    EXPECT_TRUE(governed->statuses[q].ok());
    EXPECT_EQ(Fingerprint((*ungoverned)[q]),
              Fingerprint(governed->results[q]));
  }
  EXPECT_EQ(queries_.size(), governed->stats.queries_ok);
  EXPECT_EQ(0u, governed->stats.queries_shed);
  EXPECT_GT(governed->stats.peak_query_bytes, 0u);
}

TEST_F(GovernanceSearchTest, BatchDeadlineShedsInsteadOfBlocking) {
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());
  BatchLimits limits;
  limits.batch_timeout_micros = 1;  // effectively already expired
  const auto start = QueryContext::Clock::now();
  auto batch = searcher->SearchBatch(queries_, options_, limits,
                                     256ull << 20, /*num_threads=*/4);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      QueryContext::Clock::now() - start);
  ASSERT_TRUE(batch.ok());
  const BatchStats& stats = batch->stats;
  EXPECT_EQ(queries_.size(), stats.queries_shed +
                                 stats.queries_deadline_exceeded +
                                 stats.queries_ok + stats.queries_failed +
                                 stats.queries_resource_exhausted);
  EXPECT_GT(stats.queries_shed + stats.queries_deadline_exceeded, 0u);
  for (size_t q = 0; q < queries_.size(); ++q) {
    const Status& status = batch->statuses[q];
    EXPECT_TRUE(status.ok() || status.IsCancelled() ||
                status.IsDeadlineExceeded())
        << "q=" << q << ": " << status.ToString();
  }
  // Wall-clock is bounded by the (expired) deadline plus checkpoint slack,
  // not by the work the batch would have done. Generous bound for CI.
  EXPECT_LT(elapsed.count(), 10'000);
}

TEST_F(GovernanceSearchTest, RejectNewLetsRunningQueriesFinish) {
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());
  BatchLimits limits;
  limits.batch_timeout_micros = 1;
  limits.shed_policy = ShedPolicy::kRejectNew;
  auto batch = searcher->SearchBatch(queries_, options_, limits,
                                     256ull << 20, /*num_threads=*/2);
  ASSERT_TRUE(batch.ok());
  // Without deadline folding, a picked-up query runs to completion: every
  // status is ok or shed, never DeadlineExceeded.
  for (size_t q = 0; q < queries_.size(); ++q) {
    const Status& status = batch->statuses[q];
    EXPECT_TRUE(status.ok() || status.IsCancelled())
        << "q=" << q << ": " << status.ToString();
  }
  EXPECT_EQ(0u, batch->stats.queries_deadline_exceeded);
  EXPECT_GT(batch->stats.queries_shed, 0u);
}

TEST_F(GovernanceSearchTest, PerQueryBudgetFailsOnlyOversizedQueries) {
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());
  BatchLimits limits;
  limits.max_query_bytes = 256;
  auto batch = searcher->SearchBatch(queries_, options_, limits);
  ASSERT_TRUE(batch.ok());
  EXPECT_GT(batch->stats.queries_resource_exhausted, 0u)
      << "a 256-byte arena should not fit a real query";
  EXPECT_EQ(queries_.size(), batch->stats.queries_ok +
                                 batch->stats.queries_resource_exhausted);
  for (size_t q = 0; q < queries_.size(); ++q) {
    const Status& status = batch->statuses[q];
    EXPECT_TRUE(status.ok() || status.IsResourceExhausted())
        << "q=" << q << ": " << status.ToString();
  }
}

TEST_F(GovernanceSearchTest, StressFaultsDeadlinesAndThreads) {
  // The combined stress: 4 worker threads, one corrupted hash function
  // (degraded mode drops it mid-batch), a transient injected IO fault
  // (ridden out by the read retry policy), tight per-query deadlines, and a
  // batch deadline. Every query must end in exactly one of
  // {ok, deadline_exceeded, shed}; nothing may crash or race.
  CorruptAllLists(IndexMeta::InvertedIndexPath(dir_, 5));
  auto fault = std::make_unique<FaultInjectionEnv>(Env::Posix());
  SetDefaultEnv(fault.get());
  SearcherOptions open_options;
  open_options.allow_degraded = true;
  auto searcher = Searcher::Open(dir_, open_options);
  if (!searcher.ok()) {
    SetDefaultEnv(nullptr);
    FAIL() << searcher.status().ToString();
  }

  SearchOptions options = options_;
  options.allow_degraded = true;
  options.read_retry.max_attempts = 3;
  options.read_retry.initial_backoff_micros = 1;
  fault->SetFailOnce(true);
  fault->FailAtOp(fault->op_count() + 20);  // one transient mid-batch fault

  BatchLimits limits;
  limits.query_timeout_micros = 2'000;  // tight but not always fatal
  limits.batch_timeout_micros = 200'000;
  for (int round = 0; round < 4; ++round) {
    auto batch = searcher->SearchBatch(queries_, options, limits,
                                       256ull << 20, /*num_threads=*/4);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    const BatchStats& stats = batch->stats;
    EXPECT_EQ(0u, stats.queries_failed) << "round " << round;
    EXPECT_EQ(0u, stats.queries_resource_exhausted);
    EXPECT_EQ(queries_.size(),
              stats.queries_ok + stats.queries_deadline_exceeded +
                  stats.queries_shed)
        << "round " << round;
    for (size_t q = 0; q < queries_.size(); ++q) {
      const Status& status = batch->statuses[q];
      EXPECT_TRUE(status.ok() || status.IsDeadlineExceeded() ||
                  status.IsCancelled())
          << "round " << round << " q=" << q << ": " << status.ToString();
    }
  }
  SetDefaultEnv(nullptr);
}

}  // namespace
}  // namespace ndss
