#include "query/interval_scan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/random.h"

namespace ndss {
namespace {

// Naive ground truth: for every point p, the set of intervals covering p.
// IntervalScan must report, for each point covered by >= alpha intervals,
// exactly that covering set via some group whose segment contains p.
std::vector<uint32_t> Covering(const std::vector<Interval>& intervals,
                               uint32_t point) {
  std::vector<uint32_t> ids;
  for (const Interval& interval : intervals) {
    if (interval.begin <= point && point <= interval.end) {
      ids.push_back(interval.id);
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

void CheckAgainstNaive(const std::vector<Interval>& intervals, uint32_t alpha,
                       uint32_t max_coord) {
  std::vector<IntervalGroup> groups;
  IntervalScan(intervals, alpha, &groups);

  // 1. Every reported group is honest: members really cover the segment,
  //    and sizes are >= alpha.
  for (const IntervalGroup& group : groups) {
    ASSERT_GE(group.members.size(), alpha);
    ASSERT_LE(group.overlap_begin, group.overlap_end);
    std::vector<uint32_t> sorted_members = group.members;
    std::sort(sorted_members.begin(), sorted_members.end());
    for (uint32_t p = group.overlap_begin; p <= group.overlap_end; ++p) {
      ASSERT_EQ(Covering(intervals, p), sorted_members)
          << "point " << p << " in segment [" << group.overlap_begin << ","
          << group.overlap_end << "]";
    }
  }

  // 2. Completeness: every point covered >= alpha times is in exactly one
  //    reported segment.
  for (uint32_t p = 0; p <= max_coord; ++p) {
    const size_t cover = Covering(intervals, p).size();
    int containing = 0;
    for (const IntervalGroup& group : groups) {
      if (group.overlap_begin <= p && p <= group.overlap_end) ++containing;
    }
    if (cover >= alpha) {
      ASSERT_EQ(containing, 1) << "point " << p;
    } else {
      ASSERT_EQ(containing, 0) << "point " << p;
    }
  }
}

TEST(IntervalScanTest, EmptyInput) {
  std::vector<IntervalGroup> groups;
  IntervalScan({}, 1, &groups);
  EXPECT_TRUE(groups.empty());
}

TEST(IntervalScanTest, SingleInterval) {
  std::vector<Interval> intervals = {{2, 5, 0}};
  std::vector<IntervalGroup> groups;
  IntervalScan(intervals, 1, &groups);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].overlap_begin, 2u);
  EXPECT_EQ(groups[0].overlap_end, 5u);
  EXPECT_EQ(groups[0].members, std::vector<uint32_t>{0});
}

TEST(IntervalScanTest, AlphaAboveInputSize) {
  std::vector<Interval> intervals = {{0, 3, 0}, {1, 4, 1}};
  std::vector<IntervalGroup> groups;
  IntervalScan(intervals, 3, &groups);
  EXPECT_TRUE(groups.empty());
}

TEST(IntervalScanTest, TwoOverlapping) {
  std::vector<Interval> intervals = {{0, 5, 0}, {3, 8, 1}};
  CheckAgainstNaive(intervals, 1, 10);
  CheckAgainstNaive(intervals, 2, 10);
}

TEST(IntervalScanTest, DisjointIntervals) {
  std::vector<Interval> intervals = {{0, 2, 0}, {4, 6, 1}, {8, 9, 2}};
  CheckAgainstNaive(intervals, 1, 12);
  CheckAgainstNaive(intervals, 2, 12);
}

TEST(IntervalScanTest, NestedAndTouching) {
  std::vector<Interval> intervals = {
      {0, 10, 0}, {2, 4, 1}, {4, 7, 2}, {7, 7, 3}, {10, 12, 4}};
  for (uint32_t alpha = 1; alpha <= 5; ++alpha) {
    CheckAgainstNaive(intervals, alpha, 14);
  }
}

TEST(IntervalScanTest, IdenticalIntervals) {
  std::vector<Interval> intervals = {{3, 6, 0}, {3, 6, 1}, {3, 6, 2}};
  for (uint32_t alpha = 1; alpha <= 3; ++alpha) {
    CheckAgainstNaive(intervals, alpha, 8);
  }
}

TEST(IntervalScanTest, RandomizedAgainstNaive) {
  Rng rng(2023);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t m = 1 + rng.Uniform(20);
    std::vector<Interval> intervals;
    for (uint32_t id = 0; id < m; ++id) {
      const uint32_t begin = static_cast<uint32_t>(rng.Uniform(30));
      const uint32_t end = begin + static_cast<uint32_t>(rng.Uniform(10));
      intervals.push_back({begin, end, id});
    }
    for (uint32_t alpha : {1u, 2u, 3u, 5u}) {
      CheckAgainstNaive(intervals, alpha, 45);
    }
  }
}

TEST(IntervalScanTest, AlphaZeroRejected) {
  // A zero threshold means the caller miscomputed beta; the old behavior of
  // silently coercing it to 1 returned wrong-but-plausible results.
  std::vector<Interval> intervals = {{0, 5, 0}};
  std::vector<IntervalGroup> groups;
  EXPECT_TRUE(IntervalScan(intervals, 0, &groups).IsInvalidArgument());
  EXPECT_TRUE(groups.empty());
  SweepGroups sweep;
  EXPECT_TRUE(IntervalSweep(intervals, 0, &sweep).IsInvalidArgument());
}

TEST(IntervalScanTest, IntervalEndingAtMaxCoordinate) {
  // Regression: the end event lives at end + 1, which wrapped to 0 in
  // uint32 arithmetic and made the interval sort before every start.
  std::vector<Interval> intervals = {{5, UINT32_MAX, 0}};
  std::vector<IntervalGroup> groups;
  ASSERT_TRUE(IntervalScan(intervals, 1, &groups).ok());
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].overlap_begin, 5u);
  EXPECT_EQ(groups[0].overlap_end, UINT32_MAX);
  EXPECT_EQ(groups[0].members, std::vector<uint32_t>{0});
}

TEST(IntervalScanTest, OverlapAtMaxCoordinate) {
  std::vector<Interval> intervals = {{UINT32_MAX - 2, UINT32_MAX, 0},
                                     {UINT32_MAX - 1, UINT32_MAX, 1}};
  std::vector<IntervalGroup> groups;
  ASSERT_TRUE(IntervalScan(intervals, 2, &groups).ok());
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].overlap_begin, UINT32_MAX - 1);
  EXPECT_EQ(groups[0].overlap_end, UINT32_MAX);
  std::vector<uint32_t> members = groups[0].members;
  std::sort(members.begin(), members.end());
  EXPECT_EQ(members, (std::vector<uint32_t>{0, 1}));
}

TEST(IntervalScanTest, AdjacentSegmentsWithEqualIdsCoalesce) {
  // Regression: two abutting intervals carrying the same id describe one
  // uninterrupted membership, but the sweep used to emit two groups with
  // identical member multisets (duplicate results downstream).
  std::vector<Interval> intervals = {{0, 5, 7}, {6, 10, 7}};
  std::vector<IntervalGroup> groups;
  ASSERT_TRUE(IntervalScan(intervals, 1, &groups).ok());
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].overlap_begin, 0u);
  EXPECT_EQ(groups[0].overlap_end, 10u);
  EXPECT_EQ(groups[0].members, std::vector<uint32_t>{7});
}

TEST(IntervalScanTest, AdjacentSegmentsWithDifferentIdsStaySplit) {
  // Same shape, distinct ids: the membership really changes at 6, so the
  // two segments must stay separate groups.
  std::vector<Interval> intervals = {{0, 5, 7}, {6, 10, 8}};
  std::vector<IntervalGroup> groups;
  ASSERT_TRUE(IntervalScan(intervals, 1, &groups).ok());
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].members, std::vector<uint32_t>{7});
  EXPECT_EQ(groups[1].members, std::vector<uint32_t>{8});
}

TEST(IntervalScanTest, SweepDeltasReplayToScanGroups) {
  // The delta-encoded form (IntervalSweep + SweepReplay) and the
  // materialized form (IntervalScan) must agree group by group.
  Rng rng(99);
  std::vector<Interval> intervals;
  for (uint32_t id = 0; id < 40; ++id) {
    const uint32_t begin = static_cast<uint32_t>(rng.Uniform(60));
    intervals.push_back(
        {begin, begin + static_cast<uint32_t>(rng.Uniform(25)), id});
  }
  for (uint32_t alpha : {1u, 2u, 4u}) {
    std::vector<IntervalGroup> groups;
    ASSERT_TRUE(IntervalScan(intervals, alpha, &groups).ok());
    SweepGroups sweep;
    ASSERT_TRUE(IntervalSweep(intervals, alpha, &sweep).ok());
    ASSERT_EQ(sweep.groups.size(), groups.size());
    SweepReplay replay(intervals.size());
    for (size_t g = 0; g < sweep.groups.size(); ++g) {
      replay.Apply(sweep, g);
      EXPECT_EQ(sweep.groups[g].begin, groups[g].overlap_begin);
      EXPECT_EQ(sweep.groups[g].end, groups[g].overlap_end);
      EXPECT_EQ(sweep.groups[g].count, groups[g].members.size());
      std::vector<uint32_t> ids;
      for (uint32_t instance : replay.active()) {
        ids.push_back(intervals[instance].id);
      }
      std::vector<uint32_t> expected = groups[g].members;
      std::sort(ids.begin(), ids.end());
      std::sort(expected.begin(), expected.end());
      EXPECT_EQ(ids, expected) << "group " << g;
    }
  }
}

TEST(IntervalScanTest, SegmentsAreDisjointAndOrdered) {
  Rng rng(17);
  std::vector<Interval> intervals;
  for (uint32_t id = 0; id < 30; ++id) {
    const uint32_t begin = static_cast<uint32_t>(rng.Uniform(50));
    intervals.push_back({begin, begin + static_cast<uint32_t>(rng.Uniform(20)),
                         id});
  }
  std::vector<IntervalGroup> groups;
  IntervalScan(intervals, 2, &groups);
  for (size_t i = 1; i < groups.size(); ++i) {
    EXPECT_GT(groups[i].overlap_begin, groups[i - 1].overlap_end);
  }
}

}  // namespace
}  // namespace ndss
