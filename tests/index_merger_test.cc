#include "index/index_merger.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "corpusgen/synthetic.h"
#include "index/inverted_index_reader.h"
#include "query/searcher.h"

namespace ndss {
namespace {

class IndexMergerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ndss_merge_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    ASSERT_TRUE(CreateDirectories(dir_).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Dumps every (func, key, window) of an index, sorted.
  static std::vector<KeyedWindow> Dump(const std::string& dir, uint32_t k) {
    std::vector<KeyedWindow> all;
    for (uint32_t func = 0; func < k; ++func) {
      auto reader =
          InvertedIndexReader::Open(IndexMeta::InvertedIndexPath(dir, func));
      EXPECT_TRUE(reader.ok());
      for (const ListMeta& meta : reader->directory()) {
        std::vector<PostedWindow> windows;
        EXPECT_TRUE(reader->ReadList(meta, &windows).ok());
        for (const PostedWindow& w : windows) {
          all.push_back(KeyedWindow{meta.key, w.text + func * 10000000u, w.l,
                                    w.c, w.r});
        }
      }
    }
    std::sort(all.begin(), all.end(), KeyedWindowLess);
    return all;
  }

  std::string dir_;
};

TEST_F(IndexMergerTest, MergedShardsEqualFullBuild) {
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 120;
  corpus_options.vocab_size = 400;
  corpus_options.plant_rate = 0.3;
  corpus_options.seed = 71;
  SyntheticCorpus sc = GenerateSyntheticCorpus(corpus_options);

  // Split into three contiguous shards.
  Corpus shard1, shard2, shard3;
  for (size_t i = 0; i < 40; ++i) shard1.AddText(sc.corpus.text(i));
  for (size_t i = 40; i < 80; ++i) shard2.AddText(sc.corpus.text(i));
  for (size_t i = 80; i < 120; ++i) shard3.AddText(sc.corpus.text(i));

  IndexBuildOptions build;
  build.k = 5;
  build.t = 20;
  ASSERT_TRUE(BuildIndexInMemory(sc.corpus, dir_ + "/full", build).ok());
  ASSERT_TRUE(BuildIndexInMemory(shard1, dir_ + "/s1", build).ok());
  ASSERT_TRUE(BuildIndexInMemory(shard2, dir_ + "/s2", build).ok());
  ASSERT_TRUE(BuildIndexInMemory(shard3, dir_ + "/s3", build).ok());

  auto stats = MergeIndexes({dir_ + "/s1", dir_ + "/s2", dir_ + "/s3"},
                            dir_ + "/merged", IndexMergeOptions{});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(Dump(dir_ + "/merged", build.k), Dump(dir_ + "/full", build.k));

  auto meta = IndexMeta::Load(dir_ + "/merged");
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->num_texts, 120u);
  EXPECT_EQ(meta->total_tokens, sc.corpus.total_tokens());
}

TEST_F(IndexMergerTest, MergedIndexSearchesLikeFullIndex) {
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 80;
  corpus_options.vocab_size = 300;
  corpus_options.plant_rate = 0.4;
  corpus_options.seed = 72;
  SyntheticCorpus sc = GenerateSyntheticCorpus(corpus_options);
  Corpus first, second;
  for (size_t i = 0; i < 40; ++i) first.AddText(sc.corpus.text(i));
  for (size_t i = 40; i < 80; ++i) second.AddText(sc.corpus.text(i));

  IndexBuildOptions build;
  build.k = 6;
  build.t = 15;
  ASSERT_TRUE(BuildIndexInMemory(sc.corpus, dir_ + "/full", build).ok());
  ASSERT_TRUE(BuildIndexInMemory(first, dir_ + "/s1", build).ok());
  ASSERT_TRUE(BuildIndexInMemory(second, dir_ + "/s2", build).ok());
  ASSERT_TRUE(MergeIndexes({dir_ + "/s1", dir_ + "/s2"}, dir_ + "/merged",
                           IndexMergeOptions{})
                  .ok());

  auto full = Searcher::Open(dir_ + "/full");
  auto merged = Searcher::Open(dir_ + "/merged");
  ASSERT_TRUE(full.ok() && merged.ok());
  Rng rng(1);
  for (int q = 0; q < 8; ++q) {
    const TextId source = static_cast<TextId>(rng.Uniform(80));
    const auto text = sc.corpus.text(source);
    const uint32_t length =
        std::min<uint32_t>(30, static_cast<uint32_t>(text.size()));
    const std::vector<Token> query =
        PerturbSequence(text, 0, length, 0.1, 300, rng);
    SearchOptions options;
    options.theta = 0.7;
    auto a = full->Search(query, options);
    auto b = merged->Search(query, options);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->spans.size(), b->spans.size()) << "query " << q;
    for (size_t i = 0; i < a->spans.size(); ++i) {
      EXPECT_EQ(a->spans[i].text, b->spans[i].text);
      EXPECT_EQ(a->spans[i].begin, b->spans[i].begin);
      EXPECT_EQ(a->spans[i].end, b->spans[i].end);
    }
  }
}

TEST_F(IndexMergerTest, MergeToCompressedOutput) {
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 40;
  corpus_options.vocab_size = 200;
  corpus_options.seed = 73;
  SyntheticCorpus sc = GenerateSyntheticCorpus(corpus_options);
  Corpus first, second;
  for (size_t i = 0; i < 20; ++i) first.AddText(sc.corpus.text(i));
  for (size_t i = 20; i < 40; ++i) second.AddText(sc.corpus.text(i));

  IndexBuildOptions build;
  build.k = 3;
  build.t = 15;
  ASSERT_TRUE(BuildIndexInMemory(first, dir_ + "/s1", build).ok());
  ASSERT_TRUE(BuildIndexInMemory(second, dir_ + "/s2", build).ok());
  IndexMergeOptions merge;
  merge.posting_format = index_format::kFormatCompressed;
  auto stats = MergeIndexes({dir_ + "/s1", dir_ + "/s2"}, dir_ + "/merged",
                            merge);
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(BuildIndexInMemory(sc.corpus, dir_ + "/full", build).ok());
  EXPECT_EQ(Dump(dir_ + "/merged", build.k), Dump(dir_ + "/full", build.k));
}

TEST_F(IndexMergerTest, SingleShardMergeIsIdentityRebuild) {
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 25;
  corpus_options.vocab_size = 150;
  corpus_options.seed = 75;
  SyntheticCorpus sc = GenerateSyntheticCorpus(corpus_options);
  IndexBuildOptions build;
  build.k = 4;
  build.t = 15;
  ASSERT_TRUE(BuildIndexInMemory(sc.corpus, dir_ + "/s1", build).ok());

  auto stats = MergeIndexes({dir_ + "/s1"}, dir_ + "/merged",
                            IndexMergeOptions{});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(Dump(dir_ + "/merged", build.k), Dump(dir_ + "/s1", build.k));
  auto meta = IndexMeta::Load(dir_ + "/merged");
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->num_texts, 25u);
}

TEST_F(IndexMergerTest, EmptyShardContributesOnlyItsIdRange) {
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 30;
  corpus_options.vocab_size = 150;
  corpus_options.seed = 76;
  SyntheticCorpus sc = GenerateSyntheticCorpus(corpus_options);
  IndexBuildOptions build;
  build.k = 4;
  build.t = 15;

  // A shard whose every text is shorter than t posts no windows at all,
  // but its texts still occupy ids — the merge must keep the offsets.
  Corpus first, empty, third;
  for (size_t i = 0; i < 15; ++i) first.AddText(sc.corpus.text(i));
  for (int i = 0; i < 5; ++i) {
    empty.AddText(std::vector<Token>{1, 2, 3});
  }
  for (size_t i = 15; i < 30; ++i) third.AddText(sc.corpus.text(i));
  ASSERT_TRUE(BuildIndexInMemory(first, dir_ + "/s1", build).ok());
  ASSERT_TRUE(BuildIndexInMemory(empty, dir_ + "/s2", build).ok());
  ASSERT_TRUE(BuildIndexInMemory(third, dir_ + "/s3", build).ok());

  auto stats = MergeIndexes({dir_ + "/s1", dir_ + "/s2", dir_ + "/s3"},
                            dir_ + "/merged", IndexMergeOptions{});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  Corpus combined;
  for (size_t i = 0; i < 15; ++i) combined.AddText(sc.corpus.text(i));
  for (int i = 0; i < 5; ++i) combined.AddText(std::vector<Token>{1, 2, 3});
  for (size_t i = 15; i < 30; ++i) combined.AddText(sc.corpus.text(i));
  ASSERT_TRUE(BuildIndexInMemory(combined, dir_ + "/full", build).ok());
  EXPECT_EQ(Dump(dir_ + "/merged", build.k), Dump(dir_ + "/full", build.k));
  auto meta = IndexMeta::Load(dir_ + "/merged");
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->num_texts, 35u);
}

TEST_F(IndexMergerTest, MixedPostingFormatsMerge) {
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 40;
  corpus_options.vocab_size = 200;
  corpus_options.seed = 77;
  SyntheticCorpus sc = GenerateSyntheticCorpus(corpus_options);
  Corpus first, second;
  for (size_t i = 0; i < 20; ++i) first.AddText(sc.corpus.text(i));
  for (size_t i = 20; i < 40; ++i) second.AddText(sc.corpus.text(i));

  // One raw shard, one compressed shard: the merge must read both.
  IndexBuildOptions raw;
  raw.k = 3;
  raw.t = 15;
  IndexBuildOptions compressed = raw;
  compressed.posting_format = index_format::kFormatCompressed;
  ASSERT_TRUE(BuildIndexInMemory(first, dir_ + "/s1", raw).ok());
  ASSERT_TRUE(BuildIndexInMemory(second, dir_ + "/s2", compressed).ok());

  auto stats = MergeIndexes({dir_ + "/s1", dir_ + "/s2"}, dir_ + "/merged",
                            IndexMergeOptions{});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_TRUE(BuildIndexInMemory(sc.corpus, dir_ + "/full", raw).ok());
  EXPECT_EQ(Dump(dir_ + "/merged", raw.k), Dump(dir_ + "/full", raw.k));
}

TEST_F(IndexMergerTest, MismatchedBuildParametersRejected) {
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 10;
  corpus_options.vocab_size = 100;
  corpus_options.seed = 78;
  SyntheticCorpus sc = GenerateSyntheticCorpus(corpus_options);
  IndexBuildOptions base;
  base.k = 4;
  base.t = 15;
  ASSERT_TRUE(BuildIndexInMemory(sc.corpus, dir_ + "/base", base).ok());

  IndexBuildOptions different_k = base;
  different_k.k = 5;
  ASSERT_TRUE(BuildIndexInMemory(sc.corpus, dir_ + "/k", different_k).ok());
  EXPECT_FALSE(MergeIndexes({dir_ + "/base", dir_ + "/k"}, dir_ + "/out",
                            IndexMergeOptions{})
                   .ok());

  IndexBuildOptions different_seed = base;
  different_seed.seed = base.seed + 1;
  ASSERT_TRUE(
      BuildIndexInMemory(sc.corpus, dir_ + "/seed", different_seed).ok());
  EXPECT_FALSE(MergeIndexes({dir_ + "/base", dir_ + "/seed"}, dir_ + "/out",
                            IndexMergeOptions{})
                   .ok());
}

TEST_F(IndexMergerTest, DuplicateAndEmptyShardListsRejected) {
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 10;
  corpus_options.vocab_size = 100;
  corpus_options.seed = 79;
  SyntheticCorpus sc = GenerateSyntheticCorpus(corpus_options);
  IndexBuildOptions build;
  build.k = 3;
  build.t = 15;
  ASSERT_TRUE(BuildIndexInMemory(sc.corpus, dir_ + "/s1", build).ok());

  auto duplicate = MergeIndexes({dir_ + "/s1", dir_ + "/s1"}, dir_ + "/out",
                                IndexMergeOptions{});
  ASSERT_FALSE(duplicate.ok());
  EXPECT_TRUE(duplicate.status().IsInvalidArgument());

  // Different spellings of the same directory are still duplicates.
  auto spelled = MergeIndexes({dir_ + "/s1", dir_ + "/./s1"}, dir_ + "/out",
                              IndexMergeOptions{});
  ASSERT_FALSE(spelled.ok());
  EXPECT_TRUE(spelled.status().IsInvalidArgument());

  auto empty = MergeIndexes({}, dir_ + "/out", IndexMergeOptions{});
  ASSERT_FALSE(empty.ok());
  EXPECT_TRUE(empty.status().IsInvalidArgument());
}

TEST_F(IndexMergerTest, IncompatibleShardsRejected) {
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 10;
  corpus_options.vocab_size = 100;
  corpus_options.seed = 74;
  SyntheticCorpus sc = GenerateSyntheticCorpus(corpus_options);
  IndexBuildOptions a;
  a.k = 4;
  a.t = 15;
  IndexBuildOptions b = a;
  b.t = 20;
  ASSERT_TRUE(BuildIndexInMemory(sc.corpus, dir_ + "/s1", a).ok());
  ASSERT_TRUE(BuildIndexInMemory(sc.corpus, dir_ + "/s2", b).ok());
  EXPECT_FALSE(
      MergeIndexes({dir_ + "/s1", dir_ + "/s2"}, dir_ + "/out",
                   IndexMergeOptions{})
          .ok());
  EXPECT_FALSE(MergeIndexes({}, dir_ + "/out", IndexMergeOptions{}).ok());
}

TEST_F(IndexMergerTest, MixedSketchSchemesRejected) {
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 10;
  corpus_options.vocab_size = 100;
  corpus_options.seed = 75;
  SyntheticCorpus sc = GenerateSyntheticCorpus(corpus_options);
  // Same (k, seed, t) but different sketch schemes: the window keys were
  // drawn from different hash functions, so merging would interleave
  // incomparable postings.
  IndexBuildOptions a;
  a.k = 4;
  a.t = 15;
  IndexBuildOptions b = a;
  b.sketch = SketchSchemeId::kCMinHash;
  ASSERT_TRUE(BuildIndexInMemory(sc.corpus, dir_ + "/s1", a).ok());
  ASSERT_TRUE(BuildIndexInMemory(sc.corpus, dir_ + "/s2", b).ok());
  auto mixed = MergeIndexes({dir_ + "/s1", dir_ + "/s2"}, dir_ + "/out",
                            IndexMergeOptions{});
  ASSERT_FALSE(mixed.ok());
  EXPECT_TRUE(mixed.status().IsInvalidArgument());
  EXPECT_NE(mixed.status().ToString().find("sketch scheme"),
            std::string::npos);

  // Matching cminhash shards merge fine, and the scheme survives the merge.
  ASSERT_TRUE(BuildIndexInMemory(sc.corpus, dir_ + "/s3", b).ok());
  auto merged = MergeIndexes({dir_ + "/s2", dir_ + "/s3"}, dir_ + "/out2",
                             IndexMergeOptions{});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  auto meta = IndexMeta::Load(dir_ + "/out2");
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->sketch, SketchSchemeId::kCMinHash);
}

}  // namespace
}  // namespace ndss
