#include "query/collision_count.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"

namespace ndss {
namespace {

// Naive ground truth: number of windows containing sequence (i, j).
uint32_t NaiveCollisions(const std::vector<PostedWindow>& windows, uint32_t i,
                         uint32_t j) {
  uint32_t count = 0;
  for (const PostedWindow& w : windows) {
    if (w.l <= i && i <= w.c && w.c <= j && j <= w.r) ++count;
  }
  return count;
}

// Rectangle cover of (i, j) among CollisionCount results.
int RectanglesContaining(const std::vector<MatchRectangle>& rects, uint32_t i,
                         uint32_t j, uint32_t* collisions) {
  int containing = 0;
  for (const MatchRectangle& r : rects) {
    if (r.x_begin <= i && i <= r.x_end && r.y_begin <= j && j <= r.y_end) {
      ++containing;
      *collisions = r.collisions;
    }
  }
  return containing;
}

void CheckAgainstNaive(const std::vector<PostedWindow>& windows,
                       uint32_t alpha, uint32_t max_pos) {
  std::vector<MatchRectangle> rects;
  CollisionCount(windows, alpha, &rects);
  for (uint32_t i = 0; i <= max_pos; ++i) {
    for (uint32_t j = i; j <= max_pos; ++j) {
      const uint32_t naive = NaiveCollisions(windows, i, j);
      uint32_t reported = 0;
      const int containing = RectanglesContaining(rects, i, j, &reported);
      if (naive >= alpha) {
        ASSERT_EQ(containing, 1) << "(" << i << "," << j << ")";
        ASSERT_EQ(reported, naive) << "(" << i << "," << j << ")";
      } else {
        ASSERT_EQ(containing, 0) << "(" << i << "," << j << ")";
      }
    }
  }
}

PostedWindow W(uint32_t l, uint32_t c, uint32_t r) {
  return PostedWindow{0, l, c, r};
}

TEST(CollisionCountTest, EmptyGroup) {
  std::vector<MatchRectangle> rects;
  CollisionCount({}, 1, &rects);
  EXPECT_TRUE(rects.empty());
}

TEST(CollisionCountTest, SingleWindowAlphaOne) {
  std::vector<PostedWindow> windows = {W(2, 4, 7)};
  std::vector<MatchRectangle> rects;
  CollisionCount(windows, 1, &rects);
  ASSERT_EQ(rects.size(), 1u);
  EXPECT_EQ(rects[0].x_begin, 2u);
  EXPECT_EQ(rects[0].x_end, 4u);
  EXPECT_EQ(rects[0].y_begin, 4u);
  EXPECT_EQ(rects[0].y_end, 7u);
  EXPECT_EQ(rects[0].collisions, 1u);
}

TEST(CollisionCountTest, TwoWindowsSharedCore) {
  // Windows overlap both on left and right sides.
  std::vector<PostedWindow> windows = {W(0, 5, 10), W(3, 6, 12)};
  CheckAgainstNaive(windows, 1, 14);
  CheckAgainstNaive(windows, 2, 14);
}

TEST(CollisionCountTest, LeftOverlapButNoRightOverlap) {
  // Left intervals overlap, right intervals are disjoint → no pair at
  // alpha = 2.
  std::vector<PostedWindow> windows = {W(0, 5, 6), W(2, 8, 12)};
  std::vector<MatchRectangle> rects;
  CollisionCount(windows, 2, &rects);
  EXPECT_TRUE(rects.empty());
  CheckAgainstNaive(windows, 1, 14);
}

TEST(CollisionCountTest, AlphaAboveGroupSize) {
  std::vector<PostedWindow> windows = {W(0, 2, 4), W(1, 3, 5)};
  std::vector<MatchRectangle> rects;
  CollisionCount(windows, 3, &rects);
  EXPECT_TRUE(rects.empty());
}

TEST(CollisionCountTest, IdenticalWindows) {
  std::vector<PostedWindow> windows = {W(1, 3, 8), W(1, 3, 8), W(1, 3, 8)};
  for (uint32_t alpha = 1; alpha <= 3; ++alpha) {
    CheckAgainstNaive(windows, alpha, 10);
  }
}

TEST(CollisionCountTest, AlphaZeroRejected) {
  std::vector<PostedWindow> windows = {W(0, 2, 4)};
  std::vector<MatchRectangle> rects;
  EXPECT_TRUE(CollisionCount(windows, 0, &rects).IsInvalidArgument());
  EXPECT_TRUE(rects.empty());
}

TEST(CollisionCountTest, FragmentedRectanglesCoalesce) {
  // Regression: the left sweep splits [0, 9] at i = 6 (w0 ends, w1 starts)
  // but every sequence (i, j) with i in [0, 9], j in [9, 20] lies in
  // exactly two windows, so the two fragments describe one rectangle. The
  // old implementation reported both, fragmenting downstream spans and
  // double-reporting the region to anyone summing areas.
  std::vector<PostedWindow> windows = {W(0, 5, 20), W(6, 9, 20), W(0, 9, 20)};
  std::vector<MatchRectangle> rects;
  ASSERT_TRUE(CollisionCount(windows, 2, &rects).ok());
  ASSERT_EQ(rects.size(), 1u);
  EXPECT_EQ(rects[0], (MatchRectangle{0, 9, 9, 20, 2}));
  CheckAgainstNaive(windows, 2, 24);
}

TEST(CollisionCountTest, RandomizedAgainstNaive) {
  Rng rng(4242);
  for (int trial = 0; trial < 60; ++trial) {
    const size_t m = 1 + rng.Uniform(12);
    std::vector<PostedWindow> windows;
    for (size_t w = 0; w < m; ++w) {
      const uint32_t c = static_cast<uint32_t>(rng.Uniform(25));
      const uint32_t l = c - std::min<uint32_t>(c, rng.Uniform(8));
      const uint32_t r = c + static_cast<uint32_t>(rng.Uniform(8));
      windows.push_back(W(l, c, r));
    }
    for (uint32_t alpha : {1u, 2u, 3u, 4u}) {
      CheckAgainstNaive(windows, alpha, 35);
    }
  }
}

TEST(CollisionCountTest, CollisionsNeverExceedGroupSize) {
  Rng rng(5);
  std::vector<PostedWindow> windows;
  for (size_t w = 0; w < 10; ++w) {
    const uint32_t c = 10 + static_cast<uint32_t>(rng.Uniform(5));
    windows.push_back(W(c - rng.Uniform(10), c, c + rng.Uniform(10)));
  }
  std::vector<MatchRectangle> rects;
  CollisionCount(windows, 1, &rects);
  for (const MatchRectangle& r : rects) {
    EXPECT_LE(r.collisions, windows.size());
    EXPECT_GE(r.collisions, 1u);
    EXPECT_LE(r.x_begin, r.x_end);
    EXPECT_LE(r.y_begin, r.y_end);
    EXPECT_LE(r.x_end, r.y_begin + 0u + 25u);  // sanity
  }
}

}  // namespace
}  // namespace ndss
