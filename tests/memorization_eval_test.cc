#include "eval/memorization_eval.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "corpusgen/synthetic.h"
#include "index/index_builder.h"
#include "lm/memorizing_generator.h"

namespace ndss {
namespace {

class MemorizationEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ndss_memeval_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);

    SyntheticCorpusOptions options;
    options.num_texts = 120;
    options.min_text_length = 150;
    options.max_text_length = 400;
    options.vocab_size = 2000;
    options.plant_rate = 0.0;
    options.seed = 21;
    sc_ = GenerateSyntheticCorpus(options);

    IndexBuildOptions build;
    build.k = 8;
    build.t = 20;
    ASSERT_TRUE(BuildIndexInMemory(sc_.corpus, dir_, build).ok());

    model_ = std::make_unique<NGramModel>(3);
    model_->Train(sc_.corpus);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  SyntheticCorpus sc_;
  std::unique_ptr<NGramModel> model_;
};

TEST_F(MemorizationEvalTest, ZeroCopyModelHasLowRatio) {
  MemorizationProfile profile;
  profile.copy_start_prob = 0.0;
  MemorizingGenerator generator(*model_, sc_.corpus, profile, 9);
  const auto generated = generator.Generate(6, 256, SamplingOptions{});

  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());
  MemorizationEvalOptions options;
  options.window_width = 32;
  options.search.theta = 0.9;
  auto report = EvaluateMemorization(*searcher, generated.texts, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->windows, 6u * (256 / 32));
  EXPECT_LT(report->ratio, 0.2);
}

TEST_F(MemorizationEvalTest, HeavyCopyModelHasHighRatio) {
  MemorizationProfile profile;
  profile.copy_start_prob = 0.05;  // copies dominate the text
  profile.min_copy_length = 60;
  profile.max_copy_length = 120;
  profile.fidelity = 1.0;
  MemorizingGenerator generator(*model_, sc_.corpus, profile, 10);
  const auto generated = generator.Generate(6, 256, SamplingOptions{});
  ASSERT_FALSE(generated.copies.empty());

  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());
  MemorizationEvalOptions options;
  options.window_width = 32;
  options.search.theta = 0.8;
  auto report = EvaluateMemorization(*searcher, generated.texts, options);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->ratio, 0.3);
}

TEST_F(MemorizationEvalTest, RatioGrowsAsThetaDrops) {
  MemorizationProfile profile;
  profile.copy_start_prob = 0.01;
  profile.fidelity = 0.9;
  MemorizingGenerator generator(*model_, sc_.corpus, profile, 11);
  const auto generated = generator.Generate(8, 256, SamplingOptions{});

  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());
  double previous = -1.0;
  for (double theta : {1.0, 0.8, 0.6}) {
    MemorizationEvalOptions options;
    options.window_width = 32;
    options.search.theta = theta;
    auto report = EvaluateMemorization(*searcher, generated.texts, options);
    ASSERT_TRUE(report.ok());
    EXPECT_GE(report->ratio, previous) << "theta " << theta;
    previous = report->ratio;
  }
}

TEST_F(MemorizationEvalTest, WindowWidthValidation) {
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());
  MemorizationEvalOptions options;
  options.window_width = 0;
  std::vector<std::vector<Token>> texts;
  EXPECT_TRUE(EvaluateMemorization(*searcher, texts, options)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(MemorizationEvalTest, EmptyInputGivesZeroWindows) {
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());
  MemorizationEvalOptions options;
  options.window_width = 32;
  std::vector<std::vector<Token>> texts;
  auto report = EvaluateMemorization(*searcher, texts, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->windows, 0u);
  EXPECT_EQ(report->ratio, 0.0);
}

}  // namespace
}  // namespace ndss
