// Failure injection: truncated and bit-flipped index/corpus/model files
// must produce clean Status errors (Corruption / IOError), never crashes or
// silent wrong answers.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "corpusgen/synthetic.h"
#include "index/index_builder.h"
#include "index/inverted_index_reader.h"
#include "query/searcher.h"
#include "text/corpus_file.h"
#include "tokenizer/bpe_model.h"

namespace ndss {
namespace {

class FailureInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ndss_fail_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    ASSERT_TRUE(CreateDirectories(dir_).ok());

    SyntheticCorpusOptions options;
    options.num_texts = 30;
    options.vocab_size = 200;
    options.seed = 50;
    sc_ = GenerateSyntheticCorpus(options);

    IndexBuildOptions build;
    build.k = 4;
    build.t = 15;
    ASSERT_TRUE(BuildIndexInMemory(sc_.corpus, dir_ + "/idx", build).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Truncates `path` to `size` bytes.
  static void Truncate(const std::string& path, uint64_t size) {
    std::filesystem::resize_file(path, size);
  }

  /// Flips one byte of `path` at `offset`.
  static void FlipByte(const std::string& path, uint64_t offset) {
    auto data = ReadFileToString(path);
    ASSERT_TRUE(data.ok());
    ASSERT_LT(offset, data->size());
    (*data)[offset] ^= 0x5a;
    ASSERT_TRUE(WriteStringToFile(path, *data).ok());
  }

  std::string dir_;
  SyntheticCorpus sc_;
};

TEST_F(FailureInjectionTest, TruncatedIndexFileRejectedAtEveryLength) {
  const std::string path = IndexMeta::InvertedIndexPath(dir_ + "/idx", 0);
  auto size = FileSize(path);
  ASSERT_TRUE(size.ok());
  // A range of truncation points: header, mid-lists, mid-directory.
  for (uint64_t keep :
       {uint64_t{0}, uint64_t{10}, uint64_t{24}, *size / 2, *size - 8,
        *size - 1}) {
    const std::string copy = dir_ + "/trunc.ndx";
    std::filesystem::copy_file(
        path, copy, std::filesystem::copy_options::overwrite_existing);
    Truncate(copy, keep);
    auto reader = InvertedIndexReader::Open(copy);
    EXPECT_FALSE(reader.ok()) << "kept " << keep << " bytes";
  }
}

TEST_F(FailureInjectionTest, CorruptHeaderMagicRejected) {
  const std::string path = IndexMeta::InvertedIndexPath(dir_ + "/idx", 1);
  FlipByte(path, 3);
  EXPECT_FALSE(InvertedIndexReader::Open(path).ok());
}

TEST_F(FailureInjectionTest, CorruptFooterMagicRejected) {
  const std::string path = IndexMeta::InvertedIndexPath(dir_ + "/idx", 1);
  auto size = FileSize(path);
  ASSERT_TRUE(size.ok());
  FlipByte(path, *size - 2);
  EXPECT_FALSE(InvertedIndexReader::Open(path).ok());
}

TEST_F(FailureInjectionTest, MissingIndexFileFailsOpen) {
  ASSERT_TRUE(
      RemoveFile(IndexMeta::InvertedIndexPath(dir_ + "/idx", 2)).ok());
  EXPECT_FALSE(Searcher::Open(dir_ + "/idx").ok());
}

TEST_F(FailureInjectionTest, CorruptMetaRejected) {
  FlipByte(dir_ + "/idx/index.meta", 0);
  EXPECT_FALSE(Searcher::Open(dir_ + "/idx").ok());
}

TEST_F(FailureInjectionTest, TruncatedMetaRejected) {
  Truncate(dir_ + "/idx/index.meta", 10);
  EXPECT_FALSE(Searcher::Open(dir_ + "/idx").ok());
}

TEST_F(FailureInjectionTest, TruncatedCorpusRejected) {
  const std::string path = dir_ + "/corpus.crp";
  ASSERT_TRUE(WriteCorpusFile(path, sc_.corpus).ok());
  auto size = FileSize(path);
  ASSERT_TRUE(size.ok());
  for (uint64_t keep : {uint64_t{0}, uint64_t{7}, *size / 2, *size - 3}) {
    const std::string copy = dir_ + "/trunc.crp";
    std::filesystem::copy_file(
        path, copy, std::filesystem::copy_options::overwrite_existing);
    Truncate(copy, keep);
    auto reader = CorpusFileReader::Open(copy);
    if (reader.ok()) {
      // A truncation can preserve the footer region only if it removed
      // nothing relevant; reading all texts must then still fail or
      // succeed without crashing.
      auto all = reader->ReadAll();
      (void)all;
    }
  }
  SUCCEED();
}

TEST_F(FailureInjectionTest, CorruptBpeModelRejected) {
  const std::string path = dir_ + "/model.bpe";
  auto model = BpeModel::FromMerges({{'a', 'b'}, {256, 'c'}});
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->Save(path).ok());
  FlipByte(path, 1);
  EXPECT_FALSE(BpeModel::Load(path).ok());
  // Truncated model file.
  ASSERT_TRUE(model->Save(path).ok());
  Truncate(path, 12);
  EXPECT_FALSE(BpeModel::Load(path).ok());
}

TEST_F(FailureInjectionTest, SearchAfterListRegionCorruptionIsContained) {
  // Flip a byte inside the posting region; opening still succeeds (the
  // directory is intact) and searches must not crash — results may change
  // but every path returns a Status.
  const std::string path = IndexMeta::InvertedIndexPath(dir_ + "/idx", 0);
  FlipByte(path, 30);  // inside the first list
  auto searcher = Searcher::Open(dir_ + "/idx");
  if (!searcher.ok()) return;  // also acceptable
  const auto text = sc_.corpus.text(0);
  const std::vector<Token> query(text.begin(), text.begin() + 20);
  SearchOptions options;
  options.theta = 0.5;
  auto result = searcher->Search(query, options);
  (void)result;  // ok() either way; must simply not crash
  SUCCEED();
}

}  // namespace
}  // namespace ndss
