// Failure injection: truncated and bit-flipped index/corpus/model files
// must produce clean Status errors (Corruption / IOError), never crashes or
// silent wrong answers.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "common/coding.h"
#include "common/file_io.h"
#include "corpusgen/synthetic.h"
#include "index/index_builder.h"
#include "index/index_format.h"
#include "index/index_merger.h"
#include "index/inverted_index_reader.h"
#include "index/inverted_index_writer.h"
#include "query/searcher.h"
#include "text/corpus_file.h"
#include "tokenizer/bpe_model.h"

namespace ndss {
namespace {

class FailureInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ndss_fail_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    ASSERT_TRUE(CreateDirectories(dir_).ok());

    SyntheticCorpusOptions options;
    options.num_texts = 30;
    options.vocab_size = 200;
    options.seed = 50;
    sc_ = GenerateSyntheticCorpus(options);

    IndexBuildOptions build;
    build.k = 4;
    build.t = 15;
    ASSERT_TRUE(BuildIndexInMemory(sc_.corpus, dir_ + "/idx", build).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Truncates `path` to `size` bytes.
  static void Truncate(const std::string& path, uint64_t size) {
    std::filesystem::resize_file(path, size);
  }

  /// Flips one byte of `path` at `offset`.
  static void FlipByte(const std::string& path, uint64_t offset) {
    auto data = ReadFileToString(path);
    ASSERT_TRUE(data.ok());
    ASSERT_LT(offset, data->size());
    (*data)[offset] ^= 0x5a;
    ASSERT_TRUE(WriteStringToFile(path, *data).ok());
  }

  /// Overwrites one byte of `path` at `offset` with `value`.
  static void PatchByte(const std::string& path, uint64_t offset,
                        char value) {
    auto data = ReadFileToString(path);
    ASSERT_TRUE(data.ok());
    ASSERT_LT(offset, data->size());
    (*data)[offset] = value;
    ASSERT_TRUE(WriteStringToFile(path, *data).ok());
  }

  /// XORs every byte of the posting/zone region of an inverted-index file,
  /// leaving header, directory, and footer intact: the file still opens, but
  /// every list and zone read fails its CRC.
  static void CorruptAllLists(const std::string& path) {
    auto data = ReadFileToString(path);
    ASSERT_TRUE(data.ok());
    ASSERT_GT(data->size(), index_format::kHeaderSize +
                                index_format::kFooterSize);
    const uint64_t directory_offset =
        DecodeFixed64(data->data() + data->size() -
                      index_format::kFooterSize + 16);
    ASSERT_LE(directory_offset, data->size());
    for (uint64_t i = index_format::kHeaderSize; i < directory_offset; ++i) {
      (*data)[i] ^= 0x5a;
    }
    ASSERT_TRUE(WriteStringToFile(path, *data).ok());
  }

  /// Runs a fixed query set and flattens the spans, so two searchers can be
  /// compared for exact agreement.
  std::vector<std::string> RunQueries(Searcher& searcher, bool degraded) {
    SearchOptions options;
    options.theta = 0.5;
    options.allow_degraded = degraded;
    std::vector<std::string> fingerprints;
    for (TextId text = 0; text < 6; ++text) {
      const auto tokens = sc_.corpus.text(text);
      const std::vector<Token> query(tokens.begin(), tokens.begin() + 40);
      auto result = searcher.Search(query, options);
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      if (!result.ok()) return fingerprints;
      std::string fp;
      for (const MatchSpan& span : result->spans) {
        fp += std::to_string(span.text) + ":" + std::to_string(span.begin) +
              "-" + std::to_string(span.end) + "/" +
              std::to_string(span.collisions) + ";";
      }
      fingerprints.push_back(std::move(fp));
    }
    return fingerprints;
  }

  std::string dir_;
  SyntheticCorpus sc_;
};

TEST_F(FailureInjectionTest, TruncatedIndexFileRejectedAtEveryLength) {
  const std::string path = IndexMeta::InvertedIndexPath(dir_ + "/idx", 0);
  auto size = FileSize(path);
  ASSERT_TRUE(size.ok());
  // A range of truncation points: header, mid-lists, mid-directory.
  for (uint64_t keep :
       {uint64_t{0}, uint64_t{10}, uint64_t{24}, *size / 2, *size - 8,
        *size - 1}) {
    const std::string copy = dir_ + "/trunc.ndx";
    std::filesystem::copy_file(
        path, copy, std::filesystem::copy_options::overwrite_existing);
    Truncate(copy, keep);
    auto reader = InvertedIndexReader::Open(copy);
    EXPECT_FALSE(reader.ok()) << "kept " << keep << " bytes";
  }
}

TEST_F(FailureInjectionTest, CorruptHeaderMagicRejected) {
  const std::string path = IndexMeta::InvertedIndexPath(dir_ + "/idx", 1);
  FlipByte(path, 3);
  EXPECT_FALSE(InvertedIndexReader::Open(path).ok());
}

TEST_F(FailureInjectionTest, CorruptFooterMagicRejected) {
  const std::string path = IndexMeta::InvertedIndexPath(dir_ + "/idx", 1);
  auto size = FileSize(path);
  ASSERT_TRUE(size.ok());
  FlipByte(path, *size - 2);
  EXPECT_FALSE(InvertedIndexReader::Open(path).ok());
}

TEST_F(FailureInjectionTest, MissingIndexFileFailsOpen) {
  ASSERT_TRUE(
      RemoveFile(IndexMeta::InvertedIndexPath(dir_ + "/idx", 2)).ok());
  EXPECT_FALSE(Searcher::Open(dir_ + "/idx").ok());
}

TEST_F(FailureInjectionTest, CorruptMetaRejected) {
  FlipByte(dir_ + "/idx/index.meta", 0);
  EXPECT_FALSE(Searcher::Open(dir_ + "/idx").ok());
}

TEST_F(FailureInjectionTest, TruncatedMetaRejected) {
  Truncate(dir_ + "/idx/index.meta", 10);
  EXPECT_FALSE(Searcher::Open(dir_ + "/idx").ok());
}

TEST_F(FailureInjectionTest, TruncatedCorpusRejected) {
  const std::string path = dir_ + "/corpus.crp";
  ASSERT_TRUE(WriteCorpusFile(path, sc_.corpus).ok());
  auto size = FileSize(path);
  ASSERT_TRUE(size.ok());
  for (uint64_t keep : {uint64_t{0}, uint64_t{7}, *size / 2, *size - 3}) {
    const std::string copy = dir_ + "/trunc.crp";
    std::filesystem::copy_file(
        path, copy, std::filesystem::copy_options::overwrite_existing);
    Truncate(copy, keep);
    auto reader = CorpusFileReader::Open(copy);
    if (reader.ok()) {
      // A truncation can preserve the footer region only if it removed
      // nothing relevant; reading all texts must then still fail or
      // succeed without crashing.
      auto all = reader->ReadAll();
      (void)all;
    }
  }
  SUCCEED();
}

TEST_F(FailureInjectionTest, CorruptBpeModelRejected) {
  const std::string path = dir_ + "/model.bpe";
  auto model = BpeModel::FromMerges({{'a', 'b'}, {256, 'c'}});
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->Save(path).ok());
  FlipByte(path, 1);
  EXPECT_FALSE(BpeModel::Load(path).ok());
  // Truncated model file.
  ASSERT_TRUE(model->Save(path).ok());
  Truncate(path, 12);
  EXPECT_FALSE(BpeModel::Load(path).ok());
}

TEST_F(FailureInjectionTest, ExternalBuildOnTruncatedCorpusFailsCleanly) {
  const std::string path = dir_ + "/corpus.crp";
  ASSERT_TRUE(WriteCorpusFile(path, sc_.corpus).ok());
  auto size = FileSize(path);
  ASSERT_TRUE(size.ok());
  Truncate(path, *size / 2);
  IndexBuildOptions build;
  build.k = 3;
  build.t = 15;
  build.memory_budget_bytes = 1 << 16;  // force the spill path
  build.num_partitions = 4;
  build.batch_tokens = 1 << 12;
  EXPECT_FALSE(BuildIndexExternal(path, dir_ + "/xidx", build).ok());
  // The aborted build must not have published a searchable directory.
  EXPECT_FALSE(Searcher::Open(dir_ + "/xidx").ok());
}

TEST_F(FailureInjectionTest, ExternalBuildOnCorruptCorpusFailsCleanly) {
  const std::string path = dir_ + "/corpus.crp";
  ASSERT_TRUE(WriteCorpusFile(path, sc_.corpus).ok());
  FlipByte(path, 20);  // inside the first text's token payload
  IndexBuildOptions build;
  build.k = 3;
  build.t = 15;
  build.memory_budget_bytes = 1 << 16;
  build.num_partitions = 4;
  build.batch_tokens = 1 << 12;
  auto stats = BuildIndexExternal(path, dir_ + "/xidx", build);
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsCorruption()) << stats.status().ToString();
}

TEST_F(FailureInjectionTest, MergerRejectsCorruptShardMeta) {
  // The SetUp index is shard 0; build a second shard over a different
  // corpus with identical (k, seed, t).
  SyntheticCorpusOptions options;
  options.num_texts = 20;
  options.vocab_size = 200;
  options.seed = 51;
  SyntheticCorpus other = GenerateSyntheticCorpus(options);
  IndexBuildOptions build;
  build.k = 4;
  build.t = 15;
  ASSERT_TRUE(
      BuildIndexInMemory(other.corpus, dir_ + "/shard1", build).ok());

  FlipByte(dir_ + "/shard1/index.meta", 12);
  auto merged = MergeIndexes({dir_ + "/idx", dir_ + "/shard1"},
                             dir_ + "/merged");
  ASSERT_FALSE(merged.ok());
  EXPECT_FALSE(Searcher::Open(dir_ + "/merged").ok());
}

TEST_F(FailureInjectionTest, MergerRejectsShardWithoutCommitMarker) {
  SyntheticCorpusOptions options;
  options.num_texts = 20;
  options.vocab_size = 200;
  options.seed = 52;
  SyntheticCorpus other = GenerateSyntheticCorpus(options);
  IndexBuildOptions build;
  build.k = 4;
  build.t = 15;
  ASSERT_TRUE(
      BuildIndexInMemory(other.corpus, dir_ + "/shard1", build).ok());

  // Simulate an interrupted shard build: data present, marker absent.
  ASSERT_TRUE(RemoveFile(dir_ + "/shard1/CURRENT").ok());
  auto merged = MergeIndexes({dir_ + "/idx", dir_ + "/shard1"},
                             dir_ + "/merged");
  ASSERT_FALSE(merged.ok());
  EXPECT_NE(merged.status().ToString().find("commit marker"),
            std::string::npos)
      << merged.status().ToString();
}

TEST_F(FailureInjectionTest, OrphanTempAndSpillFilesSweptBeforeBuild) {
  // Leftovers of a crashed out-of-core build: a truncated spill partition
  // and a half-written index temp file.
  const std::string idx = dir_ + "/idx2";
  ASSERT_TRUE(CreateDirectories(idx).ok());
  ASSERT_TRUE(WriteStringToFile(idx + "/spill.0007", "truncated junk").ok());
  ASSERT_TRUE(
      WriteStringToFile(idx + "/inverted.0.ndx.tmp", "half a file").ok());

  size_t removed = 0;
  ASSERT_TRUE(CleanupIndexOrphans(idx, &removed).ok());
  EXPECT_EQ(2u, removed);
  EXPECT_FALSE(FileExists(idx + "/spill.0007"));
  EXPECT_FALSE(FileExists(idx + "/inverted.0.ndx.tmp"));

  // A rebuild over the same directory (planting fresh orphans first) also
  // sweeps them and produces a healthy index.
  ASSERT_TRUE(WriteStringToFile(idx + "/spill.0001", "junk").ok());
  IndexBuildOptions build;
  build.k = 4;
  build.t = 15;
  ASSERT_TRUE(BuildIndexInMemory(sc_.corpus, idx, build).ok());
  EXPECT_FALSE(FileExists(idx + "/spill.0001"));
  EXPECT_TRUE(Searcher::Open(idx).ok());
}

TEST_F(FailureInjectionTest, V1IndexFileRejectedWithClearError) {
  // v1 and v2 magics differ only in the version character ('1' vs '2') at
  // byte 7 of the little-endian header magic.
  const std::string path = IndexMeta::InvertedIndexPath(dir_ + "/idx", 0);
  PatchByte(path, 7, '1');
  auto reader = InvertedIndexReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_TRUE(reader.status().IsInvalidArgument())
      << reader.status().ToString();
  EXPECT_NE(reader.status().ToString().find("v1"), std::string::npos);
}

TEST_F(FailureInjectionTest, V1CorpusFileRejectedWithClearError) {
  const std::string path = dir_ + "/corpus.crp";
  ASSERT_TRUE(WriteCorpusFile(path, sc_.corpus).ok());
  PatchByte(path, 7, '1');
  auto reader = CorpusFileReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_TRUE(reader.status().IsInvalidArgument())
      << reader.status().ToString();
}

TEST_F(FailureInjectionTest, V1IndexMetaRejectedWithClearError) {
  PatchByte(dir_ + "/idx/index.meta", 7, '1');
  auto meta = IndexMeta::Load(dir_ + "/idx");
  ASSERT_FALSE(meta.ok());
  EXPECT_TRUE(meta.status().IsInvalidArgument()) << meta.status().ToString();
}

TEST_F(FailureInjectionTest, DegradedOpenDropsMissingFileAndMatchesSmallerIndex) {
  // Chained min-hash seeds make functions 0..k'-1 of a k-function family
  // identical to a k'-function family, so an index degraded by losing its
  // LAST file must answer exactly like an index built with k-1 functions.
  IndexBuildOptions build;
  build.k = 3;
  build.t = 15;
  ASSERT_TRUE(BuildIndexInMemory(sc_.corpus, dir_ + "/idx3", build).ok());
  auto small = Searcher::Open(dir_ + "/idx3");
  ASSERT_TRUE(small.ok());
  const auto expected = RunQueries(*small, /*degraded=*/false);

  ASSERT_TRUE(
      RemoveFile(IndexMeta::InvertedIndexPath(dir_ + "/idx", 3)).ok());
  EXPECT_FALSE(Searcher::Open(dir_ + "/idx").ok());  // strict mode refuses

  SearcherOptions degraded;
  degraded.allow_degraded = true;
  auto searcher = Searcher::Open(dir_ + "/idx", degraded);
  ASSERT_TRUE(searcher.ok()) << searcher.status().ToString();
  EXPECT_EQ(1u, searcher->degraded_funcs());
  EXPECT_EQ(expected, RunQueries(*searcher, /*degraded=*/true));
}

TEST_F(FailureInjectionTest, DegradedSearchDropsCorruptListsAndMatchesSmallerIndex) {
  IndexBuildOptions build;
  build.k = 3;
  build.t = 15;
  ASSERT_TRUE(BuildIndexInMemory(sc_.corpus, dir_ + "/idx3", build).ok());
  auto small = Searcher::Open(dir_ + "/idx3");
  ASSERT_TRUE(small.ok());
  const auto expected = RunQueries(*small, /*degraded=*/false);

  // Corrupt every posting of the last file: the file still opens (its
  // directory checksum is intact), so the failure surfaces mid-query and
  // the searcher must drop the function on the fly and retry.
  CorruptAllLists(IndexMeta::InvertedIndexPath(dir_ + "/idx", 3));
  SearcherOptions degraded;
  degraded.allow_degraded = true;
  auto searcher = Searcher::Open(dir_ + "/idx", degraded);
  ASSERT_TRUE(searcher.ok()) << searcher.status().ToString();
  EXPECT_EQ(0u, searcher->degraded_funcs());  // nothing dropped yet

  EXPECT_EQ(expected, RunQueries(*searcher, /*degraded=*/true));
  EXPECT_EQ(1u, searcher->degraded_funcs());
}

TEST_F(FailureInjectionTest, CorruptIndexWithoutOptInFailsWithHint) {
  CorruptAllLists(IndexMeta::InvertedIndexPath(dir_ + "/idx", 3));
  SearcherOptions degraded;
  degraded.allow_degraded = true;
  auto searcher = Searcher::Open(dir_ + "/idx", degraded);
  ASSERT_TRUE(searcher.ok());

  // Degraded open, strict search: the first corrupt list read must fail the
  // query with Corruption, never silently degrade.
  const auto tokens = sc_.corpus.text(0);
  const std::vector<Token> query(tokens.begin(), tokens.begin() + 40);
  SearchOptions options;
  options.theta = 0.5;
  auto result = searcher->Search(query, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption()) << result.status().ToString();
}

/// Writes a raw-format index file with a single zoned list under key 7.
/// Each window's text is produced by `text_of(i)`; l/c/r are i+5/i+10/i+20.
/// Returns the absolute file offset of window `i` via list_offset + 16 * i.
template <typename TextOf>
void WriteSingleListFile(const std::string& path, int num_windows,
                         TextOf text_of) {
  auto writer = InvertedIndexWriter::Create(path, /*func=*/0, /*zone_step=*/4,
                                            /*zone_threshold=*/8,
                                            index_format::kFormatRaw);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE(writer->BeginList(7).ok());
  for (int i = 0; i < num_windows; ++i) {
    PostedWindow w;
    w.text = text_of(i);
    w.l = static_cast<uint32_t>(i) + 5;
    w.c = static_cast<uint32_t>(i) + 10;
    w.r = static_cast<uint32_t>(i) + 20;
    ASSERT_TRUE(writer->AddWindow(w).ok());
  }
  ASSERT_TRUE(writer->Finish().ok());
}

TEST_F(FailureInjectionTest, ZoneProbeDetectsOutOfOrderWindows) {
  // Raw zone probes used to trust the posting bytes blindly. A flipped text
  // id that breaks the (text, l) sort order must now surface as Corruption
  // from the probe itself, not just from a full-list read.
  const std::string path = dir_ + "/probe.ndx";
  WriteSingleListFile(path, 100,
                      [](int i) { return static_cast<TextId>(i); });
  {
    auto reader = InvertedIndexReader::Open(path);
    ASSERT_TRUE(reader.ok());
    const ListMeta* meta = reader->FindList(7);
    ASSERT_NE(meta, nullptr);
    ASSERT_GT(meta->zone_count, 0u) << "list must be zoned for this test";
    // Rewrite window 50's text id (4 bytes little-endian) to 0: texts now
    // run ... 48, 49, 0, 51 ... inside one zone segment.
    for (int b = 0; b < 4; ++b) {
      PatchByte(path, meta->list_offset + 50 * sizeof(PostedWindow) + b, 0);
    }
  }
  auto reader = InvertedIndexReader::Open(path);
  ASSERT_TRUE(reader.ok());  // directory/footer untouched
  const ListMeta* meta = reader->FindList(7);
  ASSERT_NE(meta, nullptr);
  std::vector<PostedWindow> out;
  auto probe = reader->ReadWindowsForText(*meta, /*text=*/50, &out);
  EXPECT_TRUE(probe.IsCorruption()) << probe.ToString();
  out.clear();
  EXPECT_TRUE(reader->ReadList(*meta, &out).IsCorruption());
}

TEST_F(FailureInjectionTest, ZoneProbeDetectsInvalidWindowBounds) {
  const std::string path = dir_ + "/probe.ndx";
  WriteSingleListFile(path, 100,
                      [](int i) { return static_cast<TextId>(i); });
  auto clean = InvertedIndexReader::Open(path);
  ASSERT_TRUE(clean.ok());
  const ListMeta* meta = clean->FindList(7);
  ASSERT_NE(meta, nullptr);
  ASSERT_GT(meta->zone_count, 0u);
  // Set the high byte of window 50's l field: l becomes > c, which no
  // writer can produce (windows always satisfy l <= c <= r).
  PatchByte(path, meta->list_offset + 50 * sizeof(PostedWindow) + 7, 0x7f);
  auto reader = InvertedIndexReader::Open(path);
  ASSERT_TRUE(reader.ok());
  const ListMeta* reloaded = reader->FindList(7);
  ASSERT_NE(reloaded, nullptr);
  std::vector<PostedWindow> out;
  auto probe = reader->ReadWindowsForText(*reloaded, /*text=*/50, &out);
  EXPECT_TRUE(probe.IsCorruption()) << probe.ToString();
}

TEST_F(FailureInjectionTest, ZoneProbeFromListStartVerifiesFullCrc) {
  // All windows share one text, so a probe for it scans the entire list
  // from offset 0 and must verify the full-list CRC. The corruption below
  // keeps every per-window invariant intact (r only grows), so the CRC is
  // the only line of defense — exactly the check the old probe skipped.
  const std::string path = dir_ + "/probe.ndx";
  WriteSingleListFile(path, 100, [](int) { return TextId{7}; });
  auto clean = InvertedIndexReader::Open(path);
  ASSERT_TRUE(clean.ok());
  const ListMeta* meta = clean->FindList(7);
  ASSERT_NE(meta, nullptr);
  ASSERT_GT(meta->zone_count, 0u);
  PatchByte(path, meta->list_offset + 80 * sizeof(PostedWindow) + 15, 0x01);
  auto reader = InvertedIndexReader::Open(path);
  ASSERT_TRUE(reader.ok());
  const ListMeta* reloaded = reader->FindList(7);
  ASSERT_NE(reloaded, nullptr);
  std::vector<PostedWindow> out;
  auto probe = reader->ReadWindowsForText(*reloaded, /*text=*/7, &out);
  EXPECT_TRUE(probe.IsCorruption()) << probe.ToString();
}

TEST_F(FailureInjectionTest, DegradedOpenDropsFuncIdMismatchAndMatchesSmallerIndex) {
  // An index file whose embedded function id disagrees with its file name
  // (e.g. files shuffled by a bad restore) answers queries with the WRONG
  // hash function. Strict open must refuse; degraded open must drop the
  // mismatched file and answer exactly like a k-1 index.
  IndexBuildOptions build;
  build.k = 3;
  build.t = 15;
  ASSERT_TRUE(BuildIndexInMemory(sc_.corpus, dir_ + "/idx3", build).ok());
  auto small = Searcher::Open(dir_ + "/idx3");
  ASSERT_TRUE(small.ok());
  const auto expected = RunQueries(*small, /*degraded=*/false);

  // Overwrite function 3's file with function 2's: checksums are all
  // valid, only the header's func id betrays the swap.
  std::filesystem::copy_file(
      IndexMeta::InvertedIndexPath(dir_ + "/idx", 2),
      IndexMeta::InvertedIndexPath(dir_ + "/idx", 3),
      std::filesystem::copy_options::overwrite_existing);

  auto strict = Searcher::Open(dir_ + "/idx");
  ASSERT_FALSE(strict.ok());
  EXPECT_TRUE(strict.status().IsCorruption()) << strict.status().ToString();

  SearcherOptions degraded;
  degraded.allow_degraded = true;
  auto searcher = Searcher::Open(dir_ + "/idx", degraded);
  ASSERT_TRUE(searcher.ok()) << searcher.status().ToString();
  EXPECT_EQ(1u, searcher->degraded_funcs());
  EXPECT_EQ(expected, RunQueries(*searcher, /*degraded=*/true));
}

TEST_F(FailureInjectionTest, SearchAfterListRegionCorruptionIsContained) {
  // Flip a byte inside the posting region; opening still succeeds (the
  // directory is intact) and searches must not crash — results may change
  // but every path returns a Status.
  const std::string path = IndexMeta::InvertedIndexPath(dir_ + "/idx", 0);
  FlipByte(path, 30);  // inside the first list
  auto searcher = Searcher::Open(dir_ + "/idx");
  if (!searcher.ok()) return;  // also acceptable
  const auto text = sc_.corpus.text(0);
  const std::vector<Token> query(text.begin(), text.begin() + 20);
  SearchOptions options;
  options.theta = 0.5;
  auto result = searcher->Search(query, options);
  (void)result;  // ok() either way; must simply not crash
  SUCCEED();
}

}  // namespace
}  // namespace ndss
