// Concurrency: one searcher per thread over the same index files must
// produce identical results; parallel index builds into distinct
// directories must not interfere.

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>
#include <vector>

#include "corpusgen/synthetic.h"
#include "index/index_builder.h"
#include "query/searcher.h"

namespace ndss {
namespace {

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ndss_conc_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(ConcurrencyTest, OneSearcherPerThreadAgrees) {
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 100;
  corpus_options.vocab_size = 1000;
  corpus_options.plant_rate = 0.3;
  corpus_options.seed = 90;
  SyntheticCorpus sc = GenerateSyntheticCorpus(corpus_options);
  IndexBuildOptions build;
  build.k = 8;
  build.t = 20;
  ASSERT_TRUE(BuildIndexInMemory(sc.corpus, dir_, build).ok());

  // Reference results from a single searcher.
  auto reference = Searcher::Open(dir_);
  ASSERT_TRUE(reference.ok());
  std::vector<std::vector<Token>> queries;
  Rng rng(4);
  for (int q = 0; q < 12; ++q) {
    const TextId id = static_cast<TextId>(rng.Uniform(100));
    const auto text = sc.corpus.text(id);
    const uint32_t length =
        std::min<uint32_t>(40, static_cast<uint32_t>(text.size()));
    queries.push_back(PerturbSequence(text, 0, length, 0.05, 1000, rng));
  }
  SearchOptions options;
  options.theta = 0.8;
  std::vector<size_t> expected_counts;
  for (const auto& query : queries) {
    auto result = reference->Search(query, options);
    ASSERT_TRUE(result.ok());
    expected_counts.push_back(result->spans.size());
  }

  // 4 threads, each with its own searcher, each running all queries.
  std::vector<std::thread> threads;
  std::vector<int> failures(4, 0);
  for (int th = 0; th < 4; ++th) {
    threads.emplace_back([&, th] {
      auto searcher = Searcher::Open(dir_);
      if (!searcher.ok()) {
        failures[th] = -1;
        return;
      }
      for (size_t q = 0; q < queries.size(); ++q) {
        auto result = searcher->Search(queries[q], options);
        if (!result.ok() || result->spans.size() != expected_counts[q]) {
          ++failures[th];
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int th = 0; th < 4; ++th) {
    EXPECT_EQ(failures[th], 0) << "thread " << th;
  }
}

TEST_F(ConcurrencyTest, ParallelBuildsIntoSeparateDirectories) {
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 60;
  corpus_options.vocab_size = 500;
  corpus_options.seed = 91;
  SyntheticCorpus sc = GenerateSyntheticCorpus(corpus_options);
  IndexBuildOptions build;
  build.k = 4;
  build.t = 15;

  std::vector<std::thread> threads;
  std::vector<uint64_t> window_counts(3, 0);
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&, i] {
      auto stats = BuildIndexInMemory(sc.corpus,
                                      dir_ + "/b" + std::to_string(i), build);
      if (stats.ok()) window_counts[i] = stats->num_windows;
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_GT(window_counts[0], 0u);
  EXPECT_EQ(window_counts[0], window_counts[1]);
  EXPECT_EQ(window_counts[1], window_counts[2]);
}

TEST_F(ConcurrencyTest, InMemorySearchersShareNothing) {
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 40;
  corpus_options.vocab_size = 500;
  corpus_options.seed = 92;
  SyntheticCorpus sc = GenerateSyntheticCorpus(corpus_options);
  IndexBuildOptions build;
  build.k = 4;
  build.t = 15;

  std::vector<std::thread> threads;
  std::vector<int> ok(4, 0);
  for (int th = 0; th < 4; ++th) {
    threads.emplace_back([&, th] {
      auto searcher = Searcher::InMemory(sc.corpus, build);
      if (!searcher.ok()) return;
      const auto text = sc.corpus.text(th);
      const std::vector<Token> query(text.begin(), text.begin() + 20);
      SearchOptions options;
      options.theta = 0.9;
      auto result = searcher->Search(query, options);
      if (result.ok() && !result->spans.empty()) ok[th] = 1;
    });
  }
  for (auto& thread : threads) thread.join();
  for (int th = 0; th < 4; ++th) EXPECT_EQ(ok[th], 1) << "thread " << th;
}

}  // namespace
}  // namespace ndss
