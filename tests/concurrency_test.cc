// Concurrency: one searcher per thread over the same index files must
// produce identical results; a SHARED searcher must be safe to call from
// many threads (including through parallel SearchBatch); parallel index
// builds into distinct directories must not interfere. These tests are
// written to run under TSan (cmake -DNDSS_SANITIZE=thread).

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/coding.h"
#include "common/file_io.h"
#include "corpusgen/synthetic.h"
#include "index/index_builder.h"
#include "index/index_format.h"
#include "index/index_meta.h"
#include "query/searcher.h"

namespace ndss {
namespace {

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ndss_conc_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Flattens one result into a comparable fingerprint string.
  static std::string Fingerprint(const SearchResult& result) {
    std::string fp;
    for (const MatchSpan& span : result.spans) {
      fp += std::to_string(span.text) + ":" + std::to_string(span.begin) +
            "-" + std::to_string(span.end) + "/" +
            std::to_string(span.collisions) + ";";
    }
    fp += "|";
    for (const TextMatchRectangle& r : result.rectangles) {
      fp += std::to_string(r.text) + ":" + std::to_string(r.rect.x_begin) +
            "," + std::to_string(r.rect.x_end) + "," +
            std::to_string(r.rect.y_begin) + "," +
            std::to_string(r.rect.y_end) + "/" +
            std::to_string(r.rect.collisions) + ";";
    }
    return fp;
  }

  /// XORs the posting/zone region of an inverted-index file so it still
  /// opens but every list read fails its CRC (mirrors the failure-injection
  /// suite's helper).
  static void CorruptAllLists(const std::string& path) {
    auto data = ReadFileToString(path);
    ASSERT_TRUE(data.ok());
    const uint64_t directory_offset = DecodeFixed64(
        data->data() + data->size() - index_format::kFooterSize + 16);
    ASSERT_LE(directory_offset, data->size());
    for (uint64_t i = index_format::kHeaderSize; i < directory_offset; ++i) {
      (*data)[i] ^= 0x5a;
    }
    ASSERT_TRUE(WriteStringToFile(path, *data).ok());
  }

  std::string dir_;
};

TEST_F(ConcurrencyTest, OneSearcherPerThreadAgrees) {
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 100;
  corpus_options.vocab_size = 1000;
  corpus_options.plant_rate = 0.3;
  corpus_options.seed = 90;
  SyntheticCorpus sc = GenerateSyntheticCorpus(corpus_options);
  IndexBuildOptions build;
  build.k = 8;
  build.t = 20;
  ASSERT_TRUE(BuildIndexInMemory(sc.corpus, dir_, build).ok());

  // Reference results from a single searcher.
  auto reference = Searcher::Open(dir_);
  ASSERT_TRUE(reference.ok());
  std::vector<std::vector<Token>> queries;
  Rng rng(4);
  for (int q = 0; q < 12; ++q) {
    const TextId id = static_cast<TextId>(rng.Uniform(100));
    const auto text = sc.corpus.text(id);
    const uint32_t length =
        std::min<uint32_t>(40, static_cast<uint32_t>(text.size()));
    queries.push_back(PerturbSequence(text, 0, length, 0.05, 1000, rng));
  }
  SearchOptions options;
  options.theta = 0.8;
  std::vector<size_t> expected_counts;
  for (const auto& query : queries) {
    auto result = reference->Search(query, options);
    ASSERT_TRUE(result.ok());
    expected_counts.push_back(result->spans.size());
  }

  // 4 threads, each with its own searcher, each running all queries.
  std::vector<std::thread> threads;
  std::vector<int> failures(4, 0);
  for (int th = 0; th < 4; ++th) {
    threads.emplace_back([&, th] {
      auto searcher = Searcher::Open(dir_);
      if (!searcher.ok()) {
        failures[th] = -1;
        return;
      }
      for (size_t q = 0; q < queries.size(); ++q) {
        auto result = searcher->Search(queries[q], options);
        if (!result.ok() || result->spans.size() != expected_counts[q]) {
          ++failures[th];
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int th = 0; th < 4; ++th) {
    EXPECT_EQ(failures[th], 0) << "thread " << th;
  }
}

TEST_F(ConcurrencyTest, SharedSearcherConcurrentSearchAgrees) {
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 100;
  corpus_options.vocab_size = 800;
  corpus_options.plant_rate = 0.3;
  corpus_options.seed = 93;
  SyntheticCorpus sc = GenerateSyntheticCorpus(corpus_options);
  IndexBuildOptions build;
  build.k = 8;
  build.t = 20;
  ASSERT_TRUE(BuildIndexInMemory(sc.corpus, dir_, build).ok());

  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());
  std::vector<std::vector<Token>> queries;
  Rng rng(5);
  for (int q = 0; q < 16; ++q) {
    const TextId id = static_cast<TextId>(rng.Uniform(100));
    const auto text = sc.corpus.text(id);
    const uint32_t length =
        std::min<uint32_t>(40, static_cast<uint32_t>(text.size()));
    queries.push_back(PerturbSequence(text, 0, length, 0.05, 800, rng));
  }
  SearchOptions options;
  options.theta = 0.7;
  std::vector<std::string> expected;
  for (const auto& query : queries) {
    auto result = searcher->Search(query, options);
    ASSERT_TRUE(result.ok());
    expected.push_back(Fingerprint(*result));
  }

  // 4 threads hammering ONE searcher with interleaved queries.
  std::vector<std::thread> threads;
  std::vector<int> mismatches(4, 0);
  for (int th = 0; th < 4; ++th) {
    threads.emplace_back([&, th] {
      for (int round = 0; round < 3; ++round) {
        for (size_t q = th % queries.size(); q < queries.size(); ++q) {
          auto result = searcher->Search(queries[q], options);
          if (!result.ok() || Fingerprint(*result) != expected[q]) {
            ++mismatches[th];
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int th = 0; th < 4; ++th) {
    EXPECT_EQ(mismatches[th], 0) << "thread " << th;
  }
}

TEST_F(ConcurrencyTest, ParallelSearchBatchMatchesSequential) {
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 100;
  corpus_options.vocab_size = 300;  // heavy key sharing across queries
  corpus_options.zipf_exponent = 1.2;
  corpus_options.plant_rate = 0.4;
  corpus_options.seed = 94;
  SyntheticCorpus sc = GenerateSyntheticCorpus(corpus_options);
  IndexBuildOptions build;
  build.k = 8;
  build.t = 15;
  ASSERT_TRUE(BuildIndexInMemory(sc.corpus, dir_, build).ok());

  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());
  std::vector<std::vector<Token>> queries;
  Rng rng(6);
  for (int q = 0; q < 32; ++q) {
    const TextId id = static_cast<TextId>(rng.Uniform(100));
    const auto text = sc.corpus.text(id);
    const uint32_t length =
        std::min<uint32_t>(30, static_cast<uint32_t>(text.size()));
    queries.push_back(PerturbSequence(text, 0, length, 0.1, 300, rng));
  }
  SearchOptions options;
  options.theta = 0.6;

  auto sequential = searcher->SearchBatch(queries, options);
  ASSERT_TRUE(sequential.ok());
  for (size_t threads : {2u, 4u, 8u}) {
    auto parallel =
        searcher->SearchBatch(queries, options, 256ull << 20, threads);
    ASSERT_TRUE(parallel.ok()) << "threads=" << threads;
    ASSERT_EQ(parallel->size(), sequential->size());
    for (size_t q = 0; q < queries.size(); ++q) {
      EXPECT_EQ(Fingerprint((*parallel)[q]), Fingerprint((*sequential)[q]))
          << "threads=" << threads << " q=" << q;
    }
    // Stats attribution is scheduling-dependent per query, but the batch
    // totals are not: each distinct list is loaded exactly once either way.
    uint64_t seq_io = 0, par_io = 0, seq_hits = 0, par_hits = 0;
    for (size_t q = 0; q < queries.size(); ++q) {
      seq_io += (*sequential)[q].stats.io_bytes;
      par_io += (*parallel)[q].stats.io_bytes;
      seq_hits += (*sequential)[q].stats.cache_hits;
      par_hits += (*parallel)[q].stats.cache_hits;
    }
    EXPECT_EQ(par_io, seq_io) << "threads=" << threads;
    EXPECT_EQ(par_hits, seq_hits) << "threads=" << threads;
  }
}

TEST_F(ConcurrencyTest, DegradedDropUnderParallelBatchMatchesSmallerIndex) {
  // Mid-batch degradation from many worker threads at once: every query
  // must still answer exactly like an index built with k-1 functions, and
  // the corrupt function must be dropped exactly once.
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 60;
  corpus_options.vocab_size = 200;
  corpus_options.seed = 95;
  SyntheticCorpus sc = GenerateSyntheticCorpus(corpus_options);
  IndexBuildOptions build;
  build.k = 4;
  build.t = 15;
  ASSERT_TRUE(BuildIndexInMemory(sc.corpus, dir_ + "/idx", build).ok());
  build.k = 3;
  ASSERT_TRUE(BuildIndexInMemory(sc.corpus, dir_ + "/idx3", build).ok());

  std::vector<std::vector<Token>> queries;
  for (TextId text = 0; text < 12; ++text) {
    const auto tokens = sc.corpus.text(text);
    queries.emplace_back(tokens.begin(), tokens.begin() + 40);
  }
  SearchOptions options;
  options.theta = 0.5;

  auto small = Searcher::Open(dir_ + "/idx3");
  ASSERT_TRUE(small.ok());
  auto expected = small->SearchBatch(queries, options);
  ASSERT_TRUE(expected.ok());

  CorruptAllLists(IndexMeta::InvertedIndexPath(dir_ + "/idx", 3));
  SearcherOptions open_options;
  open_options.allow_degraded = true;
  auto searcher = Searcher::Open(dir_ + "/idx", open_options);
  ASSERT_TRUE(searcher.ok()) << searcher.status().ToString();
  ASSERT_EQ(0u, searcher->degraded_funcs());  // nothing dropped yet

  options.allow_degraded = true;
  auto batch = searcher->SearchBatch(queries, options, 256ull << 20, 4);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), expected->size());
  for (size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(Fingerprint((*batch)[q]), Fingerprint((*expected)[q]))
        << "q=" << q;
  }
  EXPECT_EQ(1u, searcher->degraded_funcs());
}

TEST_F(ConcurrencyTest, ParallelBuildsIntoSeparateDirectories) {
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 60;
  corpus_options.vocab_size = 500;
  corpus_options.seed = 91;
  SyntheticCorpus sc = GenerateSyntheticCorpus(corpus_options);
  IndexBuildOptions build;
  build.k = 4;
  build.t = 15;

  std::vector<std::thread> threads;
  std::vector<uint64_t> window_counts(3, 0);
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&, i] {
      auto stats = BuildIndexInMemory(sc.corpus,
                                      dir_ + "/b" + std::to_string(i), build);
      if (stats.ok()) window_counts[i] = stats->num_windows;
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_GT(window_counts[0], 0u);
  EXPECT_EQ(window_counts[0], window_counts[1]);
  EXPECT_EQ(window_counts[1], window_counts[2]);
}

TEST_F(ConcurrencyTest, InMemorySearchersShareNothing) {
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 40;
  corpus_options.vocab_size = 500;
  corpus_options.seed = 92;
  SyntheticCorpus sc = GenerateSyntheticCorpus(corpus_options);
  IndexBuildOptions build;
  build.k = 4;
  build.t = 15;

  std::vector<std::thread> threads;
  std::vector<int> ok(4, 0);
  for (int th = 0; th < 4; ++th) {
    threads.emplace_back([&, th] {
      auto searcher = Searcher::InMemory(sc.corpus, build);
      if (!searcher.ok()) return;
      const auto text = sc.corpus.text(th);
      const std::vector<Token> query(text.begin(), text.begin() + 20);
      SearchOptions options;
      options.theta = 0.9;
      auto result = searcher->Search(query, options);
      if (result.ok() && !result->spans.empty()) ok[th] = 1;
    });
  }
  for (auto& thread : threads) thread.join();
  for (int th = 0; th < 4; ++th) EXPECT_EQ(ok[th], 1) << "thread " << th;
}

}  // namespace
}  // namespace ndss
