// Chaos harness for self-healing sharded serving: a seeded, scripted fault
// schedule (storms, bursts, lulls) drives a FaultInjectionEnv while query
// threads and a topology-churn thread hammer a ShardedSearcher. Invariants:
// the process never crashes, every OK answer bit-matches some valid
// (topology snapshot x excluded-shard subset) expectation, and once the
// schedule clears, serving returns to exact answers with zero degraded
// shards. The schedule is deterministic per seed; on failure it is written
// to $NDSS_CHAOS_ARTIFACT (CI uploads it) so the run can be replayed.
//
// Knobs: NDSS_CHAOS_MS stretches the total fault time (nightly runs use
// minutes; the default keeps CI fast), NDSS_CHAOS_ARTIFACT names the
// failing-schedule dump file.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection_env.h"
#include "common/file_io.h"
#include "corpusgen/synthetic.h"
#include "index/index_builder.h"
#include "index/index_merger.h"
#include "query/searcher.h"
#include "shard/sharded_searcher.h"

namespace ndss {
namespace {

/// One scripted segment of the fault schedule.
struct ChaosPhase {
  std::string mode;   ///< "storm" | "burst" | "lull"
  uint32_t shard;     ///< target shard (s0..s2; ignored for lull)
  double p;           ///< fault probability while armed
  int64_t budget;     ///< fault budget (-1 = unbounded)
  int duration_ms;    ///< load time before the phase's faults clear
};

std::string DescribePhase(const ChaosPhase& phase) {
  std::ostringstream out;
  out << phase.mode << " shard=" << phase.shard << " p=" << phase.p
      << " budget=" << phase.budget << " ms=" << phase.duration_ms;
  return out.str();
}

/// Order- and field-sensitive fingerprint of a result's matches (FNV-1a).
/// Two results with the same fingerprint are treated as bit-identical.
uint64_t Fingerprint(const SearchResult& result) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(result.rectangles.size());
  for (const TextMatchRectangle& r : result.rectangles) {
    mix(r.text);
    mix(r.rect.x_begin);
    mix(r.rect.x_end);
    mix(r.rect.y_begin);
    mix(r.rect.y_end);
    mix(r.rect.collisions);
  }
  mix(result.spans.size());
  for (const MatchSpan& s : result.spans) {
    mix(s.text);
    mix(s.begin);
    mix(s.end);
    mix(s.collisions);
  }
  return h;
}

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

class ChaosTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static constexpr uint32_t kShards = 4;  // s0..s2 in the set, s3 churns
  static constexpr uint32_t kShardTexts = 40;
  static constexpr uint32_t kNumTexts = kShards * kShardTexts;

  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ndss_chaos_" +
           std::to_string(GetParam());
    std::filesystem::remove_all(dir_);
    ASSERT_TRUE(CreateDirectories(dir_).ok());

    SyntheticCorpusOptions corpus_options;
    corpus_options.num_texts = kNumTexts;
    corpus_options.vocab_size = 400;
    corpus_options.plant_rate = 0.35;
    corpus_options.seed = 93;
    sc_ = GenerateSyntheticCorpus(corpus_options);

    build_.k = 5;
    build_.t = 20;
    for (uint32_t s = 0; s < kShards; ++s) {
      Corpus shard;
      for (uint32_t i = s * kShardTexts; i < (s + 1) * kShardTexts; ++i) {
        shard.AddText(sc_.corpus.text(i));
      }
      ASSERT_TRUE(BuildIndexInMemory(shard, ShardDir(s), build_).ok());
    }
    ShardManifest manifest;
    manifest.shard_dirs = {ShardDir(0), ShardDir(1), ShardDir(2)};
    ASSERT_TRUE(manifest.Save(SetDir()).ok());

    fault_ = std::make_unique<FaultInjectionEnv>(Env::Posix());
    SetDefaultEnv(fault_.get());
  }

  void TearDown() override {
    SetDefaultEnv(nullptr);
    fault_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::string ShardDir(uint32_t s) const {
    return dir_ + "/s" + std::to_string(s);
  }
  std::string SetDir() const { return dir_ + "/set"; }

  Searcher MergedBaselineOf(const std::vector<std::string>& dirs,
                            const std::string& name) {
    const std::string out = dir_ + "/" + name;
    auto stats = MergeIndexes(dirs, out, IndexMergeOptions{});
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    auto searcher = Searcher::Open(out);
    EXPECT_TRUE(searcher.ok()) << searcher.status().ToString();
    return std::move(*searcher);
  }

  std::vector<std::vector<Token>> MakeQueries(size_t count) const {
    Rng rng(7);
    std::vector<std::vector<Token>> queries;
    for (size_t q = 0; q < count; ++q) {
      const TextId source = static_cast<TextId>(rng.Uniform(kNumTexts));
      const auto text = sc_.corpus.text(source);
      const uint32_t length =
          std::min<uint32_t>(35, static_cast<uint32_t>(text.size()));
      queries.push_back(PerturbSequence(text, 0, length, 0.1, 400, rng));
    }
    return queries;
  }

  static SearchResult EraseTextRange(SearchResult result, TextId begin,
                                     TextId end) {
    std::erase_if(result.rectangles, [&](const TextMatchRectangle& r) {
      return r.text >= begin && r.text < end;
    });
    std::erase_if(result.spans, [&](const MatchSpan& s) {
      return s.text >= begin && s.text < end;
    });
    return result;
  }

  /// All fingerprints a chaos-time OK answer to `query` may legally have:
  /// for each topology (3 shards, or 4 with the churn shard attached) and
  /// each subset of excluded shards, the merged baseline with the excluded
  /// id ranges erased. The full-exclusion subsets are included but
  /// unreachable (an all-dropped set fails the query instead).
  std::set<uint64_t> ValidFingerprints(Searcher& merged3, Searcher& merged4,
                                       const std::vector<Token>& query,
                                       const SearchOptions& options) {
    std::set<uint64_t> valid;
    for (int topo = 3; topo <= 4; ++topo) {
      Searcher& merged = topo == 3 ? merged3 : merged4;
      auto full = merged.Search(query, options);
      EXPECT_TRUE(full.ok()) << full.status().ToString();
      const uint32_t shards = static_cast<uint32_t>(topo);
      for (uint32_t mask = 0; mask < (1u << shards); ++mask) {
        SearchResult expected = *full;
        for (uint32_t s = 0; s < shards; ++s) {
          if (mask & (1u << s)) {
            expected = EraseTextRange(std::move(expected), s * kShardTexts,
                                      (s + 1) * kShardTexts);
          }
        }
        valid.insert(Fingerprint(expected));
      }
    }
    return valid;
  }

  /// Writes the failing schedule where CI can pick it up as an artifact.
  static void DumpSchedule(uint64_t seed,
                           const std::vector<ChaosPhase>& schedule,
                           const std::string& reason) {
    std::ostringstream out;
    out << "{\"seed\": " << seed << ", \"reason\": \"" << reason
        << "\", \"phases\": [";
    for (size_t i = 0; i < schedule.size(); ++i) {
      if (i > 0) out << ", ";
      out << "\"" << DescribePhase(schedule[i]) << "\"";
    }
    out << "]}\n";
    const char* path = std::getenv("NDSS_CHAOS_ARTIFACT");
    if (path != nullptr) {
      std::ofstream file(path, std::ios::app);
      file << out.str();
    }
    ADD_FAILURE() << "chaos schedule (replay with this seed): " << out.str();
  }

  std::string dir_;
  SyntheticCorpus sc_;
  IndexBuildOptions build_;
  std::unique_ptr<FaultInjectionEnv> fault_;
};

TEST_P(ChaosTest, ScriptedFaultScheduleNeverCorruptsAnswers) {
  const uint64_t seed = GetParam();
  Rng script(seed);

  // Scale the schedule to the time budget: each phase runs ~150 ms.
  const int total_ms = EnvInt("NDSS_CHAOS_MS", 900);
  const int phase_ms = 150;
  const int num_phases = std::max(3, total_ms / phase_ms);
  std::vector<ChaosPhase> schedule;
  for (int i = 0; i < num_phases; ++i) {
    ChaosPhase phase;
    phase.shard = static_cast<uint32_t>(script.Uniform(3));
    phase.duration_ms = phase_ms;
    switch (script.Uniform(3)) {
      case 0:  // storm: sustained random faults on one shard
        phase.mode = "storm";
        phase.p = 0.05 + 0.3 * script.NextDouble();
        phase.budget = -1;
        break;
      case 1:  // burst: every op fails until the budget runs dry
        phase.mode = "burst";
        phase.p = 1.0;
        phase.budget = 5 + static_cast<int64_t>(script.Uniform(20));
        break;
      default:  // lull: faults cleared, monitor gets room to heal
        phase.mode = "lull";
        phase.p = 0.0;
        phase.budget = -1;
        break;
    }
    schedule.push_back(phase);
  }

  ShardedSearcherOptions options;
  options.enable_self_healing = true;
  options.health.consecutive_failures_to_quarantine = 2;
  options.health.error_rate_min_samples = 1000;
  options.health.initial_probe_delay_micros = 1'000;
  options.health.max_probe_delay_micros = 50'000;
  options.health.deep_check_after_probes = 3;
  options.health.monitor_poll_micros = 1'000;
  auto sharded = ShardedSearcher::Open(SetDir(), options);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  Searcher merged3 = MergedBaselineOf(
      {ShardDir(0), ShardDir(1), ShardDir(2)}, "merged3");
  Searcher merged4 = MergedBaselineOf(
      {ShardDir(0), ShardDir(1), ShardDir(2), ShardDir(3)}, "merged4");

  SearchOptions search_options;
  search_options.theta = 0.6;
  const auto queries = MakeQueries(6);
  std::vector<std::set<uint64_t>> valid;
  for (const auto& query : queries) {
    valid.push_back(
        ValidFingerprints(merged3, merged4, query, search_options));
  }

  // Load: query threads validate every OK answer against the valid set
  // (gtest assertions are not thread-safe, so failures are counted and
  // reported after the join); one thread churns the fourth shard in and
  // out; one thread snapshots health observability.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> answers_ok{0};
  std::atomic<uint64_t> answers_invalid{0};
  std::atomic<uint64_t> answers_failed{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&, t] {
      size_t q = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t index = q++ % queries.size();
        auto actual = sharded->Search(queries[index], search_options);
        if (!actual.ok()) {
          // Legal only as IOError/Corruption (an all-excluded window);
          // governance statuses cannot appear, nothing governs here.
          ++answers_failed;
          continue;
        }
        if (valid[index].count(Fingerprint(*actual)) == 0) {
          ++answers_invalid;
        } else {
          ++answers_ok;
        }
      }
    });
  }
  workers.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)sharded->AttachShard(ShardDir(3));
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      (void)sharded->DetachShard(ShardDir(3));
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  workers.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const ShardInfo& info : sharded->shards()) {
        (void)info.health.drops;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  // Run the schedule: arm each phase's faults, hold them for the phase
  // duration, then clear (the "clear after T" transition every phase ends
  // with).
  for (const ChaosPhase& phase : schedule) {
    if (phase.mode != "lull") {
      fault_->SetFaultPathFilter(ShardDir(phase.shard));
      fault_->SetFailProbability(phase.p, /*seed=*/seed ^ phase.shard);
      fault_->SetFaultBudget(phase.budget);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(phase.duration_ms));
    fault_->Heal();
  }

  stop.store(true);
  for (std::thread& worker : workers) worker.join();

  // Chaos-time invariants.
  EXPECT_FALSE(fault_->crashed());
  EXPECT_GT(answers_ok.load(), 0u) << "vacuous run: no OK answers at all";
  if (answers_invalid.load() > 0) {
    DumpSchedule(seed, schedule,
                 std::to_string(answers_invalid.load()) +
                     " answers matched no valid (topology, exclusion) "
                     "expectation");
  }

  // Recovery: faults are gone; pin the topology to the base three shards
  // and wait for the monitor to heal everything.
  (void)sharded->DetachShard(ShardDir(3));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  bool healthy = false;
  while (!healthy && std::chrono::steady_clock::now() < deadline) {
    const auto shards = sharded->shards();
    healthy = shards.size() == 3;
    for (const ShardInfo& info : shards) {
      healthy = healthy && info.health.state == ShardHealth::kHealthy;
    }
    if (!healthy) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  if (!healthy) {
    DumpSchedule(seed, schedule, "set did not return to full health");
    return;
  }

  // Full recovery: every answer bit-matches the never-faulted baseline
  // with zero degraded shards.
  for (size_t q = 0; q < queries.size(); ++q) {
    auto expected = merged3.Search(queries[q], search_options);
    auto actual = sharded->Search(queries[q], search_options);
    ASSERT_TRUE(expected.ok() && actual.ok()) << actual.status().ToString();
    EXPECT_EQ(Fingerprint(*expected), Fingerprint(*actual)) << "query " << q;
    EXPECT_EQ(actual->stats.degraded_shards, 0u) << "query " << q;
    if (Fingerprint(*expected) != Fingerprint(*actual)) {
      DumpSchedule(seed, schedule, "post-recovery answers are not exact");
      return;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Values(17ull, 20260807ull, 0xC0FFEEull));

}  // namespace
}  // namespace ndss
