#include <gtest/gtest.h>

#include <filesystem>

#include "corpusgen/synthetic.h"
#include "index/index_builder.h"
#include "query/searcher.h"

namespace ndss {
namespace {

class SearchBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ndss_batch_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);

    SyntheticCorpusOptions corpus_options;
    corpus_options.num_texts = 100;
    corpus_options.vocab_size = 200;  // heavy key sharing across queries
    corpus_options.zipf_exponent = 1.2;
    corpus_options.plant_rate = 0.4;
    corpus_options.seed = 61;
    sc_ = GenerateSyntheticCorpus(corpus_options);

    IndexBuildOptions build;
    build.k = 8;
    build.t = 15;
    ASSERT_TRUE(BuildIndexInMemory(sc_.corpus, dir_, build).ok());

    Rng rng(9);
    for (int q = 0; q < 20; ++q) {
      const TextId id = static_cast<TextId>(rng.Uniform(100));
      const auto text = sc_.corpus.text(id);
      const uint32_t length =
          std::min<uint32_t>(30, static_cast<uint32_t>(text.size()));
      queries_.push_back(PerturbSequence(text, 0, length, 0.1, 200, rng));
    }
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  SyntheticCorpus sc_;
  std::vector<std::vector<Token>> queries_;
};

TEST_F(SearchBatchTest, BatchResultsIdenticalToSingleQueries) {
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());
  SearchOptions options;
  options.theta = 0.7;
  auto batch = searcher->SearchBatch(queries_, options);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), queries_.size());
  for (size_t q = 0; q < queries_.size(); ++q) {
    auto single = searcher->Search(queries_[q], options);
    ASSERT_TRUE(single.ok());
    ASSERT_EQ((*batch)[q].spans.size(), single->spans.size()) << "q=" << q;
    for (size_t i = 0; i < single->spans.size(); ++i) {
      EXPECT_EQ((*batch)[q].spans[i].text, single->spans[i].text);
      EXPECT_EQ((*batch)[q].spans[i].begin, single->spans[i].begin);
      EXPECT_EQ((*batch)[q].spans[i].end, single->spans[i].end);
    }
  }
}

TEST_F(SearchBatchTest, CacheHitsReduceIo) {
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());
  SearchOptions options;
  options.theta = 0.7;
  // Duplicate the query list so hits are guaranteed on the second half.
  std::vector<std::vector<Token>> doubled = queries_;
  doubled.insert(doubled.end(), queries_.begin(), queries_.end());
  auto batch = searcher->SearchBatch(doubled, options);
  ASSERT_TRUE(batch.ok());
  uint64_t total_hits = 0;
  uint64_t first_half_io = 0, second_half_io = 0;
  for (size_t q = 0; q < doubled.size(); ++q) {
    total_hits += (*batch)[q].stats.cache_hits;
    if (q < queries_.size()) {
      first_half_io += (*batch)[q].stats.io_bytes;
    } else {
      second_half_io += (*batch)[q].stats.io_bytes;
    }
  }
  EXPECT_GT(total_hits, 0u);
  EXPECT_LT(second_half_io, first_half_io / 4)
      << "repeated queries must be served almost entirely from cache";
}

TEST_F(SearchBatchTest, CacheHitIoAttribution) {
  // Pass-2 zone probes are uncached, so disable the prefix filter: every
  // list is pass-1 and the attribution invariant is exact. Sequential
  // (num_threads = 1), so each doubled query's first occurrence loads every
  // list its second occurrence wants.
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());
  SearchOptions options;
  options.theta = 0.7;
  options.use_prefix_filter = false;
  std::vector<std::vector<Token>> doubled = queries_;
  doubled.insert(doubled.end(), queries_.begin(), queries_.end());
  auto batch = searcher->SearchBatch(doubled, options, 256ull << 20,
                                     /*num_threads=*/1);
  ASSERT_TRUE(batch.ok());
  for (size_t q = queries_.size(); q < doubled.size(); ++q) {
    const SearchStats& stats = (*batch)[q].stats;
    // A hit is charged to the waiting query and costs it no IO; the
    // loader already paid the read. Double-counting either way would
    // break io_bytes == 0 or cache_hits == short_lists.
    EXPECT_EQ(stats.io_bytes, 0u) << "q=" << q;
    EXPECT_EQ(stats.cache_hits, stats.short_lists) << "q=" << q;
  }
  // Each distinct list is read at most once: total loads (short-list scans
  // minus hits) can never exceed the number of distinct lists, which is
  // bounded by the non-hit scans of the first half.
  uint64_t scans = 0, hits = 0, first_half_scans = 0, first_half_hits = 0;
  for (size_t q = 0; q < doubled.size(); ++q) {
    scans += (*batch)[q].stats.short_lists;
    hits += (*batch)[q].stats.cache_hits;
    if (q < queries_.size()) {
      first_half_scans += (*batch)[q].stats.short_lists;
      first_half_hits += (*batch)[q].stats.cache_hits;
    }
  }
  EXPECT_EQ(scans - hits, first_half_scans - first_half_hits)
      << "the second half must perform no loads at all";
}

TEST_F(SearchBatchTest, InflightParentReleasedAfterBatch) {
  // Regression: the batch list cache reserved bytes against the inflight
  // budget but never released them, so every batch leaked its cached-list
  // bytes into the parent (in ndss_serve, the server-wide budget) until
  // the cap strangled later batches.
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());
  SearchOptions options;
  options.theta = 0.7;
  MemoryBudget parent(0);  // accounting-only server-wide budget
  BatchLimits limits;
  limits.inflight_parent = &parent;
  for (int round = 0; round < 3; ++round) {
    auto batch = searcher->SearchBatch(queries_, options, limits,
                                       256ull << 20, /*num_threads=*/2);
    ASSERT_TRUE(batch.ok());
    EXPECT_GT(parent.peak(), 0u) << "the cache never charged the parent";
    EXPECT_EQ(parent.used(), 0u)
        << "round " << round << " leaked cached-list bytes into the parent";
  }
}

TEST_F(SearchBatchTest, InflightParentReleasedAfterExhaustedBatch) {
  // Same leak, failure flavor: queries that die of ResourceExhausted must
  // not strand their cache reservations either.
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());
  SearchOptions options;
  options.theta = 0.7;
  MemoryBudget parent(0);
  BatchLimits limits;
  limits.inflight_parent = &parent;
  limits.max_query_bytes = 1;  // every query arena charge fails
  for (int round = 0; round < 3; ++round) {
    auto batch = searcher->SearchBatch(queries_, options, limits,
                                       256ull << 20, /*num_threads=*/2);
    ASSERT_TRUE(batch.ok());
    EXPECT_GT(batch->stats.queries_resource_exhausted, 0u);
    EXPECT_EQ(parent.used(), 0u)
        << "round " << round << " leaked cached-list bytes into the parent";
  }
}

TEST_F(SearchBatchTest, ZeroBudgetDisablesCaching) {
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());
  SearchOptions options;
  options.theta = 0.7;
  auto batch = searcher->SearchBatch(queries_, options, /*cache=*/0);
  ASSERT_TRUE(batch.ok());
  for (const SearchResult& result : *batch) {
    EXPECT_EQ(result.stats.cache_hits, 0u);
  }
}

TEST_F(SearchBatchTest, EmptyBatch) {
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());
  auto batch = searcher->SearchBatch({}, SearchOptions{});
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->empty());
}

}  // namespace
}  // namespace ndss
