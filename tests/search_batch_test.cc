#include <gtest/gtest.h>

#include <filesystem>

#include "corpusgen/synthetic.h"
#include "index/index_builder.h"
#include "query/searcher.h"

namespace ndss {
namespace {

class SearchBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ndss_batch_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);

    SyntheticCorpusOptions corpus_options;
    corpus_options.num_texts = 100;
    corpus_options.vocab_size = 200;  // heavy key sharing across queries
    corpus_options.zipf_exponent = 1.2;
    corpus_options.plant_rate = 0.4;
    corpus_options.seed = 61;
    sc_ = GenerateSyntheticCorpus(corpus_options);

    IndexBuildOptions build;
    build.k = 8;
    build.t = 15;
    ASSERT_TRUE(BuildIndexInMemory(sc_.corpus, dir_, build).ok());

    Rng rng(9);
    for (int q = 0; q < 20; ++q) {
      const TextId id = static_cast<TextId>(rng.Uniform(100));
      const auto text = sc_.corpus.text(id);
      const uint32_t length =
          std::min<uint32_t>(30, static_cast<uint32_t>(text.size()));
      queries_.push_back(PerturbSequence(text, 0, length, 0.1, 200, rng));
    }
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  SyntheticCorpus sc_;
  std::vector<std::vector<Token>> queries_;
};

TEST_F(SearchBatchTest, BatchResultsIdenticalToSingleQueries) {
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());
  SearchOptions options;
  options.theta = 0.7;
  auto batch = searcher->SearchBatch(queries_, options);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), queries_.size());
  for (size_t q = 0; q < queries_.size(); ++q) {
    auto single = searcher->Search(queries_[q], options);
    ASSERT_TRUE(single.ok());
    ASSERT_EQ((*batch)[q].spans.size(), single->spans.size()) << "q=" << q;
    for (size_t i = 0; i < single->spans.size(); ++i) {
      EXPECT_EQ((*batch)[q].spans[i].text, single->spans[i].text);
      EXPECT_EQ((*batch)[q].spans[i].begin, single->spans[i].begin);
      EXPECT_EQ((*batch)[q].spans[i].end, single->spans[i].end);
    }
  }
}

TEST_F(SearchBatchTest, CacheHitsReduceIo) {
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());
  SearchOptions options;
  options.theta = 0.7;
  // Duplicate the query list so hits are guaranteed on the second half.
  std::vector<std::vector<Token>> doubled = queries_;
  doubled.insert(doubled.end(), queries_.begin(), queries_.end());
  auto batch = searcher->SearchBatch(doubled, options);
  ASSERT_TRUE(batch.ok());
  uint64_t total_hits = 0;
  uint64_t first_half_io = 0, second_half_io = 0;
  for (size_t q = 0; q < doubled.size(); ++q) {
    total_hits += (*batch)[q].stats.cache_hits;
    if (q < queries_.size()) {
      first_half_io += (*batch)[q].stats.io_bytes;
    } else {
      second_half_io += (*batch)[q].stats.io_bytes;
    }
  }
  EXPECT_GT(total_hits, 0u);
  EXPECT_LT(second_half_io, first_half_io / 4)
      << "repeated queries must be served almost entirely from cache";
}

TEST_F(SearchBatchTest, ZeroBudgetDisablesCaching) {
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());
  SearchOptions options;
  options.theta = 0.7;
  auto batch = searcher->SearchBatch(queries_, options, /*cache=*/0);
  ASSERT_TRUE(batch.ok());
  for (const SearchResult& result : *batch) {
    EXPECT_EQ(result.stats.cache_hits, 0u);
  }
}

TEST_F(SearchBatchTest, EmptyBatch) {
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());
  auto batch = searcher->SearchBatch({}, SearchOptions{});
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->empty());
}

}  // namespace
}  // namespace ndss
