// The memorization harness moved to SearchBatch; this guards that the
// batched evaluation reports exactly what a per-window loop would.

#include <gtest/gtest.h>

#include <filesystem>

#include "corpusgen/synthetic.h"
#include "eval/memorization_eval.h"
#include "index/index_builder.h"
#include "lm/memorizing_generator.h"

namespace ndss {
namespace {

TEST(EvalBatchEquivalenceTest, BatchedRatioMatchesPerWindowLoop) {
  const std::string dir = ::testing::TempDir() + "/ndss_evalbatch";
  std::filesystem::remove_all(dir);

  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 100;
  corpus_options.min_text_length = 150;
  corpus_options.max_text_length = 300;
  corpus_options.vocab_size = 1500;
  corpus_options.plant_rate = 0.0;
  corpus_options.seed = 77;
  SyntheticCorpus sc = GenerateSyntheticCorpus(corpus_options);

  IndexBuildOptions build;
  build.k = 8;
  build.t = 20;
  ASSERT_TRUE(BuildIndexInMemory(sc.corpus, dir, build).ok());
  auto searcher = Searcher::Open(dir);
  ASSERT_TRUE(searcher.ok());

  NGramModel model(3);
  model.Train(sc.corpus);
  MemorizationProfile profile;
  profile.copy_start_prob = 0.02;
  MemorizingGenerator generator(model, sc.corpus, profile, 5);
  const GeneratedTexts generated =
      generator.Generate(5, 256, SamplingOptions{});

  MemorizationEvalOptions options;
  options.window_width = 32;
  options.search.theta = 0.8;
  auto report = EvaluateMemorization(*searcher, generated.texts, options);
  ASSERT_TRUE(report.ok());

  // Per-window reference loop.
  uint64_t windows = 0, memorized = 0;
  for (const auto& text : generated.texts) {
    for (size_t begin = 0; begin + 32 <= text.size(); begin += 32) {
      auto result = searcher->Search(
          std::span<const Token>(text.data() + begin, 32), options.search);
      ASSERT_TRUE(result.ok());
      ++windows;
      if (!result->rectangles.empty()) ++memorized;
    }
  }
  EXPECT_EQ(report->windows, windows);
  EXPECT_EQ(report->memorized, memorized);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ndss
