#include "common/file_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "common/coding.h"

namespace ndss {
namespace {

class FileIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ndss_file_io_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    ASSERT_TRUE(CreateDirectories(dir_).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return dir_ + "/" + name; }

  std::string dir_;
};

TEST_F(FileIoTest, WriteThenReadRoundTrip) {
  const std::string path = Path("roundtrip");
  {
    auto writer = FileWriter::Open(path);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    ASSERT_TRUE(writer->Append("hello ").ok());
    ASSERT_TRUE(writer->Append("world").ok());
    ASSERT_TRUE(writer->AppendU32(123u).ok());
    ASSERT_TRUE(writer->AppendU64(456ull).ok());
    EXPECT_EQ(writer->bytes_written(), 11u + 4 + 8);
    ASSERT_TRUE(writer->Close().ok());
  }
  auto reader = FileReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->size(), 23u);
  char buf[11];
  ASSERT_TRUE(reader->ReadExact(buf, 11).ok());
  EXPECT_EQ(std::string(buf, 11), "hello world");
  auto u32 = reader->ReadU32();
  ASSERT_TRUE(u32.ok());
  EXPECT_EQ(u32.value(), 123u);
  auto u64 = reader->ReadU64();
  ASSERT_TRUE(u64.ok());
  EXPECT_EQ(u64.value(), 456ull);
}

TEST_F(FileIoTest, ShortReadIsIOError) {
  const std::string path = Path("short");
  ASSERT_TRUE(WriteStringToFile(path, "abc").ok());
  auto reader = FileReader::Open(path);
  ASSERT_TRUE(reader.ok());
  char buf[8];
  EXPECT_TRUE(reader->ReadExact(buf, 8).IsIOError());
}

TEST_F(FileIoTest, ReadAtRandomAccess) {
  const std::string path = Path("random");
  ASSERT_TRUE(WriteStringToFile(path, "0123456789").ok());
  auto reader = FileReader::Open(path);
  ASSERT_TRUE(reader.ok());
  char buf[3];
  ASSERT_TRUE(reader->ReadAt(7, buf, 3).ok());
  EXPECT_EQ(std::string(buf, 3), "789");
  ASSERT_TRUE(reader->ReadAt(0, buf, 3).ok());
  EXPECT_EQ(std::string(buf, 3), "012");
  EXPECT_EQ(reader->bytes_read(), 6u);
}

TEST_F(FileIoTest, LargeWriteBypassesBuffer) {
  const std::string path = Path("large");
  const std::string big(3 << 20, 'x');  // 3 MiB > 1 MiB buffer
  {
    auto writer = FileWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(big).ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  auto size = FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size.value(), big.size());
}

TEST_F(FileIoTest, AppendModeExtendsFile) {
  const std::string path = Path("append");
  ASSERT_TRUE(WriteStringToFile(path, "one").ok());
  {
    auto writer = FileWriter::OpenForAppend(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append("two").ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  auto data = ReadFileToString(path);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), "onetwo");
}

TEST_F(FileIoTest, OpenMissingFileFails) {
  EXPECT_TRUE(FileReader::Open(Path("missing")).status().IsIOError());
}

TEST_F(FileIoTest, FileExistsAndRemove) {
  const std::string path = Path("exists");
  EXPECT_FALSE(FileExists(path));
  ASSERT_TRUE(WriteStringToFile(path, "x").ok());
  EXPECT_TRUE(FileExists(path));
  ASSERT_TRUE(RemoveFile(path).ok());
  EXPECT_FALSE(FileExists(path));
  EXPECT_TRUE(RemoveFile(path).ok());  // idempotent
}

TEST_F(FileIoTest, FileSizeOfMissingIsNotFound) {
  EXPECT_TRUE(FileSize(Path("missing")).status().IsNotFound());
}

TEST_F(FileIoTest, SeekAndSequentialMix) {
  const std::string path = Path("seek");
  ASSERT_TRUE(WriteStringToFile(path, "abcdefgh").ok());
  auto reader = FileReader::Open(path);
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE(reader->Seek(4).ok());
  char c;
  ASSERT_TRUE(reader->ReadExact(&c, 1).ok());
  EXPECT_EQ(c, 'e');
  EXPECT_EQ(reader->position(), 5u);
}

TEST_F(FileIoTest, CodingRoundTrip) {
  char buf[8];
  EncodeFixed32(buf, 0xdeadbeefu);
  EXPECT_EQ(DecodeFixed32(buf), 0xdeadbeefu);
  EncodeFixed64(buf, 0x0123456789abcdefULL);
  EXPECT_EQ(DecodeFixed64(buf), 0x0123456789abcdefULL);
  std::string s;
  PutFixed32(&s, 7);
  PutFixed64(&s, 9);
  EXPECT_EQ(s.size(), 12u);
  EXPECT_EQ(DecodeFixed32(s.data()), 7u);
  EXPECT_EQ(DecodeFixed64(s.data() + 4), 9u);
}

TEST_F(FileIoTest, ReadPastEofReturnsZero) {
  const std::string path = Path("eof");
  ASSERT_TRUE(WriteStringToFile(path, "ab").ok());
  auto reader = FileReader::Open(path);
  ASSERT_TRUE(reader.ok());
  char buf[4];
  auto n = reader->Read(buf, 4);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 2u);
  n = reader->Read(buf, 4);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 0u);
}

}  // namespace
}  // namespace ndss
