#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace ndss {
namespace {

TEST(SplitMix64Test, DeterministicAndMixing) {
  EXPECT_EQ(SplitMix64(0), SplitMix64(0));
  EXPECT_NE(SplitMix64(0), SplitMix64(1));
  // Avalanche sanity: flipping one input bit flips roughly half the output.
  int total_flips = 0;
  for (int bit = 0; bit < 64; ++bit) {
    total_flips += __builtin_popcountll(SplitMix64(42) ^
                                        SplitMix64(42 ^ (1ULL << bit)));
  }
  const double mean_flips = total_flips / 64.0;
  EXPECT_GT(mean_flips, 24.0);
  EXPECT_LT(mean_flips, 40.0);
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_EQ(a.Next(), b.Next());
  Rng a2(7);
  EXPECT_NE(a2.Next(), c.Next());
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(123);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
  // All residues hit for a small bound.
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Uniform(1), 0u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(2024);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(31337);
  constexpr uint64_t kBuckets = 10;
  std::vector<int> counts(kBuckets, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rng.Uniform(kBuckets)];
  for (int count : counts) {
    EXPECT_NEAR(count, trials / kBuckets, 500);
  }
}

}  // namespace
}  // namespace ndss
