#include "query/verify.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

#include "corpusgen/synthetic.h"
#include "hash/hash_family.h"
#include "index/index_builder.h"

namespace ndss {
namespace {

TEST(BestWindowJaccardTest, ExactCopyScoresOne) {
  std::vector<Token> tokens = {9, 9, 1, 2, 3, 4, 9, 9};
  std::vector<Token> query = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(
      BestWindowJaccard(tokens, 0, 7, query), 1.0);
}

TEST(BestWindowJaccardTest, FindsBestWindowNotWholeSpan) {
  // The whole span has low similarity; the middle window is perfect.
  std::vector<Token> tokens = {100, 101, 1, 2, 3, 102, 103};
  std::vector<Token> query = {1, 2, 3};
  const double whole = ExactDistinctJaccard(tokens.data(), tokens.size(),
                                            query.data(), query.size());
  EXPECT_LT(whole, 0.5);
  EXPECT_DOUBLE_EQ(BestWindowJaccard(tokens, 0, 6, query), 1.0);
}

TEST(BestWindowJaccardTest, SpanShorterThanQuery) {
  std::vector<Token> tokens = {1, 2};
  std::vector<Token> query = {1, 2, 3, 4};
  // Window = whole span {1,2}; intersection 2, union 4.
  EXPECT_DOUBLE_EQ(BestWindowJaccard(tokens, 0, 1, query), 0.5);
}

TEST(BestWindowJaccardTest, DisjointScoresZero) {
  std::vector<Token> tokens = {5, 6, 7, 8};
  std::vector<Token> query = {1, 2};
  EXPECT_DOUBLE_EQ(BestWindowJaccard(tokens, 0, 3, query), 0.0);
}

TEST(BestWindowJaccardTest, MatchesNaiveSlidingScan) {
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Token> tokens(60);
    for (auto& t : tokens) t = static_cast<Token>(rng.Uniform(15));
    std::vector<Token> query(12);
    for (auto& t : query) t = static_cast<Token>(rng.Uniform(15));
    double naive = 0;
    for (size_t i = 0; i + query.size() <= tokens.size(); ++i) {
      naive = std::max(naive, ExactDistinctJaccard(tokens.data() + i,
                                                   query.size(), query.data(),
                                                   query.size()));
    }
    ASSERT_NEAR(BestWindowJaccard(tokens, 0,
                                  static_cast<uint32_t>(tokens.size() - 1),
                                  query),
                naive, 1e-12)
        << "trial " << trial;
  }
}

class VerifySpansTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ndss_verify_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(VerifySpansTest, EndToEndVerificationFiltersFalsePositives) {
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 80;
  corpus_options.vocab_size = 300;
  corpus_options.plant_rate = 0.4;
  corpus_options.plant_noise = 0.05;
  corpus_options.seed = 20;
  SyntheticCorpus sc = GenerateSyntheticCorpus(corpus_options);

  IndexBuildOptions build;
  build.k = 8;  // small k → noisy estimates → some false positives
  build.t = 20;
  ASSERT_TRUE(BuildIndexInMemory(sc.corpus, dir_, build).ok());
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());

  Rng rng(2);
  size_t total_spans = 0, kept_spans = 0;
  for (int q = 0; q < 10; ++q) {
    const TextId source = static_cast<TextId>(rng.Uniform(80));
    const auto text = sc.corpus.text(source);
    const uint32_t length =
        std::min<uint32_t>(40, static_cast<uint32_t>(text.size()));
    const std::vector<Token> query =
        PerturbSequence(text, 0, length, 0.1, 300, rng);
    SearchOptions options;
    options.theta = 0.6;
    auto result = searcher->Search(query, options);
    ASSERT_TRUE(result.ok());
    const auto verified = VerifySpans(sc.corpus, query, result->spans, 0.6);
    total_spans += result->spans.size();
    kept_spans += verified.size();
    for (const VerifiedMatch& match : verified) {
      EXPECT_GE(match.exact_jaccard, 0.6);
      EXPECT_LE(match.exact_jaccard, 1.0);
    }
  }
  EXPECT_GT(total_spans, 0u);
  EXPECT_GT(kept_spans, 0u);
  EXPECT_LE(kept_spans, total_spans);
}

TEST_F(VerifySpansTest, SelfQueryAlwaysVerifies) {
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 30;
  corpus_options.vocab_size = 5000;
  corpus_options.plant_rate = 0.0;
  corpus_options.seed = 21;
  SyntheticCorpus sc = GenerateSyntheticCorpus(corpus_options);

  IndexBuildOptions build;
  build.k = 16;
  build.t = 20;
  ASSERT_TRUE(BuildIndexInMemory(sc.corpus, dir_, build).ok());
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok());

  const auto text = sc.corpus.text(4);
  const std::vector<Token> query(text.begin(), text.begin() + 30);
  SearchOptions options;
  options.theta = 1.0;
  auto result = searcher->Search(query, options);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->spans.empty());
  const auto verified = VerifySpans(sc.corpus, query, result->spans, 1.0);
  bool self_verified = false;
  for (const VerifiedMatch& match : verified) {
    if (match.span.text == 4) {
      self_verified = true;
      EXPECT_DOUBLE_EQ(match.exact_jaccard, 1.0);
    }
  }
  EXPECT_TRUE(self_verified);
}

}  // namespace
}  // namespace ndss
