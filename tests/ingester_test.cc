// Streaming-ingestion semantics: WAL-acked appends are immediately
// searchable and bit-identical to a batch build over the same documents,
// across every lifecycle transition — memtable only, after spills, after
// restarts (single and double replay), after compaction, and under injected
// fsync and compaction failures.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/fault_injection_env.h"
#include "corpusgen/synthetic.h"
#include "index/index_builder.h"
#include "ingest/ingester.h"
#include "ingest/wal.h"
#include "query/searcher.h"
#include "shard/sharded_searcher.h"
#include "text/corpus.h"

namespace ndss {
namespace {

/// Field-sensitive serialization of a result's matches, so a sharded
/// streaming answer can be compared to a batch-built reference for exact
/// agreement.
std::string Fingerprint(const SearchResult& result) {
  std::ostringstream out;
  for (const TextMatchRectangle& r : result.rectangles) {
    out << "R" << r.text << ":" << r.rect.x_begin << "," << r.rect.x_end
        << "," << r.rect.y_begin << "," << r.rect.y_end << ","
        << r.rect.collisions << ";";
  }
  for (const MatchSpan& s : result.spans) {
    out << "S" << s.text << ":" << s.begin << "," << s.end << ","
        << s.collisions << ";";
  }
  return out.str();
}

class IngesterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_dir_ = ::testing::TempDir() + "/ndss_ingester_" +
               ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(set_dir_);

    SyntheticCorpusOptions options;
    options.num_texts = 48;
    options.min_text_length = 40;
    options.max_text_length = 90;
    options.vocab_size = 120;
    options.seed = 11;
    sc_ = GenerateSyntheticCorpus(options);

    build_.k = 4;
    build_.t = 10;
  }

  void TearDown() override {
    SetDefaultEnv(nullptr);
    std::filesystem::remove_all(set_dir_);
  }

  std::vector<std::vector<Token>> Docs(size_t count) const {
    std::vector<std::vector<Token>> docs;
    for (size_t i = 0; i < count; ++i) {
      const auto tokens = sc_.corpus.text(i);
      docs.emplace_back(tokens.begin(), tokens.end());
    }
    return docs;
  }

  std::vector<std::vector<Token>> Queries() const {
    std::vector<std::vector<Token>> queries;
    for (size_t i = 0; i < 6; ++i) {
      const auto tokens = sc_.corpus.text(i * 7);
      queries.emplace_back(tokens.begin(), tokens.begin() + 30);
    }
    return queries;
  }

  /// Fingerprints of the fixed query set against the batch-built in-memory
  /// reference over the first `count` documents.
  std::vector<std::string> ReferenceFingerprints(size_t count) {
    Corpus reference;
    for (const auto& doc : Docs(count)) reference.AddText(doc);
    auto searcher = Searcher::InMemory(reference, build_);
    EXPECT_TRUE(searcher.ok()) << searcher.status().ToString();
    return RunQueries([&](std::span<const Token> q, const SearchOptions& o) {
      return searcher->Search(q, o);
    });
  }

  std::vector<std::string> ShardedFingerprints(ShardedSearcher& searcher) {
    return RunQueries([&](std::span<const Token> q, const SearchOptions& o) {
      return searcher.Search(q, o);
    });
  }

  template <typename SearchFn>
  std::vector<std::string> RunQueries(SearchFn&& search) {
    SearchOptions options;
    options.theta = 0.5;
    std::vector<std::string> fingerprints;
    for (const auto& query : Queries()) {
      auto result = search(query, options);
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      fingerprints.push_back(result.ok() ? Fingerprint(*result) : "<error>");
    }
    return fingerprints;
  }

  /// Appends `docs` through `ingester` in batches of `batch_size`. One
  /// AppendBatch is one group commit (and trips at most one spill), so
  /// spill-counting tests must feed documents in sub-budget batches.
  static void AppendInBatches(Ingester& ingester,
                              const std::vector<std::vector<Token>>& docs,
                              size_t batch_size) {
    for (size_t i = 0; i < docs.size(); i += batch_size) {
      std::vector<std::vector<Token>> batch(
          docs.begin() + i,
          docs.begin() + std::min(docs.size(), i + batch_size));
      ASSERT_TRUE(ingester.AppendBatch(std::move(batch)).ok());
    }
  }

  IngestOptions NoCompaction() const {
    IngestOptions options;
    options.build = build_;
    options.enable_compaction = false;
    return options;
  }

  std::string set_dir_;
  SyntheticCorpus sc_;
  IndexBuildOptions build_;
};

TEST_F(IngesterTest, AppendsMatchBatchBuild) {
  ASSERT_TRUE(Ingester::CreateSet(set_dir_, build_).ok());
  auto searcher = ShardedSearcher::Open(set_dir_);
  ASSERT_TRUE(searcher.ok()) << searcher.status().ToString();
  auto ingester = Ingester::Open(&*searcher, NoCompaction());
  ASSERT_TRUE(ingester.ok()) << ingester.status().ToString();

  const auto docs = Docs(20);
  uint64_t seqno = 0;
  for (size_t i = 0; i < 10; ++i) {
    ASSERT_TRUE((*ingester)->Append(docs[i], &seqno).ok());
    EXPECT_EQ(seqno, i + 1);
  }
  std::vector<std::vector<Token>> rest(docs.begin() + 10, docs.end());
  uint64_t last = 0;
  ASSERT_TRUE((*ingester)->AppendBatch(rest, &last).ok());
  EXPECT_EQ(last, 20u);

  EXPECT_EQ(searcher->meta().num_texts, 20u);
  EXPECT_EQ(searcher->delta_texts(), 20u);
  EXPECT_EQ(ShardedFingerprints(*searcher), ReferenceFingerprints(20));

  const IngestStats stats = (*ingester)->stats();
  EXPECT_EQ(stats.docs_appended, 20u);
  EXPECT_EQ(stats.last_seqno, 20u);
  EXPECT_EQ(stats.delta_docs, 20u);
  EXPECT_EQ(stats.spills, 0u);
}

TEST_F(IngesterTest, SpillSealsShardAndResetsWal) {
  ASSERT_TRUE(Ingester::CreateSet(set_dir_, build_).ok());
  auto searcher = ShardedSearcher::Open(set_dir_);
  ASSERT_TRUE(searcher.ok());
  IngestOptions options = NoCompaction();
  options.memtable_max_docs = 8;
  auto ingester = Ingester::Open(&*searcher, options);
  ASSERT_TRUE(ingester.ok()) << ingester.status().ToString();

  const uint64_t epoch_before = searcher->epoch();
  AppendInBatches(**ingester, Docs(24), 4);

  const IngestStats stats = (*ingester)->stats();
  EXPECT_EQ(stats.spills, 3u);
  EXPECT_EQ(stats.applied_seqno, 24u);
  EXPECT_EQ(stats.delta_docs, 0u);
  EXPECT_EQ(searcher->applied_seqno(), 24u);
  EXPECT_GT(searcher->epoch(), epoch_before);
  EXPECT_EQ(searcher->shards().size(), 4u);  // genesis + 3 spills
  EXPECT_EQ(searcher->meta().num_texts, 24u);

  // The spilled prefix left the WAL.
  auto wal_size = GetDefaultEnv()->GetFileSize(set_dir_ + "/WAL");
  ASSERT_TRUE(wal_size.ok());
  EXPECT_EQ(*wal_size, 0u);

  EXPECT_EQ(ShardedFingerprints(*searcher), ReferenceFingerprints(24));

  // Flush with an empty memtable is a no-op.
  ASSERT_TRUE((*ingester)->Flush().ok());
  EXPECT_EQ((*ingester)->stats().spills, 3u);
}

TEST_F(IngesterTest, RestartReplaysUnsealedDocuments) {
  ASSERT_TRUE(Ingester::CreateSet(set_dir_, build_).ok());
  {
    auto searcher = ShardedSearcher::Open(set_dir_);
    ASSERT_TRUE(searcher.ok());
    IngestOptions options = NoCompaction();
    options.memtable_max_docs = 8;
    auto ingester = Ingester::Open(&*searcher, options);
    ASSERT_TRUE(ingester.ok());
    // 20 docs in batches of 4: 2 spills of 8, then 4 left in memtable + WAL.
    AppendInBatches(**ingester, Docs(20), 4);
    ASSERT_TRUE((*ingester)->Close().ok());
  }
  {
    auto searcher = ShardedSearcher::Open(set_dir_);
    ASSERT_TRUE(searcher.ok());
    EXPECT_EQ(searcher->meta().num_texts, 16u);  // sealed shards only
    auto ingester = Ingester::Open(&*searcher, NoCompaction());
    ASSERT_TRUE(ingester.ok()) << ingester.status().ToString();
    EXPECT_EQ((*ingester)->stats().docs_replayed, 4u);
    EXPECT_EQ(searcher->meta().num_texts, 20u);  // + replayed memtable
    EXPECT_EQ(ShardedFingerprints(*searcher), ReferenceFingerprints(20));

    // Appends continue the WAL seqno sequence.
    uint64_t seqno = 0;
    ASSERT_TRUE((*ingester)->Append(Docs(21)[20], &seqno).ok());
    EXPECT_EQ(seqno, 21u);
    EXPECT_EQ(ShardedFingerprints(*searcher), ReferenceFingerprints(21));
  }
}

TEST_F(IngesterTest, DoubleReplayIsIdempotent) {
  ASSERT_TRUE(Ingester::CreateSet(set_dir_, build_).ok());
  {
    auto searcher = ShardedSearcher::Open(set_dir_);
    ASSERT_TRUE(searcher.ok());
    auto ingester = Ingester::Open(&*searcher, NoCompaction());
    ASSERT_TRUE(ingester.ok());
    ASSERT_TRUE((*ingester)->AppendBatch(Docs(12)).ok());
  }
  const std::vector<std::string> expected = ReferenceFingerprints(12);
  for (int replay = 0; replay < 2; ++replay) {
    auto searcher = ShardedSearcher::Open(set_dir_);
    ASSERT_TRUE(searcher.ok());
    auto ingester = Ingester::Open(&*searcher, NoCompaction());
    ASSERT_TRUE(ingester.ok()) << ingester.status().ToString();
    // Replaying the same WAL twice must not duplicate documents.
    EXPECT_EQ((*ingester)->stats().docs_replayed, 12u) << "replay " << replay;
    EXPECT_EQ(searcher->meta().num_texts, 12u) << "replay " << replay;
    EXPECT_EQ(searcher->delta_texts(), 12u) << "replay " << replay;
    EXPECT_EQ(ShardedFingerprints(*searcher), expected) << "replay " << replay;
  }
}

TEST_F(IngesterTest, ReplaySkipsFramesAtOrBelowAppliedSeqno) {
  ASSERT_TRUE(Ingester::CreateSet(set_dir_, build_).ok());
  {
    auto searcher = ShardedSearcher::Open(set_dir_);
    ASSERT_TRUE(searcher.ok());
    auto ingester = Ingester::Open(&*searcher, NoCompaction());
    ASSERT_TRUE(ingester.ok());
    ASSERT_TRUE((*ingester)->AppendBatch(Docs(10)).ok());
    ASSERT_TRUE((*ingester)->Flush().ok());  // seals all 10, applied = 10
  }
  // Simulate a crash between the spill's manifest commit and the WAL
  // truncation: put the already-applied frames back.
  {
    auto writer = WalWriter::Open(set_dir_ + "/WAL");
    ASSERT_TRUE(writer.ok());
    const auto docs = Docs(10);
    for (size_t i = 0; i < docs.size(); ++i) {
      ASSERT_TRUE(writer->Append(i + 1, docs[i]).ok());
    }
    ASSERT_TRUE(writer->Sync().ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  auto searcher = ShardedSearcher::Open(set_dir_);
  ASSERT_TRUE(searcher.ok());
  EXPECT_EQ(searcher->applied_seqno(), 10u);
  auto ingester = Ingester::Open(&*searcher, NoCompaction());
  ASSERT_TRUE(ingester.ok());
  EXPECT_EQ((*ingester)->stats().docs_replayed, 0u);
  EXPECT_EQ(searcher->meta().num_texts, 10u);  // no duplicates
  EXPECT_EQ(ShardedFingerprints(*searcher), ReferenceFingerprints(10));
}

TEST_F(IngesterTest, CompactionFoldsShardsAndPreservesAnswers) {
  ASSERT_TRUE(Ingester::CreateSet(set_dir_, build_).ok());
  auto searcher = ShardedSearcher::Open(set_dir_);
  ASSERT_TRUE(searcher.ok());
  IngestOptions options = NoCompaction();
  options.memtable_max_docs = 4;
  options.compaction_fanin = 3;
  auto ingester = Ingester::Open(&*searcher, options);
  ASSERT_TRUE(ingester.ok());

  AppendInBatches(**ingester, Docs(32), 4);
  const size_t shards_before = searcher->shards().size();
  EXPECT_EQ(shards_before, 9u);  // genesis + 8 spills

  // Drive the compactor synchronously until a fixed point.
  bool compacted = true;
  while (compacted) {
    ASSERT_TRUE((*ingester)->CompactOnce(&compacted).ok());
  }
  EXPECT_LT(searcher->shards().size(), shards_before);
  EXPECT_GT((*ingester)->stats().compactions, 0u);
  EXPECT_EQ(searcher->meta().num_texts, 32u);
  EXPECT_EQ(ShardedFingerprints(*searcher), ReferenceFingerprints(32));

  // The folded input directories are gone; survivors and the set reopen.
  auto reopened = ShardedSearcher::Open(set_dir_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(ShardedFingerprints(*reopened), ReferenceFingerprints(32));
}

TEST_F(IngesterTest, CompactionFailureLeavesServingIntact) {
  FaultInjectionEnv fault(Env::Posix());
  SetDefaultEnv(&fault);

  ASSERT_TRUE(Ingester::CreateSet(set_dir_, build_).ok());
  auto searcher = ShardedSearcher::Open(set_dir_);
  ASSERT_TRUE(searcher.ok());
  IngestOptions options = NoCompaction();
  options.memtable_max_docs = 4;
  options.compaction_retry.max_attempts = 2;
  options.compaction_retry.initial_backoff_micros = 1;
  auto ingester = Ingester::Open(&*searcher, options);
  ASSERT_TRUE(ingester.ok());
  AppendInBatches(**ingester, Docs(16), 4);
  const size_t shards_before = searcher->shards().size();

  // Every write into a compaction output directory fails.
  fault.SetFaultPathFilter("compact-");
  fault.SetFailProbability(1.0);
  bool compacted = true;
  const Status failed = (*ingester)->CompactOnce(&compacted);
  EXPECT_FALSE(failed.ok());
  EXPECT_FALSE(compacted);
  EXPECT_GE((*ingester)->stats().compaction_failures, 1u);

  // Serving and ingestion never degraded; the topology is untouched.
  EXPECT_EQ(searcher->shards().size(), shards_before);
  EXPECT_EQ(ShardedFingerprints(*searcher), ReferenceFingerprints(16));
  ASSERT_TRUE((*ingester)->Append(Docs(17)[16]).ok());

  // Once the fault clears, compaction succeeds.
  fault.Heal();
  ASSERT_TRUE((*ingester)->CompactOnce(&compacted).ok());
  EXPECT_TRUE(compacted);
  EXPECT_LT(searcher->shards().size(), shards_before);
  EXPECT_EQ(ShardedFingerprints(*searcher), ReferenceFingerprints(17));
}

TEST_F(IngesterTest, FailedFsyncPoisonsAppendsButNotServing) {
  FaultInjectionEnv fault(Env::Posix());
  SetDefaultEnv(&fault);

  ASSERT_TRUE(Ingester::CreateSet(set_dir_, build_).ok());
  auto searcher = ShardedSearcher::Open(set_dir_);
  ASSERT_TRUE(searcher.ok());
  auto ingester = Ingester::Open(&*searcher, NoCompaction());
  ASSERT_TRUE(ingester.ok());
  ASSERT_TRUE((*ingester)->AppendBatch(Docs(8)).ok());

  fault.SetFailFsync(true);
  const Status failed = (*ingester)->Append(Docs(9)[8]);
  ASSERT_FALSE(failed.ok()) << "a failed WAL fsync must surface, not ack";
  EXPECT_TRUE((*ingester)->poisoned());

  // Sticky: healing the env does not resurrect the write path (fsyncgate —
  // only a re-open that re-scans the on-disk log can).
  fault.Heal();
  EXPECT_FALSE((*ingester)->Append(Docs(9)[8]).ok());
  EXPECT_FALSE((*ingester)->Flush().ok());

  // Serving still answers with exactly the acked documents.
  EXPECT_EQ(searcher->meta().num_texts, 8u);
  EXPECT_EQ(ShardedFingerprints(*searcher), ReferenceFingerprints(8));
  EXPECT_EQ((*ingester)->stats().docs_appended, 8u);

  // A crash + restart recovers the acked prefix; the unacked document is
  // gone, as the error promised.
  ingester->reset();
  searcher = Status::IOError("dropped");
  ASSERT_TRUE(fault.DropUnsyncedData().ok());
  auto recovered_searcher = ShardedSearcher::Open(set_dir_);
  ASSERT_TRUE(recovered_searcher.ok());
  auto recovered = Ingester::Open(&*recovered_searcher, NoCompaction());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered_searcher->meta().num_texts, 8u);
  EXPECT_EQ(ShardedFingerprints(*recovered_searcher),
            ReferenceFingerprints(8));
  EXPECT_FALSE((*recovered)->poisoned());
}

TEST_F(IngesterTest, GuardsAndEdgeCases) {
  ASSERT_TRUE(Ingester::CreateSet(set_dir_, build_).ok());
  // Creating over an existing set fails.
  EXPECT_FALSE(Ingester::CreateSet(set_dir_, build_).ok());

  auto searcher = ShardedSearcher::Open(set_dir_);
  ASSERT_TRUE(searcher.ok());

  // Mismatched build parameters are rejected.
  IngestOptions wrong = NoCompaction();
  wrong.build.k = build_.k + 1;
  EXPECT_FALSE(Ingester::Open(&*searcher, wrong).ok());

  // A different sketch scheme is a family mismatch too, and the error says so.
  IngestOptions wrong_scheme = NoCompaction();
  wrong_scheme.build.sketch = SketchSchemeId::kCMinHash;
  auto mismatched = Ingester::Open(&*searcher, wrong_scheme);
  ASSERT_FALSE(mismatched.ok());
  EXPECT_TRUE(mismatched.status().IsInvalidArgument())
      << mismatched.status().ToString();
  EXPECT_NE(mismatched.status().ToString().find("sketch"), std::string::npos)
      << mismatched.status().ToString();

  auto ingester = Ingester::Open(&*searcher, NoCompaction());
  ASSERT_TRUE(ingester.ok());
  EXPECT_TRUE((*ingester)->AppendBatch({}).ok());  // empty batch is a no-op
  ASSERT_TRUE((*ingester)->Close().ok());
  EXPECT_TRUE((*ingester)->Close().ok());  // idempotent
  EXPECT_FALSE((*ingester)->Append(Docs(1)[0]).ok());  // closed
}

TEST_F(IngesterTest, CMinHashStreamingMatchesBatchBuild) {
  // The streaming/batch bit-identity contract holds per scheme: a C-MinHash
  // set answers exactly like a C-MinHash batch build over the same documents.
  build_.sketch = SketchSchemeId::kCMinHash;
  ASSERT_TRUE(Ingester::CreateSet(set_dir_, build_).ok());
  auto searcher = ShardedSearcher::Open(set_dir_);
  ASSERT_TRUE(searcher.ok()) << searcher.status().ToString();
  EXPECT_EQ(searcher->meta().sketch, SketchSchemeId::kCMinHash);
  auto ingester = Ingester::Open(&*searcher, NoCompaction());
  ASSERT_TRUE(ingester.ok()) << ingester.status().ToString();

  AppendInBatches(**ingester, Docs(20), 5);
  EXPECT_EQ(searcher->meta().num_texts, 20u);
  EXPECT_EQ(ShardedFingerprints(*searcher), ReferenceFingerprints(20));
}

TEST_F(IngesterTest, OrphanSweepRemovesUncommittedSpill) {
  ASSERT_TRUE(Ingester::CreateSet(set_dir_, build_).ok());
  // A crash mid-spill leaves a half-built, uncommitted shard directory.
  const std::string orphan = set_dir_ + "/delta-00000000000000000099";
  std::filesystem::create_directories(orphan);
  std::ofstream(orphan + "/inverted.0.ndx") << "partial";

  auto searcher = ShardedSearcher::Open(set_dir_);
  ASSERT_TRUE(searcher.ok());
  auto ingester = Ingester::Open(&*searcher, NoCompaction());
  ASSERT_TRUE(ingester.ok()) << ingester.status().ToString();
  EXPECT_FALSE(std::filesystem::exists(orphan));
}

}  // namespace
}  // namespace ndss
