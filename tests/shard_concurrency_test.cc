// ShardedSearcher under concurrency: many query threads against one
// ShardedSearcher while an admin thread attaches and detaches a shard.
// Every observed answer must exactly match one of the two topologies'
// expected outputs (epoch snapshots: a query never sees a half-applied
// topology change). Written to run under TSan (cmake -DNDSS_SANITIZE=thread).

#include "shard/sharded_searcher.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/file_io.h"
#include "corpusgen/synthetic.h"
#include "index/index_builder.h"
#include "index/index_merger.h"
#include "query/searcher.h"

namespace ndss {
namespace {

class ShardConcurrencyTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kNumTexts = 90;
  static constexpr uint32_t kShardTexts = 30;  // 3 shards

  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ndss_shardconc_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    ASSERT_TRUE(CreateDirectories(dir_).ok());

    SyntheticCorpusOptions corpus_options;
    corpus_options.num_texts = kNumTexts;
    corpus_options.vocab_size = 300;
    corpus_options.plant_rate = 0.35;
    corpus_options.seed = 101;
    sc_ = GenerateSyntheticCorpus(corpus_options);

    IndexBuildOptions build;
    build.k = 4;
    build.t = 15;
    for (uint32_t s = 0; s < 3; ++s) {
      Corpus shard;
      for (uint32_t i = s * kShardTexts; i < (s + 1) * kShardTexts; ++i) {
        shard.AddText(sc_.corpus.text(i));
      }
      ASSERT_TRUE(BuildIndexInMemory(shard, ShardDir(s), build).ok());
    }
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string ShardDir(uint32_t s) const {
    return dir_ + "/s" + std::to_string(s);
  }
  std::string SetDir() const { return dir_ + "/set"; }

  static std::string Fingerprint(const SearchResult& result) {
    std::string fp;
    for (const MatchSpan& span : result.spans) {
      fp += std::to_string(span.text) + ":" + std::to_string(span.begin) +
            "-" + std::to_string(span.end) + "/" +
            std::to_string(span.collisions) + ";";
    }
    return fp;
  }

  std::vector<std::vector<Token>> MakeQueries(size_t count) const {
    Rng rng(7);
    std::vector<std::vector<Token>> queries;
    for (size_t q = 0; q < count; ++q) {
      const TextId source = static_cast<TextId>(rng.Uniform(kNumTexts));
      const auto text = sc_.corpus.text(source);
      const uint32_t length =
          std::min<uint32_t>(30, static_cast<uint32_t>(text.size()));
      queries.push_back(PerturbSequence(text, 0, length, 0.1, 300, rng));
    }
    return queries;
  }

  std::string dir_;
  SyntheticCorpus sc_;
};

TEST_F(ShardConcurrencyTest, AttachDetachUnderQueryLoad) {
  ShardManifest manifest;
  manifest.shard_dirs = {ShardDir(0), ShardDir(1)};
  ASSERT_TRUE(manifest.Save(SetDir()).ok());

  SearchOptions options;
  options.theta = 0.6;
  const auto queries = MakeQueries(6);

  // Expected answers for both topologies the admin thread cycles between,
  // computed from single merged baselines.
  ASSERT_TRUE(MergeIndexes({ShardDir(0), ShardDir(1)}, dir_ + "/m2",
                           IndexMergeOptions{})
                  .ok());
  ASSERT_TRUE(MergeIndexes({ShardDir(0), ShardDir(1), ShardDir(2)},
                           dir_ + "/m3", IndexMergeOptions{})
                  .ok());
  std::vector<std::string> fp2, fp3;
  {
    auto m2 = Searcher::Open(dir_ + "/m2");
    auto m3 = Searcher::Open(dir_ + "/m3");
    ASSERT_TRUE(m2.ok() && m3.ok());
    for (const auto& query : queries) {
      auto a = m2->Search(query, options);
      auto b = m3->Search(query, options);
      ASSERT_TRUE(a.ok() && b.ok());
      fp2.push_back(Fingerprint(*a));
      fp3.push_back(Fingerprint(*b));
    }
  }

  auto sharded = ShardedSearcher::Open(SetDir());
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries_run{0};
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> workers;
  const size_t kWorkers = 4;
  for (size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      size_t q = w % queries.size();
      while (!stop.load(std::memory_order_relaxed)) {
        if (w % 2 == 0) {
          auto result = sharded->Search(queries[q], options);
          if (!result.ok()) {
            ++mismatches;
          } else {
            const std::string fp = Fingerprint(*result);
            if (fp != fp2[q] && fp != fp3[q]) ++mismatches;
          }
          ++queries_run;
        } else {
          // Batch path: every query in the batch must come from ONE
          // snapshot, so all fingerprints match the same topology.
          auto batch = sharded->SearchBatch(queries, options, 16 << 20, 2);
          if (!batch.ok()) {
            ++mismatches;
          } else {
            bool all2 = true, all3 = true;
            for (size_t i = 0; i < queries.size(); ++i) {
              const std::string fp = Fingerprint((*batch)[i]);
              all2 &= fp == fp2[i];
              all3 &= fp == fp3[i];
            }
            if (!all2 && !all3) ++mismatches;
          }
          queries_run += queries.size();
        }
        q = (q + 1) % queries.size();
      }
    });
  }

  // Admin thread: cycle shard 2 in and out while the workers hammer.
  uint64_t epochs = 0;
  for (int cycle = 0; cycle < 10; ++cycle) {
    ASSERT_TRUE(sharded->AttachShard(ShardDir(2)).ok());
    ++epochs;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(sharded->DetachShard(ShardDir(2)).ok());
    ++epochs;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  for (std::thread& t : workers) t.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GT(queries_run.load(), 0u);
  EXPECT_EQ(sharded->epoch(), epochs);
  EXPECT_EQ(sharded->meta().num_texts, 2 * kShardTexts);
}

TEST_F(ShardConcurrencyTest, ConcurrentGovernedSearches) {
  ShardManifest manifest;
  manifest.shard_dirs = {ShardDir(0), ShardDir(1), ShardDir(2)};
  ASSERT_TRUE(manifest.Save(SetDir()).ok());
  auto sharded = ShardedSearcher::Open(SetDir());
  ASSERT_TRUE(sharded.ok());

  SearchOptions options;
  options.theta = 0.6;
  const auto queries = MakeQueries(4);
  std::vector<std::string> expected;
  for (const auto& query : queries) {
    auto result = sharded->Search(query, options);
    ASSERT_TRUE(result.ok());
    expected.push_back(Fingerprint(*result));
  }

  // Concurrent governed queries share the scatter pool; a permissive
  // budget and deadline must not change any answer.
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> workers;
  for (size_t w = 0; w < 8; ++w) {
    workers.emplace_back([&, w] {
      for (int iter = 0; iter < 5; ++iter) {
        const size_t q = (w + iter) % queries.size();
        QueryContext ctx = QueryContext::WithTimeout(60'000'000);
        MemoryBudget budget(1ull << 30);
        ctx.set_memory_budget(&budget);
        SearchResult result;
        const Status status =
            sharded->Search(queries[q], options, &ctx, &result);
        if (!status.ok() || Fingerprint(result) != expected[q]) ++mismatches;
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

}  // namespace
}  // namespace ndss
