#include "align/text_aligner.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"

namespace ndss {
namespace {

std::vector<Token> RandomTokens(size_t n, uint32_t vocab, uint64_t seed) {
  Rng rng(seed);
  std::vector<Token> tokens(n);
  for (auto& token : tokens) token = static_cast<Token>(rng.Uniform(vocab));
  return tokens;
}

AlignmentOptions SmallOptions() {
  AlignmentOptions options;
  options.window = 32;
  options.stride = 16;
  options.theta = 0.8;
  options.k = 16;
  options.t = 16;
  return options;
}

TEST(TextAlignerTest, UnrelatedTextsDoNotAlign) {
  const auto a = RandomTokens(500, 100000, 1);
  const auto b = RandomTokens(500, 100000, 2);
  auto pairs = AlignTexts(a, b, SmallOptions());
  ASSERT_TRUE(pairs.ok());
  EXPECT_TRUE(pairs->empty());
}

TEST(TextAlignerTest, FindsSharedRegion) {
  auto a = RandomTokens(400, 100000, 3);
  auto b = RandomTokens(400, 100000, 4);
  // Copy a[100..199] into b[250..349].
  for (int i = 0; i < 100; ++i) b[250 + i] = a[100 + i];
  auto pairs = AlignTexts(a, b, SmallOptions());
  ASSERT_TRUE(pairs.ok());
  ASSERT_FALSE(pairs->empty());
  bool found = false;
  for (const AlignedSpanPair& pair : *pairs) {
    if (pair.a_begin <= 110 && pair.a_end >= 180 && pair.b_begin <= 260 &&
        pair.b_end >= 330) {
      found = true;
      EXPECT_GE(pair.estimated_similarity, 0.8);
    }
  }
  EXPECT_TRUE(found) << "the shared 100-token region must be reported";
}

TEST(TextAlignerTest, MultipleSharedRegionsStayDistinct) {
  auto a = RandomTokens(600, 100000, 5);
  auto b = RandomTokens(600, 100000, 6);
  for (int i = 0; i < 64; ++i) b[50 + i] = a[50 + i];
  for (int i = 0; i < 64; ++i) b[450 + i] = a[450 + i];
  auto pairs = AlignTexts(a, b, SmallOptions());
  ASSERT_TRUE(pairs.ok());
  int early = 0, late = 0;
  for (const AlignedSpanPair& pair : *pairs) {
    if (pair.b_begin < 200) ++early;
    if (pair.b_begin > 350) ++late;
  }
  EXPECT_GE(early, 1);
  EXPECT_GE(late, 1);
}

TEST(TextAlignerTest, NearDuplicateRegionAligns) {
  auto a = RandomTokens(300, 100000, 7);
  auto b = RandomTokens(300, 100000, 8);
  Rng rng(9);
  // 95%-fidelity copy.
  for (int i = 0; i < 100; ++i) {
    b[100 + i] = rng.NextBool(0.05)
                     ? static_cast<Token>(rng.Uniform(100000))
                     : a[100 + i];
  }
  AlignmentOptions options = SmallOptions();
  options.theta = 0.7;
  auto pairs = AlignTexts(a, b, options);
  ASSERT_TRUE(pairs.ok());
  EXPECT_FALSE(pairs->empty());
}

TEST(TextAlignerTest, IdenticalTextsAlignFully) {
  const auto a = RandomTokens(200, 100000, 10);
  auto pairs = AlignTexts(a, a, SmallOptions());
  ASSERT_TRUE(pairs.ok());
  ASSERT_FALSE(pairs->empty());
  // The merged alignment should cover nearly the whole document.
  uint32_t covered = 0;
  for (const AlignedSpanPair& pair : *pairs) {
    covered += pair.a_end - pair.a_begin + 1;
  }
  EXPECT_GE(covered, 150u);
}

TEST(TextAlignerTest, InvalidOptionsRejected) {
  const auto a = RandomTokens(100, 1000, 11);
  AlignmentOptions options = SmallOptions();
  options.stride = 0;
  EXPECT_FALSE(AlignTexts(a, a, options).ok());
  options = SmallOptions();
  options.stride = options.window + 1;
  EXPECT_FALSE(AlignTexts(a, a, options).ok());
}

TEST(TextAlignerTest, ShortInputsYieldNothing) {
  const auto a = RandomTokens(10, 1000, 12);
  const auto b = RandomTokens(100, 1000, 13);
  auto pairs = AlignTexts(a, b, SmallOptions());  // a shorter than window
  ASSERT_TRUE(pairs.ok());
  EXPECT_TRUE(pairs->empty());
}

}  // namespace
}  // namespace ndss
