#include "corpusgen/synthetic.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "hash/hash_family.h"

namespace ndss {
namespace {

SyntheticCorpusOptions SmallOptions() {
  SyntheticCorpusOptions options;
  options.num_texts = 200;
  options.min_text_length = 50;
  options.max_text_length = 150;
  options.vocab_size = 500;
  options.plant_rate = 0.5;
  options.min_plant_length = 20;
  options.max_plant_length = 40;
  options.plant_noise = 0.1;
  options.seed = 7;
  return options;
}

TEST(SyntheticCorpusTest, RespectsShapeOptions) {
  SyntheticCorpus sc = GenerateSyntheticCorpus(SmallOptions());
  EXPECT_EQ(sc.corpus.num_texts(), 200u);
  for (size_t i = 0; i < sc.corpus.num_texts(); ++i) {
    const size_t len = sc.corpus.text_length(i);
    EXPECT_GE(len, 50u);
    EXPECT_LE(len, 150u);
    for (Token token : sc.corpus.text(i)) EXPECT_LT(token, 500u);
  }
}

TEST(SyntheticCorpusTest, DeterministicGivenSeed) {
  SyntheticCorpus a = GenerateSyntheticCorpus(SmallOptions());
  SyntheticCorpus b = GenerateSyntheticCorpus(SmallOptions());
  ASSERT_EQ(a.corpus.num_texts(), b.corpus.num_texts());
  for (size_t i = 0; i < a.corpus.num_texts(); ++i) {
    ASSERT_TRUE(std::equal(a.corpus.text(i).begin(), a.corpus.text(i).end(),
                           b.corpus.text(i).begin(),
                           b.corpus.text(i).end()));
  }
  EXPECT_EQ(a.plants.size(), b.plants.size());
}

TEST(SyntheticCorpusTest, PlantRateApproximatelyHonoured) {
  SyntheticCorpus sc = GenerateSyntheticCorpus(SmallOptions());
  // plant_rate = 0.5 over 199 eligible texts.
  EXPECT_GT(sc.plants.size(), 60u);
  EXPECT_LT(sc.plants.size(), 140u);
}

TEST(SyntheticCorpusTest, PlantedSpansActuallySimilar) {
  SyntheticCorpus sc = GenerateSyntheticCorpus(SmallOptions());
  ASSERT_FALSE(sc.plants.empty());
  for (const PlantedSpan& plant : sc.plants) {
    const auto source = sc.corpus.text(plant.source_text);
    const auto target = sc.corpus.text(plant.target_text);
    ASSERT_LE(plant.source_begin + plant.length, source.size());
    ASSERT_LE(plant.target_begin + plant.length, target.size());
    const double jaccard = ExactDistinctJaccard(
        source.data() + plant.source_begin, plant.length,
        target.data() + plant.target_begin, plant.length);
    // 10% noise leaves high similarity.
    EXPECT_GT(jaccard, 0.5) << "plant into text " << plant.target_text;
    EXPECT_LE(plant.perturbed, plant.length);
  }
}

TEST(SyntheticCorpusTest, ZeroNoiseMakesExactCopies) {
  SyntheticCorpusOptions options = SmallOptions();
  options.plant_noise = 0.0;
  SyntheticCorpus sc = GenerateSyntheticCorpus(options);
  ASSERT_FALSE(sc.plants.empty());
  for (const PlantedSpan& plant : sc.plants) {
    const auto source = sc.corpus.text(plant.source_text);
    const auto target = sc.corpus.text(plant.target_text);
    EXPECT_TRUE(std::equal(source.begin() + plant.source_begin,
                           source.begin() + plant.source_begin + plant.length,
                           target.begin() + plant.target_begin));
    EXPECT_EQ(plant.perturbed, 0u);
  }
}

TEST(SyntheticCorpusTest, TokenFrequenciesAreSkewed) {
  SyntheticCorpusOptions options = SmallOptions();
  options.plant_rate = 0.0;
  SyntheticCorpus sc = GenerateSyntheticCorpus(options);
  std::unordered_map<Token, uint64_t> freq;
  for (size_t i = 0; i < sc.corpus.num_texts(); ++i) {
    for (Token token : sc.corpus.text(i)) ++freq[token];
  }
  std::vector<uint64_t> counts;
  for (const auto& [token, count] : freq) counts.push_back(count);
  std::sort(counts.begin(), counts.end(), std::greater<uint64_t>());
  // Zipf: the most frequent token dominates the median token.
  EXPECT_GT(counts.front(), 10 * counts[counts.size() / 2]);
}

TEST(PerturbSequenceTest, NoiseZeroCopiesExactly) {
  SyntheticCorpus sc = GenerateSyntheticCorpus(SmallOptions());
  Rng rng(5);
  const auto text = sc.corpus.text(0);
  std::vector<Token> q =
      PerturbSequence(text, 10, 20, 0.0, 500, rng);
  EXPECT_TRUE(std::equal(q.begin(), q.end(), text.begin() + 10));
}

TEST(PerturbSequenceTest, FullNoiseChangesMostTokens) {
  SyntheticCorpus sc = GenerateSyntheticCorpus(SmallOptions());
  Rng rng(5);
  const auto text = sc.corpus.text(0);
  std::vector<Token> q = PerturbSequence(text, 0, 50, 1.0, 500, rng);
  size_t same = 0;
  for (size_t i = 0; i < 50; ++i) same += (q[i] == text[i]) ? 1 : 0;
  EXPECT_LT(same, 10u);
}

TEST(DuplicationCorpusTest, CanariesPlantedExactlyDuplicationTimes) {
  SyntheticCorpusOptions base;
  base.num_texts = 300;
  base.min_text_length = 60;
  base.max_text_length = 120;
  base.vocab_size = 500;
  base.seed = 8;
  DuplicationCorpus dc =
      GenerateDuplicationCorpus(base, {1, 3, 9}, 4, 20);
  ASSERT_EQ(dc.canaries.size(), 12u);
  for (const Canary& canary : dc.canaries) {
    // Count verbatim occurrences across the corpus.
    uint32_t occurrences = 0;
    for (size_t i = 0; i < dc.corpus.num_texts(); ++i) {
      const auto text = dc.corpus.text(i);
      for (size_t p = 0; p + canary.tokens.size() <= text.size(); ++p) {
        if (std::equal(canary.tokens.begin(), canary.tokens.end(),
                       text.begin() + p)) {
          ++occurrences;
          break;  // disjoint hosts: at most one copy per text
        }
      }
    }
    EXPECT_EQ(occurrences, canary.duplication)
        << "canary with factor " << canary.duplication;
  }
}

TEST(DuplicationCorpusTest, DeterministicGivenSeed) {
  SyntheticCorpusOptions base;
  base.num_texts = 100;
  base.min_text_length = 50;
  base.max_text_length = 80;
  base.vocab_size = 200;
  base.seed = 9;
  DuplicationCorpus a = GenerateDuplicationCorpus(base, {2, 4}, 3, 15);
  DuplicationCorpus b = GenerateDuplicationCorpus(base, {2, 4}, 3, 15);
  ASSERT_EQ(a.canaries.size(), b.canaries.size());
  for (size_t i = 0; i < a.canaries.size(); ++i) {
    EXPECT_EQ(a.canaries[i].tokens, b.canaries[i].tokens);
  }
  ASSERT_EQ(a.corpus.num_texts(), b.corpus.num_texts());
  for (size_t i = 0; i < a.corpus.num_texts(); ++i) {
    ASSERT_TRUE(std::equal(a.corpus.text(i).begin(), a.corpus.text(i).end(),
                           b.corpus.text(i).begin(),
                           b.corpus.text(i).end()));
  }
}

TEST(SyntheticEnglishTest, DeterministicAndNonTrivial) {
  const std::string a = GenerateSyntheticEnglish(100, 3);
  const std::string b = GenerateSyntheticEnglish(100, 3);
  const std::string c = GenerateSyntheticEnglish(100, 4);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_GT(a.size(), 1000u);
  EXPECT_NE(a.find(' '), std::string::npos);
  EXPECT_NE(a.find(". "), std::string::npos);
}

}  // namespace
}  // namespace ndss
