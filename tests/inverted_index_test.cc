#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <vector>

#include "common/random.h"
#include "index/inverted_index_reader.h"
#include "index/inverted_index_writer.h"

namespace ndss {
namespace {

class InvertedIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ndss_invidx_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".ndx";
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string path_;
};

TEST_F(InvertedIndexTest, EmptyIndexRoundTrip) {
  auto writer = InvertedIndexWriter::Create(path_, 3, 64, 256);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Finish().ok());
  auto reader = InvertedIndexReader::Open(path_);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->func(), 3u);
  EXPECT_EQ(reader->num_lists(), 0u);
  EXPECT_EQ(reader->num_windows(), 0u);
  EXPECT_EQ(reader->FindList(5), nullptr);
}

TEST_F(InvertedIndexTest, SingleListRoundTrip) {
  auto writer = InvertedIndexWriter::Create(path_, 0, 64, 256);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->BeginList(42).ok());
  std::vector<PostedWindow> windows = {
      {1, 0, 2, 5}, {1, 6, 8, 9}, {3, 1, 1, 4}, {7, 0, 0, 2}};
  ASSERT_TRUE(writer->AddWindows(windows.data(), windows.size()).ok());
  ASSERT_TRUE(writer->Finish().ok());

  auto reader = InvertedIndexReader::Open(path_);
  ASSERT_TRUE(reader.ok());
  const ListMeta* meta = reader->FindList(42);
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->count, 4u);
  std::vector<PostedWindow> loaded;
  ASSERT_TRUE(reader->ReadList(*meta, &loaded).ok());
  EXPECT_EQ(loaded, windows);
}

TEST_F(InvertedIndexTest, UnsortedKeysGetSortedDirectory) {
  auto writer = InvertedIndexWriter::Create(path_, 0, 64, 1 << 30);
  ASSERT_TRUE(writer.ok());
  for (Token key : {50u, 10u, 30u}) {
    ASSERT_TRUE(writer->BeginList(key).ok());
    PostedWindow w{key, 0, 0, 0};
    ASSERT_TRUE(writer->AddWindow(w).ok());
  }
  ASSERT_TRUE(writer->Finish().ok());
  auto reader = InvertedIndexReader::Open(path_);
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ(reader->num_lists(), 3u);
  EXPECT_EQ(reader->directory()[0].key, 10u);
  EXPECT_EQ(reader->directory()[1].key, 30u);
  EXPECT_EQ(reader->directory()[2].key, 50u);
  for (Token key : {10u, 30u, 50u}) {
    const ListMeta* meta = reader->FindList(key);
    ASSERT_NE(meta, nullptr);
    std::vector<PostedWindow> loaded;
    ASSERT_TRUE(reader->ReadList(*meta, &loaded).ok());
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded[0].text, key);
  }
}

TEST_F(InvertedIndexTest, DuplicateKeyRejected) {
  auto writer = InvertedIndexWriter::Create(path_, 0, 64, 256);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->BeginList(1).ok());
  ASSERT_TRUE(writer->BeginList(2).ok());
  ASSERT_TRUE(writer->BeginList(1).ok());  // caught at Finish
  EXPECT_FALSE(writer->Finish().ok());
}

TEST_F(InvertedIndexTest, WriteSortedGroupsByKey) {
  std::vector<KeyedWindow> keyed;
  Rng rng(3);
  for (uint32_t i = 0; i < 500; ++i) {
    keyed.push_back(KeyedWindow{static_cast<Token>(rng.Uniform(20)),
                                static_cast<TextId>(rng.Uniform(50)),
                                0, 1, 2});
  }
  std::sort(keyed.begin(), keyed.end(), KeyedWindowLess);
  auto writer = InvertedIndexWriter::Create(path_, 0, 64, 256);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->WriteSorted(keyed.data(), keyed.size()).ok());
  ASSERT_TRUE(writer->Finish().ok());

  auto reader = InvertedIndexReader::Open(path_);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->num_windows(), keyed.size());
  uint64_t total = 0;
  for (const ListMeta& meta : reader->directory()) total += meta.count;
  EXPECT_EQ(total, keyed.size());
}

TEST_F(InvertedIndexTest, ZoneMapPointLookupMatchesFullScan) {
  // A long list (many texts, several windows each) with a small zone step.
  const uint32_t kZoneStep = 8;
  auto writer = InvertedIndexWriter::Create(path_, 0, kZoneStep, 16);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->BeginList(5).ok());
  std::vector<PostedWindow> all;
  Rng rng(9);
  for (TextId text = 0; text < 200; ++text) {
    const size_t copies = 1 + rng.Uniform(4);
    for (size_t i = 0; i < copies; ++i) {
      PostedWindow w{text, static_cast<uint32_t>(i), static_cast<uint32_t>(i),
                     static_cast<uint32_t>(i + 3)};
      all.push_back(w);
    }
  }
  ASSERT_TRUE(writer->AddWindows(all.data(), all.size()).ok());
  ASSERT_TRUE(writer->Finish().ok());

  auto reader = InvertedIndexReader::Open(path_);
  ASSERT_TRUE(reader.ok());
  const ListMeta* meta = reader->FindList(5);
  ASSERT_NE(meta, nullptr);
  ASSERT_GT(meta->zone_count, 1u) << "list should have a zone map";

  for (TextId text : {0u, 1u, 57u, 123u, 199u}) {
    std::vector<PostedWindow> expected;
    for (const PostedWindow& w : all) {
      if (w.text == text) expected.push_back(w);
    }
    std::vector<PostedWindow> got;
    ASSERT_TRUE(reader->ReadWindowsForText(*meta, text, &got).ok());
    EXPECT_EQ(got, expected) << "text " << text;
  }
  // A text that is not in the list.
  std::vector<PostedWindow> got;
  ASSERT_TRUE(reader->ReadWindowsForText(*meta, 5000, &got).ok());
  EXPECT_TRUE(got.empty());
}

TEST_F(InvertedIndexTest, ZoneLookupReadsLessThanFullList) {
  const uint32_t kZoneStep = 16;
  auto writer = InvertedIndexWriter::Create(path_, 0, kZoneStep, 16);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->BeginList(1).ok());
  for (TextId text = 0; text < 10000; ++text) {
    PostedWindow w{text, 0, 0, 3};
    ASSERT_TRUE(writer->AddWindow(w).ok());
  }
  ASSERT_TRUE(writer->Finish().ok());

  auto reader = InvertedIndexReader::Open(path_);
  ASSERT_TRUE(reader.ok());
  const ListMeta* meta = reader->FindList(1);
  ASSERT_NE(meta, nullptr);
  const uint64_t before = reader->bytes_read();
  std::vector<PostedWindow> got;
  ASSERT_TRUE(reader->ReadWindowsForText(*meta, 7777, &got).ok());
  ASSERT_EQ(got.size(), 1u);
  const uint64_t lookup_bytes = reader->bytes_read() - before;
  // Full list is 160 KB; the zone-assisted lookup should read a tiny slice
  // (zone entries + a couple of segments).
  EXPECT_LT(lookup_bytes, meta->count * sizeof(PostedWindow) / 10);
}

TEST_F(InvertedIndexTest, ShortListHasNoZones) {
  auto writer = InvertedIndexWriter::Create(path_, 0, 64, 256);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->BeginList(9).ok());
  for (TextId text = 0; text < 10; ++text) {
    PostedWindow w{text, 0, 0, 1};
    ASSERT_TRUE(writer->AddWindow(w).ok());
  }
  ASSERT_TRUE(writer->Finish().ok());
  auto reader = InvertedIndexReader::Open(path_);
  ASSERT_TRUE(reader.ok());
  const ListMeta* meta = reader->FindList(9);
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->zone_count, 0u);
  std::vector<PostedWindow> got;
  ASSERT_TRUE(reader->ReadWindowsForText(*meta, 4, &got).ok());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].text, 4u);
}

TEST_F(InvertedIndexTest, CorruptFileRejected) {
  ASSERT_TRUE(WriteStringToFile(path_, std::string(100, 'z')).ok());
  EXPECT_FALSE(InvertedIndexReader::Open(path_).ok());
}

}  // namespace
}  // namespace ndss
