// Property tests pinning the optimized query hot-path kernels to their
// reference oracles (src/query/reference/): thousands of seeded random
// inputs, each checked for exact agreement. The regimes deliberately hit
// the historical failure modes — same-coordinate endpoint pileups, alpha=1,
// duplicate interval ids, and intervals touching UINT32_MAX (the end + 1
// wraparound bug).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/coding.h"
#include "common/random.h"
#include "index/varint_block.h"
#include "query/collision_count.h"
#include "query/interval_scan.h"
#include "query/radix_sort.h"
#include "query/reference/reference_kernels.h"

namespace ndss {
namespace {

// Coordinate regimes. Tiny ranges force dense endpoint pileups (many events
// per coordinate, heavy coalescing pressure); the max regime puts begins
// and ends within a few units of UINT32_MAX.
enum class Regime { kTiny, kMedium, kMax };

std::vector<Interval> RandomIntervals(Rng& rng, size_t m, Regime regime,
                                      bool duplicate_ids) {
  std::vector<Interval> intervals;
  intervals.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    uint32_t begin = 0;
    uint32_t length = 0;
    switch (regime) {
      case Regime::kTiny:
        begin = static_cast<uint32_t>(rng.Uniform(9));
        length = static_cast<uint32_t>(rng.Uniform(9));
        break;
      case Regime::kMedium:
        begin = static_cast<uint32_t>(rng.Uniform(1001));
        length = static_cast<uint32_t>(rng.Uniform(200));
        break;
      case Regime::kMax:
        begin = UINT32_MAX - static_cast<uint32_t>(rng.Uniform(12));
        length = static_cast<uint32_t>(rng.Uniform(12));
        break;
    }
    const uint32_t end =
        begin > UINT32_MAX - length ? UINT32_MAX : begin + length;
    const uint32_t id = duplicate_ids
                            ? static_cast<uint32_t>(rng.Uniform(1 + m / 3))
                            : static_cast<uint32_t>(i);
    intervals.push_back({begin, end, id});
  }
  return intervals;
}

std::vector<uint32_t> AlphaSchedule(size_t m) {
  std::vector<uint32_t> alphas = {1, 2, 3};
  alphas.push_back(std::max<uint32_t>(1, static_cast<uint32_t>(m / 2)));
  alphas.push_back(static_cast<uint32_t>(m));
  return alphas;
}

// Exact agreement up to the documented freedom: member order within a group
// is unspecified, so members are compared sorted.
void ExpectSameGroups(const std::vector<IntervalGroup>& fast,
                      const std::vector<IntervalGroup>& oracle,
                      const std::string& label) {
  ASSERT_EQ(fast.size(), oracle.size()) << label;
  for (size_t g = 0; g < fast.size(); ++g) {
    EXPECT_EQ(fast[g].overlap_begin, oracle[g].overlap_begin)
        << label << " group " << g;
    EXPECT_EQ(fast[g].overlap_end, oracle[g].overlap_end)
        << label << " group " << g;
    std::vector<uint32_t> a = fast[g].members;
    std::vector<uint32_t> b = oracle[g].members;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << label << " group " << g;
  }
}

TEST(IntervalScanPropertyTest, MatchesReferenceOracle) {
  Rng rng(20230601);
  int cases = 0;
  for (int trial = 0; trial < 120; ++trial) {
    for (Regime regime : {Regime::kTiny, Regime::kMedium, Regime::kMax}) {
      const size_t m = 1 + rng.Uniform(trial % 4 == 0 ? 200 : 40);
      const bool duplicate_ids = rng.Uniform(3) == 0;
      const std::vector<Interval> intervals =
          RandomIntervals(rng, m, regime, duplicate_ids);
      for (uint32_t alpha : AlphaSchedule(m)) {
        std::vector<IntervalGroup> fast, oracle;
        const Status fast_status = IntervalScan(intervals, alpha, &fast);
        const Status oracle_status =
            reference::IntervalScan(intervals, alpha, &oracle);
        ASSERT_EQ(fast_status.ok(), oracle_status.ok());
        const std::string label = "trial " + std::to_string(trial) +
                                  " regime " +
                                  std::to_string(static_cast<int>(regime)) +
                                  " alpha " + std::to_string(alpha);
        ExpectSameGroups(fast, oracle, label);
        ++cases;
      }
    }
  }
  EXPECT_GE(cases, 1000);  // the contract: >= 1k seeded random inputs
}

TEST(IntervalScanPropertyTest, CollisionCountMatchesReferenceOracle) {
  Rng rng(77003);
  for (int trial = 0; trial < 250; ++trial) {
    // Reference CollisionCount materializes members (O(m^2)); keep groups
    // modest.
    const size_t m = 1 + rng.Uniform(64);
    const bool tiny = rng.Uniform(2) == 0;
    std::vector<PostedWindow> windows;
    for (size_t w = 0; w < m; ++w) {
      const uint32_t c = static_cast<uint32_t>(rng.Uniform(tiny ? 8 : 60));
      const uint32_t l = c - std::min<uint32_t>(c, rng.Uniform(tiny ? 6 : 20));
      const uint32_t r = c + static_cast<uint32_t>(rng.Uniform(tiny ? 6 : 20));
      windows.push_back(PostedWindow{0, l, c, r});
    }
    for (uint32_t alpha :
         {1u, 2u, 3u, static_cast<uint32_t>(std::max<size_t>(1, m / 2))}) {
      std::vector<MatchRectangle> fast, oracle;
      const Status fast_status = CollisionCount(windows, alpha, &fast);
      const Status oracle_status =
          reference::CollisionCount(windows, alpha, &oracle);
      ASSERT_TRUE(fast_status.ok());
      ASSERT_TRUE(oracle_status.ok());
      // Rectangles have no ordering freedom: exact vector equality.
      EXPECT_EQ(fast, oracle) << "trial " << trial << " alpha " << alpha;
    }
  }
}

TEST(IntervalScanPropertyTest, RadixSortMatchesStableSort) {
  Rng rng(31337);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = rng.Uniform(2000);
    std::vector<std::pair<uint64_t, uint32_t>> fast;
    fast.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      // Mix narrow and wide keys so some byte digits are constant (the
      // skip path) and some vary.
      const uint64_t key = rng.Uniform(4) == 0
                               ? (static_cast<uint64_t>(rng.Uniform(1000))
                                  << 32) |
                                     rng.Uniform(1000)
                               : rng.Uniform(50);
      fast.push_back({key, static_cast<uint32_t>(i)});
    }
    std::vector<std::pair<uint64_t, uint32_t>> oracle = fast;
    RadixSortByKey(&fast, [](const std::pair<uint64_t, uint32_t>& p) {
      return p.first;
    });
    reference::SortByKey(&oracle);
    // Both sorts are stable, so the payloads must agree exactly, not just
    // the keys.
    EXPECT_EQ(fast, oracle) << "trial " << trial;
  }
}

// Writer-faithful encoding of one run: window 0 absolute text, the rest
// text deltas; per window (text field, l, c - l, r - c).
std::string EncodeRun(const std::vector<PostedWindow>& windows) {
  std::string buf;
  uint32_t prev_text = 0;
  for (size_t i = 0; i < windows.size(); ++i) {
    const PostedWindow& w = windows[i];
    PutVarint32(&buf, i == 0 ? w.text : w.text - prev_text);
    prev_text = w.text;
    PutVarint32(&buf, w.l);
    PutVarint32(&buf, w.c - w.l);
    PutVarint32(&buf, w.r - w.c);
  }
  return buf;
}

TEST(IntervalScanPropertyTest, BlockDecodeMatchesReferenceDecode) {
  Rng rng(5150);
  for (int trial = 0; trial < 300; ++trial) {
    const size_t count = 1 + rng.Uniform(200);
    std::vector<PostedWindow> windows;
    uint32_t text = static_cast<uint32_t>(rng.Uniform(100));
    for (size_t i = 0; i < count; ++i) {
      if (rng.Uniform(3) == 0) text += static_cast<uint32_t>(rng.Uniform(1u << 20));
      const uint32_t l = static_cast<uint32_t>(rng.Uniform(1u << 28));
      const uint32_t c = l + static_cast<uint32_t>(rng.Uniform(1u << 14));
      windows.push_back(PostedWindow{text, l, c,
                                     c + static_cast<uint32_t>(
                                             rng.Uniform(1u << 14))});
    }
    std::string encoded = EncodeRun(windows);
    // Sometimes truncate mid-stream: both decoders must agree on the clean
    // prefix and on whether the tail is a hard error (nullptr).
    if (rng.Uniform(3) == 0 && !encoded.empty()) {
      encoded.resize(rng.Uniform(encoded.size()));
    }
    const char* p = encoded.data();
    const char* limit = p + encoded.size();

    std::vector<PostedWindow> fast(count), oracle(count);
    uint64_t fast_n = 0, oracle_n = 0;
    const char* fast_end = DecodeWindowRun(p, limit, count, fast.data(),
                                           &fast_n);
    const char* oracle_end = reference::DecodeWindowRun(
        p, limit, count, oracle.data(), &oracle_n);
    ASSERT_EQ(fast_end == nullptr, oracle_end == nullptr) << "trial " << trial;
    if (fast_end == nullptr) continue;
    ASSERT_EQ(fast_end, oracle_end) << "trial " << trial;
    ASSERT_EQ(fast_n, oracle_n) << "trial " << trial;
    fast.resize(fast_n);
    oracle.resize(oracle_n);
    EXPECT_EQ(fast, oracle) << "trial " << trial;
  }
}

// Every decoder that can serve DecodeWindowRun: the dispatched wrapper,
// the scalar chunked path, and (when this CPU supports it) the vector
// path. The dispatched wrapper is tested in its own right so calibration
// can never pick a path the suite did not cover.
struct NamedDecoder {
  const char* name;
  WindowDecodeFn fn;
};

std::vector<NamedDecoder> DecodersUnderTest() {
  std::vector<NamedDecoder> decoders;
  decoders.push_back({"dispatched", &DecodeWindowRun});
  decoders.push_back({"scalar", &DecodeWindowRunScalar});
#if defined(NDSS_VARINT_SIMD)
  if (SimdWindowDecodeSupported()) {
    decoders.push_back({"simd", &DecodeWindowRunSimd});
  }
  if (WordWindowDecodeSupported()) {
    decoders.push_back({"word", &DecodeWindowRunWord});
  }
#endif
  return decoders;
}

TEST(IntervalScanPropertyTest, BlockDecodeTruncationSweep) {
  // Truncate a multi-chunk run at EVERY byte offset and decode with every
  // max_windows regime: each prefix must reproduce the reference decoder
  // exactly — same windows, same end pointer, same nullptr on a torn
  // varint. This is the regime where fast paths hand off to their checked
  // tail loops (the historical parity bug), so sweep three encoding
  // profiles that move the handoff point around.
  Rng rng(424242);
  constexpr size_t kCount = 100;
  for (int profile = 0; profile < 3; ++profile) {
    std::vector<PostedWindow> windows;
    uint32_t text = 0;
    for (size_t i = 0; i < kCount; ++i) {
      uint32_t l = 0, dc = 0, dr = 0;
      switch (profile) {
        case 0:  // every varint one byte: densest windows, pure fast path
          text += static_cast<uint32_t>(rng.Uniform(3));
          l = static_cast<uint32_t>(rng.Uniform(100));
          dc = static_cast<uint32_t>(rng.Uniform(100));
          dr = static_cast<uint32_t>(rng.Uniform(100));
          break;
        case 1:  // fat varints: windows near the 20-byte encoding bound
          text += static_cast<uint32_t>(rng.Uniform(1u << 27));
          l = static_cast<uint32_t>(rng.Uniform(1u << 28));
          dc = static_cast<uint32_t>(rng.Uniform(1u << 21));
          dr = static_cast<uint32_t>(rng.Uniform(1u << 21));
          break;
        default:  // mixed widths: handoff points land everywhere
          if (rng.Uniform(4) == 0) {
            text += static_cast<uint32_t>(rng.Uniform(1u << 20));
          }
          l = static_cast<uint32_t>(rng.Uniform(rng.Uniform(2) == 0
                                                    ? 100u
                                                    : (1u << 28)));
          dc = static_cast<uint32_t>(rng.Uniform(1u << 14));
          dr = static_cast<uint32_t>(rng.Uniform(1u << 14));
          break;
      }
      windows.push_back(PostedWindow{text, l, l + dc, l + dc + dr});
    }
    const std::string encoded = EncodeRun(windows);
    const std::vector<NamedDecoder> decoders = DecodersUnderTest();
    const uint64_t regimes[] = {0, kCount / 2, kCount, kCount + 3};
    for (size_t cut = 0; cut <= encoded.size(); ++cut) {
      const char* p = encoded.data();
      const char* limit = p + cut;
      for (const uint64_t max_windows : regimes) {
        std::vector<PostedWindow> oracle(kCount + 3);
        uint64_t oracle_n = 0;
        const char* oracle_end = reference::DecodeWindowRun(
            p, limit, max_windows, oracle.data(), &oracle_n);
        for (const NamedDecoder& d : decoders) {
          std::vector<PostedWindow> fast(kCount + 3);
          uint64_t fast_n = 0;
          const char* fast_end =
              d.fn(p, limit, max_windows, fast.data(), &fast_n);
          const std::string label = std::string(d.name) + " profile " +
                                    std::to_string(profile) + " cut " +
                                    std::to_string(cut) + " max_windows " +
                                    std::to_string(max_windows);
          ASSERT_EQ(fast_end == nullptr, oracle_end == nullptr) << label;
          if (fast_end == nullptr) continue;
          ASSERT_EQ(fast_end, oracle_end) << label;
          ASSERT_EQ(fast_n, oracle_n) << label;
          fast.resize(fast_n);
          std::vector<PostedWindow> expect = oracle;
          expect.resize(oracle_n);
          ASSERT_EQ(fast, expect) << label;
        }
      }
    }
  }
}

TEST(IntervalScanPropertyTest, BlockDecodeBoundaryRegimes) {
  // The two boundary cases pinned explicitly (the sweep above also crosses
  // them): a run whose last window ends exactly at `limit` must decode
  // completely and return `limit`, and max_windows == 0 must decode
  // nothing and return `p` untouched.
  std::vector<PostedWindow> windows;
  for (uint32_t i = 0; i < 70; ++i) {
    // Mixed widths so the exact-limit case exercises both the fast path
    // (early windows) and the checked tail (final windows).
    const uint32_t l = (i % 3 == 0) ? (1u << 27) : i;
    windows.push_back(PostedWindow{i * 5, l, l + i, l + 2 * i});
  }
  const std::string encoded = EncodeRun(windows);
  const char* p = encoded.data();
  const char* limit = p + encoded.size();
  for (const NamedDecoder& d : DecodersUnderTest()) {
    std::vector<PostedWindow> out(windows.size());
    uint64_t n = 0;
    const char* end = d.fn(p, limit, windows.size(), out.data(), &n);
    ASSERT_EQ(end, limit) << d.name;
    ASSERT_EQ(n, windows.size()) << d.name;
    EXPECT_EQ(out, windows) << d.name;
    n = 77;
    end = d.fn(p, limit, 0, out.data(), &n);
    EXPECT_EQ(end, p) << d.name;
    EXPECT_EQ(n, 0u) << d.name;
  }
}

TEST(IntervalScanPropertyTest, BlockDecodeRejectsOverlongVarint) {
  // Five continuation bytes: every decoder must fail identically whether
  // the run is decoded checked (short buffer) or unchecked (long buffer),
  // and whether the overlong varint opens the stream or sits behind a few
  // valid windows (mid-block for the vector path).
  for (const size_t valid_prefix : {size_t{0}, size_t{3}, size_t{9}}) {
    std::vector<PostedWindow> windows;
    for (uint32_t i = 0; i < valid_prefix; ++i) {
      windows.push_back(PostedWindow{i, i, 2 * i, 3 * i});
    }
    std::string encoded = EncodeRun(windows);
    for (int i = 0; i < 5; ++i) encoded.push_back(static_cast<char>(0xff));
    encoded.push_back(0x01);
    encoded.append(64, '\0');  // plenty of slack: forces the unchecked path
    std::vector<PostedWindow> out(valid_prefix + 4);
    uint64_t n = 0;
    EXPECT_EQ(reference::DecodeWindowRun(
                  encoded.data(), encoded.data() + encoded.size(),
                  valid_prefix + 4, out.data(), &n),
              nullptr);
    for (const NamedDecoder& d : DecodersUnderTest()) {
      EXPECT_EQ(d.fn(encoded.data(), encoded.data() + encoded.size(),
                     valid_prefix + 4, out.data(), &n),
                nullptr)
          << d.name << " valid_prefix " << valid_prefix;
    }
  }
}

}  // namespace
}  // namespace ndss
