#include "text/corpus.h"

#include <gtest/gtest.h>

#include <vector>

namespace ndss {
namespace {

TEST(CorpusTest, EmptyCorpus) {
  Corpus corpus;
  EXPECT_TRUE(corpus.empty());
  EXPECT_EQ(corpus.num_texts(), 0u);
  EXPECT_EQ(corpus.total_tokens(), 0u);
}

TEST(CorpusTest, AddTextAssignsSequentialIds) {
  Corpus corpus;
  std::vector<Token> a = {1, 2, 3};
  std::vector<Token> b = {4, 5};
  EXPECT_EQ(corpus.AddText(a), 0u);
  EXPECT_EQ(corpus.AddText(b), 1u);
  EXPECT_EQ(corpus.num_texts(), 2u);
  EXPECT_EQ(corpus.total_tokens(), 5u);
  EXPECT_EQ(corpus.text_length(0), 3u);
  EXPECT_EQ(corpus.text_length(1), 2u);
}

TEST(CorpusTest, TextContentsPreserved) {
  Corpus corpus;
  std::vector<Token> a = {10, 20, 30};
  corpus.AddText(a);
  std::span<const Token> view = corpus.text(0);
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[0], 10u);
  EXPECT_EQ(view[2], 30u);
}

TEST(CorpusTest, BaseIdOffsetsIds) {
  Corpus corpus;
  corpus.set_base_id(100);
  std::vector<Token> a = {1};
  EXPECT_EQ(corpus.AddText(a), 100u);
  EXPECT_EQ(corpus.AddText(a), 101u);
  EXPECT_EQ(corpus.text_by_id(100).size(), 1u);
  EXPECT_EQ(corpus.base_id(), 100u);
}

TEST(CorpusTest, ClearResets) {
  Corpus corpus;
  std::vector<Token> a = {1, 2};
  corpus.AddText(a);
  corpus.set_base_id(5);
  corpus.Clear();
  EXPECT_TRUE(corpus.empty());
  EXPECT_EQ(corpus.base_id(), 0u);
  EXPECT_EQ(corpus.AddText(a), 0u);
}

TEST(CorpusTest, ManyTextsFlatStorage) {
  Corpus corpus;
  for (Token t = 0; t < 1000; ++t) {
    std::vector<Token> text(7, t);
    corpus.AddText(text);
  }
  EXPECT_EQ(corpus.num_texts(), 1000u);
  EXPECT_EQ(corpus.total_tokens(), 7000u);
  for (size_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(corpus.text(i).size(), 7u);
    ASSERT_EQ(corpus.text(i)[3], i);
  }
}

}  // namespace
}  // namespace ndss
