#include "hash/hash_family.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/random.h"

namespace ndss {
namespace {

TEST(HashFamilyTest, DeterministicGivenSeed) {
  HashFamily a(8, 42), b(8, 42), c(8, 43);
  for (uint32_t f = 0; f < 8; ++f) {
    EXPECT_EQ(a.Hash(f, 100), b.Hash(f, 100));
  }
  // Different seeds disagree somewhere.
  bool any_diff = false;
  for (uint32_t f = 0; f < 8; ++f) {
    any_diff |= a.Hash(f, 100) != c.Hash(f, 100);
  }
  EXPECT_TRUE(any_diff);
}

TEST(HashFamilyTest, FunctionsAreIndependent) {
  HashFamily family(4, 1);
  std::set<uint64_t> values;
  for (uint32_t f = 0; f < 4; ++f) values.insert(family.Hash(f, 7));
  EXPECT_EQ(values.size(), 4u) << "functions should hash the token apart";
}

TEST(HashFamilyTest, NoCollisionsOnSmallVocab) {
  HashFamily family(1, 7);
  std::set<uint64_t> values;
  for (Token t = 0; t < 100000; ++t) values.insert(family.Hash(0, t));
  EXPECT_EQ(values.size(), 100000u);
}

TEST(SketchTest, SketchOfSingleToken) {
  HashFamily family(16, 5);
  Token token = 9;
  MinHashSketch sketch = ComputeSketch(family, &token, 1);
  ASSERT_EQ(sketch.argmin_tokens.size(), 16u);
  for (uint32_t f = 0; f < 16; ++f) {
    EXPECT_EQ(sketch.argmin_tokens[f], 9u);
    EXPECT_EQ(sketch.min_hashes[f], family.Hash(f, 9));
  }
}

TEST(SketchTest, SketchIsOrderInvariant) {
  HashFamily family(8, 11);
  std::vector<Token> a = {1, 2, 3, 4, 5};
  std::vector<Token> b = {5, 3, 1, 2, 4};
  MinHashSketch sa = ComputeSketch(family, a.data(), a.size());
  MinHashSketch sb = ComputeSketch(family, b.data(), b.size());
  EXPECT_EQ(sa.argmin_tokens, sb.argmin_tokens);
  EXPECT_EQ(sa.min_hashes, sb.min_hashes);
}

TEST(SketchTest, SketchIgnoresDuplicates) {
  HashFamily family(8, 11);
  std::vector<Token> a = {1, 2, 3};
  std::vector<Token> b = {1, 1, 2, 2, 3, 3, 3};
  EXPECT_EQ(ComputeSketch(family, a.data(), a.size()).min_hashes,
            ComputeSketch(family, b.data(), b.size()).min_hashes);
}

TEST(SketchTest, IdenticalSequencesEstimateOne) {
  HashFamily family(32, 3);
  std::vector<Token> a = {10, 20, 30, 40};
  MinHashSketch s1 = ComputeSketch(family, a.data(), a.size());
  MinHashSketch s2 = ComputeSketch(family, a.data(), a.size());
  EXPECT_DOUBLE_EQ(EstimateJaccard(s1, s2), 1.0);
}

TEST(SketchTest, DisjointSequencesEstimateNearZero) {
  HashFamily family(64, 3);
  std::vector<Token> a, b;
  for (Token t = 0; t < 50; ++t) a.push_back(t);
  for (Token t = 1000; t < 1050; ++t) b.push_back(t);
  MinHashSketch sa = ComputeSketch(family, a.data(), a.size());
  MinHashSketch sb = ComputeSketch(family, b.data(), b.size());
  EXPECT_LT(EstimateJaccard(sa, sb), 0.1);
}

// Statistical property: the estimate is unbiased — for sets with true
// Jaccard J, the mean collision fraction over many hash functions
// approaches J (variance O(1/k), Section 3.2).
TEST(SketchTest, EstimateConvergesToTrueJaccard) {
  HashFamily family(512, 77);
  // |A ∩ B| = 50, |A ∪ B| = 100 → J = 0.5.
  std::vector<Token> a, b;
  for (Token t = 0; t < 75; ++t) a.push_back(t);
  for (Token t = 25; t < 100; ++t) b.push_back(t);
  MinHashSketch sa = ComputeSketch(family, a.data(), a.size());
  MinHashSketch sb = ComputeSketch(family, b.data(), b.size());
  EXPECT_NEAR(EstimateJaccard(sa, sb), 0.5, 0.07);
}

TEST(ExactJaccardTest, DistinctJaccardPaperExample) {
  // Section 3.1: (A,A,A,B,B) vs (A,B,B,B,C) — treated as (A1,A2,A3,B1,B2)
  // and (A1,B1,B2,B3,C1): distinct = 2/3, multiset = 3/7.
  std::vector<Token> a = {0, 0, 0, 1, 1};
  std::vector<Token> b = {0, 1, 1, 1, 2};
  EXPECT_DOUBLE_EQ(ExactDistinctJaccard(a.data(), a.size(), b.data(),
                                        b.size()),
                   2.0 / 3.0);
  EXPECT_DOUBLE_EQ(ExactMultisetJaccard(a.data(), a.size(), b.data(),
                                        b.size()),
                   3.0 / 7.0);
}

TEST(ExactJaccardTest, EdgeCases) {
  std::vector<Token> a = {1, 2};
  EXPECT_DOUBLE_EQ(ExactDistinctJaccard(a.data(), a.size(), a.data(),
                                        a.size()),
                   1.0);
  EXPECT_DOUBLE_EQ(ExactDistinctJaccard(a.data(), 0, a.data(), 0), 1.0);
  std::vector<Token> b = {3, 4};
  EXPECT_DOUBLE_EQ(ExactDistinctJaccard(a.data(), a.size(), b.data(),
                                        b.size()),
                   0.0);
}

// Property sweep: min-hash collision probability for random set pairs
// tracks their exact Jaccard across set sizes.
class SketchPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SketchPropertyTest, CollisionRateTracksJaccard) {
  const size_t set_size = GetParam();
  HashFamily family(256, set_size * 7919 + 1);
  Rng rng(set_size);
  std::vector<Token> a, b;
  for (size_t i = 0; i < set_size; ++i) {
    a.push_back(static_cast<Token>(rng.Uniform(4 * set_size)));
    b.push_back(static_cast<Token>(rng.Uniform(4 * set_size)));
  }
  const double exact =
      ExactDistinctJaccard(a.data(), a.size(), b.data(), b.size());
  MinHashSketch sa = ComputeSketch(family, a.data(), a.size());
  MinHashSketch sb = ComputeSketch(family, b.data(), b.size());
  EXPECT_NEAR(EstimateJaccard(sa, sb), exact, 0.12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SketchPropertyTest,
                         ::testing::Values(8, 32, 128, 512));

}  // namespace
}  // namespace ndss
