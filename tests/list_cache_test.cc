// CrossQueryListCache correctness: budget/LRU/parent accounting at the
// unit level, then the serving-level guarantees through ShardedSearcher —
// cached answers bit-identical to uncached ones, hits actually recorded,
// and (the part that matters) no stale list ever served across topology
// churn: detach/attach and delta publishes retire their owner ids, so a
// query can only see entries of the exact sources its snapshot runs over.
// The churn test is a TSan target in CI.

#include "query/list_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/file_io.h"
#include "corpusgen/synthetic.h"
#include "index/index_builder.h"
#include "query/searcher.h"
#include "shard/sharded_searcher.h"

namespace ndss {
namespace {

using Key = CrossQueryListCache::Key;
using Entry = CrossQueryListCache::Entry;

/// Simulates what SearchOnce's loader does: fill the entry and size it.
std::shared_ptr<Entry> Load(CrossQueryListCache& cache, const Key& key,
                            size_t windows) {
  std::shared_ptr<Entry> entry = cache.GetOrCreate(key);
  std::call_once(entry->once, [&] {
    entry->windows.assign(windows, PostedWindow{1, 2, 3, 4});
    entry->bytes = windows * sizeof(PostedWindow) +
                   CrossQueryListCache::kEntryOverhead;
    entry->stored = true;
    cache.Commit(key, entry);
  });
  return entry;
}

TEST(ListCacheTest, LoadOnceAndRetain) {
  CrossQueryListCache cache(1 << 20);
  const Key key{1, 42};
  std::shared_ptr<Entry> first = Load(cache, key, 10);
  std::shared_ptr<Entry> second = cache.GetOrCreate(key);
  EXPECT_EQ(first, second) << "one key, one entry, one load";
  const CrossQueryListCache::Counters c = cache.counters();
  EXPECT_EQ(c.insertions, 1u);
  EXPECT_EQ(c.entries, 1u);
  EXPECT_EQ(c.bytes_used, first->bytes);
}

TEST(ListCacheTest, ZeroBudgetServesButNeverRetains) {
  CrossQueryListCache cache(0);
  std::shared_ptr<Entry> entry = Load(cache, Key{1, 42}, 10);
  EXPECT_TRUE(entry->stored) << "the current holders are still served";
  const CrossQueryListCache::Counters c = cache.counters();
  EXPECT_EQ(c.insertions, 0u);
  EXPECT_EQ(c.bytes_used, 0u);
  EXPECT_EQ(c.entries, 0u) << "an unretainable key is dropped for retry";
}

TEST(ListCacheTest, EvictsLruToStayWithinBudget) {
  constexpr uint64_t kBudget = 4096;
  CrossQueryListCache cache(kBudget);
  for (uint32_t i = 0; i < 200; ++i) Load(cache, Key{1, i}, 10);
  const CrossQueryListCache::Counters c = cache.counters();
  EXPECT_LE(c.bytes_used, kBudget);
  EXPECT_GT(c.evictions, 0u);
  EXPECT_GT(c.entries, 0u) << "eviction must not empty the cache";
}

TEST(ListCacheTest, ParentChargedAndFullyReleased) {
  MemoryBudget parent(0);  // accounting only
  {
    CrossQueryListCache cache(1 << 20, &parent);
    Load(cache, Key{1, 1}, 10);
    Load(cache, Key{1, 2}, 20);
    Load(cache, Key{2, 3}, 30);
    EXPECT_EQ(parent.used(), cache.counters().bytes_used);
    cache.EraseOwner(1);
    EXPECT_EQ(parent.used(), cache.counters().bytes_used);
    EXPECT_EQ(cache.counters().entries, 1u);
  }
  EXPECT_EQ(parent.used(), 0u) << "the destructor must return every byte";
}

TEST(ListCacheTest, ParentRefusalDropsTheEntry) {
  MemoryBudget parent(1);  // refuses any real charge
  CrossQueryListCache cache(1 << 20, &parent);
  std::shared_ptr<Entry> entry = Load(cache, Key{1, 1}, 10);
  EXPECT_TRUE(entry->stored) << "holders are served even when not retained";
  const CrossQueryListCache::Counters c = cache.counters();
  EXPECT_EQ(c.insertions, 0u);
  EXPECT_EQ(c.entries, 0u);
  EXPECT_GT(c.invalidations, 0u);
  EXPECT_EQ(parent.used(), 0u);
}

TEST(ListCacheTest, EraseOwnerDropsOnlyThatOwner) {
  CrossQueryListCache cache(1 << 20);
  for (uint32_t i = 0; i < 8; ++i) Load(cache, Key{1, i}, 4);
  for (uint32_t i = 0; i < 8; ++i) Load(cache, Key{2, i}, 4);
  cache.EraseOwner(1);
  const CrossQueryListCache::Counters c = cache.counters();
  EXPECT_EQ(c.entries, 8u);
  EXPECT_EQ(c.invalidations, 8u);
  for (uint32_t i = 0; i < 8; ++i) {
    std::shared_ptr<Entry> entry = cache.GetOrCreate(Key{1, i});
    EXPECT_FALSE(entry->stored) << "owner 1's entries must be fresh again";
  }
}

TEST(ListCacheTest, CommitLosesRaceAgainstEraseOwner) {
  CrossQueryListCache cache(1 << 20);
  const Key key{7, 7};
  std::shared_ptr<Entry> entry = cache.GetOrCreate(key);
  entry->windows.assign(4, PostedWindow{1, 2, 3, 4});
  entry->bytes = 4 * sizeof(PostedWindow) + CrossQueryListCache::kEntryOverhead;
  entry->stored = true;
  cache.EraseOwner(7);  // the source retired while the load ran
  EXPECT_FALSE(cache.Commit(key, entry))
      << "a retired source's load must not be re-inserted";
  EXPECT_EQ(cache.counters().bytes_used, 0u);
}

TEST(ListCacheTest, AbandonDropsOnlyTheSameEntry) {
  CrossQueryListCache cache(1 << 20);
  const Key key{3, 3};
  std::shared_ptr<Entry> failed = cache.GetOrCreate(key);
  cache.Abandon(key, failed);
  std::shared_ptr<Entry> retry = cache.GetOrCreate(key);
  EXPECT_NE(failed, retry) << "a later query must get a fresh entry";
  cache.Abandon(key, failed);  // stale abandon: must not touch the retry
  EXPECT_EQ(cache.GetOrCreate(key), retry);
}

// ---- serving-level behavior through ShardedSearcher ----

class ListCacheServingTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kNumTexts = 90;
  static constexpr uint32_t kShardTexts = 30;  // 3 shards

  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ndss_listcache_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    ASSERT_TRUE(CreateDirectories(dir_).ok());

    SyntheticCorpusOptions corpus_options;
    corpus_options.num_texts = kNumTexts;
    corpus_options.vocab_size = 300;
    corpus_options.zipf_exponent = 1.2;
    corpus_options.plant_rate = 0.35;
    corpus_options.seed = 131;
    sc_ = GenerateSyntheticCorpus(corpus_options);

    build_.k = 5;
    build_.t = 20;
    for (uint32_t s = 0; s < 3; ++s) {
      Corpus shard;
      for (uint32_t i = s * kShardTexts; i < (s + 1) * kShardTexts; ++i) {
        shard.AddText(sc_.corpus.text(i));
      }
      ASSERT_TRUE(BuildIndexInMemory(shard, ShardDir(s), build_).ok());
    }

    Rng rng(17);
    for (int q = 0; q < 12; ++q) {
      const TextId source = static_cast<TextId>(rng.Uniform(kNumTexts));
      const auto text = sc_.corpus.text(source);
      const uint32_t length =
          std::min<uint32_t>(35, static_cast<uint32_t>(text.size()));
      queries_.push_back(PerturbSequence(text, 0, length, 0.1, 300, rng));
    }
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string ShardDir(uint32_t s) const {
    return dir_ + "/s" + std::to_string(s);
  }

  /// Creates a fresh set directory serving `shards` and returns it.
  std::string MakeSet(const std::string& name,
                      const std::vector<uint32_t>& shards) {
    const std::string set_dir = dir_ + "/" + name;
    ShardManifest manifest;
    for (uint32_t s : shards) manifest.shard_dirs.push_back(ShardDir(s));
    EXPECT_TRUE(manifest.Save(set_dir).ok());
    return set_dir;
  }

  /// An in-memory delta over sealed texts [begin, end) — same documents,
  /// so queries derived from them match the delta too, at delta ids.
  std::shared_ptr<Searcher> MakeDelta(uint32_t begin, uint32_t end) {
    Corpus corpus;
    for (uint32_t i = begin; i < end; ++i) corpus.AddText(sc_.corpus.text(i));
    auto searcher = Searcher::InMemory(corpus, build_);
    EXPECT_TRUE(searcher.ok()) << searcher.status().ToString();
    return std::make_shared<Searcher>(std::move(*searcher));
  }

  /// Order-sensitive fingerprint of a result's matches (stats excluded:
  /// the cache legitimately changes IO attribution, never answers).
  static std::string Fingerprint(const SearchResult& result) {
    std::string fp;
    for (const MatchSpan& span : result.spans) {
      fp += std::to_string(span.text) + ":" + std::to_string(span.begin) +
            "-" + std::to_string(span.end) + "/" +
            std::to_string(span.collisions) + ";";
    }
    fp += "|";
    for (const TextMatchRectangle& tr : result.rectangles) {
      fp += std::to_string(tr.text) + ":" + std::to_string(tr.rect.x_begin) +
            "," + std::to_string(tr.rect.x_end) + "," +
            std::to_string(tr.rect.y_begin) + "," +
            std::to_string(tr.rect.y_end) + "," +
            std::to_string(tr.rect.collisions) + ";";
    }
    return fp;
  }

  SearchOptions search_options() const {
    SearchOptions options;
    options.theta = 0.7;
    return options;
  }

  std::string dir_;
  SyntheticCorpus sc_;
  IndexBuildOptions build_;
  std::vector<std::vector<Token>> queries_;
};

TEST_F(ListCacheServingTest, CachedBatchesBitIdenticalAndHitOnRepeat) {
  const std::string set_dir = MakeSet("set", {0, 1, 2});
  auto uncached = ShardedSearcher::Open(set_dir);
  ASSERT_TRUE(uncached.ok());
  auto cached = ShardedSearcher::Open(set_dir);
  ASSERT_TRUE(cached.ok());
  ASSERT_TRUE(cached->EnableListCache(64ull << 20).ok());
  EXPECT_FALSE(cached->EnableListCache(64ull << 20).ok())
      << "double enable must be refused";

  auto expect = uncached->SearchBatch(queries_, search_options());
  ASSERT_TRUE(expect.ok());
  auto first = cached->SearchBatch(queries_, search_options());
  ASSERT_TRUE(first.ok());
  auto second = cached->SearchBatch(queries_, search_options());
  ASSERT_TRUE(second.ok());
  uint64_t second_hits = 0;
  for (size_t q = 0; q < queries_.size(); ++q) {
    EXPECT_EQ(Fingerprint((*first)[q]), Fingerprint((*expect)[q])) << q;
    EXPECT_EQ(Fingerprint((*second)[q]), Fingerprint((*expect)[q])) << q;
    second_hits += (*second)[q].stats.shared_cache_hits;
    // Every pass-1 list of the second run was loaded by the first run.
    EXPECT_EQ((*second)[q].stats.shared_cache_hits,
              static_cast<uint64_t>((*second)[q].stats.short_lists))
        << q;
  }
  EXPECT_GT(second_hits, 0u);
  const CrossQueryListCache* cache = cached->list_cache();
  ASSERT_NE(cache, nullptr);
  EXPECT_GT(cache->counters().hits, 0u);
  EXPECT_GT(cache->counters().misses, 0u);
}

TEST_F(ListCacheServingTest, SingleQueryPathHitsTheCache) {
  const std::string set_dir = MakeSet("set", {0, 1, 2});
  auto uncached = ShardedSearcher::Open(set_dir);
  ASSERT_TRUE(uncached.ok());
  auto cached = ShardedSearcher::Open(set_dir);
  ASSERT_TRUE(cached.ok());
  ASSERT_TRUE(cached->EnableListCache(64ull << 20).ok());
  for (const std::vector<Token>& query : queries_) {
    auto expect = uncached->Search(query, search_options());
    ASSERT_TRUE(expect.ok());
    auto first = cached->Search(query, search_options());
    ASSERT_TRUE(first.ok());
    auto repeat = cached->Search(query, search_options());
    ASSERT_TRUE(repeat.ok());
    EXPECT_EQ(Fingerprint(*first), Fingerprint(*expect));
    EXPECT_EQ(Fingerprint(*repeat), Fingerprint(*expect));
    EXPECT_EQ(repeat->stats.shared_cache_hits, repeat->stats.short_lists)
        << "a repeated query must be served from the cache";
    EXPECT_GT(repeat->stats.shared_cache_hits, 0u);
  }
}

TEST_F(ListCacheServingTest, DetachRetiresTheShardsEntries) {
  const std::string set_dir = MakeSet("set", {0, 1, 2});
  auto cached = ShardedSearcher::Open(set_dir);
  ASSERT_TRUE(cached.ok());
  ASSERT_TRUE(cached->EnableListCache(64ull << 20).ok());
  for (const std::vector<Token>& query : queries_) {
    ASSERT_TRUE(cached->Search(query, search_options()).ok());
  }
  const CrossQueryListCache* cache = cached->list_cache();
  const uint64_t entries_before = cache->counters().entries;
  ASSERT_GT(entries_before, 0u);
  ASSERT_TRUE(cached->DetachShard(ShardDir(2)).ok());
  EXPECT_GT(cache->counters().invalidations, 0u);
  EXPECT_LT(cache->counters().entries, entries_before)
      << "the detached shard's entries must be garbage-collected";
  // Post-detach answers must match a cache-less searcher over the shrunk
  // set — a stale s2 entry would show up as phantom matches.
  auto uncached = ShardedSearcher::Open(set_dir);
  ASSERT_TRUE(uncached.ok());
  for (const std::vector<Token>& query : queries_) {
    auto expect = uncached->Search(query, search_options());
    ASSERT_TRUE(expect.ok());
    auto got = cached->Search(query, search_options());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(Fingerprint(*got), Fingerprint(*expect));
  }
}

TEST_F(ListCacheServingTest, DeltaPublishNeverServesTheOldMemtable) {
  const std::string set_dir = MakeSet("set", {0, 1, 2});
  auto cached = ShardedSearcher::Open(set_dir);
  ASSERT_TRUE(cached.ok());
  ASSERT_TRUE(cached->EnableListCache(64ull << 20).ok());
  // Publish delta #1 and warm the cache with its lists.
  ASSERT_TRUE(cached->SetDelta(MakeDelta(0, 5)).ok());
  for (const std::vector<Token>& query : queries_) {
    ASSERT_TRUE(cached->Search(query, search_options()).ok());
  }
  // Publish delta #2 (different documents). Every answer must now reflect
  // delta #2 exactly: a hit on a delta-#1 entry would resurrect documents
  // that no longer exist.
  ASSERT_TRUE(cached->SetDelta(MakeDelta(5, 10)).ok());
  auto uncached = ShardedSearcher::Open(set_dir);
  ASSERT_TRUE(uncached.ok());
  ASSERT_TRUE(uncached->SetDelta(MakeDelta(5, 10)).ok());
  for (const std::vector<Token>& query : queries_) {
    auto expect = uncached->Search(query, search_options());
    ASSERT_TRUE(expect.ok());
    auto got = cached->Search(query, search_options());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(Fingerprint(*got), Fingerprint(*expect));
  }
}

TEST_F(ListCacheServingTest, TopologyChurnNeverServesStaleLists) {
  // Concurrent queries vs detach/attach/delta churn: every answer must be
  // bit-identical to some VALID topology's answer (the snapshot the query
  // ran on), never a mix — a stale cached list would produce a fingerprint
  // outside the valid set. TSan covers the synchronization side in CI.
  const std::string set_dir = MakeSet("set", {0, 1, 2});

  // Precompute the per-query answer fingerprints of every topology the
  // churn loop can expose: {s0,s1,s2} and {s0,s1}, each with and without
  // the delta. (Detaching then re-attaching s2 restores the original
  // order, so no other sealed arrangement can occur.)
  std::vector<std::set<std::string>> valid(queries_.size());
  for (const bool small : {false, true}) {
    const std::string probe_dir = MakeSet(small ? "probe_small" : "probe_full",
                                          small
                                              ? std::vector<uint32_t>{0, 1}
                                              : std::vector<uint32_t>{0, 1, 2});
    for (const bool with_delta : {false, true}) {
      auto probe = ShardedSearcher::Open(probe_dir);
      ASSERT_TRUE(probe.ok());
      if (with_delta) {
        ASSERT_TRUE(probe->SetDelta(MakeDelta(0, 5)).ok());
      }
      for (size_t q = 0; q < queries_.size(); ++q) {
        auto expect = probe->Search(queries_[q], search_options());
        ASSERT_TRUE(expect.ok());
        valid[q].insert(Fingerprint(*expect));
      }
    }
  }

  auto cached = ShardedSearcher::Open(set_dir);
  ASSERT_TRUE(cached.ok());
  ASSERT_TRUE(cached->EnableListCache(16ull << 20).ok());
  std::shared_ptr<Searcher> delta = MakeDelta(0, 5);

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 3; ++w) {
    workers.emplace_back([&, w] {
      Rng rng(1000 + w);
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t q = rng.Uniform(queries_.size());
        auto got = cached->Search(queries_[q], search_options());
        if (!got.ok()) continue;  // transient all-dropped never happens here
        if (valid[q].count(Fingerprint(*got)) == 0) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int iter = 0; iter < 30; ++iter) {
    ASSERT_TRUE(cached->SetDelta(delta).ok());
    ASSERT_TRUE(cached->DetachShard(ShardDir(2)).ok());
    ASSERT_TRUE(cached->SetDelta(nullptr).ok());
    ASSERT_TRUE(cached->AttachShard(ShardDir(2)).ok());
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(violations.load(), 0)
      << "some query's answer matched NO valid topology: a stale (or torn) "
         "cached list was served";
  const CrossQueryListCache* cache = cached->list_cache();
  ASSERT_NE(cache, nullptr);
  EXPECT_GT(cache->counters().invalidations, 0u);
}

}  // namespace
}  // namespace ndss
