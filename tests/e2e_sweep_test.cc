// End-to-end property sweep: across (k, t, theta, vocabulary skew)
// configurations, the disk-backed searcher must be sound and complete with
// respect to Definition 2 (brute-force cross-check), identical to the
// in-memory searcher, and invariant to prefix filtering and posting
// compression.

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <tuple>

#include "baseline/brute_force.h"
#include "corpusgen/synthetic.h"
#include "index/index_builder.h"
#include "query/searcher.h"

namespace ndss {
namespace {

struct SweepConfig {
  uint32_t k;
  uint32_t t;
  uint32_t vocab;
  double zipf;
  const char* name;
};

const SweepConfig kConfigs[] = {
    {4, 10, 100, 1.0, "k4_t10_v100"},
    {8, 20, 1000, 1.0, "k8_t20_v1000"},
    {16, 25, 200, 1.3, "k16_t25_skewed"},
    {5, 15, 50, 0.5, "k5_t15_tiny_vocab"},
    {32, 30, 5000, 1.0, "k32_t30_v5000"},
};

using SequenceKey = std::tuple<TextId, uint32_t, uint32_t>;

std::set<SequenceKey> Expand(const std::vector<TextMatchRectangle>& rects,
                             uint32_t t) {
  std::set<SequenceKey> sequences;
  for (const TextMatchRectangle& tr : rects) {
    for (uint32_t i = tr.rect.x_begin; i <= tr.rect.x_end; ++i) {
      for (uint32_t j = tr.rect.y_begin; j <= tr.rect.y_end; ++j) {
        if (j >= i && j - i + 1 >= t) sequences.insert({tr.text, i, j});
      }
    }
  }
  return sequences;
}

class E2eSweepTest : public ::testing::TestWithParam<SweepConfig> {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ndss_sweep_" + GetParam().name;
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_P(E2eSweepTest, SoundCompleteAndConfigurationInvariant) {
  const SweepConfig config = GetParam();

  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 50;
  corpus_options.min_text_length = config.t + 10;
  corpus_options.max_text_length = 120;
  corpus_options.vocab_size = config.vocab;
  corpus_options.zipf_exponent = config.zipf;
  corpus_options.plant_rate = 0.4;
  corpus_options.min_plant_length = config.t;
  corpus_options.max_plant_length = config.t * 2;
  corpus_options.plant_noise = 0.1;
  corpus_options.seed = 1000 + config.k;
  SyntheticCorpus sc = GenerateSyntheticCorpus(corpus_options);

  IndexBuildOptions build;
  build.k = config.k;
  build.t = config.t;
  build.zone_step = 8;
  build.zone_threshold = 32;
  ASSERT_TRUE(BuildIndexInMemory(sc.corpus, dir_ + "/raw", build).ok());
  IndexBuildOptions compressed = build;
  compressed.posting_format = index_format::kFormatCompressed;
  ASSERT_TRUE(
      BuildIndexInMemory(sc.corpus, dir_ + "/comp", compressed).ok());

  auto raw = Searcher::Open(dir_ + "/raw");
  auto comp = Searcher::Open(dir_ + "/comp");
  auto memory = Searcher::InMemory(sc.corpus, build);
  ASSERT_TRUE(raw.ok() && comp.ok() && memory.ok());
  HashFamily family(build.k, build.seed);

  Rng rng(config.k * 31 + config.t);
  for (int q = 0; q < 4; ++q) {
    const TextId source = static_cast<TextId>(rng.Uniform(50));
    const auto text = sc.corpus.text(source);
    const uint32_t length = std::min<uint32_t>(
        config.t + 10, static_cast<uint32_t>(text.size()));
    const uint32_t begin =
        static_cast<uint32_t>(rng.Uniform(text.size() - length + 1));
    const std::vector<Token> query = PerturbSequence(
        text, begin, length, 0.15, config.vocab, rng);

    for (double theta : {0.5, 0.8, 1.0}) {
      SearchOptions plain;
      plain.theta = theta;
      plain.use_prefix_filter = false;
      SearchOptions filtered;
      filtered.theta = theta;
      filtered.use_prefix_filter = true;
      filtered.long_list_threshold = 32;
      SearchOptions adaptive;
      adaptive.theta = theta;
      adaptive.use_cost_model = true;

      auto r_plain = raw->Search(query, plain);
      auto r_filtered = raw->Search(query, filtered);
      auto r_adaptive = raw->Search(query, adaptive);
      auto r_comp = comp->Search(query, plain);
      auto r_memory = memory->Search(query, plain);
      ASSERT_TRUE(r_plain.ok() && r_filtered.ok() && r_adaptive.ok() &&
                  r_comp.ok() && r_memory.ok());

      const auto expected = Expand(r_plain->rectangles, config.t);
      // Soundness + completeness against the brute-force evaluation of
      // Definition 2.
      std::set<SequenceKey> brute;
      for (const BaselineMatch& m : BruteForceApproxSearch(
               sc.corpus, family, query, theta, config.t)) {
        brute.insert({m.text, m.begin, m.end});
      }
      ASSERT_EQ(expected, brute)
          << config.name << " q=" << q << " theta=" << theta;
      // Invariance across prefix filtering / cost model / compression /
      // in-memory index.
      ASSERT_EQ(Expand(r_filtered->rectangles, config.t), expected);
      ASSERT_EQ(Expand(r_adaptive->rectangles, config.t), expected);
      ASSERT_EQ(Expand(r_comp->rectangles, config.t), expected);
      ASSERT_EQ(Expand(r_memory->rectangles, config.t), expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, E2eSweepTest,
                         ::testing::ValuesIn(kConfigs),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace ndss
