#include "text/corpus_file.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

#include "common/random.h"

namespace ndss {
namespace {

class CorpusFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ndss_corpus_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".crp";
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  Corpus MakeCorpus(uint32_t num_texts, uint32_t max_len, uint64_t seed) {
    Corpus corpus;
    Rng rng(seed);
    for (uint32_t i = 0; i < num_texts; ++i) {
      std::vector<Token> text(1 + rng.Uniform(max_len));
      for (auto& token : text) token = static_cast<Token>(rng.Uniform(1000));
      corpus.AddText(text);
    }
    return corpus;
  }

  std::string path_;
};

TEST_F(CorpusFileTest, WriteReadAllRoundTrip) {
  Corpus corpus = MakeCorpus(50, 100, 1);
  ASSERT_TRUE(WriteCorpusFile(path_, corpus).ok());
  auto loaded = ReadCorpusFile(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_texts(), corpus.num_texts());
  EXPECT_EQ(loaded->total_tokens(), corpus.total_tokens());
  for (size_t i = 0; i < corpus.num_texts(); ++i) {
    ASSERT_EQ(std::vector<Token>(loaded->text(i).begin(),
                                 loaded->text(i).end()),
              std::vector<Token>(corpus.text(i).begin(),
                                 corpus.text(i).end()));
  }
}

TEST_F(CorpusFileTest, RandomAccessReadText) {
  Corpus corpus = MakeCorpus(30, 50, 2);
  ASSERT_TRUE(WriteCorpusFile(path_, corpus).ok());
  auto reader = CorpusFileReader::Open(path_);
  ASSERT_TRUE(reader.ok());
  for (TextId id : {0u, 29u, 7u, 15u, 7u}) {
    auto text = reader->ReadText(id);
    ASSERT_TRUE(text.ok());
    EXPECT_EQ(*text, std::vector<Token>(corpus.text(id).begin(),
                                        corpus.text(id).end()));
  }
}

TEST_F(CorpusFileTest, ReadTextOutOfRange) {
  Corpus corpus = MakeCorpus(3, 10, 3);
  ASSERT_TRUE(WriteCorpusFile(path_, corpus).ok());
  auto reader = CorpusFileReader::Open(path_);
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader->ReadText(3).status().IsOutOfRange());
}

TEST_F(CorpusFileTest, StreamingBatchesCoverEverythingInOrder) {
  Corpus corpus = MakeCorpus(100, 40, 4);
  ASSERT_TRUE(WriteCorpusFile(path_, corpus).ok());
  auto reader = CorpusFileReader::Open(path_);
  ASSERT_TRUE(reader.ok());

  size_t texts_seen = 0;
  uint64_t tokens_seen = 0;
  for (;;) {
    auto batch = reader->ReadBatch(500);
    ASSERT_TRUE(batch.ok());
    if (batch->empty()) break;
    EXPECT_EQ(batch->base_id(), texts_seen);
    for (size_t i = 0; i < batch->num_texts(); ++i) {
      const size_t global = texts_seen + i;
      ASSERT_EQ(std::vector<Token>(batch->text(i).begin(),
                                   batch->text(i).end()),
                std::vector<Token>(corpus.text(global).begin(),
                                   corpus.text(global).end()));
    }
    texts_seen += batch->num_texts();
    tokens_seen += batch->total_tokens();
  }
  EXPECT_EQ(texts_seen, corpus.num_texts());
  EXPECT_EQ(tokens_seen, corpus.total_tokens());
}

TEST_F(CorpusFileTest, BatchRespectsTokenBudgetButProgresses) {
  Corpus corpus = MakeCorpus(10, 30, 5);
  ASSERT_TRUE(WriteCorpusFile(path_, corpus).ok());
  auto reader = CorpusFileReader::Open(path_);
  ASSERT_TRUE(reader.ok());
  // A 1-token budget still returns one text per batch.
  size_t batches = 0;
  for (;;) {
    auto batch = reader->ReadBatch(1);
    ASSERT_TRUE(batch.ok());
    if (batch->empty()) break;
    EXPECT_EQ(batch->num_texts(), 1u);
    ++batches;
  }
  EXPECT_EQ(batches, 10u);
}

TEST_F(CorpusFileTest, EmptyTextRejected) {
  auto writer = CorpusFileWriter::Create(path_);
  ASSERT_TRUE(writer.ok());
  std::vector<Token> empty;
  EXPECT_TRUE(writer->Append(empty).status().IsInvalidArgument());
}

TEST_F(CorpusFileTest, CorruptFileRejected) {
  ASSERT_TRUE(WriteStringToFile(path_, "not a corpus file at all").ok());
  EXPECT_FALSE(CorpusFileReader::Open(path_).ok());
}

TEST_F(CorpusFileTest, MixedRandomAndStreamingAccess) {
  Corpus corpus = MakeCorpus(20, 20, 6);
  ASSERT_TRUE(WriteCorpusFile(path_, corpus).ok());
  auto reader = CorpusFileReader::Open(path_);
  ASSERT_TRUE(reader.ok());
  auto batch = reader->ReadBatch(10);
  ASSERT_TRUE(batch.ok());
  // Random access invalidates the cursor; the next batch restarts cleanly.
  ASSERT_TRUE(reader->ReadText(5).ok());
  ASSERT_TRUE(reader->SeekToStart().ok());
  size_t texts = 0;
  for (;;) {
    auto b = reader->ReadBatch(1000000);
    ASSERT_TRUE(b.ok());
    if (b->empty()) break;
    texts += b->num_texts();
  }
  EXPECT_EQ(texts, 20u);
}

}  // namespace
}  // namespace ndss
