// ShardedSearcher correctness: scatter-gather over a shard set must be
// bit-identical to a single Searcher over MergeIndexes of the same shards —
// including under governance and with a fault-injected shard dropped — and
// attach/detach must renumber exactly like re-merging.

#include "shard/sharded_searcher.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/file_io.h"
#include "corpusgen/synthetic.h"
#include "index/index_builder.h"
#include "index/index_format.h"
#include "index/index_merger.h"
#include "query/searcher.h"

namespace ndss {
namespace {

class ShardedSearcherTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kNumTexts = 120;
  static constexpr uint32_t kShardTexts = 40;  // 3 shards

  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ndss_sharded_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    ASSERT_TRUE(CreateDirectories(dir_).ok());

    SyntheticCorpusOptions corpus_options;
    corpus_options.num_texts = kNumTexts;
    corpus_options.vocab_size = 400;
    corpus_options.plant_rate = 0.35;
    corpus_options.seed = 91;
    sc_ = GenerateSyntheticCorpus(corpus_options);

    build_.k = 5;
    build_.t = 20;
    for (uint32_t s = 0; s < 3; ++s) {
      Corpus shard;
      for (uint32_t i = s * kShardTexts; i < (s + 1) * kShardTexts; ++i) {
        shard.AddText(sc_.corpus.text(i));
      }
      ASSERT_TRUE(BuildIndexInMemory(shard, ShardDir(s), build_).ok());
    }
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string ShardDir(uint32_t s) const {
    return dir_ + "/s" + std::to_string(s);
  }
  std::string SetDir() const { return dir_ + "/set"; }

  void WriteManifest(const std::vector<std::string>& shard_dirs) {
    ShardManifest manifest;
    manifest.shard_dirs = shard_dirs;
    ASSERT_TRUE(manifest.Save(SetDir()).ok());
  }

  /// A Searcher over MergeIndexes(shard_dirs) — the equivalence baseline.
  Searcher MergedBaseline(const std::vector<std::string>& shard_dirs) {
    static int counter = 0;
    const std::string out = dir_ + "/merged" + std::to_string(counter++);
    auto stats = MergeIndexes(shard_dirs, out, IndexMergeOptions{});
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    auto searcher = Searcher::Open(out);
    EXPECT_TRUE(searcher.ok()) << searcher.status().ToString();
    return std::move(*searcher);
  }

  std::vector<std::vector<Token>> MakeQueries(size_t count) const {
    Rng rng(5);
    std::vector<std::vector<Token>> queries;
    for (size_t q = 0; q < count; ++q) {
      const TextId source = static_cast<TextId>(rng.Uniform(kNumTexts));
      const auto text = sc_.corpus.text(source);
      const uint32_t length =
          std::min<uint32_t>(35, static_cast<uint32_t>(text.size()));
      queries.push_back(PerturbSequence(text, 0, length, 0.1, 400, rng));
    }
    return queries;
  }

  /// Element-wise bit-identity of matches (stats legitimately differ: list
  /// classification is per-shard).
  static void ExpectSameMatches(const SearchResult& expected,
                                const SearchResult& actual,
                                const std::string& label) {
    ASSERT_EQ(expected.rectangles.size(), actual.rectangles.size()) << label;
    for (size_t i = 0; i < expected.rectangles.size(); ++i) {
      EXPECT_EQ(expected.rectangles[i].text, actual.rectangles[i].text)
          << label << " rect " << i;
      EXPECT_TRUE(expected.rectangles[i].rect == actual.rectangles[i].rect)
          << label << " rect " << i;
    }
    ASSERT_EQ(expected.spans.size(), actual.spans.size()) << label;
    for (size_t i = 0; i < expected.spans.size(); ++i) {
      EXPECT_EQ(expected.spans[i].text, actual.spans[i].text) << label;
      EXPECT_EQ(expected.spans[i].begin, actual.spans[i].begin) << label;
      EXPECT_EQ(expected.spans[i].end, actual.spans[i].end) << label;
      EXPECT_EQ(expected.spans[i].collisions, actual.spans[i].collisions)
          << label;
      EXPECT_EQ(expected.spans[i].estimated_similarity,
                actual.spans[i].estimated_similarity)
          << label;
    }
  }

  /// Drops every match of texts [begin, end) from `result` — the expected
  /// answer when the shard holding that id range goes dark.
  static SearchResult EraseTextRange(SearchResult result, TextId begin,
                                     TextId end) {
    std::erase_if(result.rectangles, [&](const TextMatchRectangle& r) {
      return r.text >= begin && r.text < end;
    });
    std::erase_if(result.spans, [&](const MatchSpan& s) {
      return s.text >= begin && s.text < end;
    });
    return result;
  }

  /// XORs the posting region of every inverted-index file of `shard_dir`:
  /// the shard opens but every list read fails its CRC (the same injection
  /// failure_injection_test uses).
  void CorruptShardLists(const std::string& shard_dir) {
    for (uint32_t func = 0; func < build_.k; ++func) {
      const std::string path =
          IndexMeta::InvertedIndexPath(shard_dir, func);
      auto data = ReadFileToString(path);
      ASSERT_TRUE(data.ok());
      const uint64_t directory_offset = DecodeFixed64(
          data->data() + data->size() - index_format::kFooterSize + 16);
      for (uint64_t i = index_format::kHeaderSize; i < directory_offset;
           ++i) {
        (*data)[i] ^= 0x5a;
      }
      ASSERT_TRUE(WriteStringToFile(path, *data).ok());
    }
  }

  std::string dir_;
  SyntheticCorpus sc_;
  IndexBuildOptions build_;
};

TEST_F(ShardedSearcherTest, BitIdenticalToMergedIndex) {
  WriteManifest({"../s0", "../s1", "../s2"});  // relative entries resolve
  auto sharded = ShardedSearcher::Open(SetDir());
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  Searcher merged = MergedBaseline({ShardDir(0), ShardDir(1), ShardDir(2)});

  EXPECT_EQ(sharded->meta().num_texts, kNumTexts);
  EXPECT_EQ(sharded->meta().k, build_.k);

  for (const bool prefix_filter : {true, false}) {
    SearchOptions options;
    options.theta = 0.6;
    options.use_prefix_filter = prefix_filter;
    size_t total_spans = 0;
    for (const auto& query : MakeQueries(12)) {
      auto expected = merged.Search(query, options);
      auto actual = sharded->Search(query, options);
      ASSERT_TRUE(expected.ok() && actual.ok());
      ExpectSameMatches(*expected, *actual,
                        prefix_filter ? "prefix" : "no-prefix");
      EXPECT_EQ(actual->stats.degraded_shards, 0u);
      total_spans += expected->spans.size();
    }
    EXPECT_GT(total_spans, 0u) << "vacuous equivalence";
  }
}

TEST_F(ShardedSearcherTest, BatchBitIdenticalToMergedIndex) {
  WriteManifest({ShardDir(0), ShardDir(1), ShardDir(2)});
  auto sharded = ShardedSearcher::Open(SetDir());
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  Searcher merged = MergedBaseline({ShardDir(0), ShardDir(1), ShardDir(2)});

  const auto queries = MakeQueries(10);
  SearchOptions options;
  options.theta = 0.6;
  auto expected = merged.SearchBatch(queries, options);
  auto actual = sharded->SearchBatch(queries, options, 64 << 20, 2);
  ASSERT_TRUE(expected.ok() && actual.ok()) << actual.status().ToString();
  ASSERT_EQ(expected->size(), actual->size());
  for (size_t q = 0; q < queries.size(); ++q) {
    ExpectSameMatches((*expected)[q], (*actual)[q],
                      "query " + std::to_string(q));
  }
}

TEST_F(ShardedSearcherTest, GovernedSearchStaysBitIdentical) {
  WriteManifest({ShardDir(0), ShardDir(1), ShardDir(2)});
  auto sharded = ShardedSearcher::Open(SetDir());
  ASSERT_TRUE(sharded.ok());
  Searcher merged = MergedBaseline({ShardDir(0), ShardDir(1), ShardDir(2)});

  SearchOptions options;
  options.theta = 0.6;
  for (const auto& query : MakeQueries(8)) {
    // Permissive governance: a 1-minute deadline and a 1 GB budget bind
    // nothing, so the answer must not change.
    QueryContext ctx = QueryContext::WithTimeout(60'000'000);
    MemoryBudget budget(1ull << 30);
    ctx.set_memory_budget(&budget);
    SearchResult governed;
    ASSERT_TRUE(sharded->Search(query, options, &ctx, &governed).ok());
    auto expected = merged.Search(query, options);
    ASSERT_TRUE(expected.ok());
    ExpectSameMatches(*expected, governed, "governed");
    EXPECT_GT(governed.stats.peak_memory_bytes, 0u);
  }
}

TEST_F(ShardedSearcherTest, GovernedBatchStaysBitIdentical) {
  WriteManifest({ShardDir(0), ShardDir(1), ShardDir(2)});
  auto sharded = ShardedSearcher::Open(SetDir());
  ASSERT_TRUE(sharded.ok());
  Searcher merged = MergedBaseline({ShardDir(0), ShardDir(1), ShardDir(2)});

  const auto queries = MakeQueries(10);
  SearchOptions options;
  options.theta = 0.6;
  BatchLimits limits;
  limits.batch_timeout_micros = 60'000'000;
  limits.query_timeout_micros = 60'000'000;
  limits.max_inflight_bytes = 1ull << 30;
  auto expected = merged.SearchBatch(queries, options);
  auto actual = sharded->SearchBatch(queries, options, limits, 64 << 20, 2);
  ASSERT_TRUE(expected.ok() && actual.ok()) << actual.status().ToString();
  EXPECT_EQ(actual->stats.queries_ok, queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    EXPECT_TRUE(actual->statuses[q].ok());
    ExpectSameMatches((*expected)[q], actual->results[q],
                      "query " + std::to_string(q));
  }
}

TEST_F(ShardedSearcherTest, ExpiredDeadlineFailsWithPartialStats) {
  WriteManifest({ShardDir(0), ShardDir(1), ShardDir(2)});
  auto sharded = ShardedSearcher::Open(SetDir());
  ASSERT_TRUE(sharded.ok());

  QueryContext ctx;
  ctx.set_deadline(QueryContext::Clock::now() -
                   std::chrono::milliseconds(10));
  SearchOptions options;
  options.theta = 0.6;
  SearchResult result;
  const auto queries = MakeQueries(1);
  const Status status =
      sharded->Search(queries.front(), options, &ctx, &result);
  EXPECT_TRUE(status.IsDeadlineExceeded()) << status.ToString();
  // The partial-stats contract: the result carries what was measured, even
  // though the answer is incomplete.
  EXPECT_GT(result.stats.wall_seconds, 0.0);
}

TEST_F(ShardedSearcherTest, CancelFlagPropagatesToShards) {
  WriteManifest({ShardDir(0), ShardDir(1), ShardDir(2)});
  auto sharded = ShardedSearcher::Open(SetDir());
  ASSERT_TRUE(sharded.ok());

  std::atomic<bool> cancel{true};
  QueryContext ctx;
  ctx.set_cancel_flag(&cancel);
  SearchOptions options;
  options.theta = 0.6;
  SearchResult result;
  const auto queries = MakeQueries(1);
  const Status status =
      sharded->Search(queries.front(), options, &ctx, &result);
  EXPECT_TRUE(status.IsCancelled()) << status.ToString();
}

TEST_F(ShardedSearcherTest, CorruptShardIsDroppedAndSurvivorsStayExact) {
  WriteManifest({ShardDir(0), ShardDir(1), ShardDir(2)});
  Searcher merged = MergedBaseline({ShardDir(0), ShardDir(1), ShardDir(2)});
  CorruptShardLists(ShardDir(1));

  ShardedSearcherOptions sharded_options;
  sharded_options.allow_shard_drop = true;
  auto sharded = ShardedSearcher::Open(SetDir(), sharded_options);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  SearchOptions options;
  options.theta = 0.6;
  bool shard1_had_matches = false;
  for (const auto& query : MakeQueries(12)) {
    auto actual = sharded->Search(query, options);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    auto full = merged.Search(query, options);
    ASSERT_TRUE(full.ok());
    for (const MatchSpan& span : full->spans) {
      shard1_had_matches |=
          span.text >= kShardTexts && span.text < 2 * kShardTexts;
    }
    // The dropped shard keeps its id range: survivors' global ids must not
    // shift, so the answer is the merged answer minus shard 1's texts.
    ExpectSameMatches(EraseTextRange(*full, kShardTexts, 2 * kShardTexts),
                      *actual, "degraded");
    EXPECT_EQ(actual->stats.degraded_shards, 1u);
  }
  EXPECT_TRUE(shard1_had_matches) << "vacuous drop test";

  const auto shards = sharded->shards();
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_FALSE(shards[0].dropped);
  EXPECT_TRUE(shards[1].dropped);
  EXPECT_FALSE(shards[2].dropped);
}

TEST_F(ShardedSearcherTest, UnopenableShardIsDroppedAtOpen) {
  WriteManifest({ShardDir(0), ShardDir(1), ShardDir(2)});
  Searcher merged = MergedBaseline({ShardDir(0), ShardDir(1), ShardDir(2)});
  // Remove one inverted-index file: the meta still loads (so the id space
  // is known) but the shard cannot serve.
  std::filesystem::remove(IndexMeta::InvertedIndexPath(ShardDir(2), 0));

  // Without allow_shard_drop the open must fail loudly.
  EXPECT_FALSE(ShardedSearcher::Open(SetDir()).ok());

  ShardedSearcherOptions sharded_options;
  sharded_options.allow_shard_drop = true;
  auto sharded = ShardedSearcher::Open(SetDir(), sharded_options);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_TRUE(sharded->shards()[2].dropped);
  // The dropped shard still holds its id range.
  EXPECT_EQ(sharded->meta().num_texts, kNumTexts);

  SearchOptions options;
  options.theta = 0.6;
  for (const auto& query : MakeQueries(6)) {
    auto actual = sharded->Search(query, options);
    ASSERT_TRUE(actual.ok());
    auto full = merged.Search(query, options);
    ASSERT_TRUE(full.ok());
    ExpectSameMatches(EraseTextRange(*full, 2 * kShardTexts, kNumTexts),
                      *actual, "open-drop");
    EXPECT_EQ(actual->stats.degraded_shards, 1u);
  }
}

TEST_F(ShardedSearcherTest, AttachExtendsTheIdSpace) {
  WriteManifest({ShardDir(0), ShardDir(1)});
  auto sharded = ShardedSearcher::Open(SetDir());
  ASSERT_TRUE(sharded.ok());
  EXPECT_EQ(sharded->epoch(), 0u);
  EXPECT_EQ(sharded->meta().num_texts, 2 * kShardTexts);

  ASSERT_TRUE(sharded->AttachShard(ShardDir(2)).ok());
  EXPECT_EQ(sharded->epoch(), 1u);
  EXPECT_EQ(sharded->meta().num_texts, kNumTexts);

  Searcher merged = MergedBaseline({ShardDir(0), ShardDir(1), ShardDir(2)});
  SearchOptions options;
  options.theta = 0.6;
  for (const auto& query : MakeQueries(8)) {
    auto expected = merged.Search(query, options);
    auto actual = sharded->Search(query, options);
    ASSERT_TRUE(expected.ok() && actual.ok());
    ExpectSameMatches(*expected, *actual, "post-attach");
  }

  // The manifest was durably committed: a fresh open serves the new set.
  auto reopened = ShardedSearcher::Open(SetDir());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->epoch(), 1u);
  EXPECT_EQ(reopened->meta().num_texts, kNumTexts);
}

TEST_F(ShardedSearcherTest, DetachRenumbersByConcatenation) {
  WriteManifest({ShardDir(0), ShardDir(1), ShardDir(2)});
  auto sharded = ShardedSearcher::Open(SetDir());
  ASSERT_TRUE(sharded.ok());

  ASSERT_TRUE(sharded->DetachShard(ShardDir(1)).ok());
  EXPECT_EQ(sharded->epoch(), 1u);
  EXPECT_EQ(sharded->meta().num_texts, 2 * kShardTexts);

  // Unlike a degraded drop, a detach renumbers: shard 2's texts now start
  // at kShardTexts, exactly as if the set had been merged without shard 1.
  Searcher merged = MergedBaseline({ShardDir(0), ShardDir(2)});
  SearchOptions options;
  options.theta = 0.6;
  for (const auto& query : MakeQueries(8)) {
    auto expected = merged.Search(query, options);
    auto actual = sharded->Search(query, options);
    ASSERT_TRUE(expected.ok() && actual.ok());
    ExpectSameMatches(*expected, *actual, "post-detach");
  }

  auto reopened = ShardedSearcher::Open(SetDir());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->meta().num_texts, 2 * kShardTexts);
}

TEST_F(ShardedSearcherTest, TopologyChangeRejections) {
  WriteManifest({ShardDir(0), ShardDir(1)});
  auto sharded = ShardedSearcher::Open(SetDir());
  ASSERT_TRUE(sharded.ok());

  EXPECT_TRUE(sharded->AttachShard(ShardDir(0)).IsInvalidArgument());
  EXPECT_TRUE(sharded->AttachShard(ShardDir(1) + "/").IsInvalidArgument());
  EXPECT_TRUE(sharded->DetachShard(dir_ + "/nope").IsNotFound());

  // A shard built with a different hash family cannot join the set.
  Corpus other;
  for (uint32_t i = 0; i < 10; ++i) other.AddText(sc_.corpus.text(i));
  IndexBuildOptions mismatched = build_;
  mismatched.t = build_.t + 5;
  ASSERT_TRUE(
      BuildIndexInMemory(other, dir_ + "/mismatched", mismatched).ok());
  EXPECT_TRUE(
      sharded->AttachShard(dir_ + "/mismatched").IsInvalidArgument());

  // Same (k, seed, t) but a different sketch scheme is just as foreign:
  // its postings were keyed by different hash functions.
  IndexBuildOptions wrong_scheme = build_;
  wrong_scheme.sketch = SketchSchemeId::kCMinHash;
  ASSERT_TRUE(
      BuildIndexInMemory(other, dir_ + "/wrong_scheme", wrong_scheme).ok());
  const Status scheme_attach = sharded->AttachShard(dir_ + "/wrong_scheme");
  EXPECT_TRUE(scheme_attach.IsInvalidArgument());
  EXPECT_NE(scheme_attach.ToString().find("sketch scheme"),
            std::string::npos);

  ASSERT_TRUE(sharded->DetachShard(ShardDir(1)).ok());
  EXPECT_TRUE(sharded->DetachShard(ShardDir(0)).IsInvalidArgument())
      << "the last shard must not be detachable";
  // Failed topology changes must not have bumped the epoch.
  EXPECT_EQ(sharded->epoch(), 1u);
}

TEST_F(ShardedSearcherTest, SingleShardSetMatchesPlainSearcher) {
  WriteManifest({ShardDir(0)});
  auto sharded = ShardedSearcher::Open(SetDir());
  ASSERT_TRUE(sharded.ok());
  auto plain = Searcher::Open(ShardDir(0));
  ASSERT_TRUE(plain.ok());

  SearchOptions options;
  options.theta = 0.6;
  for (const auto& query : MakeQueries(6)) {
    auto expected = plain->Search(query, options);
    auto actual = sharded->Search(query, options);
    ASSERT_TRUE(expected.ok() && actual.ok());
    ExpectSameMatches(*expected, *actual, "single-shard");
  }
}

}  // namespace
}  // namespace ndss
