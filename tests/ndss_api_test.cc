#include "ndss/ndss.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "corpusgen/synthetic.h"

namespace ndss {
namespace {

class NdssApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ndss_api_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(NdssApiTest, BuildOpenSearchEndToEnd) {
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 50;
  corpus_options.min_text_length = 60;
  corpus_options.max_text_length = 120;
  corpus_options.vocab_size = 1000;
  corpus_options.plant_rate = 0.0;
  corpus_options.seed = 123;
  SyntheticCorpus sc = GenerateSyntheticCorpus(corpus_options);

  IndexBuildOptions build;
  build.k = 8;
  build.t = 20;
  auto stats = NearDuplicateIndex::Build(sc.corpus, dir_, build);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  auto index = NearDuplicateIndex::Open(dir_);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->meta().k, 8u);

  // The first 30 tokens of text 7 must match themselves at theta = 1.
  const auto text = sc.corpus.text(7);
  const std::vector<Token> query(text.begin(), text.begin() + 30);
  SearchOptions search;
  search.theta = 1.0;
  auto result = index->Search(query, search);
  ASSERT_TRUE(result.ok());
  bool self_found = false;
  for (const MatchSpan& span : result->spans) {
    if (span.text == 7 && span.begin == 0) self_found = true;
  }
  EXPECT_TRUE(self_found);
}

TEST_F(NdssApiTest, BuildFromFileEndToEnd) {
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 40;
  corpus_options.min_text_length = 60;
  corpus_options.max_text_length = 100;
  corpus_options.vocab_size = 500;
  corpus_options.seed = 9;
  SyntheticCorpus sc = GenerateSyntheticCorpus(corpus_options);
  ASSERT_TRUE(CreateDirectories(dir_).ok());
  const std::string corpus_path = dir_ + "/corpus.crp";
  ASSERT_TRUE(WriteCorpusFile(corpus_path, sc.corpus).ok());

  IndexBuildOptions build;
  build.k = 4;
  build.t = 15;
  build.batch_tokens = 1000;
  auto stats =
      NearDuplicateIndex::BuildFromFile(corpus_path, dir_ + "/idx", build);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  auto index = NearDuplicateIndex::Open(dir_ + "/idx");
  ASSERT_TRUE(index.ok());
  const auto text = sc.corpus.text(0);
  const std::vector<Token> query(text.begin(), text.begin() + 20);
  auto result = index->Search(query, SearchOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->spans.empty());
}

TEST_F(NdssApiTest, OpenMissingDirectoryFails) {
  EXPECT_FALSE(NearDuplicateIndex::Open(dir_ + "/nope").ok());
}

}  // namespace
}  // namespace ndss
