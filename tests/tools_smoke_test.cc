// Smoke test over the real ndss_* tool binaries (paths injected by CMake
// via NDSS_TOOLS_BIN_DIR): the corpusgen -> build -> shard -> query
// pipeline end to end, the serve + load_test pair over a live socket, and
// the regression suite for the silent CLI-parsing bugs — every malformed
// flag value must exit 1 (usage error), never run with a silently-zero
// value.

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

namespace ndss {
namespace {

#ifndef NDSS_TOOLS_BIN_DIR
#error "NDSS_TOOLS_BIN_DIR must be defined by the build"
#endif

std::string Tool(const std::string& name) {
  return std::string(NDSS_TOOLS_BIN_DIR) + "/" + name;
}

/// Runs `command` through the shell with stdout/stderr captured to a log
/// (printed on unexpected exit codes by the assertions below); returns the
/// tool's exit code, or -1 if it died on a signal.
int RunCommand(const std::string& command, const std::string& log) {
  const int raw = std::system((command + " >" + log + " 2>&1").c_str());
  if (raw == -1 || !WIFEXITED(raw)) return -1;
  return WEXITSTATUS(raw);
}

std::string ReadLog(const std::string& log) {
  std::ifstream in(log);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

class ToolsSmokeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ndss_tools_smoke";
    std::filesystem::remove_all(dir_);
    ASSERT_TRUE(std::filesystem::create_directories(dir_));
    log_ = dir_ + "/log";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Asserts `command` exits with `expected`, printing the tool log if not.
  void ExpectExit(int expected, const std::string& command) {
    const int code = RunCommand(command, log_);
    EXPECT_EQ(code, expected) << command << "\n" << ReadLog(log_);
  }

  std::string dir_;
  std::string log_;
};

TEST_F(ToolsSmokeTest, PipelineAndServeEndToEnd) {
  const std::string c1 = dir_ + "/c1.crp";
  const std::string c2 = dir_ + "/c2.crp";
  ExpectExit(0, Tool("ndss_corpusgen") + " --out=" + c1 +
                    " --texts=40 --min-len=50 --max-len=120 --vocab=300"
                    " --seed=1");
  ExpectExit(0, Tool("ndss_corpusgen") + " --out=" + c2 +
                    " --texts=40 --min-len=50 --max-len=120 --vocab=300"
                    " --seed=2");
  ExpectExit(0, Tool("ndss_build") + " --corpus=" + c1 + " --index=" + dir_ +
                    "/s1 --k=4 --t=6");
  ExpectExit(0, Tool("ndss_build") + " --corpus=" + c2 + " --index=" + dir_ +
                    "/s2 --k=4 --t=6");
  ExpectExit(0, Tool("ndss_shard") + " create --set=" + dir_ + "/set " +
                    dir_ + "/s1 " + dir_ + "/s2");
  ExpectExit(0, Tool("ndss_query") + " --index=" + dir_ +
                    "/s1 --tokens=1,2,3,4,5,6,7,8");
  ExpectExit(0, Tool("ndss_query") + " --index=" + dir_ + "/s1 --corpus=" +
                    c1 + " --random=3 --len=24");

  // Serve the set on an ephemeral port and drive it with the load-test
  // client, equivalence gate on: answers over HTTP must be bit-identical
  // to the direct ShardedSearcher.
  const std::string port_file = dir_ + "/port";
  const std::string pid_file = dir_ + "/pid";
  ASSERT_EQ(std::system((Tool("ndss_serve") + " --set=" + dir_ +
                         "/set --port-file=" + port_file +
                         " --serve-seconds=60 --quiet >" + dir_ +
                         "/serve.log 2>&1 & echo $! > " + pid_file)
                            .c_str()),
            0);
  std::string port;
  for (int i = 0; i < 200 && port.empty(); ++i) {
    std::ifstream in(port_file);
    std::getline(in, port);
    if (port.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  ASSERT_FALSE(port.empty()) << ReadLog(dir_ + "/serve.log");

  ExpectExit(0, Tool("ndss_load_test") + " --port=" + port + " --corpus=" +
                    c1 + " --verify-set=" + dir_ +
                    "/set --requests=20 --concurrency=2 --queries=6"
                    " --len=24 --json");

  std::string pid = ReadLog(pid_file);
  if (!pid.empty() && pid.back() == '\n') pid.pop_back();
  (void)std::system(("kill " + pid + " 2>/dev/null").c_str());
}

TEST_F(ToolsSmokeTest, SketchFlagSelectsSchemeEndToEnd) {
  const std::string corpus = dir_ + "/c.crp";
  ExpectExit(0, Tool("ndss_corpusgen") + " --out=" + corpus +
                    " --texts=40 --min-len=50 --max-len=120 --vocab=300"
                    " --seed=7");
  ExpectExit(0, Tool("ndss_build") + " --corpus=" + corpus + " --index=" +
                    dir_ + "/cm --k=4 --t=6 --sketch=cminhash");
  ExpectExit(0, Tool("ndss_query") + " --index=" + dir_ +
                    "/cm --tokens=1,2,3,4,5,6,7,8");
  EXPECT_NE(ReadLog(log_).find("sketch=cminhash"), std::string::npos)
      << ReadLog(log_);

  // Scheme identity must survive the on-disk round trip into ndss_stats.
  ExpectExit(0, Tool("ndss_stats") + " --index=" + dir_ + "/cm --json");
  EXPECT_NE(ReadLog(log_).find("\"sketch\": \"cminhash\""), std::string::npos)
      << ReadLog(log_);

  // An unknown scheme name must be a loud usage error, not a default.
  ExpectExit(1, Tool("ndss_build") + " --corpus=" + corpus + " --index=" +
                    dir_ + "/bad --k=4 --t=6 --sketch=simhash");
  EXPECT_NE(ReadLog(log_).find("sketch"), std::string::npos) << ReadLog(log_);
}

TEST_F(ToolsSmokeTest, MalformedTokenListExitsWithUsageError) {
  const std::string corpus = dir_ + "/c.crp";
  ASSERT_EQ(RunCommand(Tool("ndss_corpusgen") + " --out=" + corpus +
                    " --texts=20 --min-len=40 --max-len=80 --vocab=200",
                log_),
            0);
  ASSERT_EQ(RunCommand(Tool("ndss_build") + " --corpus=" + corpus + " --index=" +
                    dir_ + "/idx --k=4 --t=6",
                log_),
            0);
  // "12,abc,34" used to strtoul the bad entry to 0 and silently query
  // token 0; it must be a loud usage error now.
  ExpectExit(1, Tool("ndss_query") + " --index=" + dir_ +
                    "/idx --tokens=12,abc,34");
  EXPECT_NE(ReadLog(log_).find("malformed token"), std::string::npos);
  ExpectExit(1,
             Tool("ndss_query") + " --index=" + dir_ + "/idx --tokens=1,,2");
  ExpectExit(1,
             Tool("ndss_query") + " --index=" + dir_ + "/idx --tokens=-1");
}

TEST_F(ToolsSmokeTest, MalformedFlagValuesExitWithUsageError) {
  const std::string corpus = dir_ + "/c.crp";
  ASSERT_EQ(RunCommand(Tool("ndss_corpusgen") + " --out=" + corpus +
                    " --texts=20 --min-len=40 --max-len=80 --vocab=200",
                log_),
            0);
  ASSERT_EQ(RunCommand(Tool("ndss_build") + " --corpus=" + corpus + " --index=" +
                    dir_ + "/idx --k=4 --t=6",
                log_),
            0);
  // None of these may run a search: a bad value must die in flag parsing,
  // not query with deadline 0 (infinite) / theta 0.8-truncated.
  ExpectExit(1, Tool("ndss_query") + " --index=" + dir_ +
                    "/idx --tokens=1,2 --deadline-ms=abc");
  EXPECT_NE(ReadLog(log_).find("malformed number"), std::string::npos);
  ExpectExit(1, Tool("ndss_query") + " --index=" + dir_ +
                    "/idx --tokens=1,2 --theta=0.8x");
  EXPECT_NE(ReadLog(log_).find("malformed number"), std::string::npos);
  ExpectExit(1, Tool("ndss_corpusgen") + " --out=" + dir_ +
                    "/x.crp --texts=10x");
  ExpectExit(1, Tool("ndss_build") + " --corpus=" + dir_ + "/x --index=" +
                    dir_ + "/y --compress=YES");
  EXPECT_NE(ReadLog(log_).find("expected true/false/1/0"),
            std::string::npos);
  ExpectExit(1, Tool("ndss_serve") + " --set=" + dir_ +
                    "/nonexistent --max-inflight=many");
  ExpectExit(1, Tool("ndss_load_test") + " --port=1");  // no server: exit 1
}

}  // namespace
}  // namespace ndss
