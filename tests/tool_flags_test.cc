// Tests for the strict tools/tool_flags.h parser and the shared
// common/parse.h primitives behind it.
//
// These pin the bugfix this layer exists for: `--deadline-ms=abc` used to
// strtoll to 0 — an *infinite* deadline instead of an error — and
// `--theta=0.8x` silently truncated to 0.8. Every malformed value must now
// Die() (exit 1 with a message naming the flag), which the death tests
// assert literally.

#include "../tools/tool_flags.h"

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/parse.h"
#include "gtest/gtest.h"

namespace ndss {
namespace {

/// Builds a Flags over a tool-style argv (argv[0] is the program name).
tools::Flags MakeFlags(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;  // keeps c_str()s alive
  storage = std::move(args);
  storage.insert(storage.begin(), "tool");
  argv.reserve(storage.size());
  for (std::string& arg : storage) argv.push_back(arg.data());
  return tools::Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(ParseTest, Int64) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("0", &v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(ParseInt64("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_TRUE(ParseInt64("9223372036854775807", &v));
  EXPECT_EQ(v, std::numeric_limits<int64_t>::max());

  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("abc", &v));
  EXPECT_FALSE(ParseInt64("1x", &v));     // trailing garbage
  EXPECT_FALSE(ParseInt64(" 1", &v));     // leading space
  EXPECT_FALSE(ParseInt64("1 ", &v));     // trailing space
  EXPECT_FALSE(ParseInt64("0.5", &v));
  EXPECT_FALSE(ParseInt64("9223372036854775808", &v));  // overflow
}

TEST(ParseTest, Uint64AndUint32) {
  uint64_t u = 0;
  EXPECT_TRUE(ParseUint64("18446744073709551615", &u));
  EXPECT_EQ(u, std::numeric_limits<uint64_t>::max());
  // strtoull silently wraps "-1" to UINT64_MAX; we must not.
  EXPECT_FALSE(ParseUint64("-1", &u));
  EXPECT_FALSE(ParseUint64("18446744073709551616", &u));

  uint32_t w = 0;
  EXPECT_TRUE(ParseUint32("4294967295", &w));
  EXPECT_EQ(w, std::numeric_limits<uint32_t>::max());
  EXPECT_FALSE(ParseUint32("4294967296", &w));
  EXPECT_FALSE(ParseUint32("12,13", &w));
}

TEST(ParseTest, Double) {
  double d = 0;
  EXPECT_TRUE(ParseDouble("0.8", &d));
  EXPECT_DOUBLE_EQ(d, 0.8);
  EXPECT_TRUE(ParseDouble("-1e3", &d));
  EXPECT_DOUBLE_EQ(d, -1000);

  EXPECT_FALSE(ParseDouble("", &d));
  EXPECT_FALSE(ParseDouble("0.8x", &d));  // the --theta=0.8x bug
  EXPECT_FALSE(ParseDouble("nan", &d));   // finite values only
  EXPECT_FALSE(ParseDouble("inf", &d));
  EXPECT_FALSE(ParseDouble("1e999", &d));
}

TEST(ParseTest, Bool) {
  bool b = false;
  EXPECT_TRUE(ParseBool("true", &b));
  EXPECT_TRUE(b);
  EXPECT_TRUE(ParseBool("1", &b));
  EXPECT_TRUE(b);
  EXPECT_TRUE(ParseBool("false", &b));
  EXPECT_FALSE(b);
  EXPECT_TRUE(ParseBool("0", &b));
  EXPECT_FALSE(b);

  // "TRUE", "yes", etc. used to read as silently-false booleans.
  EXPECT_FALSE(ParseBool("TRUE", &b));
  EXPECT_FALSE(ParseBool("yes", &b));
  EXPECT_FALSE(ParseBool("on", &b));
  EXPECT_FALSE(ParseBool("", &b));
}

TEST(FlagsTest, WellFormedValues) {
  // Note the space form is greedy: a bare flag followed by a positional
  // would swallow it, so positionals come first and `--quiet` sits last.
  tools::Flags flags = MakeFlags({"input.crp", "--deadline-ms=250",
                                  "--theta=0.85", "--compress=true",
                                  "--threads", "4", "--quiet"});
  EXPECT_EQ(flags.GetInt("deadline-ms", 0), 250);
  EXPECT_DOUBLE_EQ(flags.GetDouble("theta", 0), 0.85);
  EXPECT_TRUE(flags.GetBool("compress", false));
  EXPECT_TRUE(flags.GetBool("quiet", false));  // bare flag: boolean true
  EXPECT_EQ(flags.GetInt("threads", 0), 4);    // space form
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "input.crp");
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  tools::Flags flags = MakeFlags({});
  EXPECT_EQ(flags.GetInt("deadline-ms", 77), 77);
  EXPECT_DOUBLE_EQ(flags.GetDouble("theta", 0.5), 0.5);
  EXPECT_TRUE(flags.GetBool("compress", true));
  EXPECT_EQ(flags.GetString("out", "fallback"), "fallback");
  EXPECT_FALSE(flags.Has("out"));
}

using FlagsDeathTest = ::testing::Test;

TEST(FlagsDeathTest, MalformedIntDies) {
  // The original bug: this parsed as deadline 0 == no deadline at all.
  tools::Flags flags = MakeFlags({"--deadline-ms=abc"});
  EXPECT_EXIT(flags.GetInt("deadline-ms", 0),
              ::testing::ExitedWithCode(1), "deadline-ms.*malformed integer");
  tools::Flags trailing = MakeFlags({"--threads=4x"});
  EXPECT_EXIT(trailing.GetInt("threads", 0), ::testing::ExitedWithCode(1),
              "malformed integer '4x'");
  tools::Flags overflow = MakeFlags({"--n=99999999999999999999"});
  EXPECT_EXIT(overflow.GetInt("n", 0), ::testing::ExitedWithCode(1),
              "malformed integer");
}

TEST(FlagsDeathTest, MalformedDoubleDies) {
  tools::Flags flags = MakeFlags({"--theta=0.8x"});
  EXPECT_EXIT(flags.GetDouble("theta", 0), ::testing::ExitedWithCode(1),
              "theta.*malformed number '0.8x'");
}

TEST(FlagsDeathTest, UnrecognizedBoolLiteralDies) {
  // "TRUE"/"yes" used to silently read as false.
  tools::Flags upper = MakeFlags({"--compress=TRUE"});
  EXPECT_EXIT(upper.GetBool("compress", false),
              ::testing::ExitedWithCode(1), "expected true/false/1/0");
  tools::Flags yes = MakeFlags({"--compress=yes"});
  EXPECT_EXIT(yes.GetBool("compress", false), ::testing::ExitedWithCode(1),
              "expected true/false/1/0, got 'yes'");
}

TEST(FlagsDeathTest, BareFlagReadAsNumberDies) {
  // `--a --b`: a records the literal "true"; reading it as a number must
  // die loudly instead of parsing to 0.
  tools::Flags flags = MakeFlags({"--deadline-ms", "--quiet"});
  EXPECT_TRUE(flags.GetBool("deadline-ms", false));
  EXPECT_EXIT(flags.GetInt("deadline-ms", 0), ::testing::ExitedWithCode(1),
              "malformed integer 'true'");
  EXPECT_EXIT(flags.GetDouble("deadline-ms", 0),
              ::testing::ExitedWithCode(1), "malformed number 'true'");
}

}  // namespace
}  // namespace ndss
