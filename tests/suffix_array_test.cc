#include "baseline/suffix_array.h"

#include <gtest/gtest.h>

#include <vector>

#include "baseline/brute_force.h"
#include "common/random.h"
#include "corpusgen/synthetic.h"

namespace ndss {
namespace {

Corpus MakeCorpus(std::initializer_list<std::vector<Token>> texts) {
  Corpus corpus;
  for (const auto& text : texts) corpus.AddText(text);
  return corpus;
}

TEST(SuffixArrayTest, ContainsBasic) {
  Corpus corpus = MakeCorpus({{1, 2, 3, 4, 5}, {6, 7, 8}});
  SuffixArrayIndex index = SuffixArrayIndex::Build(corpus);
  EXPECT_TRUE(index.Contains(std::vector<Token>{2, 3, 4}));
  EXPECT_TRUE(index.Contains(std::vector<Token>{1, 2, 3, 4, 5}));
  EXPECT_TRUE(index.Contains(std::vector<Token>{8}));
  EXPECT_FALSE(index.Contains(std::vector<Token>{4, 3}));
  EXPECT_FALSE(index.Contains(std::vector<Token>{5, 6}))
      << "matches must not cross text boundaries";
  EXPECT_TRUE(index.Contains(std::vector<Token>{}));
}

TEST(SuffixArrayTest, CountOccurrences) {
  Corpus corpus = MakeCorpus({{1, 2, 1, 2, 1}, {2, 1, 2}});
  SuffixArrayIndex index = SuffixArrayIndex::Build(corpus);
  EXPECT_EQ(index.CountOccurrences(std::vector<Token>{1, 2}), 3u);
  EXPECT_EQ(index.CountOccurrences(std::vector<Token>{2, 1}), 3u);
  EXPECT_EQ(index.CountOccurrences(std::vector<Token>{1}), 4u);
  EXPECT_EQ(index.CountOccurrences(std::vector<Token>{9}), 0u);
  EXPECT_EQ(index.CountOccurrences(std::vector<Token>{1, 2, 1, 2, 1}), 1u);
}

TEST(SuffixArrayTest, FindOccurrencesPositions) {
  Corpus corpus = MakeCorpus({{5, 9, 5, 9}, {9, 5}});
  SuffixArrayIndex index = SuffixArrayIndex::Build(corpus);
  auto occurrences = index.FindOccurrences(std::vector<Token>{9, 5}, 0);
  ASSERT_EQ(occurrences.size(), 2u);
  // Sort-order agnostic check.
  std::vector<SuffixArrayIndex::Occurrence> expected = {{0, 1}, {1, 0}};
  for (const auto& e : expected) {
    EXPECT_TRUE(std::find(occurrences.begin(), occurrences.end(), e) !=
                occurrences.end());
  }
  EXPECT_EQ(index.FindOccurrences(std::vector<Token>{5}, 2).size(), 2u);
}

TEST(SuffixArrayTest, LongestPrefixMatch) {
  Corpus corpus = MakeCorpus({{10, 20, 30, 40, 50}});
  SuffixArrayIndex index = SuffixArrayIndex::Build(corpus);
  EXPECT_EQ(index.LongestPrefixMatch(std::vector<Token>{10, 20, 30, 99}), 3u);
  EXPECT_EQ(index.LongestPrefixMatch(std::vector<Token>{30, 40, 50, 60}), 3u);
  EXPECT_EQ(index.LongestPrefixMatch(std::vector<Token>{99}), 0u);
  EXPECT_EQ(index.LongestPrefixMatch(std::vector<Token>{10, 20, 30, 40, 50}),
            5u);
  EXPECT_EQ(index.LongestPrefixMatch(std::vector<Token>{50, 10}), 1u)
      << "match must stop at the text boundary";
}

TEST(SuffixArrayTest, AgreesWithRabinKarpOnRandomCorpus) {
  SyntheticCorpusOptions options;
  options.num_texts = 50;
  options.min_text_length = 20;
  options.max_text_length = 100;
  options.vocab_size = 20;  // tiny vocab → many repeats
  options.seed = 12;
  SyntheticCorpus sc = GenerateSyntheticCorpus(options);
  SuffixArrayIndex index = SuffixArrayIndex::Build(sc.corpus);

  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t length = 1 + rng.Uniform(6);
    std::vector<Token> pattern(length);
    for (auto& token : pattern) {
      token = static_cast<Token>(rng.Uniform(20));
    }
    ASSERT_EQ(index.Contains(pattern), ContainsVerbatim(sc.corpus, pattern))
        << "trial " << trial;
  }
}

TEST(SuffixArrayTest, CountMatchesNaiveScan) {
  SyntheticCorpusOptions options;
  options.num_texts = 20;
  options.min_text_length = 30;
  options.max_text_length = 60;
  options.vocab_size = 5;
  options.seed = 13;
  SyntheticCorpus sc = GenerateSyntheticCorpus(options);
  SuffixArrayIndex index = SuffixArrayIndex::Build(sc.corpus);

  Rng rng(8);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t length = 1 + rng.Uniform(4);
    std::vector<Token> pattern(length);
    for (auto& token : pattern) token = static_cast<Token>(rng.Uniform(5));
    uint64_t naive = 0;
    for (size_t i = 0; i < sc.corpus.num_texts(); ++i) {
      const auto text = sc.corpus.text(i);
      for (size_t p = 0; p + length <= text.size(); ++p) {
        if (std::equal(pattern.begin(), pattern.end(), text.begin() + p)) {
          ++naive;
        }
      }
    }
    ASSERT_EQ(index.CountOccurrences(pattern), naive) << "trial " << trial;
  }
}

TEST(SuffixArrayTest, EmptyCorpus) {
  Corpus corpus;
  SuffixArrayIndex index = SuffixArrayIndex::Build(corpus);
  EXPECT_FALSE(index.Contains(std::vector<Token>{1}));
  EXPECT_EQ(index.LongestPrefixMatch(std::vector<Token>{1}), 0u);
  EXPECT_EQ(index.CountOccurrences(std::vector<Token>{1}), 0u);
}

TEST(SuffixArrayTest, SingleTokenTexts) {
  Corpus corpus = MakeCorpus({{7}, {7}, {8}});
  SuffixArrayIndex index = SuffixArrayIndex::Build(corpus);
  EXPECT_EQ(index.CountOccurrences(std::vector<Token>{7}), 2u);
  EXPECT_EQ(index.CountOccurrences(std::vector<Token>{8}), 1u);
  EXPECT_FALSE(index.Contains(std::vector<Token>{7, 7}));
}

}  // namespace
}  // namespace ndss
