// Tests of the pluggable sketching subsystem: the kIndependent scheme's
// bit-identity with the original HashFamily (the v2-compat contract), the
// C-MinHash circulant derivation, the IndexMeta v3 format field, the
// end-to-end correctness of C-MinHash indexes against the brute-force
// ground truth, and the papers' estimator-quality claim (C-MinHash MSE no
// worse than k-independent) checked statistically over ~1k sequence pairs.

#include "sketch/sketch_scheme.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <set>
#include <tuple>
#include <vector>

#include "baseline/brute_force.h"
#include "common/coding.h"
#include "common/crc32c.h"
#include "common/file_io.h"
#include "common/random.h"
#include "corpusgen/synthetic.h"
#include "hash/hash_family.h"
#include "index/index_builder.h"
#include "index/index_meta.h"
#include "index/inverted_index_reader.h"
#include "query/searcher.h"
#include "text/corpus_file.h"
#include "window/window_generator.h"

namespace ndss {
namespace {

class SketchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ndss_sketch_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

std::vector<Token> RandomTokens(size_t n, uint32_t vocab, uint64_t seed) {
  Rng rng(seed);
  std::vector<Token> tokens(n);
  for (size_t i = 0; i < n; ++i) {
    tokens[i] = static_cast<Token>(rng.Uniform(vocab));
  }
  return tokens;
}

// ---------------------------------------------------------------------------
// Scheme mechanics
// ---------------------------------------------------------------------------

TEST_F(SketchTest, KIndependentBitIdenticalToHashFamily) {
  for (const auto& [k, seed] : std::vector<std::pair<uint32_t, uint64_t>>{
           {1, 0}, {4, 7}, {16, 0x5eed5eed5eed5eedULL}, {70, 123456789}}) {
    const HashFamily family(k, seed);
    const SketchScheme scheme(SketchSchemeId::kIndependent, k, seed);
    ASSERT_EQ(scheme.k(), k);
    ASSERT_EQ(scheme.seed(), seed);
    for (uint32_t f = 0; f < k; ++f) {
      for (Token token : {Token{0}, Token{1}, Token{42}, Token{999999},
                          Token{0xffffffff}}) {
        ASSERT_EQ(scheme.Hash(f, token), family.Hash(f, token))
            << "k=" << k << " seed=" << seed << " f=" << f;
      }
    }
    const std::vector<Token> tokens = RandomTokens(200, 1000, seed + 1);
    const MinHashSketch a = ComputeSketch(family, tokens.data(), tokens.size());
    const MinHashSketch b = ComputeSketch(scheme, tokens.data(), tokens.size());
    ASSERT_EQ(a.min_hashes, b.min_hashes);
    ASSERT_EQ(a.argmin_tokens, b.argmin_tokens);
  }
}

TEST_F(SketchTest, HashDecomposesThroughBase) {
  for (SketchSchemeId id :
       {SketchSchemeId::kIndependent, SketchSchemeId::kCMinHash}) {
    const SketchScheme scheme(id, 70, 99);  // k > 64 exercises rotation wrap
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
      const Token token = static_cast<Token>(rng.Next());
      const uint64_t base = scheme.BaseHash(token);
      for (uint32_t f = 0; f < scheme.k(); ++f) {
        ASSERT_EQ(scheme.Hash(f, token), scheme.HashFromBase(f, base));
      }
    }
  }
}

TEST_F(SketchTest, RowFillsMatchScalarHashes) {
  const std::vector<Token> tokens = RandomTokens(500, 1 << 20, 11);
  for (SketchSchemeId id :
       {SketchSchemeId::kIndependent, SketchSchemeId::kCMinHash}) {
    const SketchScheme scheme(id, 67, 0xabcdef);
    std::vector<uint64_t> base(tokens.size());
    scheme.FillBaseRow(tokens.data(), tokens.size(), base.data());
    for (size_t i = 0; i < tokens.size(); ++i) {
      ASSERT_EQ(base[i], scheme.BaseHash(tokens[i]));
    }
    std::vector<uint64_t> direct(tokens.size());
    std::vector<uint64_t> derived(tokens.size());
    for (uint32_t f : {0u, 1u, 63u, 64u, 66u}) {
      scheme.FillHashRow(f, tokens.data(), tokens.size(), direct.data());
      scheme.FillHashRowFromBase(f, base.data(), tokens.size(),
                                 derived.data());
      ASSERT_EQ(direct, derived) << "func " << f;
      for (size_t i = 0; i < tokens.size(); ++i) {
        ASSERT_EQ(direct[i], scheme.Hash(f, tokens[i]));
      }
    }
  }
}

TEST_F(SketchTest, SchemesAreDeterministicAndDistinct) {
  const SketchScheme a(SketchSchemeId::kCMinHash, 8, 42);
  const SketchScheme b(SketchSchemeId::kCMinHash, 8, 42);
  const SketchScheme indep(SketchSchemeId::kIndependent, 8, 42);
  const SketchScheme other_seed(SketchSchemeId::kCMinHash, 8, 43);
  int same_as_indep = 0, same_as_other_seed = 0;
  for (uint32_t f = 0; f < 8; ++f) {
    for (Token token = 0; token < 64; ++token) {
      ASSERT_EQ(a.Hash(f, token), b.Hash(f, token));
      if (a.Hash(f, token) == indep.Hash(f, token)) ++same_as_indep;
      if (a.Hash(f, token) == other_seed.Hash(f, token)) ++same_as_other_seed;
    }
  }
  // 512 comparisons of 64-bit values: any collision at all is ~0 w.h.p.
  EXPECT_EQ(same_as_indep, 0);
  EXPECT_EQ(same_as_other_seed, 0);
}

TEST_F(SketchTest, CMinHashFunctionsAreDistinctPermutations) {
  // Distinct tokens never collide under one function (bijection), and
  // different functions disagree on the same token.
  const SketchScheme scheme(SketchSchemeId::kCMinHash, 70, 1);
  const std::vector<Token> tokens = RandomTokens(300, 1u << 30, 5);
  for (uint32_t f : {0u, 1u, 64u, 69u}) {
    std::set<uint64_t> values;
    for (Token token : tokens) values.insert(scheme.Hash(f, token));
    // Random token draws may repeat; distinct hashes == distinct tokens.
    const std::set<Token> distinct(tokens.begin(), tokens.end());
    EXPECT_EQ(values.size(), distinct.size()) << "func " << f;
  }
  int agreements = 0;
  for (uint32_t f = 1; f < 70; ++f) {
    for (int i = 0; i < 20; ++i) {
      if (scheme.Hash(f, tokens[i]) == scheme.Hash(0, tokens[i])) {
        ++agreements;
      }
    }
  }
  EXPECT_EQ(agreements, 0);
}

TEST_F(SketchTest, ParseAndNameRoundTrip) {
  for (SketchSchemeId id :
       {SketchSchemeId::kIndependent, SketchSchemeId::kCMinHash}) {
    auto parsed = ParseSketchSchemeName(SketchSchemeName(id));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, id);
  }
  auto bad = ParseSketchSchemeName("simhash");
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
  EXPECT_NE(bad.status().ToString().find("cminhash"), std::string::npos);
}

TEST_F(SketchTest, ValidateSchemeIdRejectsUnknown) {
  EXPECT_TRUE(ValidateSketchSchemeId(0, "ctx").ok());
  EXPECT_TRUE(ValidateSketchSchemeId(1, "ctx").ok());
  const Status bad = ValidateSketchSchemeId(7, "some/index.meta");
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.IsCorruption());
  EXPECT_NE(bad.ToString().find("some/index.meta"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Window generation
// ---------------------------------------------------------------------------

TEST_F(SketchTest, SchemeWindowsMatchFamilyWindowsForKIndependent) {
  const HashFamily family(4, 77);
  const SketchScheme scheme(SketchSchemeId::kIndependent, 4, 77);
  const std::vector<Token> text = RandomTokens(400, 50, 9);
  WindowGenerator generator;
  for (uint32_t f = 0; f < 4; ++f) {
    std::vector<CompactWindow> from_family, from_scheme;
    generator.Generate(family, f, text, 10, &from_family);
    generator.Generate(scheme, f, text, 10, &from_scheme);
    SortWindows(&from_family);
    SortWindows(&from_scheme);
    ASSERT_FALSE(from_family.empty());
    ASSERT_EQ(from_family.size(), from_scheme.size());
    for (size_t i = 0; i < from_family.size(); ++i) {
      ASSERT_EQ(from_family[i].l, from_scheme[i].l);
      ASSERT_EQ(from_family[i].c, from_scheme[i].c);
      ASSERT_EQ(from_family[i].r, from_scheme[i].r);
    }
  }
}

TEST_F(SketchTest, GenerateFromBaseMatchesDirectGeneration) {
  const SketchScheme scheme(SketchSchemeId::kCMinHash, 6, 123);
  const std::vector<Token> text = RandomTokens(600, 80, 21);
  std::vector<uint64_t> base(text.size());
  scheme.FillBaseRow(text.data(), text.size(), base.data());
  WindowGenerator generator;
  for (uint32_t f = 0; f < 6; ++f) {
    std::vector<CompactWindow> direct, from_base;
    generator.Generate(scheme, f, text, 12, &direct);
    generator.GenerateFromBase(scheme, f, base, 12, &from_base);
    SortWindows(&direct);
    SortWindows(&from_base);
    ASSERT_FALSE(direct.empty());
    ASSERT_EQ(direct.size(), from_base.size());
    for (size_t i = 0; i < direct.size(); ++i) {
      ASSERT_EQ(direct[i].l, from_base[i].l);
      ASSERT_EQ(direct[i].c, from_base[i].c);
      ASSERT_EQ(direct[i].r, from_base[i].r);
    }
  }
}

// ---------------------------------------------------------------------------
// IndexMeta v3
// ---------------------------------------------------------------------------

TEST_F(SketchTest, MetaV3RoundTripsSketchScheme) {
  ASSERT_TRUE(CreateDirectories(dir_).ok());
  IndexMeta meta;
  meta.k = 9;
  meta.seed = 1234;
  meta.t = 17;
  meta.num_texts = 5;
  meta.total_tokens = 500;
  meta.sketch = SketchSchemeId::kCMinHash;
  ASSERT_TRUE(meta.Save(dir_).ok());
  auto loaded = IndexMeta::Load(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->sketch, SketchSchemeId::kCMinHash);
  EXPECT_EQ(loaded->k, 9u);
  EXPECT_EQ(loaded->seed, 1234u);
  EXPECT_EQ(loaded->t, 17u);
  EXPECT_TRUE(SameSketchFamily(meta, *loaded));
}

/// Serializes a v2 meta exactly as the pre-v3 code did.
std::string EncodeV2Meta(uint32_t k, uint64_t seed, uint32_t t) {
  std::string data;
  PutFixed64(&data, 0x324154454d58444eULL);  // "NDXMETA2"
  PutFixed32(&data, k);
  PutFixed64(&data, seed);
  PutFixed32(&data, t);
  PutFixed64(&data, 3);    // num_texts
  PutFixed64(&data, 333);  // total_tokens
  PutFixed32(&data, 64);   // zone_step
  PutFixed32(&data, 256);  // zone_threshold
  PutFixed32(&data, crc32c::Mask(crc32c::Value(data.data(), data.size())));
  return data;
}

TEST_F(SketchTest, MetaV2LoadsAsKIndependent) {
  ASSERT_TRUE(CreateDirectories(dir_).ok());
  ASSERT_TRUE(
      WriteStringToFile(dir_ + "/index.meta", EncodeV2Meta(7, 99, 13)).ok());
  auto loaded = IndexMeta::Load(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->sketch, SketchSchemeId::kIndependent);
  EXPECT_EQ(loaded->k, 7u);
  EXPECT_EQ(loaded->seed, 99u);
  EXPECT_EQ(loaded->t, 13u);
  EXPECT_EQ(loaded->num_texts, 3u);
}

TEST_F(SketchTest, MetaWithUnknownSchemeIdIsLoudCorruption) {
  ASSERT_TRUE(CreateDirectories(dir_).ok());
  // A well-formed v3 meta (valid magic and checksum) carrying scheme id 9:
  // the loader must reject it loudly, not misread it as some valid scheme.
  std::string data;
  PutFixed64(&data, 0x334154454d58444eULL);  // "NDXMETA3"
  PutFixed32(&data, 4);                      // k
  PutFixed64(&data, 1);                      // seed
  PutFixed32(&data, 10);                     // t
  PutFixed64(&data, 0);                      // num_texts
  PutFixed64(&data, 0);                      // total_tokens
  PutFixed32(&data, 64);                     // zone_step
  PutFixed32(&data, 256);                    // zone_threshold
  PutFixed32(&data, 9);                      // unknown sketch scheme
  PutFixed32(&data, crc32c::Mask(crc32c::Value(data.data(), data.size())));
  ASSERT_TRUE(WriteStringToFile(dir_ + "/index.meta", data).ok());
  auto loaded = IndexMeta::Load(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
  EXPECT_NE(loaded.status().ToString().find("sketch scheme"),
            std::string::npos);
}

TEST_F(SketchTest, SameSketchFamilyComparesAllFour) {
  IndexMeta a;
  a.sketch = SketchSchemeId::kCMinHash;
  IndexMeta b = a;
  EXPECT_TRUE(SameSketchFamily(a, b));
  b.sketch = SketchSchemeId::kIndependent;
  EXPECT_FALSE(SameSketchFamily(a, b));
  b = a;
  b.k += 1;
  EXPECT_FALSE(SameSketchFamily(a, b));
  b = a;
  b.seed += 1;
  EXPECT_FALSE(SameSketchFamily(a, b));
  b = a;
  b.t += 1;
  EXPECT_FALSE(SameSketchFamily(a, b));
  b = a;
  b.num_texts += 1;  // corpus size is not part of the family
  EXPECT_TRUE(SameSketchFamily(a, b));
}

// ---------------------------------------------------------------------------
// End-to-end: C-MinHash indexes answer correctly and consistently
// ---------------------------------------------------------------------------

using SequenceKey = std::tuple<TextId, uint32_t, uint32_t>;

std::set<SequenceKey> ExpandRectangles(
    const std::vector<TextMatchRectangle>& rectangles, uint32_t t) {
  std::set<SequenceKey> sequences;
  for (const TextMatchRectangle& tr : rectangles) {
    for (uint32_t i = tr.rect.x_begin; i <= tr.rect.x_end; ++i) {
      for (uint32_t j = tr.rect.y_begin; j <= tr.rect.y_end; ++j) {
        if (j >= i && j - i + 1 >= t) sequences.insert({tr.text, i, j});
      }
    }
  }
  return sequences;
}

std::set<SequenceKey> BaselineSequences(
    const std::vector<BaselineMatch>& matches) {
  std::set<SequenceKey> sequences;
  for (const BaselineMatch& m : matches) {
    sequences.insert({m.text, m.begin, m.end});
  }
  return sequences;
}

TEST_F(SketchTest, CMinHashSearchMatchesBruteForce) {
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 50;
  corpus_options.min_text_length = 40;
  corpus_options.max_text_length = 120;
  corpus_options.vocab_size = 200;
  corpus_options.plant_rate = 0.4;
  corpus_options.min_plant_length = 25;
  corpus_options.max_plant_length = 50;
  corpus_options.plant_noise = 0.1;
  corpus_options.seed = 31;
  SyntheticCorpus sc = GenerateSyntheticCorpus(corpus_options);

  IndexBuildOptions build;
  build.k = 6;
  build.t = 15;
  build.sketch = SketchSchemeId::kCMinHash;
  build.zone_step = 8;
  build.zone_threshold = 32;
  ASSERT_TRUE(BuildIndexInMemory(sc.corpus, dir_, build).ok());
  auto searcher = Searcher::Open(dir_);
  ASSERT_TRUE(searcher.ok()) << searcher.status().ToString();
  ASSERT_EQ(searcher->meta().sketch, SketchSchemeId::kCMinHash);
  const SketchScheme scheme(build.sketch, build.k, build.seed);

  Rng rng(7);
  for (int q = 0; q < 5; ++q) {
    const TextId source = static_cast<TextId>(rng.Uniform(50));
    const auto text = sc.corpus.text(source);
    const uint32_t length = 20 + static_cast<uint32_t>(rng.Uniform(
                                     std::min<size_t>(40, text.size() - 20)));
    const uint32_t begin =
        static_cast<uint32_t>(rng.Uniform(text.size() - length + 1));
    const std::vector<Token> query = PerturbSequence(
        text, begin, length, 0.15, corpus_options.vocab_size, rng);

    for (double theta : {0.5, 0.7, 1.0}) {
      SearchOptions options;
      options.theta = theta;
      options.use_prefix_filter = false;
      auto result = searcher->Search(query, options);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      const std::set<SequenceKey> got =
          ExpandRectangles(result->rectangles, build.t);
      const std::set<SequenceKey> expected = BaselineSequences(
          BruteForceApproxSearch(sc.corpus, scheme, query, theta, build.t));
      ASSERT_EQ(got, expected) << "query " << q << " theta " << theta;
    }
  }
}

/// Reads every window of every list of the index at `dir` as KeyedWindows
/// (text ids offset by func so all k functions land in one comparable set).
std::vector<KeyedWindow> DumpIndex(const std::string& dir, uint32_t k) {
  std::vector<KeyedWindow> all;
  for (uint32_t func = 0; func < k; ++func) {
    auto reader =
        InvertedIndexReader::Open(IndexMeta::InvertedIndexPath(dir, func));
    EXPECT_TRUE(reader.ok()) << reader.status().ToString();
    for (const ListMeta& meta : reader->directory()) {
      std::vector<PostedWindow> windows;
      EXPECT_TRUE(reader->ReadList(meta, &windows).ok());
      for (const PostedWindow& w : windows) {
        all.push_back(
            KeyedWindow{meta.key, w.text + func * 1000000u, w.l, w.c, w.r});
      }
    }
  }
  std::sort(all.begin(), all.end(), KeyedWindowLess);
  return all;
}

TEST_F(SketchTest, CMinHashExternalBuildBitIdenticalToInMemory) {
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 80;
  corpus_options.min_text_length = 60;
  corpus_options.max_text_length = 200;
  corpus_options.vocab_size = 300;
  corpus_options.plant_rate = 0.3;
  corpus_options.seed = 5;
  Corpus corpus = GenerateSyntheticCorpus(corpus_options).corpus;
  ASSERT_TRUE(CreateDirectories(dir_).ok());
  const std::string corpus_path = dir_ + "/corpus.crp";
  ASSERT_TRUE(WriteCorpusFile(corpus_path, corpus).ok());

  IndexBuildOptions options;
  options.k = 4;
  options.t = 20;
  options.sketch = SketchSchemeId::kCMinHash;
  const std::string mem_dir = dir_ + "/mem";
  ASSERT_TRUE(BuildIndexInMemory(corpus, mem_dir, options).ok());

  IndexBuildOptions external = options;
  external.batch_tokens = 2000;  // force many batches
  external.num_partitions = 4;
  const std::string ext_dir = dir_ + "/ext";
  ASSERT_TRUE(BuildIndexExternal(corpus_path, ext_dir, external).ok());

  EXPECT_EQ(DumpIndex(mem_dir, options.k), DumpIndex(ext_dir, options.k));
  auto mem_meta = IndexMeta::Load(mem_dir);
  auto ext_meta = IndexMeta::Load(ext_dir);
  ASSERT_TRUE(mem_meta.ok());
  ASSERT_TRUE(ext_meta.ok());
  EXPECT_EQ(mem_meta->sketch, SketchSchemeId::kCMinHash);
  EXPECT_TRUE(SameSketchFamily(*mem_meta, *ext_meta));

  // Parallel in-memory build (base rows shared across threads) is also
  // bit-identical.
  IndexBuildOptions parallel = options;
  parallel.num_threads = 4;
  const std::string par_dir = dir_ + "/par";
  ASSERT_TRUE(BuildIndexInMemory(corpus, par_dir, parallel).ok());
  EXPECT_EQ(DumpIndex(mem_dir, options.k), DumpIndex(par_dir, options.k));
}

TEST_F(SketchTest, CMinHashDiskAndMemorySearchersAgree) {
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_texts = 40;
  corpus_options.vocab_size = 150;
  corpus_options.plant_rate = 0.4;
  corpus_options.seed = 13;
  SyntheticCorpus sc = GenerateSyntheticCorpus(corpus_options);

  IndexBuildOptions build;
  build.k = 8;
  build.t = 15;
  build.sketch = SketchSchemeId::kCMinHash;
  ASSERT_TRUE(BuildIndexInMemory(sc.corpus, dir_, build).ok());
  auto disk = Searcher::Open(dir_);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  auto memory = Searcher::InMemory(sc.corpus, build);
  ASSERT_TRUE(memory.ok()) << memory.status().ToString();

  Rng rng(17);
  for (int q = 0; q < 6; ++q) {
    const TextId source = static_cast<TextId>(rng.Uniform(40));
    const auto text = sc.corpus.text(source);
    const uint32_t length =
        std::min<uint32_t>(30, static_cast<uint32_t>(text.size()));
    const uint32_t begin =
        static_cast<uint32_t>(rng.Uniform(text.size() - length + 1));
    const std::vector<Token> query(text.begin() + begin,
                                   text.begin() + begin + length);
    SearchOptions options;
    options.theta = 0.7;
    auto from_disk = disk->Search(query, options);
    auto from_memory = memory->Search(query, options);
    ASSERT_TRUE(from_disk.ok());
    ASSERT_TRUE(from_memory.ok());
    EXPECT_EQ(ExpandRectangles(from_disk->rectangles, build.t),
              ExpandRectangles(from_memory->rectangles, build.t))
        << "query " << q;
  }
}

// ---------------------------------------------------------------------------
// Estimator quality: the papers' variance claim
// ---------------------------------------------------------------------------

TEST_F(SketchTest, CMinHashMseNoWorseThanKIndependent) {
  // ~1k random sequence pairs at k=16: squared error of the sketch estimate
  // against the exact distinct Jaccard, averaged per scheme. The C-MinHash
  // papers prove the circulant estimator's variance is no larger than
  // k-independent MinHash's (strictly smaller for most similarities); with
  // a fixed seed this test is deterministic, and the 10% tolerance absorbs
  // the sampling noise of the finite pair set without masking a real
  // regression (an implementation bug — e.g. correlated functions — shows
  // up as a multiplicative MSE blowup, not a few percent).
  constexpr uint32_t kK = 16;
  constexpr int kPairs = 1000;
  const SketchScheme indep(SketchSchemeId::kIndependent, kK, 0xfeed);
  const SketchScheme cmin(SketchSchemeId::kCMinHash, kK, 0xfeed);

  Rng rng(2024);
  double se_indep = 0, se_cmin = 0;
  std::vector<uint64_t> scratch;
  for (int p = 0; p < kPairs; ++p) {
    // Overlapping draws from a shared pool give a spread of true Jaccards.
    const uint32_t vocab = 30 + static_cast<uint32_t>(rng.Uniform(300));
    const size_t na = 30 + rng.Uniform(100);
    const size_t nb = 30 + rng.Uniform(100);
    std::vector<Token> a(na), b(nb);
    for (size_t i = 0; i < na; ++i) {
      a[i] = static_cast<Token>(rng.Uniform(vocab));
    }
    // b shares a prefix of a (perturbed), rest fresh: correlated pairs.
    const size_t shared = rng.Uniform(std::min(na, nb));
    for (size_t i = 0; i < nb; ++i) {
      b[i] = i < shared ? a[i] : static_cast<Token>(rng.Uniform(vocab));
    }
    const double truth = ExactDistinctJaccard(a.data(), na, b.data(), nb);
    const double est_indep =
        EstimateJaccard(ComputeSketch(indep, a.data(), na, &scratch),
                        ComputeSketch(indep, b.data(), nb, &scratch));
    const double est_cmin =
        EstimateJaccard(ComputeSketch(cmin, a.data(), na, &scratch),
                        ComputeSketch(cmin, b.data(), nb, &scratch));
    se_indep += (est_indep - truth) * (est_indep - truth);
    se_cmin += (est_cmin - truth) * (est_cmin - truth);
  }
  const double mse_indep = se_indep / kPairs;
  const double mse_cmin = se_cmin / kPairs;
  // Sanity: both estimators actually work at k=16.
  EXPECT_LT(mse_indep, 0.05);
  EXPECT_LT(mse_cmin, 0.05);
  EXPECT_LE(mse_cmin, mse_indep * 1.10)
      << "C-MinHash MSE " << mse_cmin << " vs k-independent " << mse_indep;
}

}  // namespace
}  // namespace ndss
