#include "rmq/rmq.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"

namespace ndss {
namespace {

size_t NaiveArgMin(const std::vector<uint64_t>& values, size_t l, size_t r) {
  size_t best = l;
  for (size_t i = l + 1; i <= r; ++i) {
    if (values[i] < values[best]) best = i;
  }
  return best;
}

class RmqTest : public ::testing::TestWithParam<RmqKind> {};

TEST_P(RmqTest, SingleElement) {
  std::vector<uint64_t> values = {42};
  auto rmq = MakeRmq(GetParam(), values);
  EXPECT_EQ(rmq->ArgMin(0, 0), 0u);
  EXPECT_EQ(rmq->size(), 1u);
}

TEST_P(RmqTest, SmallKnownArray) {
  std::vector<uint64_t> values = {5, 3, 8, 1, 9, 1, 7};
  auto rmq = MakeRmq(GetParam(), values);
  EXPECT_EQ(rmq->ArgMin(0, 6), 3u);  // leftmost of the two 1s
  EXPECT_EQ(rmq->ArgMin(4, 6), 5u);
  EXPECT_EQ(rmq->ArgMin(0, 2), 1u);
  EXPECT_EQ(rmq->ArgMin(2, 2), 2u);
  EXPECT_EQ(rmq->ArgMin(3, 5), 3u);
}

TEST_P(RmqTest, LeftmostTieBreak) {
  std::vector<uint64_t> values = {2, 2, 2, 2, 2};
  auto rmq = MakeRmq(GetParam(), values);
  for (size_t l = 0; l < values.size(); ++l) {
    for (size_t r = l; r < values.size(); ++r) {
      EXPECT_EQ(rmq->ArgMin(l, r), l);
    }
  }
}

TEST_P(RmqTest, IncreasingAndDecreasing) {
  std::vector<uint64_t> inc = {1, 2, 3, 4, 5, 6, 7, 8};
  auto rmq_inc = MakeRmq(GetParam(), inc);
  for (size_t l = 0; l < inc.size(); ++l) {
    for (size_t r = l; r < inc.size(); ++r) {
      EXPECT_EQ(rmq_inc->ArgMin(l, r), l);
    }
  }
  std::vector<uint64_t> dec = {8, 7, 6, 5, 4, 3, 2, 1};
  auto rmq_dec = MakeRmq(GetParam(), dec);
  for (size_t l = 0; l < dec.size(); ++l) {
    for (size_t r = l; r < dec.size(); ++r) {
      EXPECT_EQ(rmq_dec->ArgMin(l, r), r);
    }
  }
}

TEST_P(RmqTest, ExhaustiveAgainstNaiveRandom) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 101);
  for (size_t n : {2u, 3u, 17u, 64u, 100u}) {
    std::vector<uint64_t> values(n);
    for (auto& v : values) v = rng.Uniform(20);  // many duplicates
    auto rmq = MakeRmq(GetParam(), values);
    for (size_t l = 0; l < n; ++l) {
      for (size_t r = l; r < n; ++r) {
        ASSERT_EQ(rmq->ArgMin(l, r), NaiveArgMin(values, l, r))
            << "n=" << n << " l=" << l << " r=" << r;
      }
    }
  }
}

TEST_P(RmqTest, LargeRandomSpotChecks) {
  Rng rng(7);
  const size_t n = 100000;
  std::vector<uint64_t> values(n);
  for (auto& v : values) v = rng.Next();
  auto rmq = MakeRmq(GetParam(), values);
  for (int trial = 0; trial < 2000; ++trial) {
    size_t l = rng.Uniform(n);
    size_t r = l + rng.Uniform(n - l);
    ASSERT_EQ(rmq->ArgMin(l, r), NaiveArgMin(values, l, r));
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, RmqTest,
                         ::testing::Values(RmqKind::kSegmentTree,
                                           RmqKind::kSparseTable,
                                           RmqKind::kFischerHeun),
                         [](const auto& info) {
                           return RmqKindName(info.param);
                         });

TEST(RmqFactoryTest, NamesAreStable) {
  EXPECT_STREQ(RmqKindName(RmqKind::kSegmentTree), "segment_tree");
  EXPECT_STREQ(RmqKindName(RmqKind::kSparseTable), "sparse_table");
  EXPECT_STREQ(RmqKindName(RmqKind::kFischerHeun), "fischer_heun");
}

}  // namespace
}  // namespace ndss
