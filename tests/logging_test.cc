#include "common/logging.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/stopwatch.h"
#include "index/index_meta.h"

namespace ndss {
namespace {

TEST(LoggingTest, LevelRoundTrips) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, SuppressedMessagesDoNotCrash) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  NDSS_LOG(kDebug) << "this should be filtered " << 42;
  NDSS_LOG(kInfo) << "and this " << 3.14;
  SetLogLevel(original);
  SUCCEED();
}

TEST(LoggingTest, CheckPassesOnTrueCondition) {
  NDSS_CHECK(1 + 1 == 2) << "never shown";
  SUCCEED();
}

TEST(LoggingDeathTest, CheckAbortsOnFalseCondition) {
  EXPECT_DEATH({ NDSS_CHECK(false) << "boom"; }, "Check failed");
}

TEST(StopwatchTest, MeasuresNonNegativeMonotonicTime) {
  Stopwatch watch;
  const double first = watch.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  const double second = watch.ElapsedSeconds();
  EXPECT_GE(second, first);
  EXPECT_NEAR(watch.ElapsedMillis(), watch.ElapsedSeconds() * 1e3,
              watch.ElapsedSeconds() * 100);
  watch.Restart();
  EXPECT_LT(watch.ElapsedSeconds(), second + 1.0);
}

TEST(IndexMetaTest, SaveLoadRoundTrip) {
  const std::string dir = ::testing::TempDir() + "/ndss_meta_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  IndexMeta meta;
  meta.k = 12;
  meta.seed = 0xabcdef;
  meta.t = 37;
  meta.num_texts = 999;
  meta.total_tokens = 123456789ull;
  meta.zone_step = 32;
  meta.zone_threshold = 100;
  ASSERT_TRUE(meta.Save(dir).ok());
  auto loaded = IndexMeta::Load(dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->k, 12u);
  EXPECT_EQ(loaded->seed, 0xabcdefull);
  EXPECT_EQ(loaded->t, 37u);
  EXPECT_EQ(loaded->num_texts, 999u);
  EXPECT_EQ(loaded->total_tokens, 123456789ull);
  EXPECT_EQ(loaded->zone_step, 32u);
  EXPECT_EQ(loaded->zone_threshold, 100u);
  std::filesystem::remove_all(dir);
}

TEST(IndexMetaTest, PathsAreDistinctPerFunction) {
  EXPECT_NE(IndexMeta::InvertedIndexPath("/x", 0),
            IndexMeta::InvertedIndexPath("/x", 1));
  EXPECT_EQ(IndexMeta::InvertedIndexPath("/x", 3), "/x/inverted.3.ndx");
}

TEST(IndexMetaTest, LoadFromMissingDirFails) {
  EXPECT_FALSE(IndexMeta::Load("/nonexistent_dir_xyz").ok());
}

}  // namespace
}  // namespace ndss
