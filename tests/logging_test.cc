#include "common/logging.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <sstream>
#include <thread>

#include "common/stopwatch.h"
#include "index/index_meta.h"

namespace ndss {
namespace {

TEST(LoggingTest, LevelRoundTrips) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, SuppressedMessagesDoNotCrash) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  NDSS_LOG(kDebug) << "this should be filtered " << 42;
  NDSS_LOG(kInfo) << "and this " << 3.14;
  SetLogLevel(original);
  SUCCEED();
}

TEST(LoggingTest, CheckPassesOnTrueCondition) {
  NDSS_CHECK(1 + 1 == 2) << "never shown";
  SUCCEED();
}

TEST(LoggingDeathTest, CheckAbortsOnFalseCondition) {
  EXPECT_DEATH({ NDSS_CHECK(false) << "boom"; }, "Check failed");
}

TEST(LoggingTest, SuppressedManipulatorFormats) {
  std::ostringstream zero;
  zero << internal::Suppressed{0};
  EXPECT_EQ(zero.str(), "");
  std::ostringstream three;
  three << internal::Suppressed{3};
  EXPECT_EQ(three.str(), "[3 similar suppressed] ");
}

TEST(LoggingTest, RateLimiterGatesAndCountsSuppressions) {
  internal::LogRateLimiter limiter;
  uint64_t suppressed = 99;
  ASSERT_TRUE(limiter.ShouldLog(0.05, &suppressed));
  EXPECT_EQ(suppressed, 0u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(limiter.ShouldLog(0.05, &suppressed));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(70));
  ASSERT_TRUE(limiter.ShouldLog(0.05, &suppressed));
  EXPECT_EQ(suppressed, 4u) << "rejected calls since the last accepted one";
  // The counter resets on every accepted call.
  std::this_thread::sleep_for(std::chrono::milliseconds(70));
  ASSERT_TRUE(limiter.ShouldLog(0.05, &suppressed));
  EXPECT_EQ(suppressed, 0u);
}

TEST(LoggingTest, RateLimitedMacrosSurviveTightLoops) {
  // The macros expand to multiple statements with line-derived names; this
  // exercises both shapes (including two on adjacent lines) under a level
  // that discards the output, so the test only measures gating logic.
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  for (int i = 0; i < 1000; ++i) {
    NDSS_LOG_EVERY_N(kInfo, 100) << "sampled " << i;
    NDSS_LOG_EVERY_SECONDS(kInfo, 3600.0) << "rate limited " << i;
  }
  SetLogLevel(original);
  SUCCEED();
}

TEST(StopwatchTest, MeasuresNonNegativeMonotonicTime) {
  Stopwatch watch;
  const double first = watch.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  const double second = watch.ElapsedSeconds();
  EXPECT_GE(second, first);
  EXPECT_NEAR(watch.ElapsedMillis(), watch.ElapsedSeconds() * 1e3,
              watch.ElapsedSeconds() * 100);
  watch.Restart();
  EXPECT_LT(watch.ElapsedSeconds(), second + 1.0);
}

TEST(IndexMetaTest, SaveLoadRoundTrip) {
  const std::string dir = ::testing::TempDir() + "/ndss_meta_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  IndexMeta meta;
  meta.k = 12;
  meta.seed = 0xabcdef;
  meta.t = 37;
  meta.num_texts = 999;
  meta.total_tokens = 123456789ull;
  meta.zone_step = 32;
  meta.zone_threshold = 100;
  ASSERT_TRUE(meta.Save(dir).ok());
  auto loaded = IndexMeta::Load(dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->k, 12u);
  EXPECT_EQ(loaded->seed, 0xabcdefull);
  EXPECT_EQ(loaded->t, 37u);
  EXPECT_EQ(loaded->num_texts, 999u);
  EXPECT_EQ(loaded->total_tokens, 123456789ull);
  EXPECT_EQ(loaded->zone_step, 32u);
  EXPECT_EQ(loaded->zone_threshold, 100u);
  std::filesystem::remove_all(dir);
}

TEST(IndexMetaTest, PathsAreDistinctPerFunction) {
  EXPECT_NE(IndexMeta::InvertedIndexPath("/x", 0),
            IndexMeta::InvertedIndexPath("/x", 1));
  EXPECT_EQ(IndexMeta::InvertedIndexPath("/x", 3), "/x/inverted.3.ndx");
}

TEST(IndexMetaTest, LoadFromMissingDirFails) {
  EXPECT_FALSE(IndexMeta::Load("/nonexistent_dir_xyz").ok());
}

}  // namespace
}  // namespace ndss
