#ifndef NDSS_WINDOW_WINDOW_GENERATOR_H_
#define NDSS_WINDOW_WINDOW_GENERATOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "hash/hash_family.h"
#include "rmq/rmq.h"
#include "sketch/sketch_scheme.h"
#include "text/types.h"
#include "window/compact_window.h"

namespace ndss {

/// How the compact-window generator locates range minima.
enum class WindowGenMethod {
  /// Paper's Algorithm 2: divide-and-conquer driven by an RMQ structure.
  /// The RmqKind argument selects the structure (segment tree = ALIGN's
  /// O(n log n); Fischer–Heun = the O(n) bound claimed in the paper).
  kRmqDivideConquer,
  /// Equivalent single-pass monotonic-stack formulation: each Cartesian-tree
  /// node's subtree range is [prev_smaller_or_equal + 1, next_smaller - 1];
  /// emit nodes whose range width is >= t. O(n) time, no auxiliary
  /// structure. Produces the same window set as the divide-and-conquer with
  /// leftmost tie-breaking (verified by tests).
  kMonotonicStack,
};

/// Generates all valid compact windows of `text` under hash function `func`
/// of `family` with length threshold `t >= 1`, appending them to `out` in
/// unspecified order. Uses the monotonic-stack method.
///
/// `scratch` is reused across calls to avoid per-text allocation; pass the
/// same object for every text of a batch.
class WindowGenerator {
 public:
  /// Creates a generator using `method`; `rmq_kind` only matters for
  /// kRmqDivideConquer.
  explicit WindowGenerator(
      WindowGenMethod method = WindowGenMethod::kMonotonicStack,
      RmqKind rmq_kind = RmqKind::kFischerHeun)
      : method_(method), rmq_kind_(rmq_kind) {}

  /// Appends the valid compact windows of `text` under function `func` to
  /// `out`. Windows are emitted with 0-based positions.
  void Generate(const HashFamily& family, uint32_t func,
                std::span<const Token> text, uint32_t t,
                std::vector<CompactWindow>* out);

  /// Same, under function `func` of a pluggable sketch scheme. For a
  /// kIndependent scheme this produces exactly the HashFamily overload's
  /// windows (the hash rows are bit-identical).
  void Generate(const SketchScheme& scheme, uint32_t func,
                std::span<const Token> text, uint32_t t,
                std::vector<CompactWindow>* out);

  /// Same, but derives the hash row from a precomputed base row (see
  /// SketchScheme::FillBaseRow) instead of hashing the tokens — the
  /// C-MinHash fast path, where one σ pass is shared by all k functions.
  /// `base` must be scheme.FillBaseRow of the text this call stands for and
  /// `base.size()` is the text length. Produces exactly the windows of
  /// Generate(scheme, func, text, t, out) for the corresponding text.
  void GenerateFromBase(const SketchScheme& scheme, uint32_t func,
                        std::span<const uint64_t> base, uint32_t t,
                        std::vector<CompactWindow>* out);

  WindowGenMethod method() const { return method_; }
  RmqKind rmq_kind() const { return rmq_kind_; }

 private:
  void GenerateRmq(uint32_t t, std::vector<CompactWindow>* out);
  void GenerateStack(uint32_t t, std::vector<CompactWindow>* out);

  WindowGenMethod method_;
  RmqKind rmq_kind_;
  std::vector<uint64_t> hashes_;       // token hash per position
  std::vector<uint32_t> stack_;        // monotonic stack / DFS stack
  std::vector<uint32_t> range_left_;   // stack method scratch
};

/// Reference implementation of Algorithm 2 by direct recursion with a linear
/// scan for the minimum: O(n^2) worst case. Only for tests (ground truth).
void GenerateCompactWindowsReference(const HashFamily& family, uint32_t func,
                                     std::span<const Token> text, uint32_t t,
                                     std::vector<CompactWindow>* out);

/// Sorts windows by (l, c, r); used by tests to compare generator outputs.
void SortWindows(std::vector<CompactWindow>* windows);

}  // namespace ndss

#endif  // NDSS_WINDOW_WINDOW_GENERATOR_H_
