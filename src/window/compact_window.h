#ifndef NDSS_WINDOW_COMPACT_WINDOW_H_
#define NDSS_WINDOW_COMPACT_WINDOW_H_

#include <cstdint>

namespace ndss {

/// A compact window (l, c, r) within one text under one hash function
/// (Section 3.3 of the paper): it represents every sequence T[i, j] with
/// l <= i <= c <= j <= r, and all of those sequences share the min-hash
/// value f(T[c]). Positions are 0-based and inclusive (the paper uses
/// 1-based).
///
/// A window is *valid* for length threshold t when its width r - l + 1 >= t;
/// the generator only emits valid windows.
struct CompactWindow {
  uint32_t l;  ///< leftmost start position represented
  uint32_t c;  ///< centre: position of the (leftmost) minimum token hash
  uint32_t r;  ///< rightmost end position represented

  /// Width of the window, r - l + 1.
  uint32_t width() const { return r - l + 1; }

  friend bool operator==(const CompactWindow& a, const CompactWindow& b) {
    return a.l == b.l && a.c == b.c && a.r == b.r;
  }
};

/// Expected number of valid compact windows for a text of n distinct tokens
/// and length threshold t (Theorem 1): 2(n+1)/(t+1) - 1 when n >= t, else 0.
inline double ExpectedWindowCount(uint64_t n, uint64_t t) {
  if (n < t) return 0.0;
  return 2.0 * static_cast<double>(n + 1) / static_cast<double>(t + 1) - 1.0;
}

}  // namespace ndss

#endif  // NDSS_WINDOW_COMPACT_WINDOW_H_
