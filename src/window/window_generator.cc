#include "window/window_generator.h"

#include <algorithm>

#include "common/logging.h"

namespace ndss {

void WindowGenerator::Generate(const HashFamily& family, uint32_t func,
                               std::span<const Token> text, uint32_t t,
                               std::vector<CompactWindow>* out) {
  NDSS_CHECK(t >= 1) << "length threshold must be >= 1";
  const size_t n = text.size();
  if (n < t) return;
  hashes_.resize(n);
  for (size_t i = 0; i < n; ++i) hashes_[i] = family.Hash(func, text[i]);
  if (method_ == WindowGenMethod::kMonotonicStack) {
    GenerateStack(t, out);
  } else {
    GenerateRmq(t, out);
  }
}

void WindowGenerator::Generate(const SketchScheme& scheme, uint32_t func,
                               std::span<const Token> text, uint32_t t,
                               std::vector<CompactWindow>* out) {
  NDSS_CHECK(t >= 1) << "length threshold must be >= 1";
  const size_t n = text.size();
  if (n < t) return;
  hashes_.resize(n);
  scheme.FillHashRow(func, text.data(), n, hashes_.data());
  if (method_ == WindowGenMethod::kMonotonicStack) {
    GenerateStack(t, out);
  } else {
    GenerateRmq(t, out);
  }
}

void WindowGenerator::GenerateFromBase(const SketchScheme& scheme,
                                       uint32_t func,
                                       std::span<const uint64_t> base,
                                       uint32_t t,
                                       std::vector<CompactWindow>* out) {
  NDSS_CHECK(t >= 1) << "length threshold must be >= 1";
  const size_t n = base.size();
  if (n < t) return;
  hashes_.resize(n);
  scheme.FillHashRowFromBase(func, base.data(), n, hashes_.data());
  if (method_ == WindowGenMethod::kMonotonicStack) {
    GenerateStack(t, out);
  } else {
    GenerateRmq(t, out);
  }
}

// Divide-and-conquer (Algorithm 2) with an explicit work stack: recursion
// depth is Θ(n) in the worst case (monotone hash arrays), which would
// overflow the call stack for long texts.
void WindowGenerator::GenerateRmq(uint32_t t, std::vector<CompactWindow>* out) {
  const size_t n = hashes_.size();
  auto rmq = MakeRmq(rmq_kind_, std::span<const uint64_t>(hashes_));
  // Work items are inclusive ranges [l, r], encoded as two entries.
  std::vector<std::pair<uint32_t, uint32_t>> work;
  work.emplace_back(0, static_cast<uint32_t>(n - 1));
  while (!work.empty()) {
    const auto [l, r] = work.back();
    work.pop_back();
    if (r - l + 1 < t) continue;
    const uint32_t c = static_cast<uint32_t>(rmq->ArgMin(l, r));
    out->push_back(CompactWindow{l, c, r});
    if (c > l && c - l >= t) work.emplace_back(l, c - 1);
    if (c < r && r - c >= t) work.emplace_back(c + 1, r);
  }
}

// Monotonic-stack formulation: the Cartesian tree of the hash array (ties
// broken to the left) assigns each position c the range
//   [ (last p < c with h[p] <= h[c]) + 1 , (first q > c with h[q] < h[c]) - 1 ]
// which is exactly the compact window Algorithm 2 would emit for c; a window
// survives the recursion's early exit iff its own width is >= t because
// ancestor ranges contain descendant ranges.
void WindowGenerator::GenerateStack(uint32_t t,
                                    std::vector<CompactWindow>* out) {
  const size_t n = hashes_.size();
  stack_.clear();
  range_left_.resize(n);
  // Left boundaries via previous-smaller-or-equal scan.
  for (size_t i = 0; i < n; ++i) {
    while (!stack_.empty() && hashes_[stack_.back()] > hashes_[i]) {
      stack_.pop_back();
    }
    range_left_[i] =
        stack_.empty() ? 0 : stack_.back() + 1;
    stack_.push_back(static_cast<uint32_t>(i));
  }
  // Right boundaries via next-strictly-smaller scan; emit on the fly.
  stack_.clear();
  for (size_t i = n; i-- > 0;) {
    while (!stack_.empty() && hashes_[stack_.back()] >= hashes_[i]) {
      stack_.pop_back();
    }
    const uint32_t right =
        stack_.empty() ? static_cast<uint32_t>(n - 1) : stack_.back() - 1;
    const uint32_t left = range_left_[i];
    if (right - left + 1 >= t) {
      out->push_back(CompactWindow{left, static_cast<uint32_t>(i), right});
    }
    stack_.push_back(static_cast<uint32_t>(i));
  }
}

void GenerateCompactWindowsReference(const HashFamily& family, uint32_t func,
                                     std::span<const Token> text, uint32_t t,
                                     std::vector<CompactWindow>* out) {
  NDSS_CHECK(t >= 1) << "length threshold must be >= 1";
  const size_t n = text.size();
  if (n < t) return;
  std::vector<uint64_t> hashes(n);
  for (size_t i = 0; i < n; ++i) hashes[i] = family.Hash(func, text[i]);
  // Direct transliteration of Algorithm 2 with a linear-scan arg-min and
  // leftmost tie-breaking.
  struct Frame {
    uint32_t l, r;
  };
  std::vector<Frame> work{{0, static_cast<uint32_t>(n - 1)}};
  while (!work.empty()) {
    const Frame frame = work.back();
    work.pop_back();
    if (frame.r - frame.l + 1 < t) continue;
    uint32_t c = frame.l;
    for (uint32_t p = frame.l + 1; p <= frame.r; ++p) {
      if (hashes[p] < hashes[c]) c = p;
    }
    out->push_back(CompactWindow{frame.l, c, frame.r});
    if (c > frame.l) work.push_back({frame.l, c - 1});
    if (c < frame.r) work.push_back({c + 1, frame.r});
  }
}

void SortWindows(std::vector<CompactWindow>* windows) {
  std::sort(windows->begin(), windows->end(),
            [](const CompactWindow& a, const CompactWindow& b) {
              if (a.l != b.l) return a.l < b.l;
              if (a.c != b.c) return a.c < b.c;
              return a.r < b.r;
            });
}

}  // namespace ndss
