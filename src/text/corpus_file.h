#ifndef NDSS_TEXT_CORPUS_FILE_H_
#define NDSS_TEXT_CORPUS_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "common/result.h"
#include "common/status.h"
#include "text/corpus.h"
#include "text/types.h"

namespace ndss {

/// On-disk tokenized-corpus format, v2 (checksummed).
///
/// Layout (all integers little-endian):
///
///   header : magic u64
///   body   : per text — length u32, `length` u32 tokens, then the masked
///            CRC32C of the length field and token bytes (u32)
///   footer : per-text body offsets (u64 each), num_texts u64,
///            total_tokens u64, footer CRC32C u32 (over the offsets table
///            and the two counts), pad u32, footer magic u64
///
/// The body is written strictly sequentially, so corpora larger than memory
/// can be produced in one streaming pass; the offsets table enables random
/// access for result verification and display. Every read path (random and
/// streaming) verifies the per-text checksum; the footer checksum is
/// verified at open. v1 files (no checksums) are rejected with
/// InvalidArgument.
///
/// Durability: the writer targets `<path>.tmp`; Finish() fsyncs and
/// atomically renames onto `path`.
class CorpusFileWriter {
 public:
  /// Creates (truncates) the corpus file at `path`.
  static Result<CorpusFileWriter> Create(const std::string& path);

  CorpusFileWriter(CorpusFileWriter&&) noexcept = default;
  CorpusFileWriter& operator=(CorpusFileWriter&&) noexcept = default;

  /// Appends one text; returns its id.
  Result<TextId> Append(std::span<const Token> tokens);

  /// Appends every text of `corpus` in order.
  Status AppendCorpus(const Corpus& corpus);

  /// Writes the footer, fsyncs, and atomically publishes the file at its
  /// final path. Must be called for the file to exist at all.
  Status Finish();

  uint64_t num_texts() const { return offsets_.size(); }
  uint64_t total_tokens() const { return total_tokens_; }

 private:
  CorpusFileWriter(FileWriter writer, std::string final_path);

  FileWriter writer_;
  std::string final_path_;
  std::vector<uint64_t> offsets_;
  uint64_t total_tokens_ = 0;
};

/// Reader over the corpus format above, supporting both streaming batch
/// scans (for index construction over corpora larger than memory) and random
/// access by text id (for verification/display).
class CorpusFileReader {
 public:
  /// Opens and validates `path`.
  static Result<CorpusFileReader> Open(const std::string& path);

  CorpusFileReader(CorpusFileReader&&) noexcept = default;
  CorpusFileReader& operator=(CorpusFileReader&&) noexcept = default;

  uint64_t num_texts() const { return num_texts_; }
  uint64_t total_tokens() const { return total_tokens_; }

  /// Reads the text with id `id`.
  Result<std::vector<Token>> ReadText(TextId id);

  /// Resets the streaming cursor to the first text.
  Status SeekToStart();

  /// Reads the next batch of texts, up to `max_tokens` tokens (at least one
  /// text if any remain). Returns an empty corpus at end of stream. The
  /// returned corpus has base_id set to the id of its first text.
  Result<Corpus> ReadBatch(uint64_t max_tokens);

  /// Loads the entire corpus into memory.
  Result<Corpus> ReadAll();

 private:
  CorpusFileReader(FileReader reader, uint64_t num_texts,
                   uint64_t total_tokens, uint64_t offsets_start);

  Status ReadOffset(TextId id, uint64_t* offset);

  FileReader reader_;
  uint64_t num_texts_ = 0;
  uint64_t total_tokens_ = 0;
  uint64_t offsets_start_ = 0;  // absolute position of the offsets table
  TextId next_text_ = 0;        // streaming cursor
  bool cursor_valid_ = false;   // stream position matches next_text_
};

/// Convenience: writes `corpus` to `path` in the format above.
Status WriteCorpusFile(const std::string& path, const Corpus& corpus);

/// Convenience: loads the corpus at `path` fully into memory.
Result<Corpus> ReadCorpusFile(const std::string& path);

}  // namespace ndss

#endif  // NDSS_TEXT_CORPUS_FILE_H_
