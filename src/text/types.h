#ifndef NDSS_TEXT_TYPES_H_
#define NDSS_TEXT_TYPES_H_

#include <cstdint>

namespace ndss {

/// A token id produced by a tokenizer. The paper stores each token as a
/// 4-byte integer; we do the same.
using Token = uint32_t;

/// Identifier of a text within a corpus (its ordinal position).
using TextId = uint32_t;

/// Sentinel for "no token".
inline constexpr Token kInvalidToken = 0xffffffffu;

/// Sentinel for "no text".
inline constexpr TextId kInvalidTextId = 0xffffffffu;

}  // namespace ndss

#endif  // NDSS_TEXT_TYPES_H_
