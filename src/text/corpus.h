#ifndef NDSS_TEXT_CORPUS_H_
#define NDSS_TEXT_CORPUS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "text/types.h"

namespace ndss {

/// An in-memory collection of tokenized texts.
///
/// Texts are stored back-to-back in one flat token array with an offsets
/// table, so a corpus of N tokens costs 4N bytes plus 8 bytes per text —
/// matching the paper's "4-byte integer per token" accounting. Text ids are
/// ordinals: the i-th text added has id `base_id() + i`, where `base_id` is
/// nonzero when this object holds one batch of a larger streamed corpus.
class Corpus {
 public:
  Corpus() { offsets_.push_back(0); }

  /// Appends a text; returns its id.
  TextId AddText(std::span<const Token> tokens) {
    tokens_.insert(tokens_.end(), tokens.begin(), tokens.end());
    offsets_.push_back(tokens_.size());
    return base_id_ + static_cast<TextId>(num_texts() - 1);
  }

  /// Number of texts held.
  size_t num_texts() const { return offsets_.size() - 1; }

  /// Total tokens across all held texts.
  uint64_t total_tokens() const { return tokens_.size(); }

  /// True if no text is held.
  bool empty() const { return num_texts() == 0; }

  /// Id of the first held text (for streamed batches).
  TextId base_id() const { return base_id_; }

  /// Sets the id of the first held text.
  void set_base_id(TextId id) { base_id_ = id; }

  /// The tokens of the `local`-th held text, 0 <= local < num_texts().
  std::span<const Token> text(size_t local) const {
    return {tokens_.data() + offsets_[local],
            offsets_[local + 1] - offsets_[local]};
  }

  /// The tokens of the text with (global) id `id`.
  std::span<const Token> text_by_id(TextId id) const {
    return text(static_cast<size_t>(id - base_id_));
  }

  /// Length in tokens of the `local`-th held text.
  size_t text_length(size_t local) const {
    return offsets_[local + 1] - offsets_[local];
  }

  /// Removes all texts (keeps capacity).
  void Clear() {
    tokens_.clear();
    offsets_.assign(1, 0);
    base_id_ = 0;
  }

  /// Pre-allocates storage for `tokens` tokens and `texts` texts.
  void Reserve(size_t tokens, size_t texts) {
    tokens_.reserve(tokens);
    offsets_.reserve(texts + 1);
  }

 private:
  std::vector<Token> tokens_;
  std::vector<uint64_t> offsets_;  // offsets_[i]..offsets_[i+1] is text i
  TextId base_id_ = 0;
};

}  // namespace ndss

#endif  // NDSS_TEXT_CORPUS_H_
