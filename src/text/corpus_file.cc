#include "text/corpus_file.h"

#include <algorithm>

#include "common/coding.h"
#include "common/crc32c.h"

namespace ndss {

namespace {

// v1 magics (no checksums) — recognized only to reject v1 files clearly.
constexpr uint64_t kHeaderMagicV1 = 0x3150524353534447ULL;  // "NDSSCRP1"-ish
constexpr uint64_t kFooterMagicV1 = 0x31544f4f46505243ULL;

constexpr uint64_t kHeaderMagic = 0x3250524353534447ULL;  // "NDSSCRP2"-ish
constexpr uint64_t kFooterMagic = 0x32544f4f46505243ULL;

// v2 footer tail: num_texts u64, total_tokens u64, footer_crc u32, pad u32,
// footer magic u64. footer_crc covers the offsets table and the tail's first
// 16 bytes.
constexpr uint64_t kFooterTailSize = 32;
constexpr uint64_t kFooterTailSizeV1 = 24;

// Masked CRC32C of one text record: the length field's encoding followed by
// the token bytes.
uint32_t TextCrc(uint32_t length, const Token* tokens) {
  char lenbuf[4];
  EncodeFixed32(lenbuf, length);
  uint32_t crc = crc32c::Value(lenbuf, sizeof(lenbuf));
  crc = crc32c::Extend(crc, tokens, length * sizeof(Token));
  return crc32c::Mask(crc);
}

}  // namespace

// --------------------------------------------------------- CorpusFileWriter

CorpusFileWriter::CorpusFileWriter(FileWriter writer, std::string final_path)
    : writer_(std::move(writer)), final_path_(std::move(final_path)) {}

Result<CorpusFileWriter> CorpusFileWriter::Create(const std::string& path) {
  NDSS_ASSIGN_OR_RETURN(FileWriter writer, FileWriter::Open(path + ".tmp"));
  NDSS_RETURN_NOT_OK(writer.AppendU64(kHeaderMagic));
  return CorpusFileWriter(std::move(writer), path);
}

Result<TextId> CorpusFileWriter::Append(std::span<const Token> tokens) {
  if (tokens.empty()) {
    return Status::InvalidArgument("cannot append an empty text");
  }
  offsets_.push_back(writer_.bytes_written());
  const uint32_t length = static_cast<uint32_t>(tokens.size());
  NDSS_RETURN_NOT_OK(writer_.AppendU32(length));
  NDSS_RETURN_NOT_OK(
      writer_.Append(tokens.data(), tokens.size() * sizeof(Token)));
  NDSS_RETURN_NOT_OK(writer_.AppendU32(TextCrc(length, tokens.data())));
  total_tokens_ += tokens.size();
  return static_cast<TextId>(offsets_.size() - 1);
}

Status CorpusFileWriter::AppendCorpus(const Corpus& corpus) {
  for (size_t i = 0; i < corpus.num_texts(); ++i) {
    NDSS_RETURN_NOT_OK(Append(corpus.text(i)).status());
  }
  return Status::OK();
}

Status CorpusFileWriter::Finish() {
  std::string footer;
  footer.reserve(offsets_.size() * 8 + kFooterTailSize);
  for (uint64_t offset : offsets_) {
    PutFixed64(&footer, offset);
  }
  PutFixed64(&footer, offsets_.size());
  PutFixed64(&footer, total_tokens_);
  // The footer checksum covers the offsets table and the counts above, so a
  // corrupted offsets table (which would misdirect every random access) is
  // caught at open.
  PutFixed32(&footer, crc32c::Mask(crc32c::Value(footer.data(),
                                                 footer.size())));
  PutFixed32(&footer, 0);  // pad
  PutFixed64(&footer, kFooterMagic);
  NDSS_RETURN_NOT_OK(writer_.Append(footer));
  NDSS_RETURN_NOT_OK(writer_.Sync());
  NDSS_RETURN_NOT_OK(writer_.Close());
  return RenameFile(final_path_ + ".tmp", final_path_);
}

// --------------------------------------------------------- CorpusFileReader

CorpusFileReader::CorpusFileReader(FileReader reader, uint64_t num_texts,
                                   uint64_t total_tokens,
                                   uint64_t offsets_start)
    : reader_(std::move(reader)),
      num_texts_(num_texts),
      total_tokens_(total_tokens),
      offsets_start_(offsets_start) {}

Result<CorpusFileReader> CorpusFileReader::Open(const std::string& path) {
  NDSS_ASSIGN_OR_RETURN(FileReader reader, FileReader::Open(path));
  if (reader.size() < 8 + kFooterTailSizeV1) {
    return Status::Corruption("corpus file too small: " + path);
  }
  NDSS_RETURN_NOT_OK(reader.Seek(0));
  NDSS_ASSIGN_OR_RETURN(uint64_t header_magic, reader.ReadU64());
  if (header_magic == kHeaderMagicV1) {
    return Status::InvalidArgument(
        "corpus file is format v1 (no checksums): " + path +
        "; re-import the corpus with this version");
  }
  if (header_magic != kHeaderMagic) {
    return Status::Corruption("bad corpus header magic: " + path);
  }
  if (reader.size() < 8 + kFooterTailSize) {
    return Status::Corruption("corpus file too small: " + path);
  }
  char tail[kFooterTailSize];
  NDSS_RETURN_NOT_OK(
      reader.ReadAt(reader.size() - kFooterTailSize, tail, sizeof(tail)));
  const uint64_t num_texts = DecodeFixed64(tail);
  const uint64_t total_tokens = DecodeFixed64(tail + 8);
  const uint32_t stored_crc = DecodeFixed32(tail + 16);
  const uint64_t footer_magic = DecodeFixed64(tail + 24);
  if (footer_magic != kFooterMagic) {
    return Status::Corruption("bad corpus footer magic: " + path);
  }
  const uint64_t offsets_bytes = num_texts * 8;
  if (reader.size() < 8 + kFooterTailSize + offsets_bytes) {
    return Status::Corruption("corpus file truncated: " + path);
  }
  const uint64_t offsets_start = reader.size() - kFooterTailSize -
                                 offsets_bytes;
  // Verify the footer checksum (offsets table ++ counts); a bad offsets
  // table would misdirect every random access.
  std::vector<char> offsets_raw(offsets_bytes);
  if (!offsets_raw.empty()) {
    NDSS_RETURN_NOT_OK(
        reader.ReadAt(offsets_start, offsets_raw.data(), offsets_raw.size()));
  }
  uint32_t crc = crc32c::Value(offsets_raw.data(), offsets_raw.size());
  crc = crc32c::Extend(crc, tail, 16);
  if (crc != crc32c::Unmask(stored_crc)) {
    return Status::Corruption("corpus footer checksum mismatch: " + path);
  }
  return CorpusFileReader(std::move(reader), num_texts, total_tokens,
                          offsets_start);
}

Status CorpusFileReader::ReadOffset(TextId id, uint64_t* offset) {
  char buf[8];
  NDSS_RETURN_NOT_OK(reader_.ReadAt(offsets_start_ + 8ull * id, buf, 8));
  *offset = DecodeFixed64(buf);
  return Status::OK();
}

Result<std::vector<Token>> CorpusFileReader::ReadText(TextId id) {
  if (id >= num_texts_) {
    return Status::OutOfRange("text id " + std::to_string(id) +
                              " out of range (num_texts=" +
                              std::to_string(num_texts_) + ")");
  }
  cursor_valid_ = false;
  uint64_t offset = 0;
  NDSS_RETURN_NOT_OK(ReadOffset(id, &offset));
  NDSS_RETURN_NOT_OK(reader_.Seek(offset));
  NDSS_ASSIGN_OR_RETURN(uint32_t length, reader_.ReadU32());
  std::vector<Token> tokens(length);
  NDSS_RETURN_NOT_OK(
      reader_.ReadExact(tokens.data(), length * sizeof(Token)));
  NDSS_ASSIGN_OR_RETURN(uint32_t stored_crc, reader_.ReadU32());
  if (TextCrc(length, tokens.data()) != stored_crc) {
    return Status::Corruption("corpus text " + std::to_string(id) +
                              " checksum mismatch");
  }
  return tokens;
}

Status CorpusFileReader::SeekToStart() {
  NDSS_RETURN_NOT_OK(reader_.Seek(8));  // skip header magic
  next_text_ = 0;
  cursor_valid_ = true;
  return Status::OK();
}

Result<Corpus> CorpusFileReader::ReadBatch(uint64_t max_tokens) {
  if (!cursor_valid_) NDSS_RETURN_NOT_OK(SeekToStart());
  Corpus batch;
  batch.set_base_id(next_text_);
  std::vector<Token> tokens;
  while (next_text_ < num_texts_ &&
         (batch.empty() || batch.total_tokens() < max_tokens)) {
    NDSS_ASSIGN_OR_RETURN(uint32_t length, reader_.ReadU32());
    tokens.resize(length);
    NDSS_RETURN_NOT_OK(
        reader_.ReadExact(tokens.data(), length * sizeof(Token)));
    NDSS_ASSIGN_OR_RETURN(uint32_t stored_crc, reader_.ReadU32());
    if (TextCrc(length, tokens.data()) != stored_crc) {
      return Status::Corruption("corpus text " + std::to_string(next_text_) +
                                " checksum mismatch");
    }
    batch.AddText(tokens);
    ++next_text_;
  }
  return batch;
}

Result<Corpus> CorpusFileReader::ReadAll() {
  NDSS_RETURN_NOT_OK(SeekToStart());
  NDSS_ASSIGN_OR_RETURN(
      Corpus corpus, ReadBatch(total_tokens_ == 0 ? 1 : total_tokens_));
  return corpus;
}

// ------------------------------------------------------------- conveniences

Status WriteCorpusFile(const std::string& path, const Corpus& corpus) {
  NDSS_ASSIGN_OR_RETURN(CorpusFileWriter writer,
                        CorpusFileWriter::Create(path));
  NDSS_RETURN_NOT_OK(writer.AppendCorpus(corpus));
  return writer.Finish();
}

Result<Corpus> ReadCorpusFile(const std::string& path) {
  NDSS_ASSIGN_OR_RETURN(CorpusFileReader reader, CorpusFileReader::Open(path));
  return reader.ReadAll();
}

}  // namespace ndss
