#include "tokenizer/bpe_tokenizer.h"

#include "tokenizer/pre_tokenizer.h"

namespace ndss {

std::vector<Token> BpeTokenizer::Encode(std::string_view text) {
  std::vector<Token> out;
  EncodeAppend(text, &out);
  return out;
}

void BpeTokenizer::EncodeAppend(std::string_view text,
                                std::vector<Token>* out) {
  for (std::string_view chunk : PreTokenize(text)) {
    EncodeChunk(chunk, out);
  }
}

void BpeTokenizer::EncodeChunk(std::string_view chunk,
                               std::vector<Token>* out) {
  if (chunk.empty()) return;
  if (chunk.size() == 1) {
    out->push_back(static_cast<Token>(static_cast<uint8_t>(chunk[0])));
    return;
  }
  auto cached = cache_.find(std::string(chunk));
  if (cached != cache_.end()) {
    out->insert(out->end(), cached->second.begin(), cached->second.end());
    return;
  }
  symbols_.clear();
  symbols_.reserve(chunk.size());
  for (char ch : chunk) {
    symbols_.push_back(static_cast<Token>(static_cast<uint8_t>(ch)));
  }
  // Repeatedly apply the lowest-ranked merge present; identical to training
  // order, so any word seen during training tokenizes to its trained form.
  for (;;) {
    uint32_t best_rank = BpeModel::kNoMerge;
    size_t best_pos = 0;
    for (size_t i = 0; i + 1 < symbols_.size(); ++i) {
      const uint32_t rank = model_.MergeRank(symbols_[i], symbols_[i + 1]);
      if (rank < best_rank) {
        best_rank = rank;
        best_pos = i;
      }
    }
    if (best_rank == BpeModel::kNoMerge) break;
    // Merge every occurrence of this pair (left to right), matching the
    // trainer's greedy rewrite.
    const Token a = symbols_[best_pos];
    const Token b = symbols_[best_pos + 1];
    const Token z = model_.MergedToken(best_rank);
    size_t write = 0;
    for (size_t read = 0; read < symbols_.size();) {
      if (read + 1 < symbols_.size() && symbols_[read] == a &&
          symbols_[read + 1] == b) {
        symbols_[write++] = z;
        read += 2;
      } else {
        symbols_[write++] = symbols_[read++];
      }
    }
    symbols_.resize(write);
    if (symbols_.size() == 1) break;
  }
  cache_.emplace(std::string(chunk), symbols_);
  out->insert(out->end(), symbols_.begin(), symbols_.end());
}

std::string BpeTokenizer::Decode(std::span<const Token> tokens) const {
  std::string text;
  for (Token token : tokens) {
    text += model_.TokenString(token);
  }
  return text;
}

}  // namespace ndss
