#ifndef NDSS_TOKENIZER_BPE_TOKENIZER_H_
#define NDSS_TOKENIZER_BPE_TOKENIZER_H_

#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "text/types.h"
#include "tokenizer/bpe_model.h"

namespace ndss {

/// Encodes raw text to token ids (and back) with a trained BpeModel.
///
/// Encoding pre-tokenizes the text (see PreTokenize), then for each chunk
/// repeatedly applies the lowest-ranked applicable merge, exactly mirroring
/// training order. A per-chunk cache makes repeated words O(1). Decoding
/// concatenates token byte strings; Decode(Encode(text)) == text.
///
/// Not thread-safe (the cache is mutable); use one encoder per thread.
class BpeTokenizer {
 public:
  /// The tokenizer keeps a reference to `model`; the model must outlive it.
  explicit BpeTokenizer(const BpeModel& model) : model_(model) {}

  /// Tokenizes `text`.
  std::vector<Token> Encode(std::string_view text);

  /// Appends the tokens of `text` to `out`.
  void EncodeAppend(std::string_view text, std::vector<Token>* out);

  /// Reconstructs the exact byte string of `tokens`.
  std::string Decode(std::span<const Token> tokens) const;

  const BpeModel& model() const { return model_; }

 private:
  void EncodeChunk(std::string_view chunk, std::vector<Token>* out);

  const BpeModel& model_;
  std::unordered_map<std::string, std::vector<Token>> cache_;
  std::vector<Token> symbols_;  // scratch
};

}  // namespace ndss

#endif  // NDSS_TOKENIZER_BPE_TOKENIZER_H_
