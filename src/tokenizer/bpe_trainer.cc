#include "tokenizer/bpe_trainer.h"

#include <algorithm>
#include <queue>
#include <unordered_set>

#include "common/logging.h"
#include "tokenizer/pre_tokenizer.h"

namespace ndss {

namespace {

uint64_t PairKey(Token a, Token b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

struct HeapEntry {
  uint64_t count;
  uint64_t pair;  // smaller key wins ties for determinism

  bool operator<(const HeapEntry& other) const {
    if (count != other.count) return count < other.count;
    return pair > other.pair;  // max-heap: prefer numerically smaller pair
  }
};

}  // namespace

BpeTrainer::BpeTrainer(BpeTrainerOptions options)
    : options_(std::move(options)) {}

void BpeTrainer::AddText(std::string_view text) {
  for (std::string_view chunk : PreTokenize(text)) {
    if (chunk.size() > options_.max_word_length) continue;
    ++word_counts_[std::string(chunk)];
  }
}

Result<BpeModel> BpeTrainer::Train() {
  if (options_.vocab_size < 256) {
    return Status::InvalidArgument("vocab_size must be at least 256");
  }
  // Materialize distinct words as symbol sequences.
  struct Word {
    std::vector<Token> symbols;
    uint64_t count;
  };
  std::vector<Word> words;
  words.reserve(word_counts_.size());
  for (const auto& [text, count] : word_counts_) {
    Word word;
    word.count = count;
    word.symbols.reserve(text.size());
    for (char ch : text) {
      word.symbols.push_back(static_cast<Token>(static_cast<uint8_t>(ch)));
    }
    words.push_back(std::move(word));
  }
  word_counts_.clear();

  // Pair statistics: total weighted count plus the set of words where the
  // pair occurs (a superset after merges; occurrences are re-checked).
  std::unordered_map<uint64_t, uint64_t> pair_counts;
  std::unordered_map<uint64_t, std::unordered_set<uint32_t>> pair_words;
  for (uint32_t w = 0; w < words.size(); ++w) {
    const Word& word = words[w];
    for (size_t i = 0; i + 1 < word.symbols.size(); ++i) {
      const uint64_t key = PairKey(word.symbols[i], word.symbols[i + 1]);
      pair_counts[key] += word.count;
      pair_words[key].insert(w);
    }
  }

  std::priority_queue<HeapEntry> heap;
  for (const auto& [key, count] : pair_counts) heap.push({count, key});

  std::vector<std::pair<Token, Token>> merges;
  const uint32_t target_merges = options_.vocab_size - 256;
  std::vector<Token> merged;  // scratch for rewriting a word

  while (merges.size() < target_merges && !heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    auto it = pair_counts.find(top.pair);
    if (it == pair_counts.end() || it->second != top.count) {
      continue;  // stale heap entry
    }
    if (top.count < options_.min_pair_frequency) break;

    const Token a = static_cast<Token>(top.pair >> 32);
    const Token b = static_cast<Token>(top.pair & 0xffffffffu);
    const Token z = static_cast<Token>(256 + merges.size());
    merges.push_back({a, b});
    pair_counts.erase(it);

    // Rewrite every word that (maybe) contains (a, b). Pair statistics are
    // updated wholesale per affected word: retract the word's old adjacent
    // pairs, rewrite, then re-add the new ones. A merge can only create
    // pairs involving the brand-new token z, so pair_words sets never miss
    // an occurrence of a pair chosen later.
    auto words_it = pair_words.find(top.pair);
    if (words_it == pair_words.end()) continue;
    const std::unordered_set<uint32_t> affected = std::move(words_it->second);
    pair_words.erase(words_it);

    for (uint32_t w : affected) {
      Word& word = words[w];
      const std::vector<Token>& syms = word.symbols;
      bool contains = false;
      for (size_t i = 0; i + 1 < syms.size(); ++i) {
        if (syms[i] == a && syms[i + 1] == b) {
          contains = true;
          break;
        }
      }
      if (!contains) continue;  // stale registration from an earlier rewrite
      // Retract old pairs.
      for (size_t i = 0; i + 1 < syms.size(); ++i) {
        const uint64_t key = PairKey(syms[i], syms[i + 1]);
        auto pc = pair_counts.find(key);
        if (pc != pair_counts.end()) {
          pc->second -= word.count;
          heap.push({pc->second, key});
        }
      }
      // Greedy left-to-right rewrite of (a, b) -> z.
      merged.clear();
      for (size_t i = 0; i < syms.size();) {
        if (i + 1 < syms.size() && syms[i] == a && syms[i + 1] == b) {
          merged.push_back(z);
          i += 2;
        } else {
          merged.push_back(syms[i]);
          ++i;
        }
      }
      word.symbols = merged;
      // Re-add new pairs.
      for (size_t i = 0; i + 1 < merged.size(); ++i) {
        const uint64_t key = PairKey(merged[i], merged[i + 1]);
        uint64_t& count = pair_counts[key];
        count += word.count;
        pair_words[key].insert(w);
        heap.push({count, key});
      }
    }
  }

  NDSS_LOG(kDebug) << "BPE training produced " << merges.size() << " merges";
  return BpeModel::FromMerges(merges);
}

}  // namespace ndss
