#ifndef NDSS_TOKENIZER_BPE_TRAINER_H_
#define NDSS_TOKENIZER_BPE_TRAINER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "tokenizer/bpe_model.h"

namespace ndss {

/// Options controlling BPE training.
struct BpeTrainerOptions {
  /// Target total vocabulary size, including the 256 byte tokens. Training
  /// stops once this many ids exist (or no pair is frequent enough).
  uint32_t vocab_size = 4096;

  /// Pairs occurring fewer than this many times are never merged.
  uint64_t min_pair_frequency = 2;

  /// Pre-tokens longer than this are skipped during statistics collection
  /// (guards against pathological unbroken runs).
  size_t max_word_length = 128;
};

/// Trains a byte-pair-encoding model from raw text (Section 4 of the paper
/// trains a 64K-vocabulary BPE on one million OpenWebText texts; this is the
/// same algorithm at configurable scale).
///
/// Usage:
///   BpeTrainer trainer(options);
///   for (const std::string& text : texts) trainer.AddText(text);
///   NDSS_ASSIGN_OR_RETURN(BpeModel model, trainer.Train());
///
/// Greedy agglomerative training: repeatedly merge the globally most
/// frequent adjacent symbol pair (ties broken deterministically toward the
/// numerically smaller pair), updating pair statistics incrementally. A
/// max-heap with lazy invalidation keeps each step near O(log P) amortized.
class BpeTrainer {
 public:
  explicit BpeTrainer(BpeTrainerOptions options = {});

  /// Accumulates word statistics from one document.
  void AddText(std::string_view text);

  /// Runs training over the accumulated statistics. The trainer can be
  /// reused afterwards (statistics are consumed).
  Result<BpeModel> Train();

  /// Number of distinct pre-tokens seen so far.
  size_t num_distinct_words() const { return word_counts_.size(); }

 private:
  BpeTrainerOptions options_;
  std::unordered_map<std::string, uint64_t> word_counts_;
};

}  // namespace ndss

#endif  // NDSS_TOKENIZER_BPE_TRAINER_H_
