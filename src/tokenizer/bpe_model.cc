#include "tokenizer/bpe_model.h"

#include "common/coding.h"
#include "common/file_io.h"

namespace ndss {

namespace {
constexpr uint64_t kModelMagic = 0x314c444d45504244ULL;  // "DBPEMDL1"-ish
}  // namespace

BpeModel BpeModel::ByteLevel() {
  BpeModel model;
  model.vocab_.reserve(256);
  for (int b = 0; b < 256; ++b) {
    model.vocab_.push_back(std::string(1, static_cast<char>(b)));
  }
  return model;
}

Result<BpeModel> BpeModel::FromMerges(
    const std::vector<std::pair<Token, Token>>& merges) {
  BpeModel model = ByteLevel();
  model.merges_.reserve(merges.size());
  model.merge_rank_.reserve(merges.size());
  for (size_t rank = 0; rank < merges.size(); ++rank) {
    const auto [a, b] = merges[rank];
    const Token next_id = static_cast<Token>(256 + rank);
    if (a >= next_id || b >= next_id) {
      return Status::InvalidArgument(
          "merge " + std::to_string(rank) + " refers to a later token id");
    }
    model.merges_.push_back({a, b});
    model.merge_rank_[PairKey(a, b)] = static_cast<uint32_t>(rank);
    model.vocab_.push_back(model.vocab_[a] + model.vocab_[b]);
  }
  return model;
}

Status BpeModel::Save(const std::string& path) const {
  NDSS_ASSIGN_OR_RETURN(FileWriter writer, FileWriter::Open(path));
  NDSS_RETURN_NOT_OK(writer.AppendU64(kModelMagic));
  NDSS_RETURN_NOT_OK(writer.AppendU64(merges_.size()));
  for (const auto& [a, b] : merges_) {
    NDSS_RETURN_NOT_OK(writer.AppendU32(a));
    NDSS_RETURN_NOT_OK(writer.AppendU32(b));
  }
  return writer.Close();
}

Result<BpeModel> BpeModel::Load(const std::string& path) {
  NDSS_ASSIGN_OR_RETURN(FileReader reader, FileReader::Open(path));
  NDSS_ASSIGN_OR_RETURN(uint64_t magic, reader.ReadU64());
  if (magic != kModelMagic) {
    return Status::Corruption("bad BPE model magic: " + path);
  }
  NDSS_ASSIGN_OR_RETURN(uint64_t num_merges, reader.ReadU64());
  std::vector<std::pair<Token, Token>> merges;
  merges.reserve(num_merges);
  for (uint64_t i = 0; i < num_merges; ++i) {
    NDSS_ASSIGN_OR_RETURN(uint32_t a, reader.ReadU32());
    NDSS_ASSIGN_OR_RETURN(uint32_t b, reader.ReadU32());
    merges.push_back({a, b});
  }
  return FromMerges(merges);
}

}  // namespace ndss
