#include "tokenizer/pre_tokenizer.h"

namespace ndss {

namespace {

bool IsSpaceChar(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

}  // namespace

std::vector<std::string_view> PreTokenize(std::string_view text) {
  std::vector<std::string_view> chunks;
  const size_t n = text.size();
  size_t i = 0;
  while (i < n) {
    const size_t start = i;
    if (text[i] == ' ' && i + 1 < n && !IsSpaceChar(text[i + 1])) {
      // Single space glued to the following word.
      ++i;
      while (i < n && !IsSpaceChar(text[i])) ++i;
    } else if (!IsSpaceChar(text[i])) {
      while (i < n && !IsSpaceChar(text[i])) ++i;
    } else {
      // Whitespace run; stop before a space that glues to the next word.
      while (i < n && IsSpaceChar(text[i])) {
        if (text[i] == ' ' && i + 1 < n && !IsSpaceChar(text[i + 1]) &&
            i > start) {
          break;
        }
        ++i;
      }
    }
    chunks.push_back(text.substr(start, i - start));
  }
  return chunks;
}

}  // namespace ndss
