#ifndef NDSS_TOKENIZER_BPE_MODEL_H_
#define NDSS_TOKENIZER_BPE_MODEL_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "text/types.h"

namespace ndss {

/// A trained byte-pair-encoding model: the ordered merge list plus the
/// derived vocabulary.
///
/// Token ids 0..255 are the raw bytes; each merge (a, b) introduces the next
/// id whose byte string is vocab[a] + vocab[b]. `vocab_size()` is therefore
/// 256 + number of merges. The model is immutable once built.
class BpeModel {
 public:
  /// Builds a model from an ordered merge list. Merge operands must refer to
  /// byte ids or earlier merges.
  static Result<BpeModel> FromMerges(
      const std::vector<std::pair<Token, Token>>& merges);

  /// A model with no merges (byte-level tokenization).
  static BpeModel ByteLevel();

  /// Loads a model saved with Save().
  static Result<BpeModel> Load(const std::string& path);

  /// Serializes the model to `path`.
  Status Save(const std::string& path) const;

  /// Total number of token ids (256 + merges).
  uint32_t vocab_size() const { return static_cast<uint32_t>(vocab_.size()); }

  /// Number of merges.
  size_t num_merges() const { return merges_.size(); }

  /// Byte string of token `id`.
  const std::string& TokenString(Token id) const { return vocab_[id]; }

  /// Merge rank of the pair (a, b), or kNoMerge if the pair never merges.
  /// Lower rank = applied earlier.
  static constexpr uint32_t kNoMerge = 0xffffffffu;
  uint32_t MergeRank(Token a, Token b) const {
    auto it = merge_rank_.find(PairKey(a, b));
    return it == merge_rank_.end() ? kNoMerge : it->second;
  }

  /// Token id produced by merge number `rank`.
  Token MergedToken(uint32_t rank) const {
    return static_cast<Token>(256 + rank);
  }

  const std::vector<std::pair<Token, Token>>& merges() const {
    return merges_;
  }

 private:
  static uint64_t PairKey(Token a, Token b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  std::vector<std::pair<Token, Token>> merges_;
  std::vector<std::string> vocab_;
  std::unordered_map<uint64_t, uint32_t> merge_rank_;
};

}  // namespace ndss

#endif  // NDSS_TOKENIZER_BPE_MODEL_H_
