#ifndef NDSS_TOKENIZER_PRE_TOKENIZER_H_
#define NDSS_TOKENIZER_PRE_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace ndss {

/// Splits raw text into pre-token chunks for BPE, GPT-2 style: a word keeps
/// its single leading space (" world"), longer whitespace runs form their own
/// chunks. The split is lossless: concatenating the chunks reproduces the
/// input exactly, so Encode/Decode round-trips.
std::vector<std::string_view> PreTokenize(std::string_view text);

}  // namespace ndss

#endif  // NDSS_TOKENIZER_PRE_TOKENIZER_H_
