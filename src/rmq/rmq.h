#ifndef NDSS_RMQ_RMQ_H_
#define NDSS_RMQ_RMQ_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace ndss {

/// Range-minimum query over a fixed array of 64-bit values.
///
/// `ArgMin(l, r)` returns the index of the minimum value in the inclusive
/// range [l, r]; ties are broken toward the leftmost index, which makes the
/// compact-window recursion deterministic (the paper allows arbitrary
/// tie-breaking). The queried array must outlive the structure.
class RangeMinQuery {
 public:
  virtual ~RangeMinQuery() = default;

  /// Index of the leftmost minimum in [l, r]. Requires l <= r < size().
  virtual size_t ArgMin(size_t l, size_t r) const = 0;

  /// Number of elements indexed.
  virtual size_t size() const = 0;
};

/// Which RMQ implementation to use for compact-window generation; compared
/// in the RMQ ablation benchmark.
enum class RmqKind {
  /// Segment tree: O(n) build, O(log n) query. What ALIGN used.
  kSegmentTree,
  /// Sparse table: O(n log n) build/space, O(1) query.
  kSparseTable,
  /// Fischer–Heun block decomposition with per-block Cartesian-tree lookup
  /// tables: O(n) build/space, O(1) query. The structure the paper cites to
  /// reach O(n) total generation time.
  kFischerHeun,
};

/// Segment-tree RMQ (the baseline used by ALIGN).
class SegmentTreeRmq : public RangeMinQuery {
 public:
  explicit SegmentTreeRmq(std::span<const uint64_t> values);

  size_t ArgMin(size_t l, size_t r) const override;
  size_t size() const override { return n_; }

 private:
  size_t n_;
  std::span<const uint64_t> values_;
  // tree_[v] holds the argmin index of the node's range.
  std::vector<uint32_t> tree_;

  void Build(size_t node, size_t l, size_t r);
  size_t Query(size_t node, size_t l, size_t r, size_t ql, size_t qr) const;
  size_t Better(size_t a, size_t b) const;
};

/// Sparse-table RMQ: O(n log n) precomputation, O(1) query.
class SparseTableRmq : public RangeMinQuery {
 public:
  explicit SparseTableRmq(std::span<const uint64_t> values);

  size_t ArgMin(size_t l, size_t r) const override;
  size_t size() const override { return n_; }

 private:
  size_t n_;
  std::span<const uint64_t> values_;
  size_t levels_;
  // table_[lvl * n_ + i] = argmin of [i, i + 2^lvl - 1].
  std::vector<uint32_t> table_;

  size_t Better(size_t a, size_t b) const;
};

/// Fischer–Heun RMQ: splits the array into blocks of size Θ(log n), indexes
/// block minima with a sparse table, and answers in-block queries through
/// precomputed tables keyed by the block's Cartesian-tree signature. O(n)
/// build time and space, O(1) query.
class FischerHeunRmq : public RangeMinQuery {
 public:
  explicit FischerHeunRmq(std::span<const uint64_t> values);

  size_t ArgMin(size_t l, size_t r) const override;
  size_t size() const override { return n_; }

 private:
  size_t n_;
  std::span<const uint64_t> values_;
  size_t block_size_;
  size_t num_blocks_;
  std::unique_ptr<SparseTableRmq> summary_;  // over block minima
  std::vector<uint64_t> block_minima_;
  std::vector<uint32_t> block_signature_;  // Cartesian-tree code per block
  // For each distinct signature, a (block_size x block_size) triangular table
  // of in-block argmins; indexed lazily by signature id.
  std::vector<std::vector<uint8_t>> in_block_tables_;
  std::vector<int32_t> signature_to_table_;  // 4^b entries, -1 = unseen

  size_t InBlockArgMin(size_t block, size_t l, size_t r) const;
  size_t Better(size_t a, size_t b) const;
};

/// Creates an RMQ of the requested kind over `values`.
std::unique_ptr<RangeMinQuery> MakeRmq(RmqKind kind,
                                       std::span<const uint64_t> values);

/// Human-readable name for `kind` (used by the ablation bench output).
const char* RmqKindName(RmqKind kind);

}  // namespace ndss

#endif  // NDSS_RMQ_RMQ_H_
