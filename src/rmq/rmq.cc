#include "rmq/rmq.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace ndss {

// ------------------------------------------------------------ SegmentTreeRmq

SegmentTreeRmq::SegmentTreeRmq(std::span<const uint64_t> values)
    : n_(values.size()), values_(values) {
  NDSS_CHECK(n_ > 0) << "RMQ over empty array";
  tree_.resize(4 * n_);
  Build(1, 0, n_ - 1);
}

size_t SegmentTreeRmq::Better(size_t a, size_t b) const {
  if (values_[a] < values_[b]) return a;
  if (values_[b] < values_[a]) return b;
  return std::min(a, b);  // leftmost tie-break
}

void SegmentTreeRmq::Build(size_t node, size_t l, size_t r) {
  if (l == r) {
    tree_[node] = static_cast<uint32_t>(l);
    return;
  }
  const size_t mid = l + (r - l) / 2;
  Build(2 * node, l, mid);
  Build(2 * node + 1, mid + 1, r);
  tree_[node] =
      static_cast<uint32_t>(Better(tree_[2 * node], tree_[2 * node + 1]));
}

size_t SegmentTreeRmq::Query(size_t node, size_t l, size_t r, size_t ql,
                             size_t qr) const {
  if (ql <= l && r <= qr) return tree_[node];
  const size_t mid = l + (r - l) / 2;
  if (qr <= mid) return Query(2 * node, l, mid, ql, qr);
  if (ql > mid) return Query(2 * node + 1, mid + 1, r, ql, qr);
  return Better(Query(2 * node, l, mid, ql, qr),
                Query(2 * node + 1, mid + 1, r, ql, qr));
}

size_t SegmentTreeRmq::ArgMin(size_t l, size_t r) const {
  NDSS_CHECK(l <= r && r < n_) << "RMQ range out of bounds";
  return Query(1, 0, n_ - 1, l, r);
}

// ------------------------------------------------------------ SparseTableRmq

SparseTableRmq::SparseTableRmq(std::span<const uint64_t> values)
    : n_(values.size()), values_(values) {
  NDSS_CHECK(n_ > 0) << "RMQ over empty array";
  levels_ = static_cast<size_t>(std::bit_width(n_));
  table_.resize(levels_ * n_);
  for (size_t i = 0; i < n_; ++i) table_[i] = static_cast<uint32_t>(i);
  for (size_t lvl = 1; lvl < levels_; ++lvl) {
    const size_t half = size_t{1} << (lvl - 1);
    const size_t span = size_t{1} << lvl;
    for (size_t i = 0; i + span <= n_; ++i) {
      table_[lvl * n_ + i] = static_cast<uint32_t>(
          Better(table_[(lvl - 1) * n_ + i], table_[(lvl - 1) * n_ + i + half]));
    }
  }
}

size_t SparseTableRmq::Better(size_t a, size_t b) const {
  if (values_[a] < values_[b]) return a;
  if (values_[b] < values_[a]) return b;
  return std::min(a, b);
}

size_t SparseTableRmq::ArgMin(size_t l, size_t r) const {
  NDSS_CHECK(l <= r && r < n_) << "RMQ range out of bounds";
  const size_t len = r - l + 1;
  const size_t lvl = static_cast<size_t>(std::bit_width(len)) - 1;
  const size_t a = table_[lvl * n_ + l];
  const size_t b = table_[lvl * n_ + r + 1 - (size_t{1} << lvl)];
  return Better(a, b);
}

// ------------------------------------------------------------ FischerHeunRmq

FischerHeunRmq::FischerHeunRmq(std::span<const uint64_t> values)
    : n_(values.size()), values_(values) {
  NDSS_CHECK(n_ > 0) << "RMQ over empty array";
  // Block size b = max(1, floor(log2(n) / 4)); the number of distinct
  // Cartesian-tree signatures is at most 4^b <= n^(1/2), so the per-shape
  // tables cost o(n) in total.
  const size_t log_n = static_cast<size_t>(std::bit_width(n_));
  block_size_ = std::max<size_t>(1, log_n / 4);
  num_blocks_ = (n_ + block_size_ - 1) / block_size_;

  block_minima_.resize(num_blocks_);
  block_signature_.resize(num_blocks_);
  signature_to_table_.assign(size_t{1} << (2 * block_size_), -1);

  std::vector<size_t> stack;
  std::vector<size_t> block_argmin(num_blocks_);
  for (size_t b = 0; b < num_blocks_; ++b) {
    const size_t begin = b * block_size_;
    const size_t end = std::min(n_, begin + block_size_);
    // Cartesian-tree signature: simulate the rightmost-path stack; each push
    // is a 1 bit, each pop a 0 bit. Equal shapes answer every in-block RMQ
    // identically (positionally).
    uint32_t signature = 0;
    int bit = 0;
    stack.clear();
    size_t argmin = begin;
    for (size_t i = begin; i < end; ++i) {
      while (!stack.empty() && values_[stack.back()] > values_[i]) {
        stack.pop_back();
        ++bit;  // 0 bit: leave it as is, just advance
      }
      signature |= (1u << bit);
      ++bit;
      stack.push_back(i);
      if (values_[i] < values_[argmin]) argmin = i;
    }
    block_argmin[b] = argmin;
    block_minima_[b] = values_[argmin];
    block_signature_[b] = signature;

    if (signature_to_table_[signature] < 0) {
      // Build the triangular in-block answer table for this shape by direct
      // scanning; done once per distinct shape.
      signature_to_table_[signature] =
          static_cast<int32_t>(in_block_tables_.size());
      const size_t len = end - begin;
      std::vector<uint8_t> table(block_size_ * block_size_, 0);
      for (size_t i = 0; i < len; ++i) {
        size_t best = i;
        table[i * block_size_ + i] = static_cast<uint8_t>(i);
        for (size_t j = i + 1; j < len; ++j) {
          if (values_[begin + j] < values_[begin + best]) best = j;
          table[i * block_size_ + j] = static_cast<uint8_t>(best);
        }
      }
      in_block_tables_.push_back(std::move(table));
    }
  }
  summary_ = std::make_unique<SparseTableRmq>(
      std::span<const uint64_t>(block_minima_));
  // Keep per-block argmins implicitly: the summary returns a block; we
  // resolve inside the block through the shape table, so block_argmin is not
  // retained beyond construction.
  (void)block_argmin;
}

size_t FischerHeunRmq::Better(size_t a, size_t b) const {
  if (values_[a] < values_[b]) return a;
  if (values_[b] < values_[a]) return b;
  return std::min(a, b);
}

size_t FischerHeunRmq::InBlockArgMin(size_t block, size_t l, size_t r) const {
  const size_t begin = block * block_size_;
  const size_t li = l - begin;
  const size_t ri = r - begin;
  const auto& table =
      in_block_tables_[signature_to_table_[block_signature_[block]]];
  return begin + table[li * block_size_ + ri];
}

size_t FischerHeunRmq::ArgMin(size_t l, size_t r) const {
  NDSS_CHECK(l <= r && r < n_) << "RMQ range out of bounds";
  const size_t bl = l / block_size_;
  const size_t br = r / block_size_;
  if (bl == br) return InBlockArgMin(bl, l, r);
  // Prefix of the left block, suffix of the right block, full blocks between.
  size_t best = InBlockArgMin(bl, l, (bl + 1) * block_size_ - 1);
  best = Better(best, InBlockArgMin(br, br * block_size_, r));
  if (bl + 1 <= br - 1) {
    const size_t mid_block = summary_->ArgMin(bl + 1, br - 1);
    const size_t mid_begin = mid_block * block_size_;
    const size_t mid_end = std::min(n_, mid_begin + block_size_) - 1;
    best = Better(best, InBlockArgMin(mid_block, mid_begin, mid_end));
  }
  return best;
}

// ------------------------------------------------------------------ factory

std::unique_ptr<RangeMinQuery> MakeRmq(RmqKind kind,
                                       std::span<const uint64_t> values) {
  switch (kind) {
    case RmqKind::kSegmentTree:
      return std::make_unique<SegmentTreeRmq>(values);
    case RmqKind::kSparseTable:
      return std::make_unique<SparseTableRmq>(values);
    case RmqKind::kFischerHeun:
      return std::make_unique<FischerHeunRmq>(values);
  }
  return nullptr;
}

const char* RmqKindName(RmqKind kind) {
  switch (kind) {
    case RmqKind::kSegmentTree:
      return "segment_tree";
    case RmqKind::kSparseTable:
      return "sparse_table";
    case RmqKind::kFischerHeun:
      return "fischer_heun";
  }
  return "?";
}

}  // namespace ndss
