#include "align/text_aligner.h"

#include <algorithm>

#include "query/searcher.h"
#include "text/corpus.h"

namespace ndss {

Result<std::vector<AlignedSpanPair>> AlignTexts(
    std::span<const Token> a, std::span<const Token> b,
    const AlignmentOptions& options) {
  if (options.window == 0 || options.stride == 0) {
    return Status::InvalidArgument("window and stride must be positive");
  }
  if (options.stride > options.window) {
    return Status::InvalidArgument("stride must not exceed window");
  }
  std::vector<AlignedSpanPair> pairs;
  if (a.size() < options.window || b.empty()) return pairs;

  Corpus corpus;
  corpus.AddText(b);
  IndexBuildOptions build;
  build.k = options.k;
  build.t = options.t;
  build.seed = options.seed;
  NDSS_ASSIGN_OR_RETURN(Searcher searcher,
                        Searcher::InMemory(corpus, build));

  SearchOptions search;
  search.theta = options.theta;
  search.use_prefix_filter = false;  // one document: lists are short

  // Collect raw (a-window, b-span) matches.
  std::vector<AlignedSpanPair> raw;
  for (size_t begin = 0; begin + options.window <= a.size();
       begin += options.stride) {
    const std::span<const Token> window =
        a.subspan(begin, options.window);
    NDSS_ASSIGN_OR_RETURN(SearchResult result,
                          searcher.Search(window, search));
    for (const MatchSpan& span : result.spans) {
      raw.push_back(AlignedSpanPair{
          static_cast<uint32_t>(begin),
          static_cast<uint32_t>(begin + options.window - 1), span.begin,
          span.end, span.estimated_similarity});
    }
  }

  // Merge pairs whose regions overlap (or touch) on both sides.
  std::sort(raw.begin(), raw.end(),
            [](const AlignedSpanPair& x, const AlignedSpanPair& y) {
              if (x.a_begin != y.a_begin) return x.a_begin < y.a_begin;
              return x.b_begin < y.b_begin;
            });
  for (const AlignedSpanPair& pair : raw) {
    bool merged = false;
    // Only recent spans can still overlap in a-coordinates; scan backwards.
    for (auto it = pairs.rbegin(); it != pairs.rend(); ++it) {
      if (it->a_end + 1 < pair.a_begin) break;  // sorted by a_begin
      const bool a_overlaps = pair.a_begin <= it->a_end + 1;
      const bool b_overlaps =
          pair.b_begin <= it->b_end + 1 && it->b_begin <= pair.b_end + 1;
      if (a_overlaps && b_overlaps) {
        it->a_end = std::max(it->a_end, pair.a_end);
        it->b_begin = std::min(it->b_begin, pair.b_begin);
        it->b_end = std::max(it->b_end, pair.b_end);
        it->estimated_similarity =
            std::max(it->estimated_similarity, pair.estimated_similarity);
        merged = true;
        break;
      }
    }
    if (!merged) pairs.push_back(pair);
  }
  return pairs;
}

}  // namespace ndss
