#ifndef NDSS_ALIGN_TEXT_ALIGNER_H_
#define NDSS_ALIGN_TEXT_ALIGNER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "text/types.h"

namespace ndss {

/// Options for document-vs-document alignment.
struct AlignmentOptions {
  /// Width of the sliding query windows taken from the left document.
  uint32_t window = 64;

  /// Stride between consecutive query windows (<= window for overlap).
  uint32_t stride = 32;

  /// Jaccard similarity threshold for a window to count as aligned.
  double theta = 0.8;

  /// Min-hash functions / length threshold / seed for the ephemeral index.
  uint32_t k = 16;
  uint32_t t = 25;
  uint64_t seed = 0x5eed5eed5eed5eedULL;
};

/// A pair of near-duplicate regions: tokens [a_begin, a_end] of the left
/// document align with tokens [b_begin, b_end] of the right document.
struct AlignedSpanPair {
  uint32_t a_begin;
  uint32_t a_end;
  uint32_t b_begin;
  uint32_t b_end;
  /// Best estimated Jaccard similarity among the merged window matches.
  double estimated_similarity;
};

/// Finds all near-duplicate region pairs between two token sequences — the
/// text-alignment problem of ALIGN/TXTALIGN (the paper's closest related
/// work), solved with this library's machinery: an ephemeral in-memory
/// compact-window index over document `b`, queried with sliding windows of
/// document `a`; overlapping window matches are merged into maximal region
/// pairs.
Result<std::vector<AlignedSpanPair>> AlignTexts(std::span<const Token> a,
                                                std::span<const Token> b,
                                                const AlignmentOptions& options);

}  // namespace ndss

#endif  // NDSS_ALIGN_TEXT_ALIGNER_H_
