#include "ndss/ndss.h"

namespace ndss {

Result<IndexBuildStats> NearDuplicateIndex::Build(
    const Corpus& corpus, const std::string& dir,
    const IndexBuildOptions& options) {
  return BuildIndexInMemory(corpus, dir, options);
}

Result<IndexBuildStats> NearDuplicateIndex::BuildFromFile(
    const std::string& corpus_path, const std::string& dir,
    const IndexBuildOptions& options) {
  return BuildIndexExternal(corpus_path, dir, options);
}

Result<NearDuplicateIndex> NearDuplicateIndex::Open(
    const std::string& dir, const SearcherOptions& options) {
  NDSS_ASSIGN_OR_RETURN(Searcher searcher, Searcher::Open(dir, options));
  return NearDuplicateIndex(std::move(searcher));
}

Result<SearchResult> NearDuplicateIndex::Search(std::span<const Token> query,
                                                const SearchOptions& options) {
  return searcher_.Search(query, options);
}

}  // namespace ndss
