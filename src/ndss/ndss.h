#ifndef NDSS_NDSS_NDSS_H_
#define NDSS_NDSS_NDSS_H_

/// \file
/// Umbrella header and top-level facade of the NDSS library — near-duplicate
/// sequence search at scale (Peng, Wang & Deng, SIGMOD 2023).
///
/// Quickstart:
///
///   #include "ndss/ndss.h"
///
///   ndss::Corpus corpus = ...;                     // tokenized texts
///   ndss::IndexBuildOptions build;
///   build.k = 32;                                  // min-hash functions
///   build.t = 25;                                  // min sequence length
///   auto stats = ndss::NearDuplicateIndex::Build(corpus, "/tmp/idx", build);
///
///   auto index = ndss::NearDuplicateIndex::Open("/tmp/idx");
///   ndss::SearchOptions search;
///   search.theta = 0.8;                            // Jaccard threshold
///   auto result = index->Search(query_tokens, search);
///   for (const ndss::MatchSpan& span : result->spans) { ... }

#include <span>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "index/index_builder.h"
#include "index/index_meta.h"
#include "query/searcher.h"
#include "text/corpus.h"
#include "text/corpus_file.h"
#include "text/types.h"

namespace ndss {

/// High-level handle over a built index: hides the builder/searcher split.
class NearDuplicateIndex {
 public:
  /// Builds an index for an in-memory corpus into `dir`.
  static Result<IndexBuildStats> Build(const Corpus& corpus,
                                       const std::string& dir,
                                       const IndexBuildOptions& options = {});

  /// Builds an index for an on-disk corpus (possibly larger than memory)
  /// into `dir` using the out-of-core hash-aggregation path.
  static Result<IndexBuildStats> BuildFromFile(
      const std::string& corpus_path, const std::string& dir,
      const IndexBuildOptions& options = {});

  /// Opens a previously built index. Fails on an interrupted build (no
  /// commit marker) or checksum damage; with `options.allow_degraded`,
  /// damaged index files are dropped and queries may run degraded (see
  /// SearcherOptions).
  static Result<NearDuplicateIndex> Open(const std::string& dir,
                                         const SearcherOptions& options = {});

  NearDuplicateIndex(NearDuplicateIndex&&) noexcept = default;
  NearDuplicateIndex& operator=(NearDuplicateIndex&&) noexcept = default;

  /// Finds all sequences in the indexed corpus whose estimated Jaccard
  /// similarity with `query` is at least `options.theta`.
  Result<SearchResult> Search(std::span<const Token> query,
                              const SearchOptions& options = {});

  /// Build-time parameters.
  const IndexMeta& meta() const { return searcher_.meta(); }

  /// Direct access to the underlying searcher (percentile helpers etc.).
  Searcher& searcher() { return searcher_; }

 private:
  explicit NearDuplicateIndex(Searcher searcher)
      : searcher_(std::move(searcher)) {}

  Searcher searcher_;
};

}  // namespace ndss

#endif  // NDSS_NDSS_NDSS_H_
