#ifndef NDSS_BASELINE_SUFFIX_ARRAY_H_
#define NDSS_BASELINE_SUFFIX_ARRAY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "text/corpus.h"
#include "text/types.h"

namespace ndss {

/// Suffix array over an entire corpus, supporting exact (verbatim)
/// sequence queries: the "exact memorization" baseline the paper contrasts
/// with near-duplicate search, and the machinery behind exact-substring
/// training-data dedup (Lee et al. 2022).
///
/// Texts are concatenated with per-text unique separators, so matches never
/// cross text boundaries. Construction is prefix-doubling, O(N log² N);
/// queries are binary searches, O(m log N) for a pattern of m tokens.
class SuffixArrayIndex {
 public:
  /// One verbatim occurrence of a pattern.
  struct Occurrence {
    TextId text;
    uint32_t begin;

    friend bool operator==(const Occurrence& a, const Occurrence& b) {
      return a.text == b.text && a.begin == b.begin;
    }
  };

  /// Builds the index; the corpus does not need to outlive it.
  static SuffixArrayIndex Build(const Corpus& corpus);

  /// True iff `pattern` occurs verbatim in some text.
  bool Contains(std::span<const Token> pattern) const;

  /// Number of verbatim occurrences of `pattern` across all texts.
  uint64_t CountOccurrences(std::span<const Token> pattern) const;

  /// Up to `limit` occurrences of `pattern` (0 = all), in suffix order.
  std::vector<Occurrence> FindOccurrences(std::span<const Token> pattern,
                                          size_t limit) const;

  /// Length of the longest prefix of `pattern` that occurs verbatim
  /// somewhere in the corpus (0 if even the first token is absent).
  uint32_t LongestPrefixMatch(std::span<const Token> pattern) const;

  /// Number of elements in the concatenated sequence (tokens + separators).
  size_t size() const { return sequence_.size(); }

 private:
  SuffixArrayIndex() = default;

  /// Lexicographic comparison of the suffix at `pos` against `pattern`:
  /// negative / 0 / positive like memcmp, where 0 means the pattern is a
  /// prefix of the suffix.
  int CompareSuffix(size_t pos, std::span<const Token> pattern) const;

  /// [lo, hi) range of suffixes having `pattern` as a prefix.
  std::pair<size_t, size_t> EqualRange(std::span<const Token> pattern) const;

  Occurrence ToOccurrence(size_t pos) const;

  // Concatenated corpus: tokens as-is; separator after text i is
  // kSeparatorBase + i (distinct from every token and from each other).
  std::vector<uint64_t> sequence_;
  std::vector<uint32_t> suffix_array_;
  std::vector<uint64_t> text_offsets_;  // start of each text in sequence_

  static constexpr uint64_t kSeparatorBase = 1ull << 32;
};

}  // namespace ndss

#endif  // NDSS_BASELINE_SUFFIX_ARRAY_H_
