#include "baseline/suffix_array.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace ndss {

SuffixArrayIndex SuffixArrayIndex::Build(const Corpus& corpus) {
  SuffixArrayIndex index;
  index.sequence_.reserve(corpus.total_tokens() + corpus.num_texts());
  index.text_offsets_.reserve(corpus.num_texts());
  for (size_t i = 0; i < corpus.num_texts(); ++i) {
    index.text_offsets_.push_back(index.sequence_.size());
    for (Token token : corpus.text(i)) index.sequence_.push_back(token);
    index.sequence_.push_back(kSeparatorBase + i);
  }
  const size_t n = index.sequence_.size();
  if (n == 0) return index;

  // Prefix doubling: rank[i] is the rank of suffix i by its first 2^k
  // elements; each round sorts by (rank[i], rank[i + 2^k]).
  std::vector<uint32_t>& sa = index.suffix_array_;
  sa.resize(n);
  std::iota(sa.begin(), sa.end(), 0);
  std::vector<uint64_t> rank(n);
  // Initial ranks: compress the element values.
  {
    std::sort(sa.begin(), sa.end(), [&](uint32_t a, uint32_t b) {
      return index.sequence_[a] < index.sequence_[b];
    });
    uint64_t r = 0;
    rank[sa[0]] = 0;
    for (size_t i = 1; i < n; ++i) {
      if (index.sequence_[sa[i]] != index.sequence_[sa[i - 1]]) ++r;
      rank[sa[i]] = r;
    }
  }
  std::vector<uint64_t> next_rank(n);
  for (size_t k = 1; k < n; k <<= 1) {
    auto key = [&](uint32_t i) {
      const uint64_t second = i + k < n ? rank[i + k] + 1 : 0;
      return (rank[i] << 32) | second;  // safe: ranks < n <= 2^32
    };
    std::sort(sa.begin(), sa.end(),
              [&](uint32_t a, uint32_t b) { return key(a) < key(b); });
    uint64_t r = 0;
    next_rank[sa[0]] = 0;
    for (size_t i = 1; i < n; ++i) {
      if (key(sa[i]) != key(sa[i - 1])) ++r;
      next_rank[sa[i]] = r;
    }
    rank.swap(next_rank);
    if (rank[sa[n - 1]] == n - 1) break;  // all distinct: done
  }
  return index;
}

int SuffixArrayIndex::CompareSuffix(size_t pos,
                                    std::span<const Token> pattern) const {
  const size_t n = sequence_.size();
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (pos + i >= n) return -1;  // suffix exhausted: suffix < pattern
    const uint64_t element = sequence_[pos + i];
    const uint64_t wanted = pattern[i];
    if (element < wanted) return -1;
    if (element > wanted) return 1;
  }
  return 0;
}

std::pair<size_t, size_t> SuffixArrayIndex::EqualRange(
    std::span<const Token> pattern) const {
  // lower bound: first suffix >= pattern (as prefix comparison).
  size_t lo = 0, hi = suffix_array_.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (CompareSuffix(suffix_array_[mid], pattern) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const size_t begin = lo;
  hi = suffix_array_.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (CompareSuffix(suffix_array_[mid], pattern) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return {begin, lo};
}

bool SuffixArrayIndex::Contains(std::span<const Token> pattern) const {
  if (pattern.empty()) return true;
  const auto [lo, hi] = EqualRange(pattern);
  return lo < hi;
}

uint64_t SuffixArrayIndex::CountOccurrences(
    std::span<const Token> pattern) const {
  if (pattern.empty()) return 0;
  const auto [lo, hi] = EqualRange(pattern);
  return hi - lo;
}

SuffixArrayIndex::Occurrence SuffixArrayIndex::ToOccurrence(
    size_t pos) const {
  auto it = std::upper_bound(text_offsets_.begin(), text_offsets_.end(), pos);
  const size_t text = static_cast<size_t>(it - text_offsets_.begin()) - 1;
  return Occurrence{static_cast<TextId>(text),
                    static_cast<uint32_t>(pos - text_offsets_[text])};
}

std::vector<SuffixArrayIndex::Occurrence> SuffixArrayIndex::FindOccurrences(
    std::span<const Token> pattern, size_t limit) const {
  std::vector<Occurrence> occurrences;
  if (pattern.empty()) return occurrences;
  const auto [lo, hi] = EqualRange(pattern);
  for (size_t i = lo; i < hi; ++i) {
    if (limit != 0 && occurrences.size() >= limit) break;
    occurrences.push_back(ToOccurrence(suffix_array_[i]));
  }
  return occurrences;
}

uint32_t SuffixArrayIndex::LongestPrefixMatch(
    std::span<const Token> pattern) const {
  if (pattern.empty() || suffix_array_.empty()) return 0;
  // The suffix sharing the longest prefix with the pattern is adjacent to
  // the pattern's insertion position in suffix order.
  size_t lo = 0, hi = suffix_array_.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (CompareSuffix(suffix_array_[mid], pattern) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  auto common_prefix = [&](size_t sa_index) -> uint32_t {
    const size_t pos = suffix_array_[sa_index];
    uint32_t len = 0;
    while (len < pattern.size() && pos + len < sequence_.size() &&
           sequence_[pos + len] == pattern[len]) {
      ++len;
    }
    return len;
  };
  uint32_t best = 0;
  if (lo < suffix_array_.size()) best = std::max(best, common_prefix(lo));
  if (lo > 0) best = std::max(best, common_prefix(lo - 1));
  return best;
}

}  // namespace ndss
