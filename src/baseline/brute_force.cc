#include "baseline/brute_force.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace ndss {

namespace {

/// Shared implementation over anything with k() and Hash(func, token) —
/// HashFamily or SketchScheme.
template <typename Hasher>
std::vector<BaselineMatch> BruteForceApproxSearchImpl(
    const Corpus& corpus, const Hasher& hasher,
    const MinHashSketch& query_sketch, double theta, uint32_t t) {
  std::vector<BaselineMatch> matches;
  const uint32_t k = hasher.k();
  const uint32_t beta =
      std::min<uint32_t>(k, static_cast<uint32_t>(std::ceil(theta * k)));

  std::vector<uint64_t> running_min(k);
  for (size_t local = 0; local < corpus.num_texts(); ++local) {
    const std::span<const Token> text = corpus.text(local);
    const TextId id = corpus.base_id() + static_cast<TextId>(local);
    const size_t n = text.size();
    for (size_t i = 0; i + t <= n; ++i) {
      for (uint32_t f = 0; f < k; ++f) running_min[f] = ~0ULL;
      for (size_t j = i; j < n; ++j) {
        uint32_t collisions = 0;
        for (uint32_t f = 0; f < k; ++f) {
          const uint64_t h = hasher.Hash(f, text[j]);
          if (h < running_min[f]) running_min[f] = h;
          if (running_min[f] == query_sketch.min_hashes[f]) ++collisions;
        }
        if (j - i + 1 >= t && collisions >= beta) {
          matches.push_back(BaselineMatch{
              id, static_cast<uint32_t>(i), static_cast<uint32_t>(j),
              collisions, static_cast<double>(collisions) / k});
        }
      }
    }
  }
  return matches;
}

}  // namespace

std::vector<BaselineMatch> BruteForceApproxSearch(
    const Corpus& corpus, const HashFamily& family,
    std::span<const Token> query, double theta, uint32_t t) {
  if (query.empty()) return {};
  return BruteForceApproxSearchImpl(
      corpus, family, ComputeSketch(family, query.data(), query.size()),
      theta, t);
}

std::vector<BaselineMatch> BruteForceApproxSearch(
    const Corpus& corpus, const SketchScheme& scheme,
    std::span<const Token> query, double theta, uint32_t t) {
  if (query.empty()) return {};
  return BruteForceApproxSearchImpl(
      corpus, scheme, ComputeSketch(scheme, query.data(), query.size()),
      theta, t);
}

std::vector<BaselineMatch> BruteForceExactSearch(const Corpus& corpus,
                                                 std::span<const Token> query,
                                                 double theta, uint32_t t) {
  std::vector<BaselineMatch> matches;
  if (query.empty()) return matches;
  const std::unordered_set<Token> query_set(query.begin(), query.end());

  for (size_t local = 0; local < corpus.num_texts(); ++local) {
    const std::span<const Token> text = corpus.text(local);
    const TextId id = corpus.base_id() + static_cast<TextId>(local);
    const size_t n = text.size();
    std::unordered_map<Token, uint32_t> counts;
    for (size_t i = 0; i + t <= n; ++i) {
      counts.clear();
      size_t intersection = 0;  // distinct tokens shared with the query
      size_t distinct = 0;      // distinct tokens of the window
      for (size_t j = i; j < n; ++j) {
        uint32_t& count = counts[text[j]];
        if (count == 0) {
          ++distinct;
          if (query_set.count(text[j]) != 0) ++intersection;
        }
        ++count;
        if (j - i + 1 < t) continue;
        const size_t union_size = distinct + query_set.size() - intersection;
        const double similarity =
            union_size == 0
                ? 1.0
                : static_cast<double>(intersection) / union_size;
        if (similarity >= theta) {
          matches.push_back(BaselineMatch{id, static_cast<uint32_t>(i),
                                          static_cast<uint32_t>(j), 0,
                                          similarity});
        }
      }
    }
  }
  return matches;
}

bool ContainsVerbatim(const Corpus& corpus, std::span<const Token> query) {
  if (query.empty()) return true;
  constexpr uint64_t kBase = 1000000007ULL;
  const size_t m = query.size();
  uint64_t pattern_hash = 0;
  uint64_t power = 1;  // kBase^(m-1)
  for (size_t i = 0; i < m; ++i) {
    pattern_hash = pattern_hash * kBase + query[i];
    if (i + 1 < m) power *= kBase;
  }
  for (size_t local = 0; local < corpus.num_texts(); ++local) {
    const std::span<const Token> text = corpus.text(local);
    const size_t n = text.size();
    if (n < m) continue;
    uint64_t rolling = 0;
    for (size_t i = 0; i < m; ++i) rolling = rolling * kBase + text[i];
    for (size_t i = 0;; ++i) {
      if (rolling == pattern_hash &&
          std::equal(query.begin(), query.end(), text.begin() + i)) {
        return true;
      }
      if (i + m >= n) break;
      rolling = (rolling - text[i] * power) * kBase + text[i + m];
    }
  }
  return false;
}

double SpanJaccard(const Corpus& corpus, TextId text, uint32_t begin,
                   uint32_t end, std::span<const Token> query) {
  const std::span<const Token> tokens = corpus.text_by_id(text);
  return ExactDistinctJaccard(tokens.data() + begin, end - begin + 1,
                              query.data(), query.size());
}

}  // namespace ndss
