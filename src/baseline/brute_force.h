#ifndef NDSS_BASELINE_BRUTE_FORCE_H_
#define NDSS_BASELINE_BRUTE_FORCE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "hash/hash_family.h"
#include "sketch/sketch_scheme.h"
#include "text/corpus.h"
#include "text/types.h"

namespace ndss {

/// One sequence found by a baseline scan: tokens [begin, end] of `text`.
struct BaselineMatch {
  TextId text;
  uint32_t begin;
  uint32_t end;
  /// Min-hash collisions with the query (approx search) or unused (exact).
  uint32_t collisions;
  /// Exact distinct Jaccard similarity with the query (exact search) or the
  /// collision-based estimate (approx search).
  double similarity;
};

/// Brute-force evaluation of Definition 2: enumerates every sequence
/// T[i, j] with j - i + 1 >= t of every text and counts its min-hash
/// collisions with the query directly. The index-based search must return
/// exactly the sequences this returns (Theorem 2: sound and complete); used
/// as ground truth in tests and the recall experiment. O(N · L · k) per
/// text of length L — small inputs only.
std::vector<BaselineMatch> BruteForceApproxSearch(
    const Corpus& corpus, const HashFamily& family,
    std::span<const Token> query, double theta, uint32_t t);

/// Same ground truth under a pluggable sketch scheme (for kIndependent the
/// result is bit-identical to the HashFamily overload). Used to validate
/// the index-based search for C-MinHash indexes, whose hash functions are
/// circulant derivations rather than independent mixes.
std::vector<BaselineMatch> BruteForceApproxSearch(
    const Corpus& corpus, const SketchScheme& scheme,
    std::span<const Token> query, double theta, uint32_t t);

/// Brute-force search under the *exact* distinct Jaccard similarity
/// (Definition 1). Incremental set maintenance makes it O(L^2) per text.
std::vector<BaselineMatch> BruteForceExactSearch(const Corpus& corpus,
                                                 std::span<const Token> query,
                                                 double theta, uint32_t t);

/// True iff `query` occurs verbatim (as a contiguous token run) anywhere in
/// the corpus. Rabin–Karp over every text; the "exact memorization"
/// baseline of the Section 5 comparison.
bool ContainsVerbatim(const Corpus& corpus, std::span<const Token> query);

/// Exact distinct Jaccard similarity between `query` and the span
/// [begin, end] of corpus text `text` — re-verification helper.
double SpanJaccard(const Corpus& corpus, TextId text, uint32_t begin,
                   uint32_t end, std::span<const Token> query);

}  // namespace ndss

#endif  // NDSS_BASELINE_BRUTE_FORCE_H_
