#ifndef NDSS_SKETCH_SKETCH_SCHEME_H_
#define NDSS_SKETCH_SKETCH_SCHEME_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "hash/hash_family.h"
#include "text/corpus.h"
#include "text/types.h"

namespace ndss {

/// Which min-hash sketching scheme an index was built with. The numeric
/// values are part of the on-disk format (IndexMeta v3 stores the raw id),
/// so they must never be renumbered; new schemes append.
enum class SketchSchemeId : uint32_t {
  /// k independent SplitMix64 functions (the original HashFamily): every
  /// token is hashed k times, once per function.
  kIndependent = 0,

  /// C-MinHash-style circulant scheme (Li & Li, "C-MinHash: Rigorously
  /// Reducing K Permutations to Two" / "... Practically Reducing Two
  /// Permutations to Just One"): one permutation σ is applied once per
  /// token, and the k functions are circulant re-uses of that single
  /// evaluation. Here σ(x) = SplitMix64(seed ^ (x + 1)) maps into the
  /// 64-bit domain, and the circulant shift of function f is realized as a
  /// bit-rotation of σ(x) by f mod 64 positions followed by XOR with a
  /// per-function 64-bit mask derived from the seed — both bijections of
  /// the 64-bit value domain, so each function still behaves as a random
  /// permutation of the vocabulary, but deriving a function's hash from the
  /// shared base value costs two ALU ops instead of a full SplitMix64 mix.
  /// (The papers shift the permutation over the vocabulary domain [D],
  /// which needs a materialized permutation table; rotating the hash bits
  /// keeps the scheme table-free and streaming-friendly. The estimator
  /// quality claim — variance no worse than k-independent MinHash — is
  /// checked empirically by sketch_test and bench_sketch.)
  kCMinHash = 1,
};

/// Number of defined scheme ids (valid raw ids are [0, kNumSketchSchemes)).
inline constexpr uint32_t kNumSketchSchemes = 2;

/// Canonical lowercase name of a scheme ("kindependent", "cminhash").
const char* SketchSchemeName(SketchSchemeId id);

/// Parses a scheme name as accepted by the --sketch tool flags. Returns
/// InvalidArgument (listing the valid names) for anything else.
Result<SketchSchemeId> ParseSketchSchemeName(const std::string& name);

/// OK when `raw` is a defined scheme id; loud Corruption naming `context`
/// (e.g. the meta file path) otherwise, so a v3 header carrying an unknown
/// scheme is rejected instead of silently misread as some default.
Status ValidateSketchSchemeId(uint32_t raw, const std::string& context);

/// A family of k min-hash functions under one of the pluggable sketching
/// schemes. Deterministic given (id, k, seed): an index built offline and a
/// query computed later agree on every hash value, and the same (scheme,
/// seed) always produces bit-identical indexes across the build, ingest,
/// merge, and shard paths.
///
/// Every function decomposes as Hash(f, x) == HashFromBase(f, BaseHash(x)).
/// For kIndependent the base is the token itself (the full mix happens per
/// function, exactly as HashFamily does it — bit-identical). For kCMinHash
/// the base is the single σ evaluation, and HashFromBase is the cheap
/// circulant derivation; callers that evaluate many functions over the same
/// tokens (index builds, sketch computation) compute the base row once and
/// re-use it k times.
class SketchScheme {
 public:
  /// Creates the k functions derived from `seed`. `k` must be >= 1.
  SketchScheme(SketchSchemeId id, uint32_t k, uint64_t seed);

  SketchSchemeId id() const { return id_; }
  uint32_t k() const { return k_; }
  uint64_t seed() const { return seed_; }

  /// Scheme-specific shared base value of `token` (one evaluation).
  uint64_t BaseHash(Token token) const {
    if (id_ == SketchSchemeId::kIndependent) {
      return static_cast<uint64_t>(token);
    }
    return SplitMix64(seed_ ^ (static_cast<uint64_t>(token) + 1));
  }

  /// Hash under function `func` given the token's base value.
  uint64_t HashFromBase(uint32_t func, uint64_t base) const {
    if (id_ == SketchSchemeId::kIndependent) {
      return SplitMix64(per_func_[func] ^ (base + 1));
    }
    return Rotl64(base, static_cast<int>(func & 63)) ^ per_func_[func];
  }

  /// Hash of `token` under function `func`. `func` must be < k(). For
  /// kIndependent this equals HashFamily(k, seed).Hash(func, token) bit for
  /// bit (proven by sketch_test), so existing v2 indexes keep answering
  /// identically.
  uint64_t Hash(uint32_t func, Token token) const {
    return HashFromBase(func, BaseHash(token));
  }

  /// Fills out[i] = BaseHash(tokens[i]) — the "one permutation" pass.
  void FillBaseRow(const Token* tokens, size_t n, uint64_t* out) const;

  /// Fills out[i] = HashFromBase(func, base[i]) — for kCMinHash a tight
  /// rotate+xor loop, roughly an order of magnitude cheaper per element
  /// than a SplitMix64 evaluation.
  void FillHashRowFromBase(uint32_t func, const uint64_t* base, size_t n,
                           uint64_t* out) const;

  /// Fills out[i] = Hash(func, tokens[i]) without a materialized base row.
  void FillHashRow(uint32_t func, const Token* tokens, size_t n,
                   uint64_t* out) const;

 private:
  static uint64_t Rotl64(uint64_t x, int r) {
    return r == 0 ? x : (x << r) | (x >> (64 - r));
  }

  SketchSchemeId id_;
  uint32_t k_;
  uint64_t seed_;
  /// kIndependent: the per-function seeds, chained exactly like
  /// HashFamily's (x = SplitMix64(x + i)) so function f is identical across
  /// every k — the property degraded k'-of-k search relies on.
  /// kCMinHash: the per-function XOR masks. Either way this derivation is
  /// part of the on-disk format contract: changing it is a format change.
  std::vector<uint64_t> per_func_;
};

/// Computes the k-mins sketch of `tokens` under `scheme`. For kIndependent
/// the result is bit-identical to ComputeSketch(HashFamily(k, seed), ...);
/// for kCMinHash the base row is evaluated once and the k minima are found
/// over cheap circulant derivations. `n` must be >= 1. `base_scratch`, when
/// non-null, is reused for the base row to avoid a per-call allocation.
MinHashSketch ComputeSketch(const SketchScheme& scheme, const Token* tokens,
                            size_t n,
                            std::vector<uint64_t>* base_scratch = nullptr);

/// Materialized base-hash rows for a whole corpus: one uint64 per token,
/// computed once and re-used across all k functions by the index builders
/// (the C-MinHash speedup: k window-generation passes share one hashing
/// pass). For kIndependent nothing is materialized (the base is the token
/// id itself) and enabled() is false. Costs 8 bytes per corpus token while
/// alive, so the external build scopes one to a streamed batch.
class CorpusBaseRows {
 public:
  /// Empty, disabled rows (what kIndependent uses).
  CorpusBaseRows() = default;

  /// Computes the rows for every text of `corpus`, in parallel across texts
  /// when num_threads > 1. Returns a disabled object for kIndependent.
  static CorpusBaseRows Build(const SketchScheme& scheme, const Corpus& corpus,
                              size_t num_threads);

  bool enabled() const { return !offsets_.empty(); }

  /// Base row of text `index` (parallel to corpus.text(index)). Must not be
  /// called when !enabled().
  std::span<const uint64_t> row(size_t index) const {
    return std::span<const uint64_t>(rows_.data() + offsets_[index],
                                     offsets_[index + 1] - offsets_[index]);
  }

 private:
  std::vector<uint64_t> rows_;     ///< rows of every text, concatenated
  std::vector<size_t> offsets_;    ///< num_texts + 1 row boundaries
};

}  // namespace ndss

#endif  // NDSS_SKETCH_SKETCH_SCHEME_H_
