#include "sketch/sketch_scheme.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace ndss {

const char* SketchSchemeName(SketchSchemeId id) {
  switch (id) {
    case SketchSchemeId::kIndependent:
      return "kindependent";
    case SketchSchemeId::kCMinHash:
      return "cminhash";
  }
  return "unknown";
}

Result<SketchSchemeId> ParseSketchSchemeName(const std::string& name) {
  if (name == "kindependent") return SketchSchemeId::kIndependent;
  if (name == "cminhash") return SketchSchemeId::kCMinHash;
  return Status::InvalidArgument(
      "unknown sketch scheme \"" + name +
      "\" (valid: kindependent, cminhash)");
}

Status ValidateSketchSchemeId(uint32_t raw, const std::string& context) {
  if (raw < kNumSketchSchemes) return Status::OK();
  return Status::Corruption("unknown sketch scheme id " + std::to_string(raw) +
                            " in " + context +
                            " (index written by a newer version?)");
}

SketchScheme::SketchScheme(SketchSchemeId id, uint32_t k, uint64_t seed)
    : id_(id), k_(k), seed_(seed) {
  NDSS_CHECK(k >= 1) << "sketch scheme needs at least one function";
  per_func_.reserve(k);
  if (id_ == SketchSchemeId::kIndependent) {
    // Exactly HashFamily's seed chain, so function f of a (k, seed) family
    // is bit-identical whether computed here or there.
    uint64_t x = seed;
    for (uint32_t i = 0; i < k; ++i) {
      x = SplitMix64(x + i);
      per_func_.push_back(x);
    }
  } else {
    // Per-function XOR masks: distinct from the seed chain above (offset by
    // a large odd constant) so cminhash and kindependent never share
    // per-function constants even at the same seed. Mask 0 is forced
    // non-degenerate only by the mix itself; any 64-bit value is a valid
    // mask since XOR is a bijection either way.
    uint64_t x = seed ^ 0x9e3779b97f4a7c15ULL;
    for (uint32_t i = 0; i < k; ++i) {
      x = SplitMix64(x + i);
      per_func_.push_back(x);
    }
  }
}

void SketchScheme::FillBaseRow(const Token* tokens, size_t n,
                               uint64_t* out) const {
  if (id_ == SketchSchemeId::kIndependent) {
    for (size_t i = 0; i < n; ++i) {
      out[i] = static_cast<uint64_t>(tokens[i]);
    }
    return;
  }
  const uint64_t seed = seed_;
  for (size_t i = 0; i < n; ++i) {
    out[i] = SplitMix64(seed ^ (static_cast<uint64_t>(tokens[i]) + 1));
  }
}

void SketchScheme::FillHashRowFromBase(uint32_t func, const uint64_t* base,
                                       size_t n, uint64_t* out) const {
  if (id_ == SketchSchemeId::kIndependent) {
    const uint64_t fseed = per_func_[func];
    for (size_t i = 0; i < n; ++i) {
      out[i] = SplitMix64(fseed ^ (base[i] + 1));
    }
    return;
  }
  const int r = static_cast<int>(func & 63);
  const uint64_t mask = per_func_[func];
  if (r == 0) {
    for (size_t i = 0; i < n; ++i) out[i] = base[i] ^ mask;
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    out[i] = ((base[i] << r) | (base[i] >> (64 - r))) ^ mask;
  }
}

void SketchScheme::FillHashRow(uint32_t func, const Token* tokens, size_t n,
                               uint64_t* out) const {
  for (size_t i = 0; i < n; ++i) out[i] = Hash(func, tokens[i]);
}

MinHashSketch ComputeSketch(const SketchScheme& scheme, const Token* tokens,
                            size_t n, std::vector<uint64_t>* base_scratch) {
  NDSS_CHECK(n >= 1) << "cannot sketch an empty sequence";
  MinHashSketch sketch;
  const uint32_t k = scheme.k();
  sketch.argmin_tokens.resize(k);
  sketch.min_hashes.resize(k);
  if (scheme.id() == SketchSchemeId::kIndependent) {
    // Keep the exact per-function loop of ComputeSketch(HashFamily, ...) so
    // the result (including tie-breaks) stays bit-identical.
    for (uint32_t f = 0; f < k; ++f) {
      uint64_t best_hash = scheme.Hash(f, tokens[0]);
      Token best_token = tokens[0];
      for (size_t i = 1; i < n; ++i) {
        const uint64_t h = scheme.Hash(f, tokens[i]);
        if (h < best_hash || (h == best_hash && tokens[i] < best_token)) {
          best_hash = h;
          best_token = tokens[i];
        }
      }
      sketch.argmin_tokens[f] = best_token;
      sketch.min_hashes[f] = best_hash;
    }
    return sketch;
  }
  // cminhash: one σ pass over the tokens, then k cheap circulant scans over
  // the materialized base row.
  std::vector<uint64_t> local;
  std::vector<uint64_t>& base = base_scratch != nullptr ? *base_scratch : local;
  base.resize(n);
  scheme.FillBaseRow(tokens, n, base.data());
  for (uint32_t f = 0; f < k; ++f) {
    uint64_t best_hash = scheme.HashFromBase(f, base[0]);
    Token best_token = tokens[0];
    for (size_t i = 1; i < n; ++i) {
      const uint64_t h = scheme.HashFromBase(f, base[i]);
      if (h < best_hash || (h == best_hash && tokens[i] < best_token)) {
        best_hash = h;
        best_token = tokens[i];
      }
    }
    sketch.argmin_tokens[f] = best_token;
    sketch.min_hashes[f] = best_hash;
  }
  return sketch;
}

CorpusBaseRows CorpusBaseRows::Build(const SketchScheme& scheme,
                                     const Corpus& corpus,
                                     size_t num_threads) {
  CorpusBaseRows rows;
  if (scheme.id() == SketchSchemeId::kIndependent) return rows;
  const size_t num_texts = corpus.num_texts();
  rows.offsets_.resize(num_texts + 1);
  rows.offsets_[0] = 0;
  for (size_t i = 0; i < num_texts; ++i) {
    rows.offsets_[i + 1] = rows.offsets_[i] + corpus.text_length(i);
  }
  rows.rows_.resize(rows.offsets_[num_texts]);
  num_threads = std::max<size_t>(1, num_threads);
  if (num_threads == 1 || num_texts <= 1) {
    for (size_t i = 0; i < num_texts; ++i) {
      const std::span<const Token> text = corpus.text(i);
      scheme.FillBaseRow(text.data(), text.size(),
                         rows.rows_.data() + rows.offsets_[i]);
    }
    return rows;
  }
  const size_t chunk = (num_texts + num_threads - 1) / num_threads;
  ParallelFor(num_threads, num_threads, [&](size_t th) {
    const size_t begin = th * chunk;
    const size_t end = std::min(num_texts, begin + chunk);
    for (size_t i = begin; i < end; ++i) {
      const std::span<const Token> text = corpus.text(i);
      scheme.FillBaseRow(text.data(), text.size(),
                         rows.rows_.data() + rows.offsets_[i]);
    }
  });
  return rows;
}

}  // namespace ndss
