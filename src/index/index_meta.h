#ifndef NDSS_INDEX_INDEX_META_H_
#define NDSS_INDEX_INDEX_META_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace ndss {

/// Parameters an index was built with; stored beside the k inverted-index
/// files so queries agree with the build on hashing and thresholds.
struct IndexMeta {
  /// Number of hash functions (inverted-index files).
  uint32_t k = 16;

  /// Master seed of the hash family.
  uint64_t seed = 0x5eed5eed5eed5eedULL;

  /// Length threshold t: only sequences with >= t tokens are indexed.
  uint32_t t = 25;

  /// Number of texts in the indexed corpus.
  uint64_t num_texts = 0;

  /// Total tokens in the indexed corpus.
  uint64_t total_tokens = 0;

  /// Zone-map step: one zone entry every `zone_step` windows.
  uint32_t zone_step = 64;

  /// Lists with at least this many windows get a zone map.
  uint32_t zone_threshold = 256;

  /// Saves to `<dir>/index.meta`.
  Status Save(const std::string& dir) const;

  /// Loads from `<dir>/index.meta`.
  static Result<IndexMeta> Load(const std::string& dir);

  /// Path of the inverted-index file for hash function `func` under `dir`.
  static std::string InvertedIndexPath(const std::string& dir, uint32_t func);
};

}  // namespace ndss

#endif  // NDSS_INDEX_INDEX_META_H_
