#ifndef NDSS_INDEX_INDEX_META_H_
#define NDSS_INDEX_INDEX_META_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "sketch/sketch_scheme.h"

namespace ndss {

/// Parameters an index was built with; stored beside the k inverted-index
/// files so queries agree with the build on hashing and thresholds.
struct IndexMeta {
  /// Number of hash functions (inverted-index files).
  uint32_t k = 16;

  /// Master seed of the hash family.
  uint64_t seed = 0x5eed5eed5eed5eedULL;

  /// Length threshold t: only sequences with >= t tokens are indexed.
  uint32_t t = 25;

  /// Number of texts in the indexed corpus.
  uint64_t num_texts = 0;

  /// Total tokens in the indexed corpus.
  uint64_t total_tokens = 0;

  /// Zone-map step: one zone entry every `zone_step` windows.
  uint32_t zone_step = 64;

  /// Lists with at least this many windows get a zone map.
  uint32_t zone_threshold = 256;

  /// Sketching scheme the index was built under (v3 field). v2 metas load
  /// as kIndependent — the only scheme that existed when v2 was written —
  /// so pre-existing indexes keep answering bit-identically.
  SketchSchemeId sketch = SketchSchemeId::kIndependent;

  /// The SketchScheme these parameters describe.
  SketchScheme Scheme() const { return SketchScheme(sketch, k, seed); }

  /// Saves to `<dir>/index.meta` (v3: checksummed, written atomically via a
  /// temp file + rename).
  Status Save(const std::string& dir) const;

  /// Loads from `<dir>/index.meta`, verifying the checksum. Accepts v3 and
  /// v2 (which implies sketch = kIndependent); v1 files are rejected with
  /// InvalidArgument, and a v3 file carrying an unknown sketch-scheme id is
  /// rejected with Corruption rather than silently misread.
  static Result<IndexMeta> Load(const std::string& dir);

  /// Path of the inverted-index file for hash function `func` under `dir`.
  static std::string InvertedIndexPath(const std::string& dir, uint32_t func);
};

/// True when two metas describe the same sketch family — same scheme, k,
/// seed, and t — i.e. their window sets and sketches are drawn from
/// identical hash functions and thresholds, so their indexes may be merged,
/// attached to one sharded searcher, or served against the same queries.
/// Every mismatch-rejection site (merge, shard attach/swap, ingest open)
/// goes through this one predicate.
inline bool SameSketchFamily(const IndexMeta& a, const IndexMeta& b) {
  return a.sketch == b.sketch && a.k == b.k && a.seed == b.seed && a.t == b.t;
}

/// Commit-marker protocol. A completed index build writes `<dir>/CURRENT`
/// as its very last durable step; Searcher::Open refuses a directory with
/// no marker, so a build that crashed at any earlier point is never
/// mistaken for a complete index. Builders remove any stale marker before
/// writing the first byte.
std::string IndexCommitMarkerPath(const std::string& dir);

/// Durably writes the commit marker. Call only after every index file has
/// been published.
Status WriteIndexCommitMarker(const std::string& dir);

/// OK if the marker exists; Corruption (with guidance) otherwise.
Status CheckIndexCommitMarker(const std::string& dir);

/// Removes the marker if present (start-of-build invalidation).
Status RemoveIndexCommitMarker(const std::string& dir);

/// Deletes build leftovers in `dir`: `*.tmp` temp files and `spill.*`
/// partitions from a crashed out-of-core build. Returns the number of
/// entries removed via `removed` if non-null. Missing directory is OK.
Status CleanupIndexOrphans(const std::string& dir,
                           size_t* removed = nullptr);

}  // namespace ndss

#endif  // NDSS_INDEX_INDEX_META_H_
