#ifndef NDSS_INDEX_INDEX_MERGER_H_
#define NDSS_INDEX_INDEX_MERGER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "index/index_builder.h"

namespace ndss {

/// Options for merging shard indexes.
struct IndexMergeOptions {
  /// Zone-map parameters of the merged output.
  uint32_t zone_step = 64;
  uint32_t zone_threshold = 256;

  /// Posting format of the merged output (inputs may differ).
  index_format::PostingFormat posting_format = index_format::kFormatRaw;
};

/// Validates a user-supplied shard directory list: rejects an empty list
/// and duplicate entries (paths are compared lexically normalized, so
/// "shard0" and "./shard0" collide) with a descriptive InvalidArgument.
/// Shared by MergeIndexes and the shard-manifest loader: both interpret the
/// list as a concatenation of disjoint corpora, which a duplicate silently
/// breaks (the same texts would be indexed twice under different ids).
Status ValidateShardDirs(const std::vector<std::string>& shard_dirs);

/// Merges several shard indexes into one.
///
/// Shards must have been built with identical (k, seed, t) — the merge
/// fails otherwise — over disjoint corpus shards whose texts are numbered
/// locally from 0. Shard i's text ids are offset in the output by the total
/// text count of shards 0..i-1, i.e. the merged index describes the
/// concatenation of the shard corpora in the given order.
///
/// This enables distributed or incremental construction: index corpus
/// partitions independently (possibly on different machines), then merge —
/// one sequential pass over every shard's lists per hash function.
Result<IndexBuildStats> MergeIndexes(
    const std::vector<std::string>& shard_dirs, const std::string& out_dir,
    const IndexMergeOptions& options = {});

}  // namespace ndss

#endif  // NDSS_INDEX_INDEX_MERGER_H_
