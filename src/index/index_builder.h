#ifndef NDSS_INDEX_INDEX_BUILDER_H_
#define NDSS_INDEX_INDEX_BUILDER_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "index/index_format.h"
#include "index/index_meta.h"
#include "rmq/rmq.h"
#include "text/corpus.h"
#include "text/corpus_file.h"
#include "window/window_generator.h"

namespace ndss {

/// Options controlling index construction (Algorithm 1 and the out-of-core
/// hash-aggregation variant, Section 3.4).
struct IndexBuildOptions {
  /// Number of min-hash functions k (one inverted-index file each).
  uint32_t k = 16;

  /// Master seed of the hash family; queries must use the same (k, seed).
  uint64_t seed = 0x5eed5eed5eed5eedULL;

  /// Sketching scheme (see SketchSchemeId). kCMinHash hashes each token
  /// once and derives the k functions by circulant re-use, instead of k
  /// independent hash passes; queries must use the same scheme.
  SketchSchemeId sketch = SketchSchemeId::kIndependent;

  /// Length threshold t: only sequences with at least t tokens are indexed.
  uint32_t t = 25;

  /// Zone-map parameters (see InvertedIndexWriter).
  uint32_t zone_step = 64;
  uint32_t zone_threshold = 256;

  /// Posting-list encoding: raw 16-byte records or delta+varint compressed
  /// (roughly 2-3x smaller lists at a small decode cost; compared in
  /// bench_ablation_compression).
  index_format::PostingFormat posting_format = index_format::kFormatRaw;

  /// Worker threads for compact-window generation.
  size_t num_threads = 1;

  /// How windows are generated (paper's RMQ divide-and-conquer or the
  /// equivalent O(n) monotonic stack).
  WindowGenMethod window_method = WindowGenMethod::kMonotonicStack;
  RmqKind rmq_kind = RmqKind::kFischerHeun;

  // ---- out-of-core build only ----

  /// Approximate memory available for one aggregation partition.
  uint64_t memory_budget_bytes = 512ull << 20;

  /// Fan-out of the hash partitioning.
  uint32_t num_partitions = 16;

  /// Tokens per streamed corpus batch.
  uint64_t batch_tokens = 16ull << 20;
};

/// Measurements from one index build; these feed the Figure 2 experiments.
struct IndexBuildStats {
  uint64_t num_windows = 0;     ///< total compact windows across all k files
  uint64_t index_bytes = 0;     ///< total bytes of the k inverted files
  uint64_t spill_bytes = 0;     ///< spill traffic of the out-of-core build
  double generate_seconds = 0;  ///< hashing + window generation (CPU)
  double sort_seconds = 0;      ///< window sorting (CPU)
  double io_seconds = 0;        ///< index/spill file writing
  double total_seconds = 0;     ///< wall clock of the whole build
};

/// Builds the k inverted-index files for an in-memory corpus into directory
/// `dir` (created if needed). One hash function is processed at a time, so
/// peak memory is one function's windows — the paper's medium-corpus path.
Result<IndexBuildStats> BuildIndexInMemory(const Corpus& corpus,
                                           const std::string& dir,
                                           const IndexBuildOptions& options);

/// Builds the index for a corpus file that may not fit in memory, using
/// streaming batches and hash aggregation with disk spill partitions
/// (recursively re-partitioned when above the memory budget) — the paper's
/// large-corpus path.
Result<IndexBuildStats> BuildIndexExternal(const std::string& corpus_path,
                                           const std::string& dir,
                                           const IndexBuildOptions& options);

}  // namespace ndss

#endif  // NDSS_INDEX_INDEX_BUILDER_H_
