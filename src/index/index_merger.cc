#include "index/index_merger.h"

#include <algorithm>
#include <filesystem>
#include <unordered_set>

#include "common/file_io.h"
#include "common/retry.h"
#include "common/stopwatch.h"
#include "index/inverted_index_reader.h"
#include "index/inverted_index_writer.h"

namespace ndss {

Status ValidateShardDirs(const std::vector<std::string>& shard_dirs) {
  if (shard_dirs.empty()) {
    return Status::InvalidArgument(
        "no shard directories given (a shard set must name at least one "
        "shard)");
  }
  std::unordered_set<std::string> seen;
  for (const std::string& dir : shard_dirs) {
    std::string normalized =
        std::filesystem::path(dir).lexically_normal().string();
    // lexically_normal keeps a trailing separator ("a/" stays "a/"), but
    // "a/" and "a" name the same shard directory.
    while (normalized.size() > 1 && normalized.back() == '/') {
      normalized.pop_back();
    }
    if (!seen.insert(normalized).second) {
      return Status::InvalidArgument(
          "duplicate shard directory " + dir +
          ": each shard must appear exactly once (its texts would otherwise "
          "be indexed twice under different ids)");
    }
  }
  return Status::OK();
}

Result<IndexBuildStats> MergeIndexes(
    const std::vector<std::string>& shard_dirs, const std::string& out_dir,
    const IndexMergeOptions& options) {
  NDSS_RETURN_NOT_OK(ValidateShardDirs(shard_dirs));
  Stopwatch total;
  // Load and validate shard metas; compute text-id offsets. Incomplete
  // shards (crashed builds, no commit marker) are rejected up front.
  std::vector<IndexMeta> metas;
  std::vector<TextId> offsets;
  uint64_t num_texts = 0;
  uint64_t total_tokens = 0;
  for (const std::string& dir : shard_dirs) {
    NDSS_RETURN_NOT_OK(CheckIndexCommitMarker(dir));
    NDSS_ASSIGN_OR_RETURN(IndexMeta meta, IndexMeta::Load(dir));
    if (!metas.empty() && !SameSketchFamily(meta, metas[0])) {
      return Status::InvalidArgument(
          "shard " + dir +
          " was built with different (k, seed, t, sketch scheme)");
    }
    offsets.push_back(static_cast<TextId>(num_texts));
    num_texts += meta.num_texts;
    total_tokens += meta.total_tokens;
    metas.push_back(meta);
  }
  if (num_texts > 0xffffffffULL) {
    return Status::InvalidArgument("merged corpus exceeds 2^32 texts");
  }
  NDSS_RETURN_NOT_OK(CreateDirectories(out_dir));
  NDSS_RETURN_NOT_OK(RemoveIndexCommitMarker(out_dir));
  NDSS_RETURN_NOT_OK(CleanupIndexOrphans(out_dir));

  IndexBuildStats stats;
  const uint32_t k = metas[0].k;
  std::vector<PostedWindow> buffer;
  for (uint32_t func = 0; func < k; ++func) {
    // Open every shard's file for this function.
    std::vector<InvertedIndexReader> readers;
    readers.reserve(shard_dirs.size());
    for (const std::string& dir : shard_dirs) {
      NDSS_ASSIGN_OR_RETURN(
          InvertedIndexReader reader,
          InvertedIndexReader::Open(IndexMeta::InvertedIndexPath(dir, func)));
      readers.push_back(std::move(reader));
    }
    NDSS_ASSIGN_OR_RETURN(
        InvertedIndexWriter writer,
        InvertedIndexWriter::Create(
            IndexMeta::InvertedIndexPath(out_dir, func), func,
            options.zone_step, options.zone_threshold,
            options.posting_format));

    // Union of keys across shards, in increasing key order. Each shard's
    // directory is already sorted; a cursor per shard suffices.
    std::vector<size_t> cursors(readers.size(), 0);
    for (;;) {
      Token next_key = kInvalidToken;
      bool any = false;
      for (size_t s = 0; s < readers.size(); ++s) {
        const auto& directory = readers[s].directory();
        if (cursors[s] < directory.size()) {
          const Token key = directory[cursors[s]].key;
          if (!any || key < next_key) next_key = key;
          any = true;
        }
      }
      if (!any) break;
      NDSS_RETURN_NOT_OK(writer.BeginList(next_key));
      for (size_t s = 0; s < readers.size(); ++s) {
        const auto& directory = readers[s].directory();
        if (cursors[s] >= directory.size() ||
            directory[cursors[s]].key != next_key) {
          continue;
        }
        // List reads are idempotent; transient IO errors are retried so one
        // flaky read does not abort the merge. Corruption is not retried.
        NDSS_RETURN_NOT_OK(RunWithRetry(RetryPolicy{}, [&]() -> Status {
          buffer.clear();
          return readers[s].ReadList(directory[cursors[s]], &buffer);
        }));
        for (PostedWindow& window : buffer) window.text += offsets[s];
        NDSS_RETURN_NOT_OK(writer.AddWindows(buffer.data(), buffer.size()));
        ++cursors[s];
      }
    }
    NDSS_RETURN_NOT_OK(writer.Finish());
    stats.num_windows += writer.num_windows();
    stats.index_bytes += writer.bytes_written();
  }

  IndexMeta merged = metas[0];
  merged.num_texts = num_texts;
  merged.total_tokens = total_tokens;
  merged.zone_step = options.zone_step;
  merged.zone_threshold = options.zone_threshold;
  NDSS_RETURN_NOT_OK(merged.Save(out_dir));
  NDSS_RETURN_NOT_OK(WriteIndexCommitMarker(out_dir));
  stats.total_seconds = total.ElapsedSeconds();
  return stats;
}

}  // namespace ndss
