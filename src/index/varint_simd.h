#ifndef NDSS_INDEX_VARINT_SIMD_H_
#define NDSS_INDEX_VARINT_SIMD_H_

#include <cstdint>
#include <cstring>

#include "common/coding.h"
#include "index/posting.h"

/// SIMD posting-window decoder (see DecodeWindowRun in varint_block.h for
/// the format). The scalar decoder walks one varint at a time, so every
/// varint's length gates the address of the next — a serial chain of
/// byte-test branches whose throughput lives and dies by the branch
/// predictor. The vector path breaks that chain with the masked-varint
/// trick: load 32 encoded bytes, take the continuation-bit mask with
/// VPMOVMSKB, and read every window boundary of the block out of one scalar
/// mask — the only loop-carried value is the block's byte count, a handful
/// of ALU ops from the mask.
///
/// Values are decoded two windows at a time, shuffle-table style: each
/// window's low 12 mask bits index a precomputed PSHUFB control that spreads
/// its four varints into four dword lanes, two windows share one 256-bit
/// register (one lane-parallel shuffle + multiply-add fold), and the
/// (l, c, r) prefix sums come from two in-lane shifted adds, stored with a
/// single 32-byte write. Windows the table cannot express (a varint of five
/// bytes, or a window longer than 12 bytes) fall back to the bounds-checked
/// scalar decode for just that window.
///
/// Output and failure behaviour are bit-identical to the scalar decoder and
/// to reference::DecodeWindowRun: an overlong varint (>= 6 bytes, i.e. five
/// consecutive continuation bits) anywhere in the consumed region fails the
/// run, a legal 5-byte varint truncates its bits >= 32 exactly like
/// GetVarint32, and the tail (fewer than 48 readable bytes, so the unaligned
/// 16-byte window loads could cross `limit`) falls back to the
/// bounds-checked one-varint-at-a-time path.
///
/// Compiled on x86-64 GCC/Clang only (function-level target attributes keep
/// the rest of the TU buildable without -mavx2); eligible at runtime iff the
/// CPU has AVX2+BMI2+POPCNT. Path selection between this and the scalar
/// decoder is done by a one-time calibration in varint_block.h.

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define NDSS_VARINT_SIMD 1
#include <immintrin.h>
#endif

namespace ndss {

#if defined(NDSS_VARINT_SIMD)

/// True when this build carries the vector decoder and the CPU can run it.
inline bool SimdWindowDecodeSupported() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("bmi") &&
         __builtin_cpu_supports("bmi2") && __builtin_cpu_supports("popcnt");
}

namespace simd_internal {

/// PSHUFB controls indexed by a window's low 12 continuation bits: entry wm
/// spreads the window's four varints into the four dword lanes of a 128-bit
/// register (byte b of varint v lands in lane v byte b; 0x80 pads the rest
/// with zeros). wlen[wm] is the window's encoded size, or 0 when the pattern
/// cannot be shuffled (a varint of 5 bytes, or a window past 12 bytes) and
/// the caller must decode that window scalar. Slices taken near the end of a
/// 32-byte view are safe even though zero bits shift in past bit 31: the
/// walk only looks at bytes up to the window's 4th terminator, and a window
/// that ends inside the view has all four terminators among the real bits.
struct ShuffleTables {
  alignas(64) uint8_t ctrl[4096][16];
  uint8_t wlen[4096];
};

inline const ShuffleTables* GetShuffleTables() {
  static const ShuffleTables* tables = [] {
    static ShuffleTables t;
    for (uint32_t wm = 0; wm < 4096; ++wm) {
      t.wlen[wm] = 0;
      uint32_t pos = 0;
      uint8_t ctrl[16];
      std::memset(ctrl, 0x80, sizeof(ctrl));
      bool ok = true;
      for (int v = 0; v < 4; ++v) {
        uint32_t len = 0;
        while (pos + len < 12 && ((wm >> (pos + len)) & 1)) ++len;
        ++len;  // the terminator byte
        if (pos + len > 12 || len > 4) {
          ok = false;
          break;
        }
        for (uint32_t b = 0; b < len; ++b) {
          ctrl[4 * v + b] = static_cast<uint8_t>(pos + b);
        }
        pos += len;
      }
      if (!ok) continue;
      std::memcpy(t.ctrl[wm], ctrl, sizeof(ctrl));
      t.wlen[wm] = static_cast<uint8_t>(pos);
    }
    return &t;
  }();
  return tables;
}

/// Bounds-checked decode of exactly one window at *p, shared by every slow
/// path of the vector decoder. Returns false on a truncated or overlong
/// varint (matching GetVarint32 exactly).
inline bool DecodeOneWindowChecked(const char** p, const char* limit,
                                   uint32_t* prev_text, uint64_t* n,
                                   PostedWindow* out) {
  uint32_t text_field, l, c_delta, r_delta;
  const char* q = GetVarint32(*p, limit, &text_field);
  if (q != nullptr) q = GetVarint32(q, limit, &l);
  if (q != nullptr) q = GetVarint32(q, limit, &c_delta);
  if (q != nullptr) q = GetVarint32(q, limit, &r_delta);
  if (q == nullptr) return false;
  *p = q;
  // Window 0 of the run is a restart point (absolute text); prev_text
  // starts at 0 so the unconditional add covers it.
  const uint32_t text = *prev_text + text_field;
  *prev_text = text;
  out[(*n)++] = PostedWindow{text, l, l + c_delta, l + c_delta + r_delta};
  return true;
}

/// pext masks and window lengths for the word-at-a-time decoder, indexed
/// by the 8 terminator bits of one 8-byte load at a window start. Entry m
/// describes a window whose four varints all terminate within those 8
/// bytes: field[m][v] selects varint v's data bits (0x7f per byte, so
/// _pext_u64 both gathers the 7-bit groups and strips the continuation
/// bits in one instruction), wlen[m] is the window's encoded size. wlen 0
/// means the window is not fully in view (fat varints push its 4th
/// terminator past byte 7, or a varint is overlong) and the caller must
/// decode it checked.
struct WordTables {
  /// One cache line per pattern: the four pext masks plus the window
  /// length in slot 4 (0 = fall back), so the hot loop reaches everything
  /// it needs off one shifted base address.
  struct alignas(64) Entry {
    uint64_t field[4];
    uint64_t wlen;
  };
  Entry entry[256];
};

inline const WordTables* GetWordTables() {
  static const WordTables* tables = [] {
    static WordTables t;
    for (uint32_t m = 0; m < 256; ++m) {
      WordTables::Entry& e = t.entry[m];
      e = WordTables::Entry{};
      uint32_t pos = 0;
      bool ok = true;
      uint64_t fields[4] = {0, 0, 0, 0};
      for (int v = 0; v < 4; ++v) {
        uint32_t end = pos;
        while (end < 8 && ((m >> end) & 1) == 0) ++end;
        // A 5-byte varint stays expressible: pext yields its 35 data bits
        // and the uint32 cast truncates exactly like GetVarint32. 6+ bytes
        // (overlong) can never fit 4 terminators in 8 bytes, so those
        // patterns all land here and fall back to the checked decoder.
        if (end >= 8) {
          ok = false;
          break;
        }
        for (uint32_t b = pos; b <= end; ++b) {
          fields[v] |= 0x7full << (8 * b);
        }
        pos = end + 1;
      }
      if (!ok) continue;
      for (int v = 0; v < 4; ++v) e.field[v] = fields[v];
      e.wlen = pos;
    }
    return &t;
  }();
  return tables;
}

}  // namespace simd_internal

/// True when this build carries the word-at-a-time decoder and the CPU can
/// run it (BMI1/BMI2 only — no vector units needed).
inline bool WordWindowDecodeSupported() {
  return __builtin_cpu_supports("bmi") && __builtin_cpu_supports("bmi2");
}

/// Word-at-a-time DecodeWindowRun: one 8-byte load covers a whole common
/// window (four varints), whose terminator bits — gathered with one pext —
/// index precomputed pext masks that extract all four values with no
/// per-byte branches. The load address chain is broken differently from
/// the vector decoder: posting streams are length-stable (the same field
/// widths repeat for long stretches), so the next window's address is
/// speculated as p + previous window's length and fixed up behind a
/// predicted branch, instead of waiting on the table load. Windows not
/// fully inside the 8-byte view fall back to the checked decoder, which
/// also supplies the exact overlong/truncation failure behaviour. Output
/// is bit-identical to the scalar and reference decoders.
__attribute__((target("bmi,bmi2"))) inline const char* DecodeWindowRunWord(
    const char* p, const char* limit, uint64_t max_windows, PostedWindow* out,
    uint64_t* decoded) {
  const simd_internal::WordTables* tbl = simd_internal::GetWordTables();
  constexpr uint64_t kTermBits = 0x8080808080808080ull;
  uint32_t prev_text = 0;
  PostedWindow* o = out;
  PostedWindow* const o_end = out + max_windows;
  // Speculative stride; any value works, the first window corrects it.
  // wlen is always in [4, 8], so the stride never exceeds 8.
  uint64_t guess = 6;
  // Paired fast loop: two windows per iteration. The second 8-byte load is
  // issued at p + guess before the first window's length is known — both
  // addresses are loop-invariant-predictable, so neither load waits on the
  // table lookup. A wrong guess (or a window needing the checked path)
  // commits only the first window and retrains the stride. Loop control,
  // bounds checks and the prefetch are paid once per pair.
  while (o + 2 <= o_end && static_cast<size_t>(limit - p) >= 16) {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p + 256);
#endif
    uint64_t w1, w2;
    std::memcpy(&w1, p, sizeof(w1));
    std::memcpy(&w2, p + guess, sizeof(w2));
    const uint64_t m1 = _pext_u64(~w1 & kTermBits, kTermBits);
    const uint64_t m2 = _pext_u64(~w2 & kTermBits, kTermBits);
    const simd_internal::WordTables::Entry& e1 = tbl->entry[m1];
    const simd_internal::WordTables::Entry& e2 = tbl->entry[m2];
    const uint64_t len1 = e1.wlen;
    const uint64_t len2 = e2.wlen;
    // Extract and store window 1 before branching (a fallback pattern has
    // all-zero masks, so the extraction is harmless garbage that the
    // checked decoder overwrites).
    const uint32_t text1 =
        prev_text + static_cast<uint32_t>(_pext_u64(w1, e1.field[0]));
    const uint32_t l1 = static_cast<uint32_t>(_pext_u64(w1, e1.field[1]));
    const uint32_t c1 =
        l1 + static_cast<uint32_t>(_pext_u64(w1, e1.field[2]));
    const uint32_t r1 =
        c1 + static_cast<uint32_t>(_pext_u64(w1, e1.field[3]));
    const uint64_t lo1 = text1 | (static_cast<uint64_t>(l1) << 32);
    const uint64_t hi1 = c1 | (static_cast<uint64_t>(r1) << 32);
    std::memcpy(o, &lo1, sizeof(lo1));
    std::memcpy(reinterpret_cast<char*>(o) + 8, &hi1, sizeof(hi1));
    if (len1 != guess || len2 == 0) {
      if (len1 == 0) {
        // Checked fallback on throwaway copies — the hot state must never
        // have its address taken (see the tail loop below).
        const char* q = p;
        uint32_t pt = prev_text;
        uint64_t nn = 0;
        if (!simd_internal::DecodeOneWindowChecked(&q, limit, &pt, &nn, o)) {
          return nullptr;
        }
        p = q;
        prev_text = pt;
        ++o;
        continue;
      }
      // w2 was loaded at the wrong address (or needs the checked path):
      // commit window 1 alone and retrain the stride.
      prev_text = text1;
      ++o;
      p += len1;
      guess = len1;
      continue;
    }
    const uint32_t text2 =
        text1 + static_cast<uint32_t>(_pext_u64(w2, e2.field[0]));
    const uint32_t l2 = static_cast<uint32_t>(_pext_u64(w2, e2.field[1]));
    const uint32_t c2 =
        l2 + static_cast<uint32_t>(_pext_u64(w2, e2.field[2]));
    const uint32_t r2 =
        c2 + static_cast<uint32_t>(_pext_u64(w2, e2.field[3]));
    const uint64_t lo2 = text2 | (static_cast<uint64_t>(l2) << 32);
    const uint64_t hi2 = c2 | (static_cast<uint64_t>(r2) << 32);
    std::memcpy(o + 1, &lo2, sizeof(lo2));
    std::memcpy(reinterpret_cast<char*>(o + 1) + 8, &hi2, sizeof(hi2));
    prev_text = text2;
    o += 2;
    // Advance speculatively by two strides — a sum of registers, so the
    // next iteration's loads never wait on this pair's table lookups — and
    // fix up behind a predicted branch when window 2 broke the pattern.
    p += guess << 1;
    if (len2 != guess) {
      p += len2;
      p -= guess;
      guess = len2;
    }
  }
  // Single-window tail: the last pair's worth of windows and short inputs.
  while (o < o_end && p < limit) {
    if (static_cast<size_t>(limit - p) < 8) {
      // Tail (or a window past the view, below): the hot loop's state must
      // never have its address taken — that would force its values onto
      // the stack and put a store-forward round trip into the pointer
      // chain — so the checked fallback works on throwaway copies.
      const char* q = p;
      uint32_t pt = prev_text;
      uint64_t nn = 0;
      if (!simd_internal::DecodeOneWindowChecked(&q, limit, &pt, &nn, o)) {
        return nullptr;
      }
      p = q;
      prev_text = pt;
      ++o;
      continue;
    }
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p + 256);
#endif
    uint64_t w;
    std::memcpy(&w, p, sizeof(w));
    const uint64_t term = ~w & 0x8080808080808080ull;
    const uint64_t m = _pext_u64(term, 0x8080808080808080ull);
    const simd_internal::WordTables::Entry& e = tbl->entry[m];
    const uint64_t len = e.wlen;
    if (len == 0) {
      // Window runs past the 8-byte view (or holds an overlong varint).
      const char* q = p;
      uint32_t pt = prev_text;
      uint64_t nn = 0;
      if (!simd_internal::DecodeOneWindowChecked(&q, limit, &pt, &nn, o)) {
        return nullptr;
      }
      p = q;
      prev_text = pt;
      ++o;
      continue;
    }
    const uint64_t tf = _pext_u64(w, e.field[0]);
    const uint64_t l = _pext_u64(w, e.field[1]);
    const uint64_t cd = _pext_u64(w, e.field[2]);
    const uint64_t rd = _pext_u64(w, e.field[3]);
    // Window 0 of the run restarts with an absolute text id; prev_text
    // starts at 0 so the unconditional add covers it. Stores go out as two
    // packed 64-bit writes ({text, l} and {c, r}) — cheaper than the
    // vector insert sequence the compiler picks for a struct store.
    const uint32_t text = prev_text + static_cast<uint32_t>(tf);
    prev_text = text;
    const uint32_t l32 = static_cast<uint32_t>(l);
    const uint32_t c = l32 + static_cast<uint32_t>(cd);
    const uint32_t r = c + static_cast<uint32_t>(rd);
    const uint64_t lo = text | (static_cast<uint64_t>(l32) << 32);
    const uint64_t hi = c | (static_cast<uint64_t>(r) << 32);
    std::memcpy(o, &lo, sizeof(lo));
    std::memcpy(reinterpret_cast<char*>(o) + 8, &hi, sizeof(hi));
    ++o;
    p += guess;
    if (len != guess) {
      p += len;
      p -= guess;
      guess = len;
    }
  }
  *decoded = static_cast<uint64_t>(o - out);
  return p;
}

/// Vector DecodeWindowRun. Same contract as the scalar decoder; see the
/// file comment for how the serial varint chain is broken.
__attribute__((target("avx2,bmi,bmi2,popcnt"))) inline const char*
DecodeWindowRunSimd(const char* p, const char* limit, uint64_t max_windows,
                    PostedWindow* out, uint64_t* decoded) {
  using simd_internal::DecodeOneWindowChecked;
  const simd_internal::ShuffleTables* tbl = simd_internal::GetShuffleTables();
  const __m256i k7f = _mm256_set1_epi8(0x7f);
  // maddubs pairs (unsigned multiplier, signed data <= 0x7f): b0 + (b1 << 7)
  // per byte pair; madd then folds the 16-bit halves: lo + (hi << 14).
  const __m256i kMul1 = _mm256_set1_epi16(static_cast<short>(0x8001));
  const __m256i kMul2 = _mm256_set1_epi32((1 << 30) | 1);
  const __m256i kKeep123 = _mm256_setr_epi32(0, -1, -1, -1, 0, -1, -1, -1);
  uint32_t prev_text = 0;
  uint64_t n = 0;
  while (n < max_windows && p < limit) {
    if (static_cast<size_t>(limit - p) < 48) {
      // Tail: a window load could cross `limit` — decode checked.
      if (!DecodeOneWindowChecked(&p, limit, &prev_text, &n, out)) {
        return nullptr;
      }
      continue;
    }
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p + 256);
#endif
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    // Bit i of `cont`: byte i continues its varint; of `ends`: byte i
    // terminates one. The block holds popcount(ends)/4 complete windows.
    const uint32_t cont = static_cast<uint32_t>(_mm256_movemask_epi8(v));
    const uint32_t ends = ~cont;
    uint64_t nw = _mm_popcnt_u32(ends) / 4;
    if (nw > max_windows - n) nw = max_windows - n;
    if (nw == 0) {
      // No complete window in view (giant varints, or an overlong one
      // still running): decode one window checked — it handles every
      // case, including failing exactly where the scalar would.
      if (!DecodeOneWindowChecked(&p, limit, &prev_text, &n, out)) {
        return nullptr;
      }
      continue;
    }
    // Position of the last consumed terminator: the (4*nw)-th set bit.
    const uint32_t last = _tzcnt_u32(_pdep_u32(1u << (4 * nw - 1), ends));
    // Overlong check for the whole consumed region at once: a varint of
    // >= 6 bytes is >= 5 consecutive continuation bits (runs of ones in
    // `cont` never span varints — each ends with a 0 bit).
    const uint32_t overlong =
        cont & (cont >> 1) & (cont >> 2) & (cont >> 3) & (cont >> 4);
    const uint32_t consumed_mask =
        last >= 31 ? 0xffffffffu : ((1u << (last + 1)) - 1);
    if (overlong & consumed_mask) return nullptr;
    // One bit per window at its last terminator (the 4th, 8th, ... set
    // bits of `ends`), so each window's end pops out of one tzcnt.
    uint32_t wends = _pdep_u32(0x88888888u, ends);
    uint32_t s = 0;
    uint64_t j = 0;
    for (; j + 2 <= nw; j += 2) {
      const uint32_t wm0 = (cont >> s) & 0xfff;
      const uint32_t e3a = _tzcnt_u32(wends);
      wends = _blsr_u32(wends);
      const uint32_t s1 = e3a + 1;
      const uint32_t wm1 = (cont >> s1) & 0xfff;
      const uint32_t e3b = _tzcnt_u32(wends);
      wends = _blsr_u32(wends);
      if (tbl->wlen[wm0] == 0 || tbl->wlen[wm1] == 0) {
        // A 5-byte varint or a > 12-byte window: decode the pair checked.
        // Overlong varints were rejected above, and both windows end by
        // e3b < 32, so this cannot fail — the nullptr check is belt and
        // braces.
        const char* q = p + s;
        const char* pair_limit = p + e3b + 1;
        for (int k = 0; k < 2; ++k) {
          if (!DecodeOneWindowChecked(&q, pair_limit, &prev_text, &n, out)) {
            return nullptr;
          }
        }
        s = e3b + 1;
        continue;
      }
      const __m256i raw = _mm256_inserti128_si256(
          _mm256_castsi128_si256(
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + s))),
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + s1)), 1);
      const __m256i ctrl = _mm256_inserti128_si256(
          _mm256_castsi128_si256(_mm_load_si128(
              reinterpret_cast<const __m128i*>(tbl->ctrl[wm0]))),
          _mm_load_si128(reinterpret_cast<const __m128i*>(tbl->ctrl[wm1])),
          1);
      __m256i t = _mm256_shuffle_epi8(raw, ctrl);
      t = _mm256_and_si256(t, k7f);
      t = _mm256_maddubs_epi16(kMul1, t);
      t = _mm256_madd_epi16(t, kMul2);
      // t lanes per 128-bit half: [text delta, l, c - l, r - c].
      // Build [_, l, c, r] with two shifted prefix adds, store both
      // windows in one 32-byte write, then patch the text ids.
      __m256i u = _mm256_and_si256(t, kKeep123);
      u = _mm256_add_epi32(u, _mm256_slli_si256(u, 4));
      u = _mm256_add_epi32(u, _mm256_slli_si256(u, 8));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(&out[n]), u);
      const uint32_t text0 =
          prev_text + static_cast<uint32_t>(_mm256_extract_epi32(t, 0));
      const uint32_t text1 =
          text0 + static_cast<uint32_t>(_mm256_extract_epi32(t, 4));
      prev_text = text1;
      out[n].text = text0;
      out[n + 1].text = text1;
      n += 2;
      s = e3b + 1;
    }
    if (j < nw) {
      // Odd leftover window of the block.
      const uint32_t e3 = _tzcnt_u32(wends);
      const char* q = p + s;
      if (!DecodeOneWindowChecked(&q, p + e3 + 1, &prev_text, &n, out)) {
        return nullptr;
      }
      s = e3 + 1;
    }
    p += s;
  }
  *decoded = n;
  return p;
}

#else  // !NDSS_VARINT_SIMD

inline bool SimdWindowDecodeSupported() { return false; }
inline bool WordWindowDecodeSupported() { return false; }

#endif  // NDSS_VARINT_SIMD

}  // namespace ndss

#endif  // NDSS_INDEX_VARINT_SIMD_H_
