#include "index/index_builder.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "common/file_io.h"
#include "common/logging.h"
#include "common/retry.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "index/inverted_index_writer.h"
#include "index/posting.h"
#include "sketch/sketch_scheme.h"

namespace ndss {

namespace {

Status ValidateOptions(const IndexBuildOptions& options) {
  if (options.k == 0) return Status::InvalidArgument("k must be >= 1");
  if (options.t == 0) return Status::InvalidArgument("t must be >= 1");
  if (options.zone_step == 0) {
    return Status::InvalidArgument("zone_step must be >= 1");
  }
  if (options.num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be >= 1");
  }
  return Status::OK();
}

IndexMeta MakeMeta(const IndexBuildOptions& options, uint64_t num_texts,
                   uint64_t total_tokens) {
  IndexMeta meta;
  meta.k = options.k;
  meta.seed = options.seed;
  meta.t = options.t;
  meta.num_texts = num_texts;
  meta.total_tokens = total_tokens;
  meta.zone_step = options.zone_step;
  meta.zone_threshold = options.zone_threshold;
  meta.sketch = options.sketch;
  return meta;
}

/// Generates the KeyedWindows of every text of `corpus` under function
/// `func`, in parallel across texts. When `base_rows` is enabled (C-MinHash
/// builds), the hash row of each text is derived from its precomputed base
/// row — the single σ pass shared by all k functions — instead of hashing
/// the tokens again. Output order is unspecified, and the downstream sort
/// by KeyedWindowLess (a total order) makes the emitted index bytes
/// independent of it.
void GenerateFunctionWindows(const Corpus& corpus, const SketchScheme& scheme,
                             const CorpusBaseRows& base_rows, uint32_t func,
                             const IndexBuildOptions& options,
                             std::vector<KeyedWindow>* out) {
  const size_t num_texts = corpus.num_texts();
  const size_t num_threads = std::max<size_t>(1, options.num_threads);
  auto generate_range = [&](size_t begin, size_t end,
                            std::vector<KeyedWindow>* sink) {
    WindowGenerator generator(options.window_method, options.rmq_kind);
    std::vector<CompactWindow> windows;
    for (size_t i = begin; i < end; ++i) {
      const std::span<const Token> text = corpus.text(i);
      windows.clear();
      if (base_rows.enabled()) {
        generator.GenerateFromBase(scheme, func, base_rows.row(i), options.t,
                                   &windows);
      } else {
        generator.Generate(scheme, func, text, options.t, &windows);
      }
      const TextId id = corpus.base_id() + static_cast<TextId>(i);
      for (const CompactWindow& w : windows) {
        sink->push_back(KeyedWindow{text[w.c], id, w.l, w.c, w.r});
      }
    }
  };
  if (num_threads == 1) {
    generate_range(0, num_texts, out);
    return;
  }
  // Each thread fills a private buffer (the paper's parallel build); buffers
  // are concatenated afterwards.
  std::vector<std::vector<KeyedWindow>> buffers(num_threads);
  const size_t chunk = (num_texts + num_threads - 1) / num_threads;
  ParallelFor(num_threads, num_threads, [&](size_t th) {
    const size_t begin = th * chunk;
    const size_t end = std::min(num_texts, begin + chunk);
    generate_range(begin, end, &buffers[th]);
  });
  for (auto& buffer : buffers) {
    out->insert(out->end(), buffer.begin(), buffer.end());
  }
}

}  // namespace

Result<IndexBuildStats> BuildIndexInMemory(const Corpus& corpus,
                                           const std::string& dir,
                                           const IndexBuildOptions& options) {
  NDSS_RETURN_NOT_OK(ValidateOptions(options));
  NDSS_RETURN_NOT_OK(CreateDirectories(dir));
  // Invalidate any previous build before the first byte is written and sweep
  // leftovers of a crashed one; the marker is re-written as the last step.
  NDSS_RETURN_NOT_OK(RemoveIndexCommitMarker(dir));
  NDSS_RETURN_NOT_OK(CleanupIndexOrphans(dir));
  const SketchScheme scheme(options.sketch, options.k, options.seed);
  Stopwatch total;
  IndexBuildStats stats;

  // C-MinHash: hash every token once up front; the k per-function passes
  // below derive their rows from this (8 bytes per corpus token while the
  // build runs). kIndependent materializes nothing here.
  Stopwatch base_phase;
  const CorpusBaseRows base_rows =
      CorpusBaseRows::Build(scheme, corpus, options.num_threads);
  stats.generate_seconds += base_phase.ElapsedSeconds();

  std::vector<KeyedWindow> windows;
  for (uint32_t func = 0; func < options.k; ++func) {
    Stopwatch phase;
    windows.clear();
    GenerateFunctionWindows(corpus, scheme, base_rows, func, options,
                            &windows);
    stats.generate_seconds += phase.ElapsedSeconds();

    phase.Restart();
    std::sort(windows.begin(), windows.end(), KeyedWindowLess);
    stats.sort_seconds += phase.ElapsedSeconds();

    phase.Restart();
    NDSS_ASSIGN_OR_RETURN(
        InvertedIndexWriter writer,
        InvertedIndexWriter::Create(IndexMeta::InvertedIndexPath(dir, func),
                                    func, options.zone_step,
                                    options.zone_threshold,
                                    options.posting_format));
    NDSS_RETURN_NOT_OK(writer.WriteSorted(windows.data(), windows.size()));
    NDSS_RETURN_NOT_OK(writer.Finish());
    stats.io_seconds += phase.ElapsedSeconds();
    stats.num_windows += windows.size();
    stats.index_bytes += writer.bytes_written();
  }

  const IndexMeta meta =
      MakeMeta(options, corpus.num_texts(), corpus.total_tokens());
  NDSS_RETURN_NOT_OK(meta.Save(dir));
  NDSS_RETURN_NOT_OK(WriteIndexCommitMarker(dir));
  stats.total_seconds = total.ElapsedSeconds();
  return stats;
}

namespace {

std::string SpillPath(const std::string& dir, uint32_t func,
                      uint32_t partition, uint32_t depth) {
  return dir + "/spill." + std::to_string(func) + "." +
         std::to_string(partition) + ".d" + std::to_string(depth);
}

/// Partition of `key` at recursion `depth`: successive base-P digits so a
/// key always stays within one sub-partition of its parent partition.
uint32_t PartitionOf(Token key, uint32_t num_partitions, uint32_t depth) {
  uint64_t value = SplitMix64(key);  // spread consecutive token ids
  for (uint32_t d = 0; d < depth; ++d) value /= num_partitions;
  return static_cast<uint32_t>(value % num_partitions);
}

/// Reads a whole spill file of raw KeyedWindow records. The read is
/// idempotent, so transient IO errors are retried with backoff rather than
/// aborting a multi-hour build.
Result<std::vector<KeyedWindow>> LoadSpill(const std::string& path) {
  std::vector<KeyedWindow> records;
  NDSS_RETURN_NOT_OK(RunWithRetry(RetryPolicy{}, [&]() -> Status {
    records.clear();
    NDSS_ASSIGN_OR_RETURN(FileReader reader, FileReader::Open(path));
    if (reader.size() % sizeof(KeyedWindow) != 0) {
      return Status::Corruption("spill file size not a record multiple: " +
                                path);
    }
    records.resize(reader.size() / sizeof(KeyedWindow));
    if (!records.empty()) {
      NDSS_RETURN_NOT_OK(reader.ReadExact(records.data(), reader.size()));
    }
    return Status::OK();
  }));
  return records;
}

struct ExternalBuildContext {
  const IndexBuildOptions* options;
  std::string dir;
  IndexBuildStats* stats;
};

/// Sorts and writes one partition's windows into `writer`, recursively
/// re-partitioning when the spill file exceeds the memory budget
/// (Section 3.4's recursive partitioning).
Status AggregatePartition(const ExternalBuildContext& ctx,
                          const std::string& path, uint32_t func,
                          uint32_t depth, InvertedIndexWriter* writer) {
  if (!FileExists(path)) return Status::OK();
  NDSS_ASSIGN_OR_RETURN(uint64_t size, FileSize(path));
  const IndexBuildOptions& options = *ctx.options;
  constexpr uint32_t kMaxDepth = 8;
  if (size > options.memory_budget_bytes && depth < kMaxDepth &&
      options.num_partitions > 1) {
    // Re-partition into child spill files by the next key digit.
    NDSS_ASSIGN_OR_RETURN(FileReader reader, FileReader::Open(path));
    std::vector<FileWriter> children;
    std::vector<std::string> child_paths;
    for (uint32_t p = 0; p < options.num_partitions; ++p) {
      std::string child_path = path + "." + std::to_string(p);
      NDSS_ASSIGN_OR_RETURN(FileWriter child, FileWriter::Open(child_path));
      children.push_back(std::move(child));
      child_paths.push_back(std::move(child_path));
    }
    std::vector<KeyedWindow> buffer(1 << 16);
    for (;;) {
      NDSS_ASSIGN_OR_RETURN(
          size_t bytes,
          reader.Read(buffer.data(), buffer.size() * sizeof(KeyedWindow)));
      if (bytes == 0) break;
      const size_t records = bytes / sizeof(KeyedWindow);
      for (size_t i = 0; i < records; ++i) {
        const uint32_t p =
            PartitionOf(buffer[i].key, options.num_partitions, depth + 1);
        NDSS_RETURN_NOT_OK(
            children[p].Append(&buffer[i], sizeof(KeyedWindow)));
        ctx.stats->spill_bytes += sizeof(KeyedWindow);
      }
    }
    for (auto& child : children) NDSS_RETURN_NOT_OK(child.Close());
    NDSS_RETURN_NOT_OK(RemoveFile(path));
    for (const std::string& child_path : child_paths) {
      NDSS_RETURN_NOT_OK(
          AggregatePartition(ctx, child_path, func, depth + 1, writer));
    }
    return Status::OK();
  }
  // Fits (or recursion bottomed out): sort in memory and emit lists.
  Stopwatch phase;
  NDSS_ASSIGN_OR_RETURN(std::vector<KeyedWindow> records, LoadSpill(path));
  ctx.stats->io_seconds += phase.ElapsedSeconds();
  phase.Restart();
  std::sort(records.begin(), records.end(), KeyedWindowLess);
  ctx.stats->sort_seconds += phase.ElapsedSeconds();
  phase.Restart();
  NDSS_RETURN_NOT_OK(writer->WriteSorted(records.data(), records.size()));
  ctx.stats->io_seconds += phase.ElapsedSeconds();
  ctx.stats->num_windows += records.size();
  return RemoveFile(path);
}

}  // namespace

Result<IndexBuildStats> BuildIndexExternal(const std::string& corpus_path,
                                           const std::string& dir,
                                           const IndexBuildOptions& options) {
  NDSS_RETURN_NOT_OK(ValidateOptions(options));
  NDSS_RETURN_NOT_OK(CreateDirectories(dir));
  // Invalidate any previous build and sweep temp/spill leftovers of a
  // crashed one before writing anything.
  NDSS_RETURN_NOT_OK(RemoveIndexCommitMarker(dir));
  NDSS_RETURN_NOT_OK(CleanupIndexOrphans(dir));
  const SketchScheme scheme(options.sketch, options.k, options.seed);
  Stopwatch total;
  IndexBuildStats stats;
  ExternalBuildContext ctx{&options, dir, &stats};

  NDSS_ASSIGN_OR_RETURN(CorpusFileReader corpus,
                        CorpusFileReader::Open(corpus_path));

  // Phase 1: stream batches, generate windows, spill by (func, partition).
  // Buffers are flushed in append mode so only one spill file is open at a
  // time regardless of k * num_partitions.
  const uint32_t P = options.num_partitions;
  std::vector<std::vector<KeyedWindow>> spill_buffers(
      static_cast<size_t>(options.k) * P);
  // Flush a buffer once it holds ~4 MiB of records.
  const size_t flush_records = (4u << 20) / sizeof(KeyedWindow);

  auto flush_buffer = [&](uint32_t func, uint32_t p) -> Status {
    auto& buffer = spill_buffers[static_cast<size_t>(func) * P + p];
    if (buffer.empty()) return Status::OK();
    Stopwatch phase;
    // Only the open is retried: an append that failed mid-way may have
    // reached the file, and re-appending the buffer would duplicate records.
    std::optional<FileWriter> writer;
    NDSS_RETURN_NOT_OK(RunWithRetry(RetryPolicy{}, [&]() -> Status {
      NDSS_ASSIGN_OR_RETURN(FileWriter opened,
                            FileWriter::OpenForAppend(SpillPath(dir, func, p,
                                                                0)));
      writer.emplace(std::move(opened));
      return Status::OK();
    }));
    NDSS_RETURN_NOT_OK(
        writer->Append(buffer.data(), buffer.size() * sizeof(KeyedWindow)));
    NDSS_RETURN_NOT_OK(writer->Close());
    stats.spill_bytes += buffer.size() * sizeof(KeyedWindow);
    stats.io_seconds += phase.ElapsedSeconds();
    buffer.clear();
    return Status::OK();
  };

  NDSS_RETURN_NOT_OK(corpus.SeekToStart());
  std::vector<KeyedWindow> generated;
  for (;;) {
    NDSS_ASSIGN_OR_RETURN(Corpus batch, corpus.ReadBatch(options.batch_tokens));
    if (batch.empty()) break;
    // C-MinHash: one σ pass per batch, shared by the k function loops below
    // and released with the batch (8 bytes per batch token, well under the
    // batch's own footprint).
    Stopwatch base_phase;
    const CorpusBaseRows base_rows =
        CorpusBaseRows::Build(scheme, batch, options.num_threads);
    stats.generate_seconds += base_phase.ElapsedSeconds();
    for (uint32_t func = 0; func < options.k; ++func) {
      Stopwatch phase;
      generated.clear();
      GenerateFunctionWindows(batch, scheme, base_rows, func, options,
                              &generated);
      stats.generate_seconds += phase.ElapsedSeconds();
      for (const KeyedWindow& w : generated) {
        const uint32_t p = PartitionOf(w.key, P, 0);
        auto& buffer = spill_buffers[static_cast<size_t>(func) * P + p];
        buffer.push_back(w);
        if (buffer.size() >= flush_records) {
          NDSS_RETURN_NOT_OK(flush_buffer(func, p));
        }
      }
    }
  }
  for (uint32_t func = 0; func < options.k; ++func) {
    for (uint32_t p = 0; p < P; ++p) {
      NDSS_RETURN_NOT_OK(flush_buffer(func, p));
    }
  }

  // Phase 2: aggregate each partition into the final inverted files.
  for (uint32_t func = 0; func < options.k; ++func) {
    NDSS_ASSIGN_OR_RETURN(
        InvertedIndexWriter writer,
        InvertedIndexWriter::Create(IndexMeta::InvertedIndexPath(dir, func),
                                    func, options.zone_step,
                                    options.zone_threshold,
                                    options.posting_format));
    for (uint32_t p = 0; p < P; ++p) {
      NDSS_RETURN_NOT_OK(
          AggregatePartition(ctx, SpillPath(dir, func, p, 0), func, 0,
                             &writer));
    }
    NDSS_RETURN_NOT_OK(writer.Finish());
    stats.index_bytes += writer.bytes_written();
  }

  const IndexMeta meta =
      MakeMeta(options, corpus.num_texts(), corpus.total_tokens());
  NDSS_RETURN_NOT_OK(meta.Save(dir));
  NDSS_RETURN_NOT_OK(WriteIndexCommitMarker(dir));
  stats.total_seconds = total.ElapsedSeconds();
  return stats;
}

}  // namespace ndss
