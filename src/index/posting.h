#ifndef NDSS_INDEX_POSTING_H_
#define NDSS_INDEX_POSTING_H_

#include <cstdint>

#include "text/types.h"

namespace ndss {

/// A compact window as stored in an inverted list: the text it belongs to
/// plus its (l, c, r) positions. 16 bytes, matching the paper's "4 integers
/// per compact window" accounting (the hash function is implied by the file,
/// the min-hash key by the list).
struct PostedWindow {
  TextId text;
  uint32_t l;
  uint32_t c;
  uint32_t r;

  friend bool operator==(const PostedWindow& a, const PostedWindow& b) {
    return a.text == b.text && a.l == b.l && a.c == b.c && a.r == b.r;
  }
};

static_assert(sizeof(PostedWindow) == 16, "PostedWindow must be 16 bytes");

/// A window tagged with its inverted-list key (the token whose hash is the
/// window's min-hash). The unit of the build pipeline: generation emits
/// KeyedWindows, the builders sort them by (key, text, l) and strip the key
/// into the list directory.
struct KeyedWindow {
  Token key;
  TextId text;
  uint32_t l;
  uint32_t c;
  uint32_t r;

  PostedWindow ToPosted() const { return PostedWindow{text, l, c, r}; }

  friend bool operator==(const KeyedWindow& a, const KeyedWindow& b) {
    return a.key == b.key && a.text == b.text && a.l == b.l && a.c == b.c &&
           a.r == b.r;
  }
};

static_assert(sizeof(KeyedWindow) == 20, "KeyedWindow must be 20 bytes");

/// Ordering used everywhere windows are sorted: by key, then text, then
/// start position.
inline bool KeyedWindowLess(const KeyedWindow& a, const KeyedWindow& b) {
  if (a.key != b.key) return a.key < b.key;
  if (a.text != b.text) return a.text < b.text;
  if (a.l != b.l) return a.l < b.l;
  return a.r < b.r;
}

}  // namespace ndss

#endif  // NDSS_INDEX_POSTING_H_
