#include "index/index_meta.h"

#include "common/file_io.h"

namespace ndss {

namespace {
constexpr uint64_t kMetaMagic = 0x314154454d58444eULL;  // "NDXMETA1"-ish
}  // namespace

Status IndexMeta::Save(const std::string& dir) const {
  NDSS_ASSIGN_OR_RETURN(FileWriter writer,
                        FileWriter::Open(dir + "/index.meta"));
  NDSS_RETURN_NOT_OK(writer.AppendU64(kMetaMagic));
  NDSS_RETURN_NOT_OK(writer.AppendU32(k));
  NDSS_RETURN_NOT_OK(writer.AppendU64(seed));
  NDSS_RETURN_NOT_OK(writer.AppendU32(t));
  NDSS_RETURN_NOT_OK(writer.AppendU64(num_texts));
  NDSS_RETURN_NOT_OK(writer.AppendU64(total_tokens));
  NDSS_RETURN_NOT_OK(writer.AppendU32(zone_step));
  NDSS_RETURN_NOT_OK(writer.AppendU32(zone_threshold));
  return writer.Close();
}

Result<IndexMeta> IndexMeta::Load(const std::string& dir) {
  NDSS_ASSIGN_OR_RETURN(FileReader reader,
                        FileReader::Open(dir + "/index.meta"));
  NDSS_ASSIGN_OR_RETURN(uint64_t magic, reader.ReadU64());
  if (magic != kMetaMagic) {
    return Status::Corruption("bad index meta magic in " + dir);
  }
  IndexMeta meta;
  NDSS_ASSIGN_OR_RETURN(meta.k, reader.ReadU32());
  NDSS_ASSIGN_OR_RETURN(meta.seed, reader.ReadU64());
  NDSS_ASSIGN_OR_RETURN(meta.t, reader.ReadU32());
  NDSS_ASSIGN_OR_RETURN(meta.num_texts, reader.ReadU64());
  NDSS_ASSIGN_OR_RETURN(meta.total_tokens, reader.ReadU64());
  NDSS_ASSIGN_OR_RETURN(meta.zone_step, reader.ReadU32());
  NDSS_ASSIGN_OR_RETURN(meta.zone_threshold, reader.ReadU32());
  return meta;
}

std::string IndexMeta::InvertedIndexPath(const std::string& dir,
                                         uint32_t func) {
  return dir + "/inverted." + std::to_string(func) + ".ndx";
}

}  // namespace ndss
