#include "index/index_meta.h"

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/file_io.h"
#include "common/logging.h"

namespace ndss {

namespace {
// v1 (no checksum) — recognized only for rejection.
constexpr uint64_t kMetaMagicV1 = 0x314154454d58444eULL;  // "NDXMETA1"-ish
// v2 (checksummed, no sketch-scheme field) — still loadable; implies
// sketch = kIndependent, the only scheme that existed then.
constexpr uint64_t kMetaMagicV2 = 0x324154454d58444eULL;  // "NDXMETA2"-ish
constexpr uint64_t kMetaMagic = 0x334154454d58444eULL;    // "NDXMETA3"-ish
// v2: magic u64, k u32, seed u64, t u32, num_texts u64, total_tokens u64,
// zone_step u32, zone_threshold u32, crc u32.
constexpr size_t kMetaSizeV2 = 8 + 4 + 8 + 4 + 8 + 8 + 4 + 4 + 4;
// v3 appends sketch_scheme u32 before the crc.
constexpr size_t kMetaSize = kMetaSizeV2 + 4;
}  // namespace

Status IndexMeta::Save(const std::string& dir) const {
  std::string data;
  data.reserve(kMetaSize);
  PutFixed64(&data, kMetaMagic);
  PutFixed32(&data, k);
  PutFixed64(&data, seed);
  PutFixed32(&data, t);
  PutFixed64(&data, num_texts);
  PutFixed64(&data, total_tokens);
  PutFixed32(&data, zone_step);
  PutFixed32(&data, zone_threshold);
  PutFixed32(&data, static_cast<uint32_t>(sketch));
  PutFixed32(&data, crc32c::Mask(crc32c::Value(data.data(), data.size())));
  return WriteStringToFileAtomic(dir + "/index.meta", data);
}

Result<IndexMeta> IndexMeta::Load(const std::string& dir) {
  NDSS_ASSIGN_OR_RETURN(std::string data,
                        ReadFileToString(dir + "/index.meta"));
  if (data.size() >= 8 && DecodeFixed64(data.data()) == kMetaMagicV1) {
    return Status::InvalidArgument(
        "index meta in " + dir +
        " is format v1 (no checksum); rebuild the index with this version");
  }
  const bool is_v2 =
      data.size() >= 8 && DecodeFixed64(data.data()) == kMetaMagicV2;
  const size_t expected_size = is_v2 ? kMetaSizeV2 : kMetaSize;
  if (data.size() != expected_size) {
    return Status::Corruption("index meta has wrong size in " + dir);
  }
  if (!is_v2 && DecodeFixed64(data.data()) != kMetaMagic) {
    return Status::Corruption("bad index meta magic in " + dir);
  }
  const uint32_t stored_crc = DecodeFixed32(data.data() + expected_size - 4);
  if (crc32c::Value(data.data(), expected_size - 4) !=
      crc32c::Unmask(stored_crc)) {
    return Status::Corruption("index meta checksum mismatch in " + dir);
  }
  IndexMeta meta;
  const char* p = data.data() + 8;
  meta.k = DecodeFixed32(p);
  meta.seed = DecodeFixed64(p + 4);
  meta.t = DecodeFixed32(p + 12);
  meta.num_texts = DecodeFixed64(p + 16);
  meta.total_tokens = DecodeFixed64(p + 24);
  meta.zone_step = DecodeFixed32(p + 32);
  meta.zone_threshold = DecodeFixed32(p + 36);
  if (is_v2) {
    meta.sketch = SketchSchemeId::kIndependent;
  } else {
    const uint32_t raw_scheme = DecodeFixed32(p + 40);
    NDSS_RETURN_NOT_OK(
        ValidateSketchSchemeId(raw_scheme, dir + "/index.meta"));
    meta.sketch = static_cast<SketchSchemeId>(raw_scheme);
  }
  return meta;
}

std::string IndexMeta::InvertedIndexPath(const std::string& dir,
                                         uint32_t func) {
  return dir + "/inverted." + std::to_string(func) + ".ndx";
}

std::string IndexCommitMarkerPath(const std::string& dir) {
  return dir + "/CURRENT";
}

Status WriteIndexCommitMarker(const std::string& dir) {
  return WriteStringToFileAtomic(IndexCommitMarkerPath(dir), "index.meta\n");
}

Status CheckIndexCommitMarker(const std::string& dir) {
  if (FileExists(IndexCommitMarkerPath(dir))) return Status::OK();
  return Status::Corruption(
      "no CURRENT commit marker in " + dir +
      "; the index build did not complete — rebuild the index");
}

Status RemoveIndexCommitMarker(const std::string& dir) {
  return RemoveFile(IndexCommitMarkerPath(dir));
}

Status CleanupIndexOrphans(const std::string& dir, size_t* removed) {
  if (removed != nullptr) *removed = 0;
  auto entries = ListDirectory(dir);
  if (!entries.ok()) {
    // A directory that does not exist yet has no orphans.
    return entries.status().IsNotFound() ? Status::OK() : entries.status();
  }
  for (const std::string& name : *entries) {
    const bool is_tmp =
        name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0;
    const bool is_spill = name.rfind("spill.", 0) == 0;
    if (!is_tmp && !is_spill) continue;
    NDSS_LOG(kWarning) << "removing orphaned build file " << dir << "/"
                       << name;
    NDSS_RETURN_NOT_OK(RemoveFile(dir + "/" + name));
    if (removed != nullptr) ++*removed;
  }
  return Status::OK();
}

}  // namespace ndss
