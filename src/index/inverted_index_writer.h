#ifndef NDSS_INDEX_INVERTED_INDEX_WRITER_H_
#define NDSS_INDEX_INVERTED_INDEX_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "common/result.h"
#include "common/status.h"
#include "index/index_format.h"
#include "index/posting.h"

namespace ndss {

/// Writes one inverted-index file (one hash function's index, Section 3.4),
/// format v2 — checksummed and crash-safe.
///
/// File layout:
///
///   header    : magic u64, func u32, zone_step u32, zone_threshold u32,
///               posting format u32
///   lists     : posting lists back to back, each sorted by (text, l);
///               raw (16-byte records) or delta+varint compressed with
///               restart points every zone_step windows
///   zones     : (text u32, position u32) pairs; lists with at least
///               `zone_threshold` windows get one entry every `zone_step`
///               windows (always including window 0) so a single text's
///               windows can be located without reading the whole list.
///               `position` is a window index (raw) or a byte offset into
///               the list (compressed).
///   directory : per list — key, list CRC32C, count, list offset, list
///               bytes, zone offset, zone count, zone CRC32C — sorted by key
///   footer    : num_lists u64, num_windows u64, directory_offset u64,
///               checksum u32 (CRC32C of header ++ directory ++ footer
///               prefix), pad u32, magic u64
///
/// Durability: all bytes go to `<path>.tmp`; Finish() fsyncs and atomically
/// renames onto `path`, so a crash at any earlier point leaves no file at
/// `path` (a stale temp is swept by the builders' orphan cleanup).
///
/// Lists may be fed in any key order (the directory is sorted at Finish)
/// but keys must be distinct, and windows within a list must be sorted by
/// (text, l) — the builders guarantee this by sorting KeyedWindows first.
class InvertedIndexWriter {
 public:
  static Result<InvertedIndexWriter> Create(
      const std::string& path, uint32_t func, uint32_t zone_step,
      uint32_t zone_threshold,
      index_format::PostingFormat format = index_format::kFormatRaw);

  InvertedIndexWriter(InvertedIndexWriter&&) noexcept = default;
  InvertedIndexWriter& operator=(InvertedIndexWriter&&) noexcept = default;

  /// Starts the list for `key`.
  Status BeginList(Token key);

  /// Appends one window to the open list. Windows must be sorted by
  /// (text, l) within the list.
  Status AddWindow(const PostedWindow& window);

  /// Appends a whole sorted run to the open list.
  Status AddWindows(const PostedWindow* windows, size_t count);

  /// Convenience for builders: writes an entire sorted KeyedWindow array
  /// (grouped by key) in one pass. The array must be sorted with
  /// KeyedWindowLess.
  Status WriteSorted(const KeyedWindow* windows, size_t count);

  /// Closes the current list, writes zones/directory/footer, fsyncs, and
  /// atomically publishes the file at its final path.
  Status Finish();

  uint64_t num_windows() const { return num_windows_; }
  uint64_t bytes_written() const { return writer_.bytes_written(); }
  index_format::PostingFormat format() const { return format_; }

 private:
  struct DirectoryEntry {
    Token key;
    uint64_t count;
    uint64_t list_offset;
    uint64_t list_bytes;
    uint64_t zone_first;  // index into zone_entries_ until Finish
    uint32_t zone_count;
    uint32_t list_crc;    // masked CRC32C of the list bytes
  };

  InvertedIndexWriter(FileWriter writer, std::string final_path,
                      std::string header_bytes, uint32_t zone_step,
                      uint32_t zone_threshold,
                      index_format::PostingFormat format);

  Status FlushCurrentList();

  FileWriter writer_;
  std::string final_path_;
  std::string header_bytes_;    // retained for the footer checksum
  uint32_t zone_step_;
  uint32_t zone_threshold_;
  index_format::PostingFormat format_;
  bool list_open_ = false;
  Token current_key_ = 0;
  uint64_t current_count_ = 0;
  uint64_t current_offset_ = 0;
  uint32_t current_crc_ = 0;    // running CRC32C of the open list's bytes
  TextId prev_text_ = 0;        // delta base (compressed format)
  std::string encode_buffer_;   // per-call encoding scratch (compressed)
  std::vector<std::pair<TextId, uint32_t>> current_zones_;
  std::vector<std::pair<TextId, uint32_t>> zone_entries_;
  std::vector<DirectoryEntry> directory_;
  uint64_t num_windows_ = 0;
  bool finished_ = false;
};

}  // namespace ndss

#endif  // NDSS_INDEX_INVERTED_INDEX_WRITER_H_
