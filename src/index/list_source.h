#ifndef NDSS_INDEX_LIST_SOURCE_H_
#define NDSS_INDEX_LIST_SOURCE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "index/posting.h"

namespace ndss {

class QueryContext;

/// Directory metadata of one inverted list.
struct ListMeta {
  Token key = 0;
  uint64_t count = 0;        ///< number of windows in the list
  uint64_t list_offset = 0;  ///< absolute file offset of the list (on disk)
  uint64_t list_bytes = 0;   ///< encoded size of the list in bytes
  uint64_t zone_offset = 0;  ///< absolute offset of zone entries (0 = none)
  uint32_t zone_count = 0;   ///< number of zone entries
  uint32_t list_crc = 0;     ///< masked CRC32C of the list bytes (v2; 0 in
                             ///< the in-memory index, which skips checks)
  uint32_t zone_crc = 0;     ///< masked CRC32C of the zone region (v2)
};

/// Access interface to one hash function's inverted lists, implemented by
/// the on-disk reader (InvertedIndexReader) and the embedded in-memory
/// index (InMemoryInvertedIndex). The query processor (Searcher) only
/// depends on this interface.
///
/// Thread-safety: FindList, directory, and the read methods may be called
/// concurrently from any number of threads once the source is open. Each
/// read method takes an optional `io_bytes` accumulator so a caller can
/// attribute IO to one query without reading the shared `bytes_read()`
/// counter (whose deltas are meaningless under concurrency), plus an
/// optional QueryContext checked at bounded granularity inside long decode
/// loops — a read under an expired deadline (or a cancelled / out-of-budget
/// query) stops early with the context's error and a possibly partial
/// `out`. nullptr means ungoverned.
class InvertedListSource {
 public:
  virtual ~InvertedListSource() = default;

  /// Directory entry for `key`, or nullptr if the key has no list.
  virtual const ListMeta* FindList(Token key) const = 0;

  /// Appends an entire list to `out`. Adds the bytes read by this call to
  /// `*io_bytes` when non-null.
  virtual Status ReadList(const ListMeta& meta, std::vector<PostedWindow>* out,
                          uint64_t* io_bytes, const QueryContext* ctx) = 0;

  /// Appends only the windows of `text` from the list to `out` (the
  /// second-pass point lookup of prefix filtering). Adds the bytes read by
  /// this call to `*io_bytes` when non-null.
  virtual Status ReadWindowsForText(const ListMeta& meta, TextId text,
                                    std::vector<PostedWindow>* out,
                                    uint64_t* io_bytes,
                                    const QueryContext* ctx) = 0;

  /// Convenience overloads without per-call IO accounting / governance.
  Status ReadList(const ListMeta& meta, std::vector<PostedWindow>* out,
                  uint64_t* io_bytes) {
    return ReadList(meta, out, io_bytes, nullptr);
  }
  Status ReadList(const ListMeta& meta, std::vector<PostedWindow>* out) {
    return ReadList(meta, out, nullptr, nullptr);
  }
  Status ReadWindowsForText(const ListMeta& meta, TextId text,
                            std::vector<PostedWindow>* out,
                            uint64_t* io_bytes) {
    return ReadWindowsForText(meta, text, out, io_bytes, nullptr);
  }
  Status ReadWindowsForText(const ListMeta& meta, TextId text,
                            std::vector<PostedWindow>* out) {
    return ReadWindowsForText(meta, text, out, nullptr, nullptr);
  }

  /// All directory entries, sorted by key.
  virtual const std::vector<ListMeta>& directory() const = 0;

  /// Cumulative bytes of posting data served across all callers (IO for the
  /// on-disk reader, logical bytes for the in-memory index).
  virtual uint64_t bytes_read() const = 0;
};

}  // namespace ndss

#endif  // NDSS_INDEX_LIST_SOURCE_H_
