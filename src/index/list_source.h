#ifndef NDSS_INDEX_LIST_SOURCE_H_
#define NDSS_INDEX_LIST_SOURCE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "index/posting.h"

namespace ndss {

/// Directory metadata of one inverted list.
struct ListMeta {
  Token key = 0;
  uint64_t count = 0;        ///< number of windows in the list
  uint64_t list_offset = 0;  ///< absolute file offset of the list (on disk)
  uint64_t list_bytes = 0;   ///< encoded size of the list in bytes
  uint64_t zone_offset = 0;  ///< absolute offset of zone entries (0 = none)
  uint32_t zone_count = 0;   ///< number of zone entries
  uint32_t list_crc = 0;     ///< masked CRC32C of the list bytes (v2; 0 in
                             ///< the in-memory index, which skips checks)
  uint32_t zone_crc = 0;     ///< masked CRC32C of the zone region (v2)
};

/// Access interface to one hash function's inverted lists, implemented by
/// the on-disk reader (InvertedIndexReader) and the embedded in-memory
/// index (InMemoryInvertedIndex). The query processor (Searcher) only
/// depends on this interface.
class InvertedListSource {
 public:
  virtual ~InvertedListSource() = default;

  /// Directory entry for `key`, or nullptr if the key has no list.
  virtual const ListMeta* FindList(Token key) const = 0;

  /// Appends an entire list to `out`.
  virtual Status ReadList(const ListMeta& meta,
                          std::vector<PostedWindow>* out) = 0;

  /// Appends only the windows of `text` from the list to `out` (the
  /// second-pass point lookup of prefix filtering).
  virtual Status ReadWindowsForText(const ListMeta& meta, TextId text,
                                    std::vector<PostedWindow>* out) = 0;

  /// All directory entries, sorted by key.
  virtual const std::vector<ListMeta>& directory() const = 0;

  /// Cumulative bytes of posting data served (IO for the on-disk reader,
  /// logical bytes for the in-memory index) — the experiments' IO metric.
  virtual uint64_t bytes_read() const = 0;
};

}  // namespace ndss

#endif  // NDSS_INDEX_LIST_SOURCE_H_
