#include "index/memory_index.h"

#include <algorithm>

#include "common/query_context.h"

namespace ndss {

InMemoryInvertedIndex::InMemoryInvertedIndex(const Corpus& corpus,
                                             const SketchScheme& scheme,
                                             uint32_t func, uint32_t t,
                                             WindowGenMethod method,
                                             const CorpusBaseRows* base_rows) {
  WindowGenerator generator(method);
  std::vector<CompactWindow> scratch;
  std::vector<KeyedWindow> keyed;
  const bool from_base = base_rows != nullptr && base_rows->enabled();
  for (size_t i = 0; i < corpus.num_texts(); ++i) {
    const std::span<const Token> text = corpus.text(i);
    scratch.clear();
    if (from_base) {
      generator.GenerateFromBase(scheme, func, base_rows->row(i), t, &scratch);
    } else {
      generator.Generate(scheme, func, text, t, &scratch);
    }
    const TextId id = corpus.base_id() + static_cast<TextId>(i);
    for (const CompactWindow& w : scratch) {
      keyed.push_back(KeyedWindow{text[w.c], id, w.l, w.c, w.r});
    }
  }
  std::sort(keyed.begin(), keyed.end(), KeyedWindowLess);

  windows_.reserve(keyed.size());
  size_t i = 0;
  while (i < keyed.size()) {
    const Token key = keyed[i].key;
    ListMeta meta;
    meta.key = key;
    meta.list_offset = windows_.size();
    while (i < keyed.size() && keyed[i].key == key) {
      windows_.push_back(keyed[i].ToPosted());
      ++i;
    }
    meta.count = windows_.size() - meta.list_offset;
    meta.list_bytes = meta.count * sizeof(PostedWindow);
    directory_.push_back(meta);
  }
}

const ListMeta* InMemoryInvertedIndex::FindList(Token key) const {
  auto it = std::lower_bound(
      directory_.begin(), directory_.end(), key,
      [](const ListMeta& meta, Token k) { return meta.key < k; });
  if (it == directory_.end() || it->key != key) return nullptr;
  return &*it;
}

Status InMemoryInvertedIndex::ReadList(const ListMeta& meta,
                                       std::vector<PostedWindow>* out,
                                       uint64_t* io_bytes,
                                       const QueryContext* ctx) {
  // One memcpy of an in-memory run: a single checkpoint suffices.
  NDSS_RETURN_NOT_OK(CheckQueryContext(ctx));
  const PostedWindow* begin = windows_.data() + meta.list_offset;
  out->insert(out->end(), begin, begin + meta.count);
  const uint64_t bytes = meta.count * sizeof(PostedWindow);
  bytes_served_.fetch_add(bytes, std::memory_order_relaxed);
  if (io_bytes != nullptr) *io_bytes += bytes;
  return Status::OK();
}

Status InMemoryInvertedIndex::ReadWindowsForText(
    const ListMeta& meta, TextId text, std::vector<PostedWindow>* out,
    uint64_t* io_bytes, const QueryContext* ctx) {
  NDSS_RETURN_NOT_OK(CheckQueryContext(ctx));
  const PostedWindow* begin = windows_.data() + meta.list_offset;
  const PostedWindow* end = begin + meta.count;
  // Lists are sorted by (text, l): binary search the text's run.
  const PostedWindow* lo = std::lower_bound(
      begin, end, text,
      [](const PostedWindow& w, TextId t) { return w.text < t; });
  const PostedWindow* hi = std::upper_bound(
      lo, end, text,
      [](TextId t, const PostedWindow& w) { return t < w.text; });
  out->insert(out->end(), lo, hi);
  const uint64_t bytes = static_cast<uint64_t>(hi - lo) * sizeof(PostedWindow);
  bytes_served_.fetch_add(bytes, std::memory_order_relaxed);
  if (io_bytes != nullptr) *io_bytes += bytes;
  return Status::OK();
}

}  // namespace ndss
