#ifndef NDSS_INDEX_MEMORY_INDEX_H_
#define NDSS_INDEX_MEMORY_INDEX_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "hash/hash_family.h"
#include "index/list_source.h"
#include "index/posting.h"
#include "sketch/sketch_scheme.h"
#include "text/corpus.h"
#include "window/window_generator.h"

namespace ndss {

/// One hash function's inverted index held entirely in memory — the
/// embedded counterpart of InvertedIndexWriter/Reader. Used when the corpus
/// is small or ephemeral (text alignment between two documents, tests) and
/// index files on disk would be overhead.
///
/// Lists are stored contiguously, sorted by (key, text, l); the directory
/// carries offsets into the window array (list_offset doubles as the array
/// index). Zone maps are unnecessary: per-text point lookups binary search
/// the list directly.
class InMemoryInvertedIndex : public InvertedListSource {
 public:
  /// Builds the index of hash function `func` over `corpus`: all valid
  /// compact windows with length threshold `t`, grouped by min-hash key.
  /// When `base_rows` is non-null and enabled, the per-text hash rows are
  /// derived from the precomputed base rows (the C-MinHash shared σ pass —
  /// callers building all k functions over one corpus pass the same rows to
  /// every constructor); pass nullptr to hash from the tokens directly.
  InMemoryInvertedIndex(const Corpus& corpus, const SketchScheme& scheme,
                        uint32_t func, uint32_t t,
                        WindowGenMethod method = WindowGenMethod::kMonotonicStack,
                        const CorpusBaseRows* base_rows = nullptr);

  /// Legacy entry point: function `func` of a k-independent HashFamily
  /// (bit-identical to the SketchScheme overload with kIndependent).
  InMemoryInvertedIndex(const Corpus& corpus, const HashFamily& family,
                        uint32_t func, uint32_t t,
                        WindowGenMethod method = WindowGenMethod::kMonotonicStack)
      : InMemoryInvertedIndex(
            corpus, SketchScheme(SketchSchemeId::kIndependent, family.k(),
                                 family.seed()),
            func, t, method) {}

  using InvertedListSource::ReadList;
  using InvertedListSource::ReadWindowsForText;

  const ListMeta* FindList(Token key) const override;
  Status ReadList(const ListMeta& meta, std::vector<PostedWindow>* out,
                  uint64_t* io_bytes, const QueryContext* ctx) override;
  Status ReadWindowsForText(const ListMeta& meta, TextId text,
                            std::vector<PostedWindow>* out,
                            uint64_t* io_bytes,
                            const QueryContext* ctx) override;
  const std::vector<ListMeta>& directory() const override {
    return directory_;
  }
  uint64_t bytes_read() const override {
    return bytes_served_.load(std::memory_order_relaxed);
  }

  /// Total windows in the index.
  uint64_t num_windows() const { return windows_.size(); }

 private:
  std::vector<PostedWindow> windows_;  // all lists, contiguous
  std::vector<ListMeta> directory_;    // list_offset = index into windows_
  std::atomic<uint64_t> bytes_served_{0};
};

}  // namespace ndss

#endif  // NDSS_INDEX_MEMORY_INDEX_H_
