#ifndef NDSS_INDEX_INDEX_FORMAT_H_
#define NDSS_INDEX_INDEX_FORMAT_H_

#include <cstdint>

namespace ndss {
namespace index_format {

/// Magic number of the retired v1 format (no checksums). v1 files are
/// recognized and rejected with a clear error instead of being misread.
inline constexpr uint64_t kIndexMagicV1 = 0x3158444e53534447ULL;

/// Magic number opening and closing every v2 inverted-index file.
inline constexpr uint64_t kIndexMagic = 0x3258444e53534447ULL;

/// Posting-list encoding.
enum PostingFormat : uint32_t {
  /// Fixed 16-byte PostedWindow records; zone entries are
  /// (text, window index).
  kFormatRaw = 0,
  /// Delta + varint encoding with restart points every zone_step windows
  /// (text absolute at restarts, delta otherwise; l, c-l, r-c varints);
  /// zone entries are (text, byte offset within the list). Lists are
  /// limited to 4 GiB of encoded bytes each.
  kFormatCompressed = 1,
};

/// Size of the fixed file header in bytes:
/// magic u64, func u32, zone_step u32, zone_threshold u32, format u32.
inline constexpr uint64_t kHeaderSize = 24;

/// Size of one serialized directory entry in bytes:
/// key u32, list_crc u32, count u64, list_offset u64, list_bytes u64,
/// zone_offset u64, zone_count u32, zone_crc u32.
///
/// list_crc is the masked CRC32C of the list's on-disk bytes; zone_crc the
/// masked CRC32C of the list's zone-map region (0 when zone_count == 0).
inline constexpr uint64_t kDirectoryEntrySize = 48;

/// Size of the v2 footer in bytes:
/// num_lists u64, num_windows u64, directory_offset u64, checksum u32,
/// pad u32, magic u64.
///
/// `checksum` is the masked CRC32C of header bytes ++ directory bytes ++
/// the footer's first 24 bytes, so any corruption of the file's metadata
/// skeleton is detected at open.
inline constexpr uint64_t kFooterSize = 40;

/// Size of the retired v1 footer (num_lists, num_windows, directory_offset,
/// magic — no checksum), used only to recognize v1 files for rejection.
inline constexpr uint64_t kFooterSizeV1 = 32;

/// Size of one zone-map entry in bytes (text u32 + position u32).
inline constexpr uint64_t kZoneEntrySize = 8;

}  // namespace index_format
}  // namespace ndss

#endif  // NDSS_INDEX_INDEX_FORMAT_H_
