#ifndef NDSS_INDEX_VARINT_BLOCK_H_
#define NDSS_INDEX_VARINT_BLOCK_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "common/coding.h"
#include "index/posting.h"
#include "index/varint_simd.h"

namespace ndss {

/// Upper bound on the encoded size of one posting window: four varints
/// (text delta, l, c - l, r - c), each at most kMaxVarint32Bytes.
inline constexpr size_t kWindowMaxEncodedBytes = 4 * kMaxVarint32Bytes;

/// Scalar DecodeWindowRun (see the dispatching wrapper below for the
/// contract). The hot loop decodes in chunks sized so that every varint of
/// the chunk is provably in bounds — one range check per chunk instead of
/// four per window — using the unrolled GetVarint32Unchecked; the last few
/// windows near `limit` fall back to the bounds-checked decoder. Kept as
/// the portable fallback of the SIMD path (varint_simd.h) and as a test
/// target in its own right.
inline const char* DecodeWindowRunScalar(const char* p, const char* limit,
                                         uint64_t max_windows,
                                         PostedWindow* out,
                                         uint64_t* decoded) {
  uint32_t prev_text = 0;
  uint64_t n = 0;
  while (n < max_windows && p < limit) {
    const uint64_t chunk =
        std::min<uint64_t>(max_windows - n,
                           static_cast<uint64_t>(limit - p) /
                               kWindowMaxEncodedBytes);
    if (chunk == 0) {
      // Tail: fewer than kWindowMaxEncodedBytes remain, so this window may
      // straddle the end of the buffer — decode it checked.
      uint32_t text_field, l, c_delta, r_delta;
      const char* q = GetVarint32(p, limit, &text_field);
      if (q != nullptr) q = GetVarint32(q, limit, &l);
      if (q != nullptr) q = GetVarint32(q, limit, &c_delta);
      if (q != nullptr) q = GetVarint32(q, limit, &r_delta);
      if (q == nullptr) return nullptr;
      p = q;
      const uint32_t text = n == 0 ? text_field : prev_text + text_field;
      prev_text = text;
      out[n++] = PostedWindow{text, l, l + c_delta, l + c_delta + r_delta};
      continue;
    }
    for (uint64_t i = 0; i < chunk; ++i) {
#if defined(__GNUC__) || defined(__clang__)
      // Pull upcoming encoded bytes into cache while this window decodes
      // (prefetching past `limit` is safe — prefetches never fault).
      __builtin_prefetch(p + 256);
#endif
      uint32_t text_field, l, c_delta, r_delta;
      p = GetVarint32Unchecked(p, &text_field);
      if (p != nullptr) p = GetVarint32Unchecked(p, &l);
      if (p != nullptr) p = GetVarint32Unchecked(p, &c_delta);
      if (p != nullptr) p = GetVarint32Unchecked(p, &r_delta);
      if (p == nullptr) return nullptr;  // overlong varint
      const uint32_t text = n == 0 ? text_field : prev_text + text_field;
      prev_text = text;
      out[n++] = PostedWindow{text, l, l + c_delta, l + c_delta + r_delta};
    }
  }
  *decoded = n;
  return p;
}

/// Signature shared by every window-run decoder.
using WindowDecodeFn = const char* (*)(const char* p, const char* limit,
                                       uint64_t max_windows,
                                       PostedWindow* out, uint64_t* decoded);

namespace varint_internal {

/// Picks the decoder DecodeWindowRun dispatches to, once per process.
///
/// Which path wins is data- and microarchitecture-dependent: the scalar
/// chunked decoder rides the branch predictor (fast on streams with steady
/// varint lengths), the vector decoder is prediction-free (fast on
/// irregular streams and on cores where the predicted-branch chain stalls),
/// and the word-at-a-time pext decoder splits the difference (branch-light
/// extraction, speculative pointer advance). Rather than guess, decode a
/// small writer-faithful synthetic stream with every candidate the CPU
/// supports and keep the fastest — the cost is a few hundred microseconds,
/// paid on the first posting-list read. NDSS_NO_SIMD_DECODE=1 forces the
/// scalar path; NDSS_SIMD_DECODE=1 / NDSS_WORD_DECODE=1 force the vector /
/// word path (all skip calibration; unsupported CPUs always get the scalar
/// path).
inline WindowDecodeFn ChooseWindowDecode() {
#if defined(NDSS_VARINT_SIMD)
  const bool simd_ok = SimdWindowDecodeSupported();
  const bool word_ok = WordWindowDecodeSupported();
  if ((!simd_ok && !word_ok) ||
      std::getenv("NDSS_NO_SIMD_DECODE") != nullptr) {
    return &DecodeWindowRunScalar;
  }
  if (std::getenv("NDSS_SIMD_DECODE") != nullptr && simd_ok) {
    return &DecodeWindowRunSimd;
  }
  if (std::getenv("NDSS_WORD_DECODE") != nullptr && word_ok) {
    return &DecodeWindowRunWord;
  }
  // Calibration stream: runs of 64 windows with posting-like magnitudes
  // (small text deltas, multi-byte l, small interval deltas), mirroring
  // what MakeEncodedList in bench_hot_path generates.
  constexpr uint64_t kWindows = 512;
  constexpr uint32_t kRun = 64;
  std::string enc;
  uint64_t x = 88172645463325252ull;
  auto next = [&x]() {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<uint32_t>(x >> 33);
  };
  uint32_t text = 0;
  uint32_t prev_text = 0;
  for (uint64_t i = 0; i < kWindows; ++i) {
    if (next() % 4 == 0) text += next() % 40;
    PutVarint32(&enc, i % kRun == 0 ? text : text - prev_text);
    prev_text = text;
    PutVarint32(&enc, next() % (1u << 20));
    PutVarint32(&enc, next() % 64);
    PutVarint32(&enc, next() % 64);
  }
  PostedWindow out[kRun];
  const char* limit = enc.data() + enc.size();
  const auto decode_all = [&](WindowDecodeFn fn) {
    const char* p = enc.data();
    for (uint64_t i = 0; i < kWindows; i += kRun) {
      uint64_t decoded = 0;
      p = fn(p, limit, kRun, out, &decoded);
      if (p == nullptr) return false;
    }
    return true;
  };
  const auto best_of = [&](WindowDecodeFn fn) {
    double best = 1e30;
    for (int round = 0; round < 4; ++round) {
      const auto t0 = std::chrono::steady_clock::now();
      for (int rep = 0; rep < 16; ++rep) {
        if (!decode_all(fn)) return 1e30;
      }
      const auto t1 = std::chrono::steady_clock::now();
      best = std::min(best,
                      std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
  };
  // Warm every candidate (instruction fetch, lookup tables), then race
  // them and keep the fastest.
  WindowDecodeFn candidates[3] = {&DecodeWindowRunScalar, nullptr, nullptr};
  size_t num_candidates = 1;
  if (simd_ok) candidates[num_candidates++] = &DecodeWindowRunSimd;
  if (word_ok) candidates[num_candidates++] = &DecodeWindowRunWord;
  for (size_t i = 0; i < num_candidates; ++i) decode_all(candidates[i]);
  WindowDecodeFn best_fn = candidates[0];
  double best_s = best_of(candidates[0]);
  for (size_t i = 1; i < num_candidates; ++i) {
    const double s = best_of(candidates[i]);
    if (s < best_s) {
      best_s = s;
      best_fn = candidates[i];
    }
  }
  return best_fn;
#else
  return &DecodeWindowRunScalar;
#endif
}

}  // namespace varint_internal

/// The decoder DecodeWindowRun dispatches to (calibrated on first use).
inline WindowDecodeFn ActiveWindowDecode() {
  static const WindowDecodeFn fn = varint_internal::ChooseWindowDecode();
  return fn;
}

/// Name of the dispatched path, for bench reports and status endpoints.
inline const char* WindowDecodePathName() {
#if defined(NDSS_VARINT_SIMD)
  if (ActiveWindowDecode() == &DecodeWindowRunSimd) return "simd";
  if (ActiveWindowDecode() == &DecodeWindowRunWord) return "word";
  return "scalar";
#else
  return "scalar";
#endif
}

/// Decodes one compressed posting run — up to `max_windows` windows from
/// [p, limit) into `out` (which must hold max_windows slots). Window 0 of
/// the run carries an absolute text id (a restart point); later windows
/// delta-encode it. Per-window fields are (text field, l, c - l, r - c).
///
/// Dispatches to the AVX2 mask decoder (varint_simd.h) or the scalar
/// chunked decoder above — a runtime CPU check plus a one-time calibration
/// race (see ChooseWindowDecode), overridable with NDSS_NO_SIMD_DECODE /
/// NDSS_SIMD_DECODE. Both paths are bit-identical to the
/// one-varint-at-a-time reference (reference::DecodeWindowRun): sets
/// `*decoded` to the number of complete windows and returns the position
/// after the last one (which is `limit` when the buffer runs out exactly at
/// a window boundary), or returns nullptr on a truncated or overlong
/// varint.
inline const char* DecodeWindowRun(const char* p, const char* limit,
                                   uint64_t max_windows, PostedWindow* out,
                                   uint64_t* decoded) {
  return ActiveWindowDecode()(p, limit, max_windows, out, decoded);
}

}  // namespace ndss

#endif  // NDSS_INDEX_VARINT_BLOCK_H_
